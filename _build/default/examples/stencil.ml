(* Stencil: a 1-D heat-diffusion kernel showing how the same program
   behaves across DSSMP shapes — the cluster-size experiment of the
   paper's framework (section 2.4) on a user-written workload.

     dune exec examples/stencil.exe

   Each processor owns a contiguous segment of the rod; neighbouring
   segments share boundary cells, so page-grain sharing appears only at
   segment boundaries while interior updates stay in hardware. *)

let n = 2048 (* rod cells *)

let steps = 4

let make_workload () =
  let prepare m =
    let a = Mgs.Machine.alloc m ~words:(n + 2) ~home:Mgs_mem.Allocator.Blocked in
    let b = Mgs.Machine.alloc m ~words:(n + 2) ~home:Mgs_mem.Allocator.Blocked in
    (* hot spot in the middle *)
    Mgs.Machine.poke m (a + (n / 2)) 1000.0;
    let bar = Mgs_sync.Barrier.create m in
    let body ctx =
      let nprocs = Mgs.Api.nprocs ctx in
      let me = Mgs.Api.proc ctx in
      let per = n / nprocs in
      let lo = 1 + (me * per) in
      let hi = if me = nprocs - 1 then n else lo + per - 1 in
      let src = ref a and dst = ref b in
      for _ = 1 to steps do
        for i = lo to hi do
          let left = Mgs.Api.read ctx (!src + i - 1) in
          let mid = Mgs.Api.read ctx (!src + i) in
          let right = Mgs.Api.read ctx (!src + i + 1) in
          Mgs.Api.compute ctx 20;
          Mgs.Api.write ctx (!dst + i) ((0.25 *. left) +. (0.5 *. mid) +. (0.25 *. right))
        done;
        let t = !src in
        src := !dst;
        dst := t;
        Mgs_sync.Barrier.wait ctx bar
      done
    in
    let check m =
      (* heat is conserved by the kernel's weights *)
      let final = if steps mod 2 = 0 then a else b in
      let total = ref 0.0 in
      for i = 1 to n do
        total := !total +. Mgs.Machine.peek m (final + i)
      done;
      if Float.abs (!total -. 1000.0) > 1e-6 then
        failwith (Printf.sprintf "heat not conserved: %g" !total)
    in
    (body, check)
  in
  { Mgs_harness.Sweep.name = "stencil"; prepare }

let () =
  let points = Mgs_harness.Sweep.sweep ~nprocs:16 (make_workload ()) in
  print_string
    (Mgs_harness.Figures.breakdown_figure ~title:"1-D stencil, P = 16, 1000-cycle LAN" points)
