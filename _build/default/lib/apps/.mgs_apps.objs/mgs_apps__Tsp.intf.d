lib/apps/tsp.mli: Mgs_harness
