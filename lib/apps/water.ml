type params = {
  nmol : int;
  iters : int;
  force_cycles : int;
  seed : int;
  lock : string;
}

let default = { nmol = 128; iters = 2; force_cycles = 15000; seed = 11; lock = "token" }

let tiny = { nmol = 12; iters = 2; force_cycles = 15000; seed = 3; lock = "token" }

(* closest even count to the paper's 343 molecules *)
let paper = { nmol = 344; iters = 2; force_cycles = 15000; seed = 11; lock = "token" }

let problem_size p = Printf.sprintf "%d molecules, %d iterations" p.nmol p.iters

let dt = 0.002

(* Bounded inverse-square-like pair force: cheap, smooth, and free of
   singularities so results are robust to accumulation order. *)
let pair_force xi yi zi xj yj zj =
  let dx = xi -. xj and dy = yi -. yj and dz = zi -. zj in
  let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 0.05 in
  let inv = 1.0 /. (d2 *. sqrt d2) in
  (dx *. inv, dy *. inv, dz *. inv)

let init_positions p =
  let rng = Mgs_util.Rng.create ~seed:p.seed in
  Array.init (3 * p.nmol) (fun _ -> Mgs_util.Rng.float rng 4.0)

(* The pair set: molecule i interacts with the next nmol/2 molecules
   cyclically; the "opposite" pair is computed only from the lower
   index so each unordered pair appears exactly once. *)
let pairs_of p i =
  let n = p.nmol in
  let half = n / 2 in
  List.filter_map
    (fun k ->
      let j = (i + k) mod n in
      if k < half then Some j else if i < j then Some j else None)
    (List.init half (fun k -> k + 1))

let seq_reference p =
  let n = p.nmol in
  let pos = init_positions p in
  let vel = Array.make (3 * n) 0.0 in
  let force = Array.make (3 * n) 0.0 in
  for _ = 1 to p.iters do
    Array.fill force 0 (3 * n) 0.0;
    for i = 0 to n - 1 do
      List.iter
        (fun j ->
          let fx, fy, fz =
            pair_force pos.(3 * i) pos.((3 * i) + 1) pos.((3 * i) + 2) pos.(3 * j)
              pos.((3 * j) + 1)
              pos.((3 * j) + 2)
          in
          force.(3 * i) <- force.(3 * i) +. fx;
          force.((3 * i) + 1) <- force.((3 * i) + 1) +. fy;
          force.((3 * i) + 2) <- force.((3 * i) + 2) +. fz;
          force.(3 * j) <- force.(3 * j) -. fx;
          force.((3 * j) + 1) <- force.((3 * j) + 1) -. fy;
          force.((3 * j) + 2) <- force.((3 * j) + 2) -. fz)
        (pairs_of p i)
    done;
    for i = 0 to (3 * n) - 1 do
      vel.(i) <- vel.(i) +. (dt *. force.(i));
      pos.(i) <- pos.(i) +. (dt *. vel.(i))
    done
  done;
  pos

let workload p =
  let n = p.nmol in
  if n mod 2 <> 0 then invalid_arg "Water: nmol must be even";
  let prepare m =
    let pos = Mgs.Machine.alloc m ~words:(3 * n) ~home:Mgs_mem.Allocator.Blocked in
    let vel = Mgs.Machine.alloc m ~words:(3 * n) ~home:Mgs_mem.Allocator.Blocked in
    let force = Mgs.Machine.alloc m ~words:(3 * n) ~home:Mgs_mem.Allocator.Blocked in
    (* global statistics: kinetic energy sum, protected by one lock *)
    let stats = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 0) in
    let init = init_positions p in
    Array.iteri (fun i v -> Mgs.Machine.poke m (pos + i) v) init;
    let topo = Mgs.Machine.topo m in
    let nprocs = topo.Mgs_machine.Topology.nprocs in
    let per = (n + nprocs - 1) / nprocs in
    let owner i = min (nprocs - 1) (i / per) in
    (* per-molecule locks homed with the molecule owner's SSMP *)
    let mol_lock =
      Array.init n (fun i ->
          Mgs_sync.Locks.make m
            ~home:(Mgs_machine.Topology.ssmp_of_proc topo (owner i))
            p.lock)
    in
    let stats_lock = Mgs_sync.Locks.make m p.lock in
    let bar = Mgs_sync.Barrier.create m in
    let body ctx =
      let open Mgs.Api in
      let me = proc ctx in
      let m0 = me * per and m1 = min (n - 1) (((me + 1) * per) - 1) in
      for _ = 1 to p.iters do
        (* zero our molecules' force accumulators *)
        for i = m0 to m1 do
          for c = 0 to 2 do
            write ctx (force + (3 * i) + c) 0.0
          done
        done;
        Mgs_sync.Barrier.wait ctx bar;
        (* force interactions: each pair writes both molecules' shared
           accumulators under the per-molecule locks — the structure the
           paper's force-interaction kernel describes *)
        for i = m0 to m1 do
          let xi = read ctx (pos + (3 * i)) in
          let yi = read ctx (pos + (3 * i) + 1) in
          let zi = read ctx (pos + (3 * i) + 2) in
          List.iter
            (fun j ->
              let xj = read ctx (pos + (3 * j)) in
              let yj = read ctx (pos + (3 * j) + 1) in
              let zj = read ctx (pos + (3 * j) + 2) in
              compute ctx p.force_cycles;
              let fx, fy, fz = pair_force xi yi zi xj yj zj in
              Mgs_sync.Locks.acquire ctx mol_lock.(i);
              write ctx (force + (3 * i)) (read ctx (force + (3 * i)) +. fx);
              write ctx (force + (3 * i) + 1) (read ctx (force + (3 * i) + 1) +. fy);
              write ctx (force + (3 * i) + 2) (read ctx (force + (3 * i) + 2) +. fz);
              Mgs_sync.Locks.release ctx mol_lock.(i);
              Mgs_sync.Locks.acquire ctx mol_lock.(j);
              write ctx (force + (3 * j)) (read ctx (force + (3 * j)) -. fx);
              write ctx (force + (3 * j) + 1) (read ctx (force + (3 * j) + 1) -. fy);
              write ctx (force + (3 * j) + 2) (read ctx (force + (3 * j) + 2) -. fz);
              Mgs_sync.Locks.release ctx mol_lock.(j))
            (pairs_of p i)
        done;
        Mgs_sync.Barrier.wait ctx bar;
        (* motion update on owned molecules + global statistics *)
        let kinetic = ref 0.0 in
        for i = m0 to m1 do
          for c = 0 to 2 do
            let f = read ctx (force + (3 * i) + c) in
            let v = read ctx (vel + (3 * i) + c) +. (dt *. f) in
            write ctx (vel + (3 * i) + c) v;
            write ctx (pos + (3 * i) + c) (read ctx (pos + (3 * i) + c) +. (dt *. v));
            kinetic := !kinetic +. (0.5 *. v *. v)
          done
        done;
        Mgs_sync.Locks.acquire ctx stats_lock;
        write ctx stats (read ctx stats +. !kinetic);
        Mgs_sync.Locks.release ctx stats_lock;
        Mgs_sync.Barrier.wait ctx bar
      done
    in
    let check m =
      let expect = seq_reference p in
      for i = 0 to (3 * n) - 1 do
        let got = Mgs.Machine.peek m (pos + i) in
        let want = expect.(i) in
        (* force-accumulation order varies with the schedule, and the
           nonlinear dynamics amplify the rounding differences across
           iterations, so the tolerance is looser than the kernels' *)
        let err = Float.abs (got -. want) /. Float.max 1.0 (Float.abs want) in
        if err > 5e-5 then
          failwith (Printf.sprintf "water mismatch at %d: got %.17g want %.17g" i got want)
      done
    in
    (body, check)
  in
  { Mgs_harness.Sweep.name = "Water"; prepare }
