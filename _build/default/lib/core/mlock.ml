type t = { mutable locked : bool; waiters : (unit -> unit) Queue.t }

let create () = { locked = false; waiters = Queue.create () }

let held t = t.locked

let acquire_fiber _sim t =
  if not t.locked then begin
    t.locked <- true;
    false
  end
  else begin
    Mgs_engine.Fiber.suspend (fun resume -> Queue.add resume t.waiters);
    true
  end

let acquire_k _sim t k =
  if not t.locked then begin
    t.locked <- true;
    k ()
  end
  else Queue.add k t.waiters

let release sim t =
  if not t.locked then invalid_arg "Mlock.release: not held";
  match Queue.take_opt t.waiters with
  | None -> t.locked <- false
  | Some k ->
    (* Direct handoff: [locked] stays true and the waiter runs as a
       fresh event so the releaser finishes its own step first. *)
    Mgs_engine.Sim.after sim 0 k
