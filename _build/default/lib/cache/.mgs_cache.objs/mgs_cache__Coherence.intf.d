lib/cache/coherence.mli: Mgs_machine Mgs_mem
