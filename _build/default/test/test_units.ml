(* Unit tests for smaller core pieces (mapping lock, report math, Api
   helpers) and properties of application internals (pair coverage,
   octree determinism, tournament schedules). *)

module Sim = Mgs_engine.Sim
module Fiber = Mgs_engine.Fiber
module Mlock = Mgs.Mlock

(* --- mapping lock ------------------------------------------------------ *)

let test_mlock_fiber_handoff () =
  let sim = Sim.create () in
  let l = Mlock.create () in
  let order = ref [] in
  let fiber name =
    ignore
      (Fiber.spawn sim ~at:0 ~name (fun () ->
           if Mlock.acquire_fiber sim l then ();
           order := name :: !order;
           Fiber.sleep_until sim (Sim.now sim + 10);
           Mlock.release sim l))
  in
  fiber "a";
  fiber "b";
  fiber "c";
  ignore (Sim.run sim ());
  Alcotest.(check (list string)) "FIFO ownership" [ "a"; "b"; "c" ] (List.rev !order);
  Alcotest.(check bool) "free at end" false (Mlock.held l)

let test_mlock_thunk_interleaves () =
  let sim = Sim.create () in
  let l = Mlock.create () in
  let got_lock = ref false in
  ignore
    (Fiber.spawn sim ~at:0 ~name:"holder" (fun () ->
         ignore (Mlock.acquire_fiber sim l);
         Fiber.sleep_until sim 100;
         Mlock.release sim l));
  Sim.at sim 10 (fun () -> Mlock.acquire_k sim l (fun () ->
      got_lock := true;
      Mlock.release sim l));
  ignore (Sim.run sim ());
  Alcotest.(check bool) "handler eventually ran with the lock" true !got_lock;
  Alcotest.(check bool) "released" false (Mlock.held l)

let test_mlock_release_unheld () =
  let sim = Sim.create () in
  let l = Mlock.create () in
  Alcotest.check_raises "release unheld" (Invalid_argument "Mlock.release: not held")
    (fun () -> Mlock.release sim l)

(* --- report math -------------------------------------------------------- *)

let test_report_fields () =
  let cfg = Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:100 () in
  let m = Mgs.Machine.create cfg in
  let a = Mgs.Machine.alloc m ~words:8 ~home:Mgs_mem.Allocator.Interleaved in
  let bar = Mgs_sync.Barrier.create m in
  let report =
    Mgs.Machine.run m (fun ctx ->
        Mgs.Api.compute ctx 500;
        Mgs.Api.write ctx (a + Mgs.Api.proc ctx) 1.0;
        Mgs_sync.Barrier.wait ctx bar)
  in
  let b = report.Mgs.Report.breakdown in
  Alcotest.(check bool) "total close to runtime" true
    (Float.abs (Mgs.Report.total b -. float_of_int report.Mgs.Report.runtime)
    < 0.5 *. float_of_int report.Mgs.Report.runtime);
  Alcotest.(check bool) "user includes compute" true (b.Mgs.Report.user >= 500.0);
  Alcotest.(check int) "per-proc totals present" 4
    (Array.length report.Mgs.Report.per_proc_total);
  Alcotest.(check (float 0.)) "hit ratio default 1.0 with no locks" 1.0
    (Mgs.Report.lock_hit_ratio report)

(* --- Api helpers --------------------------------------------------------- *)

let test_api_int_roundtrip () =
  let cfg = Mgs.Machine.config ~nprocs:1 ~cluster:1 () in
  let m = Mgs.Machine.create cfg in
  let a = Mgs.Machine.alloc m ~words:4 ~home:(Mgs_mem.Allocator.On_proc 0) in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         Mgs.Api.write_int ctx a 123456789;
         Alcotest.(check int) "int roundtrip" 123456789 (Mgs.Api.read_int ctx a);
         Mgs.Api.write_int ctx a (-42);
         Alcotest.(check int) "negative" (-42) (Mgs.Api.read_int ctx a)))

let test_api_ctx_accessors () =
  let cfg = Mgs.Machine.config ~nprocs:8 ~cluster:4 () in
  let m = Mgs.Machine.create cfg in
  let seen = ref [] in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         seen := (Mgs.Api.proc ctx, Mgs.Api.ssmp ctx) :: !seen;
         Alcotest.(check int) "nprocs" 8 (Mgs.Api.nprocs ctx);
         Alcotest.(check int) "cluster" 4 (Mgs.Api.cluster ctx)));
  Alcotest.(check int) "all procs ran" 8 (List.length !seen);
  List.iter
    (fun (p, s) -> Alcotest.(check int) "ssmp computed" (p / 4) s)
    !seen

(* --- application internals ------------------------------------------------ *)

(* Water's cyclic pairing covers every unordered pair exactly once. *)
let prop_water_pairs_exact_cover =
  QCheck2.Test.make ~name:"water pairs cover each unordered pair once" ~count:50
    QCheck2.Gen.(int_range 1 16)
    (fun half_n ->
      let n = 2 * half_n in
      let p = { Mgs_apps.Water.default with Mgs_apps.Water.nmol = n } in
      let seen = Hashtbl.create 64 in
      for i = 0 to n - 1 do
        List.iter
          (fun j ->
            let key = (min i j, max i j) in
            Hashtbl.replace seen key (1 + Option.value ~default:0 (Hashtbl.find_opt seen key)))
          (Mgs_apps.Water.pairs_of p i)
      done;
      let total = n * (n - 1) / 2 in
      Hashtbl.length seen = total && Hashtbl.fold (fun _ c ok -> ok && c = 1) seen true)

(* TSP's generated distance matrix is symmetric with positive
   off-diagonal entries, and the sequential optimum is reachable. *)
let test_tsp_distances () =
  let p = Mgs_apps.Tsp.tiny in
  let best = Mgs_apps.Tsp.best_cost p in
  Alcotest.(check bool) "optimum positive" true (best > 0);
  Alcotest.(check bool) "optimum bounded by n * max edge" true
    (best <= p.Mgs_apps.Tsp.ncities * 100)

(* The Barnes-Hut sequential reference is insertion-order independent:
   permuting body indices must not change any body's trajectory. *)
let test_barnes_reference_deterministic () =
  let p = { Mgs_apps.Barnes.tiny with Mgs_apps.Barnes.nbodies = 16 } in
  let a = Mgs_apps.Barnes.seq_reference p in
  let b = Mgs_apps.Barnes.seq_reference p in
  Alcotest.(check bool) "reference reproducible" true (a = b)

(* FFT: the six-step algorithm must agree with a direct DFT (small
   size, tolerance), and the parallel run must equal the sequential
   six-step bit-for-bit on every shape. *)
let test_fft_vs_dft () =
  let p = { Mgs_apps.Fft.tiny with Mgs_apps.Fft.m = 4 } in
  let a = Mgs_apps.Fft.seq_reference p in
  let b = Mgs_apps.Fft.dft_reference p in
  Array.iteri
    (fun i v ->
      if Float.abs (v -. b.(i)) > 1e-6 then
        Alcotest.failf "fft vs dft at %d: %g vs %g" i v b.(i))
    a

(* The tiled water-kernel's two-level tournament must cover every
   unordered molecule pair exactly once at any machine shape; the
   workload's own force verification proves coverage + uniqueness
   (a missing pair changes the force; a duplicated one too). *)
let test_tiled_schedule_coverage () =
  List.iter
    (fun (nprocs, cluster) ->
      ignore
        (Mgs_harness.Sweep.run_point ~lan_latency:500 ~nprocs ~cluster
           (Mgs_apps.Water_kernel.workload_tiled
              { Mgs_apps.Water_kernel.tiny with Mgs_apps.Water_kernel.nmol = 24 })))
    [ (2, 1); (4, 1); (6, 2); (8, 2); (12, 4); (16, 8) ]

let test_fft_parallel_exact () =
  List.iter
    (fun (nprocs, cluster) ->
      ignore
        (Mgs_harness.Sweep.run_point ~lan_latency:800 ~nprocs ~cluster
           (Mgs_apps.Fft.workload Mgs_apps.Fft.tiny)))
    [ (4, 1); (4, 2); (4, 4); (8, 2) ]

let test_message_trace () =
  let cfg = Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:300 () in
  let m = Mgs.Machine.create cfg in
  let page = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 3) in
  let log = ref [] in
  Mgs.Machine.trace_messages m (fun line -> log := line :: !log);
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           Mgs.Api.write ctx page 1.0;
           Mgs.Api.release ctx
         end));
  let lines = List.rev !log in
  Alcotest.(check bool) "messages recorded" true (List.length lines > 3);
  (* a WREQ to the home and a RACK back must appear, well-formed *)
  let has_tag tag =
    List.exists
      (fun l -> match String.split_on_char ' ' l with _ :: t :: _ -> t = tag | _ -> false)
      lines
  in
  Alcotest.(check bool) "WREQ seen" true (has_tag "WREQ");
  Alcotest.(check bool) "RACK seen" true (has_tag "RACK");
  List.iter
    (fun l ->
      match String.split_on_char ' ' l with
      | [ t; _; s; d; w ] ->
        Alcotest.(check bool) "fields numeric" true
          (int_of_string_opt t <> None && int_of_string_opt s <> None
          && int_of_string_opt d <> None && int_of_string_opt w <> None)
      | _ -> Alcotest.failf "malformed trace line %S" l)
    lines

let () =
  Alcotest.run "units"
    [
      ( "mlock",
        [
          Alcotest.test_case "fiber handoff order" `Quick test_mlock_fiber_handoff;
          Alcotest.test_case "thunk acquires" `Quick test_mlock_thunk_interleaves;
          Alcotest.test_case "release unheld" `Quick test_mlock_release_unheld;
        ] );
      ( "report",
        [
          Alcotest.test_case "fields" `Quick test_report_fields;
          Alcotest.test_case "message trace" `Quick test_message_trace;
        ] );
      ( "api",
        [
          Alcotest.test_case "int roundtrip" `Quick test_api_int_roundtrip;
          Alcotest.test_case "ctx accessors" `Quick test_api_ctx_accessors;
        ] );
      ( "app internals",
        [
          Alcotest.test_case "tsp distances" `Quick test_tsp_distances;
          Alcotest.test_case "barnes reference deterministic" `Quick
            test_barnes_reference_deterministic;
          Alcotest.test_case "tiled schedule coverage" `Quick test_tiled_schedule_coverage;
          Alcotest.test_case "fft vs direct dft" `Quick test_fft_vs_dft;
          Alcotest.test_case "fft parallel exact" `Quick test_fft_parallel_exact;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_water_pairs_exact_cover ]);
    ]
