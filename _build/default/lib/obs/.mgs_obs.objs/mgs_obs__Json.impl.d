lib/obs/json.ml: Buffer Char List Printf String
