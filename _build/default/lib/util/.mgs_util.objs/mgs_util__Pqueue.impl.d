lib/util/pqueue.ml:
