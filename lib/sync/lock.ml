open Mgs.State

let local_grant_bound cluster = max 1 (cluster / 2)

type local = {
  mutable has_token : bool;
  mutable held : bool;
  waiters : Mgs_engine.Waitq.t;
  mutable requested : bool; (* LOCKREQ outstanding at the home *)
  mutable recall : bool; (* home asked this SSMP to surrender the token *)
  mutable grants_left : int; (* local handoffs allowed while recall pending *)
  (* per-SSMP stat cells: acquiring fibers on different engine shards
     bump their own SSMP's cell; the accessors below sum them *)
  mutable l_acquires : int;
  mutable l_hits : int;
}

type t = {
  m : Mgs.State.t;
  home_ssmp : int;
  grant_bound : int;
  locals : local array;
  mutable token_at : int; (* home's view of the token owner *)
  mutable transfer : bool; (* a recall/grant cycle is in flight *)
  pending : int Queue.t; (* requester SSMPs queued at the home *)
  notices : (int, int) Hashtbl.t; (* HLRC: write notices riding the lock *)
}

let create (m : Mgs.Machine.t) ?(home = 0) ?grant_bound () =
  let nssmps = m.topo.Topology.nssmps in
  if home < 0 || home >= nssmps then invalid_arg "Lock.create: home";
  let bound =
    match grant_bound with
    | Some b ->
      if b < 0 then invalid_arg "Lock.create: grant_bound";
      b
    | None -> local_grant_bound (m.topo.Topology.nprocs / nssmps)
  in
  let locals =
    Array.init nssmps (fun s ->
        {
          has_token = s = home;
          held = false;
          waiters = Mgs_engine.Waitq.create ();
          requested = false;
          recall = false;
          grants_left = bound;
          l_acquires = 0;
          l_hits = 0;
        })
  in
  {
    m;
    home_ssmp = home;
    grant_bound = bound;
    locals;
    token_at = home;
    transfer = false;
    pending = Queue.create ();
    notices = Hashtbl.create 64;
  }

let home_proc l = Topology.first_proc_of_ssmp l.m.topo l.home_ssmp

let ssmp_proc l s = Topology.first_proc_of_ssmp l.m.topo s

(* --- home-side global lock ---------------------------------------- *)

let rec try_recall l =
  if (not l.transfer) && not (Queue.is_empty l.pending) then begin
    l.transfer <- true;
    let owner = l.token_at in
    Am.post l.m.am ~tag:"LK_RECALL" ~src:(home_proc l) ~dst:(ssmp_proc l owner) ~words:0
      ~cost:l.m.costs.sync.lock_local_acquire (fun _t -> on_recall l owner)
  end

and on_recall l s =
  let loc = l.locals.(s) in
  loc.recall <- true;
  loc.grants_left <- l.grant_bound;
  if not loc.held then surrender l s

(* Give the token back to the home so it can be granted onward.  Any
   fibers still parked locally are covered by a fresh LOCKREQ. *)
and surrender l s =
  let loc = l.locals.(s) in
  assert (loc.has_token && not loc.held);
  loc.has_token <- false;
  loc.recall <- false;
  if not (Mgs_engine.Waitq.is_empty loc.waiters) && not loc.requested then begin
    loc.requested <- true;
    Am.post l.m.am ~tag:"LK_REQ" ~src:(ssmp_proc l s) ~dst:(home_proc l) ~words:0
      ~cost:l.m.costs.sync.lock_local_acquire (fun _t -> on_lockreq l s)
  end;
  Am.post l.m.am ~tag:"LK_TOKREL" ~src:(ssmp_proc l s) ~dst:(home_proc l) ~words:0
    ~cost:l.m.costs.sync.lock_local_acquire (fun _t -> on_token_returned l)

and on_token_returned l =
  match Queue.take_opt l.pending with
  | None ->
    (* Nobody wants it anymore: park the token at the home SSMP. *)
    l.token_at <- l.home_ssmp;
    l.transfer <- false;
    l.locals.(l.home_ssmp).has_token <- true;
    grant_local l l.home_ssmp
  | Some next ->
    l.token_at <- next;
    l.transfer <- false;
    Am.post l.m.am ~tag:"LK_TOKEN" ~src:(home_proc l) ~dst:(ssmp_proc l next) ~words:0
      ~cost:l.m.costs.sync.lock_local_acquire (fun _t ->
        let loc = l.locals.(next) in
        loc.has_token <- true;
        loc.requested <- false;
        loc.recall <- false;
        loc.grants_left <- l.grant_bound;
        grant_local l next);
    try_recall l

and on_lockreq l s =
  if l.token_at = s && (not l.transfer) && Queue.is_empty l.pending then
    (* Crossed a grant already in flight to [s]; the local grant path
       serves the requester. *)
    ()
  else begin
    Queue.add s l.pending;
    try_recall l
  end

(* Hand the (free) local lock to the oldest parked fiber, if any. *)
and grant_local l s =
  let loc = l.locals.(s) in
  if (not loc.held) && not (Mgs_engine.Waitq.is_empty loc.waiters) then begin
    loc.held <- true;
    ignore (Mgs_engine.Waitq.wake_one l.m.sim loc.waiters)
  end

(* --- fiber-side local lock ---------------------------------------- *)

let acquire ctx l =
  let m = l.m in
  let cpu = (ctx : Mgs.Api.ctx).cpu in
  let s = Topology.ssmp_of_proc m.topo ctx.Mgs.Api.proc in
  let loc = l.locals.(s) in
  Cpu.sync_busy cpu;
  let flat = Topology.single_ssmp m.topo in
  Cpu.advance cpu Lock (if flat then m.costs.sync.flat_lock else m.costs.sync.lock_local_acquire);
  loc.l_acquires <- loc.l_acquires + 1;
  (syncs m).lock_acquires <- (syncs m).lock_acquires + 1;
  (* Transaction root: one lock-acquire episode.  The LK_* messages it
     triggers (request, recall, token transfer) all inherit this ID. *)
  let root =
    span_open m ~parent:Span.none ~label:"sync.lock" ~engine:Mgs_obs.Event.Sync
      ~src:ctx.Mgs.Api.proc ~dst:(home_proc l) ()
  in
  span_set m root;
  obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.lock_acquire" ~src:ctx.Mgs.Api.proc
    ~dst:(home_proc l)
    ~cost:(if loc.has_token then 1 else 0) ~vpn:(-1) ~words:0 ~dur:0;
  if loc.has_token then begin
    loc.l_hits <- loc.l_hits + 1;
    (syncs m).lock_hits <- (syncs m).lock_hits + 1;
    if not loc.held then loc.held <- true
    else begin
      (* Parked fibers are woken only by ownership transfer. *)
      Mgs_engine.Waitq.park loc.waiters;
      Cpu.resume_charge cpu Lock (Sim.now m.sim);
      span_set m root
    end
  end
  else begin
    if not loc.requested then begin
      loc.requested <- true;
      Cpu.advance cpu Lock m.costs.proto.msg_send;
      Am.post m.am ~tag:"LK_REQ" ~src:ctx.Mgs.Api.proc ~dst:(home_proc l) ~words:0
        ~cost:m.costs.sync.lock_local_acquire (fun _t -> on_lockreq l s)
    end;
    Mgs_engine.Waitq.park loc.waiters;
    Cpu.resume_charge cpu Lock (Sim.now m.sim);
    span_set m root
  end;
  (* acquire-side consistency action (lazy protocols apply the write
     notices carried by the lock) *)
  Mgs.Consistency.at_acquire m ~proc:ctx.Mgs.Api.proc ~notices:l.notices;
  span_close m root;
  span_set m Span.none

let release ctx l =
  let m = l.m in
  let cpu = (ctx : Mgs.Api.ctx).cpu in
  let s = Topology.ssmp_of_proc m.topo ctx.Mgs.Api.proc in
  let loc = l.locals.(s) in
  if not loc.held then failwith "Lock.release: not held by this SSMP";
  let root =
    span_open m ~parent:Span.none ~label:"sync.unlock" ~engine:Mgs_obs.Event.Sync
      ~src:ctx.Mgs.Api.proc ~dst:(home_proc l) ()
  in
  span_set m root;
  obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.lock_release" ~src:ctx.Mgs.Api.proc
    ~dst:(home_proc l) ~vpn:(-1) ~words:0 ~cost:0 ~dur:0;
  (* Release consistency: propagate this SSMP's writes before anyone
     else can acquire (this is what dilates critical sections).  Under
     HLRC this flushes diffs home and attaches write notices to the
     lock instead of invalidating anyone. *)
  Mgs.Consistency.at_release m ~proc:ctx.Mgs.Api.proc ~notices:l.notices;
  (* the DUQ drain mints (and clears) its own transaction *)
  span_set m root;
  let flat = Topology.single_ssmp m.topo in
  Cpu.advance cpu Lock (if flat then m.costs.sync.flat_lock else m.costs.sync.lock_local_release);
  if Mgs_engine.Waitq.is_empty loc.waiters then begin
    loc.held <- false;
    if loc.recall then surrender l s
  end
  else if loc.recall && loc.grants_left <= 0 then begin
    (* Fairness bound: stop handing off locally, let the token go. *)
    loc.held <- false;
    surrender l s
  end
  else begin
    if loc.recall then loc.grants_left <- loc.grants_left - 1;
    (* Direct handoff: [held] stays true, the woken fiber owns it. *)
    ignore (Mgs_engine.Waitq.wake_one m.sim loc.waiters)
  end;
  span_close m root;
  span_set m Span.none

let waiters l =
  Array.fold_left (fun acc loc -> acc + Mgs_engine.Waitq.length loc.waiters) 0 l.locals

let waiters_cell l c = Mgs_engine.Waitq.length l.locals.(c).waiters

let reset l =
  Array.iteri
    (fun s loc ->
      ignore (Mgs_engine.Waitq.clear loc.waiters);
      loc.has_token <- s = l.home_ssmp;
      loc.held <- false;
      loc.requested <- false;
      loc.recall <- false;
      loc.grants_left <- l.grant_bound;
      loc.l_acquires <- 0;
      loc.l_hits <- 0)
    l.locals;
  l.token_at <- l.home_ssmp;
  l.transfer <- false;
  Queue.clear l.pending;
  Hashtbl.reset l.notices

let acquires l = Array.fold_left (fun acc loc -> acc + loc.l_acquires) 0 l.locals

let hits l = Array.fold_left (fun acc loc -> acc + loc.l_hits) 0 l.locals

let hit_ratio l =
  let a = acquires l in
  if a = 0 then 1.0 else float_of_int (hits l) /. float_of_int a
