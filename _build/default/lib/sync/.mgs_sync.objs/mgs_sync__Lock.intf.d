lib/sync/lock.mli: Mgs
