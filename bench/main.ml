(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (section 5) on the simulated DSSMP, and provides
   Bechamel micro-benchmarks of the simulator itself.

     dune exec bench/main.exe            # everything (default)
     dune exec bench/main.exe -- table3 table4 fig6 ... fig12
     dune exec bench/main.exe -- -j 4 fig9        # sweep points on 4 domains
     dune exec bench/main.exe -- bechamel   # wall-clock benches only

   Every simulation is self-contained, so -j/--jobs N fans sweep and
   ablation points out over N domains (Mgs_util.Dpool); the printed
   tables are byte-identical to a sequential run.

   Paper targets, for eyeballing:
     Table 3  primitive costs (see printed ratio column)
     Table 4  Jacobi 1618M/30.0  MM 3081M/26.9  TSP 54.2M/23.0
              Water 1993M/26.9  Barnes-Hut 977M/13.8  W-kernel 1540M/26.7
     Fig 6    Jacobi flat, breakup 16%
     Fig 7    MM flat, breakup ~0%
     Fig 8    TSP breakup ~2400%, potential 49%, concave
     Fig 9    Water breakup 322%, potential 67%
     Fig 10   Barnes-Hut breakup 161%, potential 85%, convex
     Fig 11   lock hit ratio rises with C; Water/BH above TSP
     Fig 12   kernel breakup 334% -> 26% with the loop transformation *)

let nprocs = 32

(* set by -j/--jobs before any target runs *)
let jobs = ref 1

module Sweep = Mgs_harness.Sweep
module Figures = Mgs_harness.Figures
module Workload = Mgs_harness.Workload

(* every application is resolved by name through the workload registry;
   the per-app construction boilerplate lives in Mgs_apps.Workloads *)
let () = Mgs_apps.Workloads.ensure ()

let wargs ?size ?iters () = { Workload.default_args with Workload.size; iters }

let wl ?size ?iters name = Workload.instantiate ~args:(wargs ?size ?iters ()) name

let tiny = Workload.tiny

(* Each application's sweep is computed once and shared by every target
   that needs it. *)
let sweep_of w = lazy (Sweep.sweep ~jobs:!jobs ~nprocs w)

let jacobi = sweep_of (wl "jacobi")

let matmul = sweep_of (wl "matmul")

let tsp = sweep_of (wl "tsp")

let water = sweep_of (wl "water")

let barnes = sweep_of (wl "barnes")

let wkern = sweep_of (wl ~size:64 "water-kernel")

let wkern_tiled = sweep_of (wl ~size:64 "water-kernel-tiled")

let table3 () =
  print_endline "=== Table 3: costs of primitive MGS operations ===";
  Mgs_harness.Micro.print_table (Mgs_harness.Micro.run_all ());
  print_newline ()

let seq_runtime w =
  let p = Sweep.run_point ~nprocs:1 ~cluster:1 w in
  p.Sweep.report.Mgs.Report.runtime

let table4 () =
  print_endline "=== Table 4: applications, sequential runtime, speedup on 32 procs ===";
  let spec app ?size name sweep =
    (app, Workload.problem_size ~args:(wargs ?size ()) name, wl ?size name, sweep)
  in
  let specs =
    [
      spec "Jacobi" "jacobi" jacobi;
      spec "Matrix Multiply" "matmul" matmul;
      spec "TSP" "tsp" tsp;
      spec "Water" "water" water;
      spec "Barnes-Hut" "barnes" barnes;
      spec "Water-kernel" ~size:64 "water-kernel" wkern;
    ]
  in
  (* the sequential runtimes are independent single-point runs: fan them
     out too (the lazy sweeps are forced on this domain only, below) *)
  let seqs = Mgs_util.Dpool.map ~jobs:!jobs (fun (_, _, w, _) -> seq_runtime w) specs in
  let rows =
    List.map2
      (fun (app, size, _, sweep) seq ->
        let t32 = Sweep.runtime_of (Lazy.force sweep) nprocs in
        {
          Figures.app;
          problem_size = size;
          seq_runtime = seq;
          speedup = float_of_int seq /. float_of_int t32;
        })
      specs seqs
  in
  print_string (Figures.table4 rows);
  print_newline ()

let breakdown name sweep () =
  Printf.printf "=== %s ===\n" name;
  print_string (Figures.breakdown_figure ~title:name (Lazy.force sweep));
  print_newline ()

let fig6 = breakdown "Figure 6: Jacobi runtime breakdown" jacobi

let fig7 = breakdown "Figure 7: Matrix Multiply runtime breakdown" matmul

let fig8 = breakdown "Figure 8: TSP runtime breakdown" tsp

let fig9 = breakdown "Figure 9: Water runtime breakdown" water

let fig10 = breakdown "Figure 10: Barnes-Hut runtime breakdown" barnes

let fig11 () =
  print_endline "=== Figure 11: MGS lock hit ratio vs cluster size ===";
  print_string
    (Figures.lock_figure
       [
         ("TSP", Lazy.force tsp);
         ("Water", Lazy.force water);
         ("Barnes-Hut", Lazy.force barnes);
       ]);
  print_newline ()

let fig12 () =
  print_endline "=== Figure 12: Water-kernel, untransformed vs tiled ===";
  print_string
    (Figures.breakdown_figure ~title:"Water-kernel (untransformed)" (Lazy.force wkern));
  print_newline ();
  print_string
    (Figures.breakdown_figure ~title:"Water-kernel (tiled, 2 tiles/SSMP)"
       (Lazy.force wkern_tiled));
  print_newline ()

let locktable () =
  print_endline "=== Lock scalability: handoff latency, hit ratio, fairness ===";
  Printf.printf "-- every lock x protocol at C in {1,4,16}, 16 contending fibers --\n";
  print_string
    (Figures.pp_lock_table
       (Mgs_harness.Micro.lock_family ~jobs:!jobs
          (Mgs_harness.Micro.lock_cluster_specs ())));
  print_newline ();
  Printf.printf "-- contention scaling: 1..64 fibers, C=4, mgs --\n";
  print_string
    (Figures.pp_lock_table
       (Mgs_harness.Micro.lock_family ~jobs:!jobs
          (Mgs_harness.Micro.lock_contention_specs ())));
  print_newline ()

(* tiny sweep of every lock under every protocol — the CI smoke test
   (make lock-smoke); each point verifies its protected counter and
   machine quiescence, so a pass means every algorithm still excludes *)
let lock_smoke () =
  let specs =
    List.concat_map
      (fun lock ->
        List.map (fun protocol -> (lock, protocol, 2, 4)) [ "mgs"; "hlrc"; "ivy" ])
      (Mgs_sync.Locks.names ())
  in
  let points = Mgs_harness.Micro.lock_family ~iters:2 ~jobs:!jobs specs in
  Printf.printf "lock-smoke: OK (%d points: %s)\n" (List.length points)
    (String.concat ", " (Mgs_sync.Locks.names ()))

(* Adaptive-coherence gate for `make check`: tiny static-vs-adaptive
   cells with app verification and the protocol invariant checker both
   on (a regime switch that corrupts a page or leaks a twin fails
   here), a determinism double-run of every adaptive cell, and a
   confirmation that the classifier actually engaged. *)
let adapt_smoke () =
  let ident (r : Mgs.Report.t) =
    Format.asprintf "%d/%d/%d/%d/%a" r.Mgs.Report.runtime r.Mgs.Report.sim_events
      r.Mgs.Report.lan_messages r.Mgs.Report.lan_words Mgs.Pstats.pp r.Mgs.Report.pstats
  in
  let cells =
    [
      ("jacobi", tiny "jacobi", "mgs");
      ("water", tiny "water", "mgs");
      ("water", tiny "water", "hlrc");
    ]
  in
  let engaged = ref 0 in
  List.iter
    (fun (name, w, protocol) ->
      let run adapt =
        (Sweep.run_point ~adapt ~check:true ~protocol ~nprocs:8 ~cluster:2 w)
          .Sweep.report
      in
      ignore (run false);
      let a1 = run true and a2 = run true in
      if ident a1 <> ident a2 then
        failwith (Printf.sprintf "adapt-smoke: %s/%s adaptive rerun diverges" name protocol);
      let p = a1.Mgs.Report.pstats in
      if
        p.Mgs.Pstats.adapt_res_mw + p.Mgs.Pstats.adapt_res_sw
        + p.Mgs.Pstats.adapt_res_inv
        > 0
      then incr engaged)
    cells;
  if !engaged = 0 then failwith "adapt-smoke: the adaptive layer never engaged";
  Printf.printf
    "adapt-smoke: OK (%d cells static+adaptive, checker on, reruns identical, %d engaged)\n"
    (List.length cells) !engaged

(* Request-serving gate for `make kv-smoke` / `make check`: a tiny KV
   cell with the application verifier and the protocol invariant
   checker both on, a determinism double-run, sharded-engine identity,
   and two adaptive cells proving the classifier engages on serving
   traffic — a thundering-herd cell whose synchronized put waves over
   one striped page must reach the invalidate-on-read regime, and a
   contended skewed cell that must migrate at least one home. *)
let kv_smoke () =
  let ident (r : Mgs.Report.t) =
    Format.asprintf "%d/%d/%d/%d/%d/%a" r.Mgs.Report.runtime r.Mgs.Report.sim_events
      r.Mgs.Report.lan_messages r.Mgs.Report.lan_words r.Mgs.Report.lock_acquires
      Mgs.Pstats.pp r.Mgs.Report.pstats
  in
  let w = Mgs_serve.Kv.workload Mgs_serve.Kv.tiny in
  let run par = (Sweep.run_point ~check:true ~par ~nprocs:8 ~cluster:2 w).Sweep.report in
  let oracle = ident (run 0) in
  if ident (run 0) <> oracle then failwith "kv-smoke: rerun diverges";
  List.iter
    (fun par ->
      if ident (run par) <> oracle then
        failwith
          (Printf.sprintf "kv-smoke: diverges from the sequential engine at par=%d" par))
    [ 1; 4 ];
  let herd =
    {
      Mgs_serve.Kv.default with
      Mgs_serve.Kv.nkeys = 8;
      nshards = 1;
      stripes = 8;
      ops = 200;
      get_pct = 0;
      put_pct = 100;
      theta = 0.;
      churn = 0;
      period = 200_000;
      burst = 200_000;
      think = 10_000;
    }
  in
  let contended =
    {
      Mgs_serve.Kv.default with
      Mgs_serve.Kv.nkeys = 16;
      nshards = 1;
      stripes = 16;
      ops = 300;
      get_pct = 5;
      put_pct = 95;
      theta = 1.1;
      churn = 0;
      period = 2_000;
    }
  in
  let pstats p =
    (Sweep.run_point ~adapt:true ~check:true ~nprocs:8 ~cluster:2
       (Mgs_serve.Kv.workload p))
      .Sweep.report.Mgs.Report.pstats
  in
  let h = pstats herd in
  if h.Mgs.Pstats.adapt_reclass = 0 || h.Mgs.Pstats.adapt_res_inv = 0 then
    failwith "kv-smoke: the herd cell never reached the invalidate-on-read regime";
  let c = pstats contended in
  if c.Mgs.Pstats.adapt_migs = 0 || c.Mgs.Pstats.adapt_fwds = 0 then
    failwith "kv-smoke: the contended cell never migrated a home";
  Printf.printf
    "kv-smoke: OK (checker on, rerun + par 1/4 identical; herd reclass=%d res_inv=%d, \
     contended migs=%d fwds=%d)\n"
    h.Mgs.Pstats.adapt_reclass h.Mgs.Pstats.adapt_res_inv c.Mgs.Pstats.adapt_migs
    c.Mgs.Pstats.adapt_fwds

(* Sharded-engine identity gate for `make check`: small machines run on
   the sequential engine and on the sharded engine at several job
   counts must produce identical reports.  Wall-clock and peak queue
   depth are host/engine artifacts and are not part of the contract, so
   the identity string below omits them. *)
let par_smoke () =
  let ident (r : Mgs.Report.t) =
    Format.asprintf "%d/%d/%d/%d/%d/%d/%a" r.Mgs.Report.runtime r.Mgs.Report.sim_events
      r.Mgs.Report.lan_messages r.Mgs.Report.lan_words r.Mgs.Report.lock_acquires
      r.Mgs.Report.barrier_episodes Mgs.Pstats.pp r.Mgs.Report.pstats
  in
  let cells =
    [
      ("jacobi", tiny "jacobi", "mgs");
      ("water", tiny "water", "hlrc");
      ("tsp", tiny "tsp", "ivy");
    ]
  in
  let checked = ref 0 in
  List.iter
    (fun (name, w, protocol) ->
      let run par =
        (Sweep.run_point ~check:false ~protocol ~par ~nprocs:8 ~cluster:2 w).Sweep.report
        |> ident
      in
      let oracle = run 0 in
      List.iter
        (fun par ->
          incr checked;
          if run par <> oracle then
            failwith
              (Printf.sprintf "par-smoke: %s/%s diverges from the sequential engine at par=%d"
                 name protocol par))
        [ 1; 4 ])
    cells;
  Printf.printf "par-smoke: OK (%d sharded runs identical to the sequential engine)\n"
    !checked

(* Observability under the parallel engine, for `make obs-par-smoke`:
   with the trace and metrics subscribers installed the engine must
   keep its par_jobs domains (no single-domain forcing), and the
   merged chrome JSON, span dump, metrics CSV, and histogram summary
   must each be byte-identical to the sequential engine's. *)
let obs_par_smoke () =
  let cells = [ ("jacobi", tiny "jacobi", "mgs"); ("water", tiny "water", "hlrc") ] in
  let exports par (_, w, protocol) =
    let cfg =
      Mgs.Machine.config ~lan_latency:1000 ~par_jobs:par
        ~protocol:(Mgs.Protocol.proto_of_name protocol) ~nprocs:8 ~cluster:2 ()
    in
    let m = Mgs.Machine.create cfg in
    let tr = Mgs.Machine.enable_trace m in
    let mt = Mgs.Machine.enable_metrics m in
    let body, check = w.Sweep.prepare m in
    ignore (Mgs.Machine.run m body);
    Mgs.Machine.assert_quiescent m;
    check m;
    [
      Mgs_obs.Trace.chrome_json tr;
      Mgs_obs.Span.json (Mgs_obs.Trace.spans tr);
      Mgs_obs.Metrics.csv mt;
      Format.asprintf "%a" Mgs_obs.Trace.pp_summary tr;
    ]
  in
  let checked = ref 0 in
  List.iter
    (fun ((name, _, protocol) as cell) ->
      let oracle = exports 0 cell in
      List.iter
        (fun par ->
          incr checked;
          if exports par cell <> oracle then
            failwith
              (Printf.sprintf
                 "obs-par-smoke: %s/%s exports diverge from the sequential engine at \
                  par=%d"
                 name protocol par))
        [ 1; 4 ])
    cells;
  Printf.printf
    "obs-par-smoke: OK (%d traced+metered sharded runs export-identical to the \
     sequential engine)\n"
    !checked

let summary () =
  print_endline "=== Framework metrics summary (paper section 2.4) ===";
  print_string
    (Figures.metrics_summary
       [
         ("Jacobi", Lazy.force jacobi);
         ("Matrix Multiply", Lazy.force matmul);
         ("TSP", Lazy.force tsp);
         ("Water", Lazy.force water);
         ("Barnes-Hut", Lazy.force barnes);
         ("Water-kernel", Lazy.force wkern);
         ("Water-kernel (tiled)", Lazy.force wkern_tiled);
       ]);
  print_newline ()

(* --- Bechamel wall-clock benches of the simulator ------------------- *)

let bechamel () =
  let open Bechamel in
  let run_workload ~cluster w () = ignore (Sweep.run_point ~verify:false ~nprocs:8 ~cluster w) in
  let t name w ~cluster = Test.make ~name (Staged.stage (run_workload ~cluster w)) in
  let micro_test =
    Test.make ~name:"table3-micro"
      (Staged.stage (fun () -> ignore (Mgs_harness.Micro.run_all ())))
  in
  let tests =
    Test.make_grouped ~name:"simulator"
      [
        micro_test;
        t "table4+fig6-jacobi" (tiny "jacobi") ~cluster:2;
        t "fig7-matmul" (tiny "matmul") ~cluster:2;
        t "fig8-tsp" (tiny "tsp") ~cluster:2;
        t "fig9-water" (tiny "water") ~cluster:2;
        t "fig10-barnes" (tiny "barnes") ~cluster:2;
        t "fig11-locks" (tiny "water") ~cluster:4;
        t "fig12-kernel" (tiny "water-kernel") ~cluster:2;
        t "fig12-kernel-tiled" (tiny "water-kernel-tiled") ~cluster:2;
      ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  print_endline "=== Bechamel: simulator wall-clock per experiment ===";
  let results = analyze (benchmark ()) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Printf.sprintf "%.3f ms/run" (est /. 1e6)
        | _ -> "(no estimate)"
      in
      rows := [ name; est ] :: !rows)
    results;
  Mgs_util.Tableprint.print ~header:[ "experiment"; "wall clock" ]
    ~rows:(List.sort compare !rows);
  print_newline ()

(* --- ablation studies (design choices from DESIGN.md) --------------- *)

let ablation study name () =
  Printf.printf "=== Ablation: %s ===\n" name;
  let w = wl ~size:64 "water" in
  print_string (Mgs_harness.Ablation.run ~jobs:!jobs ~nprocs:16 ~variants:(study ()) w);
  print_newline ()

let ablation_single_writer =
  ablation Mgs_harness.Ablation.single_writer_study "single-writer optimization (Water)"

let ablation_early_ack =
  ablation Mgs_harness.Ablation.early_ack_study "early read-invalidation ack (Water)"

let ablation_page_size = ablation Mgs_harness.Ablation.page_size_study "page size (Water)"

let ablation_latency =
  ablation Mgs_harness.Ablation.latency_study "inter-SSMP latency (Water)"

let ablation_tlb () =
  Printf.printf "=== Ablation: software TLB capacity (Jacobi) ===\n";
  let w = wl "jacobi" in
  print_string
    (Mgs_harness.Ablation.run ~jobs:!jobs ~nprocs:16
       ~variants:(Mgs_harness.Ablation.tlb_study ())
       w);
  print_newline ()

let ablation_pipeline () =
  Printf.printf "=== Ablation: serial vs pipelined release (Jacobi) ===\n";
  let w = wl "jacobi" in
  print_string
    (Mgs_harness.Ablation.run ~jobs:!jobs ~nprocs:16
       ~variants:(Mgs_harness.Ablation.pipelined_release_study ())
       w);
  print_newline ()

let ablation_protocol () =
  Printf.printf "=== Ablation: MGS vs Ivy baseline protocol ===\n";
  print_string
    (Mgs_harness.Ablation.run ~jobs:!jobs ~nprocs:16
       ~variants:(Mgs_harness.Ablation.protocol_study ())
       (wl ~size:8 "tsp"));
  print_newline ();
  print_string
    (Mgs_harness.Ablation.run ~jobs:!jobs ~nprocs:16
       ~variants:(Mgs_harness.Ablation.protocol_study ())
       (wl ~size:64 "water"));
  print_newline ()

(* Adaptive-coherence ablation: every paper app static vs adaptive
   across cluster sizes, plus larger machines with the workloads scaled
   the way the perf large-P rows scale them (jacobi one row per
   processor, water capped at 256 molecules) so the grid stays
   tractable.  Large machines run sharded with the invariant checker
   off; P = 16 keeps it on. *)
let adapt_ablation () =
  print_endline "=== Ablation: adaptive vs static per-page coherence ===";
  let grid =
    let paper_apps =
      [
        ("jacobi", wl "jacobi");
        ("water", wl "water");
        ("tsp", wl ~size:9 "tsp");
        ("barnes", wl "barnes");
      ]
    in
    let scaled_apps nprocs =
      [
        ("jacobi", wl ~size:(nprocs + 2) ~iters:2 "jacobi");
        ("water", wl ~size:(min nprocs 256) ~iters:1 "water");
      ]
    in
    List.concat_map
      (fun (nprocs, apps) ->
        List.concat_map
          (fun (name, w) ->
            List.filter_map
              (fun cluster ->
                if cluster > nprocs then None else Some (name, w, nprocs, cluster))
              [ 1; 4; 16 ])
          apps)
      [ (16, paper_apps); (64, scaled_apps 64); (256, scaled_apps 256) ]
  in
  let rows =
    Mgs_util.Dpool.map ~jobs:!jobs
      (fun (name, w, nprocs, cluster) ->
        let par = if nprocs > 16 then 4 else 0 in
        let check = nprocs <= 16 in
        let cell adapt =
          (Sweep.run_point ~adapt ~check ~par ~protocol:"mgs" ~nprocs ~cluster w)
            .Sweep.report
        in
        {
          Figures.ar_app = name;
          ar_protocol = "mgs";
          ar_procs = nprocs;
          ar_cluster = cluster;
          ar_static = cell false;
          ar_adapt = cell true;
        })
      grid
  in
  print_string (Figures.pp_adapt_table rows);
  print_newline ()

(* LU is not part of the paper's evaluation; provided as an extra
   workload over the same framework. *)
let extra_lu () =
  print_endline "=== Extra: LU decomposition (not in the paper) ===";
  let points = Sweep.sweep ~jobs:!jobs ~nprocs (wl "lu") in
  print_string (Figures.breakdown_figure ~title:"LU, P = 32" points);
  print_newline ()

(* RADIX's permutation phase writes scatter over the whole destination
   array — the worst case for page-grain software shared memory, and
   the sharing pattern where the multiple-writer machinery earns its
   keep.  Shown as a sweep plus the three-protocol comparison. *)
let extra_radix () =
  print_endline "=== Extra: SPLASH-2 RADIX sort (not in the paper) ===";
  let points = Sweep.sweep ~jobs:!jobs ~nprocs (wl "radix") in
  print_string (Figures.breakdown_figure ~title:"Radix, P = 32" points);
  print_newline ();
  print_string
    (Mgs_harness.Ablation.run ~jobs:!jobs ~nprocs:16
       ~variants:(Mgs_harness.Ablation.protocol_study ())
       (wl ~size:1024 "radix"));
  print_newline ()

let extra_fft () =
  print_endline "=== Extra: six-step FFT (not in the paper) ===";
  let points = Sweep.sweep ~jobs:!jobs ~nprocs (wl "fft") in
  print_string (Figures.breakdown_figure ~title:"FFT, P = 32" points);
  print_newline ()

(* the whole Figure 6-10 evaluation re-run under lazy release
   consistency: what the paper's results would have looked like had MGS
   adopted the TreadMarks-lineage techniques its related work cites *)
let hlrc_figs () =
  print_endline "=== Extra: Figures 6-10 under HLRC (lazy release consistency) ===";
  let sweep_hlrc w =
    let clusters = Sweep.clusters_of nprocs in
    Mgs_util.Dpool.map ~jobs:!jobs
      (fun cluster ->
        let cfg =
          Mgs.Machine.config ~lan_latency:1000
            ~protocol:(Mgs.Protocol.proto_of_name "hlrc") ~nprocs ~cluster ()
        in
        let m = Mgs.Machine.create cfg in
        let body, check = w.Sweep.prepare m in
        let report = Mgs.Machine.run m body in
        Mgs.Machine.assert_quiescent m;
        check m;
        { Sweep.cluster; report; lock_hit_ratio = Mgs.Report.lock_hit_ratio report })
      clusters
  in
  List.iter
    (fun (name, w) ->
      let points = sweep_hlrc w in
      print_string (Figures.breakdown_figure ~title:(name ^ " under HLRC") points);
      print_newline ())
    [ ("Jacobi", wl "jacobi"); ("TSP", wl "tsp"); ("Water", wl "water"); ("Barnes-Hut", wl "barnes") ]

(* beyond the paper's fixed P = 32: scalability in total processors at
   a fixed cluster size (are bigger DSSMPs built from 8-way SSMPs
   worthwhile?) *)
let scaling () =
  print_endline "=== Extra: scaling P at fixed C = 8 (Water) ===";
  let rows =
    Mgs_util.Dpool.map ~jobs:!jobs
      (fun p ->
        let w = wl ~size:64 "water" in
        let pt = Sweep.run_point ~nprocs:p ~cluster:(min 8 p) w in
        let r = pt.Sweep.report in
        [
          string_of_int p;
          string_of_int r.Mgs.Report.runtime;
          Printf.sprintf "%.0f" r.Mgs.Report.breakdown.Mgs.Report.mgs;
          string_of_int r.Mgs.Report.lan_messages;
          Printf.sprintf "%.2f" pt.Sweep.lock_hit_ratio;
        ])
      [ 8; 16; 32; 64 ]
  in
  Mgs_util.Tableprint.print
    ~header:[ "P"; "runtime"; "MGS cycles/proc"; "LAN msgs"; "lock hit" ]
    ~rows;
  print_newline ()

(* machine-readable export of every sweep for external plotting *)
let csv () =
  print_string
    (String.concat ""
       [
         Figures.csv_of_sweep ~name:"jacobi" (Lazy.force jacobi);
         Figures.csv_of_sweep ~name:"matmul" (Lazy.force matmul);
         Figures.csv_of_sweep ~name:"tsp" (Lazy.force tsp);
         Figures.csv_of_sweep ~name:"water" (Lazy.force water);
         Figures.csv_of_sweep ~name:"barnes" (Lazy.force barnes);
         Figures.csv_of_sweep ~name:"water-kernel" (Lazy.force wkern);
         Figures.csv_of_sweep ~name:"water-kernel-tiled" (Lazy.force wkern_tiled);
         Figures.csv_of_sweep ~name:"radix" (Sweep.sweep ~jobs:!jobs ~nprocs (wl "radix"));
       ])

let messages () =
  print_endline "=== Protocol message mix (Water) ===";
  print_string (Figures.message_mix (Lazy.force water));
  print_newline ();
  print_endline "=== Protocol operation mix (Water) ===";
  print_string (Figures.protocol_ops (Lazy.force water));
  print_newline ()

let targets : (string * (unit -> unit)) list =
  [
    ("table3", table3);
    ("table4", table4);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("summary", summary);
    ("locktable", locktable);
    ("lock-smoke", lock_smoke);
    ("par-smoke", par_smoke);
    ("obs-par-smoke", obs_par_smoke);
    ("ablation-singlewriter", ablation_single_writer);
    ("ablation-earlyack", ablation_early_ack);
    ("ablation-pagesize", ablation_page_size);
    ("ablation-latency", ablation_latency);
    ("ablation-protocol", ablation_protocol);
    ("ablation-pipeline", ablation_pipeline);
    ("ablation-tlb", ablation_tlb);
    ("ablation-adapt", adapt_ablation);
    ("adapt-smoke", adapt_smoke);
    ("kv-smoke", kv_smoke);
    ("extra-lu", extra_lu);
    ("extra-fft", extra_fft);
    ("extra-radix", extra_radix);
    ("hlrc-figs", hlrc_figs);
    ("scaling", scaling);
    ("csv", csv);
    ("messages", messages);
    ("bechamel", bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* strip -j N / --jobs N (or -jN / --jobs=N) before target dispatch *)
  let rec parse acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        parse acc rest
      | _ ->
        Printf.eprintf "-j/--jobs expects a positive integer, got %S\n" n;
        exit 2)
    | [ ("-j" | "--jobs") ] ->
      Printf.eprintf "-j/--jobs expects an argument\n";
      exit 2
    | arg :: rest when String.length arg > 2 && String.sub arg 0 2 = "-j" -> (
      match int_of_string_opt (String.sub arg 2 (String.length arg - 2)) with
      | Some n when n >= 1 ->
        jobs := n;
        parse acc rest
      | _ ->
        Printf.eprintf "bad jobs count %S\n" arg;
        exit 2)
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" -> (
      match int_of_string_opt (String.sub arg 7 (String.length arg - 7)) with
      | Some n when n >= 1 ->
        jobs := n;
        parse acc rest
      | _ ->
        Printf.eprintf "bad jobs count %S\n" arg;
        exit 2)
    | arg :: rest -> parse (arg :: acc) rest
  in
  let args = parse [] args in
  let chosen = if args = [] then List.map fst targets else args in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown target %S; known: %s\n" name
          (String.concat " " (List.map fst targets));
        exit 1)
    chosen
