(** Pluggable lock algorithms (ROADMAP item 5).

    A registry of lock implementations behind one face, mirroring the
    {!Mgs.Protocol} registry: the harness, the benchmark driver, and
    [mgs_run --lock] select an algorithm by name, and adding one means
    a single {!register} call.  Five algorithms ship built in:

    - ["token"] — the paper's token lock ({!Lock}), unchanged: local
      lock per SSMP, circulating token, locality-first with a bounded
      grant budget.  The baseline every comparison is against.
    - ["tas"] — test-and-set at the home processor with capped
      exponential backoff between attempts.  No queue, no fairness.
    - ["ticket"] — centralised FIFO: the home assigns tickets and
      notifies the next holder on release (two hops per handoff).
    - ["mcs"] — MCS queue lock over active messages: SWAP at the home
      appends to the queue, the home LINKs the requester to its
      predecessor, and releases hand off directly to the successor
      (one hop per handoff).  A releaser caught in the swap/link
      window parks until the link lands.
    - ["clh"] — CLH queue lock: SWAP returns the predecessor's node,
      the requester WATCHes it where it lives, and release grants the
      watcher directly.  Release never blocks or messages unless a
      watcher is present.

    Every algorithm pays the same active-message occupancy and LAN
    costs as the coherence engines, flushes release consistency before
    ownership moves, and applies write notices at acquire — so HLRC
    runs correctly whichever lock a workload selects.

    The wrapper returned by {!make} adds host-only instrumentation:
    handoff counts, the gap (in cycles) from each release to the next
    cross-processor acquire, retroactive [lock.handoff] spans when a
    trace is installed, and the [lock_wait]/[lock_handoffs] Pstats
    counters (non-baseline locks only, so token-lock runs stay
    byte-identical with earlier revisions).  It also registers a
    {!Mgs.State.sync_hook}, so [Machine.reset_stats] restores the lock
    between phases and [assert_quiescent] fails on leaked waiters. *)

type raw = {
  r_acquire : Mgs.Api.ctx -> unit;
  r_release : Mgs.Api.ctx -> unit;
  r_acquires : unit -> int;
  r_hits : unit -> int;  (** acquires that never left the home SSMP nor waited *)
  r_waiters : unit -> int;  (** fibers currently blocked inside the algorithm *)
  r_waiters_cell : int -> int;
      (** one SSMP's blocked fibers — shard-local, safe for the
          per-cell metrics sampler *)
  r_reset : unit -> unit;  (** back to the just-created state; drops dead waiters *)
}
(** What an algorithm must provide: one lock instance as closures. *)

type maker = Mgs.Machine.t -> home:int -> raw

val register : string -> maker -> unit
(** @raise Invalid_argument on a duplicate name. *)

val names : unit -> string list
(** Registered lock names, sorted. *)

val mem : string -> bool

type t
(** An instrumented lock instance. *)

val make : Mgs.Machine.t -> ?home:int -> string -> t
(** [make m ~home name] instantiates registered algorithm [name] with
    its arbitration state on SSMP [home] (default 0) and registers a
    sync hook on [m] for phase resets and quiescence checks.
    @raise Invalid_argument on an unknown name, listing the known ones. *)

val acquire : Mgs.Api.ctx -> t -> unit
(** Block until the calling fiber holds the lock; waiting time is
    charged to the Lock bucket. *)

val release : Mgs.Api.ctx -> t -> unit
(** Flush release consistency, then pass the lock on.
    @raise Failure if the lock is not held. *)

val name : t -> string

val acquires : t -> int

val hits : t -> int

val hit_ratio : t -> float
(** [hits / acquires]; 1.0 when never acquired. *)

val waiters : t -> int
(** Fibers currently blocked inside the lock. *)

val reset : t -> unit
(** Restore the just-created state and zero the instrumentation.
    Parked waiters are dropped, not woken — only call between phases
    when any parked fiber belongs to an abandoned run. *)

val handoffs : t -> int
(** Acquires whose previous holder was a different processor. *)

val gaps : t -> int array
(** Handoff gaps in completion order: cycles from a release to the
    next cross-processor acquire's completion. *)

type gap_stats = { n : int; mean : float; max : int; cv : float }
(** [cv] is the coefficient of variation (stddev / mean) — the
    fairness figure: FIFO queue locks hand off at a steady cadence
    (low cv), the token lock alternates cheap local grants with
    expensive token recalls (high cv). *)

val gap_stats : t -> gap_stats
