lib/machine/cpu.mli: Mgs_engine
