(** Fixed-capacity ring buffer.

    Pushing beyond capacity silently evicts the oldest element; the
    total number pushed and the number dropped stay queryable, so a
    bounded trace can report how much history it kept. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently held ([<= capacity]). *)

val pushed : 'a t -> int
(** Total elements ever pushed. *)

val dropped : 'a t -> int
(** [pushed - length]: evicted history. *)

val push : 'a t -> 'a -> unit

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)
