lib/harness/figures.ml: Array Buffer List Mgs Mgs_obs Mgs_util Option Printf Sweep
