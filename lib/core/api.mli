(** Application-facing shared-memory operations.

    A [ctx] represents one simulated processor executing application
    code inside a fiber.  [read]/[write] charge software address
    translation, consult the processor's TLB (faulting into the MGS
    Local Client on a miss), charge the hardware cache-coherence stall,
    and then access the SSMP's copy of the page — so application data
    really flows through page replication, twinning, diffing and
    merging.

    All functions must be called from the processor's own fiber. *)

type ctx = private {
  m : State.t;
  proc : int;
  cpu : Mgs_machine.Cpu.t;
  mutable ops : int;
  yield_mask : int;
  lidx : int;
  single : bool;
  cache : Mgs_cache.Coherence.t;
  tlb : Mgs_svm.Tlb.t;
  (* Last-page cache (fast path): resolved state of the most recent
     access, self-invalidated by generation counters.  See api.ml. *)
  mutable lp_vpn : int;
  mutable lp_mgen : int;
  mutable lp_tgen : int;
  mutable lp_rw : bool;
  mutable lp_page : Mgs_mem.Pagedata.page;
  mutable lp_twin : Mgs_mem.Pagedata.twin option;
  mutable lp_fowner : int;
}

val make_ctx : State.t -> proc:int -> ctx
(** Create the context for processor [proc].  [Machine.run] does this
    for each worker. *)

val proc : ctx -> int
(** This processor's id, [0 .. nprocs-1]. *)

val nprocs : ctx -> int

val cluster : ctx -> int
(** C: processors per SSMP. *)

val ssmp : ctx -> int
(** The SSMP this processor belongs to. *)

val read : ctx -> ?kind:Mgs_svm.Translate.kind -> int -> float
(** [read ctx addr] loads the word at virtual address [addr].
    [kind] selects the translation cost (default [Array]). *)

val write : ctx -> ?kind:Mgs_svm.Translate.kind -> int -> float -> unit

val read_int : ctx -> ?kind:Mgs_svm.Translate.kind -> int -> int
(** Integer view of a word ([read] rounded; exact up to 2{^53}). *)

val write_int : ctx -> ?kind:Mgs_svm.Translate.kind -> int -> int -> unit

val cycles : ctx -> int
(** This processor's current cycle count (the sum of all buckets) —
    used by the micro benchmarks to bracket individual operations. *)

val compute : ctx -> int -> unit
(** [compute ctx n] models [n] cycles of private computation (no shared
    accesses), charged to the User bucket. *)

val idle_until : ctx -> Mgs_engine.Sim.time -> unit
(** Spin (charged to User) until global simulated time [t] — used by
    micro benchmarks to sequence steps across processors without shared
    memory. *)

val release : ctx -> unit
(** Explicit release operation: flush this SSMP's delayed update queue
    to the homes (what lock releases and barriers do implicitly). *)

val set_fast_path : bool -> unit
(** Testing only: globally enable/disable the last-page fast path.
    Simulated results must be bit-identical either way (the fast path is
    an implementation shortcut, not a semantic change) — the
    equivalence tests run the same workload both ways and compare. *)
