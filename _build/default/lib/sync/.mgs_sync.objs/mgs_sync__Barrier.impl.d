lib/sync/barrier.ml: Am Array Cpu Hashtbl Mgs Mgs_engine Sim Topology
