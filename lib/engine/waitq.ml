type t = { q : (unit -> unit) Queue.t }

let create () = { q = Queue.create () }

let length t = Queue.length t.q

let is_empty t = Queue.is_empty t.q

let park t = Fiber.suspend (fun resume -> Queue.add resume t.q)

let park_thunk t k = Queue.add k t.q

let wake_one sim ?(delay = 0) t =
  match Queue.take_opt t.q with
  | None -> false
  | Some k ->
    Sim.after sim delay k;
    true

let clear t =
  let n = Queue.length t.q in
  Queue.clear t.q;
  n

let wake_all sim ?(delay = 0) t =
  let n = Queue.length t.q in
  while not (Queue.is_empty t.q) do
    let k = Queue.take t.q in
    Sim.after sim delay k
  done;
  n
