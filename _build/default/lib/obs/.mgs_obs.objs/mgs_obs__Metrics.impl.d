lib/obs/metrics.ml: Array Buffer Float Hashtbl Hist Json List Printf Ring String
