(** Deterministic pseudo-random number generation (SplitMix64).

    The simulator must be fully reproducible: identical seeds yield
    identical event orders and therefore identical cycle counts.  This
    generator is small, fast, and splittable enough for our purposes
    (independent streams are obtained by perturbing the seed). *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a generator determined entirely by [seed]. *)

val split : t -> t
(** [split g] derives an independent generator; [g] advances. *)

val split_key : t -> key:int -> t
(** [split_key g ~key] derives an independent generator from [g]'s
    current state and [key] {e without advancing [g]}: the whole family
    of children is a function of the parent's state alone, regardless of
    creation order.  Distinct keys give decorrelated streams (see the
    independence smoke test in [test_util]). *)

val bits64 : t -> int64
(** [bits64 g] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform in [0 .. n-1].  @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float g x] is uniform in [0, x). *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle driven by [g]. *)
