lib/engine/sim.mli:
