(** Mesa-style condition variables layered on any registered lock.

    [wait] atomically-enough releases the associated lock and parks the
    calling fiber; [signal]/[broadcast] wake parked fibers, which then
    {e reacquire} the lock before [wait] returns.  Semantics are Mesa,
    not Hoare: the signaller keeps the lock, and a woken waiter races
    other contenders for it — always re-check the predicate in a loop:

    {[
      Locks.acquire ctx lock;
      while not (ready ()) do Condvar.wait ctx cv done;
      ...;
      Locks.release ctx lock
    ]}

    A {!Mgs.State.sync_hook} is registered at creation, so phase resets
    drop dead waiters and [assert_quiescent] fails if a fiber is left
    parked at the end of a run. *)

type t

val create : Mgs.Machine.t -> Locks.t -> t
(** [create m lock] makes a condition variable tied to [lock]; callers
    of {!wait}, {!signal}, and {!broadcast} must hold it. *)

val wait : Mgs.Api.ctx -> t -> unit
(** Release the lock, park until signalled, reacquire.  Waiting time is
    charged to the Lock bucket. *)

val signal : Mgs.Api.ctx -> t -> bool
(** Wake the oldest waiter; [false] if none was parked. *)

val broadcast : Mgs.Api.ctx -> t -> int
(** Wake every waiter; returns how many. *)

val waiters : t -> int
(** Fibers currently parked in {!wait}. *)

val waits : t -> int
(** Total {!wait} calls. *)

val wakeups : t -> int
(** Waits that have been woken (and gone on to reacquire). *)
