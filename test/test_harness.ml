(* Tests for the experiment harness: the framework metrics (section 2.4)
   on synthetic runtime curves, sweep mechanics, and figure rendering. *)

module Sweep = Mgs_harness.Sweep
module Figures = Mgs_harness.Figures

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_clusters_of () =
  Alcotest.(check (list int)) "powers of two" [ 1; 2; 4; 8; 16; 32 ] (Sweep.clusters_of 32);
  Alcotest.(check (list int)) "single" [ 1 ] (Sweep.clusters_of 1)

(* A synthetic curve with known metrics: P=8, T(8)=100, T(4)=400
   (breakup 300%), T(1)=800 (potential (800-400)/400 = 100%). *)
let curve_concave = [ (1, 800); (2, 790); (4, 400); (8, 100) ]

let curve_convex = [ (1, 800); (2, 420); (4, 400); (8, 100) ]

let test_metrics_values () =
  Alcotest.(check (float 1e-9)) "breakup" 3.0 (Sweep.breakup_penalty_rt curve_concave);
  Alcotest.(check (float 1e-9)) "potential" 1.0 (Sweep.multigrain_potential_rt curve_concave);
  Alcotest.(check int) "runtime_of" 400 (Sweep.runtime_of_rt curve_concave 4)

let test_curvature_classes () =
  (* concave: the interior point (C=2) sits above the chord *)
  Alcotest.(check string) "concave" "concave" (Sweep.curvature_class_rt curve_concave);
  Alcotest.(check string) "convex" "convex" (Sweep.curvature_class_rt curve_convex);
  let linear = [ (1, 800); (2, 600); (4, 400); (8, 100) ] in
  Alcotest.(check string) "linear in log C is flat" "flat" (Sweep.curvature_class_rt linear)

let test_runtime_of_missing () =
  Alcotest.check_raises "missing cluster"
    (Invalid_argument "Sweep.runtime_of: no point at cluster size 16 (have 1, 2, 4, 8)")
    (fun () -> ignore (Sweep.runtime_of_rt curve_concave 16))

(* A trivial workload for sweep mechanics. *)
let trivial_workload =
  let prepare m =
    let cell = Mgs.Machine.alloc m ~words:4 ~home:Mgs_mem.Allocator.Interleaved in
    let bar = Mgs_sync.Barrier.create m in
    let body ctx =
      let p = Mgs.Api.proc ctx in
      Mgs.Api.write ctx (cell + p) (float_of_int p);
      Mgs_sync.Barrier.wait ctx bar
    in
    let check m =
      for p = 0 to 3 do
        if Mgs.Machine.peek m (cell + p) <> float_of_int p then failwith "bad cell"
      done
    in
    (body, check)
  in
  { Sweep.name = "trivial"; prepare }

let test_sweep_mechanics () =
  let points = Sweep.sweep ~nprocs:4 trivial_workload in
  Alcotest.(check (list int)) "all cluster sizes" [ 1; 2; 4 ]
    (List.map (fun p -> p.Sweep.cluster) points);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "positive runtime at C=%d" p.Sweep.cluster)
        true
        (p.Sweep.report.Mgs.Report.runtime > 0))
    points

let test_sweep_custom_clusters () =
  let points = Sweep.sweep ~clusters:[ 2; 4 ] ~nprocs:4 trivial_workload in
  Alcotest.(check (list int)) "restricted" [ 2; 4 ]
    (List.map (fun p -> p.Sweep.cluster) points)

let test_sweep_throughput_counters () =
  let points = Sweep.sweep ~nprocs:4 trivial_workload in
  List.iter
    (fun p ->
      let r = p.Sweep.report in
      Alcotest.(check bool)
        (Printf.sprintf "events executed at C=%d" p.Sweep.cluster)
        true
        (r.Mgs.Report.sim_events > 0);
      Alcotest.(check bool)
        (Printf.sprintf "peak queue at C=%d" p.Sweep.cluster)
        true
        (r.Mgs.Report.peak_queue > 0);
      Alcotest.(check bool)
        (Printf.sprintf "wall time measured at C=%d" p.Sweep.cluster)
        true
        (r.Mgs.Report.wall_seconds >= 0.))
    points;
  let r = (List.hd points).Sweep.report in
  let line = Format.asprintf "%a" Mgs.Report.pp_throughput r in
  Alcotest.(check bool) "throughput line mentions events" true (contains line "events=");
  Alcotest.(check bool) "throughput line mentions peak queue" true
    (contains line "peak_queue=")

(* -j N must be a pure implementation detail: the parallel sweep renders
   byte-for-byte what the sequential one does (wall_seconds is excluded
   from figures and CSV) *)
let test_sweep_jobs_deterministic () =
  let seq = Sweep.sweep ~jobs:1 ~nprocs:4 trivial_workload in
  let par = Sweep.sweep ~jobs:4 ~nprocs:4 trivial_workload in
  Alcotest.(check string) "breakdown figure identical"
    (Figures.breakdown_figure ~title:"t" seq)
    (Figures.breakdown_figure ~title:"t" par);
  Alcotest.(check string) "csv identical"
    (Figures.csv_of_sweep ~name:"t" seq)
    (Figures.csv_of_sweep ~name:"t" par);
  Alcotest.(check string) "lock figure identical"
    (Figures.lock_figure [ ("t", seq) ])
    (Figures.lock_figure [ ("t", par) ])

(* The observability exports must be part of the same guarantee: a
   sweep point run on a helper domain produces byte-identical span,
   metrics, and Chrome dumps. *)
let test_export_jobs_deterministic () =
  let run_exports cluster =
    let cfg = Mgs.Machine.config ~nprocs:4 ~cluster () in
    let m = Mgs.Machine.create cfg in
    let tr = Mgs.Machine.enable_trace m in
    let mt = Mgs.Machine.enable_metrics ~interval:1000 m in
    let body, check = trivial_workload.Sweep.prepare m in
    ignore (Mgs.Machine.run m body);
    check m;
    ( Mgs_obs.Span.json (Mgs_obs.Trace.spans tr),
      Mgs_obs.Metrics.csv mt,
      Mgs_obs.Trace.chrome_json tr )
  in
  let clusters = [ 1; 2; 4 ] in
  let seq = Mgs_util.Dpool.map ~jobs:1 run_exports clusters in
  let par = Mgs_util.Dpool.map ~jobs:4 run_exports clusters in
  List.iteri
    (fun i ((s1, m1, c1), (s2, m2, c2)) ->
      let at what = Printf.sprintf "%s identical at C=%d" what (List.nth clusters i) in
      Alcotest.(check string) (at "span dump") s1 s2;
      Alcotest.(check string) (at "metrics csv") m1 m2;
      Alcotest.(check string) (at "chrome trace") c1 c2)
    (List.combine seq par)

let test_fault_latency_renders () =
  let b =
    {
      Mgs_obs.Span.faults = 2;
      e2e = 2000;
      local = 400;
      wire = 500;
      dma = 600;
      server = 300;
      remote = 100;
      queue = 60;
      residual = 40;
    }
  in
  let fig = Figures.fault_latency [ (1, b); (16, Mgs_obs.Span.zero_breakdown) ] in
  Alcotest.(check bool) "title" true (contains fig "fault latency breakdown");
  Alcotest.(check bool) "per-fault e2e" true (contains fig "1000");
  Alcotest.(check bool) "coverage column" true (contains fig "98.0%");
  (* a cluster size with no remote faults renders as dashes, full coverage *)
  Alcotest.(check bool) "empty row dashes" true (contains fig "-");
  Alcotest.(check bool) "empty row coverage" true (contains fig "100.0%")

let test_ablation_jobs_deterministic () =
  let run jobs =
    Mgs_harness.Ablation.run ~clusters:[ 1; 2; 4 ] ~jobs ~nprocs:4
      ~variants:(Mgs_harness.Ablation.protocol_study ())
      trivial_workload
  in
  Alcotest.(check string) "ablation table identical" (run 1) (run 4)

let test_figures_render () =
  let points = Sweep.sweep ~nprocs:4 trivial_workload in
  let fig = Figures.breakdown_figure ~title:"Trivial" points in
  Alcotest.(check bool) "title present" true (contains fig "Trivial");
  Alcotest.(check bool) "metric line present" true (contains fig "breakup penalty");
  Alcotest.(check bool) "legend present" true (contains fig "legend:");
  let lockfig = Figures.lock_figure [ ("trivial", points) ] in
  Alcotest.(check bool) "lock figure has app row" true (contains lockfig "trivial");
  let t4 =
    Figures.table4
      [ { Figures.app = "X"; problem_size = "small"; seq_runtime = 1000; speedup = 3.5 } ]
  in
  Alcotest.(check bool) "table4 row" true (contains t4 "3.5");
  let summary = Figures.metrics_summary [ ("trivial", points) ] in
  Alcotest.(check bool) "summary header" true (contains summary "Multigrain potential")

let test_csv_and_messages () =
  let points = Sweep.sweep ~nprocs:4 trivial_workload in
  let csv = Figures.csv_of_sweep ~name:"trivial" points in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "header + one line per cluster" 4 (List.length lines);
  Alcotest.(check bool) "header columns" true
    (List.hd lines = "app,cluster,runtime,user,lock,barrier,mgs,lan_messages,lan_words,lock_hit_ratio");
  let mix = Figures.message_mix points in
  Alcotest.(check bool) "mix mentions a protocol tag" true
    (let has sub s =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "BAR_COMBINE" mix || has "RREQ" mix)

let test_ablation_run () =
  let out =
    Mgs_harness.Ablation.run ~clusters:[ 1; 2; 4 ] ~nprocs:4
      ~variants:(Mgs_harness.Ablation.protocol_study ())
      trivial_workload
  in
  let has sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "columns for each variant" true
    (has "MGS (eager RC)" && has "HLRC (lazy RC)" && has "Ivy (SC)");
  Alcotest.(check bool) "metric rows" true (has "breakup" && has "potential")

(* Chaos sweep: every point must terminate deterministically (chaos
   itself re-runs each point and failwiths on divergence), intensity 0
   must be the faults-off machine exactly, and a hot enough fault plan
   must actually exercise the retry/dedup machinery. *)
let test_chaos_sweep () =
  let points =
    Sweep.chaos ~intensities:[ 0.0; 4.0 ] ~check:true ~seed:11 ~nprocs:4 ~cluster:2
      trivial_workload
  in
  Alcotest.(check int) "one point per intensity" 2 (List.length points);
  List.iter
    (fun (cp : Sweep.chaos_point) ->
      Alcotest.(check bool)
        (Printf.sprintf "completed at intensity %.2f" cp.Sweep.intensity)
        true
        (Mgs.Report.completed cp.Sweep.point.Sweep.report))
    points;
  let quiet = List.hd points and hot = List.nth points 1 in
  let stats (cp : Sweep.chaos_point) =
    let ps = cp.Sweep.point.Sweep.report.Mgs.Report.pstats in
    (ps.Mgs.Pstats.net_retries, ps.Mgs.Pstats.net_dups, ps.Mgs.Pstats.net_timeouts)
  in
  Alcotest.(check (triple int int int)) "intensity 0 is the perfect wire" (0, 0, 0) (stats quiet);
  let retries, dups, _ = stats hot in
  Alcotest.(check bool) "hot plan retransmits" true (retries > 0);
  Alcotest.(check bool) "hot plan drops duplicates" true (dups > 0);
  let table = Format.asprintf "%a" Sweep.pp_chaos_table points in
  Alcotest.(check bool) "table has header and outcomes" true
    (contains table "intensity" && contains table "completed");
  Alcotest.(check int) "one table row per point" 3
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' table)))

let test_micro_structure () =
  let ms = Mgs_harness.Micro.run_all () in
  Alcotest.(check int) "twelve Table 3 rows" 12 (List.length ms);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Mgs_harness.Micro.name ^ " measured positive")
        true
        (m.Mgs_harness.Micro.measured > 0))
    ms

let () =
  Alcotest.run "harness"
    [
      ( "metrics",
        [
          Alcotest.test_case "clusters_of" `Quick test_clusters_of;
          Alcotest.test_case "breakup/potential" `Quick test_metrics_values;
          Alcotest.test_case "curvature classes" `Quick test_curvature_classes;
          Alcotest.test_case "missing point" `Quick test_runtime_of_missing;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "mechanics" `Quick test_sweep_mechanics;
          Alcotest.test_case "custom clusters" `Quick test_sweep_custom_clusters;
          Alcotest.test_case "throughput counters" `Quick test_sweep_throughput_counters;
          Alcotest.test_case "-j determinism (sweep)" `Quick test_sweep_jobs_deterministic;
          Alcotest.test_case "-j determinism (exports)" `Quick
            test_export_jobs_deterministic;
          Alcotest.test_case "-j determinism (ablation)" `Quick
            test_ablation_jobs_deterministic;
          Alcotest.test_case "chaos sweep" `Quick test_chaos_sweep;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "figures" `Quick test_figures_render;
          Alcotest.test_case "fault-latency table" `Quick test_fault_latency_renders;
          Alcotest.test_case "csv + message mix" `Quick test_csv_and_messages;
          Alcotest.test_case "ablation table" `Quick test_ablation_run;
          Alcotest.test_case "micro rows" `Quick test_micro_structure;
        ] );
    ]
