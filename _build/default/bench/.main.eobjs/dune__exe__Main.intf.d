bench/main.mli:
