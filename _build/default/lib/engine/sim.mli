(** Discrete-event simulation core.

    A simulator owns a queue of timestamped events (thunks).  [run]
    executes events in nondecreasing time order; ties are broken by
    scheduling order, so a run is fully deterministic.  All simulated
    components (network links, protocol engines, processor fibers)
    interact exclusively by scheduling events. *)

type time = int
(** Simulated time in processor cycles. *)

type t
(** A simulator instance. *)

val create : unit -> t
(** [create ()] is a fresh simulator at time 0 with no events. *)

val now : t -> time
(** [now sim] is the timestamp of the event currently executing (or the
    last executed); 0 before any event runs. *)

val at : t -> time -> (unit -> unit) -> unit
(** [at sim t f] schedules [f] to run at absolute time [max t (now sim)].
    Scheduling in the past is clamped to the present rather than
    rejected: protocol handlers routinely complete work whose latency
    was accounted on a processor clock that lags global time. *)

val after : t -> time -> (unit -> unit) -> unit
(** [after sim d f] is [at sim (now sim + d) f].  [d] must be [>= 0]. *)

val pending : t -> int
(** Number of events not yet executed. *)

val events_executed : t -> int
(** Total events executed since creation (throughput accounting). *)

val peak_pending : t -> int
(** High-water mark of the event queue length. *)

val step : t -> bool
(** [step sim] executes the next event; [false] when none remain. *)

val run : t -> ?limit:int -> unit -> int
(** [run sim ()] executes events until none remain and returns the
    number executed.  [limit] (default unlimited) bounds the count as a
    livelock guard.
    @raise Failure if [limit] is exhausted. *)
