(* Protocol-level tests: the MGS state machines observed through
   counters, server directories, and data values on small crafted
   machines. *)

open Mgs.State

let make ?(nprocs = 4) ?(cluster = 2) ?(lan = 500) () =
  let cfg = Mgs.Machine.config ~nprocs ~cluster ~lan_latency:lan ~shadow:true () in
  Mgs.Machine.create cfg

(* One page homed on the LAST processor (so SSMP 0 is remote). *)
let alloc_page m =
  let topo = Mgs.Machine.topo m in
  Mgs.Machine.alloc m ~words:1
    ~home:(Mgs_mem.Allocator.On_proc (topo.Topology.nprocs - 1))

let test_single_writer_optimization () =
  let m = make () in
  let page = alloc_page m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           Mgs.Api.write ctx page 7.0;
           Mgs.Api.release ctx
         end));
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check int) "1WINV used" 1 m.pstats.one_winvals;
  Alcotest.(check int) "full page shipped" 1 m.pstats.one_wdata;
  Alcotest.(check int) "no plain INV" 0 m.pstats.invals;
  Alcotest.(check (float 0.)) "master merged" 7.0 (Mgs.Machine.peek m page);
  (* the writer's SSMP retains its copy with write privilege *)
  let ce = get_centry m 0 (Geom.vpn_of_addr m.geom page) in
  Alcotest.(check bool) "copy retained" true (ce.pstate = P_write);
  let se = get_sentry m (Geom.vpn_of_addr m.geom page) in
  Alcotest.(check bool) "server keeps retained SSMP in write_dir" true
    (Bitset.mem se.s_write_dir 0)

let test_retained_copy_refills_cheaply () =
  let m = make () in
  let page = alloc_page m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           Mgs.Api.write ctx page 1.0;
           Mgs.Api.release ctx;
           (* the TLB was shot down but the page stayed: the second
              write must refill locally, not refetch *)
           Mgs.Api.write ctx page 2.0;
           Mgs.Api.release ctx
         end));
  Alcotest.(check int) "only one WREQ ever" 1 m.pstats.write_fetches;
  Alcotest.(check bool) "local refill happened" true (m.pstats.tlb_local_fills >= 1);
  Alcotest.(check (float 0.)) "second value merged" 2.0 (Mgs.Machine.peek m page)

let test_clean_retained_release_is_light () =
  let m = make () in
  let page = alloc_page m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           Mgs.Api.write ctx page 1.0;
           Mgs.Api.release ctx;
           (* read-only touch, then another REL for the same page ends
              up 1WCLEAN because the dirty bit is clear *)
           ignore (Mgs.Api.read ctx page);
           Mgs.Api.write ctx page 1.5;
           Mgs.Api.release ctx;
           Mgs.Api.release ctx
         end));
  Alcotest.(check int) "two full page write-backs" 2 m.pstats.one_wdata;
  Alcotest.(check (float 0.)) "value" 1.5 (Mgs.Machine.peek m page)

let test_two_writers_merge_by_diff () =
  let m = make () in
  let base =
    Mgs.Machine.alloc m ~words:8 ~home:(Mgs_mem.Allocator.On_proc 1)
  in
  let bar = ref None in
  let m_bar = Mgs_sync.Barrier.create m in
  bar := Some m_bar;
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         (* procs 0 (SSMP 0) and 2 (SSMP 1) write disjoint words *)
         if p = 0 then Mgs.Api.write ctx (base + 0) 10.0;
         if p = 2 then Mgs.Api.write ctx (base + 1) 20.0;
         Mgs_sync.Barrier.wait ctx m_bar));
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check (float 0.)) "word 0" 10.0 (Mgs.Machine.peek m (base + 0));
  Alcotest.(check (float 0.)) "word 1" 20.0 (Mgs.Machine.peek m (base + 1));
  Alcotest.(check bool) "diffs flowed" true (m.pstats.diffs >= 1);
  Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m)

let test_upgrade_path () =
  let m = make () in
  let page = alloc_page m in
  Mgs.Machine.poke m page 5.0;
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           let v = Mgs.Api.read ctx page in
           (* read brought a read copy; the write upgrades it in place *)
           Mgs.Api.write ctx page (v +. 1.0);
           Mgs.Api.release ctx
         end));
  Alcotest.(check int) "upgrade executed" 1 m.pstats.upgrades;
  Alcotest.(check int) "read fetch only" 1 m.pstats.read_fetches;
  Alcotest.(check int) "no write fetch" 0 m.pstats.write_fetches;
  Alcotest.(check (float 0.)) "merged" 6.0 (Mgs.Machine.peek m page)

let test_eager_invalidation_of_readers () =
  let m = make ~nprocs:4 ~cluster:1 () in
  let page = alloc_page m in
  Mgs.Machine.poke m page 1.0;
  let bar = Mgs_sync.Barrier.create m in
  let seen = Array.make 4 0.0 in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         (* everyone reads the initial value *)
         ignore (Mgs.Api.read ctx page);
         Mgs_sync.Barrier.wait ctx bar;
         if p = 0 then Mgs.Api.write ctx page 2.0;
         Mgs_sync.Barrier.wait ctx bar;
         (* the writer's barrier release invalidated every read copy *)
         seen.(p) <- Mgs.Api.read ctx page;
         Mgs_sync.Barrier.wait ctx bar));
  Array.iteri
    (fun p v -> Alcotest.(check (float 0.)) (Printf.sprintf "proc %d sees update" p) 2.0 v)
    seen;
  Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m)

(* Requests that arrive during REL_IN_PROG are served after the merge:
   with a huge LAN latency the release epoch is wide open when the
   reader faults, and it must still observe the merged value. *)
let test_request_queued_during_release () =
  let m = make ~nprocs:4 ~cluster:2 ~lan:20000 () in
  let page = alloc_page m in
  let got = ref 0.0 in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         match Mgs.Api.proc ctx with
         | 0 ->
           Mgs.Api.write ctx page 9.0;
           Mgs.Api.release ctx
         | 2 ->
           (* fault into the middle of proc 0's release epoch (the
              REL reaches the home around t=78k and the epoch completes
              around t=130k at this LAN latency; the home is in this
              SSMP, so the RREQ arrives almost immediately) *)
           Mgs.Api.idle_until ctx 85000;
           got := Mgs.Api.read ctx page
         | _ -> ()));
  Alcotest.(check (float 0.)) "reader waited for the merge" 9.0 !got;
  Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m)

let test_single_writer_opt_disabled () =
  let cfg =
    Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:500
      ~features:{ Mgs.State.default_features with single_writer_opt = false }
      ()
  in
  let m = Mgs.Machine.create cfg in
  let page = alloc_page m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           Mgs.Api.write ctx page 7.0;
           Mgs.Api.release ctx
         end));
  Alcotest.(check int) "no 1WINV" 0 m.pstats.one_winvals;
  Alcotest.(check int) "plain INV instead" 1 m.pstats.invals;
  Alcotest.(check int) "diff returned" 1 m.pstats.diffs;
  Alcotest.(check (float 0.)) "merged via diff" 7.0 (Mgs.Machine.peek m page);
  (* without the optimization the copy is dropped, not retained *)
  let ce = get_centry m 0 (Geom.vpn_of_addr m.geom page) in
  Alcotest.(check bool) "copy freed" true (ce.pstate = P_inv)

let test_early_read_ack_still_correct () =
  let cfg =
    Mgs.Machine.config ~nprocs:4 ~cluster:1 ~lan_latency:500 ~shadow:true
      ~features:{ Mgs.State.default_features with early_read_ack = true }
      ()
  in
  let m = Mgs.Machine.create cfg in
  let page = alloc_page m in
  Mgs.Machine.poke m page 3.0;
  let bar = Mgs_sync.Barrier.create m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         ignore (Mgs.Api.read ctx page);
         Mgs_sync.Barrier.wait ctx bar;
         if p = 1 then Mgs.Api.write ctx page 4.0;
         Mgs_sync.Barrier.wait ctx bar;
         Alcotest.(check (float 0.)) "update visible" 4.0 (Mgs.Api.read ctx page);
         Mgs_sync.Barrier.wait ctx bar));
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m);
  Alcotest.(check bool) "read invalidations happened" true (m.pstats.acks > 0)

let test_early_read_ack_is_faster () =
  (* The optimization targets pages whose read copies are expensive to
     clean (paper: "the latency of invalidation for widely read shared
     data can be very high"), so crank the per-line cleaning cost until
     the read-invalidation path dominates the release. *)
  let costs =
    let c = Mgs_machine.Costs.default in
    { c with Mgs_machine.Costs.proto = { c.Mgs_machine.Costs.proto with clean_per_line = 600 } }
  in
  let release_time features =
    let cfg = Mgs.Machine.config ~costs ~nprocs:8 ~cluster:1 ~lan_latency:1000 ~features () in
    let m = Mgs.Machine.create cfg in
    let page = alloc_page m in
    let t = ref 0 in
    ignore
      (Mgs.Machine.run m (fun ctx ->
           let p = Mgs.Api.proc ctx in
           if p < 6 then ignore (Mgs.Api.read ctx page);
           if p = 0 then begin
             Mgs.Api.idle_until ctx 200000;
             Mgs.Api.write ctx page 1.0;
             let c0 = Mgs.Api.cycles ctx in
             Mgs.Api.release ctx;
             t := Mgs.Api.cycles ctx - c0
           end));
    !t
  in
  (* disable the single-writer optimization in both variants so the
     writer answers with a diff (no cleaning) and the read-copy
     cleaning is the critical path *)
  let base = { Mgs.State.default_features with Mgs.State.single_writer_opt = false } in
  let eager = release_time base in
  let early = release_time { base with Mgs.State.early_read_ack = true } in
  Alcotest.(check bool)
    (Printf.sprintf "early ack releases faster (%d < %d)" early eager)
    true (early < eager)

let test_pipelined_release_correct () =
  (* pipelined releases must produce the same data and strictly fewer
     (or equal) cycles than serial ones on a multi-page flush *)
  let run pipelined =
    let features = { Mgs.State.default_features with pipelined_release = pipelined } in
    let cfg =
      Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:1000 ~features ~shadow:true ()
    in
    let m = Mgs.Machine.create cfg in
    let base = Mgs.Machine.alloc m ~words:(256 * 6) ~home:(Mgs_mem.Allocator.On_proc 3) in
    let t = ref 0 in
    ignore
      (Mgs.Machine.run m (fun ctx ->
           if Mgs.Api.proc ctx = 0 then begin
             for pg = 0 to 5 do
               Mgs.Api.write ctx (base + (256 * pg)) (float_of_int pg)
             done;
             let c0 = Mgs.Api.cycles ctx in
             Mgs.Api.release ctx;
             t := Mgs.Api.cycles ctx - c0
           end));
    Mgs.Machine.assert_quiescent m;
    for pg = 0 to 5 do
      Alcotest.(check (float 0.))
        (Printf.sprintf "page %d merged" pg)
        (float_of_int pg)
        (Mgs.Machine.peek m (base + (256 * pg)))
    done;
    !t
  in
  let serial = run false in
  let piped = run true in
  Alcotest.(check bool)
    (Printf.sprintf "pipelining helps (%d < %d)" piped serial)
    true (piped < serial)

(* Regression: the WNOTIFY race.  An SSMP with a read copy upgrades it
   (write + WNOTIFY) while another SSMP's release epoch is in flight:
   the server still believes the upgrader is a reader, so the single
   writer is granted retention (1WINV/1WDATA) although a second writer
   exists.  Correctness then requires (a) the upgrader's DIFF to merge
   over the full page, and (b) the stale retained copy to be recalled
   before the releasers are acknowledged.  This exact interleaving lost
   writes in early versions of the implementation. *)
let test_wnotify_race_regression () =
  let m = make ~nprocs:4 ~cluster:2 ~lan:20000 () in
  let page = alloc_page m in
  Mgs.Machine.poke m page 1.0;
  let results = ref [] in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         match Mgs.Api.proc ctx with
         | 0 ->
           (* SSMP 0 takes a read copy early, then upgrades it in the
              middle of SSMP 1's release epoch *)
           ignore (Mgs.Api.read ctx page);
           Mgs.Api.idle_until ctx 85_000;
           Mgs.Api.write ctx (page + 1) 10.0;
           Mgs.Api.release ctx
         | 2 ->
           (* SSMP 1 writes and releases; with this LAN latency the
              epoch spans roughly t = 78k .. 130k *)
           Mgs.Api.write ctx page 9.0;
           Mgs.Api.release ctx
         | 3 ->
           (* late reader checks both writes survived *)
           Mgs.Api.idle_until ctx 400_000;
           results := [ Mgs.Api.read ctx page; Mgs.Api.read ctx (page + 1) ]
         | _ -> ()));
  Mgs.Machine.assert_quiescent m;
  (match !results with
  | [ a; b ] ->
    Alcotest.(check (float 0.)) "writer's word survived" 9.0 a;
    Alcotest.(check (float 0.)) "upgrader's word survived" 10.0 b
  | _ -> Alcotest.fail "reader did not run");
  Alcotest.(check (float 0.)) "master word 0" 9.0 (Mgs.Machine.peek m page);
  Alcotest.(check (float 0.)) "master word 1" 10.0 (Mgs.Machine.peek m (page + 1));
  Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m);
  (* pin the interleaving: the epoch used the single-writer path AND
     collected a diff from the racing upgrader *)
  Alcotest.(check bool) "single-writer path taken" true (m.pstats.one_winvals >= 1);
  Alcotest.(check bool) "upgrader answered with a diff" true (m.pstats.diffs >= 1);
  Alcotest.(check bool) "upgrade really raced" true (m.pstats.upgrades >= 1)

let test_quiescence_detects_dirty_duq () =
  let m = make () in
  let page = alloc_page m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then Mgs.Api.write ctx page 1.0
         (* no release: the DUQ entry survives the run *)));
  Alcotest.check_raises "quiescence check fires"
    (Failure "proc 0: delayed update queue not empty") (fun () ->
      Mgs.Machine.assert_quiescent m)

let test_address_bounds () =
  let m = make () in
  let _page = alloc_page m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           (try
              ignore (Mgs.Api.read ctx 100000);
              Alcotest.fail "expected out-of-heap failure"
            with Invalid_argument _ -> ())
         end));
  Alcotest.check_raises "poke out of range"
    (Invalid_argument "Machine: address 99999 outside the shared heap") (fun () ->
      Mgs.Machine.poke m 99999 0.0)

let test_single_ssmp_has_no_protocol () =
  let cfg = Mgs.Machine.config ~nprocs:4 ~cluster:4 () in
  let m = Mgs.Machine.create cfg in
  let base = Mgs.Machine.alloc m ~words:64 ~home:Mgs_mem.Allocator.Interleaved in
  let bar = Mgs_sync.Barrier.create m in
  let report =
    Mgs.Machine.run m (fun ctx ->
        let p = Mgs.Api.proc ctx in
        for i = 0 to 15 do
          Mgs.Api.write ctx (base + (p * 16) + i) (float_of_int p)
        done;
        Mgs_sync.Barrier.wait ctx bar)
  in
  Alcotest.(check int) "no LAN messages" 0 report.Mgs.Report.lan_messages;
  Alcotest.(check int) "no fetches" 0
    (report.Mgs.Report.pstats.Mgs.Pstats.read_fetches
    + report.Mgs.Report.pstats.Mgs.Pstats.write_fetches);
  Alcotest.(check (float 0.)) "zero MGS time" 0.0 report.Mgs.Report.breakdown.Mgs.Report.mgs

let test_page_size_parameter () =
  (* smaller pages mean more pages for the same data, hence more RELs
     when everything is flushed *)
  let releases page_words =
    let cfg = Mgs.Machine.config ~page_words ~nprocs:2 ~cluster:1 ~lan_latency:0 () in
    let m = Mgs.Machine.create cfg in
    let base = Mgs.Machine.alloc m ~words:256 ~home:(Mgs_mem.Allocator.On_proc 1) in
    ignore
      (Mgs.Machine.run m (fun ctx ->
           if Mgs.Api.proc ctx = 0 then begin
             for i = 0 to 255 do
               Mgs.Api.write ctx (base + i) 1.0
             done;
             Mgs.Api.release ctx
           end));
    m.pstats.releases
  in
  Alcotest.(check int) "256-word pages: 1 REL" 1 (releases 256);
  Alcotest.(check int) "64-word pages: 4 RELs" 4 (releases 64)

let () =
  Alcotest.run "proto"
    [
      ( "single-writer optimization",
        [
          Alcotest.test_case "1WINV path" `Quick test_single_writer_optimization;
          Alcotest.test_case "retained copy refills" `Quick test_retained_copy_refills_cheaply;
          Alcotest.test_case "clean retained release" `Quick test_clean_retained_release_is_light;
        ] );
      ( "multiple writers",
        [
          Alcotest.test_case "diff merge" `Quick test_two_writers_merge_by_diff;
          Alcotest.test_case "upgrade path" `Quick test_upgrade_path;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "eager invalidation" `Quick test_eager_invalidation_of_readers;
          Alcotest.test_case "queued during release" `Quick test_request_queued_during_release;
          Alcotest.test_case "WNOTIFY race regression" `Quick test_wnotify_race_regression;
        ] );
      ( "feature toggles",
        [
          Alcotest.test_case "pipelined release" `Quick test_pipelined_release_correct;
          Alcotest.test_case "single-writer opt off" `Quick test_single_writer_opt_disabled;
          Alcotest.test_case "early read ack correct" `Quick test_early_read_ack_still_correct;
          Alcotest.test_case "early read ack faster" `Quick test_early_read_ack_is_faster;
        ] );
      ( "machine checks",
        [
          Alcotest.test_case "quiescence detects dirty DUQ" `Quick
            test_quiescence_detects_dirty_duq;
          Alcotest.test_case "address bounds" `Quick test_address_bounds;
          Alcotest.test_case "C=P bypasses software" `Quick test_single_ssmp_has_no_protocol;
          Alcotest.test_case "page size parameter" `Quick test_page_size_parameter;
        ] );
    ]
