(* Bounded event trace, sharded per SSMP.

   Each shard ("cell") owns a private event ring and per-tag histogram
   table: under the parallel engine every domain emits only into its
   own cell, so the hot path shares nothing.  Reads merge the cells —
   events by their genealogy stamp (the key of the simulator event that
   emitted them), histograms exactly — reconstructing the canonical
   execution order, so every export is byte-identical across job
   counts.  A single-cell trace skips stamping and behaves exactly as
   the historical single-domain implementation.

   Subscribers remain global and run synchronously at every emit: the
   online invariant checker builds cross-shard state, which is exactly
   why an installed subscriber still forces the engine onto one
   domain. *)

type cell = {
  ring : Event.t Ring.t;
  (* Order stamps for the ring's slots, same rotation: the event in slot
     [i] was emitted under the genealogy key [skey.(i)] — or, when that
     slot holds [Shardq.no_parent] (or [skey] was never allocated),
     under the unboxed scalar pseudo-key [(sfire, ssched, 0, 0).(i)]
     the sequential engine published.  Scalar stamps stay unboxed so a
     traced sequential event costs no allocation; they are materialized
     as key records only at merge time (bounded by the ring capacity).
     Each array is allocated on first use — a sequential run never
     allocates [skey], a sharded run never allocates [sfire]/[ssched] —
     and single-cell traces skip stamping entirely. *)
  cell_cap : int;
  mutable skey : Mgs_engine.Shardq.key array;
  mutable sfire : int array;
  mutable ssched : int array;
  hists : (string, Hist.t) Hashtbl.t;
}

type t = {
  ncells : int;
  cells : cell array;
  mutable subscribers : (Event.t -> unit) list;
  spans : Span.t;
  mutable host_seq : int; (* order stamp for host-side emissions *)
}

let default_capacity = 65536

let create ?(capacity = default_capacity) ?span_capacity ?(cells = 1) () =
  if cells < 1 then invalid_arg "Trace.create: cells";
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  (* [capacity] is the TOTAL event budget, divided among the cells, so
     a multi-cell trace costs what the single-cell one did *)
  let cell_cap = max (min capacity 64) ((capacity + cells - 1) / cells) in
  {
    ncells = cells;
    cells =
      Array.init cells (fun _ ->
          {
            ring = Ring.create ~capacity:cell_cap;
            cell_cap;
            skey = [||];
            sfire = [||];
            ssched = [||];
            hists = Hashtbl.create 32;
          });
    subscribers = [];
    spans = Span.create ?capacity:span_capacity ~cells ();
    host_seq = 0;
  }

let subscribe t f = t.subscribers <- f :: t.subscribers

let has_subscribers t = t.subscribers <> []

let spans t = t.spans

let cells t = t.ncells

let cur_cell t =
  let c = Mgs_engine.Shard.cur () in
  if c < 0 || c >= t.ncells then 0 else c

let hist_for cl tag =
  try Hashtbl.find cl.hists tag
  with Not_found ->
    let h = Hist.create () in
    Hashtbl.add cl.hists tag h;
    h

(* A single-cell trace skips the stamp (the ring order is already the
   execution order).  Multi-cell emissions record the executing event's
   genealogy — as scalars when the sequential engine's pseudo-key is
   still unmaterialized, as the (already-allocated) key record when the
   sharded engine minted one — or a synthetic (time, host counter)
   scalar key host-side.  The slot index mirrors [Ring.push]'s write
   position, so the stamp arrays rotate with the ring. *)
let store_key cl slot k =
  if Array.length cl.skey = 0 then
    cl.skey <- Array.make cl.cell_cap Mgs_engine.Shardq.no_parent;
  cl.skey.(slot) <- k

let store_scalar cl slot ~fire ~sched =
  if Array.length cl.sfire = 0 then begin
    cl.sfire <- Array.make cl.cell_cap 0;
    cl.ssched <- Array.make cl.cell_cap 0
  end;
  if Array.length cl.skey > 0 then
    cl.skey.(slot) <- Mgs_engine.Shardq.no_parent;
  cl.sfire.(slot) <- fire;
  cl.ssched.(slot) <- sched

let emit t (e : Event.t) =
  let cl = t.cells.(cur_cell t) in
  if t.ncells > 1 then begin
    let slot = Ring.pushed cl.ring mod cl.cell_cap in
    if Mgs_engine.Shard.cur () >= 0 then
      if Mgs_engine.Shard.running_scalar () then
        store_scalar cl slot ~fire:(Mgs_engine.Shard.running_fire ())
          ~sched:(Mgs_engine.Shard.running_sched ())
      else store_key cl slot (Mgs_engine.Shard.running_key ())
    else begin
      (* Host emissions (outside any event) are rare — a materialized
         synthetic key, ordered by time then a host counter, is fine.
         [sched = max_int] sorts it after every event emission of the
         same instant, matching the sequential engine where host code
         runs only once the queue has drained past that time. *)
      let seq = t.host_seq in
      t.host_seq <- seq + 1;
      store_key cl slot
        (Mgs_engine.Shardq.key ~fire:e.time ~sched:max_int ~src:max_int ~seq
           ~parent:Mgs_engine.Shardq.no_parent)
    end
  end;
  Ring.push cl.ring e;
  Hist.add (hist_for cl e.tag) e.dur;
  List.iter (fun f -> f e) t.subscribers

(* The genealogy key of the event in ring slot [slot]: the recorded key
   record, or a scalar stamp materialized on demand (merge-time only,
   bounded by the ring capacity). *)
let key_at cl slot =
  let k =
    if Array.length cl.skey = 0 then Mgs_engine.Shardq.no_parent
    else cl.skey.(slot)
  in
  if k != Mgs_engine.Shardq.no_parent then k
  else
    Mgs_engine.Shardq.key ~fire:cl.sfire.(slot) ~sched:cl.ssched.(slot) ~src:0
      ~seq:0 ~parent:Mgs_engine.Shardq.no_parent

let emitted t = Array.fold_left (fun acc cl -> acc + Ring.pushed cl.ring) 0 t.cells

let retained t = Array.fold_left (fun acc cl -> acc + Ring.length cl.ring) 0 t.cells

let dropped t = Array.fold_left (fun acc cl -> acc + Ring.dropped cl.ring) 0 t.cells

(* Merge the retained events of every cell into canonical execution
   order: sort by genealogy stamp, ties (same event emitting several
   events — necessarily one cell) by position in that cell's ring.
   Single-cell: the ring order, no sort. *)
let merged t =
  if t.ncells = 1 then Array.of_list (Ring.to_list t.cells.(0).ring)
  else begin
    let total = retained t in
    let nil = Event.make ~time:0 ~engine:Event.Network ~tag:"" () in
    let entries = Array.make total (Mgs_engine.Shardq.no_parent, 0, nil) in
    let idx = ref 0 in
    Array.iter
      (fun cl ->
        let cap = Ring.capacity cl.ring in
        let start = (Ring.pushed cl.ring - Ring.length cl.ring) mod cap in
        let pos = ref 0 in
        Ring.iter
          (fun ev ->
            entries.(!idx) <- (key_at cl ((start + !pos) mod cap), !pos, ev);
            incr idx;
            incr pos)
          cl.ring)
      t.cells;
    Array.sort
      (fun (k1, p1, _) (k2, p2, _) ->
        let c = Mgs_engine.Shardq.cmp_key k1 k2 in
        if c <> 0 then c else compare p1 p2)
      entries;
    Array.map (fun (_, _, e) -> e) entries
  end

(* Events with transaction IDs translated to their dense export values
   (identity for a single-cell trace). *)
let merged_mapped t =
  let tx = Span.txn_mapper t.spans in
  Array.map
    (fun (e : Event.t) ->
      let m = tx e.txn in
      if m = e.txn then e else { e with txn = m })
    (merged t)

let events t = Array.to_list (merged_mapped t)

let hist t tag =
  let found = ref None in
  Array.iter
    (fun cl ->
      match Hashtbl.find_opt cl.hists tag with
      | None -> ()
      | Some h ->
        let acc =
          match !found with
          | Some acc -> acc
          | None ->
            let acc = Hist.create () in
            found := Some acc;
            acc
        in
        Hist.merge ~into:acc h)
    t.cells;
  !found

let histograms t =
  let tags = Hashtbl.create 32 in
  Array.iter
    (fun cl -> Hashtbl.iter (fun tag _ -> Hashtbl.replace tags tag ()) cl.hists)
    t.cells;
  let tag_list = List.sort compare (Hashtbl.fold (fun tag () acc -> tag :: acc) tags []) in
  List.map (fun tag -> (tag, Option.get (hist t tag))) tag_list

(* --- Chrome trace_event export ------------------------------------- *)

(* All strings flowing into the JSON pass through {!Json.escape}, which
   handles quotes, backslashes, and control characters, and \u-escapes
   everything outside printable ASCII — a tag with arbitrary bytes can
   no longer produce unparseable output. *)
let json_escape = Json.escape

(* One Chrome "complete" ('X') slice per event: pid = the SSMP where the
   work lands, tid = the processor there, ts..ts+dur the transfer or
   occupancy interval in simulated cycles (1 cycle = 1 "us" on the
   chrome://tracing timeline). *)
let chrome_event buf (e : Event.t) =
  let pid = if e.dst_ssmp >= 0 then e.dst_ssmp else max e.src_ssmp 0 in
  let tid = if e.dst >= 0 then e.dst else max e.src 0 in
  let ts = e.time - max e.dur 0 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"vpn\":%d,\"src\":%d,\"dst\":%d,\"words\":%d,\"cost\":%d,\"txn\":%d}}"
       (json_escape e.tag)
       (Event.engine_name e.engine)
       ts (max e.dur 0) pid tid e.vpn e.src e.dst e.words e.cost e.txn)

let chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n'
  in
  Array.iter
    (fun e ->
      sep ();
      chrome_event buf e)
    (merged_mapped t);
  (* the spans section: async begin/end per span plus parent-to-child
     flow arrows, in the same traceEvents array *)
  Span.chrome_section buf t.spans ~emit_sep:sep;
  (* multi-cell traces add one engine lane per shard: a process_name
     metadata record plus a per-shard emitted-events counter.  Both are
     deterministic (per-shard emission counts are a pure function of
     the simulated program). *)
  if t.ncells > 1 then
    Array.iteri
      (fun c cl ->
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"ssmp%d (shard %d)\"}}"
             c c c);
        let last = ref 0 in
        Ring.iter (fun (ev : Event.t) -> last := ev.time) cl.ring;
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"engine.events\",\"ph\":\"C\",\"ts\":%d,\"pid\":%d,\"args\":{\"emitted\":%d}}"
             !last c (Ring.pushed cl.ring)))
      t.cells;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome t oc = output_string oc (chrome_json t)

let pp_overflow_warning ppf t =
  if dropped t > 0 then begin
    Format.fprintf ppf
      "WARNING: event ring overflowed: %d of %d events dropped — histograms are \
       complete, but the retained event window (and any decomposition derived from \
       it) covers only the last %d events; rerun with a larger trace capacity@."
      (dropped t) (emitted t) (retained t);
    if t.ncells > 1 then
      Array.iteri
        (fun c cl ->
          if Ring.dropped cl.ring > 0 then
            Format.fprintf ppf
              "         shard %d dropped %d of %d (a quiet shard's intact ring does \
               not recover another shard's history)@."
              c (Ring.dropped cl.ring) (Ring.pushed cl.ring))
        t.cells
  end

let pp_summary ppf t =
  Format.fprintf ppf "events: %d emitted, %d retained, %d dropped@." (emitted t)
    (retained t) (dropped t);
  pp_overflow_warning ppf t;
  if Span.dropped t.spans > 0 then
    Format.fprintf ppf
      "WARNING: span store full: %d spans dropped — the latency decomposition \
       undercounts@."
      (Span.dropped t.spans);
  List.iter
    (fun (tag, h) -> Format.fprintf ppf "  %-14s %a@." tag Hist.pp h)
    (histograms t)
