test/test_spans.mli:
