(** Imperative min-priority queue specialised for discrete-event
    simulation.

    Keys are [(priority, seq)] pairs ordered lexicographically; the caller
    supplies a monotonically increasing sequence number to break ties
    deterministically (events scheduled first fire first).  Implemented as
    a pairing heap, giving O(1) insert and amortised O(log n) extraction. *)

type 'a t
(** Mutable priority queue holding elements of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty queue. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [true] iff [q] holds no element. *)

val length : 'a t -> int
(** [length q] is the number of queued elements. *)

val push : 'a t -> prio:int -> seq:int -> ?own:int -> 'a -> unit
(** [push q ~prio ~seq ?own x] inserts [x] with key [(prio, seq)].
    [own] (default [0]) is an opaque ownership tag carried alongside the
    element — the simulator uses it to remember which shard an event
    belongs to — readable via {!popped_own} after {!pop_min}. *)

val min_prio : 'a t -> int option
(** [min_prio q] is the priority of the minimum element, if any. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop q] removes and returns the minimum element as
    [(prio, seq, value)], or [None] when [q] is empty. *)

val clear : 'a t -> unit
(** [clear q] removes every element. *)

exception Empty_queue
(** Raised by {!pop_min} on an empty queue. *)

val pop_min : 'a t -> 'a
(** [pop_min q] removes and returns the minimum element's value without
    allocating (unlike {!pop}, which boxes an option and a tuple).  The
    element's priority is readable via {!popped_prio} until the next
    pop.  @raise Empty_queue when [q] is empty. *)

val popped_prio : 'a t -> int
(** [popped_prio q] is the priority of the element most recently removed
    by {!pop_min}; [0] before any pop. *)

val popped_seq : 'a t -> int
(** [popped_seq q] is the sequence number of the element most recently
    removed by {!pop_min}; [0] before any pop. *)

val popped_own : 'a t -> int
(** [popped_own q] is the ownership tag of the element most recently
    removed by {!pop_min}; [0] before any pop. *)
