lib/core/consistency.ml: Proto Proto_hlrc State
