(** Cycle-cost parameters of the simulated DSSMP.

    The hardware group reproduces Alewife's measured shared-memory
    latencies directly (Table 3, top).  The software groups give the
    low-level costs (handler dispatch, per-word copies, page cleaning,
    ...) from which the paper's measured software-protocol latencies
    (TLB fill, inter-SSMP misses, releases) {e emerge} when the MGS
    protocol runs; defaults are calibrated so the micro benchmarks land
    close to Table 3. *)

type hardware = {
  cache_hit : int;  (** cache hit, incl. load-use *)
  miss_local : int;  (** 11: fill from local memory *)
  miss_remote : int;  (** 38: fill from a remote node's memory, clean *)
  miss_2party : int;  (** 42: requester + dirty home *)
  miss_3party : int;  (** 63: requester + home + dirty third node *)
  remote_software : int;  (** 425: LimitLESS software-extended directory *)
  hw_dir_pointers : int;  (** 5: hardware sharer pointers before overflow *)
  cache_line_slots : int;  (** direct-mapped cache slots per processor *)
}

type svm = {
  array_translation : int;  (** 18: in-line translation, distributed array *)
  pointer_translation : int;  (** 24: in-line translation, pointer *)
  fault_entry : int;  (** trap into the TLB fault handler *)
  table_lookup : int;  (** local page table probe *)
  tlb_write : int;  (** install a TLB entry *)
  map_lock : int;  (** acquire+release the per-mapping SSMP lock *)
}

type proto = {
  handler_dispatch : int;  (** active-message handler invocation *)
  msg_send : int;  (** compose and inject a message *)
  intra_msg : int;  (** extra latency for an intra-SSMP protocol message *)
  dma_per_word : int;  (** DMA transfer, per word *)
  frame_alloc : int;  (** allocate and install a physical page frame *)
  twin_alloc : int;  (** allocate a twin page *)
  twin_per_word : int;  (** copy one word into the twin *)
  diff_per_word : int;  (** compare one word when computing a diff *)
  diff_word_out : int;  (** emit one changed word into a diff *)
  merge_per_word : int;  (** apply one diff word at the home *)
  copy_per_word : int;  (** bulk copy one word (1WDATA merge) *)
  clean_per_line : int;  (** page cleaning: prefetch/store/flush one line *)
  tlb_inv : int;  (** interrupt a processor and invalidate a TLB entry *)
  server_op : int;  (** server-side bookkeeping per request *)
  duq_op : int;  (** delayed-update-queue insert or pop *)
}

type lan = {
  latency : int;  (** fixed inter-SSMP message latency (paper: 1000) *)
  send_occupancy : int;  (** sender-side queue occupancy per message *)
}

type sync = {
  lock_local_acquire : int;  (** token present: shared-memory acquire *)
  lock_local_release : int;
  barrier_local : int;  (** per-processor cost of the intra-SSMP combine *)
  flat_barrier : int;  (** per-processor cost of the C = P barrier (P4) *)
  flat_lock : int;  (** per-op cost of the C = P lock (P4) *)
}

type t = {
  hardware : hardware;
  svm : svm;
  proto : proto;
  lan : lan;
  sync : sync;
}

val default : t
(** Calibrated to approximate Table 3 at a 1 KB page size. *)

val with_lan_latency : t -> int -> t
(** [with_lan_latency c d] is [c] with the inter-SSMP latency set to [d]. *)
