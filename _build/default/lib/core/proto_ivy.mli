(** A conventional sequentially-consistent, single-writer page protocol
    (Ivy / Li-Hudak style), as the software-DSM baseline MGS's
    multiple-writer release-consistent protocol is designed to beat.

    At most one SSMP holds a page with write privilege at any time; any
    number may hold read copies.  A write fault invalidates every copy
    and transfers exclusive ownership; a read fault downgrades the owner
    (which writes the page back and keeps a read copy).  There are no
    twins, diffs, or delayed update queues — and therefore no release
    operations: synchronization objects need no memory flushes.

    Selected with [Machine.config ~protocol:Ivy]; the ablation benches
    compare it against MGS on the paper's workloads, where false sharing
    makes pages ping-pong. *)

val fault : State.t -> proc:int -> vpn:int -> write:bool -> unit
(** Handle a TLB fault under the Ivy protocol.  Fiber context; returns
    with the mapping installed at the required privilege. *)
