open Mgs.State

(* Pluggable lock algorithms behind one face, mirroring the
   [Mgs.Protocol] registry: the harness and the CLIs select a lock by
   name, and adding an algorithm means one [register] call.

   Every algorithm is home-based: a designated home processor holds the
   arbitration state (the test-and-set word, the ticket counters, the
   queue tail) and fibers talk to it with active messages, paying the
   same occupancy and LAN costs as the coherence protocols.  The
   paper's token lock is the baseline entry, delegating to {!Lock}
   unchanged so that existing runs stay byte-identical.

   Host-side instrumentation (handoff gaps, wait cycles, the
   [lock.handoff] spans) lives in the wrapper below, outside the
   simulated machine: it never schedules events, charges cycles, or
   posts messages, so enabling it cannot move a single simulated
   cycle. *)

(* --- the algorithm face -------------------------------------------- *)

type raw = {
  r_acquire : Mgs.Api.ctx -> unit;
  r_release : Mgs.Api.ctx -> unit;
  r_acquires : unit -> int;
  r_hits : unit -> int;
  r_waiters : unit -> int;
  r_waiters_cell : int -> int; (* one SSMP's parked fibers, shard-local *)
  r_reset : unit -> unit;
}

(* --- shared fiber-side plumbing ------------------------------------ *)

let msg m = (stats m).Mgs.Pstats.lock_msgs <- (stats m).Mgs.Pstats.lock_msgs + 1

(* One-shot parking lot: hand [wake] to a message handler, then [park]
   the calling fiber until it fires. *)
let parker m =
  let q = Mgs_engine.Waitq.create () in
  let wake () = ignore (Mgs_engine.Waitq.wake_one m.sim q) in
  (q, wake)

(* Acquire-side entry shared by every algorithm: charge the local
   acquire cost, count the episode, and open the transaction root that
   the algorithm's messages will inherit. *)
let enter_acquire m (ctx : Mgs.Api.ctx) ~home_proc =
  let cpu = ctx.cpu in
  Cpu.sync_busy cpu;
  Cpu.advance cpu Lock m.costs.sync.lock_local_acquire;
  (syncs m).lock_acquires <- (syncs m).lock_acquires + 1;
  let root =
    span_open m ~parent:Span.none ~label:"sync.lock" ~engine:Mgs_obs.Event.Sync
      ~src:ctx.Mgs.Api.proc ~dst:home_proc ()
  in
  span_set m root;
  obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.lock_acquire" ~src:ctx.Mgs.Api.proc
    ~dst:home_proc ~cost:0 ~vpn:(-1) ~words:0 ~dur:0;
  root

let exit_acquire m root ~hit ~notices ~proc =
  if hit then (syncs m).lock_hits <- (syncs m).lock_hits + 1;
  Mgs.Consistency.at_acquire m ~proc ~notices;
  span_close m root;
  span_set m Span.none

(* Release-side entry: flush per release consistency (this is what
   dilates critical sections), then charge the local release cost. *)
let enter_release m (ctx : Mgs.Api.ctx) ~home_proc ~notices =
  let cpu = ctx.cpu in
  Cpu.sync_busy cpu;
  let root =
    span_open m ~parent:Span.none ~label:"sync.unlock" ~engine:Mgs_obs.Event.Sync
      ~src:ctx.Mgs.Api.proc ~dst:home_proc ()
  in
  span_set m root;
  obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.lock_release" ~src:ctx.Mgs.Api.proc
    ~dst:home_proc ~vpn:(-1) ~words:0 ~cost:0 ~dur:0;
  Mgs.Consistency.at_release m ~proc:ctx.Mgs.Api.proc ~notices;
  span_set m root;
  Cpu.advance cpu Lock m.costs.sync.lock_local_release;
  root

let exit_release m root =
  span_close m root;
  span_set m Span.none

let home_local m ~home_proc proc =
  Topology.ssmp_of_proc m.topo proc = Topology.ssmp_of_proc m.topo home_proc

(* Per-SSMP episode counters: fiber-side code bumps the cell of the
   calling processor's SSMP — the shard it executes on — so concurrent
   shards of the parallel engine never write the same slot.  Accessors
   sum; sums are commutative, so they match the sequential engine. *)
let asum = Array.fold_left ( + ) 0

(* --- test-and-set with exponential backoff ------------------------- *)

(* The simplest contender: fire a TAS message at the home, and on
   failure sleep for an exponentially growing (capped) interval before
   trying again.  No queue, no fairness — the point of comparison for
   the queue locks below. *)
module Tas = struct
  type t = {
    m : Mgs.State.t;
    home : int;
    mutable held : bool;
    notices : (int, int) Hashtbl.t;
    acquires : int array; (* per caller SSMP *)
    hits : int array;
    blocked : int array;
  }

  let create (m : Mgs.Machine.t) ~home =
    let n = m.topo.Topology.nssmps in
    {
      m;
      home = Topology.first_proc_of_ssmp m.topo home;
      held = false;
      notices = Hashtbl.create 16;
      acquires = Array.make n 0;
      hits = Array.make n 0;
      blocked = Array.make n 0;
    }

  (* Backoff base ~ one LAN round trip; capped so a long wait never
     over-sleeps past a free lock by more than the cap. *)
  let backoff m attempt =
    let base = max 1 (2 * m.costs.lan.latency) in
    base lsl min (attempt - 1) 5

  let acquire (ctx : Mgs.Api.ctx) l =
    let m = l.m in
    let cpu = ctx.cpu in
    let proc = ctx.Mgs.Api.proc in
    let root = enter_acquire m ctx ~home_proc:l.home in
    let cell = Topology.ssmp_of_proc m.topo proc in
    l.acquires.(cell) <- l.acquires.(cell) + 1;
    let attempt = ref 0 in
    let won = ref false in
    while not !won do
      incr attempt;
      Cpu.advance cpu Lock m.costs.proto.msg_send;
      msg m;
      let q, wake = parker m in
      let granted = ref false in
      Am.post m.am ~tag:"TAS" ~src:proc ~dst:l.home ~words:0
        ~cost:m.costs.sync.lock_local_acquire (fun _t ->
          if not l.held then begin
            l.held <- true;
            granted := true
          end;
          msg m;
          Am.post m.am ~tag:"TAS_ACK" ~src:l.home ~dst:proc ~words:0
            ~cost:m.costs.sync.lock_local_acquire (fun _t -> wake ()));
      l.blocked.(cell) <- l.blocked.(cell) + 1;
      Mgs_engine.Waitq.park q;
      l.blocked.(cell) <- l.blocked.(cell) - 1;
      Cpu.resume_charge cpu Lock (Sim.now m.sim);
      span_set m root;
      if !granted then won := true
      else begin
        (* back off in simulated time, charged to the Lock bucket *)
        l.blocked.(cell) <- l.blocked.(cell) + 1;
        Mgs_engine.Fiber.sleep_until m.sim (Sim.now m.sim + backoff m !attempt);
        l.blocked.(cell) <- l.blocked.(cell) - 1;
        Cpu.resume_charge cpu Lock (Sim.now m.sim);
        span_set m root
      end
    done;
    let hit = !attempt = 1 && home_local m ~home_proc:l.home proc in
    if hit then l.hits.(cell) <- l.hits.(cell) + 1;
    exit_acquire m root ~hit ~notices:l.notices ~proc

  let release (ctx : Mgs.Api.ctx) l =
    let m = l.m in
    if not l.held then failwith "Locks(tas): release of a free lock";
    let root = enter_release m ctx ~home_proc:l.home ~notices:l.notices in
    Cpu.advance ctx.cpu Lock m.costs.proto.msg_send;
    msg m;
    Am.post m.am ~tag:"TAS_REL" ~src:ctx.Mgs.Api.proc ~dst:l.home ~words:0
      ~cost:m.costs.sync.lock_local_release (fun _t -> l.held <- false);
    exit_release m root

  let reset l =
    l.held <- false;
    Array.fill l.blocked 0 (Array.length l.blocked) 0;
    Hashtbl.reset l.notices;
    Array.fill l.acquires 0 (Array.length l.acquires) 0;
    Array.fill l.hits 0 (Array.length l.hits) 0

  let impl m ~home =
    let l = create m ~home in
    {
      r_acquire = (fun ctx -> acquire ctx l);
      r_release = (fun ctx -> release ctx l);
      r_acquires = (fun () -> asum l.acquires);
      r_hits = (fun () -> asum l.hits);
      r_waiters = (fun () -> asum l.blocked);
      r_waiters_cell = (fun c -> l.blocked.(c));
      r_reset = (fun () -> reset l);
    }
end

(* --- ticket lock ---------------------------------------------------- *)

(* Centralised FIFO: the home hands out tickets and notifies the next
   ticket holder on every release.  Two message hops per handoff
   (holder -> home -> next), perfectly fair. *)
module Ticket = struct
  type t = {
    m : Mgs.State.t;
    home : int;
    mutable next_ticket : int;
    mutable now_serving : int;
    waiting : (int, unit -> unit) Hashtbl.t; (* ticket -> grant *)
    mutable held : bool;
    notices : (int, int) Hashtbl.t;
    acquires : int array; (* per caller SSMP *)
    hits : int array;
    blocked : int array;
  }

  let create (m : Mgs.Machine.t) ~home =
    let n = m.topo.Topology.nssmps in
    {
      m;
      home = Topology.first_proc_of_ssmp m.topo home;
      next_ticket = 0;
      now_serving = 0;
      waiting = Hashtbl.create 64;
      held = false;
      notices = Hashtbl.create 16;
      acquires = Array.make n 0;
      hits = Array.make n 0;
      blocked = Array.make n 0;
    }

  let acquire (ctx : Mgs.Api.ctx) l =
    let m = l.m in
    let cpu = ctx.cpu in
    let proc = ctx.Mgs.Api.proc in
    let root = enter_acquire m ctx ~home_proc:l.home in
    let cell = Topology.ssmp_of_proc m.topo proc in
    l.acquires.(cell) <- l.acquires.(cell) + 1;
    Cpu.advance cpu Lock m.costs.proto.msg_send;
    msg m;
    let q, wake = parker m in
    let immediate = ref false in
    let grant () =
      msg m;
      Am.post m.am ~tag:"TKT_GRANT" ~src:l.home ~dst:proc ~words:0
        ~cost:m.costs.sync.lock_local_acquire (fun _t ->
          l.held <- true;
          wake ())
    in
    Am.post m.am ~tag:"TKT_REQ" ~src:proc ~dst:l.home ~words:0
      ~cost:m.costs.sync.lock_local_acquire (fun _t ->
        let ticket = l.next_ticket in
        l.next_ticket <- ticket + 1;
        if ticket = l.now_serving then begin
          immediate := true;
          grant ()
        end
        else Hashtbl.replace l.waiting ticket grant);
    l.blocked.(cell) <- l.blocked.(cell) + 1;
    Mgs_engine.Waitq.park q;
    l.blocked.(cell) <- l.blocked.(cell) - 1;
    Cpu.resume_charge cpu Lock (Sim.now m.sim);
    span_set m root;
    let hit = !immediate && home_local m ~home_proc:l.home proc in
    if hit then l.hits.(cell) <- l.hits.(cell) + 1;
    exit_acquire m root ~hit ~notices:l.notices ~proc

  let release (ctx : Mgs.Api.ctx) l =
    let m = l.m in
    if not l.held then failwith "Locks(ticket): release of a free lock";
    l.held <- false;
    let root = enter_release m ctx ~home_proc:l.home ~notices:l.notices in
    Cpu.advance ctx.cpu Lock m.costs.proto.msg_send;
    msg m;
    Am.post m.am ~tag:"TKT_REL" ~src:ctx.Mgs.Api.proc ~dst:l.home ~words:0
      ~cost:m.costs.sync.lock_local_release (fun _t ->
        l.now_serving <- l.now_serving + 1;
        match Hashtbl.find_opt l.waiting l.now_serving with
        | Some grant ->
          Hashtbl.remove l.waiting l.now_serving;
          grant ()
        | None -> ());
    exit_release m root

  let reset l =
    l.next_ticket <- 0;
    l.now_serving <- 0;
    Hashtbl.reset l.waiting;
    l.held <- false;
    Array.fill l.blocked 0 (Array.length l.blocked) 0;
    Hashtbl.reset l.notices;
    Array.fill l.acquires 0 (Array.length l.acquires) 0;
    Array.fill l.hits 0 (Array.length l.hits) 0

  let impl m ~home =
    let l = create m ~home in
    {
      r_acquire = (fun ctx -> acquire ctx l);
      r_release = (fun ctx -> release ctx l);
      r_acquires = (fun () -> asum l.acquires);
      r_hits = (fun () -> asum l.hits);
      r_waiters = (fun () -> asum l.blocked);
      r_waiters_cell = (fun c -> l.blocked.(c));
      r_reset = (fun () -> reset l);
    }
end

(* --- MCS queue lock ------------------------------------------------- *)

(* Distributed FIFO queue: a SWAP at the home appends the requester to
   the queue; the home LINKs it to its predecessor, and the predecessor
   hands the lock off {e directly} to its successor on release — one
   hop per handoff, independent of contention.  A releaser that finds
   no successor asks the home; if a successor swapped in but its LINK
   has not landed yet (the MCS "CAS failed" window), the release parks
   until the link arrives. *)
module Mcs = struct
  type node = {
    owner : int; (* proc waiting on (or holding via) this node *)
    mutable next : int option; (* successor node id, once linked *)
    wake : unit -> unit; (* resume the owner's parked fiber *)
    mutable rel_parked : (unit -> unit) option; (* release awaiting link *)
  }

  type t = {
    m : Mgs.State.t;
    home : int;
    nodes : (int, node) Hashtbl.t;
    nodes_mu : Mutex.t;
        (* the table structure is touched from the requester's, the
           home's, and the successor's shards; individual node fields
           stay unguarded — they are only accessed from the owning
           processor's shard or with message-enforced ordering *)
    mutable tail : int option; (* home's view of the queue tail *)
    mint : int array; (* per-proc node-id counters; ids = proc + nprocs*k *)
    mutable holder : int; (* node id of the current holder, -1 if free *)
    notices : (int, int) Hashtbl.t;
    acquires : int array; (* per caller SSMP *)
    hits : int array;
    blocked : int array;
  }

  let create (m : Mgs.Machine.t) ~home =
    let n = m.topo.Topology.nssmps in
    {
      m;
      home = Topology.first_proc_of_ssmp m.topo home;
      nodes = Hashtbl.create 64;
      nodes_mu = Mutex.create ();
      tail = None;
      mint = Array.make m.topo.Topology.nprocs 0;
      holder = -1;
      notices = Hashtbl.create 16;
      acquires = Array.make n 0;
      hits = Array.make n 0;
      blocked = Array.make n 0;
    }

  let with_nodes l f =
    Mutex.lock l.nodes_mu;
    match f () with
    | r ->
      Mutex.unlock l.nodes_mu;
      r
    | exception e ->
      Mutex.unlock l.nodes_mu;
      raise e

  (* Deterministic node IDs without a shared counter: each processor
     mints from its own stripe, so concurrent acquires on different
     shards allocate the same IDs the sequential engine would. *)
  let mint_id l proc =
    let k = l.mint.(proc) in
    l.mint.(proc) <- k + 1;
    proc + (Array.length l.mint * k)

  let acquire (ctx : Mgs.Api.ctx) l =
    let m = l.m in
    let cpu = ctx.cpu in
    let proc = ctx.Mgs.Api.proc in
    let root = enter_acquire m ctx ~home_proc:l.home in
    let cell = Topology.ssmp_of_proc m.topo proc in
    l.acquires.(cell) <- l.acquires.(cell) + 1;
    let me = mint_id l proc in
    let q, wake = parker m in
    let node = { owner = proc; next = None; wake; rel_parked = None } in
    with_nodes l (fun () -> Hashtbl.replace l.nodes me node);
    Cpu.advance cpu Lock m.costs.proto.msg_send;
    msg m;
    let free = ref false in
    Am.post m.am ~tag:"MCS_SWAP" ~src:proc ~dst:l.home ~words:0
      ~cost:m.costs.sync.lock_local_acquire (fun _t ->
        let prev = l.tail in
        l.tail <- Some me;
        match prev with
        | None ->
          free := true;
          msg m;
          Am.post m.am ~tag:"MCS_GRANT" ~src:l.home ~dst:proc ~words:0
            ~cost:m.costs.sync.lock_local_acquire (fun _t -> wake ())
        | Some pred_id ->
          let pred = with_nodes l (fun () -> Hashtbl.find l.nodes pred_id) in
          msg m;
          Am.post m.am ~tag:"MCS_LINK" ~src:l.home ~dst:pred.owner ~words:0
            ~cost:m.costs.sync.lock_local_acquire (fun _t ->
              pred.next <- Some me;
              match pred.rel_parked with
              | Some k ->
                pred.rel_parked <- None;
                k ()
              | None -> ()));
    l.blocked.(cell) <- l.blocked.(cell) + 1;
    Mgs_engine.Waitq.park q;
    l.blocked.(cell) <- l.blocked.(cell) - 1;
    Cpu.resume_charge cpu Lock (Sim.now m.sim);
    span_set m root;
    l.holder <- me;
    let hit = !free && home_local m ~home_proc:l.home proc in
    if hit then l.hits.(cell) <- l.hits.(cell) + 1;
    exit_acquire m root ~hit ~notices:l.notices ~proc

  let release (ctx : Mgs.Api.ctx) l =
    let m = l.m in
    let cpu = ctx.cpu in
    let proc = ctx.Mgs.Api.proc in
    if l.holder < 0 then failwith "Locks(mcs): release of a free lock";
    let me = l.holder in
    l.holder <- -1;
    let node = with_nodes l (fun () -> Hashtbl.find l.nodes me) in
    let root = enter_release m ctx ~home_proc:l.home ~notices:l.notices in
    (* Direct handoff: one message from the old holder to the new. *)
    let handoff succ_id =
      let succ = with_nodes l (fun () -> Hashtbl.find l.nodes succ_id) in
      msg m;
      Am.post m.am ~tag:"MCS_HANDOFF" ~src:proc ~dst:succ.owner ~words:0
        ~cost:m.costs.sync.lock_local_acquire (fun _t ->
          with_nodes l (fun () -> Hashtbl.remove l.nodes me);
          succ.wake ())
    in
    Cpu.advance cpu Lock m.costs.proto.msg_send;
    (match node.next with
    | Some succ_id -> handoff succ_id
    | None ->
      (* No known successor: swap the tail back at the home. *)
      msg m;
      let q, wake = parker m in
      Am.post m.am ~tag:"MCS_SWAPREL" ~src:proc ~dst:l.home ~words:0
        ~cost:m.costs.sync.lock_local_release (fun _t ->
          if l.tail = Some me then begin
            l.tail <- None;
            msg m;
            Am.post m.am ~tag:"MCS_RELOK" ~src:l.home ~dst:proc ~words:0
              ~cost:m.costs.sync.lock_local_release (fun _t ->
                with_nodes l (fun () -> Hashtbl.remove l.nodes me);
                wake ())
          end
          else begin
            (* Someone swapped in behind us; wait for their LINK. *)
            msg m;
            Am.post m.am ~tag:"MCS_RELWAIT" ~src:l.home ~dst:proc ~words:0
              ~cost:m.costs.sync.lock_local_release (fun _t ->
                match node.next with
                | Some succ_id ->
                  handoff succ_id;
                  wake ()
                | None ->
                  node.rel_parked <-
                    Some
                      (fun () ->
                        (match node.next with
                        | Some succ_id -> handoff succ_id
                        | None -> assert false);
                        wake ()))
          end);
      let cell = Topology.ssmp_of_proc m.topo proc in
      l.blocked.(cell) <- l.blocked.(cell) + 1;
      Mgs_engine.Waitq.park q;
      l.blocked.(cell) <- l.blocked.(cell) - 1;
      Cpu.resume_charge cpu Lock (Sim.now m.sim);
      span_set m root);
    exit_release m root

  let reset l =
    with_nodes l (fun () -> Hashtbl.reset l.nodes);
    l.tail <- None;
    Array.fill l.mint 0 (Array.length l.mint) 0;
    l.holder <- -1;
    Array.fill l.blocked 0 (Array.length l.blocked) 0;
    Hashtbl.reset l.notices;
    Array.fill l.acquires 0 (Array.length l.acquires) 0;
    Array.fill l.hits 0 (Array.length l.hits) 0

  let impl m ~home =
    let l = create m ~home in
    {
      r_acquire = (fun ctx -> acquire ctx l);
      r_release = (fun ctx -> release ctx l);
      r_acquires = (fun () -> asum l.acquires);
      r_hits = (fun () -> asum l.hits);
      r_waiters = (fun () -> asum l.blocked);
      r_waiters_cell = (fun c -> l.blocked.(c));
      r_reset = (fun () -> reset l);
    }
end

(* --- CLH queue lock ------------------------------------------------- *)

(* Implicit queue through predecessor nodes: a SWAP at the home returns
   the predecessor's node; the requester WATCHes that node where it
   lives, and the predecessor's release grants the watcher directly.
   Unlike MCS the release never blocks — the released node persists
   until its successor consumes it, so a late WATCH simply finds
   [released] already set.  Nodes are keyed by a per-lock sequence so a
   processor can have one node per outstanding acquire. *)
module Clh = struct
  type node = {
    owner : int; (* proc whose SSMP hosts this node *)
    mutable released : bool;
    mutable watcher : (unit -> unit) option; (* successor's grant *)
  }

  type t = {
    m : Mgs.State.t;
    home : int;
    nodes : (int, node) Hashtbl.t;
    nodes_mu : Mutex.t; (* same discipline as MCS: guard the table, not fields *)
    mutable tail : int; (* node id *)
    mint : int array; (* per-proc counters; ids = 1 + proc + nprocs*k *)
    mutable holder : int; (* node id of the current holder, -1 if free *)
    notices : (int, int) Hashtbl.t;
    acquires : int array; (* per caller SSMP *)
    hits : int array;
    blocked : int array;
  }

  let with_nodes l f =
    Mutex.lock l.nodes_mu;
    match f () with
    | r ->
      Mutex.unlock l.nodes_mu;
      r
    | exception e ->
      Mutex.unlock l.nodes_mu;
      raise e

  let init l home_proc =
    with_nodes l (fun () ->
        Hashtbl.reset l.nodes;
        (* sentinel: an already-released node owned by the home *)
        Hashtbl.replace l.nodes 0 { owner = home_proc; released = true; watcher = None });
    l.tail <- 0;
    Array.fill l.mint 0 (Array.length l.mint) 0;
    l.holder <- -1

  let create (m : Mgs.Machine.t) ~home =
    let home_proc = Topology.first_proc_of_ssmp m.topo home in
    let n = m.topo.Topology.nssmps in
    let l =
      {
        m;
        home = home_proc;
        nodes = Hashtbl.create 64;
        nodes_mu = Mutex.create ();
        tail = 0;
        mint = Array.make m.topo.Topology.nprocs 0;
        holder = -1;
        notices = Hashtbl.create 16;
        acquires = Array.make n 0;
        hits = Array.make n 0;
        blocked = Array.make n 0;
      }
    in
    init l home_proc;
    l

  (* per-proc minting, offset past the sentinel's id 0 *)
  let mint_id l proc =
    let k = l.mint.(proc) in
    l.mint.(proc) <- k + 1;
    1 + proc + (Array.length l.mint * k)

  let acquire (ctx : Mgs.Api.ctx) l =
    let m = l.m in
    let cpu = ctx.cpu in
    let proc = ctx.Mgs.Api.proc in
    let root = enter_acquire m ctx ~home_proc:l.home in
    let cell = Topology.ssmp_of_proc m.topo proc in
    l.acquires.(cell) <- l.acquires.(cell) + 1;
    let me = mint_id l proc in
    with_nodes l (fun () ->
        Hashtbl.replace l.nodes me { owner = proc; released = false; watcher = None });
    let q, wake = parker m in
    Cpu.advance cpu Lock m.costs.proto.msg_send;
    msg m;
    let free = ref false in
    Am.post m.am ~tag:"CLH_SWAP" ~src:proc ~dst:l.home ~words:0
      ~cost:m.costs.sync.lock_local_acquire (fun _t ->
        let prev = l.tail in
        l.tail <- me;
        let pred = with_nodes l (fun () -> Hashtbl.find l.nodes prev) in
        let grant () =
          with_nodes l (fun () -> Hashtbl.remove l.nodes prev);
          msg m;
          Am.post m.am ~tag:"CLH_GRANT" ~src:pred.owner ~dst:proc ~words:0
            ~cost:m.costs.sync.lock_local_acquire (fun _t -> wake ())
        in
        (* watch the predecessor's node where it lives *)
        msg m;
        Am.post m.am ~tag:"CLH_WATCH" ~src:l.home ~dst:pred.owner ~words:0
          ~cost:m.costs.sync.lock_local_acquire (fun _t ->
            if pred.released then begin
              free := true;
              grant ()
            end
            else pred.watcher <- Some grant));
    l.blocked.(cell) <- l.blocked.(cell) + 1;
    Mgs_engine.Waitq.park q;
    l.blocked.(cell) <- l.blocked.(cell) - 1;
    Cpu.resume_charge cpu Lock (Sim.now m.sim);
    span_set m root;
    l.holder <- me;
    let hit = !free && home_local m ~home_proc:l.home proc in
    if hit then l.hits.(cell) <- l.hits.(cell) + 1;
    exit_acquire m root ~hit ~notices:l.notices ~proc

  let release (ctx : Mgs.Api.ctx) l =
    let m = l.m in
    if l.holder < 0 then failwith "Locks(clh): release of a free lock";
    let me = l.holder in
    l.holder <- -1;
    let node = with_nodes l (fun () -> Hashtbl.find l.nodes me) in
    let root = enter_release m ctx ~home_proc:l.home ~notices:l.notices in
    node.released <- true;
    (match node.watcher with
    | Some grant ->
      node.watcher <- None;
      grant ()
    | None -> ());
    exit_release m root

  let reset l =
    init l l.home;
    Array.fill l.blocked 0 (Array.length l.blocked) 0;
    Hashtbl.reset l.notices;
    Array.fill l.acquires 0 (Array.length l.acquires) 0;
    Array.fill l.hits 0 (Array.length l.hits) 0

  let impl m ~home =
    let l = create m ~home in
    {
      r_acquire = (fun ctx -> acquire ctx l);
      r_release = (fun ctx -> release ctx l);
      r_acquires = (fun () -> asum l.acquires);
      r_hits = (fun () -> asum l.hits);
      r_waiters = (fun () -> asum l.blocked);
      r_waiters_cell = (fun c -> l.blocked.(c));
      r_reset = (fun () -> reset l);
    }
end

(* --- the paper's token lock, unchanged ----------------------------- *)

let token_impl m ~home =
  let l = Lock.create m ~home () in
  {
    r_acquire = (fun ctx -> Lock.acquire ctx l);
    r_release = (fun ctx -> Lock.release ctx l);
    r_acquires = (fun () -> Lock.acquires l);
    r_hits = (fun () -> Lock.hits l);
    r_waiters = (fun () -> Lock.waiters l);
    r_waiters_cell = (fun c -> Lock.waiters_cell l c);
    r_reset = (fun () -> Lock.reset l);
  }

(* --- registry ------------------------------------------------------- *)

type maker = Mgs.Machine.t -> home:int -> raw

let registry : (string, maker) Hashtbl.t = Hashtbl.create 8

let register name maker =
  if Hashtbl.mem registry name then
    invalid_arg (Printf.sprintf "Locks.register: %S already registered" name);
  Hashtbl.add registry name maker

let () =
  register "token" token_impl;
  register "tas" Tas.impl;
  register "ticket" Ticket.impl;
  register "mcs" Mcs.impl;
  register "clh" Clh.impl

let names () = List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) registry [])

let mem name = Hashtbl.mem registry name

(* --- instrumented wrapper ------------------------------------------ *)

type t = {
  name : string;
  wm : Mgs.State.t;
  raw : raw;
  is_baseline : bool; (* token: keep legacy counters byte-identical *)
  mutable last_release : int; (* sim time of the last release, -1 *)
  mutable last_holder : int; (* proc of the last holder, -1 *)
  mutable handoffs : int;
  mutable gaps : int list; (* cross-holder handoff gaps, newest first *)
}

let wrapper_reset t =
  t.raw.r_reset ();
  t.last_release <- -1;
  t.last_holder <- -1;
  t.handoffs <- 0;
  t.gaps <- []

let make (m : Mgs.Machine.t) ?(home = 0) name =
  match Hashtbl.find_opt registry name with
  | None ->
    invalid_arg
      (Printf.sprintf "unknown lock %S (known: %s)" name (String.concat ", " (names ())))
  | Some maker ->
    let raw = maker m ~home in
    let t =
      {
        name;
        wm = m;
        raw;
        is_baseline = name = "token";
        last_release = -1;
        last_holder = -1;
        handoffs = 0;
        gaps = [];
      }
    in
    (* Phase resets ([Machine.reset_stats]) restore the lock through
       this hook; [assert_quiescent] and the [sync.lock_waiters] gauge
       read the waiter count. *)
    m.sync_hooks <-
      {
        sh_name = Printf.sprintf "lock:%s" name;
        sh_reset = (fun () -> wrapper_reset t);
        sh_waiters = raw.r_waiters;
        sh_waiters_cell = raw.r_waiters_cell;
      }
      :: m.sync_hooks;
    t

let acquire (ctx : Mgs.Api.ctx) t =
  let m = t.wm in
  let t0 = Sim.now m.sim in
  t.raw.r_acquire ctx;
  let t1 = Sim.now m.sim in
  let proc = ctx.Mgs.Api.proc in
  (* Host-side accounting only below this line: nothing here may post a
     message, charge a cpu, or schedule an event. *)
  if not t.is_baseline then
    (stats m).Mgs.Pstats.lock_wait <- (stats m).Mgs.Pstats.lock_wait + (t1 - t0);
  if t.last_holder >= 0 && t.last_holder <> proc then begin
    t.handoffs <- t.handoffs + 1;
    if not t.is_baseline then
      (stats m).Mgs.Pstats.lock_handoffs <- (stats m).Mgs.Pstats.lock_handoffs + 1;
    if t.last_release >= 0 && t1 >= t.last_release then begin
      t.gaps <- (t1 - t.last_release) :: t.gaps;
      (* Retroactive handoff span: the lock was in flight from the
         previous holder's release until this acquire completed. *)
      match m.obs with
      | None -> ()
      | Some tr ->
        let sp = Mgs_obs.Trace.spans tr in
        let c =
          Span.open_span sp ~parent:Span.none ~time:t.last_release ~label:"lock.handoff"
            ~engine:Mgs_obs.Event.Sync ~src:t.last_holder ~dst:proc
            ~src_ssmp:(Topology.ssmp_of_proc m.topo t.last_holder)
            ~dst_ssmp:(Topology.ssmp_of_proc m.topo proc) ()
        in
        Span.close sp c ~time:t1
    end
  end;
  t.last_holder <- proc

let release (ctx : Mgs.Api.ctx) t =
  t.raw.r_release ctx;
  t.last_release <- Sim.now t.wm.sim

let name t = t.name

let acquires t = t.raw.r_acquires ()

let hits t = t.raw.r_hits ()

let hit_ratio t =
  let a = acquires t in
  if a = 0 then 1.0 else float_of_int (hits t) /. float_of_int a

let waiters t = t.raw.r_waiters ()

let reset t = wrapper_reset t

let handoffs t = t.handoffs

let gaps t = Array.of_list (List.rev t.gaps)

(* --- handoff-gap statistics ---------------------------------------- *)

type gap_stats = { n : int; mean : float; max : int; cv : float }

let gap_stats t =
  match t.gaps with
  | [] -> { n = 0; mean = 0.; max = 0; cv = 0. }
  | gs ->
    let n = List.length gs in
    let fn = float_of_int n in
    let sum = List.fold_left ( + ) 0 gs in
    let mean = float_of_int sum /. fn in
    let max_g = List.fold_left max 0 gs in
    let var =
      List.fold_left
        (fun acc g ->
          let d = float_of_int g -. mean in
          acc +. (d *. d))
        0. gs
      /. fn
    in
    let cv = if mean > 0. then sqrt var /. mean else 0. in
    { n; mean; max = max_g; cv }
