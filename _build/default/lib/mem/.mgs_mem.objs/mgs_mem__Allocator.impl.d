lib/mem/allocator.ml: Geom Hashtbl
