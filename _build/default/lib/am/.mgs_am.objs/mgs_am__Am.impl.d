lib/am/am.ml: Array Hashtbl List Mgs_engine Mgs_machine Mgs_net Mgs_obs Option
