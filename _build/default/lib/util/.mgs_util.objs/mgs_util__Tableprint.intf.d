lib/util/tableprint.mli:
