(** Deterministic, bounded-memory event trace.

    Every emitted {!Event.t} is (1) pushed into a fixed-size ring
    buffer, (2) folded into a per-tag latency histogram, and (3) handed
    to each subscriber — the hook the online invariant checker uses.
    Memory is bounded by the ring capacity plus one histogram per
    distinct tag; a run of any length cannot grow it further.

    A trace created with [cells > 1] keeps one ring and histogram table
    per shard (SSMP): each simulator domain writes only its own cell —
    nothing on the emit path is shared — and reads merge the cells by
    each event's genealogy stamp (the key of the simulator event that
    emitted it), reconstructing the canonical execution order.  Every
    export is therefore byte-identical across engine job counts.
    Single-cell traces skip stamping and behave exactly as before. *)

type t

val create : ?capacity:int -> ?span_capacity:int -> ?cells:int -> unit -> t
(** Ring capacity defaults to 65536 events total — divided among the
    cells (floor 64 per cell, never above the total), so memory does
    not scale with the shard count; the span store to {!Span.create}'s
    default.  [cells]
    (default 1) is the shard count: pass the machine's SSMP count so
    each simulator domain writes its own cell. *)

val cells : t -> int

val subscribe : t -> (Event.t -> unit) -> unit
(** Subscribers run synchronously at every emit, in reverse order of
    subscription.  They must not mutate simulated state.  Subscribers
    are global (not per-cell), so an installed subscriber forces the
    engine onto a single domain. *)

val has_subscribers : t -> bool

val spans : t -> Span.t
(** The causal span collector that travels with this trace. *)

val emit : t -> Event.t -> unit

val events : t -> Event.t list
(** Retained events in canonical execution order (oldest first), with
    transaction IDs mapped to their dense export values. *)

val emitted : t -> int
(** Total events ever emitted. *)

val retained : t -> int

val dropped : t -> int

val hist : t -> string -> Hist.t option
(** Latency histogram for one tag, merged across cells. *)

val histograms : t -> (string * Hist.t) list
(** All (tag, histogram) pairs, sorted by tag, merged across cells. *)

val chrome_json : t -> string
(** The retained events in Chrome [trace_event] JSON (the
    [chrome://tracing] / Perfetto format): one complete slice per
    event, [pid] = destination SSMP, [tid] = destination processor,
    timestamps in simulated cycles — plus a spans section (async
    begin/end per finished span and parent-to-child flow arrows).
    Multi-cell traces append one engine lane per shard: a process-name
    metadata record and a per-shard emitted-events counter. *)

val write_chrome : t -> out_channel -> unit

val pp_overflow_warning : Format.formatter -> t -> unit
(** A loud warning when the ring overflowed (a decomposition from a
    lossy trace is suspect); prints nothing otherwise. *)

val pp_summary : Format.formatter -> t -> unit
(** Event counts plus the per-tag latency histograms, preceded by
    {!pp_overflow_warning} when history was lost. *)
