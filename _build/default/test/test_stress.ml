(* Randomized data-race-free programs against the shadow oracle: the
   strongest protocol-correctness test.  Each generated program runs on
   a random machine shape with the sequentially-consistent shadow mirror
   on; any read that diverges from the mirror — or any lost update in
   the final master state — is a protocol bug.

   Program structure (DRF by construction):
   - R shared regions, each protected by its own token lock; every
     access to region r happens inside lock r's critical section;
   - per-processor private blocks, only touched by their owner;
   - barriers at fixed loop indices (all processors arrive);
   - all updates are commutative increments, so the final region state
     is schedule-independent and can be verified exactly. *)

let regions = 3

let region_words = 24 (* spans pages when page_words is small *)

let run_program ~nprocs ~cluster ~page_words ~lan ~steps ~seed =
  let cfg = Mgs.Machine.config ~page_words ~nprocs ~cluster ~lan_latency:lan ~shadow:true () in
  let m = Mgs.Machine.create cfg in
  let region =
    Array.init regions (fun i ->
        Mgs.Machine.alloc m ~words:region_words
          ~home:
            (match i mod 3 with
            | 0 -> Mgs_mem.Allocator.Interleaved
            | 1 -> Mgs_mem.Allocator.Blocked
            | _ -> Mgs_mem.Allocator.On_proc (i mod nprocs)))
  in
  let private_base =
    Mgs.Machine.alloc m ~words:(8 * nprocs) ~home:Mgs_mem.Allocator.Blocked
  in
  let locks = Array.init regions (fun i -> Mgs_sync.Lock.create m ~home:(i mod (nprocs / cluster)) ()) in
  let bar = Mgs_sync.Barrier.create m in
  (* expected increments per region word, accumulated host-side *)
  let expected = Array.make_matrix regions region_words 0.0 in
  let plan =
    (* per-proc deterministic op list derived from the seed *)
    Array.init nprocs (fun p ->
        let rng = Mgs_util.Rng.create ~seed:(seed + (p * 7919)) in
        Array.init steps (fun _ ->
            let r = Mgs_util.Rng.int rng regions in
            let w = Mgs_util.Rng.int rng region_words in
            let count = 1 + Mgs_util.Rng.int rng 3 in
            let private_op = Mgs_util.Rng.int rng 4 = 0 in
            (r, w, count, private_op)))
  in
  Array.iter
    (fun ops ->
      Array.iter
        (fun (r, w, count, private_op) ->
          if not private_op then
            for k = 0 to count - 1 do
              expected.(r).((w + k) mod region_words) <-
                expected.(r).((w + k) mod region_words) +. 1.0
            done)
        ops)
    plan;
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         Array.iteri
           (fun step (r, w, count, private_op) ->
             if private_op then begin
               (* private block: no lock needed, only the owner touches it *)
               let a = private_base + (8 * p) + (w mod 8) in
               Mgs.Api.write ctx a (Mgs.Api.read ctx a +. 1.0)
             end
             else begin
               Mgs_sync.Lock.acquire ctx locks.(r);
               for k = 0 to count - 1 do
                 let a = region.(r) + ((w + k) mod region_words) in
                 Mgs.Api.write ctx a (Mgs.Api.read ctx a +. 1.0)
               done;
               Mgs_sync.Lock.release ctx locks.(r)
             end;
             if step mod 5 = 4 then Mgs_sync.Barrier.wait ctx bar)
           plan.(p);
         Mgs_sync.Barrier.wait ctx bar));
  Mgs.Machine.assert_quiescent m;
  if Mgs.Machine.shadow_mismatches m <> 0 then
    failwith (Printf.sprintf "%d shadow mismatches" (Mgs.Machine.shadow_mismatches m));
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun w want ->
          let got = Mgs.Machine.peek m (region.(r) + w) in
          if got <> want then
            failwith
              (Printf.sprintf "region %d word %d: got %g want %g" r w got want))
        row)
    expected

(* Conservation law of the MGS server: every invalidation sent must be
   answered by exactly one ACK, DIFF, 1WDATA, or 1WCLEAN. *)
let check_conservation (m : Mgs.Machine.t) =
  let p = m.Mgs.State.pstats in
  let sent = p.Mgs.Pstats.invals + p.Mgs.Pstats.one_winvals in
  let answered =
    p.Mgs.Pstats.acks + p.Mgs.Pstats.diffs + p.Mgs.Pstats.one_wdata + p.Mgs.Pstats.one_wclean
  in
  if sent <> answered then
    failwith (Printf.sprintf "conservation violated: %d INVs, %d replies" sent answered)

let prop_conservation =
  QCheck2.Test.make ~name:"INV/reply conservation on random programs" ~count:60
    QCheck2.Gen.(pair (oneofl [ (4, 2); (8, 2); (8, 4) ]) (int_range 1 500))
    (fun ((nprocs, cluster), seed) ->
      (* rebuild the standard program but keep the machine to inspect *)
      let cfg =
        Mgs.Machine.config ~page_words:16 ~nprocs ~cluster ~lan_latency:600 ~shadow:true ()
      in
      let m = Mgs.Machine.create cfg in
      let region = Mgs.Machine.alloc m ~words:24 ~home:Mgs_mem.Allocator.Interleaved in
      let lock = Mgs_sync.Lock.create m () in
      let bar = Mgs_sync.Barrier.create m in
      ignore
        (Mgs.Machine.run m (fun ctx ->
             let p = Mgs.Api.proc ctx in
             let rng = Mgs_util.Rng.create ~seed:(seed + (p * 53)) in
             for step = 1 to 10 do
               let w = Mgs_util.Rng.int rng 24 in
               Mgs_sync.Lock.acquire ctx lock;
               Mgs.Api.write ctx (region + w) (Mgs.Api.read ctx (region + w) +. 1.0);
               Mgs_sync.Lock.release ctx lock;
               if step mod 5 = 0 then Mgs_sync.Barrier.wait ctx bar
             done;
             Mgs_sync.Barrier.wait ctx bar));
      Mgs.Machine.assert_quiescent m;
      check_conservation m;
      Mgs.Machine.shadow_mismatches m = 0)

let prop_random_drf_programs =
  QCheck2.Test.make ~name:"random DRF programs match the shadow oracle" ~count:120
    QCheck2.Gen.(
      tup4 (int_range 0 2) (int_range 0 2) (oneofl [ 0; 500; 2000 ]) (int_range 1 1000))
    (fun (log_c, log_extra, lan, seed) ->
      let cluster = 1 lsl log_c in
      let nprocs = cluster * (1 lsl log_extra) in
      run_program ~nprocs ~cluster ~page_words:16 ~lan ~steps:12 ~seed;
      true)

(* the same generator under the lazy and SC protocols, plus feature
   variations of the MGS protocol *)
let run_program_variant ~protocol ~features ~seed =
  let nprocs = 8 and cluster = 2 in
  let cfg =
    Mgs.Machine.config ~page_words:16 ~nprocs ~cluster ~lan_latency:900 ~protocol ~features
      ~shadow:true ()
  in
  let m = Mgs.Machine.create cfg in
  let region = Mgs.Machine.alloc m ~words:24 ~home:Mgs_mem.Allocator.Blocked in
  let lock = Mgs_sync.Lock.create m () in
  let bar = Mgs_sync.Barrier.create m in
  let expected = Array.make 24 0.0 in
  let plan =
    Array.init nprocs (fun p ->
        let rng = Mgs_util.Rng.create ~seed:(seed + (p * 211)) in
        Array.init 14 (fun _ -> Mgs_util.Rng.int rng 24))
  in
  Array.iter (Array.iter (fun w -> expected.(w) <- expected.(w) +. 1.0)) plan;
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         Array.iteri
           (fun step w ->
             Mgs_sync.Lock.acquire ctx lock;
             Mgs.Api.write ctx (region + w) (Mgs.Api.read ctx (region + w) +. 1.0);
             Mgs_sync.Lock.release ctx lock;
             if step mod 6 = 5 then Mgs_sync.Barrier.wait ctx bar)
           plan.(p);
         Mgs_sync.Barrier.wait ctx bar));
  Mgs.Machine.assert_quiescent m;
  if Mgs.Machine.shadow_mismatches m <> 0 then failwith "shadow divergence";
  Array.iteri
    (fun w want ->
      if Mgs.Machine.peek m (region + w) <> want then
        failwith (Printf.sprintf "word %d wrong" w))
    expected

let prop_all_variants =
  let variants =
    QCheck2.Gen.oneofl
      [
        (Mgs.State.Protocol_mgs, Mgs.State.default_features);
        (Mgs.State.Protocol_mgs, { Mgs.State.default_features with single_writer_opt = false });
        (Mgs.State.Protocol_mgs, { Mgs.State.default_features with early_read_ack = true });
        (Mgs.State.Protocol_mgs, { Mgs.State.default_features with pipelined_release = true });
        (Mgs.State.Protocol_hlrc, Mgs.State.default_features);
        (Mgs.State.Protocol_ivy, Mgs.State.default_features);
      ]
  in
  QCheck2.Test.make ~name:"random DRF programs, all protocol variants" ~count:90
    QCheck2.Gen.(pair variants (int_range 1 2000))
    (fun ((protocol, features), seed) ->
      run_program_variant ~protocol ~features ~seed;
      true)

let prop_random_drf_bigger_pages =
  QCheck2.Test.make ~name:"random DRF programs, 64-word pages" ~count:60
    QCheck2.Gen.(pair (oneofl [ (4, 2); (8, 4); (8, 2) ]) (int_range 1 1000))
    (fun ((nprocs, cluster), seed) ->
      run_program ~nprocs ~cluster ~page_words:64 ~lan:1000 ~steps:16 ~seed;
      true)

(* A deterministic heavyweight instance of the same program shape, so
   the suite always exercises one dense interleaving. *)
let test_dense_instance () =
  run_program ~nprocs:8 ~cluster:2 ~page_words:16 ~lan:700 ~steps:40 ~seed:123

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_drf_programs;
      prop_random_drf_bigger_pages;
      prop_conservation;
      prop_all_variants;
    ]

let () =
  Alcotest.run "stress"
    [
      ("deterministic", [ Alcotest.test_case "dense instance" `Quick test_dense_instance ]);
      ("random DRF", qsuite);
    ]
