lib/harness/sweep.ml: List Mgs Mgs_machine Option
