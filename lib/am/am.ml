type recorder = Mgs_engine.Sim.time -> Mgs_net.Envelope.t -> unit

module Span = Mgs_obs.Span

(* Message counters live in per-SSMP cells so concurrent shards of the
   sharded engine never write the same slot: posting bumps the sender's
   cell, delivery decrements the receiver's in-flight cell, and the
   accessors sum.  (A cell can go negative in isolation; only the sum is
   meaningful.) *)
type t = {
  sim : Mgs_engine.Sim.t;
  costs : Mgs_machine.Costs.t;
  topo : Mgs_machine.Topology.t;
  lan : Mgs_net.Lan.t;
  cpus : Mgs_machine.Cpu.t array;
  counts : (string, int) Hashtbl.t array; (* per sender SSMP *)
  hlabels : (string, string) Hashtbl.t array;
      (* tag -> "h." ^ tag, interned per receiving SSMP (the intern
         happens in [deliver], which runs on the receiver's shard) *)
  total : int array; (* per sender SSMP *)
  in_flight : int array; (* per SSMP: posted here minus delivered here *)
  mutable recorder : recorder option;
  mutable obs : Mgs_obs.Trace.t option;
}

let create sim costs topo ~lan ~cpus =
  if Array.length cpus <> topo.Mgs_machine.Topology.nprocs then
    invalid_arg "Am.create: cpu count mismatch";
  let nssmps = topo.Mgs_machine.Topology.nssmps in
  {
    sim;
    costs;
    topo;
    lan;
    cpus;
    counts = Array.init nssmps (fun _ -> Hashtbl.create 32);
    hlabels = Array.init nssmps (fun _ -> Hashtbl.create 32);
    total = Array.make nssmps 0;
    in_flight = Array.make nssmps 0;
    recorder = None;
    obs = None;
  }

let bump am ssmp tag =
  am.total.(ssmp) <- am.total.(ssmp) + 1;
  let counts = am.counts.(ssmp) in
  match Hashtbl.find counts tag with
  | prev -> Hashtbl.replace counts tag (prev + 1)
  | exception Not_found -> Hashtbl.add counts tag 1

(* The handler-span label for [tag], computed once per distinct tag and
   receiving SSMP: the tag set is small and fixed, and a fresh
   ["h." ^ tag] on every post is a per-message allocation. *)
let hlabel am ssmp tag =
  let hlabels = am.hlabels.(ssmp) in
  try Hashtbl.find hlabels tag
  with Not_found ->
    let l = "h." ^ tag in
    Hashtbl.add hlabels tag l;
    l

(* The ambient span context is captured when the message is posted and
   re-installed around the handler's continuation, so any message the
   handler posts in turn inherits the originating transaction.  The
   install/restore happens whenever observability is on — even for a
   context-free message — so a stale context left by a suspending fiber
   can never leak into an unrelated handler. *)
let post am ~tag ~src ~dst ~words ~cost k =
  let p = am.costs.Mgs_machine.Costs.proto in
  let src_ssmp = Mgs_machine.Topology.ssmp_of_proc am.topo src in
  let dst_ssmp = Mgs_machine.Topology.ssmp_of_proc am.topo dst in
  bump am src_ssmp tag;
  am.in_flight.(src_ssmp) <- am.in_flight.(src_ssmp) + 1;
  let at = Mgs_engine.Sim.now am.sim in
  let pctx =
    match am.obs with
    | None -> Span.none
    | Some tr -> Span.current (Mgs_obs.Trace.spans tr)
  in
  let env = { Mgs_net.Envelope.tag; src; dst; src_ssmp; dst_ssmp; words; cost } in
  let deliver arrive =
    am.in_flight.(dst_ssmp) <- am.in_flight.(dst_ssmp) - 1;
    (match am.recorder with Some r -> r arrive env | None -> ());
    let fin =
      Mgs_machine.Cpu.occupy am.cpus.(dst) ~at:arrive ~cost:(p.handler_dispatch + cost)
    in
    match am.obs with
    | None -> Mgs_engine.Sim.at am.sim fin (fun () -> k fin)
    | Some tr ->
      Mgs_obs.Trace.emit tr
        {
          Mgs_obs.Event.time = arrive;
          engine = Mgs_obs.Event.Network;
          tag;
          vpn = -1;
          src;
          dst;
          src_ssmp;
          dst_ssmp;
          words;
          cost;
          dur = arrive - at;
          txn = pctx.Span.txn;
        };
      let sp = Mgs_obs.Trace.spans tr in
      let hctx =
        if pctx.Span.txn < 0 then pctx
        else begin
          (* transit decomposes into wire time and, for bulk payloads,
             the trailing DMA burst *)
          let dma = words * p.dma_per_word in
          let wire_end = arrive - dma in
          let w =
            Span.open_span_x sp ~parent:pctx ~time:at ~label:"net.wire"
              ~engine:Mgs_obs.Event.Network ~vpn:(-1) ~src ~dst ~src_ssmp ~dst_ssmp ~words
          in
          Span.close sp w ~time:wire_end;
          if dma > 0 then begin
            let d =
              Span.open_span_x sp ~parent:pctx ~time:wire_end ~label:"net.dma"
                ~engine:Mgs_obs.Event.Network ~vpn:(-1) ~src ~dst ~src_ssmp ~dst_ssmp
                ~words
            in
            Span.close sp d ~time:arrive
          end;
          let label = hlabel am dst_ssmp tag in
          Span.open_span_x sp ~parent:pctx ~time:arrive ~label
            ~engine:(Span.engine_of_label label) ~vpn:(-1) ~src ~dst ~src_ssmp ~dst_ssmp
            ~words
        end
      in
      Mgs_engine.Sim.at am.sim fin (fun () ->
          (* close only the span opened above, never an aliased parent *)
          if hctx.Span.sid <> pctx.Span.sid then Span.close sp hctx ~time:fin;
          let saved = Span.current sp in
          Span.set_current sp hctx;
          k fin;
          Span.set_current sp saved)
  in
  Mgs_net.Lan.send am.lan env ~at deliver

let run_on am ?tag ~proc ~at ~cost k =
  let fin = Mgs_machine.Cpu.occupy am.cpus.(proc) ~at ~cost in
  match am.obs with
  | None -> Mgs_engine.Sim.at am.sim fin (fun () -> k fin)
  | Some tr ->
    let sp = Mgs_obs.Trace.spans tr in
    let pctx = Span.current sp in
    let hctx =
      match tag with
      | None -> pctx
      | Some tag ->
        let ssmp = Mgs_machine.Topology.ssmp_of_proc am.topo proc in
        Mgs_obs.Trace.emit tr
          {
            Mgs_obs.Event.time = fin;
            engine = Mgs_obs.Event.Remote_client;
            tag;
            vpn = -1;
            src = proc;
            dst = proc;
            src_ssmp = ssmp;
            dst_ssmp = ssmp;
            words = 0;
            cost;
            dur = fin - at;
            txn = pctx.Span.txn;
          };
        if pctx.Span.txn < 0 then pctx
        else
          Span.open_span_x sp ~parent:pctx ~time:at ~label:tag
            ~engine:(Span.engine_of_label tag) ~vpn:(-1) ~src:proc ~dst:proc
            ~src_ssmp:ssmp ~dst_ssmp:ssmp ~words:0
    in
    Mgs_engine.Sim.at am.sim fin (fun () ->
        if hctx.Span.sid <> pctx.Span.sid then Span.close sp hctx ~time:fin;
        let saved = Span.current sp in
        Span.set_current sp hctx;
        k fin;
        Span.set_current sp saved)

let set_recorder am r = am.recorder <- r

let recording am = am.recorder <> None

let set_obs am tr = am.obs <- tr

let count am tag =
  Array.fold_left
    (fun acc counts -> acc + Option.value ~default:0 (Hashtbl.find_opt counts tag))
    0 am.counts

let counts am =
  let merged = Hashtbl.create 32 in
  Array.iter
    (fun counts ->
      Hashtbl.iter
        (fun tag n ->
          Hashtbl.replace merged tag (n + Option.value ~default:0 (Hashtbl.find_opt merged tag)))
        counts)
    am.counts;
  List.sort compare (Hashtbl.fold (fun tag n acc -> (tag, n) :: acc) merged [])

let total_posted am = Array.fold_left ( + ) 0 am.total

let in_flight am = Array.fold_left ( + ) 0 am.in_flight

let in_flight_cell am c = am.in_flight.(c)

let reset_counts am =
  Array.iter Hashtbl.reset am.counts;
  Array.fill am.total 0 (Array.length am.total) 0
