lib/apps/fft.mli: Mgs_harness
