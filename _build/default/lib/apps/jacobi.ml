type params = { n : int; iters : int; flop_cycles : int }

let default = { n = 126; iters = 5; flop_cycles = 40 }

let tiny = { n = 14; iters = 3; flop_cycles = 40 }

(* the paper's full problem size; hours of simulation, use sparingly *)
let paper = { n = 1022; iters = 10; flop_cycles = 40 }

let problem_size p = Printf.sprintf "%dx%d grid, %d iterations" p.n p.n p.iters

(* Initial condition: hot left edge, cold elsewhere. *)
let initial r c n = if c = 0 then 100.0 else if r = 0 || r = n + 1 then 50.0 else 0.0

let seq_reference p =
  let dim = p.n + 2 in
  let a = Array.init (dim * dim) (fun i -> initial (i / dim) (i mod dim) p.n) in
  let b = Array.copy a in
  let src = ref a and dst = ref b in
  for _ = 1 to p.iters do
    let s = !src and d = !dst in
    for r = 1 to p.n do
      for c = 1 to p.n do
        d.((r * dim) + c) <-
          0.25 *. (s.(((r - 1) * dim) + c) +. s.(((r + 1) * dim) + c)
                   +. s.((r * dim) + c - 1) +. s.((r * dim) + c + 1))
      done
    done;
    let t = !src in
    src := !dst;
    dst := t
  done;
  !src

let workload p =
  let prepare m =
    let dim = p.n + 2 in
    let words = dim * dim in
    let ga = Mgs.Machine.alloc m ~words ~home:Mgs_mem.Allocator.Blocked in
    let gb = Mgs.Machine.alloc m ~words ~home:Mgs_mem.Allocator.Blocked in
    for r = 0 to dim - 1 do
      for c = 0 to dim - 1 do
        Mgs.Machine.poke m (ga + (r * dim) + c) (initial r c p.n);
        Mgs.Machine.poke m (gb + (r * dim) + c) (initial r c p.n)
      done
    done;
    let bar = Mgs_sync.Barrier.create m in
    let body ctx =
      let nprocs = Mgs.Api.nprocs ctx in
      let me = Mgs.Api.proc ctx in
      (* contiguous row band per processor *)
      let rows_per = (p.n + nprocs - 1) / nprocs in
      let r0 = 1 + (me * rows_per) in
      let r1 = min p.n (r0 + rows_per - 1) in
      let src = ref ga and dst = ref gb in
      for _ = 1 to p.iters do
        let s = !src and d = !dst in
        for r = r0 to r1 do
          for c = 1 to p.n do
            let up = Mgs.Api.read ctx (s + ((r - 1) * dim) + c) in
            let down = Mgs.Api.read ctx (s + ((r + 1) * dim) + c) in
            let left = Mgs.Api.read ctx (s + (r * dim) + c - 1) in
            let right = Mgs.Api.read ctx (s + (r * dim) + c + 1) in
            Mgs.Api.compute ctx p.flop_cycles;
            Mgs.Api.write ctx (d + (r * dim) + c) (0.25 *. (up +. down +. left +. right))
          done
        done;
        let t = !src in
        src := !dst;
        dst := t;
        Mgs_sync.Barrier.wait ctx bar
      done
    in
    let check m =
      let expect = seq_reference p in
      let final = if p.iters mod 2 = 0 then ga else gb in
      for r = 1 to p.n do
        for c = 1 to p.n do
          let got = Mgs.Machine.peek m (final + (r * dim) + c) in
          let want = expect.((r * dim) + c) in
          if got <> want then
            failwith
              (Printf.sprintf "jacobi mismatch at (%d,%d): got %.17g want %.17g" r c got want)
        done
      done
    in
    (body, check)
  in
  { Mgs_harness.Sweep.name = "Jacobi"; prepare }
