lib/machine/topology.ml: List
