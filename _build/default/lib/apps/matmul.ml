type params = { n : int; mac_cycles : int }

let default = { n = 64; mac_cycles = 120 }

let tiny = { n = 10; mac_cycles = 120 }

(* the paper's full problem size *)
let paper = { n = 256; mac_cycles = 120 }

let problem_size p = Printf.sprintf "%dx%d matrices" p.n p.n

let elt_a i j = float_of_int (((i * 7) + (j * 3)) mod 11) -. 5.0

let elt_b i j = float_of_int (((i * 5) + (j * 11)) mod 13) -. 6.0

let seq_reference p =
  let n = p.n in
  let c = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (elt_a i k *. elt_b k j)
      done;
      c.((i * n) + j) <- !acc
    done
  done;
  c

let workload p =
  let prepare m =
    let n = p.n in
    let words = n * n in
    let ma = Mgs.Machine.alloc m ~words ~home:Mgs_mem.Allocator.Blocked in
    let mb = Mgs.Machine.alloc m ~words ~home:Mgs_mem.Allocator.Blocked in
    let mc = Mgs.Machine.alloc m ~words ~home:Mgs_mem.Allocator.Blocked in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Mgs.Machine.poke m (ma + (i * n) + j) (elt_a i j);
        Mgs.Machine.poke m (mb + (i * n) + j) (elt_b i j)
      done
    done;
    let bar = Mgs_sync.Barrier.create m in
    let body ctx =
      let nprocs = Mgs.Api.nprocs ctx in
      let me = Mgs.Api.proc ctx in
      let rows_per = (n + nprocs - 1) / nprocs in
      let r0 = me * rows_per in
      let r1 = min (n - 1) (r0 + rows_per - 1) in
      for i = r0 to r1 do
        for j = 0 to n - 1 do
          let acc = ref 0.0 in
          for k = 0 to n - 1 do
            let a = Mgs.Api.read ctx (ma + (i * n) + k) in
            let b = Mgs.Api.read ctx (mb + (k * n) + j) in
            Mgs.Api.compute ctx p.mac_cycles;
            acc := !acc +. (a *. b)
          done;
          Mgs.Api.write ctx (mc + (i * n) + j) !acc
        done
      done;
      Mgs_sync.Barrier.wait ctx bar
    in
    let check m =
      let expect = seq_reference p in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let got = Mgs.Machine.peek m (mc + (i * n) + j) in
          if got <> expect.((i * n) + j) then
            failwith
              (Printf.sprintf "matmul mismatch at (%d,%d): got %.17g want %.17g" i j got
                 expect.((i * n) + j))
        done
      done
    in
    (body, check)
  in
  { Mgs_harness.Sweep.name = "Matrix Multiply"; prepare }
