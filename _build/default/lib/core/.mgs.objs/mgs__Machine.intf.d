lib/core/machine.mli: Api Invariant Mgs_engine Mgs_machine Mgs_mem Mgs_obs Report State
