(** Bounded-memory latency histogram.

    Values land in power-of-two buckets (0, [1], [2-3], [4-7], ...), so
    a histogram costs a fixed 63 counters regardless of how many samples
    it absorbs — safe to keep per message tag for an entire run. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record one sample; negative samples clamp to 0. *)

val merge : into:t -> t -> unit
(** [merge ~into:dst src] folds [src]'s samples into [dst] exactly
    (bucket counts, totals, extrema) — per-shard histograms combined at
    export equal one histogram fed every sample. *)

val count : t -> int

val sum : t -> int

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
(** 0 when empty. *)

val mean : t -> float
(** 0. when empty. *)

val buckets : t -> (int * int * int) list
(** Nonempty buckets as [(lo, hi, count)], ascending, [hi] inclusive. *)

val percentile_bounds : t -> float -> int * int
(** [percentile_bounds t q] brackets the nearest-rank [q]-quantile (the
    [ceil (q * n)]-th smallest sample, [0 < q <= 1]): the sample lies in
    the returned [(lo, hi)] interval, [hi] inclusive — the containing
    power-of-two bucket tightened by the recorded extrema.  [(0, 0)]
    when empty. *)

val percentile : t -> float -> int
(** Upper bound of {!percentile_bounds}: a pessimistic nearest-rank
    percentile estimate.  0 when empty. *)

val pp : Format.formatter -> t -> unit
