(** Page contents and the Munin-style twin/diff/merge machinery.

    A page's data is an array of words.  When an SSMP gains write
    privilege it {e twins} the page (snapshots it); at release time the
    modified page is compared against its twin to produce a {e diff},
    which the home merges into the master copy.  Multiple writers of
    disjoint words therefore reconcile correctly.

    Two perf-critical refinements over the naive word-list scheme:
    - a twin carries a per-word dirty bitmap, maintained by the store
      path, so [diff] compares only the words actually touched since the
      last twin sync instead of scanning the whole page;
    - a diff is a run-length struct-of-arrays ([runs] of (start, len)
      pairs plus a flat [floatarray] of values — Munin's RLE encoding),
      so merging is a few tight blit loops and carries no per-word boxed
      cons cells. *)

type page = float array
(** Mutable page contents, length [Geom.page_words]. *)

type twin
(** A snapshot of a page plus the dirty bitmap of words possibly
    modified since the snapshot (an over-approximation: the diff still
    compares each dirty word bitwise). *)

type diff = private { runs : int array; vals : floatarray }
(** Run-length delta: [runs.(2k)] is the start offset of the [k]-th run,
    [runs.(2k+1)] its length; [vals] holds the new values of every run
    concatenated.  Run starts strictly increase and runs never touch
    (adjacent changed words coalesce into one run). *)

val create : Geom.t -> page
(** Zero-filled page. *)

val copy : page -> page
(** [copy p] is an independent snapshot of [p]. *)

val blit : src:page -> dst:page -> unit
(** Overwrite [dst] with [src] (lengths must match). *)

val twin_of : page -> twin
(** [twin_of p] snapshots [p] with an empty dirty bitmap. *)

val twin_page : twin -> page
(** The twin's snapshot data (read-only by convention). *)

val mark : twin -> int -> unit
(** [mark t off] records that word [off] may have been modified.  The
    store path calls this on every write to a twinned page. *)

val dirty_words : twin -> int
(** Number of marked words. *)

val retwin : twin -> from:page -> unit
(** [retwin t ~from] re-synchronizes the twin with the current page
    contents and clears the dirty bitmap (single-writer retention and
    HLRC flushes). *)

val diff : page -> twin:twin -> diff
(** [diff p ~twin] lists the words where [p] differs bitwise from the
    twin, comparing only the words marked dirty. *)

val diff_full : page -> against:page -> diff
(** Full-page scan against an arbitrary base (no dirty information);
    reference implementation and test oracle for {!diff}. *)

val diff_size : diff -> int
(** Number of modified words. *)

val diff_runs : diff -> int
(** Number of runs. *)

val apply_diff : page -> diff -> unit
(** [apply_diff p d] writes each run of [d] into [p]. *)

val iter_diff : (int -> float -> unit) -> diff -> unit
(** [iter_diff f d] applies [f off value] to each delta in increasing
    offset order. *)

val equal : page -> page -> bool

(** {2 Test hook}

    When [count_comparisons] is set, every bitwise word comparison made
    by {!diff}/{!diff_full} increments a counter, letting tests assert
    that dirty-bitmap-driven diffs do not scan the whole page.  Not
    synchronized across domains — test use only. *)

val count_comparisons : bool ref

val reset_comparisons : unit -> unit

val comparisons : unit -> int
