(* End-to-end smoke tests: small shared-memory programs run on several
   machine shapes; results must match a sequential computation, and the
   machine must end quiescent. *)

let shapes = [ (4, 1); (4, 2); (4, 4); (8, 2); (8, 8) ]

let run_shape ~nprocs ~cluster body check =
  let cfg = Mgs.Machine.config ~nprocs ~cluster ~lan_latency:1000 () in
  let m = Mgs.Machine.create cfg in
  let report = body m in
  Mgs.Machine.assert_quiescent m;
  check m report

(* Every processor increments every element of a shared vector under a
   global lock; final values must equal nprocs. *)
let test_lock_counter ~nprocs ~cluster () =
  run_shape ~nprocs ~cluster
    (fun m ->
      let words = 300 in
      let base = Mgs.Machine.alloc m ~words ~home:Mgs_mem.Allocator.Interleaved in
      let lock = Mgs_sync.Lock.create m () in
      let bar = Mgs_sync.Barrier.create m in
      let report =
        Mgs.Machine.run m (fun ctx ->
            Mgs_sync.Lock.acquire ctx lock;
            for i = 0 to words - 1 do
              let v = Mgs.Api.read ctx (base + i) in
              Mgs.Api.write ctx (base + i) (v +. 1.0)
            done;
            Mgs_sync.Lock.release ctx lock;
            Mgs_sync.Barrier.wait ctx bar)
      in
      (m, base, words, report))
    (fun _m (m, base, words, report) ->
      for i = 0 to words - 1 do
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "slot %d" i)
          (float_of_int nprocs)
          (Mgs.Machine.peek m (base + i))
      done;
      Alcotest.(check bool) "runtime positive" true (report.Mgs.Report.runtime > 0))

(* Producer/consumer across barriers: proc p writes its block each
   phase, everyone then reads every block. *)
let test_barrier_phases ~nprocs ~cluster () =
  run_shape ~nprocs ~cluster
    (fun m ->
      let block = 64 in
      let words = block * nprocs in
      let base = Mgs.Machine.alloc m ~words ~home:Mgs_mem.Allocator.Blocked in
      let sums = Mgs.Machine.alloc m ~words:nprocs ~home:Mgs_mem.Allocator.Interleaved in
      let bar = Mgs_sync.Barrier.create m in
      let phases = 3 in
      let report =
        Mgs.Machine.run m (fun ctx ->
            let p = Mgs.Api.proc ctx in
            for phase = 1 to phases do
              for i = 0 to block - 1 do
                Mgs.Api.write ctx (base + (p * block) + i) (float_of_int ((phase * 1000) + p))
              done;
              Mgs_sync.Barrier.wait ctx bar;
              (* read everyone's block and accumulate privately *)
              let acc = ref 0.0 in
              for q = 0 to nprocs - 1 do
                for i = 0 to block - 1 do
                  acc := !acc +. Mgs.Api.read ctx (base + (q * block) + i)
                done
              done;
              Mgs.Api.write ctx (sums + p) !acc;
              Mgs_sync.Barrier.wait ctx bar
            done)
      in
      (m, sums, block, phases, report))
    (fun _m (m, sums, block, phases, _report) ->
      (* Expected final-phase sum: sum over q of block * (phases*1000 + q). *)
      let expect =
        float_of_int block
        *. List.fold_left
             (fun acc q -> acc +. float_of_int ((phases * 1000) + q))
             0.0
             (List.init nprocs (fun q -> q))
      in
      for p = 0 to nprocs - 1 do
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "sum of proc %d" p)
          expect
          (Mgs.Machine.peek m (sums + p))
      done)

(* Determinism: two identical runs give identical runtimes. *)
let test_deterministic () =
  let once () =
    let cfg = Mgs.Machine.config ~nprocs:8 ~cluster:2 ~lan_latency:500 () in
    let m = Mgs.Machine.create cfg in
    let base = Mgs.Machine.alloc m ~words:512 ~home:Mgs_mem.Allocator.Interleaved in
    let lock = Mgs_sync.Lock.create m () in
    let bar = Mgs_sync.Barrier.create m in
    let report =
      Mgs.Machine.run m (fun ctx ->
          let p = Mgs.Api.proc ctx in
          for i = 0 to 127 do
            let a = base + ((p + i) mod 512) in
            Mgs_sync.Lock.acquire ctx lock;
            let v = Mgs.Api.read ctx a in
            Mgs.Api.write ctx a (v +. 1.0);
            Mgs_sync.Lock.release ctx lock
          done;
          Mgs_sync.Barrier.wait ctx bar)
    in
    report.Mgs.Report.runtime
  in
  let r1 = once () and r2 = once () in
  Alcotest.(check int) "identical runtimes" r1 r2

let cases =
  List.concat_map
    (fun (nprocs, cluster) ->
      let name fmt = Printf.sprintf fmt nprocs cluster in
      [
        Alcotest.test_case (name "lock counter P=%d C=%d") `Quick
          (test_lock_counter ~nprocs ~cluster);
        Alcotest.test_case (name "barrier phases P=%d C=%d") `Quick
          (test_barrier_phases ~nprocs ~cluster);
      ])
    shapes

let () =
  Alcotest.run "smoke"
    [
      ("end-to-end", cases);
      ("determinism", [ Alcotest.test_case "same seed same cycles" `Quick test_deterministic ]);
    ]
