lib/harness/micro.ml: Hashtbl List Mgs Mgs_machine Mgs_mem Mgs_svm Mgs_util Printf
