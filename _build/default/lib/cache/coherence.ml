type kind = Read | Write

type stats = {
  mutable hits : int;
  mutable local_misses : int;
  mutable remote_misses : int;
  mutable misses_2party : int;
  mutable misses_3party : int;
  mutable software_extensions : int;
}

(* Per-processor cache slot state for the line it currently holds. *)
type slot_state = Invalid | Shared | Modified

type dir_entry = {
  mutable owner : int; (* local proc holding the line Modified; -1 if none *)
  sharers : Mgs_util.Bitset.t; (* local procs holding it Shared (excl. owner) *)
}

type t = {
  costs : Mgs_machine.Costs.t;
  geom : Mgs_mem.Geom.t;
  cluster : int;
  tags : int array array; (* [proc].(slot) = line id or -1 *)
  states : slot_state array array;
  dir : (int, dir_entry) Hashtbl.t; (* line id -> entry *)
  stats : stats;
}

let fresh_stats () =
  {
    hits = 0;
    local_misses = 0;
    remote_misses = 0;
    misses_2party = 0;
    misses_3party = 0;
    software_extensions = 0;
  }

let create costs geom ~cluster =
  if cluster <= 0 then invalid_arg "Coherence.create: cluster";
  let slots = costs.Mgs_machine.Costs.hardware.cache_line_slots in
  {
    costs;
    geom;
    cluster;
    tags = Array.init cluster (fun _ -> Array.make slots (-1));
    states = Array.init cluster (fun _ -> Array.make slots Invalid);
    dir = Hashtbl.create 1024;
    stats = fresh_stats ();
  }

let entry_of c line =
  match Hashtbl.find_opt c.dir line with
  | Some e -> e
  | None ->
    let e = { owner = -1; sharers = Mgs_util.Bitset.create c.cluster } in
    Hashtbl.add c.dir line e;
    e

let slot_of c line = line mod Array.length c.tags.(0)

(* Drop [proc]'s cache slot contribution to the directory when the slot
   is reassigned to a different line. *)
let evict c ~proc ~slot =
  let old = c.tags.(proc).(slot) in
  if old >= 0 && c.states.(proc).(slot) <> Invalid then begin
    match Hashtbl.find_opt c.dir old with
    | None -> ()
    | Some e ->
      if e.owner = proc then e.owner <- -1;
      Mgs_util.Bitset.remove e.sharers proc
  end

(* Remove the line from another processor's cache (invalidation). *)
let zap c ~proc ~line =
  let slot = slot_of c line in
  if c.tags.(proc).(slot) = line then c.states.(proc).(slot) <- Invalid

let downgrade c ~proc ~line =
  let slot = slot_of c line in
  if c.tags.(proc).(slot) = line && c.states.(proc).(slot) = Modified then
    c.states.(proc).(slot) <- Shared

let access c ~proc ~addr ~frame_owner ~kind =
  if proc < 0 || proc >= c.cluster then invalid_arg "Coherence.access: proc";
  if frame_owner < 0 || frame_owner >= c.cluster then
    invalid_arg "Coherence.access: frame_owner";
  let hw = c.costs.Mgs_machine.Costs.hardware in
  let line = Mgs_mem.Geom.line_of_addr c.geom addr in
  let slot = slot_of c line in
  let st = if c.tags.(proc).(slot) = line then c.states.(proc).(slot) else Invalid in
  let hit = match (kind, st) with Read, (Shared | Modified) | Write, Modified -> true | _ -> false in
  if hit then begin
    c.stats.hits <- c.stats.hits + 1;
    hw.cache_hit
  end
  else begin
    evict c ~proc ~slot;
    let e = entry_of c line in
    let nsharers = Mgs_util.Bitset.cardinal e.sharers in
    let overflow = nsharers > hw.hw_dir_pointers in
    let base =
      match kind with
      | Read ->
        if e.owner >= 0 && e.owner <> proc then begin
          (* Fetch from a dirty third party; the owner downgrades. *)
          let cost = if e.owner = frame_owner then hw.miss_2party else hw.miss_3party in
          downgrade c ~proc:e.owner ~line;
          Mgs_util.Bitset.add e.sharers e.owner;
          e.owner <- -1;
          cost
        end
        else if proc = frame_owner then hw.miss_local
        else hw.miss_remote
      | Write ->
        if e.owner >= 0 && e.owner <> proc then begin
          let cost = if e.owner = frame_owner then hw.miss_2party else hw.miss_3party in
          zap c ~proc:e.owner ~line;
          e.owner <- -1;
          cost
        end
        else begin
          (* Invalidate all other sharers. *)
          let others = ref [] in
          Mgs_util.Bitset.iter (fun s -> if s <> proc then others := s :: !others) e.sharers;
          match !others with
          | [] -> if proc = frame_owner then hw.miss_local else hw.miss_remote
          | [ s ] ->
            zap c ~proc:s ~line;
            if s = frame_owner then hw.miss_2party else hw.miss_3party
          | l ->
            List.iter (fun s -> zap c ~proc:s ~line) l;
            hw.miss_3party
        end
    in
    let cost = if overflow then base + hw.remote_software else base in
    (match kind with
    | Read ->
      Mgs_util.Bitset.add e.sharers proc;
      c.tags.(proc).(slot) <- line;
      c.states.(proc).(slot) <- Shared
    | Write ->
      Mgs_util.Bitset.clear e.sharers;
      e.owner <- proc;
      c.tags.(proc).(slot) <- line;
      c.states.(proc).(slot) <- Modified);
    (match kind with
    | Read ->
      if proc = frame_owner && base = hw.miss_local then
        c.stats.local_misses <- c.stats.local_misses + 1
      else if base = hw.miss_remote then c.stats.remote_misses <- c.stats.remote_misses + 1
      else if base = hw.miss_2party then c.stats.misses_2party <- c.stats.misses_2party + 1
      else c.stats.misses_3party <- c.stats.misses_3party + 1
    | Write ->
      if base = hw.miss_local then c.stats.local_misses <- c.stats.local_misses + 1
      else if base = hw.miss_remote then c.stats.remote_misses <- c.stats.remote_misses + 1
      else if base = hw.miss_2party then c.stats.misses_2party <- c.stats.misses_2party + 1
      else c.stats.misses_3party <- c.stats.misses_3party + 1);
    if overflow then c.stats.software_extensions <- c.stats.software_extensions + 1;
    cost
  end

let flush_page c ~vpn ~dirty =
  let lines = Mgs_mem.Geom.lines_per_page c.geom in
  let base_line = vpn * lines in
  let present = ref 0 in
  dirty := 0;
  for l = base_line to base_line + lines - 1 do
    match Hashtbl.find_opt c.dir l with
    | None -> ()
    | Some e ->
      let any = e.owner >= 0 || not (Mgs_util.Bitset.is_empty e.sharers) in
      if any then incr present;
      if e.owner >= 0 then begin
        incr dirty;
        zap c ~proc:e.owner ~line:l
      end;
      Mgs_util.Bitset.iter (fun s -> zap c ~proc:s ~line:l) e.sharers;
      Hashtbl.remove c.dir l
  done;
  !present

let check_invariants c =
  (* cache slots must be backed by directory entries *)
  Array.iteri
    (fun proc tags ->
      Array.iteri
        (fun slot line ->
          if line >= 0 && c.states.(proc).(slot) <> Invalid then begin
            match Hashtbl.find_opt c.dir line with
            | None ->
              failwith
                (Printf.sprintf "proc %d caches line %d with no directory entry" proc line)
            | Some e -> (
              match c.states.(proc).(slot) with
              | Modified ->
                if e.owner <> proc then
                  failwith (Printf.sprintf "proc %d Modified line %d but owner=%d" proc line e.owner)
              | Shared ->
                if not (Mgs_util.Bitset.mem e.sharers proc || e.owner = proc) then
                  failwith (Printf.sprintf "proc %d Shared line %d not in sharers" proc line)
              | Invalid -> ())
          end)
        tags)
    c.tags;
  (* no directory entry may record an owner who no longer caches it as
     Modified... the owner may have been evicted, in which case the slot
     is reused; we only require that a recorded owner does not cache the
     line in Shared state *)
  Hashtbl.iter
    (fun line e ->
      if e.owner >= 0 then begin
        let slot = slot_of c line in
        if c.tags.(e.owner).(slot) = line && c.states.(e.owner).(slot) = Shared then
          failwith (Printf.sprintf "owner %d of line %d is only Shared" e.owner line)
      end)
    c.dir

let stats c = c.stats

let reset_stats c =
  let s = c.stats in
  s.hits <- 0;
  s.local_misses <- 0;
  s.remote_misses <- 0;
  s.misses_2party <- 0;
  s.misses_3party <- 0;
  s.software_extensions <- 0
