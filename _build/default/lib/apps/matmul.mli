(** Matrix Multiply: C = A x B on square matrices (paper section 5.2).

    Rows of the result are distributed in contiguous bands.  A and B are
    read-shared, C is written privately per band, so like Jacobi the
    application is coarse-grained and nearly insensitive to cluster size
    (Figure 7, breakup penalty ~0%). *)

type params = {
  n : int;  (** matrix dimension *)
  mac_cycles : int;  (** modelled multiply-accumulate cost *)
}

val default : params
(** 64 x 64 — a scaled version of the paper's 256 x 256. *)

val tiny : params

val paper : params
(** The paper's full 256x256 problem. *)

val problem_size : params -> string

val workload : params -> Mgs_harness.Sweep.workload
(** Verifies the product bit-for-bit against a sequential reference. *)
