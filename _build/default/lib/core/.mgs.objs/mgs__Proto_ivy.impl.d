lib/core/proto_ivy.ml: Am Array Bitset Coherence Cpu Geom Hashtbl List Mgs_engine Mgs_obs Mlock Option Pagedata Sim Span State Tlb Topology
