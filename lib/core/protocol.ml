(* One face for the three coherence engines.

   The engines (MGS, HLRC, Ivy) export different hook sets — Ivy has no
   release-time work, only HLRC publishes and applies write notices.
   Packaging each behind the same module type with explicit no-ops lets
   every dispatch site ([Api], [Consistency], the harness, the CLIs)
   treat protocols uniformly and lets the harness select them by name,
   so adding a fourth engine means one [register] call, not a variant
   case in a dozen matches. *)

module type PROTOCOL = sig
  val name : string
  (** Registry key; what [--protocol] and sweep specs say. *)

  val proto : State.protocol
  (** The [State] tag a machine running this engine carries. *)

  val fault : State.t -> proc:int -> vpn:int -> write:bool -> unit
  (** Resolve an access fault on [vpn]; fiber context. *)

  val release_all : State.t -> proc:int -> unit
  (** Release-side flush (delayed updates / diffs); fiber context. *)

  val publish : State.t -> proc:int -> into:(int, int) Hashtbl.t -> unit
  (** Deposit write notices into a synchronization object at release. *)

  val apply_notices : State.t -> proc:int -> (int, int) Hashtbl.t -> unit
  (** Consume write notices at acquire (lazy invalidation). *)
end

let nop_publish _ ~proc:_ ~into:_ = ()

let nop_apply _ ~proc:_ _ = ()

module Mgs_protocol : PROTOCOL = struct
  let name = "mgs"

  let proto = State.Protocol_mgs

  let fault = Proto.fault

  let release_all = Proto.release_all

  let publish = nop_publish

  let apply_notices = nop_apply
end

module Hlrc_protocol : PROTOCOL = struct
  let name = "hlrc"

  let proto = State.Protocol_hlrc

  let fault = Proto_hlrc.fault

  let release_all = Proto_hlrc.release_all

  let publish = Proto_hlrc.publish

  let apply_notices = Proto_hlrc.apply_notices
end

module Ivy_protocol : PROTOCOL = struct
  let name = "ivy"

  let proto = State.Protocol_ivy

  let fault = Proto_ivy.fault

  let release_all _ ~proc:_ = ()

  let publish = nop_publish

  let apply_notices = nop_apply
end

let registry : (string, (module PROTOCOL)) Hashtbl.t = Hashtbl.create 8

let register ((module P : PROTOCOL) as impl) =
  if Hashtbl.mem registry P.name then
    invalid_arg (Printf.sprintf "Protocol.register: %S already registered" P.name);
  Hashtbl.add registry P.name impl

let () = List.iter register [ (module Mgs_protocol); (module Hlrc_protocol); (module Ivy_protocol) ]

let find name = Hashtbl.find_opt registry name

let names () = List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) registry [])

let of_name name =
  match find name with
  | Some impl -> impl
  | None ->
    invalid_arg
      (Printf.sprintf "unknown protocol %S (known: %s)" name
         (String.concat ", " (names ())))

let proto_of_name name =
  let (module P) = of_name name in
  P.proto

(* Dispatch for machines built directly with a [State.protocol] tag:
   a direct match, so the fault path pays no table lookup.  Only the
   three built-ins carry tags; dynamically registered engines are
   reached by name. *)
let impl_of = function
  | State.Protocol_mgs -> (module Mgs_protocol : PROTOCOL)
  | State.Protocol_hlrc -> (module Hlrc_protocol : PROTOCOL)
  | State.Protocol_ivy -> (module Ivy_protocol : PROTOCOL)

let name_of proto =
  let (module P) = impl_of proto in
  P.name
