(** Minimal strict JSON, dependency-free.

    Exists so the test suite and the trace-lint tool can validate this
    library's own exports (Chrome traces, span dumps, metrics series)
    without external packages.  The parser is strict: it rejects
    trailing garbage, raw control characters inside strings, unknown
    escapes, and malformed numbers. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** Escape for embedding in a JSON string literal.  Handles quote,
    backslash, the shorthand control escapes, and \u-escapes every
    remaining byte outside printable ASCII, so the result is always
    pure ASCII (hence valid UTF-8). *)

val parse : string -> (t, string) result
(** Parse one complete JSON value; [Error] carries a byte offset and
    reason. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects. *)

val to_list : t -> t list option

val to_string : t -> string option

val to_number : t -> float option
