(* Tests for the software virtual memory substrate: TLB semantics and
   translation costs. *)

module Tlb = Mgs_svm.Tlb
module Tr = Mgs_svm.Translate
module Costs = Mgs_machine.Costs

let test_tlb_fill_lookup () =
  let t = Tlb.create () in
  Alcotest.(check bool) "empty" true (Tlb.lookup t ~vpn:3 = None);
  Tlb.fill t ~vpn:3 ~mode:Tlb.Ro;
  Alcotest.(check bool) "ro" true (Tlb.lookup t ~vpn:3 = Some Tlb.Ro);
  Tlb.fill t ~vpn:3 ~mode:Tlb.Rw;
  Alcotest.(check bool) "upgraded in place" true (Tlb.lookup t ~vpn:3 = Some Tlb.Rw);
  Alcotest.(check int) "one entry" 1 (Tlb.entries t)

let test_tlb_invalidate () =
  let t = Tlb.create () in
  Tlb.fill t ~vpn:1 ~mode:Tlb.Rw;
  Tlb.fill t ~vpn:2 ~mode:Tlb.Ro;
  Tlb.invalidate t ~vpn:1;
  Alcotest.(check bool) "gone" true (Tlb.lookup t ~vpn:1 = None);
  Alcotest.(check bool) "other survives" true (Tlb.lookup t ~vpn:2 = Some Tlb.Ro);
  (* racing a second invalidation is a no-op *)
  Tlb.invalidate t ~vpn:1;
  Alcotest.(check int) "invalidation count" 1 (Tlb.invalidations t)

let test_tlb_stats_and_clear () =
  let t = Tlb.create () in
  Tlb.fill t ~vpn:1 ~mode:Tlb.Ro;
  Tlb.fill t ~vpn:2 ~mode:Tlb.Ro;
  Tlb.fill t ~vpn:1 ~mode:Tlb.Rw;
  Alcotest.(check int) "fills counted" 3 (Tlb.fills t);
  Tlb.clear t;
  Alcotest.(check int) "cleared" 0 (Tlb.entries t)

let test_tlb_capacity_fifo () =
  let t = Tlb.create ~capacity:2 () in
  Tlb.fill t ~vpn:1 ~mode:Tlb.Ro;
  Tlb.fill t ~vpn:2 ~mode:Tlb.Ro;
  Tlb.fill t ~vpn:3 ~mode:Tlb.Ro;
  Alcotest.(check int) "bounded" 2 (Tlb.entries t);
  Alcotest.(check bool) "oldest evicted" true (Tlb.lookup t ~vpn:1 = None);
  Alcotest.(check bool) "newest resident" true (Tlb.lookup t ~vpn:3 = Some Tlb.Ro);
  Alcotest.(check int) "eviction counted" 1 (Tlb.evictions t);
  (* re-filling a resident vpn must not evict *)
  Tlb.fill t ~vpn:3 ~mode:Tlb.Rw;
  Alcotest.(check int) "no extra eviction" 1 (Tlb.evictions t);
  Alcotest.check_raises "bad capacity" (Invalid_argument "Tlb.create: capacity") (fun () ->
      ignore (Tlb.create ~capacity:0 ()))

let test_tlb_eviction_skips_invalidated () =
  let t = Tlb.create ~capacity:2 () in
  Tlb.fill t ~vpn:1 ~mode:Tlb.Ro;
  Tlb.fill t ~vpn:2 ~mode:Tlb.Ro;
  Tlb.invalidate t ~vpn:1;
  (* the lazily-queued victim 1 is already gone; 2 must survive *)
  Tlb.fill t ~vpn:3 ~mode:Tlb.Ro;
  Alcotest.(check bool) "2 survives" true (Tlb.lookup t ~vpn:2 = Some Tlb.Ro);
  Alcotest.(check bool) "3 resident" true (Tlb.lookup t ~vpn:3 = Some Tlb.Ro)

(* End-to-end: a machine with a tiny TLB still computes correctly. *)
let test_machine_with_tiny_tlb () =
  let cfg = Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:500 ~tlb_entries:2 ~shadow:true () in
  let m = Mgs.Machine.create cfg in
  (* ten pages, touched round-robin so the TLB thrashes *)
  let base = Mgs.Machine.alloc m ~words:(256 * 10) ~home:Mgs_mem.Allocator.Interleaved in
  let bar = Mgs_sync.Barrier.create m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         for round = 1 to 3 do
           for pg = 0 to 9 do
             let a = base + (256 * pg) + p in
             Mgs.Api.write ctx a (float_of_int ((round * 100) + p))
           done;
           Mgs_sync.Barrier.wait ctx bar
         done));
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check int) "no shadow mismatches" 0 (Mgs.Machine.shadow_mismatches m);
  for pg = 0 to 9 do
    for p = 0 to 3 do
      Alcotest.(check (float 0.))
        (Printf.sprintf "page %d proc %d" pg p)
        (float_of_int (300 + p))
        (Mgs.Machine.peek m (base + (256 * pg) + p))
    done
  done

let test_translation_costs () =
  let c = Costs.default in
  Alcotest.(check int) "array" 18 (Tr.cost c Tr.Array);
  Alcotest.(check int) "pointer" 24 (Tr.cost c Tr.Pointer);
  Alcotest.(check int) "unmapped is free" 0 (Tr.cost c Tr.Unmapped)

let () =
  Alcotest.run "svm"
    [
      ( "tlb",
        [
          Alcotest.test_case "fill and lookup" `Quick test_tlb_fill_lookup;
          Alcotest.test_case "invalidate" `Quick test_tlb_invalidate;
          Alcotest.test_case "stats and clear" `Quick test_tlb_stats_and_clear;
          Alcotest.test_case "capacity fifo" `Quick test_tlb_capacity_fifo;
          Alcotest.test_case "eviction skips invalidated" `Quick
            test_tlb_eviction_skips_invalidated;
          Alcotest.test_case "machine with tiny tlb" `Quick test_machine_with_tiny_tlb;
        ] );
      ("translate", [ Alcotest.test_case "costs" `Quick test_translation_costs ]);
    ]
