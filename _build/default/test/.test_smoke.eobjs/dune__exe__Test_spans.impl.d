test/test_spans.ml: Alcotest Format List Mgs Mgs_apps Mgs_harness Mgs_obs Printf
