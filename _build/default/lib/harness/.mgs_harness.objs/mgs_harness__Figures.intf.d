lib/harness/figures.mli: Mgs_obs Sweep
