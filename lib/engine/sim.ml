type time = int

type t = {
  queue : (unit -> unit) Mgs_util.Pqueue.t;
  mutable clock : time;
  mutable seq : int;
  mutable executed : int;
  mutable peak : int;
}

let create () = { queue = Mgs_util.Pqueue.create (); clock = 0; seq = 0; executed = 0; peak = 0 }

let now sim = sim.clock

let events_executed sim = sim.executed

let peak_pending sim = sim.peak

let at sim t f =
  let t = max t sim.clock in
  sim.seq <- sim.seq + 1;
  Mgs_util.Pqueue.push sim.queue ~prio:t ~seq:sim.seq f;
  let len = Mgs_util.Pqueue.length sim.queue in
  if len > sim.peak then sim.peak <- len

let after sim d f =
  if d < 0 then invalid_arg "Sim.after: negative delay";
  at sim (sim.clock + d) f

let pending sim = Mgs_util.Pqueue.length sim.queue

let step sim =
  match Mgs_util.Pqueue.pop_min sim.queue with
  | exception Mgs_util.Pqueue.Empty_queue -> false
  | f ->
    let t = Mgs_util.Pqueue.popped_prio sim.queue in
    sim.clock <- max sim.clock t;
    sim.executed <- sim.executed + 1;
    f ();
    true

let run sim ?(limit = max_int) () =
  let rec go n =
    if n >= limit then failwith "Sim.run: event limit exhausted (livelock?)"
    else if step sim then go (n + 1)
    else n
  in
  go 0
