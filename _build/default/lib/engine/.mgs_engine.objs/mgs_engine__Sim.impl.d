lib/engine/sim.ml: Mgs_util
