(** Page contents and the Munin-style twin/diff/merge machinery.

    A page's data is an array of words.  When an SSMP gains write
    privilege it {e twins} the page (snapshots it); at release time the
    modified page is compared word-by-word against its twin to produce a
    {e diff}, which the home merges into the master copy.  Multiple
    writers of disjoint words therefore reconcile correctly. *)

type page = float array
(** Mutable page contents, length [Geom.page_words]. *)

type diff = (int * float) list
(** Sparse delta: [(word offset, new value)] pairs, offsets strictly
    increasing. *)

val create : Geom.t -> page
(** Zero-filled page. *)

val copy : page -> page
(** [copy p] is an independent twin of [p]. *)

val blit : src:page -> dst:page -> unit
(** Overwrite [dst] with [src] (lengths must match). *)

val diff : page -> twin:page -> diff
(** [diff p ~twin] lists the words where [p] differs from [twin]. *)

val diff_size : diff -> int
(** Number of modified words. *)

val apply_diff : page -> diff -> unit
(** [apply_diff p d] writes each delta of [d] into [p]. *)

val equal : page -> page -> bool
