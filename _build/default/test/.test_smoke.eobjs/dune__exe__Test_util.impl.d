test/test_util.ml: Alcotest Array Float Int List Mgs_util Printf QCheck2 QCheck_alcotest Set String
