type 'a t = {
  buf : 'a option array;
  mutable head : int; (* next write position *)
  mutable length : int;
  mutable pushed : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity";
  { buf = Array.make capacity None; head = 0; length = 0; pushed = 0 }

let capacity r = Array.length r.buf

let length r = r.length

let pushed r = r.pushed

let dropped r = r.pushed - r.length

let push r x =
  let cap = Array.length r.buf in
  r.buf.(r.head) <- Some x;
  r.head <- (r.head + 1) mod cap;
  if r.length < cap then r.length <- r.length + 1;
  r.pushed <- r.pushed + 1

let clear r =
  Array.fill r.buf 0 (Array.length r.buf) None;
  r.head <- 0;
  r.length <- 0;
  r.pushed <- 0

(* Oldest-first traversal. *)
let iter f r =
  let cap = Array.length r.buf in
  let start = (r.head - r.length + cap) mod cap in
  for i = 0 to r.length - 1 do
    match r.buf.((start + i) mod cap) with Some x -> f x | None -> assert false
  done

let to_list r =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) r;
  List.rev !acc
