(** Dense LU factorization without pivoting (SPLASH-2 kernel).

    Not part of the paper's evaluation — included as an additional
    workload exercising a different sharing pattern: one pivot row is
    read-broadcast to every processor per step while each processor
    updates its own cyclically-distributed rows, so the protocol sees a
    producer/all-consumers page each iteration.  The matrix is made
    diagonally dominant so no pivoting is needed. *)

type params = {
  n : int;  (** matrix dimension *)
  flop_cycles : int;  (** modelled cost per inner-loop update *)
  seed : int;
}

val default : params

val tiny : params

val problem_size : params -> string

val workload : params -> Mgs_harness.Sweep.workload
(** Verifies the factored matrix bit-for-bit against a sequential
    elimination (identical operation order). *)
