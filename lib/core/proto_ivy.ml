open State

(* Server-side page states are reused from the MGS sentry:
   - S_read: no writer; read_dir lists the SSMPs with read copies;
   - S_write: write_dir holds the single owner SSMP;
   - S_rel: an ownership transition is in progress (requests pend).

   Every transition — including the final data grant — holds the page
   in S_rel until the grantee acknowledges installation (IVY_GACK), so
   a later request can never invalidate a copy that is still in flight.
   [s_ivy_grantee]/[s_ivy_grant_write] describe the pending grant. *)

(* --- client side: invalidations and recalls ------------------------- *)

(* Invalidate the TLB entries of every mapping processor, then [k]. *)
let shoot_tlbs m ~ssmp ~vpn ~rc k =
  let ce = get_centry m ssmp vpn in
  let targets = Bitset.elements ce.tlb_dir in
  Bitset.clear ce.tlb_dir;
  match targets with
  | [] -> k ()
  | _ ->
    let remaining = ref (List.length targets) in
    List.iter
      (fun lidx ->
        let p = global_proc m ssmp lidx in
        (stats m).pinvs <- (stats m).pinvs + 1;
        Am.post m.am ~tag:"PINV" ~src:rc ~dst:p ~words:0 ~cost:m.costs.proto.tlb_inv
          (fun _t ->
            Tlb.invalidate m.tlbs.(p) ~vpn;
            Am.post m.am ~tag:"PINV_ACK" ~src:p ~dst:rc ~words:0 ~cost:0 (fun _t ->
                decr remaining;
                if !remaining = 0 then k ())))
      targets

(* Drop this SSMP's copy; reply with the page contents if it was the
   owner (the master must be refreshed before anyone else reads).
   A BUSY mapping means the copy was already dropped (an upgrade in
   flight) — nothing to do, and blocking on the mapping lock would
   deadlock against the fetching fiber. *)
let client_inv m ~ssmp ~vpn ~(reply : Pagedata.page option -> unit) =
  let ce = get_centry m ssmp vpn in
  if ce.pstate = P_busy then reply None
  else
    let ictx = span_current m in
    Mlock.acquire_k m.sim ce.mlock (fun () ->
        span_with m ictx @@ fun () ->
        match ce.pstate with
        | P_inv | P_busy ->
          Mlock.release m.sim ce.mlock;
          reply None
        | P_read | P_write ->
          let was_owner = ce.pstate = P_write in
          let rc = global_proc m ssmp ce.frame_owner in
          let dirty = ref 0 in
          bump_gen m;
          ignore (Coherence.flush_page m.caches.(ssmp) ~vpn ~dirty);
          shoot_tlbs m ~ssmp ~vpn ~rc (fun () ->
              let payload =
                if was_owner then Some (Pagedata.copy (Option.get ce.cdata)) else None
              in
              ce.cdata <- None;
              ce.ctwin <- None;
              ce.pstate <- P_inv;
              let clean = Geom.lines_per_page m.geom * m.costs.proto.clean_per_line in
              Am.run_on m.am ~tag:"rc.inv_clean" ~proc:rc ~at:(Sim.now m.sim) ~cost:clean
                (fun _t ->
                  Mlock.release m.sim ce.mlock;
                  reply payload)))

(* Downgrade the owner to a read copy, returning the page contents. *)
let client_recall m ~ssmp ~vpn ~(reply : Pagedata.page -> unit) =
  let ce = get_centry m ssmp vpn in
  let ictx = span_current m in
  Mlock.acquire_k m.sim ce.mlock (fun () ->
      span_with m ictx @@ fun () ->
      assert (ce.pstate = P_write);
      let rc = global_proc m ssmp ce.frame_owner in
      let dirty = ref 0 in
      bump_gen m;
      ignore (Coherence.flush_page m.caches.(ssmp) ~vpn ~dirty);
      (* mapping processors refill read-only afterwards *)
      shoot_tlbs m ~ssmp ~vpn ~rc (fun () ->
          let payload = Pagedata.copy (Option.get ce.cdata) in
          ce.pstate <- P_read;
          let clean = Geom.lines_per_page m.geom * m.costs.proto.clean_per_line in
          Am.run_on m.am ~tag:"rc.inv_clean" ~proc:rc ~at:(Sim.now m.sim) ~cost:clean
            (fun _t ->
              Mlock.release m.sim ce.mlock;
              reply payload)))

(* --- server side ------------------------------------------------------ *)

let install m ~requester ~vpn ~write ~payload =
  let ssmp = Topology.ssmp_of_proc m.topo requester in
  let ce = get_centry m ssmp vpn in
  assert (ce.pstate = P_busy);
  bump_gen m;
  ce.cdata <- Some payload;
  ce.frame_owner <- local_idx m requester;
  ce.pstate <- (if write then P_write else P_read);
  Bitset.clear ce.tlb_dir;
  match ce.fetch_resume with
  | Some resume ->
    ce.fetch_resume <- None;
    resume ()
  | None -> assert false

(* Ship the page; the transition stays open until the grantee's ack. *)
let rec do_grant m se ~requester ~write =
  let ssmp = Topology.ssmp_of_proc m.topo requester in
  let vpn = se.s_vpn in
  assert (se.s_state = S_rel);
  if write then begin
    Bitset.clear se.s_read_dir;
    Bitset.clear se.s_write_dir;
    Bitset.add se.s_write_dir ssmp
  end
  else Bitset.add se.s_read_dir ssmp;
  Hashtbl.replace se.s_frame_procs ssmp requester;
  let payload = Pagedata.copy se.s_master in
  Am.post m.am
    ~tag:(if write then "IVY_WDAT" else "IVY_RDAT")
    ~src:se.s_home_proc ~dst:requester ~words:m.geom.Geom.page_words
    ~cost:(m.costs.proto.frame_alloc + m.costs.proto.server_op)
    (fun _t ->
      install m ~requester ~vpn ~write ~payload;
      Am.post m.am ~tag:"IVY_GACK" ~src:requester ~dst:se.s_home_proc ~words:0 ~cost:0
        (fun _t ->
          se.s_state <- (if Bitset.is_empty se.s_write_dir then S_read else S_write);
          (* serve requests that pended during the transition, each
             under its own transaction's context *)
          let rd = List.rev se.s_pend_rd and wr = List.rev se.s_pend_wr in
          se.s_pend_rd <- [];
          se.s_pend_wr <- [];
          let serve ~write (r, qctx) =
            span_close m qctx;
            span_with m qctx (fun () -> server_req m ~vpn ~requester:r ~write)
          in
          List.iter (serve ~write:false) rd;
          List.iter (serve ~write:true) wr))

and server_req m ~vpn ~requester ~write =
  let se = get_sentry m vpn in
  let src_ssmp = Topology.ssmp_of_proc m.topo requester in
  match se.s_state with
  | S_rel ->
    (* an ownership transition is in flight: queue, with a span marking
       the wait (the "queue" component of the latency breakdown) *)
    let q =
      span_open m ~label:"sv.queue" ~engine:Mgs_obs.Event.Server ~vpn ~src:requester
        ~dst:se.s_home_proc ()
    in
    if write then se.s_pend_wr <- (requester, q) :: se.s_pend_wr
    else se.s_pend_rd <- (requester, q) :: se.s_pend_rd
  | S_read | S_write ->
    se.s_state <- S_rel;
    se.s_ivy_grantee <- requester;
    se.s_ivy_grant_write <- write;
    if write then begin
      (stats m).write_fetches <- (stats m).write_fetches + 1;
      (* invalidate every other copy, then grant exclusivity *)
      let targets =
        let u = Bitset.copy se.s_read_dir in
        Bitset.union_into u se.s_write_dir;
        Bitset.remove u src_ssmp;
        Bitset.elements u
      in
      (* the requester's own membership (if any) is already gone: an
         upgrading SSMP drops its copy before sending IVY_WREQ *)
      Bitset.remove se.s_read_dir src_ssmp;
      if targets = [] then do_grant m se ~requester ~write:true
      else begin
        se.s_count <- List.length targets;
        List.iter
          (fun ssmp ->
            (stats m).invals <- (stats m).invals + 1;
            let dst = Hashtbl.find se.s_frame_procs ssmp in
            Am.post m.am ~tag:"IVY_INV" ~src:se.s_home_proc ~dst ~words:0 ~cost:0
              (fun _t ->
                let rc = Hashtbl.find se.s_frame_procs ssmp in
                client_inv m ~ssmp ~vpn ~reply:(fun payload ->
                    let words =
                      match payload with Some _ -> m.geom.Geom.page_words | None -> 0
                    in
                    let cost =
                      match payload with
                      | Some _ -> m.geom.Geom.page_words * m.costs.proto.copy_per_word
                      | None -> 0
                    in
                    Am.post m.am ~tag:"IVY_ACK" ~src:rc ~dst:se.s_home_proc ~words ~cost
                      (fun _t ->
                        (match payload with
                        | Some p -> Pagedata.blit ~src:p ~dst:se.s_master
                        | None -> ());
                        Bitset.remove se.s_read_dir ssmp;
                        Bitset.remove se.s_write_dir ssmp;
                        Hashtbl.remove se.s_frame_procs ssmp;
                        se.s_count <- se.s_count - 1;
                        if se.s_count = 0 then
                          do_grant m se ~requester:se.s_ivy_grantee
                            ~write:se.s_ivy_grant_write))))
          targets
      end
    end
    else begin
      (stats m).read_fetches <- (stats m).read_fetches + 1;
      match Bitset.choose se.s_write_dir with
      | Some owner when owner <> src_ssmp ->
        (* downgrade the owner first so the master is current *)
        se.s_count <- 1;
        let dst = Hashtbl.find se.s_frame_procs owner in
        (stats m).one_winvals <- (stats m).one_winvals + 1;
        Am.post m.am ~tag:"IVY_RECALL" ~src:se.s_home_proc ~dst ~words:0 ~cost:0 (fun _t ->
            let rc = Hashtbl.find se.s_frame_procs owner in
            client_recall m ~ssmp:owner ~vpn ~reply:(fun payload ->
                Am.post m.am ~tag:"IVY_PAGE" ~src:rc ~dst:se.s_home_proc
                  ~words:m.geom.Geom.page_words
                  ~cost:(m.geom.Geom.page_words * m.costs.proto.copy_per_word)
                  (fun _t ->
                    Pagedata.blit ~src:payload ~dst:se.s_master;
                    Bitset.remove se.s_write_dir owner;
                    Bitset.add se.s_read_dir owner;
                    do_grant m se ~requester ~write:false)))
      | _ -> do_grant m se ~requester ~write:false
    end

(* --- fiber-side fault path --------------------------------------------- *)

let fault m ~proc ~vpn ~write =
  let c = m.costs in
  let cpu = m.cpus.(proc) in
  let ssmp = Topology.ssmp_of_proc m.topo proc in
  let ce = get_centry m ssmp vpn in
  let lidx = local_idx m proc in
  Cpu.advance cpu Mgs c.svm.fault_entry;
  if Mlock.acquire_fiber m.sim ce.mlock then Cpu.resume_charge cpu Mgs (Sim.now m.sim);
  Cpu.advance cpu Mgs (c.svm.map_lock + c.svm.table_lookup);
  (* Transaction root for this fault episode (see {!Proto.fault}). *)
  let root =
    span_open m ~parent:Span.none ~label:"fault" ~engine:Mgs_obs.Event.Local_client ~vpn
      ~src:proc ()
  in
  span_set m root;
  let finish () =
    span_close m root;
    span_set m Span.none
  in
  let fill ~rw =
    Bitset.add ce.tlb_dir lidx;
    Tlb.fill m.tlbs.(proc) ~vpn ~mode:(if rw then Tlb.Rw else Tlb.Ro);
    Cpu.advance cpu Mgs c.svm.tlb_write;
    Mlock.release m.sim ce.mlock;
    finish ()
  in
  let fetch () =
    ce.pstate <- P_busy;
    Cpu.advance cpu Mgs c.proto.msg_send;
    let home = home_proc_of_vpn m vpn in
    Am.post m.am
      ~tag:(if write then "IVY_WREQ" else "IVY_RREQ")
      ~src:proc ~dst:home ~words:0 ~cost:c.proto.server_op
      (fun _t -> server_req m ~vpn ~requester:proc ~write);
    let t0 = cpu.Cpu.clock in
    Mgs_engine.Fiber.suspend (fun resume -> ce.fetch_resume <- Some resume);
    Cpu.resume_charge cpu Mgs (Sim.now m.sim);
    span_set m root;
    (stats m).fetch_wait <- (stats m).fetch_wait + (cpu.Cpu.clock - t0);
    fill ~rw:write
  in
  match (ce.pstate, write) with
  | P_read, false ->
    (stats m).tlb_local_fills <- (stats m).tlb_local_fills + 1;
    fill ~rw:false
  | P_write, _ ->
    (stats m).tlb_local_fills <- (stats m).tlb_local_fills + 1;
    fill ~rw:write
  | P_read, true ->
    (* write to a read-shared page: drop the local copy (shooting down
       the local TLB mappings), then fetch exclusive ownership *)
    (stats m).upgrades <- (stats m).upgrades + 1;
    let mappers = Bitset.elements ce.tlb_dir in
    List.iter (fun l -> Tlb.invalidate m.tlbs.(global_proc m ssmp l) ~vpn) mappers;
    Cpu.advance cpu Mgs (c.proto.tlb_inv * max 1 (List.length mappers));
    Bitset.clear ce.tlb_dir;
    let dirty = ref 0 in
    bump_gen m;
    ignore (Coherence.flush_page m.caches.(ssmp) ~vpn ~dirty);
    ce.cdata <- None;
    fetch ()
  | P_inv, _ -> fetch ()
  | P_busy, _ -> assert false
