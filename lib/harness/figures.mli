(** Rendering of sweeps in the paper's formats: runtime-breakdown
    stacked bars (Figures 6-10, 12), the lock hit-rate series
    (Figure 11), and the application summary (Table 4). *)

val breakdown_figure : title:string -> Sweep.point list -> string
(** Stacked User/Lock/Barrier/MGS bars, one per cluster size, plus a
    table of the exact numbers and the three framework metrics. *)

val lock_figure : (string * Sweep.point list) list -> string
(** Figure 11: lock hit ratio per cluster size for several workloads. *)

val pp_lock_table : Micro.lock_point list -> string
(** Figure-11 companion: one row per contended-lock microbenchmark
    point — acquires, hit ratio, handoffs, handoff-gap mean/max and
    coefficient of variation (the fairness figure), and runtime. *)

(** One adaptive-vs-static ablation cell: the same workload and machine
    shape run with the adaptive layer off ([ar_static]) and on
    ([ar_adapt]). *)
type adapt_row = {
  ar_app : string;
  ar_protocol : string;
  ar_procs : int;
  ar_cluster : int;
  ar_static : Mgs.Report.t;
  ar_adapt : Mgs.Report.t;
}

val pp_adapt_table : adapt_row list -> string
(** One row per cell: static vs adaptive cycles, the percentage delta,
    and the adaptive layer's own counters (reclassifications, home
    migrations, forwarded requests, yielded pages, regime residency). *)

val fault_latency : (int * Mgs_obs.Span.breakdown) list -> string
(** Table-4-style remote-fault latency decomposition, one row per
    cluster size, rendered purely from the span critical-path
    breakdown: per-fault averages of local-client, LAN wire, DMA,
    server-occupancy, remote-client, and queueing components, the
    uninstrumented residual, and the coverage fraction. *)

(** One operation class of the request-serving tier's tail-latency
    report: sample count, mean, and nearest-rank percentiles in
    simulated cycles (computed exactly from the recorded spans). *)
type latency_row = {
  lr_op : string;
  lr_count : int;
  lr_mean : float;
  lr_p50 : int;
  lr_p99 : int;
  lr_p999 : int;
  lr_max : int;
}

val pp_latency_table : ?coverage:float -> latency_row list -> string
(** Aligned p50/p99/p999 table, one row per operation class; with
    [coverage], a trailing line reports the fraction of operation
    latency the span layer attributed to sub-phases. *)

type table4_row = {
  app : string;
  problem_size : string;
  seq_runtime : int;  (** sequential (P = 1) runtime in cycles *)
  speedup : float;  (** speedup on the full machine without MGS (C = P) *)
}

val table4 : table4_row list -> string

val metrics_summary : (string * Sweep.point list) list -> string
(** One row per workload: breakup penalty, multigrain potential,
    curvature class. *)

val pp_shard_table : Mgs_engine.Sim.t -> string
(** Engine self-profile: one row per shard (SSMP) — events executed,
    cross-shard sends, clamped schedules, peak heap occupancy, outbox
    merges, window stalls, and host wall seconds, plus a footer with
    the window count and coordinator barrier wall time.  Executed and
    x-send columns are deterministic across job counts; the rest
    describe the host-side run. *)

val csv_of_sweep : name:string -> Sweep.point list -> string
(** Machine-readable export: one line per cluster size with runtime,
    the four buckets, LAN traffic, and the lock hit ratio. *)

val message_mix : Sweep.point list -> string
(** Table of protocol message counts by tag per cluster size. *)

val protocol_ops : Sweep.point list -> string
(** Table of protocol operation counters per cluster size — fetches,
    upgrades, releases, invalidation fan-out, and the reply mix
    (ACK/DIFF/1WDATA/1WCLEAN, so the single-writer optimization's page
    transfers saved by clean retained copies are visible). *)
