(** Parallel radix sort (SPLASH-2 RADIX kernel).

    Not part of the paper's evaluation — included as an additional
    workload with a sharing pattern none of the paper's applications
    exhibit: each pass ends with a {e permutation} phase whose writes
    scatter over the entire destination array, so at small cluster sizes
    nearly every page is written by many SSMPs between two barriers.
    This is the classic worst case for page-grain software shared
    memory and a direct stress test of the multiple-writer twin/diff
    machinery (every page of the destination carries diffs from up to
    [P/C] clusters per pass).

    The histogram prefix phase adds all-to-all {e read} sharing of the
    per-processor count matrix.  Keys move between two buffers, one
    pass per [digit_bits]-bit digit, exactly as in the SPLASH-2 code. *)

type params = {
  nkeys : int;
  digit_bits : int;  (** bits per pass; the radix is [2^digit_bits] *)
  key_bits : int;  (** key width; must be a multiple of [digit_bits] *)
  op_cycles : int;  (** modelled computation per key per phase *)
  seed : int;
}

val default : params
(** 2048 16-bit keys sorted in four 4-bit passes. *)

val tiny : params

val problem_size : params -> string

val passes : params -> int
(** Number of counting-sort passes.  @raise Invalid_argument if
    [key_bits] is not a multiple of [digit_bits]. *)

val initial : params -> int array
(** The unsorted input keys (deterministic in [seed]). *)

val seq_reference : params -> int array
(** The keys in sorted order. *)

val workload : params -> Mgs_harness.Sweep.workload
(** Verifies the final buffer equals the sorted key sequence. *)
