test/test_litmus.ml: Alcotest Array List Mgs Mgs_mem Mgs_sync Printf
