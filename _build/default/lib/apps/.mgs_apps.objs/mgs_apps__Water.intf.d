lib/apps/water.mli: Mgs_harness
