lib/sync/barrier.mli: Mgs
