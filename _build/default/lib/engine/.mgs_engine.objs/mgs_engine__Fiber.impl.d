lib/engine/fiber.ml: Effect List Printf Sim
