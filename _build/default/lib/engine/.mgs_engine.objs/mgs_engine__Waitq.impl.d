lib/engine/waitq.ml: Fiber Queue Sim
