test/test_harness.ml: Alcotest List Mgs Mgs_harness Mgs_mem Mgs_sync Printf String
