examples/work_queue.ml: List Mgs Mgs_mem Mgs_sync Printf
