(** In-line software address translation costs.

    The MGS compiler emits translation code before pointer dereferences
    and distributed-array accesses; other accesses (stack, locals,
    instructions) are unmapped and free.  Applications declare which
    kind each shared access is; the cost difference (18 vs 24 cycles)
    comes from deciding whether a pointer targets mapped space. *)

type kind =
  | Array  (** distributed-array element access *)
  | Pointer  (** general pointer dereference *)
  | Unmapped  (** private/stack data: no translation *)

val cost : Mgs_machine.Costs.t -> kind -> int
