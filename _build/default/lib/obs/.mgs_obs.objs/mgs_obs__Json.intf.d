lib/obs/json.mli:
