(** 1-D complex FFT via the six-step (transpose) method (SPLASH-2
    kernel lineage).

    Not part of the paper's evaluation — included as an extra workload
    whose {e transpose} phases are all-to-all page-grain communication,
    the worst case for software shared memory and a sharp contrast to
    the row-local FFT phases (multigrain locality at its purest: each
    FFT phase is entirely SSMP-local, each transpose is entirely
    page-grain).

    The n = m x m points are laid out as an m-row matrix of complex
    values (two words each); rows are distributed in contiguous bands. *)

type params = {
  m : int;  (** matrix edge; n = m * m points; power of two *)
  butterfly_cycles : int;  (** modelled cost per butterfly *)
  seed : int;
}

val default : params

val tiny : params

val problem_size : params -> string

val workload : params -> Mgs_harness.Sweep.workload
(** Verifies the spectrum bit-for-bit against the identical algorithm
    run sequentially, and (for small sizes) against a direct DFT to
    1e-6. *)

val seq_reference : params -> float array
(** The sequential six-step result (interleaved re/im), for tests. *)

val dft_reference : params -> float array
(** Direct O(n^2) DFT of the same input (interleaved re/im). *)
