test/test_harness.ml: Alcotest Format List Mgs Mgs_harness Mgs_mem Mgs_obs Mgs_sync Mgs_util Printf String
