(** The one message record both transport layers speak.

    {!Mgs_am.Am.post} fills every field; {!Lan.send} reads the SSMP
    endpoints and payload size; the fault layer, delivery recorders, and
    trace hooks all consume this value instead of parallel labelled
    callback signatures. *)

type t = {
  tag : string;  (** protocol message type: RREQ, REL, ... *)
  src : int;  (** source processor, [-1] if n/a *)
  dst : int;  (** destination processor, [-1] if n/a *)
  src_ssmp : int;
  dst_ssmp : int;
  words : int;  (** bulk payload words (page / diff data) *)
  cost : int;  (** destination handler occupancy beyond dispatch *)
}

val make :
  ?tag:string ->
  ?src:int ->
  ?dst:int ->
  ?cost:int ->
  src_ssmp:int ->
  dst_ssmp:int ->
  words:int ->
  unit ->
  t
(** Convenience constructor for tests and transport-internal messages;
    the per-message hot path builds the record literally instead. *)
