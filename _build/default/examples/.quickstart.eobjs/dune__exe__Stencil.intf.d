examples/stencil.mli:
