type status = Running | Completed | Failed of exn

type t = { mutable status : status; name : string }

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let status fb = fb.status

let name fb = fb.name

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ -> failwith "Fiber.suspend: called outside a fiber"

let spawn sim ?shard ~at ~name body =
  let fb = { status = Running; name } in
  let handled () =
    let open Effect.Deep in
    match_with body ()
      {
        retc = (fun () -> fb.status <- Completed);
        exnc = (fun e -> fb.status <- Failed e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) -> register (fun () -> continue k ()))
            | _ -> None);
      }
  in
  (match shard with
  | None -> Sim.at sim at handled
  | Some s -> Sim.at_shard sim ~shard:s at handled);
  fb

let sleep_until sim t = suspend (fun resume -> Sim.at sim t resume)

let check_all_completed fibers =
  (* surface real failures before reporting deadlocks: a crashed fiber
     usually explains why the others are still parked at a barrier *)
  List.iter (fun fb -> match fb.status with Failed e -> raise e | _ -> ()) fibers;
  List.iter
    (fun fb ->
      match fb.status with
      | Completed | Failed _ -> ()
      | Running -> failwith (Printf.sprintf "fiber %S deadlocked (still blocked)" fb.name))
    fibers
