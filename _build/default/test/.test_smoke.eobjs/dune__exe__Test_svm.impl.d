test/test_svm.ml: Alcotest Mgs Mgs_machine Mgs_mem Mgs_svm Mgs_sync Printf
