(* Tests for the observability subsystem: the bounded ring, the
   power-of-two latency histograms, the event trace with its Chrome
   export, the online invariant checker (including deliberately
   corrupted state it must flag), and the phase-reset plumbing. *)

module Ring = Mgs_obs.Ring
module Hist = Mgs_obs.Hist
module Event = Mgs_obs.Event
module Trace = Mgs_obs.Trace

(* --- ring ------------------------------------------------------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  Alcotest.(check int) "empty" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Ring.to_list r);
  Alcotest.(check int) "nothing dropped" 0 (Ring.dropped r)

let test_ring_wrap () =
  let r = Ring.create ~capacity:3 in
  for i = 1 to 7 do
    Ring.push r i
  done;
  Alcotest.(check (list int)) "keeps the newest" [ 5; 6; 7 ] (Ring.to_list r);
  Alcotest.(check int) "pushed" 7 (Ring.pushed r);
  Alcotest.(check int) "length" 3 (Ring.length r);
  Alcotest.(check int) "dropped" 4 (Ring.dropped r);
  Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Ring.length r);
  Alcotest.(check int) "clear zeroes pushed" 0 (Ring.pushed r)

let test_ring_invalid () =
  Alcotest.check_raises "capacity 0 rejected" (Invalid_argument "Ring.create: capacity")
    (fun () -> ignore (Ring.create ~capacity:0))

(* --- histogram -------------------------------------------------------- *)

let test_hist_buckets () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 0; 1; 5; 5; 1000; -3 ];
  Alcotest.(check int) "count" 6 (Hist.count h);
  (* -3 clamps to 0 *)
  Alcotest.(check int) "sum" (0 + 1 + 5 + 5 + 1000 + 0) (Hist.sum h);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 1000 (Hist.max_value h);
  let buckets = Hist.buckets h in
  Alcotest.(check (list (triple int int int)))
    "power-of-two buckets"
    [ (0, 0, 2); (1, 1, 1); (4, 7, 2); (512, 1023, 1) ]
    buckets

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check (float 0.)) "mean" 0.0 (Hist.mean h);
  Alcotest.(check (list (triple int int int))) "no buckets" [] (Hist.buckets h)

(* --- trace ------------------------------------------------------------ *)

let ev ?(tag = "t") ?(dur = 0) time =
  Event.make ~time ~engine:Event.Network ~tag ~dur ()

let test_trace_bounded () =
  let tr = Trace.create ~capacity:2 () in
  Trace.emit tr (ev 1);
  Trace.emit tr (ev 2);
  Trace.emit tr (ev 3);
  Alcotest.(check int) "emitted" 3 (Trace.emitted tr);
  Alcotest.(check int) "retained" 2 (Trace.retained tr);
  Alcotest.(check int) "dropped" 1 (Trace.dropped tr);
  Alcotest.(check (list int)) "newest retained" [ 2; 3 ]
    (List.map (fun (e : Event.t) -> e.Event.time) (Trace.events tr))

let test_trace_subscribers_and_hist () =
  let tr = Trace.create () in
  let seen = ref 0 in
  Trace.subscribe tr (fun _ -> incr seen);
  Trace.emit tr (ev ~tag:"a" ~dur:10 1);
  Trace.emit tr (ev ~tag:"a" ~dur:20 2);
  Trace.emit tr (ev ~tag:"b" ~dur:5 3);
  Alcotest.(check int) "subscriber saw every emit" 3 !seen;
  (match Trace.hist tr "a" with
  | None -> Alcotest.fail "histogram for tag a missing"
  | Some h ->
    Alcotest.(check int) "per-tag count" 2 (Hist.count h);
    Alcotest.(check int) "per-tag sum of durations" 30 (Hist.sum h));
  Alcotest.(check int) "two tags" 2 (List.length (Trace.histograms tr))

let test_trace_chrome_json () =
  let tr = Trace.create () in
  Trace.emit tr
    (Event.make ~time:150 ~engine:Event.Server ~tag:"RREQ \"x\"" ~vpn:7 ~src:1 ~dst:2
       ~src_ssmp:0 ~dst_ssmp:1 ~words:256 ~cost:40 ~dur:50 ());
  let json = Trace.chrome_json tr in
  let contains needle =
    let n = String.length needle and l = String.length json in
    let rec go i = i + n <= l && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"");
  Alcotest.(check bool) "complete slice" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "slice starts at time - dur" true (contains "\"ts\":100");
  Alcotest.(check bool) "duration" true (contains "\"dur\":50");
  Alcotest.(check bool) "pid is destination SSMP" true (contains "\"pid\":1");
  Alcotest.(check bool) "quotes escaped" true (contains "RREQ \\\"x\\\"");
  Alcotest.(check bool) "page in args" true (contains "\"vpn\":7")

(* --- machine integration ---------------------------------------------- *)

let small_machine () =
  let cfg =
    Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:600 ~shadow:true
      ~protocol:Mgs.State.Protocol_mgs ()
  in
  Mgs.Machine.create cfg

let run_mp m =
  let data = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 3) in
  let bar = Mgs_sync.Barrier.create m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then Mgs.Api.write ctx data 9.0;
         Mgs_sync.Barrier.wait ctx bar;
         ignore (Mgs.Api.read ctx data)));
  data

let test_machine_trace_and_checker () =
  let m = small_machine () in
  let tr = Mgs.Machine.enable_trace m in
  Alcotest.(check bool) "enable_trace is idempotent" true (tr == Mgs.Machine.enable_trace m);
  let checker = Mgs.Machine.enable_checker m in
  ignore (run_mp m);
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check int) "no invariant violations" 0 (Mgs.Invariant.count checker);
  Alcotest.(check bool) "events recorded" true (Trace.emitted tr > 0);
  Alcotest.(check int) "nothing dropped on a small run" 0 (Trace.dropped tr);
  (* every posted message was delivered, so the per-tag histogram and
     the message counter agree *)
  let open Mgs.State in
  List.iter
    (fun tag ->
      let posted = Am.count m.am tag in
      let emitted = match Trace.hist tr tag with None -> 0 | Some h -> Hist.count h in
      Alcotest.(check int) (tag ^ " delivered = posted") posted emitted)
    [ "WREQ"; "RREQ"; "RDAT"; "BAR_COMBINE"; "BAR_RELEASE" ];
  (* sync + protocol engines contributed structured events *)
  let tags = List.map fst (Trace.histograms tr) in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " present") true (List.mem t tags))
    [ "lc.fault"; "sv.send_data"; "sync.barrier_episode" ]

let test_checker_flags_corruption () =
  let open Mgs.State in
  let violation_count corrupt =
    let m = small_machine () in
    let checker = Mgs.Machine.enable_checker m in
    let addr = Mgs.Machine.alloc m ~words:256 ~home:(Mgs_mem.Allocator.On_proc 0) in
    Mgs.Machine.poke m addr 1.0;
    let vpn = Mgs_mem.Geom.vpn_of_addr (Mgs.Machine.geom m) addr in
    let tag = corrupt m vpn in
    obs_emit m ~engine:Mgs_obs.Event.Server ~tag ~vpn ();
    Mgs.Invariant.count checker
  in
  let n =
    violation_count (fun m vpn ->
        (get_sentry m vpn).s_count <- -1;
        "test.corrupt")
  in
  Alcotest.(check bool) "negative s_count flagged" true (n > 0);
  let n =
    violation_count (fun m vpn ->
        let se = get_sentry m vpn in
        Mgs_util.Bitset.add se.s_read_dir 1;
        Mgs_util.Bitset.add se.s_write_dir 1;
        Hashtbl.replace se.s_frame_procs 1 2;
        "test.corrupt")
  in
  Alcotest.(check bool) "read/write directory overlap flagged" true (n > 0);
  let n =
    violation_count (fun m vpn ->
        ignore (get_sentry m vpn);
        (get_centry m 1 vpn).pstate <- P_busy;
        "test.corrupt")
  in
  Alcotest.(check bool) "BUSY without mapping lock flagged" true (n > 0);
  let n =
    violation_count (fun m vpn ->
        (* master now disagrees with the shadow image of the poke *)
        (get_sentry m vpn).s_master.(0) <- 99.0;
        "sv.epoch_end")
  in
  Alcotest.(check bool) "release-visibility divergence flagged" true (n > 0);
  (* and a healthy machine stays clean under the same emission *)
  let n = violation_count (fun _ _ -> "sv.epoch_end") in
  Alcotest.(check int) "healthy state passes" 0 n

let test_checker_ignores_other_protocols () =
  let cfg =
    Mgs.Machine.config ~nprocs:4 ~cluster:2 ~protocol:Mgs.State.Protocol_ivy ~shadow:false
      ()
  in
  let m = Mgs.Machine.create cfg in
  let checker = Mgs.Machine.enable_checker m in
  let open Mgs.State in
  let addr = Mgs.Machine.alloc m ~words:256 ~home:(Mgs_mem.Allocator.On_proc 0) in
  let vpn = Mgs_mem.Geom.vpn_of_addr (Mgs.Machine.geom m) addr in
  (get_sentry m vpn).s_count <- -1;
  obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"test.corrupt" ~vpn ();
  Alcotest.(check int) "ivy machines are not judged by MGS invariants" 0
    (Mgs.Invariant.count checker)

let test_reset_stats () =
  let m = small_machine () in
  ignore (run_mp m);
  let open Mgs.State in
  Alcotest.(check bool) "messages counted" true (Am.total_posted m.am > 0);
  Alcotest.(check bool) "lan traffic counted" true ((Lan.stats m.lan).Lan.messages > 0);
  Alcotest.(check bool) "fetches counted" true (m.pstats.Mgs.Pstats.write_fetches > 0);
  Mgs.Machine.reset_stats m;
  Alcotest.(check int) "message counters zeroed" 0 (Am.total_posted m.am);
  Alcotest.(check int) "lan counters zeroed" 0 (Lan.stats m.lan).Lan.messages;
  Alcotest.(check int) "protocol counters zeroed" 0 m.pstats.Mgs.Pstats.write_fetches;
  Alcotest.(check int) "sync counters zeroed" 0 m.sync_counters.barrier_episodes

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "push and order" `Quick test_ring_basic;
          Alcotest.test_case "wrap evicts oldest" `Quick test_ring_wrap;
          Alcotest.test_case "invalid capacity" `Quick test_ring_invalid;
        ] );
      ( "hist",
        [
          Alcotest.test_case "power-of-two buckets" `Quick test_hist_buckets;
          Alcotest.test_case "empty histogram" `Quick test_hist_empty;
        ] );
      ( "trace",
        [
          Alcotest.test_case "bounded memory" `Quick test_trace_bounded;
          Alcotest.test_case "subscribers and histograms" `Quick
            test_trace_subscribers_and_hist;
          Alcotest.test_case "chrome trace_event export" `Quick test_trace_chrome_json;
        ] );
      ( "machine",
        [
          Alcotest.test_case "trace + checker on a run" `Quick
            test_machine_trace_and_checker;
          Alcotest.test_case "checker flags corrupted state" `Quick
            test_checker_flags_corruption;
          Alcotest.test_case "checker is MGS-only" `Quick
            test_checker_ignores_other_protocols;
          Alcotest.test_case "reset_stats" `Quick test_reset_stats;
        ] );
    ]
