type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable mn : float;
  mutable mx : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; mn = infinity; mx = neg_infinity }

let add a x =
  a.n <- a.n + 1;
  let delta = x -. a.mean in
  a.mean <- a.mean +. (delta /. float_of_int a.n);
  a.m2 <- a.m2 +. (delta *. (x -. a.mean));
  if x < a.mn then a.mn <- x;
  if x > a.mx then a.mx <- x

let count a = a.n

let sum a = a.mean *. float_of_int a.n

let mean a = if a.n = 0 then 0. else a.mean

let variance a = if a.n < 2 then 0. else a.m2 /. float_of_int a.n

let stddev a = sqrt (variance a)

let min_value a = if a.n = 0 then invalid_arg "Accum.min_value: empty" else a.mn

let max_value a = if a.n = 0 then invalid_arg "Accum.max_value: empty" else a.mx

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n; mean; m2; mn = Float.min a.mn b.mn; mx = Float.max a.mx b.mx }
  end

let pp ppf a =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" a.n (mean a) (stddev a)
    (if a.n = 0 then nan else a.mn)
    (if a.n = 0 then nan else a.mx)
