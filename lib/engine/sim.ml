type time = int

type t = {
  queue : (unit -> unit) Mgs_util.Pqueue.t;
  mutable clock : time;
  mutable seq : int;
  mutable executed : int;
  mutable peak : int;
  mutable clamped : int;
  mutable engine : Shard.t option;
      (* when set, every operation dispatches to the sharded engine and
         the sequential fields above stay frozen *)
  (* sequential per-shard attribution: the sequential engine routes
     every event to the same shard the sharded engine would, so
     per-shard observability cells fill identically in both modes. *)
  mutable sexec : int array; (* events executed, per shard *)
  mutable sxsend : int array; (* cross-shard sends originated, per shard *)
  mutable sclamp : int array; (* clamps attributed, per shard *)
  mutable stamps : bool;
      (* publish a (time, insertion-seq) pseudo-key per event so the
         observability layer can stamp emissions; off by default to keep
         the sequential fast path allocation-free *)
  mutable hook : (shard:int -> now:int -> unit) option;
}

type stats = { s_executed : int; s_peak : int; s_clamped : int }

let create () =
  {
    queue = Mgs_util.Pqueue.create ();
    clock = 0;
    seq = 0;
    executed = 0;
    peak = 0;
    clamped = 0;
    engine = None;
    sexec = Array.make 1 0;
    sxsend = Array.make 1 0;
    sclamp = Array.make 1 0;
    stamps = false;
    hook = None;
  }

(* Declare the shard count for per-shard attribution on a sequential
   simulator (the sharded engine knows its own).  Call before running;
   resizing discards prior per-shard counts. *)
let set_topology sim ~nshards =
  if nshards < 1 then invalid_arg "Sim.set_topology: nshards < 1";
  if Array.length sim.sexec <> nshards then begin
    sim.sexec <- Array.make nshards 0;
    sim.sxsend <- Array.make nshards 0;
    sim.sclamp <- Array.make nshards 0
  end

let make_sharded sim ~nshards ~lookahead =
  (match sim.engine with
  | Some e when Shard.nshards e = nshards && Shard.lookahead e = lookahead -> ()
  | Some _ -> invalid_arg "Sim.make_sharded: engine already installed"
  | None ->
    if not (Mgs_util.Pqueue.is_empty sim.queue) then
      invalid_arg "Sim.make_sharded: events already queued sequentially";
    let e = Shard.create ~nshards ~lookahead in
    Shard.set_on_event e sim.hook;
    sim.engine <- Some e);
  ()

let sharded sim = sim.engine <> None

let nshards sim =
  match sim.engine with
  | None -> Array.length sim.sexec
  | Some e -> Shard.nshards e

let set_jobs sim jobs =
  match sim.engine with
  | None -> if jobs > 1 then invalid_arg "Sim.set_jobs: sequential simulator"
  | Some e -> Shard.set_jobs e jobs

let set_strict sim v = match sim.engine with None -> () | Some e -> Shard.set_strict e v

let enable_stamps sim =
  (* the sharded engine always publishes real genealogy keys; only the
     sequential engine needs the opt-in pseudo-key *)
  match sim.engine with None -> sim.stamps <- true | Some _ -> ()

let set_on_event sim h =
  sim.hook <- h;
  match sim.engine with None -> () | Some e -> Shard.set_on_event e h

let now sim = match sim.engine with None -> sim.clock | Some e -> Shard.now e

let events_executed sim =
  match sim.engine with None -> sim.executed | Some e -> Shard.executed e

let peak_pending sim = match sim.engine with None -> sim.peak | Some e -> Shard.peak e

let stats sim =
  match sim.engine with
  | None -> { s_executed = sim.executed; s_peak = sim.peak; s_clamped = sim.clamped }
  | Some e -> { s_executed = Shard.executed e; s_peak = Shard.peak e; s_clamped = Shard.clamped e }

type shard_stat = Shard.shard_stat = {
  st_id : int;
  st_executed : int;
  st_xsends : int;
  st_clamped : int;
  st_peak : int;
  st_merges : int;
  st_stalls : int;
  st_wall : float;
}

let shard_stats sim =
  match sim.engine with
  | Some e -> Shard.shard_stats e
  | None ->
    Array.init (Array.length sim.sexec) (fun i ->
        {
          st_id = i;
          st_executed = sim.sexec.(i);
          st_xsends = sim.sxsend.(i);
          st_clamped = sim.sclamp.(i);
          st_peak = 0;
          st_merges = 0;
          st_stalls = 0;
          st_wall = 0.;
        })

let windows sim = match sim.engine with None -> 0 | Some e -> Shard.windows e

let barrier_wall sim =
  match sim.engine with None -> 0. | Some e -> Shard.barrier_wall e

let shard_executed sim i =
  match sim.engine with None -> sim.sexec.(i) | Some e -> Shard.shard_executed e i

let shard_xsends sim i =
  match sim.engine with None -> sim.sxsend.(i) | Some e -> Shard.shard_xsends e i

(* Sequential scheduling with per-shard attribution.  [dst] is the shard
   that will execute the event — the same value the sharded engine's
   [at_shard] would route to — carried through the heap as the [own]
   tag. *)
let seq_schedule sim ~dst t f =
  let c = Shard.cur () in
  let fire =
    if t < sim.clock then begin
      sim.clamped <- sim.clamped + 1;
      let attr = if c >= 0 && c < Array.length sim.sclamp then c else dst in
      sim.sclamp.(attr) <- sim.sclamp.(attr) + 1;
      sim.clock
    end
    else t
  in
  if c >= 0 && c <> dst && c < Array.length sim.sxsend then
    sim.sxsend.(c) <- sim.sxsend.(c) + 1;
  sim.seq <- sim.seq + 1;
  Mgs_util.Pqueue.push sim.queue ~prio:fire ~seq:sim.seq ~own:dst f;
  let len = Mgs_util.Pqueue.length sim.queue in
  if len > sim.peak then sim.peak <- len

let at sim t f =
  match sim.engine with
  | None ->
    let c = Shard.cur () in
    let dst = if c >= 0 && c < Array.length sim.sexec then c else 0 in
    seq_schedule sim ~dst t f
  | Some e -> Shard.at e t f

let at_shard sim ~shard t f =
  match sim.engine with
  | None ->
    (* tolerate out-of-range shards (a simulator whose topology was
       never declared): attribution falls back to shard 0 *)
    let dst = if shard >= 0 && shard < Array.length sim.sexec then shard else 0 in
    seq_schedule sim ~dst t f
  | Some e -> Shard.at_shard e ~shard t f

let after sim d f =
  if d < 0 then invalid_arg "Sim.after: negative delay";
  at sim (now sim + d) f

let pending sim =
  match sim.engine with
  | None -> Mgs_util.Pqueue.length sim.queue
  | Some e -> Shard.pending e

let step sim =
  match sim.engine with
  | Some _ -> invalid_arg "Sim.step: sharded simulator (use run)"
  | None -> (
    match Mgs_util.Pqueue.pop_min sim.queue with
    | exception Mgs_util.Pqueue.Empty_queue -> false
    | f ->
      let t = Mgs_util.Pqueue.popped_prio sim.queue in
      let own = Mgs_util.Pqueue.popped_own sim.queue in
      sim.clock <- max sim.clock t;
      sim.executed <- sim.executed + 1;
      sim.sexec.(own) <- sim.sexec.(own) + 1;
      if sim.stamps then
        (* pseudo-key ordered exactly like the sequential pop order:
           fire time, then global insertion sequence (materialized
           lazily so unobserved events allocate nothing) *)
        Shard.set_run_key_seq ~fire:t
          ~sched:(Mgs_util.Pqueue.popped_seq sim.queue);
      Shard.set_cur own;
      (match sim.hook with Some h -> h ~shard:own ~now:t | None -> ());
      (match f () with
      | () -> Shard.set_cur (-1)
      | exception e ->
        Shard.set_cur (-1);
        raise e);
      true)

let run sim ?(limit = max_int) () =
  match sim.engine with
  | Some e -> Shard.run e ~limit ()
  | None ->
    let rec go n =
      if n >= limit then
        failwith
          (Printf.sprintf
             "Sim.run: event limit exhausted (livelock?): limit=%d executed=%d \
              clock=%d pending=%d"
             limit sim.executed sim.clock
             (Mgs_util.Pqueue.length sim.queue))
      else if step sim then go (n + 1)
      else n
    in
    go 0
