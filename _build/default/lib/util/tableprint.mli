(** Plain-text table and bar-series rendering.

    The bench harness prints each reproduced paper table/figure as an
    aligned ASCII table (and figures additionally as horizontal stacked
    bars), so results can be eyeballed against the paper. *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] is an aligned table with a rule under the
    header.  Ragged rows are padded with empty cells. *)

val print : header:string list -> rows:string list list -> unit
(** [print] is [render] followed by output to stdout. *)

val stacked_bars :
  title:string ->
  labels:string list ->
  series_names:string list ->
  values:float array array ->
  ?width:int ->
  unit ->
  string
(** [stacked_bars ~title ~labels ~series_names ~values ()] renders one
    horizontal stacked bar per label.  [values.(i).(j)] is the magnitude
    of series [j] in bar [i]; bars are scaled so the longest fits
    [width] characters.  Each series is drawn with a distinct fill
    character, with a legend line. *)

val fmt_cycles : float -> string
(** Human-readable cycle count, e.g. [12.3M], [4.56K], [321]. *)
