lib/apps/radix.ml: Array Mgs Mgs_harness Mgs_machine Mgs_mem Mgs_sync Mgs_util Printf
