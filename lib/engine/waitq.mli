(** FIFO parking lots for suspended fibers.

    A [Waitq.t] holds resume thunks of fibers blocked on some condition
    (a busy lock, a barrier, a page in REL_IN_PROG).  Waking schedules
    the resumes as fresh simulator events so the waker finishes its own
    event first. *)

type t

val create : unit -> t

val length : t -> int

val is_empty : t -> bool

val park : t -> unit
(** [park q] suspends the calling fiber onto [q] (FIFO order).  Must be
    called from fiber context. *)

val park_thunk : t -> (unit -> unit) -> unit
(** [park_thunk q k] enqueues an arbitrary continuation (used by
    message handlers, which are not fibers, to defer work). *)

val wake_one : Sim.t -> ?delay:Sim.time -> t -> bool
(** [wake_one sim q] schedules the oldest parked thunk after [delay]
    (default 0); [false] if the queue was empty. *)

val wake_all : Sim.t -> ?delay:Sim.time -> t -> int
(** [wake_all sim q] schedules every parked thunk; returns how many. *)

val clear : t -> int
(** Drop every parked thunk without scheduling it; returns how many were
    dropped.  Only safe when the parked fibers are known dead (e.g. a
    phase reset after a partitioned run abandoned them): resuming a
    dropped thunk later would run an abandoned fiber's continuation. *)
