type params = { ncities : int; seed : int; eval_cycles : int; lock : string }

let default = { ncities = 10; seed = 42; eval_cycles = 2000; lock = "token" }

let tiny = { ncities = 6; seed = 7; eval_cycles = 200; lock = "token" }

(* the paper's problem size is already the default (10 cities) *)
let paper = default

let problem_size p = Printf.sprintf "%d-city tour" p.ncities

(* Symmetric random distance matrix with entries in 1..99. *)
let distances p =
  let rng = Mgs_util.Rng.create ~seed:p.seed in
  let n = p.ncities in
  let d = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = 1 + Mgs_util.Rng.int rng 99 in
      d.(i).(j) <- v;
      d.(j).(i) <- v
    done
  done;
  d

(* Sequential branch and bound (depth-first) for verification. *)
let best_cost p =
  let n = p.ncities in
  let d = distances p in
  let best = ref max_int in
  let visited = Array.make n false in
  visited.(0) <- true;
  let rec go last len cost =
    if cost < !best then begin
      if len = n then begin
        let total = cost + d.(last).(0) in
        if total < !best then best := total
      end
      else
        for c = 1 to n - 1 do
          if not visited.(c) then begin
            visited.(c) <- true;
            go c (len + 1) (cost + d.(last).(c));
            visited.(c) <- false
          end
        done
    end
  in
  go 0 1 0;
  !best

let workload p =
  let n = p.ncities in
  let d = distances p in
  let path_words = n + 2 in
  (* path record: [0] = length, [1] = cost, [2..] = cities in order *)
  let capacity = (4 * n * n * n) + 64 in
  let prepare m =
    let dist = Mgs.Machine.alloc m ~words:(n * n) ~home:Mgs_mem.Allocator.Interleaved in
    (* control block: [0] = stack top, [1] = best cost, [2] = expanding *)
    let ctl = Mgs.Machine.alloc m ~words:3 ~home:(Mgs_mem.Allocator.On_proc 0) in
    let pool =
      Mgs.Machine.alloc m ~words:(capacity * path_words) ~home:Mgs_mem.Allocator.Interleaved
    in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Mgs.Machine.poke m (dist + (i * n) + j) (float_of_int d.(i).(j))
      done
    done;
    (* seed the queue with the single-city tour [0] *)
    Mgs.Machine.poke m (ctl + 0) 1.0;
    (* "infinity" bound; must stay exactly representable as a float *)
    Mgs.Machine.poke m (ctl + 1) 1_000_000_000.0;
    Mgs.Machine.poke m (ctl + 2) 0.0;
    Mgs.Machine.poke m (pool + 0) 1.0;
    Mgs.Machine.poke m (pool + 1) 0.0;
    Mgs.Machine.poke m (pool + 2) 0.0;
    let qlock = Mgs_sync.Locks.make m p.lock in
    let bar = Mgs_sync.Barrier.create m in
    let body ctx =
      let open Mgs.Api in
      let rd_dist a b = read_int ctx (dist + (a * n) + b) in
      let cities = Array.make n 0 in
      let running = ref true in
      while !running do
        Mgs_sync.Locks.acquire ctx qlock;
        let top = read_int ctx (ctl + 0) in
        if top > 0 then begin
          (* pop the newest path (depth-first) and mark us expanding *)
          write_int ctx (ctl + 0) (top - 1);
          write_int ctx (ctl + 2) (read_int ctx (ctl + 2) + 1);
          let slot = pool + ((top - 1) * path_words) in
          let len = read_int ctx ~kind:Pointer (slot + 0) in
          let cost = read_int ctx ~kind:Pointer (slot + 1) in
          for i = 0 to len - 1 do
            cities.(i) <- read_int ctx ~kind:Pointer (slot + 2 + i)
          done;
          let bound = read_int ctx (ctl + 1) in
          Mgs_sync.Locks.release ctx qlock;
          (* expand outside the lock *)
          let last = cities.(len - 1) in
          let in_path c =
            let rec go i = i < len && (cities.(i) = c || go (i + 1)) in
            go 0
          in
          let completed = ref max_int in
          for c = 1 to n - 1 do
            if not (in_path c) then begin
              compute ctx p.eval_cycles;
              let ncost = cost + rd_dist last c in
              if len + 1 = n then begin
                let total = ncost + rd_dist c 0 in
                if total < !completed then completed := total
              end
              else if ncost < bound then begin
                (* push the child path (one short critical section per
                   child, as in the paper's centralized work queue) *)
                Mgs_sync.Locks.acquire ctx qlock;
                let t = read_int ctx (ctl + 0) in
                if t >= capacity then failwith "tsp: work queue overflow";
                let s = pool + (t * path_words) in
                write_int ctx ~kind:Pointer (s + 0) (len + 1);
                write_int ctx ~kind:Pointer (s + 1) ncost;
                for i = 0 to len - 1 do
                  write_int ctx ~kind:Pointer (s + 2 + i) cities.(i)
                done;
                write_int ctx ~kind:Pointer (s + 2 + len) c;
                write_int ctx (ctl + 0) (t + 1);
                Mgs_sync.Locks.release ctx qlock
              end
            end
          done;
          (* fold a completed tour into the global bound, leave expanding *)
          Mgs_sync.Locks.acquire ctx qlock;
          if !completed < read_int ctx (ctl + 1) then write_int ctx (ctl + 1) !completed;
          write_int ctx (ctl + 2) (read_int ctx (ctl + 2) - 1);
          Mgs_sync.Locks.release ctx qlock
        end
        else begin
          let expanding = read_int ctx (ctl + 2) in
          Mgs_sync.Locks.release ctx qlock;
          if expanding = 0 then running := false else compute ctx 400
        end
      done;
      Mgs_sync.Barrier.wait ctx bar
    in
    let check m =
      let got = int_of_float (Mgs.Machine.peek m (ctl + 1)) in
      let want = best_cost p in
      if got <> want then failwith (Printf.sprintf "tsp: got optimum %d, want %d" got want)
    in
    (body, check)
  in
  { Mgs_harness.Sweep.name = "TSP"; prepare }
