type home_policy = On_proc of int | Interleaved | Blocked

type t = {
  geom : Geom.t;
  nprocs : int;
  homes : (int, int) Hashtbl.t; (* vpn -> home processor *)
  mutable next_vpn : int;
  mutable rr : int; (* round-robin cursor for Interleaved *)
}

let create geom ~nprocs =
  if nprocs <= 0 then invalid_arg "Allocator.create: nprocs";
  { geom; nprocs; homes = Hashtbl.create 256; next_vpn = 0; rr = 0 }

let geom h = h.geom

let nprocs h = h.nprocs

let home_of_vpn h vpn = Hashtbl.find h.homes vpn

let pages_allocated h = h.next_vpn

let words_allocated h = h.next_vpn * h.geom.Geom.page_words

let alloc h ~words ~home =
  if words <= 0 then invalid_arg "Allocator.alloc: words";
  let pw = h.geom.Geom.page_words in
  let npages = (words + pw - 1) / pw in
  let base_vpn = h.next_vpn in
  let assign i =
    let owner =
      match home with
      | On_proc p ->
        if p < 0 || p >= h.nprocs then invalid_arg "Allocator.alloc: processor out of range";
        p
      | Interleaved ->
        let p = h.rr in
        h.rr <- (h.rr + 1) mod h.nprocs;
        p
      | Blocked ->
        (* Chunk of consecutive pages per processor; remainders spread
           over the leading processors so every page has a home. *)
        let per = max 1 ((npages + h.nprocs - 1) / h.nprocs) in
        min (h.nprocs - 1) (i / per)
    in
    Hashtbl.replace h.homes (base_vpn + i) owner
  in
  for i = 0 to npages - 1 do
    assign i
  done;
  h.next_vpn <- base_vpn + npages;
  base_vpn * pw
