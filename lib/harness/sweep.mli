(** Cluster-size sweeps and the paper's DSSMP performance framework
    (section 2.4): run a workload at a fixed processor count P while the
    cluster size C ranges over powers of two, and derive the breakup
    penalty, multigrain potential, and multigrain curvature. *)

type workload = {
  name : string;
  prepare : Mgs.Machine.t -> (Mgs.Api.ctx -> unit) * (Mgs.Machine.t -> unit);
      (** Allocate and initialize shared data on a fresh machine; return
          the SPMD body and a post-run verifier (which may raise). *)
}

type point = {
  cluster : int;
  report : Mgs.Report.t;
  lock_hit_ratio : float;
}

val clusters_of : int -> int list
(** Powers of two from 1 to P. *)

val run_point :
  ?page_words:int ->
  ?costs:Mgs_machine.Costs.t ->
  ?lan_latency:int ->
  ?protocol:string ->
  ?faults:Mgs_net.Fault.spec ->
  ?fault_seed:int ->
  ?verify:bool ->
  ?check:bool ->
  ?par:int ->
  ?adapt:bool ->
  nprocs:int ->
  cluster:int ->
  workload ->
  point
(** One configuration.  Default LAN latency 1000 cycles (section 5.2.1),
    1 KB pages; [protocol] (default ["mgs"]) selects a coherence engine
    from the {!Mgs.Protocol} registry by name; [faults] installs a
    deterministic fault plan (seeded by [fault_seed], default 42) on the
    LAN; [verify] (default true) runs the workload's checker and
    {!Mgs.Machine.assert_quiescent} — skipped when the run ended in a
    partition, which the caller observes via [report.outcome]; [check]
    (default true) runs the online protocol invariant checker
    ({!Mgs.Invariant}) and fails on any violation; [par] (default 0 =
    sequential engine) selects the sharded event engine on that many
    domains — byte-identical results.  Trace, span, and metrics
    subscribers are per-shard and do not limit parallelism; only the
    online invariant checker's global state still forces one domain,
    so pass [~check:false] to actually run parallel.  [adapt] (default
    false) turns on the adaptive per-page coherence layer
    ({!Mgs_cache.Adapt}): online sharing-pattern classification, regime
    switching, and home migration.
    @raise Failure on a workload-verifier or invariant failure.
    @raise Invalid_argument on an unknown protocol name, or on [adapt]
    with a protocol that supports no adaptive regime (ivy). *)

val sweep :
  ?page_words:int ->
  ?costs:Mgs_machine.Costs.t ->
  ?lan_latency:int ->
  ?protocol:string ->
  ?verify:bool ->
  ?check:bool ->
  ?par:int ->
  ?adapt:bool ->
  ?clusters:int list ->
  ?jobs:int ->
  nprocs:int ->
  workload ->
  point list
(** All cluster sizes (ascending).  [jobs] (default 1) runs up to that
    many points concurrently on separate domains ({!Mgs_util.Dpool});
    [par] additionally shards the event engine {e inside} each point.
    Results are identical to the sequential sweep regardless of either
    knob. *)

(** {1 Chaos sweeps}

    Fault-intensity sweeps at a fixed configuration: the fault spec's
    probabilities are scaled through a list of intensities and the
    workload re-run under each resulting plan. *)

type chaos_point = {
  intensity : float;  (** the multiplier applied to [spec]'s rates *)
  spec : Mgs_net.Fault.spec;  (** the scaled spec this point ran under *)
  point : point;
}

val chaos :
  ?intensities:float list ->
  ?spec:Mgs_net.Fault.spec ->
  ?protocol:string ->
  ?page_words:int ->
  ?costs:Mgs_machine.Costs.t ->
  ?lan_latency:int ->
  ?check:bool ->
  seed:int ->
  nprocs:int ->
  cluster:int ->
  workload ->
  chaos_point list
(** Run the workload once per intensity (default [0, 0.25, 0.5, 1.0])
    under [spec] (default {!Mgs_net.Fault.default_chaos}) scaled by that
    intensity; intensity 0 runs the plain faults-free machine.  Each
    point is executed {e twice} and the simulated results compared — the
    fixed-seed determinism contract — and completed runs are verified
    like ordinary sweep points (partitions skip verification and are
    reported in the point's [report.outcome]).  [check] defaults to
    false: a partitioned run legitimately abandons protocol state
    mid-flight, which the invariant checker would flag.
    @raise Failure if a point's two executions disagree, or on a
    workload-verifier failure in a completed run. *)

val pp_chaos_table : Format.formatter -> chaos_point list -> unit
(** One row per intensity: runtime, events, transport counters,
    outcome. *)

(** Framework metrics over a sweep (which must include C = 1 .. P). *)

val runtime_of : point list -> int -> int
(** Runtime at a given cluster size.
    @raise Invalid_argument naming the missing cluster size if the sweep
    holds no point for it. *)

val breakup_penalty : point list -> float
(** [(T(P/2) - T(P)) / T(P)] — e.g. 3.22 for Water's 322%. *)

val multigrain_potential : point list -> float
(** [(T(1) - T(P/2)) / T(P/2)] — how much faster the application runs
    when each node is a (P/2)-way multiprocessor rather than a
    uniprocessor ("applications execute up to 85% faster ..."), e.g.
    0.67 for Water, 0.85 for Barnes-Hut. *)

val multigrain_curvature : point list -> float
(** Mean signed deviation of the runtime curve from the chord joining
    (log C = 0, T(1)) and (log C = log P/2, T(P/2)), normalized by T(1):
    positive means the curve lies below the chord (convex — most of the
    potential realized at small clusters), negative concave. *)

val curvature_class : point list -> string
(** ["convex"], ["concave"], or ["flat"]. *)

(** Pure variants over [(cluster, runtime)] curves, used by the tests: *)

val runtime_of_rt : (int * int) list -> int -> int

val breakup_penalty_rt : (int * int) list -> float

val multigrain_potential_rt : (int * int) list -> float

val multigrain_curvature_rt : (int * int) list -> float

val curvature_class_rt : (int * int) list -> string
