lib/am/am.mli: Mgs_engine Mgs_machine Mgs_net Mgs_obs
