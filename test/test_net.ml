(* Tests for the LAN model and the active-message layer: fixed latency,
   sender occupancy, per-channel FIFO delivery, intra-SSMP fast path,
   handler occupancy on the destination processor — and the reliable
   transport that keeps delivery exactly-once and in order when a fault
   plan makes the wire lossy. *)

module Sim = Mgs_engine.Sim
module Lan = Mgs_net.Lan
module Fault = Mgs_net.Fault
module Envelope = Mgs_net.Envelope
module Am = Mgs_am.Am
module Costs = Mgs_machine.Costs
module Topo = Mgs_machine.Topology
module Cpu = Mgs_machine.Cpu

let costs = Costs.default

let env ~src ~dst ~words = Envelope.make ~src_ssmp:src ~dst_ssmp:dst ~words ()

let test_lan_latency () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let arrived = ref (-1) in
  Lan.send lan (env ~src:0 ~dst:1 ~words:0) ~at:0 (fun t -> arrived := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "fixed latency" costs.Costs.lan.latency !arrived

let test_lan_dma () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let arrived = ref (-1) in
  Lan.send lan (env ~src:0 ~dst:1 ~words:256) ~at:0 (fun t -> arrived := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "latency + dma"
    (costs.Costs.lan.latency + (256 * costs.Costs.proto.dma_per_word))
    !arrived

let test_lan_sender_occupancy () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let t1 = ref 0 and t2 = ref 0 in
  Lan.send lan (env ~src:0 ~dst:1 ~words:0) ~at:0 (fun t -> t1 := t);
  Lan.send lan (env ~src:0 ~dst:2 ~words:0) ~at:0 (fun t -> t2 := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "second departs after occupancy" costs.Costs.lan.send_occupancy
    (!t2 - !t1)

let test_lan_fifo_no_overtake () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let order = ref [] in
  (* a bulk message followed by a short one on the same channel *)
  Lan.send lan (env ~src:0 ~dst:1 ~words:256) ~at:0 (fun _ -> order := `Bulk :: !order);
  Lan.send lan (env ~src:0 ~dst:1 ~words:0) ~at:1 (fun _ -> order := `Short :: !order);
  ignore (Sim.run sim ());
  Alcotest.(check bool) "bulk delivered first" true (List.rev !order = [ `Bulk; `Short ])

let test_lan_intra_fast_path () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let arrived = ref (-1) in
  Lan.send lan (env ~src:2 ~dst:2 ~words:0) ~at:0 (fun t -> arrived := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "intra cost only" costs.Costs.proto.intra_msg !arrived;
  Alcotest.(check int) "not counted as LAN traffic" 0 (Lan.stats lan).Lan.messages

let test_lan_stats () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  Lan.send lan (env ~src:0 ~dst:1 ~words:10) ~at:0 (fun _ -> ());
  Lan.send lan (env ~src:1 ~dst:0 ~words:20) ~at:0 (fun _ -> ());
  ignore (Sim.run sim ());
  let s = Lan.stats lan in
  Alcotest.(check int) "messages" 2 s.Lan.messages;
  Alcotest.(check int) "words" 30 s.Lan.data_words;
  Lan.reset_stats lan;
  Alcotest.(check int) "reset" 0 (Lan.stats lan).Lan.messages

let test_lan_full_reset () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  (* two warmup messages leave the sender occupied until 2x occupancy
     and push the channel's FIFO watermark past one latency *)
  Lan.send lan (env ~src:0 ~dst:1 ~words:0) ~at:0 (fun _ -> ());
  Lan.send lan (env ~src:0 ~dst:1 ~words:0) ~at:0 (fun _ -> ());
  Lan.reset lan;
  let arrived = ref (-1) in
  Lan.send lan (env ~src:0 ~dst:1 ~words:0) ~at:0 (fun t -> arrived := t);
  ignore (Sim.run sim ());
  (* with reset_stats alone the residual occupancy and watermark would
     push this to latency + occupancy *)
  Alcotest.(check int) "departs as if idle" costs.Costs.lan.latency !arrived;
  Alcotest.(check int) "counters zeroed" 1 (Lan.stats lan).Lan.messages

(* --- fault specs ------------------------------------------------------ *)

let test_fault_spec_parse () =
  let s = Fault.of_string "drop=0.1,dup=0.05,delay=0.2:2000,reorder=0.1,slow=1:2.0,rto=8000,retries=6" in
  Alcotest.(check (float 1e-9)) "drop" 0.1 s.Fault.drop;
  Alcotest.(check (float 1e-9)) "dup" 0.05 s.Fault.dup;
  Alcotest.(check (float 1e-9)) "delay_p" 0.2 s.Fault.delay_p;
  Alcotest.(check int) "delay_max" 2000 s.Fault.delay_max;
  Alcotest.(check (float 1e-9)) "reorder" 0.1 s.Fault.reorder;
  Alcotest.(check bool) "slow" true (s.Fault.slow = [ (1, 2.0) ]);
  Alcotest.(check int) "rto" 8000 s.Fault.rto;
  Alcotest.(check int) "retries" 6 s.Fault.max_retries;
  (* to_string round-trips *)
  Alcotest.(check bool) "roundtrip" true (Fault.of_string (Fault.to_string s) = s);
  Alcotest.(check bool) "none" true (Fault.is_zero (Fault.of_string "none"));
  (match Fault.of_string "frob=1" with
  | _ -> Alcotest.fail "unknown key accepted"
  | exception Invalid_argument _ -> ());
  match Fault.of_string "drop=2.0" with
  | _ -> Alcotest.fail "out-of-range probability accepted"
  | exception Invalid_argument _ -> ()

let test_fault_scale () =
  let s = Fault.scale Fault.default_chaos ~intensity:0.5 in
  Alcotest.(check (float 1e-9)) "scaled drop" 0.025 s.Fault.drop;
  Alcotest.(check int) "delay bound kept" Fault.default_chaos.Fault.delay_max s.Fault.delay_max;
  Alcotest.(check bool) "zero intensity is zero" true
    (Fault.is_zero (Fault.scale Fault.default_chaos ~intensity:0.0))

(* A plan whose rates are all zero must not change timing: the reliable
   transport adds sequencing and acks, but the payload's delivery time
   is exactly the perfect-wire one. *)
let test_zero_rate_plan_timing () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  Lan.set_fault_plan lan (Some (Fault.make Fault.none ~seed:7 ~nssmps:4));
  let arrived = ref (-1) in
  Lan.send lan (env ~src:0 ~dst:1 ~words:256) ~at:0 (fun t -> arrived := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "same delivery time as perfect wire"
    (costs.Costs.lan.latency + (256 * costs.Costs.proto.dma_per_word))
    !arrived;
  Alcotest.(check int) "no retransmits" 0 (Lan.stats lan).Lan.retransmits;
  Alcotest.(check int) "one ack" 1 (Lan.stats lan).Lan.acks;
  Alcotest.(check int) "nothing unacked at quiescence" 0 (Lan.unacked lan)

let test_slowdown_scales_latency () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let spec = { Fault.none with Fault.slow = [ (1, 2.0) ] } in
  Lan.set_fault_plan lan (Some (Fault.make spec ~seed:7 ~nssmps:4));
  let to_slow = ref (-1) and to_healthy = ref (-1) in
  Lan.send lan (env ~src:0 ~dst:1 ~words:0) ~at:0 (fun t -> to_slow := t);
  ignore (Sim.run sim ());
  (* second send after the first completes, so occupancy does not couple them *)
  Lan.send lan (env ~src:2 ~dst:3 ~words:0) ~at:!to_slow (fun t -> to_healthy := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "degraded SSMP pays doubled latency"
    (2 * costs.Costs.lan.latency) !to_slow;
  Alcotest.(check int) "healthy channel unaffected" costs.Costs.lan.latency
    (!to_healthy - !to_slow)

(* drop=1.0: no transmission or ack ever gets through, so the sender
   retries up to the cap and then declares the channel partitioned. *)
let test_partition_on_retry_exhaustion () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let spec = { Fault.none with Fault.drop = 1.0; rto = 5000; max_retries = 2 } in
  Lan.set_fault_plan lan (Some (Fault.make spec ~seed:7 ~nssmps:4));
  Lan.send lan (env ~src:0 ~dst:1 ~words:0) ~at:0 (fun _ ->
      Alcotest.fail "dropped message must not deliver");
  (match Sim.run sim () with
  | _ -> Alcotest.fail "expected Net_partition"
  | exception Lan.Net_partition p ->
    Alcotest.(check int) "src" 0 p.Lan.part_src_ssmp;
    Alcotest.(check int) "dst" 1 p.Lan.part_dst_ssmp;
    Alcotest.(check int) "retries exhausted" 2 p.Lan.part_retries);
  Alcotest.(check int) "two retransmissions" 2 (Lan.stats lan).Lan.retransmits;
  Alcotest.(check int) "three timer expiries" 3 (Lan.stats lan).Lan.timeouts

let test_lossy_delivers_exactly_once () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let spec =
    { Fault.none with Fault.drop = 0.4; dup = 0.3; delay_p = 0.3; delay_max = 1500;
      reorder = 0.2; max_retries = 30 }
  in
  Lan.set_fault_plan lan (Some (Fault.make spec ~seed:11 ~nssmps:4));
  let n = 60 in
  let delivered = Array.make n 0 in
  let order = ref [] in
  for i = 0 to n - 1 do
    Lan.send lan (env ~src:0 ~dst:1 ~words:(8 * (i mod 5))) ~at:0 (fun _ ->
        delivered.(i) <- delivered.(i) + 1;
        order := i :: !order)
  done;
  ignore (Sim.run sim ());
  Array.iteri
    (fun i c -> if c <> 1 then Alcotest.failf "message %d delivered %d times" i c)
    delivered;
  Alcotest.(check (list int)) "in posting order" (List.init n Fun.id) (List.rev !order);
  Alcotest.(check int) "nothing unacked at quiescence" 0 (Lan.unacked lan);
  Alcotest.(check bool) "faults actually fired" true
    ((Lan.stats lan).Lan.retransmits > 0 && (Lan.stats lan).Lan.dup_drops > 0)

let test_reset_clears_transport_state () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let spec = { Fault.none with Fault.drop = 0.4; max_retries = 30 } in
  Lan.set_fault_plan lan (Some (Fault.make spec ~seed:3 ~nssmps:4));
  for _ = 1 to 20 do
    Lan.send lan (env ~src:0 ~dst:1 ~words:0) ~at:0 (fun _ -> ())
  done;
  ignore (Sim.run sim ());
  Alcotest.(check int) "quiescent before reset" 0 (Lan.unacked lan);
  Lan.reset lan;
  let s = Lan.stats lan in
  Alcotest.(check int) "retransmits zeroed" 0 s.Lan.retransmits;
  Alcotest.(check int) "acks zeroed" 0 s.Lan.acks;
  (* after the reset the fault schedule replays from the seed: the same
     traffic sees the same faults as a fresh machine (phase 2 starts at
     the current simulated time, so compare base-relative arrivals) *)
  let base = Sim.now sim in
  let arrivals = ref [] in
  for _ = 1 to 20 do
    Lan.send lan (env ~src:0 ~dst:1 ~words:0) ~at:base (fun t ->
        arrivals := (t - base) :: !arrivals)
  done;
  ignore (Sim.run sim ());
  let sim2 = Sim.create () in
  let lan2 = Lan.create sim2 costs ~nssmps:4 in
  Lan.set_fault_plan lan2 (Some (Fault.make spec ~seed:3 ~nssmps:4));
  let arrivals2 = ref [] in
  for _ = 1 to 20 do
    Lan.send lan2 (env ~src:0 ~dst:1 ~words:0) ~at:0 (fun t -> arrivals2 := t :: !arrivals2)
  done;
  ignore (Sim.run sim2 ());
  Alcotest.(check (list int)) "post-reset run replays like a fresh machine" !arrivals2
    !arrivals

(* --- active messages -------------------------------------------------- *)

let make_am () =
  let sim = Sim.create () in
  let topo = Topo.create ~nprocs:8 ~cluster:4 in
  let cpus = Array.init 8 Cpu.create in
  let lan = Lan.create sim costs ~nssmps:2 in
  let am = Am.create sim costs topo ~lan ~cpus in
  (sim, am, cpus)

let test_am_handler_occupancy () =
  let sim, am, cpus = make_am () in
  let fin = ref (-1) in
  Am.post am ~tag:"t" ~src:0 ~dst:5 ~words:0 ~cost:100 (fun t -> fin := t);
  ignore (Sim.run sim ());
  let expected = costs.Costs.lan.latency + costs.Costs.proto.handler_dispatch + 100 in
  Alcotest.(check int) "completion time" expected !fin;
  Alcotest.(check int) "destination occupied" expected cpus.(5).Cpu.busy_until

let test_am_handlers_serialize () =
  let sim, am, cpus = make_am () in
  let fins = ref [] in
  Am.post am ~tag:"a" ~src:0 ~dst:5 ~words:0 ~cost:100 (fun t -> fins := t :: !fins);
  Am.post am ~tag:"b" ~src:1 ~dst:5 ~words:0 ~cost:100 (fun t -> fins := t :: !fins);
  ignore (Sim.run sim ());
  (match List.rev !fins with
  | [ f1; f2 ] ->
    Alcotest.(check int) "second handler queued behind first"
      (costs.Costs.proto.handler_dispatch + 100)
      (f2 - f1)
  | _ -> Alcotest.fail "expected two completions");
  ignore cpus

let test_am_intra_vs_inter () =
  let sim, am, _ = make_am () in
  let t_intra = ref 0 and t_inter = ref 0 in
  Am.post am ~tag:"i" ~src:0 ~dst:1 ~words:0 ~cost:0 (fun t -> t_intra := t);
  Am.post am ~tag:"x" ~src:0 ~dst:4 ~words:0 ~cost:0 (fun t -> t_inter := t);
  ignore (Sim.run sim ());
  Alcotest.(check bool) "intra much faster" true (!t_intra + 500 < !t_inter)

let test_am_counters () =
  let sim, am, _ = make_am () in
  Am.post am ~tag:"RREQ" ~src:0 ~dst:4 ~words:0 ~cost:0 (fun _ -> ());
  Am.post am ~tag:"RREQ" ~src:1 ~dst:4 ~words:0 ~cost:0 (fun _ -> ());
  Am.post am ~tag:"RACK" ~src:4 ~dst:0 ~words:0 ~cost:0 (fun _ -> ());
  ignore (Sim.run sim ());
  Alcotest.(check int) "tag count" 2 (Am.count am "RREQ");
  Alcotest.(check int) "other tag" 1 (Am.count am "RACK");
  Alcotest.(check int) "absent tag" 0 (Am.count am "INV");
  Alcotest.(check int) "total" 3 (Am.total_posted am)

let test_am_recorder_envelope () =
  let sim, am, _ = make_am () in
  let seen = ref [] in
  Am.set_recorder am
    (Some (fun t (e : Envelope.t) -> seen := (t, e.tag, e.src, e.dst, e.words) :: !seen));
  Am.post am ~tag:"RREQ" ~src:1 ~dst:5 ~words:8 ~cost:0 (fun _ -> ());
  ignore (Sim.run sim ());
  match !seen with
  | [ (_, tag, src, dst, words) ] ->
    Alcotest.(check string) "tag" "RREQ" tag;
    Alcotest.(check int) "src" 1 src;
    Alcotest.(check int) "dst" 5 dst;
    Alcotest.(check int) "words" 8 words
  | l -> Alcotest.failf "expected one recorded delivery, got %d" (List.length l)

let test_am_run_on () =
  let sim, am, cpus = make_am () in
  let fin = ref (-1) in
  Am.run_on am ~proc:3 ~at:50 ~cost:25 (fun t -> fin := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "occupied from at" 75 !fin;
  Alcotest.(check int) "busy_until" 75 cpus.(3).Cpu.busy_until

(* Property: per-channel arrival times never regress, whatever the mix
   of bulk and short messages. *)
let prop_lan_fifo =
  QCheck2.Test.make ~name:"per-channel arrivals are monotone" ~count:200
    QCheck2.Gen.(list (pair (int_bound 3) (int_bound 300)))
    (fun msgs ->
      let sim = Sim.create () in
      let lan = Lan.create sim costs ~nssmps:4 in
      let last = Hashtbl.create 8 in
      let ok = ref true in
      List.iter
        (fun (dst, words) ->
          Lan.send lan (env ~src:0 ~dst ~words) ~at:0 (fun t ->
              let prev = Option.value ~default:(-1) (Hashtbl.find_opt last dst) in
              if t < prev then ok := false;
              Hashtbl.replace last dst t))
        msgs;
      ignore (Sim.run sim ());
      !ok)

(* Random fault schedules and traffic mixes on a 4-SSMP wire.  Whatever
   drops, duplicates, delays, and reorders the plan injects, every
   message must reach its handler exactly once, per-channel delivery
   must follow posting order, and quiescence must leave nothing
   unacked. *)
let gen_chaos =
  QCheck2.Gen.(
    let* drop = float_bound_inclusive 0.5 in
    let* dup = float_bound_inclusive 0.5 in
    let* delay_p = float_bound_inclusive 0.5 in
    let* delay_max = int_bound 3000 in
    let* reorder = float_bound_inclusive 0.3 in
    let* seed = int_bound 10_000 in
    let* msgs = list_size (int_bound 80) (pair (pair (int_bound 3) (int_bound 3)) (int_bound 300)) in
    return (drop, dup, delay_p, delay_max, reorder, seed, msgs))

let run_chaos (drop, dup, delay_p, delay_max, reorder, seed, msgs) =
  let spec =
    { Fault.none with Fault.drop; dup; delay_p; delay_max; reorder; max_retries = 40 }
  in
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  Lan.set_fault_plan lan (Some (Fault.make spec ~seed ~nssmps:4));
  let deliveries = Hashtbl.create 64 in
  let chan_order = Hashtbl.create 16 in
  List.iteri
    (fun i ((src, dst), words) ->
      Lan.send lan (env ~src ~dst ~words) ~at:0 (fun t ->
          Hashtbl.replace deliveries i (1 + Option.value ~default:0 (Hashtbl.find_opt deliveries i));
          let key = (src, dst) in
          Hashtbl.replace chan_order key
            ((i, t) :: Option.value ~default:[] (Hashtbl.find_opt chan_order key))))
    msgs;
  ignore (Sim.run sim ());
  (lan, deliveries, chan_order, List.length msgs)

let prop_exactly_once =
  QCheck2.Test.make ~name:"lossy wire delivers exactly once, in channel order" ~count:60
    gen_chaos (fun input ->
      let lan, deliveries, chan_order, n = run_chaos input in
      let ok = ref (Lan.unacked lan = 0) in
      for i = 0 to n - 1 do
        if Option.value ~default:0 (Hashtbl.find_opt deliveries i) <> 1 then ok := false
      done;
      Hashtbl.iter
        (fun _ order ->
          (* recorded newest-first: indices must strictly decrease *)
          let rec mono = function
            | (i1, _) :: ((i2, _) :: _ as rest) -> i1 > i2 && mono rest
            | _ -> true
          in
          if not (mono order) then ok := false)
        chan_order;
      !ok)

let prop_chaos_deterministic =
  QCheck2.Test.make ~name:"same seed, same chaos" ~count:30 gen_chaos (fun input ->
      let lan1, _, order1, _ = run_chaos input in
      let lan2, _, order2, _ = run_chaos input in
      let s1 = Lan.stats lan1 and s2 = Lan.stats lan2 in
      let sorted tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
      s1.Lan.retransmits = s2.Lan.retransmits
      && s1.Lan.dup_drops = s2.Lan.dup_drops
      && s1.Lan.timeouts = s2.Lan.timeouts
      && s1.Lan.acks = s2.Lan.acks
      && sorted order1 = sorted order2)

(* Regression: exponential retransmit backoff must clamp instead of
   doubling forever.  Unbounded doubling overflows int after ~60
   unacknowledged retries, turning the RTO negative and collapsing the
   backoff into a zero-delay retransmission storm. *)
let test_rto_backoff_clamped () =
  let rto = ref 2000 in
  for step = 1 to 100 do
    let next = Lan.next_rto !rto in
    if next <= 0 then
      Alcotest.failf "rto went non-positive (%d) after %d doublings" next step;
    if next < !rto then
      Alcotest.failf "rto not monotone: %d -> %d at step %d" !rto next step;
    if next > Lan.rto_cap then
      Alcotest.failf "rto exceeds cap: %d > %d at step %d" next Lan.rto_cap step;
    rto := next
  done;
  Alcotest.(check int) "converges to the cap" Lan.rto_cap !rto;
  Alcotest.(check int) "cap is a fixed point" Lan.rto_cap (Lan.next_rto Lan.rto_cap);
  (* near-cap values jump straight to the cap rather than overflowing *)
  Alcotest.(check int) "no overflow past the cap" Lan.rto_cap
    (Lan.next_rto (Lan.rto_cap - 1))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lan_fifo; prop_exactly_once; prop_chaos_deterministic ]

let () =
  Alcotest.run "net"
    [
      ( "lan",
        [
          Alcotest.test_case "fixed latency" `Quick test_lan_latency;
          Alcotest.test_case "dma adds latency" `Quick test_lan_dma;
          Alcotest.test_case "sender occupancy" `Quick test_lan_sender_occupancy;
          Alcotest.test_case "fifo per channel" `Quick test_lan_fifo_no_overtake;
          Alcotest.test_case "intra fast path" `Quick test_lan_intra_fast_path;
          Alcotest.test_case "stats" `Quick test_lan_stats;
          Alcotest.test_case "full reset" `Quick test_lan_full_reset;
        ] );
      ( "faults",
        [
          Alcotest.test_case "spec parse/print" `Quick test_fault_spec_parse;
          Alcotest.test_case "spec scaling" `Quick test_fault_scale;
          Alcotest.test_case "zero-rate plan timing" `Quick test_zero_rate_plan_timing;
          Alcotest.test_case "degraded-SSMP slowdown" `Quick test_slowdown_scales_latency;
          Alcotest.test_case "partition on retry exhaustion" `Quick
            test_partition_on_retry_exhaustion;
          Alcotest.test_case "lossy exactly-once" `Quick test_lossy_delivers_exactly_once;
          Alcotest.test_case "reset clears transport state" `Quick
            test_reset_clears_transport_state;
          Alcotest.test_case "retransmit backoff clamped" `Quick
            test_rto_backoff_clamped;
        ] );
      ( "am",
        [
          Alcotest.test_case "handler occupancy" `Quick test_am_handler_occupancy;
          Alcotest.test_case "handlers serialize" `Quick test_am_handlers_serialize;
          Alcotest.test_case "intra vs inter" `Quick test_am_intra_vs_inter;
          Alcotest.test_case "per-tag counters" `Quick test_am_counters;
          Alcotest.test_case "recorder sees the envelope" `Quick test_am_recorder_envelope;
          Alcotest.test_case "run_on" `Quick test_am_run_on;
        ] );
      ("properties", qsuite);
    ]
