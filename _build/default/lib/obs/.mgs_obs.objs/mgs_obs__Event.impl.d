lib/obs/event.ml: Format
