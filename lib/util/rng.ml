type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = bits64 g in
  { state = mix s }

(* Keyed split: the child depends only on the parent's current state and
   [key], and the parent does not advance — so a family of streams (one
   per network channel, say) is determined by the seed alone, however
   many and in whatever order the children are created. *)
let split_key g ~key =
  let s = Int64.add g.state (Int64.mul golden_gamma (Int64.of_int ((2 * key) + 1))) in
  { state = mix (mix s) }

let int g n =
  if n <= 0 then invalid_arg "Rng.int";
  (* Mask to 62 bits so the value stays nonnegative in OCaml's 63-bit
     native ints. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  r mod n

let float g x =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  (* 53 random bits scaled to [0,1). *)
  r /. 9007199254740992.0 *. x

let bool g = Int64.logand (bits64 g) 1L = 1L

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
