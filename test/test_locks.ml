(* Tests for the pluggable lock registry: every registered algorithm
   must provide mutual exclusion and eventual acquisition (under clean
   and faulty networks), the queue locks must grant in FIFO order, the
   condition variables must not lose wakeups, phase resets must restore
   every per-lock counter and queue, and a partitioned acquire must not
   poison the next phase.  The microbenchmark family must be
   byte-identical under -j N. *)

module Locks = Mgs_sync.Locks
module Condvar = Mgs_sync.Condvar
module Micro = Mgs_harness.Micro
module Figures = Mgs_harness.Figures

let make ?(nprocs = 8) ?(cluster = 2) ?(lan = 500) () =
  let cfg = Mgs.Machine.config ~nprocs ~cluster ~lan_latency:lan () in
  Mgs.Machine.create cfg

(* ------------------------------------------------------------------ *)
(* Mutual exclusion + eventual acquisition, as one checked run.        *)
(* ------------------------------------------------------------------ *)

(* Fibers only interleave at suspension points, so a host-side
   occupancy flag around the critical section is an exact mutual
   exclusion oracle: the read/write/compute calls inside suspend, and a
   second holder would be observed.  Completion of [Machine.run] itself
   is the eventual-acquisition check — a lost wakeup leaves a fiber
   parked and [run] fails on incomplete fibers. *)
let run_mutex ?faults ?(seed = 42) ?(iters = 6) ?(nprocs = 8) ?(cluster = 2) name =
  let m = make ~nprocs ~cluster () in
  (match faults with
  | Some spec -> Mgs.Machine.set_faults m ~seed spec
  | None -> ());
  let cell = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 0) in
  let lock = Locks.make m name in
  let inside = ref 0 in
  let violations = ref 0 in
  let rng = Mgs_util.Rng.create ~seed in
  let thinks = Array.init nprocs (fun _ -> 200 + Mgs_util.Rng.int rng 3000) in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         Mgs.Api.compute ctx thinks.(p);
         for _ = 1 to iters do
           Locks.acquire ctx lock;
           incr inside;
           if !inside <> 1 then incr violations;
           Mgs.Api.write ctx cell (Mgs.Api.read ctx cell +. 1.0);
           Mgs.Api.compute ctx (100 + (thinks.(p) mod 500));
           decr inside;
           Locks.release ctx lock;
           Mgs.Api.compute ctx thinks.(p)
         done));
  Mgs.Machine.assert_quiescent m;
  if !violations > 0 then
    QCheck.Test.fail_reportf "%s: %d mutual-exclusion violations" name !violations;
  let got = int_of_float (Mgs.Machine.peek m cell) in
  if got <> nprocs * iters then
    QCheck.Test.fail_reportf "%s: lost updates: counter %d, want %d" name got
      (nprocs * iters);
  if Locks.acquires lock <> nprocs * iters then
    QCheck.Test.fail_reportf "%s: %d acquires recorded, want %d" name
      (Locks.acquires lock) (nprocs * iters);
  true

let chaos = "drop=0.05,dup=0.05,delay=0.1:2000,reorder=0.05,retries=25"

let prop_mutex =
  QCheck.Test.make ~count:6 ~name:"every lock: mutual exclusion, random think times"
    QCheck.(pair small_nat (oneofl (Locks.names ())))
    (fun (seed, name) -> run_mutex ~seed ~nprocs:8 ~cluster:4 name)

let prop_mutex_faulty =
  QCheck.Test.make ~count:6 ~name:"every lock: mutual exclusion under a lossy LAN"
    QCheck.(pair small_nat (oneofl (Locks.names ())))
    (fun (seed, name) ->
      run_mutex ~faults:(Mgs_net.Fault.of_string chaos) ~seed ~nprocs:8 ~cluster:4 name)

(* ------------------------------------------------------------------ *)
(* FIFO grant order for the queue locks.                               *)
(* ------------------------------------------------------------------ *)

(* Proc 0 takes the lock immediately and holds it while procs 1..P-1
   arrive well separated (100k cycles apart, dwarfing every message
   latency, retransmission timeout, and backoff in the system), so the
   queue locks must grant in exact arrival order.  The token lock
   batches grants per SSMP and tas is a backoff race, so only
   mcs/clh/ticket promise this. *)
let run_fifo ?faults ?(seed = 42) name =
  let nprocs = 8 in
  let m = make ~nprocs ~cluster:2 ~lan:1000 () in
  (match faults with
  | Some spec -> Mgs.Machine.set_faults m ~seed spec
  | None -> ());
  let lock = Locks.make m name in
  let order = ref [] in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         if p = 0 then begin
           Locks.acquire ctx lock;
           Mgs.Api.compute ctx 3_000_000;
           Locks.release ctx lock
         end
         else begin
           Mgs.Api.idle_until ctx (p * 100_000);
           Locks.acquire ctx lock;
           order := p :: !order;
           Mgs.Api.compute ctx 500;
           Locks.release ctx lock
         end));
  Mgs.Machine.assert_quiescent m;
  let got = List.rev !order in
  let want = List.init (nprocs - 1) (fun i -> i + 1) in
  if got <> want then
    QCheck.Test.fail_reportf "%s: grant order %s, want FIFO %s" name
      (String.concat "," (List.map string_of_int got))
      (String.concat "," (List.map string_of_int want));
  true

let fifo_locks = [ "mcs"; "clh"; "ticket" ]

let prop_fifo =
  QCheck.Test.make ~count:3 ~name:"queue locks grant in FIFO order"
    QCheck.(oneofl fifo_locks)
    (fun name -> run_fifo name)

let prop_fifo_faulty =
  QCheck.Test.make ~count:6 ~name:"queue locks stay FIFO under a lossy LAN"
    QCheck.(pair small_nat (oneofl fifo_locks))
    (fun (seed, name) -> run_fifo ~faults:(Mgs_net.Fault.of_string chaos) ~seed name)

(* ------------------------------------------------------------------ *)
(* Condition variables.                                                *)
(* ------------------------------------------------------------------ *)

(* Four consumers wait for items, four producers each publish one and
   signal.  The Mesa while-loop absorbs any signal/wait race; the run
   can only complete if no wakeup is lost. *)
let test_condvar_signal () =
  let m = make ~nprocs:8 ~cluster:2 () in
  let lock = Locks.make m "mcs" in
  let cv = Condvar.create m lock in
  let ready = ref 0 in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         if p < 4 then begin
           Locks.acquire ctx lock;
           while !ready = 0 do
             Condvar.wait ctx cv
           done;
           decr ready;
           Locks.release ctx lock
         end
         else begin
           Mgs.Api.compute ctx 50_000;
           Locks.acquire ctx lock;
           incr ready;
           ignore (Condvar.signal ctx cv);
           Locks.release ctx lock
         end));
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check int) "all items consumed" 0 !ready;
  Alcotest.(check int) "no parked waiters" 0 (Condvar.waiters cv)

let test_condvar_broadcast () =
  let m = make ~nprocs:8 ~cluster:2 () in
  let lock = Locks.make m "ticket" in
  let cv = Condvar.create m lock in
  let go = ref false in
  let woken = ref 0 in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         if p = 0 then begin
           (* park everyone first: waiters release the lock inside
              [wait], so the whole group is asleep long before this
              ([idle_until] suspends in simulated time; a [compute]
              would only advance this fiber's virtual clock) *)
           Mgs.Api.idle_until ctx 500_000;
           Locks.acquire ctx lock;
           go := true;
           woken := Condvar.broadcast ctx cv;
           Locks.release ctx lock
         end
         else begin
           Locks.acquire ctx lock;
           while not !go do
             Condvar.wait ctx cv
           done;
           Locks.release ctx lock
         end));
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check int) "broadcast woke the whole group" 7 !woken;
  Alcotest.(check int) "waits recorded" 7 (Condvar.waits cv);
  Alcotest.(check int) "wakeups recorded" 7 (Condvar.wakeups cv);
  Alcotest.(check int) "no parked waiters" 0 (Condvar.waiters cv)

(* ------------------------------------------------------------------ *)
(* Phase-reset parity for registry locks.                              *)
(* ------------------------------------------------------------------ *)

let test_reset_parity () =
  let m = make ~nprocs:8 ~cluster:2 () in
  let cell = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 0) in
  let lock = Locks.make m "clh" in
  let phase () =
    ignore
      (Mgs.Machine.run m (fun ctx ->
           for _ = 1 to 4 do
             Locks.acquire ctx lock;
             Mgs.Api.write ctx cell (Mgs.Api.read ctx cell +. 1.0);
             Locks.release ctx lock
           done));
    Mgs.Machine.assert_quiescent m
  in
  phase ();
  let open Mgs.State in
  Alcotest.(check bool) "warmup recorded acquires" true (Locks.acquires lock > 0);
  Alcotest.(check bool) "warmup recorded handoffs" true (Locks.handoffs lock > 0);
  Alcotest.(check bool) "warmup recorded lock messages" true
    (m.pstats.Mgs.Pstats.lock_msgs > 0);
  Alcotest.(check bool) "warmup recorded lock wait" true
    (m.pstats.Mgs.Pstats.lock_wait > 0);
  Mgs.Machine.reset_stats m;
  Alcotest.(check int) "acquires reset" 0 (Locks.acquires lock);
  Alcotest.(check int) "hits reset" 0 (Locks.hits lock);
  Alcotest.(check int) "handoffs reset" 0 (Locks.handoffs lock);
  Alcotest.(check int) "gap history reset" 0 (Locks.gap_stats lock).Locks.n;
  Alcotest.(check int) "no queued waiters" 0 (Locks.waiters lock);
  Alcotest.(check int) "pstats lock_msgs reset" 0 m.pstats.Mgs.Pstats.lock_msgs;
  Alcotest.(check int) "pstats lock_handoffs reset" 0 m.pstats.Mgs.Pstats.lock_handoffs;
  Alcotest.(check int) "pstats lock_wait reset" 0 m.pstats.Mgs.Pstats.lock_wait;
  Alcotest.(check int) "machine lock counter reset" 0 m.sync_counters.lock_acquires;
  (* the lock must be fully usable in the next measured phase *)
  phase ();
  Alcotest.(check int) "second phase acquires" (8 * 4) (Locks.acquires lock);
  Alcotest.(check (float 0.)) "second phase counter" (float_of_int (2 * 8 * 4))
    (Mgs.Machine.peek m cell)

(* ------------------------------------------------------------------ *)
(* Partition during an acquire must not poison the next phase.         *)
(* ------------------------------------------------------------------ *)

let test_partition_recovery () =
  let m = make ~nprocs:4 ~cluster:2 () in
  let cell = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 0) in
  let lock = Locks.make m ~home:0 "token" in
  (* total loss: the cross-SSMP token request exhausts its retries *)
  Mgs.Machine.set_faults m ~seed:7 (Mgs_net.Fault.of_string "drop=1.0,retries=3");
  let r1 =
    Mgs.Machine.run m (fun ctx ->
        if Mgs.Api.proc ctx = 2 then begin
          Locks.acquire ctx lock;
          Locks.release ctx lock
        end)
  in
  (match r1.Mgs.Report.outcome with
  | Mgs.Report.Partitioned _ -> ()
  | _ -> Alcotest.fail "expected a partitioned outcome");
  Alcotest.(check bool) "waiter abandoned mid-acquire" true (Locks.waiters lock > 0);
  (* reset while the plan is installed (clears the transport's pending
     retransmissions), then lift the faults for the next phase *)
  Mgs.Machine.reset_stats m;
  Mgs.Machine.clear_faults m;
  Alcotest.(check int) "reset dropped the dead waiter" 0 (Locks.waiters lock);
  let r2 =
    Mgs.Machine.run m (fun ctx ->
        Locks.acquire ctx lock;
        Mgs.Api.write ctx cell (Mgs.Api.read ctx cell +. 1.0);
        Locks.release ctx lock)
  in
  Alcotest.(check bool) "second phase completes" true (Mgs.Report.completed r2);
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check (float 0.)) "every proc acquired" 4.0 (Mgs.Machine.peek m cell)

(* ------------------------------------------------------------------ *)
(* -j N byte identity of the microbenchmark family.                    *)
(* ------------------------------------------------------------------ *)

let test_lock_family_jobs_identical () =
  let specs =
    List.concat_map
      (fun lock -> List.map (fun fibers -> (lock, "mgs", 4, fibers)) [ 4; 8 ])
      (Locks.names ())
  in
  let seq = Micro.lock_family ~iters:4 ~jobs:1 specs in
  let par = Micro.lock_family ~iters:4 ~jobs:3 specs in
  Alcotest.(check string) "-j 3 output identical to -j 1"
    (Figures.pp_lock_table seq) (Figures.pp_lock_table par)

(* ------------------------------------------------------------------ *)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_mutex; prop_mutex_faulty; prop_fifo; prop_fifo_faulty ]

let () =
  Alcotest.run "locks"
    [
      ( "registry",
        [
          Alcotest.test_case "all five algorithms registered" `Quick (fun () ->
              List.iter
                (fun n ->
                  Alcotest.(check bool) n true (Locks.mem n))
                [ "token"; "tas"; "ticket"; "mcs"; "clh" ];
              Alcotest.(check bool) "unknown name rejected" true
                (try
                   ignore (Locks.make (make ()) "bogus");
                   false
                 with Invalid_argument _ -> true));
        ] );
      ( "condvar",
        [
          Alcotest.test_case "signal wakes one" `Quick test_condvar_signal;
          Alcotest.test_case "broadcast wakes all" `Quick test_condvar_broadcast;
        ] );
      ( "phases",
        [
          Alcotest.test_case "reset parity" `Quick test_reset_parity;
          Alcotest.test_case "partition recovery" `Quick test_partition_recovery;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "-j N byte identity" `Quick test_lock_family_jobs_identical;
        ] );
      ("properties", qsuite);
    ]
