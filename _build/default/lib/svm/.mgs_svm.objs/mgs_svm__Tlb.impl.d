lib/svm/tlb.ml: Hashtbl Queue
