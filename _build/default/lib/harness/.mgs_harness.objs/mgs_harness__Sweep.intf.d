lib/harness/sweep.mli: Mgs Mgs_machine
