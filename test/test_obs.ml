(* Tests for the observability subsystem: the bounded ring, the
   power-of-two latency histograms, the event trace with its Chrome
   export, the online invariant checker (including deliberately
   corrupted state it must flag), and the phase-reset plumbing. *)

module Ring = Mgs_obs.Ring
module Hist = Mgs_obs.Hist
module Event = Mgs_obs.Event
module Trace = Mgs_obs.Trace
module Span = Mgs_obs.Span
module Metrics = Mgs_obs.Metrics
module Json = Mgs_obs.Json

let contains haystack needle =
  let n = String.length needle and l = String.length haystack in
  let rec go i = i + n <= l && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* --- ring ------------------------------------------------------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  Alcotest.(check int) "empty" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Ring.to_list r);
  Alcotest.(check int) "nothing dropped" 0 (Ring.dropped r)

let test_ring_wrap () =
  let r = Ring.create ~capacity:3 in
  for i = 1 to 7 do
    Ring.push r i
  done;
  Alcotest.(check (list int)) "keeps the newest" [ 5; 6; 7 ] (Ring.to_list r);
  Alcotest.(check int) "pushed" 7 (Ring.pushed r);
  Alcotest.(check int) "length" 3 (Ring.length r);
  Alcotest.(check int) "dropped" 4 (Ring.dropped r);
  Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Ring.length r);
  Alcotest.(check int) "clear zeroes pushed" 0 (Ring.pushed r)

let test_ring_invalid () =
  Alcotest.check_raises "capacity 0 rejected" (Invalid_argument "Ring.create: capacity")
    (fun () -> ignore (Ring.create ~capacity:0))

(* --- histogram -------------------------------------------------------- *)

let test_hist_buckets () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 0; 1; 5; 5; 1000; -3 ];
  Alcotest.(check int) "count" 6 (Hist.count h);
  (* -3 clamps to 0 *)
  Alcotest.(check int) "sum" (0 + 1 + 5 + 5 + 1000 + 0) (Hist.sum h);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 1000 (Hist.max_value h);
  let buckets = Hist.buckets h in
  Alcotest.(check (list (triple int int int)))
    "power-of-two buckets"
    [ (0, 0, 2); (1, 1, 1); (4, 7, 2); (512, 1023, 1) ]
    buckets

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check (float 0.)) "mean" 0.0 (Hist.mean h);
  Alcotest.(check (list (triple int int int))) "no buckets" [] (Hist.buckets h)

(* --- trace ------------------------------------------------------------ *)

let ev ?(tag = "t") ?(dur = 0) time =
  Event.make ~time ~engine:Event.Network ~tag ~dur ()

let test_trace_bounded () =
  let tr = Trace.create ~capacity:2 () in
  Trace.emit tr (ev 1);
  Trace.emit tr (ev 2);
  Trace.emit tr (ev 3);
  Alcotest.(check int) "emitted" 3 (Trace.emitted tr);
  Alcotest.(check int) "retained" 2 (Trace.retained tr);
  Alcotest.(check int) "dropped" 1 (Trace.dropped tr);
  Alcotest.(check (list int)) "newest retained" [ 2; 3 ]
    (List.map (fun (e : Event.t) -> e.Event.time) (Trace.events tr))

let test_trace_subscribers_and_hist () =
  let tr = Trace.create () in
  let seen = ref 0 in
  Trace.subscribe tr (fun _ -> incr seen);
  Trace.emit tr (ev ~tag:"a" ~dur:10 1);
  Trace.emit tr (ev ~tag:"a" ~dur:20 2);
  Trace.emit tr (ev ~tag:"b" ~dur:5 3);
  Alcotest.(check int) "subscriber saw every emit" 3 !seen;
  (match Trace.hist tr "a" with
  | None -> Alcotest.fail "histogram for tag a missing"
  | Some h ->
    Alcotest.(check int) "per-tag count" 2 (Hist.count h);
    Alcotest.(check int) "per-tag sum of durations" 30 (Hist.sum h));
  Alcotest.(check int) "two tags" 2 (List.length (Trace.histograms tr))

let test_trace_chrome_json () =
  let tr = Trace.create () in
  Trace.emit tr
    (Event.make ~time:150 ~engine:Event.Server ~tag:"RREQ \"x\"" ~vpn:7 ~src:1 ~dst:2
       ~src_ssmp:0 ~dst_ssmp:1 ~words:256 ~cost:40 ~dur:50 ());
  let json = Trace.chrome_json tr in
  let contains needle =
    let n = String.length needle and l = String.length json in
    let rec go i = i + n <= l && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"");
  Alcotest.(check bool) "complete slice" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "slice starts at time - dur" true (contains "\"ts\":100");
  Alcotest.(check bool) "duration" true (contains "\"dur\":50");
  Alcotest.(check bool) "pid is destination SSMP" true (contains "\"pid\":1");
  Alcotest.(check bool) "quotes escaped" true (contains "RREQ \\\"x\\\"");
  Alcotest.(check bool) "page in args" true (contains "\"vpn\":7")

(* A ring that overflows must say so loudly: a decomposition computed
   from a lossy window is quietly wrong otherwise. *)
let test_trace_overflow_warning () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.emit tr (ev i)
  done;
  Alcotest.(check int) "dropped" 6 (Trace.dropped tr);
  let warning = Format.asprintf "%a" Trace.pp_overflow_warning tr in
  Alcotest.(check bool) "overflow warning present" true (contains warning "WARNING");
  Alcotest.(check bool) "warning counts the loss" true (contains warning "6 of 10");
  let summary = Format.asprintf "%a" Trace.pp_summary tr in
  Alcotest.(check bool) "summary leads with the warning" true (contains summary "WARNING");
  (* and a clean trace stays quiet *)
  let quiet = Trace.create ~capacity:64 () in
  Trace.emit quiet (ev 1);
  Alcotest.(check string) "no warning without drops" ""
    (Format.asprintf "%a" Trace.pp_overflow_warning quiet)

(* Regression: tags with quotes, backslashes, control characters, and
   non-ASCII bytes must still yield JSON the strict parser accepts. *)
let test_chrome_json_escaping_strict () =
  let tr = Trace.create () in
  let nasty =
    [ "quote\"tag"; "back\\slash"; "new\nline"; "tab\ttag"; "ctl\x01"; "del\x7f"; "hi\xff" ]
  in
  List.iteri (fun i tag -> Trace.emit tr (ev ~tag (10 * (i + 1)))) nasty;
  (* spans with the same hostile labels ride in the chrome export too *)
  let sp = Trace.spans tr in
  List.iter
    (fun label ->
      let c =
        Span.open_span sp ~parent:Span.none ~time:0 ~label ~engine:Event.Network ()
      in
      Span.close sp c ~time:5)
    nasty;
  let json = Trace.chrome_json tr in
  String.iter
    (fun ch -> if Char.code ch > 0x7f then Alcotest.fail "non-ASCII byte in export")
    json;
  (match Json.parse json with
  | Error e -> Alcotest.fail ("chrome export rejected by strict parser: " ^ e)
  | Ok v -> (
    match Json.member "traceEvents" v with
    | Some (Json.Arr events) ->
      (* 7 complete slices + per span one b/e pair (roots have no flows) *)
      Alcotest.(check int) "all events survived escaping" (7 + (2 * 7))
        (List.length events)
    | _ -> Alcotest.fail "traceEvents missing"));
  match Json.parse (Span.json sp) with
  | Error e -> Alcotest.fail ("span export rejected by strict parser: " ^ e)
  | Ok v ->
    Alcotest.(check (option string)) "span schema" (Some "mgs-spans-1")
      (Option.bind (Json.member "schema" v) Json.to_string)

(* --- spans ------------------------------------------------------------ *)

let test_span_basic () =
  let sp = Span.create () in
  let root =
    Span.open_span sp ~parent:Span.none ~time:100 ~label:"fault" ~engine:Event.Local_client
      ~vpn:3 ()
  in
  Alcotest.(check int) "root mints txn 0" 0 root.Span.txn;
  let child =
    Span.open_span sp ~parent:root ~time:110 ~label:"h.RREQ" ~engine:Event.Server ()
  in
  Alcotest.(check int) "child inherits txn" 0 child.Span.txn;
  Alcotest.(check int) "two open" 2 (Span.open_count sp);
  Alcotest.(check (list string)) "open labels" [ "fault"; "h.RREQ" ] (Span.open_labels sp);
  Span.close sp child ~time:150;
  Span.close sp root ~time:200;
  Alcotest.(check int) "balanced" 0 (Span.open_count sp);
  Span.close sp root ~time:999;
  (* idempotent: t1 keeps its first value *)
  let t1s = ref [] in
  Span.iter sp (fun s -> t1s := s.Span.t1 :: !t1s);
  Alcotest.(check (list int)) "closes kept first time" [ 200; 150 ] (List.rev !t1s);
  Span.close sp Span.none ~time:1;
  let second =
    Span.open_span sp ~parent:Span.none ~time:300 ~label:"release"
      ~engine:Event.Local_client ()
  in
  Alcotest.(check int) "fresh root mints the next txn" 1 second.Span.txn;
  Span.close sp second ~time:310;
  Alcotest.(check int) "txns minted" 2 (Span.txns sp)

let test_span_overflow_sentinel () =
  let sp = Span.create ~capacity:2 () in
  let a =
    Span.open_span sp ~parent:Span.none ~time:0 ~label:"fault" ~engine:Event.Local_client ()
  in
  let b = Span.open_span sp ~parent:a ~time:1 ~label:"h.RREQ" ~engine:Event.Server () in
  let c = Span.open_span sp ~parent:a ~time:2 ~label:"net.wire" ~engine:Event.Network () in
  Alcotest.(check int) "store capped" 2 (Span.count sp);
  Alcotest.(check int) "overflow counted" 1 (Span.dropped sp);
  Alcotest.(check bool) "sentinel sid is negative" true (c.Span.sid < 0);
  Alcotest.(check int) "sentinel keeps threading the txn" a.Span.txn c.Span.txn;
  Span.close sp c ~time:9;
  Alcotest.(check int) "sentinel close is a no-op" 2 (Span.open_count sp);
  (* a child opened under the sentinel stays in the transaction, with
     the unrecorded parent sanitized to "root" *)
  let sp2 = Span.create ~capacity:8 () in
  let d =
    Span.open_span sp2 ~parent:{ Span.txn = 7; sid = -2 } ~time:0 ~label:"net.dma"
      ~engine:Event.Network ()
  in
  Alcotest.(check int) "txn inherited through sentinel" 7 d.Span.txn;
  Span.iter sp2 (fun s -> Alcotest.(check int) "parent sanitized" (-1) s.Span.parent);
  Span.close sp b ~time:3;
  Span.close sp a ~time:4

(* Synthetic remote fault with overlapping children: every instant must
   be charged to exactly one component, components + residual = e2e. *)
let test_span_breakdown_attribution () =
  let sp = Span.create () in
  let root =
    Span.open_span sp ~parent:Span.none ~time:0 ~label:"fault" ~engine:Event.Local_client ()
  in
  let kid label t0 t1 =
    let c =
      Span.open_span sp ~parent:root ~time:t0 ~label
        ~engine:(Span.engine_of_label label) ()
    in
    Span.close sp c ~time:t1
  in
  kid "net.wire" 0 10;
  kid "h.RREQ" 10 40;
  kid "sv.queue" 20 50;
  kid "net.dma" 40 60;
  kid "rc.inv" 55 70;
  Span.close sp root ~time:100;
  (* a sync transaction and a local fault must not enter the breakdown *)
  let l = Span.open_span sp ~parent:Span.none ~time:0 ~label:"sync.lock" ~engine:Event.Sync () in
  Span.close sp l ~time:50;
  let lf =
    Span.open_span sp ~parent:Span.none ~time:0 ~label:"fault" ~engine:Event.Local_client ()
  in
  Span.close sp lf ~time:5;
  let b = Span.fault_breakdown sp in
  Alcotest.(check int) "one remote fault" 1 b.Span.faults;
  Alcotest.(check int) "e2e" 100 b.Span.e2e;
  Alcotest.(check int) "wire" 10 b.Span.wire;
  Alcotest.(check int) "server wins over queue" 30 b.Span.server;
  Alcotest.(check int) "dma wins over queue and remote" 20 b.Span.dma;
  Alcotest.(check int) "remote" 10 b.Span.remote;
  Alcotest.(check int) "queue fully shadowed" 0 b.Span.queue;
  Alcotest.(check int) "local" 0 b.Span.local;
  Alcotest.(check int) "residual is the uncovered tail" 30 b.Span.residual;
  Alcotest.(check int) "components + residual = e2e" b.Span.e2e
    (b.Span.local + b.Span.wire + b.Span.dma + b.Span.server + b.Span.remote + b.Span.queue
   + b.Span.residual);
  Alcotest.(check (float 1e-9)) "coverage" 0.7 (Span.coverage b)

(* --- metrics ----------------------------------------------------------- *)

let test_metrics_registry_and_sampler () =
  let mt = Metrics.create ~interval:10 () in
  Alcotest.(check int) "interval" 10 (Metrics.interval mt);
  let c = Metrics.counter mt "msgs" ~labels:[ ("engine", "server") ] in
  let g = Metrics.gauge mt "depth" in
  let live = ref 0.0 in
  Metrics.probe mt "live" (fun () -> !live);
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Metrics.set g 2.5;
  live := 7.0;
  Alcotest.(check int) "counter value" 5 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge value" 2.5 (Metrics.gauge_value g);
  Metrics.sample mt ~now:0;
  Metrics.tick mt ~now:5;
  (* inside boundary 0's interval: no new row *)
  Metrics.tick mt ~now:15;
  (* boundary 1 crossed: one row back-filled at t=10 *)
  Alcotest.(check int) "tick snapshots the boundary grid" 2 (Metrics.sample_count mt);
  Alcotest.(check (list string)) "columns in registration order"
    [ "msgs{engine=server}"; "depth"; "live" ] (Metrics.columns mt);
  (match Metrics.samples mt with
  | [ (0, row0); (10, _) ] ->
    Alcotest.(check (float 0.)) "probe polled" 7.0 row0.(2)
  | _ -> Alcotest.fail "expected samples at t=0 and t=10");
  Alcotest.check_raises "registration is frozen after first sample"
    (Invalid_argument "Metrics: cannot register late after sampling started") (fun () ->
      ignore (Metrics.counter mt "late"));
  let csv = Metrics.csv mt in
  Alcotest.(check bool) "csv header" true (contains csv "time,msgs{engine=server},depth,live");
  match Json.parse (Metrics.json mt) with
  | Error e -> Alcotest.fail ("metrics export rejected by strict parser: " ^ e)
  | Ok v ->
    Alcotest.(check (option string)) "metrics schema" (Some "mgs-metrics-1")
      (Option.bind (Json.member "schema" v) Json.to_string)

let test_metrics_ring_bound () =
  let mt = Metrics.create ~interval:1 ~max_samples:2 () in
  ignore (Metrics.gauge mt "g");
  for t = 1 to 5 do
    Metrics.sample mt ~now:t
  done;
  Alcotest.(check int) "window bounded" 2 (List.length (Metrics.samples mt));
  (* the grid back-fills boundary 0, so 5 sample calls push 6 rows *)
  Alcotest.(check int) "evictions counted" 4 (Metrics.dropped mt);
  Alcotest.(check (list int)) "newest window kept" [ 4; 5 ]
    (List.map fst (Metrics.samples mt))

(* --- machine integration ---------------------------------------------- *)

let small_machine () =
  let cfg =
    Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:600 ~shadow:true
      ~protocol:Mgs.State.Protocol_mgs ()
  in
  Mgs.Machine.create cfg

let run_mp m =
  let data = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 3) in
  let bar = Mgs_sync.Barrier.create m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then Mgs.Api.write ctx data 9.0;
         Mgs_sync.Barrier.wait ctx bar;
         ignore (Mgs.Api.read ctx data)));
  data

let test_machine_trace_and_checker () =
  let m = small_machine () in
  let tr = Mgs.Machine.enable_trace m in
  Alcotest.(check bool) "enable_trace is idempotent" true (tr == Mgs.Machine.enable_trace m);
  let checker = Mgs.Machine.enable_checker m in
  ignore (run_mp m);
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check int) "no invariant violations" 0 (Mgs.Invariant.count checker);
  Alcotest.(check bool) "events recorded" true (Trace.emitted tr > 0);
  Alcotest.(check int) "nothing dropped on a small run" 0 (Trace.dropped tr);
  (* every posted message was delivered, so the per-tag histogram and
     the message counter agree *)
  let open Mgs.State in
  List.iter
    (fun tag ->
      let posted = Am.count m.am tag in
      let emitted = match Trace.hist tr tag with None -> 0 | Some h -> Hist.count h in
      Alcotest.(check int) (tag ^ " delivered = posted") posted emitted)
    [ "WREQ"; "RREQ"; "RDAT"; "BAR_COMBINE"; "BAR_RELEASE" ];
  (* sync + protocol engines contributed structured events *)
  let tags = List.map fst (Trace.histograms tr) in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " present") true (List.mem t tags))
    [ "lc.fault"; "sv.send_data"; "sync.barrier_episode" ]

let test_machine_spans_and_metrics () =
  let m = small_machine () in
  let tr = Mgs.Machine.enable_trace m in
  let mt = Mgs.Machine.enable_metrics ~interval:1000 m in
  Alcotest.(check bool) "enable_metrics is idempotent" true
    (mt == Mgs.Machine.enable_metrics m);
  let checker = Mgs.Machine.enable_checker m in
  ignore (run_mp m);
  Mgs.Machine.assert_quiescent m;
  let sp = Trace.spans tr in
  Alcotest.(check bool) "spans recorded" true (Span.count sp > 0);
  Alcotest.(check bool) "transactions minted" true (Span.txns sp > 0);
  Alcotest.(check int) "every span balanced at quiescence" 0 (Span.open_count sp);
  Mgs.Invariant.finish checker;
  Alcotest.(check int) "no orphaned transactions" 0 (Mgs.Invariant.count checker);
  Alcotest.(check bool) "final partial interval sampled" true
    (Metrics.sample_count mt > 0);
  (* every export survives the strict parser *)
  List.iter
    (fun (what, out) ->
      match Json.parse out with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (what ^ ": " ^ e))
    [
      ("chrome", Trace.chrome_json tr);
      ("spans", Span.json sp);
      ("metrics", Metrics.json mt);
    ]

(* Only the span layer can see a request whose reply never came: fake
   one and the end-of-run check must flag it. *)
let test_orphan_span_detected () =
  let m = small_machine () in
  let tr = Mgs.Machine.enable_trace m in
  let checker = Mgs.Machine.enable_checker m in
  ignore (run_mp m);
  ignore
    (Span.open_span (Trace.spans tr) ~parent:Span.none ~time:0 ~label:"fault"
       ~engine:Event.Local_client ());
  Mgs.Invariant.finish checker;
  Alcotest.(check bool) "orphan flagged" true (Mgs.Invariant.count checker > 0);
  let out = Format.asprintf "%a" Mgs.Invariant.pp checker in
  Alcotest.(check bool) "report names the open label" true (contains out "fault");
  Alcotest.(check bool) "report says orphaned" true (contains out "orphaned")

let test_checker_flags_corruption () =
  let open Mgs.State in
  let violation_count corrupt =
    let m = small_machine () in
    let checker = Mgs.Machine.enable_checker m in
    let addr = Mgs.Machine.alloc m ~words:256 ~home:(Mgs_mem.Allocator.On_proc 0) in
    Mgs.Machine.poke m addr 1.0;
    let vpn = Mgs_mem.Geom.vpn_of_addr (Mgs.Machine.geom m) addr in
    let tag = corrupt m vpn in
    obs_emit m ~engine:Mgs_obs.Event.Server ~tag ~vpn ~src:(-1) ~dst:(-1) ~words:0 ~cost:0 ~dur:0;
    Mgs.Invariant.count checker
  in
  let n =
    violation_count (fun m vpn ->
        (get_sentry m vpn).s_count <- -1;
        "test.corrupt")
  in
  Alcotest.(check bool) "negative s_count flagged" true (n > 0);
  let n =
    violation_count (fun m vpn ->
        let se = get_sentry m vpn in
        Mgs_util.Bitset.add se.s_read_dir 1;
        Mgs_util.Bitset.add se.s_write_dir 1;
        Hashtbl.replace se.s_frame_procs 1 2;
        "test.corrupt")
  in
  Alcotest.(check bool) "read/write directory overlap flagged" true (n > 0);
  let n =
    violation_count (fun m vpn ->
        ignore (get_sentry m vpn);
        (get_centry m 1 vpn).pstate <- P_busy;
        "test.corrupt")
  in
  Alcotest.(check bool) "BUSY without mapping lock flagged" true (n > 0);
  let n =
    violation_count (fun m vpn ->
        (* master now disagrees with the shadow image of the poke *)
        (get_sentry m vpn).s_master.(0) <- 99.0;
        "sv.epoch_end")
  in
  Alcotest.(check bool) "release-visibility divergence flagged" true (n > 0);
  (* and a healthy machine stays clean under the same emission *)
  let n = violation_count (fun _ _ -> "sv.epoch_end") in
  Alcotest.(check int) "healthy state passes" 0 n

let test_checker_ignores_other_protocols () =
  let cfg =
    Mgs.Machine.config ~nprocs:4 ~cluster:2 ~protocol:Mgs.State.Protocol_ivy ~shadow:false
      ()
  in
  let m = Mgs.Machine.create cfg in
  let checker = Mgs.Machine.enable_checker m in
  let open Mgs.State in
  let addr = Mgs.Machine.alloc m ~words:256 ~home:(Mgs_mem.Allocator.On_proc 0) in
  let vpn = Mgs_mem.Geom.vpn_of_addr (Mgs.Machine.geom m) addr in
  (get_sentry m vpn).s_count <- -1;
  obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"test.corrupt" ~vpn ~src:(-1) ~dst:(-1) ~words:0 ~cost:0 ~dur:0;
  Alcotest.(check int) "ivy machines are not judged by MGS invariants" 0
    (Mgs.Invariant.count checker)

let test_reset_stats () =
  let m = small_machine () in
  ignore (run_mp m);
  let open Mgs.State in
  Alcotest.(check bool) "messages counted" true (Am.total_posted m.am > 0);
  Alcotest.(check bool) "lan traffic counted" true ((Lan.stats m.lan).Lan.messages > 0);
  Alcotest.(check bool) "fetches counted" true (m.pstats.Mgs.Pstats.write_fetches > 0);
  Mgs.Machine.reset_stats m;
  Alcotest.(check int) "message counters zeroed" 0 (Am.total_posted m.am);
  Alcotest.(check int) "lan counters zeroed" 0 (Lan.stats m.lan).Lan.messages;
  Alcotest.(check int) "protocol counters zeroed" 0 m.pstats.Mgs.Pstats.write_fetches;
  Alcotest.(check int) "sync counters zeroed" 0 m.sync_counters.barrier_episodes

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "push and order" `Quick test_ring_basic;
          Alcotest.test_case "wrap evicts oldest" `Quick test_ring_wrap;
          Alcotest.test_case "invalid capacity" `Quick test_ring_invalid;
        ] );
      ( "hist",
        [
          Alcotest.test_case "power-of-two buckets" `Quick test_hist_buckets;
          Alcotest.test_case "empty histogram" `Quick test_hist_empty;
        ] );
      ( "trace",
        [
          Alcotest.test_case "bounded memory" `Quick test_trace_bounded;
          Alcotest.test_case "subscribers and histograms" `Quick
            test_trace_subscribers_and_hist;
          Alcotest.test_case "chrome trace_event export" `Quick test_trace_chrome_json;
          Alcotest.test_case "overflow warns loudly" `Quick test_trace_overflow_warning;
          Alcotest.test_case "hostile tags escape cleanly" `Quick
            test_chrome_json_escaping_strict;
        ] );
      ( "span",
        [
          Alcotest.test_case "open/close/txn threading" `Quick test_span_basic;
          Alcotest.test_case "overflow sentinel" `Quick test_span_overflow_sentinel;
          Alcotest.test_case "critical-path attribution" `Quick
            test_span_breakdown_attribution;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry + sampler" `Quick test_metrics_registry_and_sampler;
          Alcotest.test_case "bounded sample window" `Quick test_metrics_ring_bound;
        ] );
      ( "machine",
        [
          Alcotest.test_case "trace + checker on a run" `Quick
            test_machine_trace_and_checker;
          Alcotest.test_case "spans + metrics on a run" `Quick
            test_machine_spans_and_metrics;
          Alcotest.test_case "orphaned span detected" `Quick test_orphan_span_detected;
          Alcotest.test_case "checker flags corrupted state" `Quick
            test_checker_flags_corruption;
          Alcotest.test_case "checker is MGS-only" `Quick
            test_checker_ignores_other_protocols;
          Alcotest.test_case "reset_stats" `Quick test_reset_stats;
        ] );
    ]
