test/test_litmus.ml: Alcotest Am Array Format List Mgs Mgs_mem Mgs_obs Mgs_sync Printf
