lib/util/pqueue.ml: List
