(** Sharded discrete-event engine: one event partition per SSMP
    cluster, synchronized conservatively with the inter-SSMP LAN
    latency as the lookahead window.

    Use through {!Sim}: [Sim.make_sharded] installs an engine behind a
    simulator, after which [Sim.at]/[Sim.at_shard]/[Sim.run] dispatch
    here.  With an effective job count of 1 the engine drains a single
    heap in the canonical key order [(fire, sched, src, seq)] on the
    calling domain; with jobs >= 2 it drains per-shard heaps on OCaml
    Domains between lookahead barriers, merging cross-shard sends at
    window boundaries.  Both modes produce identical results; the
    contract relies on every cross-shard event firing at least
    [lookahead] after its creation, which the LAN's fixed inter-SSMP
    latency guarantees. *)

type t

exception Late_delivery of { dst : int; fire : int; clock : int }
(** Raised (strict mode only) when a cross-shard event would fire
    before its destination shard's clock — a lookahead violation. *)

val create : nshards:int -> lookahead:int -> t
(** @raise Invalid_argument when [nshards < 1] or [lookahead < 1] (a
    zero-latency LAN admits no conservative window). *)

val nshards : t -> int
val lookahead : t -> int

val set_jobs : t -> int -> unit
(** Effective domain count for subsequent runs, clamped to
    [1 .. nshards].  Pending events migrate between the global and
    per-shard heaps when the mode changes, preserving their keys. *)

val windowed : t -> bool
(** [true] when the current job count is >= 2. *)

val set_strict : t -> bool -> unit
(** Strict mode: raise {!Late_delivery} instead of silently clamping a
    late cross-shard merge. *)

val cur : unit -> int
(** Shard currently executing on this domain; -1 outside an event. *)

val set_cur : int -> unit
(** Publish the executing shard on this domain (engine internal;
    exposed for the sequential engine's per-shard attribution). *)

val running_key : unit -> Shardq.key
(** Genealogy key of the event this domain is currently executing; the
    observability layer stamps emissions with it so per-shard cells
    merge back into the canonical execution order.  Meaningful only
    while {!cur} is [>= 0].  The sequential engine publishes a
    (time, insertion-seq) pseudo-key when [Sim.enable_stamps] is on. *)

val set_run_key : Shardq.key -> unit
(** Publish the executing event's key on this domain (engine internal;
    exposed for the sequential engine). *)

val set_run_key_seq : fire:int -> sched:int -> unit
(** Publish a sequential-engine pseudo-key [(fire, sched, 0, 0, root)]
    without allocating: the key record is materialized lazily on the
    first {!running_key} call for this event, so unobserved events cost
    two scalar stores (engine internal). *)

val running_scalar : unit -> bool
(** True while the current event's pseudo-key is unmaterialized: a
    recorder that stores stamps unboxed can read {!running_fire} /
    {!running_sched} instead of forcing the record through
    {!running_key}. *)

val running_fire : unit -> int

val running_sched : unit -> int

val set_on_event : t -> (shard:int -> now:int -> unit) option -> unit
(** Install a callback invoked on the executing domain immediately
    before each event, after the shard clock/counters advance.  The
    callback must only touch state owned by [shard], or runs stop being
    byte-identical across job counts. *)

val now : t -> int
(** Executing shard's clock inside an event; the latest shard clock
    from host code. *)

val at : t -> int -> (unit -> unit) -> unit
(** Schedule on the executing shard (shard 0 from host code). *)

val at_shard : t -> shard:int -> int -> (unit -> unit) -> unit
(** Schedule on an explicit shard.  Cross-shard calls park the event in
    the scheduling shard's outbox until the next window barrier. *)

val run : t -> ?limit:int -> unit -> int
(** Drain every pending event; returns the number executed by this
    call.  @raise Failure with full diagnostics when [limit] is
    exhausted. *)

val executed : t -> int
val clamped : t -> int
val pending : t -> int

val peak : t -> int
(** High-water mark of pending events.  In windowed mode this is the
    sum of per-shard peaks (an upper bound on the true global peak —
    the shards peak at different times). *)

(** {2 Engine self-profiling} *)

type shard_stat = {
  st_id : int;
  st_executed : int;  (** events executed by this shard (deterministic) *)
  st_xsends : int;  (** cross-shard sends originated here (deterministic) *)
  st_clamped : int;  (** past-due schedules clamped on this shard *)
  st_peak : int;  (** per-shard heap high-water mark *)
  st_merges : int;  (** outbox messages merged into this shard *)
  st_stalls : int;  (** windows in which this shard executed nothing *)
  st_wall : float;  (** host seconds spent draining this shard *)
}

val shard_stats : t -> shard_stat array
(** One entry per shard.  [st_executed] and [st_xsends] are pure
    functions of the simulated program; the remaining fields depend on
    the job count and host and are excluded from the byte-identity
    contract. *)

val windows : t -> int
(** Lookahead windows opened so far (0 unless windowed runs happened). *)

val barrier_wall : t -> float
(** Host seconds the coordinator spent waiting at window barriers. *)

val shard_executed : t -> int -> int
(** [shard_executed eng i] — events executed by shard [i]; shard-local,
    safe to read from shard [i]'s own event context. *)

val shard_xsends : t -> int -> int
(** [shard_xsends eng i] — cross-shard sends originated by shard [i]. *)
