lib/core/api.ml: Allocator Array Coherence Cpu Geom Hashtbl Int64 Mgs_engine Mgs_machine Mgs_svm Option Pagedata Printf Proto Proto_hlrc Proto_ivy Sim State Tlb Topology
