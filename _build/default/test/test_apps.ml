(* Application correctness: every app, at tiny problem sizes, must
   produce the same answer as its sequential reference on every machine
   shape (each run also passes Machine.assert_quiescent). *)

let shapes = [ (4, 1); (4, 2); (4, 4); (8, 4); (8, 8); (16, 4) ]

let check_workload w () =
  List.iter
    (fun (nprocs, cluster) ->
      ignore (Mgs_harness.Sweep.run_point ~lan_latency:800 ~nprocs ~cluster w))
    shapes

let workloads =
  [
    ("jacobi", Mgs_apps.Jacobi.workload Mgs_apps.Jacobi.tiny);
    ("matmul", Mgs_apps.Matmul.workload Mgs_apps.Matmul.tiny);
    ("tsp", Mgs_apps.Tsp.workload Mgs_apps.Tsp.tiny);
    ("water", Mgs_apps.Water.workload Mgs_apps.Water.tiny);
    ("barnes-hut", Mgs_apps.Barnes.workload Mgs_apps.Barnes.tiny);
    ("water-kernel", Mgs_apps.Water_kernel.workload Mgs_apps.Water_kernel.tiny);
    ("water-kernel tiled", Mgs_apps.Water_kernel.workload_tiled Mgs_apps.Water_kernel.tiny);
    ("lu", Mgs_apps.Lu.workload Mgs_apps.Lu.tiny);
    ("radix", Mgs_apps.Radix.workload Mgs_apps.Radix.tiny);
  ]

(* The kernels must agree with each other too: same pair set, same
   forces (checked inside each workload against the same reference). *)

let () =
  Alcotest.run "apps"
    [
      ( "correct on all shapes",
        List.map (fun (n, w) -> Alcotest.test_case n `Quick (check_workload w)) workloads );
    ]
