type params = {
  nkeys : int;
  digit_bits : int;
  key_bits : int;
  op_cycles : int;
  seed : int;
}

let default = { nkeys = 2048; digit_bits = 4; key_bits = 16; op_cycles = 30; seed = 91 }

let tiny = { nkeys = 96; digit_bits = 2; key_bits = 8; op_cycles = 30; seed = 7 }

let problem_size p =
  Printf.sprintf "%d keys, %d-bit digits of %d-bit keys" p.nkeys p.digit_bits p.key_bits

let passes p =
  if p.key_bits mod p.digit_bits <> 0 then
    invalid_arg "Radix: key_bits must be a multiple of digit_bits";
  p.key_bits / p.digit_bits

let initial p =
  let rng = Mgs_util.Rng.create ~seed:p.seed in
  Array.init p.nkeys (fun _ -> Mgs_util.Rng.int rng (1 lsl p.key_bits))

let seq_reference p =
  let a = initial p in
  Array.sort compare a;
  a

let workload p =
  let n = p.nkeys and radix = 1 lsl p.digit_bits in
  let npass = passes p in
  let prepare m =
    (* the two key buffers are blocked so a processor's own band is
       homed locally; the histogram matrix is interleaved *)
    let buf0 = Mgs.Machine.alloc m ~words:n ~home:Mgs_mem.Allocator.Blocked in
    let buf1 = Mgs.Machine.alloc m ~words:n ~home:Mgs_mem.Allocator.Blocked in
    let hist_words =
      Mgs.Machine.alloc m
        ~words:((Mgs.Machine.topo m).Mgs_machine.Topology.nprocs * radix)
        ~home:Mgs_mem.Allocator.Interleaved
    in
    Array.iteri (fun i k -> Mgs.Machine.poke m (buf0 + i) (float_of_int k)) (initial p);
    let bar = Mgs_sync.Barrier.create m in
    let body ctx =
      let open Mgs.Api in
      let nprocs = nprocs ctx and me = proc ctx in
      let b0 = me * n / nprocs and b1 = ((me + 1) * n / nprocs) - 1 in
      let src = ref buf0 and dst = ref buf1 in
      for pass = 0 to npass - 1 do
        let shift = pass * p.digit_bits in
        let digit k = (k lsr shift) land (radix - 1) in
        (* 1. local histogram of my band (private OCaml scratch; the
           SPLASH-2 code likewise histograms into local memory) *)
        let counts = Array.make radix 0 in
        for i = b0 to b1 do
          let k = read_int ctx (!src + i) in
          counts.(digit k) <- counts.(digit k) + 1;
          compute ctx p.op_cycles
        done;
        for d = 0 to radix - 1 do
          write_int ctx (hist_words + (me * radix) + d) counts.(d)
        done;
        Mgs_sync.Barrier.wait ctx bar;
        (* 2. every processor reads the full histogram matrix to rank
           its own digits: all-to-all read sharing of freshly written
           pages, the pattern the prefix phase of SPLASH-2 RADIX sees *)
        let offs = Array.make radix 0 in
        let below_digits = ref 0 in
        for d = 0 to radix - 1 do
          let before_me = ref 0 and total = ref 0 in
          for q = 0 to nprocs - 1 do
            let c = read_int ctx (hist_words + (q * radix) + d) in
            if q < me then before_me := !before_me + c;
            total := !total + c
          done;
          offs.(d) <- !below_digits + !before_me;
          below_digits := !below_digits + !total;
          compute ctx p.op_cycles
        done;
        Mgs_sync.Barrier.wait ctx bar;
        (* 3. permutation: scattered writes across the whole destination
           buffer — the fine-grain irregular phase that makes RADIX a
           stress test for page-grain software shared memory *)
        for i = b0 to b1 do
          let k = read_int ctx (!src + i) in
          let d = digit k in
          write_int ctx (!dst + offs.(d)) k;
          offs.(d) <- offs.(d) + 1;
          compute ctx p.op_cycles
        done;
        Mgs_sync.Barrier.wait ctx bar;
        let t = !src in
        src := !dst;
        dst := t
      done;
      (* sorted keys end up in [!src] after the final swap *)
      if me = 0 && !src <> (if npass mod 2 = 0 then buf0 else buf1) then
        failwith "radix: buffer parity broken"
    in
    let check m =
      let final = if npass mod 2 = 0 then buf0 else buf1 in
      let expect = seq_reference p in
      for i = 0 to n - 1 do
        let got = int_of_float (Mgs.Machine.peek m (final + i)) in
        if got <> expect.(i) then
          failwith
            (Printf.sprintf "radix mismatch at %d: got %d want %d" i got expect.(i))
      done
    in
    (body, check)
  in
  { Mgs_harness.Sweep.name = "Radix"; prepare }
