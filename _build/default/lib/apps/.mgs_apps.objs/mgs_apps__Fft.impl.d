lib/apps/fft.ml: Array Float Mgs Mgs_harness Mgs_mem Mgs_sync Mgs_util Printf
