(* Additional fine-grained coverage: small API surfaces and invariants
   not exercised elsewhere. *)

module Pd = Mgs_mem.Pagedata
module Geom = Mgs_mem.Geom
module Costs = Mgs_machine.Costs

let small = Geom.create ~page_words:32 ~line_words:4 ()

(* diffs list offsets in strictly increasing order (merge code and the
   message-size accounting rely on a canonical form) *)
let prop_diff_sorted =
  QCheck2.Test.make ~name:"diff offsets strictly increase" ~count:200
    QCheck2.Gen.(list (pair (int_bound 31) (float_bound_exclusive 10.)))
    (fun writes ->
      let p = Pd.create small in
      let twin = Pd.twin_of p in
      List.iter
        (fun (i, v) ->
          p.(i) <- v +. 1.0;
          Pd.mark twin i)
        writes;
      let d = Pd.diff p ~twin in
      let offs = ref [] in
      Pd.iter_diff (fun i _ -> offs := i :: !offs) d;
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | _ -> true
      in
      sorted (List.rev !offs))

(* every default cost is positive (a zero or negative cost would break
   the accounting invariants silently) *)
let test_costs_positive () =
  let c = Costs.default in
  let all =
    [
      c.Costs.hardware.cache_hit; c.Costs.hardware.miss_local; c.Costs.hardware.miss_remote;
      c.Costs.hardware.miss_2party; c.Costs.hardware.miss_3party;
      c.Costs.hardware.remote_software; c.Costs.hardware.hw_dir_pointers;
      c.Costs.hardware.cache_line_slots; c.Costs.svm.array_translation;
      c.Costs.svm.pointer_translation; c.Costs.svm.fault_entry; c.Costs.svm.table_lookup;
      c.Costs.svm.tlb_write; c.Costs.svm.map_lock; c.Costs.proto.handler_dispatch;
      c.Costs.proto.msg_send; c.Costs.proto.intra_msg; c.Costs.proto.dma_per_word;
      c.Costs.proto.frame_alloc; c.Costs.proto.twin_alloc; c.Costs.proto.twin_per_word;
      c.Costs.proto.diff_per_word; c.Costs.proto.diff_word_out; c.Costs.proto.merge_per_word;
      c.Costs.proto.copy_per_word; c.Costs.proto.clean_per_line; c.Costs.proto.tlb_inv;
      c.Costs.proto.server_op; c.Costs.proto.duq_op; c.Costs.lan.send_occupancy;
      c.Costs.sync.lock_local_acquire; c.Costs.sync.lock_local_release;
      c.Costs.sync.barrier_local; c.Costs.sync.flat_barrier; c.Costs.sync.flat_lock;
    ]
  in
  List.iteri
    (fun i v -> Alcotest.(check bool) (Printf.sprintf "cost %d positive" i) true (v > 0))
    all

(* duq_pending reflects unflushed writes and empties after release *)
let test_duq_pending () =
  let cfg = Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:300 () in
  let m = Mgs.Machine.create cfg in
  let a = Mgs.Machine.alloc m ~words:600 ~home:(Mgs_mem.Allocator.On_proc 3) in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           Alcotest.(check int) "initially empty" 0 (Mgs.Proto.duq_pending m ~proc:0);
           (* two pages dirtied *)
           Mgs.Api.write ctx a 1.0;
           Mgs.Api.write ctx (a + 300) 2.0;
           Alcotest.(check int) "two pages pending" 2 (Mgs.Proto.duq_pending m ~proc:0);
           Mgs.Api.release ctx;
           Alcotest.(check int) "flushed" 0 (Mgs.Proto.duq_pending m ~proc:0)
         end))

(* peek sees through a retained MGS copy (master synced at 1WDATA) *)
let test_peek_retained () =
  let cfg = Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:300 () in
  let m = Mgs.Machine.create cfg in
  let a = Mgs.Machine.alloc m ~words:4 ~home:(Mgs_mem.Allocator.On_proc 3) in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           Mgs.Api.write ctx a 5.0;
           Mgs.Api.release ctx
         end));
  (* the copy is retained (single-writer), master must still be exact *)
  Alcotest.(check (float 0.)) "peek through retention" 5.0 (Mgs.Machine.peek m a)

(* HLRC single-page flush helper *)
let test_hlrc_flush_helper () =
  let cfg =
    Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:300
      ~protocol:Mgs.State.Protocol_hlrc ()
  in
  let m = Mgs.Machine.create cfg in
  let a = Mgs.Machine.alloc m ~words:4 ~home:(Mgs_mem.Allocator.On_proc 3) in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           Mgs.Api.write ctx a 9.0;
           Alcotest.(check (float 0.)) "master stale before flush" 0.0 (Mgs.Machine.peek m a);
           Mgs.Proto_hlrc.flush_page_if_dirty m ~proc:0
             ~vpn:(Geom.vpn_of_addr (Mgs.Machine.geom m) a);
           Alcotest.(check (float 0.)) "master current after" 9.0 (Mgs.Machine.peek m a);
           Mgs.Api.release ctx
         end));
  Mgs.Machine.assert_quiescent m

(* radix sort parameters and sequential reference *)
let test_radix_params () =
  Alcotest.(check int) "default passes" 4 (Mgs_apps.Radix.passes Mgs_apps.Radix.default);
  Alcotest.check_raises "indivisible digit"
    (Invalid_argument "Radix: key_bits must be a multiple of digit_bits") (fun () ->
      ignore
        (Mgs_apps.Radix.passes { Mgs_apps.Radix.default with Mgs_apps.Radix.digit_bits = 5 }));
  let p = Mgs_apps.Radix.tiny in
  let input = Mgs_apps.Radix.initial p and sorted = Mgs_apps.Radix.seq_reference p in
  Alcotest.(check int) "same length" (Array.length input) (Array.length sorted);
  Array.iteri
    (fun i k -> if i > 0 then Alcotest.(check bool) "nondecreasing" true (sorted.(i - 1) <= k))
    sorted;
  let resorted = Array.copy input in
  Array.sort compare resorted;
  Alcotest.(check bool) "permutation of input" true (resorted = sorted)

(* the radix permutation phase (many-writer pages) must be correct
   under all three inter-SSMP protocols *)
let test_radix_all_protocols () =
  List.iter
    (fun proto ->
      let cfg =
        Mgs.Machine.config ~nprocs:8 ~cluster:2 ~lan_latency:500 ~protocol:proto
          ~shadow:true ()
      in
      let m = Mgs.Machine.create cfg in
      let w = Mgs_apps.Radix.workload Mgs_apps.Radix.tiny in
      let body, check = w.Mgs_harness.Sweep.prepare m in
      ignore (Mgs.Machine.run m body);
      check m;
      Mgs.Machine.assert_quiescent m;
      Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m))
    [ Mgs.State.Protocol_mgs; Mgs.State.Protocol_hlrc; Mgs.State.Protocol_ivy ]

(* the protocol ordering on scattered-write workloads (lazy RC < eager
   RC < single-writer SC) is a headline finding of EXPERIMENTS.md; guard
   it against regression *)
let test_radix_protocol_ordering () =
  let runtime proto =
    let cfg =
      Mgs.Machine.config ~nprocs:8 ~cluster:2 ~lan_latency:1000 ~protocol:proto ()
    in
    let m = Mgs.Machine.create cfg in
    let w =
      Mgs_apps.Radix.workload
        { Mgs_apps.Radix.default with Mgs_apps.Radix.nkeys = 1024 }
    in
    let body, check = w.Mgs_harness.Sweep.prepare m in
    let r = Mgs.Machine.run m body in
    check m;
    r.Mgs.Report.runtime
  in
  let mgs = runtime Mgs.State.Protocol_mgs
  and hlrc = runtime Mgs.State.Protocol_hlrc
  and ivy = runtime Mgs.State.Protocol_ivy in
  Alcotest.(check bool)
    (Printf.sprintf "hlrc (%d) < mgs (%d)" hlrc mgs)
    true (hlrc < mgs);
  Alcotest.(check bool)
    (Printf.sprintf "mgs (%d) < ivy (%d)" mgs ivy)
    true (mgs < ivy)

(* allocator bookkeeping *)
let test_allocator_accounting () =
  let h = Mgs_mem.Allocator.create small ~nprocs:2 in
  ignore (Mgs_mem.Allocator.alloc h ~words:40 ~home:Mgs_mem.Allocator.Interleaved);
  Alcotest.(check int) "pages" 2 (Mgs_mem.Allocator.pages_allocated h);
  Alcotest.(check int) "words" 64 (Mgs_mem.Allocator.words_allocated h);
  Alcotest.(check int) "nprocs" 2 (Mgs_mem.Allocator.nprocs h);
  Alcotest.(check int) "geom passthrough" 32 (Mgs_mem.Allocator.geom h).Geom.page_words

(* deterministic protocol: two identical machines produce identical
   message traces, not just runtimes *)
let test_trace_deterministic () =
  let run () =
    let cfg = Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:500 () in
    let m = Mgs.Machine.create cfg in
    let a = Mgs.Machine.alloc m ~words:8 ~home:(Mgs_mem.Allocator.On_proc 3) in
    let log = Buffer.create 256 in
    Mgs.Machine.trace_messages m (fun l -> Buffer.add_string log (l ^ "\n"));
    let bar = Mgs_sync.Barrier.create m in
    ignore
      (Mgs.Machine.run m (fun ctx ->
           Mgs.Api.write ctx (a + Mgs.Api.proc ctx) 1.0;
           Mgs_sync.Barrier.wait ctx bar));
    Buffer.contents log
  in
  Alcotest.(check string) "identical traces" (run ()) (run ())

let () =
  Alcotest.run "more"
    [
      ( "mem",
        [
          Alcotest.test_case "allocator accounting" `Quick test_allocator_accounting;
          QCheck_alcotest.to_alcotest prop_diff_sorted;
        ] );
      ("costs", [ Alcotest.test_case "all positive" `Quick test_costs_positive ]);
      ( "radix",
        [
          Alcotest.test_case "params and reference" `Quick test_radix_params;
          Alcotest.test_case "all protocols" `Quick test_radix_all_protocols;
          Alcotest.test_case "protocol ordering" `Slow test_radix_protocol_ordering;
        ] );
      ( "protocol surfaces",
        [
          Alcotest.test_case "duq_pending" `Quick test_duq_pending;
          Alcotest.test_case "peek through retention" `Quick test_peek_retained;
          Alcotest.test_case "hlrc flush helper" `Quick test_hlrc_flush_helper;
          Alcotest.test_case "deterministic traces" `Quick test_trace_deterministic;
        ] );
    ]
