test/test_micro.mli:
