(* Sharded discrete-event engine: one event partition ("shard") per
   SSMP cluster, synchronized conservatively with the inter-SSMP LAN
   latency as the lookahead window.

   Every event carries a canonical genealogy key (see {!Shardq}).  The
   engine runs in one of two modes, chosen by the effective job count
   for the run:

   - {b canonical-global} (jobs = 1): a single heap ordered by the
     canonical key, drained on the calling domain.  This is a total
     order over all shards and is the order the parallel mode must
     reproduce per shard; it reproduces the sequential engine's
     [(time, scheduling order)] tie-breaking exactly — the key's
     recursive parent component resolves even cross-shard ties the way
     the sequential insertion counter would.

   - {b windowed} (jobs >= 2): per-shard heaps drained concurrently on
     [jobs] domains between barriers.  Each window executes every event
     with [fire < T + lookahead] where [T] is the globally earliest
     pending fire time.  Cross-shard events are appended to the
     scheduling shard's outbox and merged into the destination heap at
     the barrier; because the LAN delivers cross-SSMP work no earlier
     than [send + lookahead], a message created inside a window always
     fires at or after the window's end, so the destination's per-shard
     execution order is identical to its subsequence of the
     canonical-global order — which is what makes the two modes produce
     byte-identical results.

   Shard-local clocks, counters and statistics are only ever touched by
   the domain currently running that shard; the window barrier's mutex
   publishes them between domains. *)

type shard = {
  id : int;
  q : Shardq.t; (* per-shard heap (windowed mode) *)
  mutable clock : int;
  mutable ctr : int; (* scheduling counter: [seq] source *)
  mutable running : Shardq.key; (* key of the event being executed *)
  mutable executed : int;
  mutable clamped : int; (* past-due schedules clamped to the clock *)
  mutable peak : int;
  mutable outbox : outmsg list; (* cross-shard sends, merged at barriers *)
  mutable failure : exn option; (* first exception raised while draining *)
  (* engine self-profiling; only the owning domain writes these *)
  mutable xsends : int; (* cross-shard sends originated by this shard *)
  mutable merges : int; (* outbox messages merged INTO this shard *)
  mutable stalls : int; (* windows in which this shard drained 0 events *)
  mutable wall : float; (* host seconds spent draining this shard *)
}

and outmsg = { o_dst : int; o_key : Shardq.key; o_fn : unit -> unit }

type t = {
  nshards : int;
  lookahead : int;
  mutable jobs : int; (* effective domains for the next run; >= 1 *)
  shards : shard array;
  g : Shardq.t; (* canonical-global heap (jobs = 1) *)
  mutable strict : bool;
  mutable gpeak : int;
  mutable windows : int; (* lookahead windows opened (windowed mode) *)
  mutable barrier_wall : float; (* coordinator seconds waiting at barriers *)
  mutable on_event : (shard:int -> now:int -> unit) option;
      (* called on the executing domain immediately before each event,
         after the shard clock and counters have advanced.  Used by the
         metrics sampler; the callback must only touch state owned by
         [shard] or the determinism contract breaks. *)
}

exception Late_delivery of { dst : int; fire : int; clock : int }

(* Which shard the running domain is currently executing; -1 between
   events (host code).  Domain-local so concurrent shards each see
   their own. *)
let cur_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let cur () = Domain.DLS.get cur_key

let set_cur v = Domain.DLS.set cur_key v

(* Genealogy key of the event this domain is currently executing.  The
   observability layer stamps every emission with it so per-shard cells
   can be merged back into the canonical execution order at export.
   Only meaningful while [cur () >= 0]; the sequential engine publishes
   a (time, insertion-seq) pseudo-key here when stamps are enabled. *)
let run_key : Shardq.key Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Shardq.no_parent)

(* The sequential engine's pseudo-key is two scalars; minting a key
   record per pop would put an allocation on every event whether or not
   anything observes it, so the record is materialized lazily on the
   first [running_key] call for that event. *)
type pending = { mutable p_fire : int; mutable p_sched : int; mutable p_set : bool }

let pending_key : pending Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { p_fire = 0; p_sched = 0; p_set = false })

let running_key () =
  let p = Domain.DLS.get pending_key in
  if p.p_set then begin
    p.p_set <- false;
    Domain.DLS.set run_key
      (Shardq.key ~fire:p.p_fire ~sched:p.p_sched ~src:0 ~seq:0
         ~parent:Shardq.no_parent)
  end;
  Domain.DLS.get run_key

let set_run_key k =
  (Domain.DLS.get pending_key).p_set <- false;
  Domain.DLS.set run_key k

let set_run_key_seq ~fire ~sched =
  let p = Domain.DLS.get pending_key in
  p.p_fire <- fire;
  p.p_sched <- sched;
  p.p_set <- true

(* Scalar access to an unmaterialized pseudo-key, for recorders that
   store stamps unboxed.  Meaningful only while [running_scalar ()]. *)
let running_scalar () = (Domain.DLS.get pending_key).p_set

let running_fire () = (Domain.DLS.get pending_key).p_fire

let running_sched () = (Domain.DLS.get pending_key).p_sched

let create ~nshards ~lookahead =
  if nshards < 1 then invalid_arg "Shard.create: nshards < 1";
  if lookahead < 1 then invalid_arg "Shard.create: lookahead < 1";
  {
    nshards;
    lookahead;
    jobs = 1;
    shards =
      Array.init nshards (fun id ->
          {
            id;
            q = Shardq.create ();
            clock = 0;
            ctr = 0;
            running = Shardq.no_parent;
            executed = 0;
            clamped = 0;
            peak = 0;
            outbox = [];
            failure = None;
            xsends = 0;
            merges = 0;
            stalls = 0;
            wall = 0.;
          });
    g = Shardq.create ();
    strict = false;
    gpeak = 0;
    windows = 0;
    barrier_wall = 0.;
    on_event = None;
  }

let nshards eng = eng.nshards

let lookahead eng = eng.lookahead

let windowed eng = eng.jobs > 1

let set_strict eng v = eng.strict <- v

let set_on_event eng h = eng.on_event <- h

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let now eng =
  let c = cur () in
  if c >= 0 then eng.shards.(c).clock
  else
    (* host view: the engine has advanced to the latest shard clock,
       exactly as the sequential clock ends at the last executed time *)
    Array.fold_left (fun acc s -> max acc s.clock) 0 eng.shards

let executed eng = Array.fold_left (fun acc s -> acc + s.executed) 0 eng.shards

let clamped eng = Array.fold_left (fun acc s -> acc + s.clamped) 0 eng.shards

let pending eng =
  Shardq.length eng.g
  + Array.fold_left
      (fun acc s -> acc + Shardq.length s.q + List.length s.outbox)
      0 eng.shards

let peak eng =
  max eng.gpeak (Array.fold_left (fun acc s -> acc + s.peak) 0 eng.shards)

(* Per-shard self-profiling snapshot.  [st_executed] and [st_xsends] are
   deterministic (a pure function of the simulated program); the rest
   depend on the job count, the host, and outbox timing, and are
   deliberately excluded from the byte-identity contract. *)
type shard_stat = {
  st_id : int;
  st_executed : int;
  st_xsends : int;
  st_clamped : int;
  st_peak : int;
  st_merges : int;
  st_stalls : int;
  st_wall : float;
}

let shard_stats eng =
  Array.map
    (fun s ->
      {
        st_id = s.id;
        st_executed = s.executed;
        st_xsends = s.xsends;
        st_clamped = s.clamped;
        st_peak = s.peak;
        st_merges = s.merges;
        st_stalls = s.stalls;
        st_wall = s.wall;
      })
    eng.shards

let windows eng = eng.windows

let barrier_wall eng = eng.barrier_wall

let shard_executed eng i = eng.shards.(i).executed

let shard_xsends eng i = eng.shards.(i).xsends

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let push_local eng ~key ~own fn =
  if eng.jobs > 1 then begin
    let d = eng.shards.(own) in
    Shardq.push d.q ~key ~own fn;
    let len = Shardq.length d.q in
    if len > d.peak then d.peak <- len
  end
  else begin
    Shardq.push eng.g ~key ~own fn;
    let len = Shardq.length eng.g in
    if len > eng.gpeak then eng.gpeak <- len
  end

(* Schedule [fn] to run on shard [dst] at absolute time [t].  The key is
   minted from the scheduling context: inside an event, the executing
   shard and the executing event's key as parent; host-side, the
   destination shard itself with the root sentinel.  Past-due times are
   clamped to the scheduler's clock — mirroring the sequential engine's
   clamp to the global clock, which during event execution is the same
   value — and counted. *)
let at_shard eng ~shard:dst t fn =
  if dst < 0 || dst >= eng.nshards then invalid_arg "Sim.at_shard: bad shard";
  let c = cur () in
  let s = if c >= 0 then eng.shards.(c) else eng.shards.(dst) in
  let fire =
    if t < s.clock then begin
      s.clamped <- s.clamped + 1;
      s.clock
    end
    else t
  in
  let seq = s.ctr in
  s.ctr <- seq + 1;
  let parent = if c >= 0 then s.running else Shardq.no_parent in
  let key = Shardq.key ~fire ~sched:s.clock ~src:s.id ~seq ~parent in
  if c >= 0 && c <> dst then s.xsends <- s.xsends + 1;
  if eng.jobs > 1 && c >= 0 && c <> dst then
    (* cross-shard send from inside an event: park in the outbox; the
       barrier merges it into [dst]'s heap before the next window *)
    s.outbox <- { o_dst = dst; o_key = key; o_fn = fn } :: s.outbox
  else push_local eng ~key ~own:dst fn

(* [at] without an explicit target: stay on the executing shard (the
   common case — timers, fiber resumptions, local protocol work).
   Host-side calls without a target land on shard 0. *)
let at eng t fn =
  let c = cur () in
  at_shard eng ~shard:(if c >= 0 then c else 0) t fn

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let limit_msg ~limit ~executed ~clock ~pending =
  Printf.sprintf
    "Sim.run: event limit exhausted (livelock?): limit=%d executed=%d clock=%d pending=%d"
    limit executed clock pending

(* jobs = 1: drain the canonical-global heap in key order. *)
let run_global eng ~limit =
  let n0 = executed eng in
  let rec go n =
    if n - n0 >= limit then
      failwith (limit_msg ~limit ~executed:n ~clock:(now eng) ~pending:(pending eng))
    else if Shardq.is_empty eng.g then n - n0
    else begin
      let fn = Shardq.pop_min eng.g in
      let s = eng.shards.(Shardq.popped_own eng.g) in
      let t = Shardq.popped_fire eng.g in
      if t > s.clock then s.clock <- t;
      s.executed <- s.executed + 1;
      s.running <- Shardq.popped_key eng.g;
      set_cur s.id;
      set_run_key s.running;
      (match eng.on_event with Some h -> h ~shard:s.id ~now:t | None -> ());
      (match fn () with
      | () ->
        s.running <- Shardq.no_parent;
        set_cur (-1)
      | exception e ->
        s.running <- Shardq.no_parent;
        set_cur (-1);
        raise e);
      go (n + 1)
    end
  in
  go n0

(* jobs >= 2: windowed execution on Domains.  Shard [i] is pinned to
   worker [i mod jobs] for the whole run so fiber continuations never
   migrate between domains mid-run. *)

(* Drain every event of [s] with [fire < wend].  [allow] bounds the
   number of events this one drain may execute (livelock guard: a shard
   stuck rescheduling itself inside one window would otherwise never
   reach the barrier). *)
let drain eng s ~wend ~allow =
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  (try
     let continue_ = ref true in
     while !continue_ do
       match Shardq.min_fire s.q with
       | Some f when f < wend ->
         if !n >= allow then
           failwith
             (limit_msg ~limit:allow ~executed:(s.executed) ~clock:s.clock
                ~pending:(Shardq.length s.q))
         else begin
           let fn = Shardq.pop_min s.q in
           let t = Shardq.popped_fire s.q in
           if t > s.clock then s.clock <- t;
           s.executed <- s.executed + 1;
           s.running <- Shardq.popped_key s.q;
           incr n;
           set_cur s.id;
           set_run_key s.running;
           (match eng.on_event with Some h -> h ~shard:s.id ~now:t | None -> ());
           fn ();
           s.running <- Shardq.no_parent;
           set_cur (-1)
         end
       | _ -> continue_ := false
     done
   with e ->
     s.running <- Shardq.no_parent;
     set_cur (-1);
     s.failure <- Some e);
  if !n = 0 then s.stalls <- s.stalls + 1;
  s.wall <- s.wall +. (Unix.gettimeofday () -. t0);
  !n

(* Merge every outbox message into its destination heap.  Runs on the
   coordinating domain while the workers are parked at the barrier.  A
   message firing before its destination's clock means the lookahead
   argument was violated (an engine or cost-model bug, not a program
   bug): it is counted as a clamp on the destination and, under strict
   mode, raised. *)
let flush_outboxes eng =
  Array.iter
    (fun s ->
      let msgs = s.outbox in
      s.outbox <- [];
      List.iter
        (fun o ->
          let d = eng.shards.(o.o_dst) in
          let key =
            if o.o_key.Shardq.k_fire < d.clock then begin
              d.clamped <- d.clamped + 1;
              if eng.strict then
                raise
                  (Late_delivery
                     { dst = d.id; fire = o.o_key.Shardq.k_fire; clock = d.clock });
              Shardq.refire o.o_key ~fire:d.clock
            end
            else o.o_key
          in
          Shardq.push d.q ~key ~own:o.o_dst o.o_fn;
          d.merges <- d.merges + 1;
          let len = Shardq.length d.q in
          if len > d.peak then d.peak <- len)
        msgs)
    eng.shards

let window_min eng =
  Array.fold_left
    (fun acc s ->
      match Shardq.min_fire s.q with
      | None -> acc
      | Some f -> ( match acc with None -> Some f | Some a -> Some (min a f)))
    None eng.shards

let run_windowed eng ~jobs ~limit =
  let nsh = eng.nshards in
  Array.iter (fun s -> s.failure <- None) eng.shards;
  let n0 = executed eng in
  (* barrier state, all under [mu] *)
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let epoch = ref 0 in
  let done_count = ref 0 in
  let wend = ref 0 in
  let allow = ref 0 in
  let stop = ref false in
  let drain_assigned w =
    let executed_here = ref 0 in
    let wendv = !wend and allowv = !allow in
    let i = ref w in
    while !i < nsh do
      let s = eng.shards.(!i) in
      if s.failure = None then
        executed_here := !executed_here + drain eng s ~wend:wendv ~allow:allowv;
      i := !i + jobs
    done;
    !executed_here
  in
  let worker w () =
    let my_epoch = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock mu;
      while !epoch = !my_epoch && not !stop do
        Condition.wait cv mu
      done;
      if !stop then begin
        Mutex.unlock mu;
        running := false
      end
      else begin
        my_epoch := !epoch;
        Mutex.unlock mu;
        ignore (drain_assigned w);
        Mutex.lock mu;
        incr done_count;
        Condition.broadcast cv;
        Mutex.unlock mu
      end
    done
  in
  let domains = Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1) ())) in
  let shutdown () =
    Mutex.lock mu;
    stop := true;
    Condition.broadcast cv;
    Mutex.unlock mu;
    Array.iter Domain.join domains
  in
  Fun.protect ~finally:shutdown (fun () ->
      let running = ref true in
      while !running do
        flush_outboxes eng;
        match window_min eng with
        | None -> running := false
        | Some t ->
          let total = executed eng - n0 in
          if total >= limit then
            failwith
              (limit_msg ~limit ~executed:(executed eng) ~clock:(now eng)
                 ~pending:(pending eng));
          (* open the window *)
          eng.windows <- eng.windows + 1;
          Mutex.lock mu;
          wend := t + eng.lookahead;
          allow := limit - total;
          incr epoch;
          done_count := 0;
          Condition.broadcast cv;
          Mutex.unlock mu;
          (* the coordinator is worker 0 *)
          ignore (drain_assigned 0);
          let b0 = Unix.gettimeofday () in
          Mutex.lock mu;
          while !done_count < jobs - 1 do
            Condition.wait cv mu
          done;
          Mutex.unlock mu;
          eng.barrier_wall <- eng.barrier_wall +. (Unix.gettimeofday () -. b0);
          (* deterministic failure propagation: every worker has
             stopped; report the lowest-numbered failing shard *)
          Array.iter
            (fun s -> match s.failure with Some e -> raise e | None -> ())
            eng.shards
      done);
  executed eng - n0

let run eng ?(limit = max_int) () =
  let jobs = max 1 (min eng.jobs eng.nshards) in
  if jobs = 1 then run_global eng ~limit else run_windowed eng ~jobs ~limit

(* Changing the job count switches which structure holds pending
   events; migrate anything queued (e.g. left behind by an aborted run)
   so nothing is stranded.  Keys are preserved, so order is too. *)
let set_jobs eng jobs =
  let jobs = max 1 (min jobs eng.nshards) in
  if jobs <> eng.jobs then begin
    let was_windowed = eng.jobs > 1 and now_windowed = jobs > 1 in
    eng.jobs <- jobs;
    let move src_q dst_q_of =
      while not (Shardq.is_empty src_q) do
        let fn = Shardq.pop_min src_q in
        Shardq.push
          (dst_q_of (Shardq.popped_own src_q))
          ~key:(Shardq.popped_key src_q) ~own:(Shardq.popped_own src_q) fn
      done
    in
    if was_windowed && not now_windowed then begin
      flush_outboxes eng;
      Array.iter (fun s -> move s.q (fun _ -> eng.g)) eng.shards
    end
    else if now_windowed && not was_windowed then
      move eng.g (fun own -> eng.shards.(own).q)
  end
