(** Fixed-size domain pool for embarrassingly parallel work.

    Each simulation in a sweep is self-contained, so the harness fans
    points out across OCaml 5 domains.  [map ~jobs f xs] behaves exactly
    like [List.map f xs] — results in input order, the exception of the
    lowest-index failing item re-raised — but evaluates up to [jobs]
    items concurrently.  [f] must not touch shared mutable state and
    must not print (defer output to the caller, which runs after the
    pool drains, to keep parallel runs byte-identical to sequential
    ones). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed on up to [jobs]
    domains.  [jobs <= 1] (or a singleton list) runs inline on the
    calling domain with no domain spawned. *)

val iter : jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter ~jobs f xs] runs [f] on every element, all effects completed
    when it returns. *)
