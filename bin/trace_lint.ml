(* Lint the observability exports against their own contracts.

   Validates, with the library's strict JSON parser (no external deps):

     trace_lint --chrome FILE    Chrome trace_event export (--trace)
     trace_lint --spans FILE     span dump, schema mgs-spans-1 (--spans)
     trace_lint --metrics FILE   metrics series, schema mgs-metrics-1
     trace_lint --bench FILE     perf baseline, schema mgs-perf-1
     trace_lint --latency N ...  lower-bound cross-shard handler starts

   Checks: the file is one well-formed JSON value, schemas match,
   timestamps are monotone, every span is balanced (t1 >= t0, parents
   precede children in the same transaction), and Chrome async
   begin/end and flow start/finish events pair up exactly.  Merged
   multi-shard traces get the genealogy-order invariants: 'X' slices
   appear in execution order (end = ts + dur globally nondecreasing),
   per-shard 'M'/'C' lane metadata is accepted, and with --latency N
   every handler span (label "h.*") that landed on a different SSMP
   than its parent must start at least N cycles after the parent
   opened — a cross-shard message cannot beat the LAN.  ADAPT slices
   (adaptive-coherence regime switches) must chain per page, walk only
   legal regime-lattice edges, and never land inside an invalidation
   epoch.  Any violation prints to stderr and the exit status is 1. *)

open Mgs_obs

let errors = ref 0

let errf file fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "trace_lint: %s: %s\n" file msg)
    fmt

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file file =
  match Json.parse (read_file file) with
  | Ok v -> Some v
  | Error e ->
    errf file "invalid JSON: %s" e;
    None

let num file what v =
  match Json.to_number v with
  | Some n -> n
  | None ->
    errf file "%s is not a number" what;
    nan

let get file what obj field =
  match Json.member field obj with
  | Some v -> v
  | None ->
    errf file "%s lacks field %S" what field;
    Json.Null

let get_num file what obj field = num file (what ^ "." ^ field) (get file what obj field)

let get_str file what obj field =
  match Json.to_string (get file what obj field) with
  | Some s -> s
  | None ->
    errf file "%s.%s is not a string" what field;
    ""

let check_schema file v expected =
  let got = get_str file "top-level object" v "schema" in
  if got <> expected then errf file "schema is %S, expected %S" got expected

let arr file what v =
  match Json.to_list v with
  | Some l -> l
  | None ->
    errf file "%s is not an array" what;
    []

(* --- Chrome trace_event ------------------------------------------- *)

let lint_chrome file =
  match parse_file file with
  | None -> ()
  | Some v ->
    let events = arr file "traceEvents" (get file "top-level object" v "traceEvents") in
    (* (cat, id) -> stack of open async 'b' ts; flow id -> start count *)
    let async : (string * int, float list ref) Hashtbl.t = Hashtbl.create 256 in
    let flow = Hashtbl.create 256 in
    (* Adaptive-coherence contract: ADAPT slices carry the old regime
       code in args.cost and the new one in args.words.  Per page, the
       transitions must chain (each old code equals the previous new
       code; the first event seen for a page seeds the chain, since a
       bounded ring may have evicted its earlier history), every step
       must be a legal lattice edge (0 <-> 1, 0 <-> 2: the specialised
       regimes only reach each other through the default), and none may
       land inside an invalidation epoch (between sv.epoch_start and
       sv.epoch_end for that vpn) — regime switches are epoch-boundary
       decisions. *)
    let in_epoch : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let regime : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let bump tbl key d =
      Hashtbl.replace tbl key (Option.value ~default:0 (Hashtbl.find_opt tbl key) + d)
    in
    (* Stream order is emission order, not timestamp order: a message
       posted now lands in the future (its slice ends at delivery), and
       deliveries are backdated (their slice starts at the post).  What
       IS guaranteed: every slice has nonnegative duration, every async
       pair ends at or after its begin, and — because the 'X' slices
       are written in merged genealogy order, which is execution order
       on every engine, and each slice's emission instant lies inside
       its [ts, ts+dur] interval — no slice may end before an
       earlier-emitted slice started. *)
    let max_ts = ref neg_infinity in
    List.iteri
      (fun i e ->
        let what = Printf.sprintf "traceEvents[%d]" i in
        let ph = get_str file what e "ph" in
        let name = get_str file what e "name" in
        if ph = "X" then begin
          let argv field =
            match Json.member "args" e with
            | Some a -> int_of_float (get_num file (what ^ ".args") a field)
            | None ->
              errf file "%s lacks args" what;
              -1
          in
          match name with
          | "sv.epoch_start" -> Hashtbl.replace in_epoch (argv "vpn") ()
          | "sv.epoch_end" -> Hashtbl.remove in_epoch (argv "vpn")
          | "ADAPT" ->
            let vpn = argv "vpn" in
            let old_r = argv "cost" and new_r = argv "words" in
            if old_r < 0 || old_r > 2 || new_r < 0 || new_r > 2 then
              errf file "%s ADAPT vpn=%d has regime codes %d -> %d outside 0..2" what vpn
                old_r new_r
            else begin
              if old_r = new_r then
                errf file "%s ADAPT vpn=%d is a self-transition (regime %d)" what vpn old_r;
              if old_r <> 0 && new_r <> 0 then
                errf file
                  "%s ADAPT vpn=%d steps %d -> %d directly between specialised \
                   regimes (not a lattice edge)"
                  what vpn old_r new_r
            end;
            (* The event ring is bounded, so an overflowed trace starts
               mid-run: the first ADAPT seen for a page establishes its
               regime (from the old code it carries) rather than being
               checked against the boot default. *)
            (match Hashtbl.find_opt regime vpn with
            | Some prev when old_r <> prev ->
              errf file "%s ADAPT vpn=%d leaves regime %d but the page was in %d" what vpn
                old_r prev
            | _ -> ());
            Hashtbl.replace regime vpn new_r;
            if Hashtbl.mem in_epoch vpn then
              errf file "%s ADAPT vpn=%d lands mid-epoch (inside sv.epoch_start/end)" what
                vpn
          | _ -> ()
        end;
        if ph = "M" then () (* per-shard lane metadata: no timestamp *)
        else begin
        let ts = get_num file what e "ts" in
        if ts < 0. then errf file "%s has negative ts %g" what ts;
        match ph with
        | "X" ->
          let dur = get_num file what e "dur" in
          if dur < 0. then errf file "%s has negative dur %g" what dur;
          if ts +. dur < !max_ts then
            errf file
              "%s ends at %g, before an earlier slice's start %g — the merged \
               stream is not in execution order"
              what (ts +. dur) !max_ts;
          if ts > !max_ts then max_ts := ts
        | "C" -> () (* per-shard engine counter lane *)
        | "b" ->
          let key = (get_str file what e "cat", int_of_float (get_num file what e "id")) in
          let stack =
            match Hashtbl.find_opt async key with
            | Some s -> s
            | None ->
              let s = ref [] in
              Hashtbl.add async key s;
              s
          in
          stack := ts :: !stack
        | "e" -> (
          let cat = get_str file what e "cat" in
          let id = int_of_float (get_num file what e "id") in
          match Hashtbl.find_opt async (cat, id) with
          | Some ({ contents = t0 :: rest } as stack) ->
            if ts < t0 then
              errf file "%s async end at %g before its begin at %g (cat=%S id=%d)" what
                ts t0 cat id;
            stack := rest
          | _ -> errf file "%s async end without a begin (cat=%S id=%d)" what cat id)
        | "s" | "f" ->
          let id = int_of_float (get_num file what e "id") in
          bump flow id (if ph = "s" then 1 else -1)
        | _ -> errf file "%s has unknown phase %S" what ph
        end)
      events;
    Hashtbl.iter
      (fun (cat, id) stack ->
        let n = List.length !stack in
        if n <> 0 then
          errf file "async events cat=%S id=%d unbalanced: %d begin(s) never ended" cat
            id n)
      async;
    Hashtbl.iter
      (fun id n ->
        if n <> 0 then errf file "flow id=%d unbalanced: %+d start/finish" id n)
      flow

(* --- span dump ----------------------------------------------------- *)

let lint_spans ?latency file =
  match parse_file file with
  | None -> ()
  | Some v ->
    check_schema file v "mgs-spans-1";
    if get_num file "top-level object" v "dropped" < 0. then
      errf file "negative dropped count";
    let spans = arr file "spans" (get file "top-level object" v "spans") in
    (* sid -> (txn, t0, ssmp), for the parent link and latency checks;
       sids are dense *)
    let info = Hashtbl.create 1024 in
    let last_sid = ref (-1) in
    List.iteri
      (fun i s ->
        let what = Printf.sprintf "spans[%d]" i in
        let sid = int_of_float (get_num file what s "sid") in
        let parent = int_of_float (get_num file what s "parent") in
        let txn = int_of_float (get_num file what s "txn") in
        let t0 = int_of_float (get_num file what s "t0") in
        let t1 = int_of_float (get_num file what s "t1") in
        let src_ssmp = int_of_float (get_num file what s "src_ssmp") in
        let dst_ssmp = int_of_float (get_num file what s "dst_ssmp") in
        let label = get_str file what s "label" in
        let ssmp = if dst_ssmp >= 0 then dst_ssmp else max src_ssmp 0 in
        ignore (get_str file what s "engine");
        if sid <= !last_sid then
          errf file "%s sid %d not increasing (previous %d)" what sid !last_sid;
        last_sid := sid;
        if t1 < 0 then errf file "%s (sid %d) never closed (t1=%d)" what sid t1
        else if t1 < t0 then errf file "%s (sid %d) ends before it starts: [%d,%d]" what sid t0 t1;
        if parent < -1 then errf file "%s has parent sid %d" what parent;
        if parent >= sid then
          errf file "%s parent %d does not precede child %d" what parent sid;
        (match Hashtbl.find_opt info parent with
        | Some (ptxn, _, _) when parent >= 0 && ptxn <> txn ->
          errf file "%s crosses transactions: parent %d has txn %d, child has %d" what
            parent ptxn txn
        | Some (_, pt0, pssmp) when parent >= 0 -> (
          (* A handler that landed on a different SSMP than its parent
             is causally downstream of at least one inter-SSMP message,
             so it cannot start sooner than one LAN traversal after the
             parent opened. *)
          match latency with
          | Some lat
            when String.length label > 2
                 && String.sub label 0 2 = "h."
                 && pssmp <> ssmp
                 && t0 < pt0 + lat ->
            errf file
              "%s (%s, sid %d) crossed shards %d -> %d but starts at %d, less than \
               parent t0 %d + lan latency %d"
              what label sid pssmp ssmp t0 pt0 lat
          | _ -> ())
        | None when parent >= 0 ->
          errf file "%s references missing parent sid %d" what parent
        | _ -> ());
        Hashtbl.replace info sid (txn, t0, ssmp))
      spans

(* --- metrics series ------------------------------------------------ *)

let lint_metrics file =
  match parse_file file with
  | None -> ()
  | Some v ->
    check_schema file v "mgs-metrics-1";
    let series = arr file "series" (get file "top-level object" v "series") in
    let ncols = List.length series in
    List.iteri
      (fun i s ->
        if Json.to_string s = None then errf file "series[%d] is not a string" i)
      series;
    let last_t = ref neg_infinity in
    List.iteri
      (fun i row ->
        let what = Printf.sprintf "samples[%d]" i in
        match Json.to_list row with
        | None -> errf file "%s is not an array" what
        | Some cells ->
          if List.length cells <> ncols + 1 then
            errf file "%s has %d cells, expected %d (time + %d series)" what
              (List.length cells) (ncols + 1) ncols;
          (match cells with
          | t :: _ ->
            let t = num file (what ^ " time") t in
            if t < !last_t then
              errf file "%s time %g not monotone (previous %g)" what t !last_t;
            last_t := t
          | [] -> errf file "%s is empty" what))
      (arr file "samples" (get file "top-level object" v "samples"));
    List.iteri
      (fun i h ->
        let what = Printf.sprintf "histograms[%d]" i in
        ignore (get_str file what h "name");
        if get_num file what h "count" < 0. then errf file "%s has negative count" what)
      (arr file "histograms" (get file "top-level object" v "histograms"))

(* --- perf baseline (bench/perf.ml output) --------------------------- *)

let lint_bench file =
  match parse_file file with
  | None -> ()
  | Some v ->
    check_schema file v "mgs-perf-1";
    List.iteri
      (fun i r ->
        let what = Printf.sprintf "rows[%d]" i in
        ignore (get_str file what r "app");
        List.iter
          (fun field ->
            let n = get_num file what r field in
            if n < 0. then errf file "%s.%s is negative" what field)
          [ "nprocs"; "cluster"; "wall_s"; "sim_events"; "sim_cycles"; "events_per_s" ])
      (arr file "rows" (get file "top-level object" v "rows"))

let usage () =
  prerr_endline
    "usage: trace_lint [--latency N] [--chrome FILE | --spans FILE | --metrics FILE | \
     --bench FILE]...";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then usage ();
  let nfiles = ref 0 in
  let latency = ref None in
  let rec go = function
    | [] -> ()
    | "--latency" :: n :: rest ->
      (match int_of_string_opt n with
      | Some lat when lat >= 0 -> latency := Some lat
      | _ -> usage ());
      go rest
    | flag :: file :: rest ->
      incr nfiles;
      (try
         (match flag with
         | "--chrome" -> lint_chrome file
         | "--spans" -> lint_spans ?latency:!latency file
         | "--metrics" -> lint_metrics file
         | "--bench" -> lint_bench file
         | _ -> usage ())
       with Sys_error msg -> errf file "cannot read: %s" msg);
      go rest
    | [ _ ] -> usage ()
  in
  go args;
  if !errors > 0 then begin
    Printf.eprintf "trace_lint: %d error%s in %d file%s\n" !errors
      (if !errors = 1 then "" else "s")
      !nfiles
      (if !nfiles = 1 then "" else "s");
    exit 1
  end
  else Printf.printf "trace_lint: OK (%d file%s)\n" !nfiles (if !nfiles = 1 then "" else "s")
