(** External (inter-SSMP) network model.

    The paper emulates a LAN on Alewife by queueing outgoing inter-SSMP
    messages at the sending processor and delivering them after a fixed
    latency (section 4.2.2); neither LAN contention nor interface
    contention is modelled.  We reproduce exactly that: each SSMP has a
    sender whose occupancy serialises its outgoing messages, and every
    message is delivered [latency] cycles after it leaves the queue.
    Bulk data adds DMA time proportional to its size. *)

type t

type stats = {
  mutable messages : int;  (** inter-SSMP messages delivered *)
  mutable data_words : int;  (** bulk payload words carried *)
}

val create : Mgs_engine.Sim.t -> Mgs_machine.Costs.t -> nssmps:int -> t

val send :
  t -> src:int -> dst:int -> at:Mgs_engine.Sim.time -> words:int -> (Mgs_engine.Sim.time -> unit) -> unit
(** [send lan ~src ~dst ~at ~words k] transmits a message carrying
    [words] words of bulk data from SSMP [src] (leaving no earlier than
    [at]) to SSMP [dst]; [k] runs at the delivery time.  [src = dst] is
    permitted and models a local protocol message: it bypasses the LAN
    and costs only the intra-SSMP message latency. *)

val stats : t -> stats

val set_obs : t -> Mgs_obs.Trace.t option -> unit
(** Install (or remove) an event trace: every inter-SSMP transfer emits
    a ["LAN"] event carrying the SSMP endpoints, payload size, and
    queueing + transfer latency. *)

val reset_stats : t -> unit
(** Zero the message/word counters only.  The sender-occupancy horizons
    and per-channel FIFO watermarks survive, so timing is unaffected —
    use {!reset} when starting a measured phase. *)

val reset : t -> unit
(** Full reset between measured phases: counters, sender-occupancy
    horizons, and FIFO watermarks.  After a reset the first message of
    the next phase departs as if the network were idle, so warmup
    traffic cannot skew measured occupancy or ordering. *)
