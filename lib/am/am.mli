(** Active messages.

    MGS protocol engines communicate exclusively through active
    messages: a message names a destination processor and runs a handler
    there on arrival (section 4.2.3).  The handler occupies the
    destination processor — pushing its {!Mgs_machine.Cpu.busy_until}
    horizon forward and charging the MGS bucket — which is how protocol
    processing dilates application progress on that processor.

    Transport goes through {!Mgs_net.Lan}: inter-SSMP messages pay the
    LAN latency and sender occupancy; intra-SSMP messages use the fast
    path.  Bulk (page/diff) payloads add DMA latency but no per-word
    processor occupancy, as on Alewife. *)

type t

val create :
  Mgs_engine.Sim.t ->
  Mgs_machine.Costs.t ->
  Mgs_machine.Topology.t ->
  lan:Mgs_net.Lan.t ->
  cpus:Mgs_machine.Cpu.t array ->
  t

val post :
  t ->
  tag:string ->
  src:int ->
  dst:int ->
  words:int ->
  cost:int ->
  (Mgs_engine.Sim.time -> unit) ->
  unit
(** [post am ~src ~dst ~words ~cost k] sends a message from processor
    [src] to processor [dst], carrying [words] bulk words, whose handler
    consumes [handler_dispatch + cost] cycles of [dst]'s time.  [k] runs
    when the handler completes, at the completion time.  [tag] labels
    the message for the per-type counters. *)

val run_on :
  t ->
  ?tag:string ->
  proc:int ->
  at:Mgs_engine.Sim.time ->
  cost:int ->
  (Mgs_engine.Sim.time -> unit) ->
  unit
(** [run_on am ~proc ~at ~cost k] charges [cost] cycles of occupancy on
    [proc] starting no earlier than [at] and runs [k] at completion —
    protocol work not triggered by a message (e.g. a continuation after
    a lock handoff).  When [tag] is given and an event trace is
    installed, the occupancy slice is recorded under that tag. *)

val set_recorder : t -> (Mgs_engine.Sim.time -> Mgs_net.Envelope.t -> unit) option -> unit
(** Install (or remove) a callback invoked at every message delivery
    with the delivered {!Mgs_net.Envelope.t} — the hook behind trace
    dumps.  The callback must not post messages. *)

val recording : t -> bool
(** Whether a delivery recorder is installed.  Recorders observe every
    shard's deliveries through one callback, so {!Machine.run} forces a
    sharded run down to one domain while one is installed. *)

val set_obs : t -> Mgs_obs.Trace.t option -> unit
(** Install (or remove) an event trace: every delivered message emits a
    structured {!Mgs_obs.Event.t} (tag, endpoints, payload size, handler
    cost, transport latency) into it.  [None] disables with no residual
    cost on the delivery path. *)

val count : t -> string -> int
(** Messages posted so far with the given tag. *)

val counts : t -> (string * int) list
(** All (tag, count) pairs, sorted by tag. *)

val total_posted : t -> int

val in_flight : t -> int
(** Messages posted whose handler has not yet been dispatched — the
    network-occupancy gauge the metrics sampler reads. *)

val in_flight_cell : t -> int -> int
(** One SSMP's in-flight cell (posted from it minus delivered to it;
    may be negative in isolation — only the sum is meaningful).  Safe
    to read from that shard's own event context. *)

val reset_counts : t -> unit
(** Zero the per-tag and total message counters (e.g. after a warmup
    phase, so a measured phase reports only its own traffic). *)
