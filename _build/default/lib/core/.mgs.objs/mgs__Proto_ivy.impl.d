lib/core/proto_ivy.ml: Am Array Bitset Coherence Cpu Geom Hashtbl List Mgs_engine Mlock Option Pagedata Sim State Tlb Topology
