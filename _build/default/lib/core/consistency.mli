(** Protocol-independent hooks the synchronization library calls at
    release and acquire points.

    - MGS: a release flushes the delayed update queue eagerly (the
      invalidation epochs make acquires free);
    - HLRC: a release flushes diffs home and publishes write notices
      into the synchronization object; an acquire applies the incoming
      notices (lazy invalidation);
    - Ivy: sequential consistency needs neither. *)

val at_release : State.t -> proc:int -> notices:(int, int) Hashtbl.t -> unit
(** Called before a lock is handed over / a barrier combine is sent.
    Fiber context. *)

val at_acquire : State.t -> proc:int -> notices:(int, int) Hashtbl.t -> unit
(** Called after a lock is obtained / a barrier releases.  Fiber
    context. *)
