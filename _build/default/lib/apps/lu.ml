type params = { n : int; flop_cycles : int; seed : int }

let default = { n = 48; flop_cycles = 40; seed = 29 }

let tiny = { n = 10; flop_cycles = 40; seed = 13 }

let problem_size p = Printf.sprintf "%dx%d matrix" p.n p.n

(* Diagonally dominant input so elimination needs no pivoting. *)
let initial p =
  let rng = Mgs_util.Rng.create ~seed:p.seed in
  Array.init (p.n * p.n) (fun idx ->
      let i = idx / p.n and j = idx mod p.n in
      let v = Mgs_util.Rng.float rng 1.0 in
      if i = j then v +. float_of_int p.n else v)

(* In-place elimination storing L (below the diagonal, unit implied)
   and U (on and above); the parallel version performs the identical
   operations in the identical order per element. *)
let seq_reference p =
  let n = p.n in
  let a = initial p in
  for k = 0 to n - 2 do
    for i = k + 1 to n - 1 do
      let m = a.((i * n) + k) /. a.((k * n) + k) in
      a.((i * n) + k) <- m;
      for j = k + 1 to n - 1 do
        a.((i * n) + j) <- a.((i * n) + j) -. (m *. a.((k * n) + j))
      done
    done
  done;
  a

let workload p =
  let n = p.n in
  let prepare m =
    let ma = Mgs.Machine.alloc m ~words:(n * n) ~home:Mgs_mem.Allocator.Interleaved in
    Array.iteri (fun i v -> Mgs.Machine.poke m (ma + i) v) (initial p);
    let bar = Mgs_sync.Barrier.create m in
    let body ctx =
      let open Mgs.Api in
      let nprocs = nprocs ctx in
      let me = proc ctx in
      (* rows are distributed cyclically: row i belongs to i mod P *)
      for k = 0 to n - 2 do
        (* everyone waits for the pivot row to be published *)
        Mgs_sync.Barrier.wait ctx bar;
        let pivot = read ctx (ma + (k * n) + k) in
        for i = k + 1 to n - 1 do
          if i mod nprocs = me then begin
            let mult = read ctx (ma + (i * n) + k) /. pivot in
            compute ctx p.flop_cycles;
            write ctx (ma + (i * n) + k) mult;
            for j = k + 1 to n - 1 do
              let akj = read ctx (ma + (k * n) + j) in
              let aij = read ctx (ma + (i * n) + j) in
              compute ctx p.flop_cycles;
              write ctx (ma + (i * n) + j) (aij -. (mult *. akj))
            done
          end
        done
      done;
      Mgs_sync.Barrier.wait ctx bar
    in
    let check m =
      let expect = seq_reference p in
      for idx = 0 to (n * n) - 1 do
        let got = Mgs.Machine.peek m (ma + idx) in
        if got <> expect.(idx) then
          failwith
            (Printf.sprintf "lu mismatch at (%d,%d): got %.17g want %.17g" (idx / n)
               (idx mod n) got expect.(idx))
      done
    in
    (body, check)
  in
  { Mgs_harness.Sweep.name = "LU"; prepare }
