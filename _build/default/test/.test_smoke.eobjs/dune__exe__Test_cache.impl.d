test/test_cache.ml: Alcotest Hashtbl List Mgs_cache Mgs_machine Mgs_mem QCheck2 QCheck_alcotest
