(** The per-mapping shared-memory lock of the MGS Local Client (column
    "L" of Table 1), also used for the per-SSMP delayed update queue.

    Two kinds of owner coexist: application fibers, which block
    ({!acquire_fiber}), and protocol handlers, which must never block —
    they test the lock and queue a continuation if it is busy
    ({!acquire_k}), exactly as the paper's footnote 2 prescribes.
    Release hands the lock to the oldest waiter (fiber or handler)
    without a free window, so ownership transfers are FIFO and
    deterministic. *)

type t

val create : unit -> t

val held : t -> bool

val acquire_fiber : Mgs_engine.Sim.t -> t -> bool
(** Take the lock, parking the calling fiber until granted.  Returns
    [true] iff the fiber actually parked (so the caller knows whether to
    charge wait time). *)

val acquire_k : Mgs_engine.Sim.t -> t -> (unit -> unit) -> unit
(** [acquire_k sim l k] runs [k] with the lock held — immediately if it
    is free, otherwise when ownership is handed over. *)

val release : Mgs_engine.Sim.t -> t -> unit
(** Hand the lock to the next waiter, or mark it free.
    @raise Invalid_argument if not held. *)
