lib/core/state.ml: Array Hashtbl Mgs_am Mgs_cache Mgs_engine Mgs_machine Mgs_mem Mgs_net Mgs_obs Mgs_svm Mgs_util Mlock Printf Pstats Queue Sys
