(** Imperative min-priority queue specialised for discrete-event
    simulation.

    Keys are [(priority, seq)] pairs ordered lexicographically; the caller
    supplies a monotonically increasing sequence number to break ties
    deterministically (events scheduled first fire first).  Implemented as
    a pairing heap, giving O(1) insert and amortised O(log n) extraction. *)

type 'a t
(** Mutable priority queue holding elements of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty queue. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [true] iff [q] holds no element. *)

val length : 'a t -> int
(** [length q] is the number of queued elements. *)

val push : 'a t -> prio:int -> seq:int -> 'a -> unit
(** [push q ~prio ~seq x] inserts [x] with key [(prio, seq)]. *)

val min_prio : 'a t -> int option
(** [min_prio q] is the priority of the minimum element, if any. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop q] removes and returns the minimum element as
    [(prio, seq, value)], or [None] when [q] is empty. *)

val clear : 'a t -> unit
(** [clear q] removes every element. *)
