lib/core/proto_ivy.mli: State
