lib/harness/micro.mli: Mgs_machine
