(* Binary min-heap over canonical genealogy keys.

   The sharded engine orders every event by the key
   [(fire, sched, src, seq, parent)]:

   - [fire]   absolute simulated time the event runs at;
   - [sched]  the scheduling shard's clock when the event was created
     (events created at an earlier clock were inserted earlier in the
     sequential engine, so they win fire-time ties);
   - [src]    the scheduling shard's id;
   - [seq]    the scheduling shard's private counter (program order
     within one shard — the common, O(1) tie-break);
   - [parent] the key of the event that created this one.  When two
     events tie on [(fire, sched)] but come from different shards, the
     sequential engine orders them by which creator popped first; the
     creators' keys encode exactly that, so the tie recurses into them.
     The recursion terminates: creators fired strictly earlier or were
     host-scheduled roots, which carry the [no_parent] sentinel and
     sort before execution-created peers (the sequential insertion
     counter gives pre-run insertions the smallest values).

   Keys are immutable records sharing parent tails, so a fiber's event
   chain costs one small record per event and dies with its pending
   descendants. *)

type key = {
  k_fire : int;
  k_sched : int;
  k_src : int;
  k_seq : int;
  k_parent : key; (* physically [no_parent] for roots *)
}

let rec no_parent =
  { k_fire = min_int; k_sched = min_int; k_src = -1; k_seq = -1; k_parent = no_parent }

let key ~fire ~sched ~src ~seq ~parent =
  { k_fire = fire; k_sched = sched; k_src = src; k_seq = seq; k_parent = parent }

let refire k ~fire = { k with k_fire = fire }

let rec cmp_key a b =
  if a == b then 0
  else
    let c = compare a.k_fire b.k_fire in
    if c <> 0 then c
    else
      let c = compare a.k_sched b.k_sched in
      if c <> 0 then c
      else if a.k_src = b.k_src then compare a.k_seq b.k_seq
      else if a.k_parent == no_parent then
        if b.k_parent == no_parent then compare a.k_src b.k_src else -1
      else if b.k_parent == no_parent then 1
      else
        let c = cmp_key a.k_parent b.k_parent in
        if c <> 0 then c
        else
          (* distinct events from different shards always have distinct
             creators, so this is unreachable; keep the order total. *)
          let c = compare a.k_src b.k_src in
          if c <> 0 then c else compare a.k_seq b.k_seq

type t = {
  mutable keys : key array;
  mutable own : int array; (* shard that will execute the event *)
  mutable fn : (unit -> unit) array;
  mutable n : int;
  mutable popped_key : key;
  mutable popped_own : int;
}

let nop () = ()

let create () =
  let cap = 64 in
  {
    keys = Array.make cap no_parent;
    own = Array.make cap 0;
    fn = Array.make cap nop;
    n = 0;
    popped_key = no_parent;
    popped_own = -1;
  }

let length q = q.n

let is_empty q = q.n = 0

let min_fire q = if q.n = 0 then None else Some q.keys.(0).k_fire

(* strict key order: element [i] fires before element [j] *)
let less q i j = cmp_key q.keys.(i) q.keys.(j) < 0

let swap q i j =
  let t = q.keys.(i) in
  q.keys.(i) <- q.keys.(j);
  q.keys.(j) <- t;
  let t = q.own.(i) in
  q.own.(i) <- q.own.(j);
  q.own.(j) <- t;
  let t = q.fn.(i) in
  q.fn.(i) <- q.fn.(j);
  q.fn.(j) <- t

let grow q =
  let cap = Array.length q.keys in
  let ncap = cap * 2 in
  let keys = Array.make ncap no_parent in
  Array.blit q.keys 0 keys 0 cap;
  q.keys <- keys;
  let own = Array.make ncap 0 in
  Array.blit q.own 0 own 0 cap;
  q.own <- own;
  let fn = Array.make ncap nop in
  Array.blit q.fn 0 fn 0 cap;
  q.fn <- fn

let rec sift_up q i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if less q i p then begin
      swap q i p;
      sift_up q p
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 in
  if l < q.n then begin
    let r = l + 1 in
    let s = if r < q.n && less q r l then r else l in
    if less q s i then begin
      swap q i s;
      sift_down q s
    end
  end

let push q ~key ~own fn =
  if q.n = Array.length q.keys then grow q;
  let i = q.n in
  q.keys.(i) <- key;
  q.own.(i) <- own;
  q.fn.(i) <- fn;
  q.n <- i + 1;
  sift_up q i

exception Empty_queue

let pop_min q =
  if q.n = 0 then raise Empty_queue;
  let f = q.fn.(0) in
  q.popped_key <- q.keys.(0);
  q.popped_own <- q.own.(0);
  let last = q.n - 1 in
  if last > 0 then begin
    q.keys.(0) <- q.keys.(last);
    q.own.(0) <- q.own.(last);
    q.fn.(0) <- q.fn.(last)
  end;
  q.keys.(last) <- no_parent;
  q.fn.(last) <- nop;
  q.n <- last;
  if last > 0 then sift_down q 0;
  f

let popped_key q = q.popped_key

let popped_fire q = q.popped_key.k_fire

let popped_own q = q.popped_own

let clear q =
  Array.fill q.keys 0 q.n no_parent;
  Array.fill q.fn 0 q.n nop;
  q.n <- 0
