(* Table 3 calibration: every primitive-operation cost measured on the
   simulator must land close to the paper's measurement.  Hardware and
   translation costs are exact by construction; the emergent software
   protocol costs must be within 10%. *)

let check_tolerance name paper measured tol =
  let ratio = float_of_int measured /. float_of_int paper in
  if ratio < 1. -. tol || ratio > 1. +. tol then
    Alcotest.failf "%s: paper %d, measured %d (ratio %.3f beyond +/-%.0f%%)" name paper
      measured ratio (100. *. tol)

let test_table3 () =
  let ms = Mgs_harness.Micro.run_all () in
  Mgs_harness.Micro.print_table ms;
  List.iter
    (fun m ->
      let open Mgs_harness.Micro in
      let tol = if m.group = "Software Shared Memory" then 0.10 else 0.001 in
      check_tolerance m.name m.paper m.measured tol)
    ms

let () =
  Alcotest.run "micro"
    [ ("table3", [ Alcotest.test_case "primitive costs match Table 3" `Quick test_table3 ]) ]
