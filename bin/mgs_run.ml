(* Command-line driver: run any of the paper's applications on any
   DSSMP configuration, either a single point or a full cluster-size
   sweep (the paper's framework).

     mgs_run --app water --procs 32 --cluster 8
     mgs_run --app tsp --procs 16 --sweep
     mgs_run --app water --procs 32 --sweep -j 4   # points on 4 domains
     mgs_run --app barnes --size 64 --iters 1 --delay 2000 --sweep *)

open Cmdliner

(* All workload selection goes through the Mgs_harness.Workload
   registry; Workloads.ensure forces the registering module to link. *)
let () = Mgs_apps.Workloads.ensure ()

(* Resolve the workload and build its arguments, turning registry
   errors (unknown workload, unknown or malformed parameter) into CLI
   errors that list the accepted names. *)
let workload ~app ~size ~iters ~lock ~params =
  let cli_err msg =
    Printf.eprintf "mgs_run: %s\n%!" msg;
    exit 2
  in
  let (module W : Mgs_harness.Workload.WORKLOAD) =
    try Mgs_harness.Workload.of_name app with Invalid_argument msg -> cli_err msg
  in
  let extra =
    List.map
      (fun s ->
        try Mgs_harness.Workload.parse_kv s with Invalid_argument msg -> cli_err msg)
      params
  in
  (* --lock defaults to "token" for every app; only an explicit
     non-default selection is pushed through the registry, so apps
     without a lock knob keep accepting the default silently. *)
  let args =
    {
      Mgs_harness.Workload.size;
      iters;
      lock = (if lock = "token" then None else Some lock);
      extra;
    }
  in
  match (W.instantiate args, W.problem_size args) with
  | w, desc -> (w, desc, W.epilogue)
  | exception Invalid_argument msg -> cli_err msg

(* In sweep mode each cluster size gets its own export file:
   out.json -> out.c1.json, out.c2.json, ... *)
let trace_file base ~sweep ~cluster =
  if not sweep then base
  else
    let stem, ext =
      match Filename.extension base with
      | "" -> (base, ".json")
      | ext -> (Filename.remove_extension base, ext)
    in
    Printf.sprintf "%s.c%d%s" stem cluster ext

exception Trace_write_error of string

let with_out file f =
  let oc = try open_out file with Sys_error msg -> raise (Trace_write_error msg) in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let run app size iters params procs cluster delay page_bytes protocol lock faults seed
    sweep jobs par adapt no_verify trace spans metrics hist check csv engine_stats =
  let w, size_desc, epilogue = workload ~app ~size ~iters ~lock ~params in
  let page_words = page_bytes / Mgs_mem.Geom.bytes_per_word in
  let verify = not no_verify in
  (* zero inter-SSMP latency leaves the sharded engine no lookahead
     window; fall back to the sequential engine rather than refuse *)
  if par > 0 && delay < 1 then
    Printf.eprintf "mgs_run: --par ignored: --delay %d leaves no lookahead window\n%!" delay;
  let par = if delay < 1 then 0 else par in
  (* surface the Machine.config adapt/protocol incompatibility as a CLI
     error instead of an uncaught exception *)
  if adapt && protocol = "ivy" then begin
    Printf.eprintf
      "mgs_run: --adapt is not supported by protocol \"ivy\": none of the adaptive \
       regimes (single-writer, invalidate-on-read) applies to it; use mgs or hlrc\n%!";
    exit 2
  end;
  let fault_spec =
    match faults with
    | Some spec when not (Mgs_net.Fault.is_zero spec) -> Some spec
    | _ -> None
  in
  Printf.printf "app=%s (%s)  P=%d  delay=%d cycles  page=%dB  protocol=%s%s%s\n%!" app
    size_desc procs delay page_bytes protocol
    (if adapt then "  adapt=on" else "")
    (if lock = "token" then "" else Printf.sprintf "  lock=%s" lock);
  (match fault_spec with
  | Some spec ->
    Printf.printf "faults: %s  seed=%d\n%!" (Mgs_net.Fault.to_string spec) seed
  | None -> ());
  (* A point may run on a helper domain (--sweep -j N), so it never
     prints directly: per-point output is buffered and emitted in
     cluster order afterwards, making -j N output identical to -j 1. *)
  let run_one cluster =
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    let cfg =
      Mgs.Machine.config ~page_words ~lan_latency:delay ~par_jobs:par ~adapt
        ~protocol:(Mgs.Protocol.proto_of_name protocol) ~nprocs:procs ~cluster ()
    in
    let m = Mgs.Machine.create cfg in
    if trace <> None || hist || spans <> None then ignore (Mgs.Machine.enable_trace m);
    if metrics <> None then ignore (Mgs.Machine.enable_metrics m);
    if engine_stats then ignore (Mgs.Machine.enable_engine_stats m);
    let checker = if check then Some (Mgs.Machine.enable_checker m) else None in
    (match fault_spec with
    | Some spec -> Mgs.Machine.set_faults m ~seed spec
    | None -> ());
    let body, wcheck = w.Mgs_harness.Sweep.prepare m in
    let report = Mgs.Machine.run m body in
    if verify && Mgs.Report.completed report then begin
      Mgs.Machine.assert_quiescent m;
      wcheck m
    end;
    (match fault_spec with
    | Some _ ->
      let s = Mgs_net.Lan.stats m.Mgs.State.lan in
      Format.fprintf ppf "net: retries=%d dups=%d timeouts=%d acks=%d@."
        s.Mgs_net.Lan.retransmits s.Mgs_net.Lan.dup_drops s.Mgs_net.Lan.timeouts
        s.Mgs_net.Lan.acks
    | None -> ());
    (match (trace, Mgs.Machine.trace m) with
    | Some base, Some tr ->
      let file = trace_file base ~sweep ~cluster in
      with_out file (fun oc -> Mgs_obs.Trace.write_chrome tr oc);
      Format.fprintf ppf "trace: %d events (%d dropped) -> %s@." (Mgs_obs.Trace.emitted tr)
        (Mgs_obs.Trace.dropped tr) file
    | _ -> ());
    (* A lossy ring makes any downstream decomposition suspect: warn
       loudly on every traced run, not just under --hist. *)
    (match Mgs.Machine.trace m with
    | Some tr -> Format.fprintf ppf "%a" Mgs_obs.Trace.pp_overflow_warning tr
    | None -> ());
    let breakdown =
      match (spans, Mgs.Machine.trace m) with
      | Some base, Some tr ->
        let sp = Mgs_obs.Trace.spans tr in
        let file = trace_file base ~sweep ~cluster in
        with_out file (fun oc -> Mgs_obs.Span.write_json sp oc);
        Format.fprintf ppf "spans: %d in %d transactions (%d dropped) -> %s@."
          (Mgs_obs.Span.count sp) (Mgs_obs.Span.txns sp) (Mgs_obs.Span.dropped sp) file;
        Some (Mgs_obs.Span.fault_breakdown sp)
      | _ -> None
    in
    (match (metrics, Mgs.Machine.metrics m) with
    | Some base, Some mt ->
      let file = trace_file base ~sweep ~cluster in
      let write_fn =
        if Filename.extension file = ".csv" then Mgs_obs.Metrics.write_csv
        else Mgs_obs.Metrics.write_json
      in
      with_out file (fun oc -> write_fn mt oc);
      Format.fprintf ppf "metrics: %d samples x %d series (%d dropped) -> %s@."
        (Mgs_obs.Metrics.sample_count mt)
        (List.length (Mgs_obs.Metrics.columns mt))
        (Mgs_obs.Metrics.dropped mt) file
    | _ -> ());
    if engine_stats then
      Format.fprintf ppf "%s" (Mgs_harness.Figures.pp_shard_table m.Mgs.State.sim);
    (match Mgs.Machine.trace m with
    | Some tr when hist ->
      Format.fprintf ppf "%a@." Mgs_obs.Trace.pp_summary tr;
      (* only the simulation-deterministic part of the throughput stats:
         host wall time would break the -j N = -j 1 output guarantee *)
      Format.fprintf ppf "throughput: events=%d peak_queue=%d@."
        report.Mgs.Report.sim_events report.Mgs.Report.peak_queue
    | _ -> ());
    (* workload-specific post-run report (e.g. the KV tier's
       tail-latency table), rendered from the machine's observability
       state into the per-point buffer so -j N output stays identical *)
    Format.fprintf ppf "%s" (epilogue m);
    let violations =
      match checker with
      | Some c ->
        Mgs.Invariant.finish c;
        Format.fprintf ppf "%a@?" Mgs.Invariant.pp c;
        Mgs.Invariant.count c
      | None -> 0
    in
    Format.pp_print_flush ppf ();
    ( {
        Mgs_harness.Sweep.cluster;
        report;
        lock_hit_ratio = Mgs.Report.lock_hit_ratio report;
      },
      Buffer.contents buf,
      violations,
      breakdown )
  in
  let violations = ref 0 in
  let partitioned = ref false in
  let note_outcome p =
    if not (Mgs.Report.completed p.Mgs_harness.Sweep.report) then partitioned := true
  in
  (try
     if sweep then begin
       let results =
         Mgs_util.Dpool.map ~jobs run_one (Mgs_harness.Sweep.clusters_of procs)
       in
       List.iter
         (fun (_, out, v, _) ->
           print_string out;
           violations := !violations + v)
         results;
       let points = List.map (fun (p, _, _, _) -> p) results in
       List.iter note_outcome points;
       if csv then print_string (Mgs_harness.Figures.csv_of_sweep ~name:app points)
       else
         print_string
           (Mgs_harness.Figures.breakdown_figure
              ~title:(Printf.sprintf "%s, P = %d" app procs)
              points);
       let latency_rows =
         List.filter_map
           (fun (p, _, _, b) ->
             Option.map (fun b -> (p.Mgs_harness.Sweep.cluster, b)) b)
           results
       in
       if latency_rows <> [] then
         print_string (Mgs_harness.Figures.fault_latency latency_rows)
     end
     else begin
       let cluster = Option.value ~default:procs cluster in
       let p, out, v, b = run_one cluster in
       print_string out;
       violations := v;
       note_outcome p;
       Format.printf "%a@." Mgs.Report.pp p.Mgs_harness.Sweep.report;
       Format.printf "lock hit ratio: %.3f@." p.Mgs_harness.Sweep.lock_hit_ratio;
       match b with
       | Some b -> print_string (Mgs_harness.Figures.fault_latency [ (cluster, b) ])
       | None -> ()
     end
   with Trace_write_error msg ->
     Printf.eprintf "mgs_run: cannot write trace: %s\n%!" msg;
     exit 2);
  if verify && not !partitioned then print_endline "verification: OK";
  if !violations > 0 then exit 3;
  if !partitioned then exit 4

let app_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "app"; "a" ] ~docv:"APP"
        ~doc:
          (Printf.sprintf "Workload to run (from the workload registry): %s."
             (String.concat ", " (Mgs_harness.Workload.names ()))))

let size_t =
  Arg.(value & opt (some int) None & info [ "size"; "n" ] ~docv:"N" ~doc:"Problem size.")

let iters_t =
  Arg.(value & opt (some int) None & info [ "iters"; "i" ] ~docv:"I" ~doc:"Iterations.")

let params_t =
  Arg.(
    value & opt_all string []
    & info [ "param" ] ~docv:"KEY=VALUE"
        ~doc:
          "Workload-specific parameter (repeatable), validated against the workload's \
           published spec — an unknown key is an error naming the accepted ones.  \
           E.g. $(b,--app kv --param theta=1.2 --param put=50).")

let procs_t =
  Arg.(value & opt int 32 & info [ "procs"; "p" ] ~docv:"P" ~doc:"Total processors.")

let cluster_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "cluster"; "c" ] ~docv:"C" ~doc:"Processors per SSMP (default: P).")

let delay_t =
  Arg.(
    value & opt int 1000
    & info [ "delay"; "d" ] ~docv:"CYCLES" ~doc:"Inter-SSMP message latency.")

let page_t =
  Arg.(value & opt int 1024 & info [ "page-bytes" ] ~docv:"B" ~doc:"Page size in bytes.")

let protocol_t =
  let names = Mgs.Protocol.names () in
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) names)) "mgs"
    & info [ "protocol" ] ~docv:"PROTO"
        ~doc:(Printf.sprintf "Inter-SSMP protocol: %s." (String.concat ", " names)))

let lock_t =
  let names = Mgs_sync.Locks.names () in
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) names)) "token"
    & info [ "lock" ] ~docv:"LOCK"
        ~doc:
          (Printf.sprintf
             "Lock algorithm for the workloads with a lock knob (tsp, water, barnes, \
              kv): %s."
             (String.concat ", " names)))

let faults_t =
  let spec_conv =
    let parse s =
      match Mgs_net.Fault.of_string s with
      | spec -> Ok spec
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    let print ppf spec = Format.pp_print_string ppf (Mgs_net.Fault.to_string spec) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some spec_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Inject deterministic network faults on the inter-SSMP LAN.  $(docv) is a \
           comma-separated list, e.g. \
           $(b,drop=0.05,dup=0.05,delay=0.1:2000,reorder=0.05,slow=1:2.0,retries=10); \
           $(b,none) disables injection.  Handlers remain exactly-once: the reliable \
           transport retries lost messages and a run that exhausts retries reports a \
           PARTITIONED outcome (exit status 4).")

let seed_t =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Fault-injection RNG seed (with $(b,--faults)).  Runs with the same seed and \
           spec are fully deterministic.")

let sweep_t =
  Arg.(value & flag & info [ "sweep"; "s" ] ~doc:"Sweep cluster sizes 1..P (powers of two).")

let jobs_t =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run up to $(docv) sweep points concurrently on separate domains.  \
           Output is identical to a sequential run.")

let par_t =
  Arg.(
    value & opt int 0
    & info [ "par" ] ~docv:"N"
        ~doc:
          "Run each point on the sharded event engine: one event partition per SSMP, \
           executed on up to $(docv) domains with the inter-SSMP latency as the \
           conservative lookahead window.  Results are byte-identical to the default \
           sequential engine, including every observability export (--trace, --spans, \
           --metrics record per shard and merge deterministically).  0 (the default) \
           keeps the sequential engine.  The shadow heap (MGS_SHADOW=1), message \
           recording, and --check still reduce a parallel run to one domain, loudly.")

let adapt_t =
  Arg.(
    value & flag
    & info [ "adapt" ]
        ~doc:
          "Adaptive per-page coherence: classify each page's sharing pattern online \
           at invalidation-epoch boundaries, switch it between the multiple-writer, \
           single-writer (twinless) and invalidate-on-read regimes, and migrate its \
           home to a dominant writer's SSMP.  Decisions are deterministic; with the \
           flag off every export is byte-identical to a build without the layer.  \
           Requires a protocol with adaptive regimes (mgs or hlrc).")

let no_verify_t =
  Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip output verification.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the protocol event trace to $(docv) in Chrome trace_event JSON \
           (load in chrome://tracing or ui.perfetto.dev).  With --sweep, one file \
           per cluster size ($(docv) gains a .cN suffix).")

let spans_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans" ] ~docv:"FILE"
        ~doc:
          "Write the causal transaction spans to $(docv) as JSON (schema \
           mgs-spans-1) and print the span-derived remote-fault latency \
           breakdown.  With --sweep, one file per cluster size.")

let metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Sample machine metrics (per-shard engine progress, DUQ lengths, pages \
           per state, messages in flight) on the simulated clock and write the \
           time-series to $(docv): CSV if $(docv) ends in .csv, otherwise JSON \
           (schema mgs-metrics-1).  With --sweep, one file per cluster size.")

let hist_t =
  Arg.(
    value & flag
    & info [ "hist" ] ~doc:"Print per-event-tag latency histograms after the run.")

let check_t =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Run the online protocol invariant checker; exit with status 3 if any \
           invariant is violated.")

let csv_t =
  Arg.(value & flag & info [ "csv" ] ~doc:"With --sweep: print CSV instead of the figure.")

let engine_stats_t =
  Arg.(
    value & flag
    & info [ "engine-stats" ]
        ~doc:
          "Print the engine's per-shard self-profile after each point (events \
           executed, cross-shard sends, outbox merges, window stalls, barrier \
           wall time) and add the engine.* series to the metrics sampler.  \
           These series describe the host-side run: they are not byte-stable \
           across --par job counts, which is why they are opt-in.")

let cmd =
  let doc = "run MGS multigrain shared-memory applications on a simulated DSSMP" in
  Cmd.v
    (Cmd.info "mgs_run" ~doc)
    Term.(
      const run $ app_t $ size_t $ iters_t $ params_t $ procs_t $ cluster_t $ delay_t $ page_t
      $ protocol_t $ lock_t $ faults_t $ seed_t $ sweep_t $ jobs_t $ par_t $ adapt_t
      $ no_verify_t $ trace_t $ spans_t $ metrics_t $ hist_t $ check_t $ csv_t
      $ engine_stats_t)

let () = exit (Cmd.eval cmd)
