lib/obs/trace.ml: Buffer Char Event Format Hashtbl Hist List Printf Ring String
