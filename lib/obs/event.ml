type engine = Local_client | Remote_client | Server | Network | Sync

type t = {
  time : int;
  engine : engine;
  tag : string;
  vpn : int;
  src : int;
  dst : int;
  src_ssmp : int;
  dst_ssmp : int;
  words : int;
  cost : int;
  dur : int;
  txn : int;
}

let engine_name = function
  | Local_client -> "local-client"
  | Remote_client -> "remote-client"
  | Server -> "server"
  | Network -> "network"
  | Sync -> "sync"

let make ~time ~engine ~tag ?(vpn = -1) ?(src = -1) ?(dst = -1) ?(src_ssmp = -1)
    ?(dst_ssmp = -1) ?(words = 0) ?(cost = 0) ?(dur = 0) ?(txn = -1) () =
  { time; engine; tag; vpn; src; dst; src_ssmp; dst_ssmp; words; cost; dur; txn }

let pp ppf e =
  Format.fprintf ppf "[t=%d %s] %s vpn=%d %d(%d)->%d(%d) words=%d cost=%d dur=%d txn=%d"
    e.time (engine_name e.engine) e.tag e.vpn e.src e.src_ssmp e.dst e.dst_ssmp e.words
    e.cost e.dur e.txn
