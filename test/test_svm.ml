(* Tests for the software virtual memory substrate: TLB semantics and
   translation costs. *)

module Tlb = Mgs_svm.Tlb
module Tr = Mgs_svm.Translate
module Costs = Mgs_machine.Costs

let test_tlb_fill_lookup () =
  let t = Tlb.create () in
  Alcotest.(check bool) "empty" true (Tlb.lookup t ~vpn:3 = None);
  Tlb.fill t ~vpn:3 ~mode:Tlb.Ro;
  Alcotest.(check bool) "ro" true (Tlb.lookup t ~vpn:3 = Some Tlb.Ro);
  Tlb.fill t ~vpn:3 ~mode:Tlb.Rw;
  Alcotest.(check bool) "upgraded in place" true (Tlb.lookup t ~vpn:3 = Some Tlb.Rw);
  Alcotest.(check int) "one entry" 1 (Tlb.entries t)

let test_tlb_invalidate () =
  let t = Tlb.create () in
  Tlb.fill t ~vpn:1 ~mode:Tlb.Rw;
  Tlb.fill t ~vpn:2 ~mode:Tlb.Ro;
  Tlb.invalidate t ~vpn:1;
  Alcotest.(check bool) "gone" true (Tlb.lookup t ~vpn:1 = None);
  Alcotest.(check bool) "other survives" true (Tlb.lookup t ~vpn:2 = Some Tlb.Ro);
  (* racing a second invalidation is a no-op *)
  Tlb.invalidate t ~vpn:1;
  Alcotest.(check int) "invalidation count" 1 (Tlb.invalidations t)

let test_tlb_stats_and_clear () =
  let t = Tlb.create () in
  Tlb.fill t ~vpn:1 ~mode:Tlb.Ro;
  Tlb.fill t ~vpn:2 ~mode:Tlb.Ro;
  Tlb.fill t ~vpn:1 ~mode:Tlb.Rw;
  Alcotest.(check int) "fills counted" 3 (Tlb.fills t);
  Tlb.clear t;
  Alcotest.(check int) "cleared" 0 (Tlb.entries t)

let test_tlb_capacity_fifo () =
  let t = Tlb.create ~capacity:2 () in
  Tlb.fill t ~vpn:1 ~mode:Tlb.Ro;
  Tlb.fill t ~vpn:2 ~mode:Tlb.Ro;
  Tlb.fill t ~vpn:3 ~mode:Tlb.Ro;
  Alcotest.(check int) "bounded" 2 (Tlb.entries t);
  Alcotest.(check bool) "oldest evicted" true (Tlb.lookup t ~vpn:1 = None);
  Alcotest.(check bool) "newest resident" true (Tlb.lookup t ~vpn:3 = Some Tlb.Ro);
  Alcotest.(check int) "eviction counted" 1 (Tlb.evictions t);
  (* re-filling a resident vpn must not evict *)
  Tlb.fill t ~vpn:3 ~mode:Tlb.Rw;
  Alcotest.(check int) "no extra eviction" 1 (Tlb.evictions t);
  Alcotest.check_raises "bad capacity" (Invalid_argument "Tlb.create: capacity") (fun () ->
      ignore (Tlb.create ~capacity:0 ()))

let test_tlb_eviction_skips_invalidated () =
  let t = Tlb.create ~capacity:2 () in
  Tlb.fill t ~vpn:1 ~mode:Tlb.Ro;
  Tlb.fill t ~vpn:2 ~mode:Tlb.Ro;
  Tlb.invalidate t ~vpn:1;
  (* the lazily-queued victim 1 is already gone; 2 must survive *)
  Tlb.fill t ~vpn:3 ~mode:Tlb.Ro;
  Alcotest.(check bool) "2 survives" true (Tlb.lookup t ~vpn:2 = Some Tlb.Ro);
  Alcotest.(check bool) "3 resident" true (Tlb.lookup t ~vpn:3 = Some Tlb.Ro)

(* End-to-end: a machine with a tiny TLB still computes correctly. *)
let test_machine_with_tiny_tlb () =
  let cfg = Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:500 ~tlb_entries:2 ~shadow:true () in
  let m = Mgs.Machine.create cfg in
  (* ten pages, touched round-robin so the TLB thrashes *)
  let base = Mgs.Machine.alloc m ~words:(256 * 10) ~home:Mgs_mem.Allocator.Interleaved in
  let bar = Mgs_sync.Barrier.create m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         for round = 1 to 3 do
           for pg = 0 to 9 do
             let a = base + (256 * pg) + p in
             Mgs.Api.write ctx a (float_of_int ((round * 100) + p))
           done;
           Mgs_sync.Barrier.wait ctx bar
         done));
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check int) "no shadow mismatches" 0 (Mgs.Machine.shadow_mismatches m);
  for pg = 0 to 9 do
    for p = 0 to 3 do
      Alcotest.(check (float 0.))
        (Printf.sprintf "page %d proc %d" pg p)
        (float_of_int (300 + p))
        (Mgs.Machine.peek m (base + (256 * pg) + p))
    done
  done

(* Reference model for the TLB: the historical Hashtbl + Queue
   implementation this library's flat direct-mapped table replaced.
   Every observable — lookup, entry count, the three stat counters, and
   in particular the {e lazy} FIFO eviction order (invalidated entries
   stay queued and are skipped; a re-filled vpn is queued again and
   evicts at its oldest position) — must agree after every operation. *)
module Ref_tlb = struct
  type t = {
    map : (int, Tlb.mode) Hashtbl.t;
    capacity : int option;
    fifo : int Queue.t;
    mutable fills : int;
    mutable invalidations : int;
    mutable evictions : int;
  }

  let create ?capacity () =
    { map = Hashtbl.create 64; capacity; fifo = Queue.create (); fills = 0;
      invalidations = 0; evictions = 0 }

  let lookup t ~vpn = Hashtbl.find_opt t.map vpn

  let rec evict_one t =
    match Queue.take_opt t.fifo with
    | None -> ()
    | Some victim ->
      if Hashtbl.mem t.map victim then begin
        Hashtbl.remove t.map victim;
        t.evictions <- t.evictions + 1
      end
      else evict_one t

  let fill t ~vpn ~mode =
    t.fills <- t.fills + 1;
    let fresh = not (Hashtbl.mem t.map vpn) in
    if fresh then begin
      (match t.capacity with
      | Some cap when Hashtbl.length t.map >= cap -> evict_one t
      | _ -> ());
      Queue.add vpn t.fifo
    end;
    Hashtbl.replace t.map vpn mode

  let invalidate t ~vpn =
    if Hashtbl.mem t.map vpn then begin
      t.invalidations <- t.invalidations + 1;
      Hashtbl.remove t.map vpn
    end
end

type tlb_op = Fill of int * Tlb.mode | Invalidate of int | Clear

let tlb_op_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map2 (fun v rw -> Fill (v, if rw then Tlb.Rw else Tlb.Ro)) (int_bound 24) bool);
        (3, map (fun v -> Invalidate v) (int_bound 24));
        (1, return Clear);
      ])

let agree t r =
  Tlb.entries t = Hashtbl.length r.Ref_tlb.map
  && Tlb.fills t = r.Ref_tlb.fills
  && Tlb.invalidations t = r.Ref_tlb.invalidations
  && Tlb.evictions t = r.Ref_tlb.evictions
  &&
  let ok = ref true in
  for vpn = 0 to 24 do
    if Tlb.lookup t ~vpn <> Ref_tlb.lookup r ~vpn then ok := false
  done;
  !ok

let tlb_matches_reference ~capacity ops =
  let t = Tlb.create ?capacity () in
  let r = Ref_tlb.create ?capacity () in
  List.for_all
    (fun op ->
      (match op with
      | Fill (vpn, mode) ->
        Tlb.fill t ~vpn ~mode;
        Ref_tlb.fill r ~vpn ~mode
      | Invalidate vpn ->
        Tlb.invalidate t ~vpn;
        Ref_tlb.invalidate r ~vpn
      | Clear ->
        (* [clear] resets residency but, like the reference, keeps the
           lifetime stat counters; the reference also drops its queue,
           matching the flat ring reset. *)
        Tlb.clear t;
        Hashtbl.reset r.Ref_tlb.map;
        Queue.clear r.Ref_tlb.fifo);
      agree t r)
    ops

let prop_tlb_unbounded_matches_reference =
  QCheck2.Test.make ~name:"flat TLB matches Hashtbl reference (unbounded)" ~count:300
    QCheck2.Gen.(list_size (int_range 1 80) tlb_op_gen)
    (tlb_matches_reference ~capacity:None)

let prop_tlb_bounded_matches_reference =
  QCheck2.Test.make ~name:"flat TLB matches Hashtbl reference (capacity 4, FIFO order)"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 80) tlb_op_gen)
    (tlb_matches_reference ~capacity:(Some 4))

let prop_tlb_tiny_capacity =
  QCheck2.Test.make ~name:"flat TLB matches Hashtbl reference (capacity 1)" ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) tlb_op_gen)
    (tlb_matches_reference ~capacity:(Some 1))

let test_translation_costs () =
  let c = Costs.default in
  Alcotest.(check int) "array" 18 (Tr.cost c Tr.Array);
  Alcotest.(check int) "pointer" 24 (Tr.cost c Tr.Pointer);
  Alcotest.(check int) "unmapped is free" 0 (Tr.cost c Tr.Unmapped)

let () =
  Alcotest.run "svm"
    [
      ( "tlb",
        [
          Alcotest.test_case "fill and lookup" `Quick test_tlb_fill_lookup;
          Alcotest.test_case "invalidate" `Quick test_tlb_invalidate;
          Alcotest.test_case "stats and clear" `Quick test_tlb_stats_and_clear;
          Alcotest.test_case "capacity fifo" `Quick test_tlb_capacity_fifo;
          Alcotest.test_case "eviction skips invalidated" `Quick
            test_tlb_eviction_skips_invalidated;
          Alcotest.test_case "machine with tiny tlb" `Quick test_machine_with_tiny_tlb;
        ] );
      ( "tlb model",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_tlb_unbounded_matches_reference;
            prop_tlb_bounded_matches_reference;
            prop_tlb_tiny_capacity;
          ] );
      ("translate", [ Alcotest.test_case "costs" `Quick test_translation_costs ]);
    ]
