lib/obs/span.ml: Array Buffer Event Hashtbl Json List Option Printf String
