lib/obs/hist.ml: Array Format List
