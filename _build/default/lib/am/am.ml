type recorder =
  Mgs_engine.Sim.time -> tag:string -> src:int -> dst:int -> words:int -> unit

type t = {
  sim : Mgs_engine.Sim.t;
  costs : Mgs_machine.Costs.t;
  topo : Mgs_machine.Topology.t;
  lan : Mgs_net.Lan.t;
  cpus : Mgs_machine.Cpu.t array;
  counts : (string, int) Hashtbl.t;
  mutable total : int;
  mutable recorder : recorder option;
  mutable obs : Mgs_obs.Trace.t option;
}

let create sim costs topo ~lan ~cpus =
  if Array.length cpus <> topo.Mgs_machine.Topology.nprocs then
    invalid_arg "Am.create: cpu count mismatch";
  {
    sim;
    costs;
    topo;
    lan;
    cpus;
    counts = Hashtbl.create 32;
    total = 0;
    recorder = None;
    obs = None;
  }

let bump am tag =
  am.total <- am.total + 1;
  let prev = Option.value ~default:0 (Hashtbl.find_opt am.counts tag) in
  Hashtbl.replace am.counts tag (prev + 1)

let post am ?(tag = "msg") ~src ~dst ~words ~cost k =
  bump am tag;
  let p = am.costs.Mgs_machine.Costs.proto in
  let src_ssmp = Mgs_machine.Topology.ssmp_of_proc am.topo src in
  let dst_ssmp = Mgs_machine.Topology.ssmp_of_proc am.topo dst in
  let at = Mgs_engine.Sim.now am.sim in
  let deliver arrive =
    (match am.recorder with Some r -> r arrive ~tag ~src ~dst ~words | None -> ());
    (match am.obs with
    | Some tr ->
      Mgs_obs.Trace.emit tr
        (Mgs_obs.Event.make ~time:arrive ~engine:Mgs_obs.Event.Network ~tag ~src ~dst
           ~src_ssmp ~dst_ssmp ~words ~cost ~dur:(arrive - at) ())
    | None -> ());
    let fin =
      Mgs_machine.Cpu.occupy am.cpus.(dst) ~at:arrive ~cost:(p.handler_dispatch + cost)
    in
    Mgs_engine.Sim.at am.sim fin (fun () -> k fin)
  in
  Mgs_net.Lan.send am.lan ~src:src_ssmp ~dst:dst_ssmp ~at ~words deliver

let run_on am ?tag ~proc ~at ~cost k =
  let fin = Mgs_machine.Cpu.occupy am.cpus.(proc) ~at ~cost in
  (match (am.obs, tag) with
  | Some tr, Some tag ->
    let ssmp = Mgs_machine.Topology.ssmp_of_proc am.topo proc in
    Mgs_obs.Trace.emit tr
      (Mgs_obs.Event.make ~time:fin ~engine:Mgs_obs.Event.Remote_client ~tag ~src:proc
         ~dst:proc ~src_ssmp:ssmp ~dst_ssmp:ssmp ~cost ~dur:(fin - at) ())
  | _ -> ());
  Mgs_engine.Sim.at am.sim fin (fun () -> k fin)

let set_recorder am r = am.recorder <- r

let set_obs am tr = am.obs <- tr

let count am tag = Option.value ~default:0 (Hashtbl.find_opt am.counts tag)

let counts am =
  List.sort compare (Hashtbl.fold (fun tag n acc -> (tag, n) :: acc) am.counts [])

let total_posted am = am.total

let reset_counts am =
  Hashtbl.reset am.counts;
  am.total <- 0
