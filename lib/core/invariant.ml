(* Online protocol invariant checker.

   Subscribes to the structured event trace ({!State.obs_emit}) and
   validates server/client state after every protocol transition.  The
   checker is strictly read-only: it never creates client or server
   entries (only [Hashtbl.find_opt]) and never mutates protocol state,
   so enabling it cannot perturb an execution.

   Checked invariants (MGS protocol only):

   - [s_count] is never negative, and within an invalidation epoch the
     outstanding-reply count steps down by exactly one per collected
     reply (no lost or duplicated ACK/DIFF/1WDATA).
   - No SSMP appears in both the read and the write directory.
   - Outside REL_IN_PROG, every directory member has a remote-client
     processor registered in [s_frame_procs].  (During an epoch the
     replies retire [s_frame_procs] entries before the directories are
     rebuilt, so the containment only holds between epochs.)
   - A page in [P_busy] holds its mapping lock: BUSY is only entered
     and left under the per-mapping mutex (Table 1 column L).
   - Release visibility: when an epoch completes with no surviving
     write copy, the merged master page must agree with the
     sequentially-consistent shadow image of all logical writes.  (A
     retained single-writer copy may legitimately run ahead of the
     master, so the oracle is skipped while one survives.) *)

open State

type violation = {
  v_time : int;  (** simulated time of the triggering event *)
  v_vpn : int;
  v_tag : string;  (** tag of the triggering event *)
  v_msg : string;
}

type t = {
  machine : State.t;
  mutable total : int;
  mutable stored : violation list; (* newest first, capped *)
  expected : (int, int) Hashtbl.t; (* vpn -> expected s_count at next collect *)
}

let stored_limit = 64

let report c ~vpn ~tag msg =
  c.total <- c.total + 1;
  if List.length c.stored < stored_limit then
    c.stored <-
      { v_time = Sim.now c.machine.sim; v_vpn = vpn; v_tag = tag; v_msg = msg }
      :: c.stored

let reportf c ~vpn ~tag fmt = Printf.ksprintf (report c ~vpn ~tag) fmt

(* Directory and lock discipline, valid after any transition.  This
   runs on every traced event, so the scan uses plain loops and
   [Bitset.mem]/[Hashtbl.find] — no iterator closures or option boxes —
   to keep the checker's own allocation at zero. *)
let check_page c vpn tag =
  let m = c.machine in
  match Hashtbl.find m.servers vpn with
  | exception Not_found -> ()
  | se ->
    if se.s_count < 0 then reportf c ~vpn ~tag "s_count negative (%d)" se.s_count;
    let nssmps = m.topo.Topology.nssmps in
    for ssmp = 0 to nssmps - 1 do
      if Bitset.mem se.s_read_dir ssmp && Bitset.mem se.s_write_dir ssmp then
        reportf c ~vpn ~tag "SSMP %d in both read and write directories" ssmp
    done;
    if se.s_state <> S_rel then begin
      (* two passes, read directory then write directory, preserving the
         order (and multiplicity) of the reported violations *)
      for ssmp = 0 to nssmps - 1 do
        if Bitset.mem se.s_read_dir ssmp && not (Hashtbl.mem se.s_frame_procs ssmp) then
          reportf c ~vpn ~tag "directory member SSMP %d has no frame processor" ssmp
      done;
      for ssmp = 0 to nssmps - 1 do
        if Bitset.mem se.s_write_dir ssmp && not (Hashtbl.mem se.s_frame_procs ssmp) then
          reportf c ~vpn ~tag "directory member SSMP %d has no frame processor" ssmp
      done
    end;
    for s = 0 to Array.length m.clients - 1 do
      match Hashtbl.find m.clients.(s).cl_pages vpn with
      | ce ->
        if ce.pstate = P_busy && not (Mlock.held ce.mlock) then
          reportf c ~vpn ~tag "SSMP %d BUSY without holding the mapping lock" s
      | exception Not_found -> ()
    done

(* Outstanding-reply accounting across one epoch.  [sv.collect] fires
   before the decrement, so the observed count must equal the expected
   value exactly and be positive. *)
let check_epoch c vpn tag =
  (* cheap tag test first: most events are not epoch transitions, and
     the server lookup should not run (or allocate) for them *)
  match tag with
  | "sv.epoch_start" | "sv.epoch_extend" | "sv.collect" | "sv.epoch_end" -> (
    let m = c.machine in
    match Hashtbl.find m.servers vpn with
    | exception Not_found -> ()
    | se -> (
      match tag with
      | "sv.epoch_start" | "sv.epoch_extend" -> Hashtbl.replace c.expected vpn se.s_count
      | "sv.collect" -> (
        if se.s_count <= 0 then
          reportf c ~vpn ~tag "reply collected with s_count=%d" se.s_count;
        match Hashtbl.find c.expected vpn with
        | e ->
          if se.s_count <> e then
            reportf c ~vpn ~tag "s_count %d, expected %d (lost or duplicated reply)"
              se.s_count e;
          Hashtbl.replace c.expected vpn (se.s_count - 1)
        | exception Not_found ->
          (* trace enabled mid-epoch: adopt the observed count *)
          Hashtbl.replace c.expected vpn (se.s_count - 1))
      | _ ->
        if se.s_count <> 0 then
          reportf c ~vpn ~tag "epoch completed with s_count=%d" se.s_count;
        Hashtbl.remove c.expected vpn))
  | _ -> ()

(* Release-visibility oracle: every logical write whose page has no
   surviving write copy must be visible in the merged master. *)
let check_oracle c vpn =
  let m = c.machine in
  match (m.shadow, Hashtbl.find_opt m.servers vpn) with
  | Some shadow, Some se when Bitset.is_empty se.s_write_dir ->
    Hashtbl.iter
      (fun addr v ->
        if Geom.vpn_of_addr m.geom addr = vpn then begin
          let got = se.s_master.(Geom.offset_of_addr m.geom addr) in
          if Int64.bits_of_float got <> Int64.bits_of_float v then
            reportf c ~vpn ~tag:"sv.epoch_end"
              "release not visible: addr %d master=%h shadow=%h" addr got v
        end)
      shadow
  | _ -> ()

let on_event c (e : Mgs_obs.Event.t) =
  if c.machine.protocol = Protocol_mgs && e.vpn >= 0 then begin
    check_epoch c e.vpn e.tag;
    check_page c e.vpn e.tag;
    if e.tag = "sv.epoch_end" then check_oracle c e.vpn
  end

let attach m trace =
  let c = { machine = m; total = 0; stored = []; expected = Hashtbl.create 64 } in
  Mgs_obs.Trace.subscribe trace (on_event c);
  c

(* End-of-run check, valid once the machine is quiescent: every span
   must be closed.  A still-open span is an orphaned transaction — a
   fault, release, or sync episode whose completion never came — which
   no per-event check can see (the absence of an event is invisible to
   a subscriber). *)
let finish c =
  match c.machine.obs with
  | None -> ()
  | Some tr ->
    let sp = Mgs_obs.Trace.spans tr in
    let n = Mgs_obs.Span.open_count sp in
    if n > 0 then begin
      let labels = Mgs_obs.Span.open_labels sp in
      let shown = List.filteri (fun i _ -> i < 8) labels in
      let suffix = if n > List.length shown then ", ..." else "" in
      reportf c ~vpn:(-1) ~tag:"span.orphan"
        "%d orphaned transaction span%s still open at end of run: %s%s" n
        (if n = 1 then "" else "s")
        (String.concat ", " shown)
        suffix
    end

let count c = c.total

let violations c = List.rev c.stored

let pp ppf c =
  if c.total = 0 then Format.fprintf ppf "invariants: ok@."
  else begin
    Format.fprintf ppf "invariants: %d violation%s@." c.total
      (if c.total = 1 then "" else "s");
    List.iter
      (fun v ->
        Format.fprintf ppf "  [t=%d vpn=%d %s] %s@." v.v_time v.v_vpn v.v_tag v.v_msg)
      (violations c);
    if c.total > stored_limit then
      Format.fprintf ppf "  ... %d more suppressed@." (c.total - stored_limit)
  end
