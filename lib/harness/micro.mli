(** Micro measurements reproducing Table 3: the cost of primitive MGS
    operations, measured by bracketing single operations inside tiny
    simulated programs (1 KB pages, zero inter-SSMP delay, as in the
    paper). *)

type measurement = {
  name : string;
  group : string;  (** "Hardware Shared Memory" etc., as in Table 3 *)
  paper : int;  (** the paper's measured value (cycles @20 MHz) *)
  measured : int;  (** this simulator's value *)
}

val run_all : ?costs:Mgs_machine.Costs.t -> unit -> measurement list
(** Execute every micro benchmark; order matches Table 3. *)

val print_table : measurement list -> unit
(** Render the Table 3 comparison (paper vs measured vs ratio). *)

(** {1 Contended-lock microbenchmarks}

    The Figure 11 companion for the {!Mgs_sync.Locks} registry: a
    family of single-lock contention runs measuring handoff latency,
    hit ratio, and fairness per lock algorithm, cluster size, and
    coherence protocol.  Every critical section increments a
    lock-protected shared counter, which is verified after the run —
    mutual exclusion and coherence are checked, not assumed. *)

type lock_point = {
  lk_lock : string;
  lk_protocol : string;
  lk_cluster : int;
  lk_fibers : int;  (** contending fibers (one per processor) *)
  lk_acquires : int;
  lk_hit_ratio : float;
  lk_handoffs : int;
  lk_gap : Mgs_sync.Locks.gap_stats;  (** handoff latency + fairness *)
  lk_runtime : int;
  lk_sim_events : int;
}

val lock_point :
  ?iters:int ->
  ?crit:int ->
  ?think:int ->
  ?par:int ->
  ?adapt:bool ->
  lock:string ->
  protocol:string ->
  cluster:int ->
  fibers:int ->
  unit ->
  lock_point
(** One run: [fibers] contenders (default 16 iterations each, 200-cycle
    critical sections, 1500-cycle think time) on a machine with
    [max fibers cluster] processors (rounded up so C divides P).
    [par] selects the sharded event engine (registered locks force it
    onto one domain; results are identical either way); [adapt] turns
    on the adaptive coherence layer — lock-protected counters are the
    canonical migratory pattern.
    @raise Failure if the protected counter lost an increment or the
    machine fails {!Mgs.Machine.assert_quiescent}. *)

val lock_family :
  ?iters:int ->
  ?crit:int ->
  ?think:int ->
  ?par:int ->
  ?adapt:bool ->
  ?jobs:int ->
  (string * string * int * int) list ->
  lock_point list
(** Run (lock, protocol, cluster, fibers) specs in order; [jobs]
    (default 1) fans points over domains with byte-identical results. *)

val lock_cluster_specs : ?fibers:int -> unit -> (string * string * int * int) list
(** Every registered lock at C in [{1,4,16}] under every protocol, at a
    fixed contention level (default 16 fibers). *)

val lock_contention_specs :
  ?cluster:int -> ?protocol:string -> unit -> (string * string * int * int) list
(** Every registered lock at 1, 4, 16, and 64 contending fibers, at a
    fixed cluster size (default 4) and protocol (default mgs). *)
