(** Run summary: the paper's runtime breakdown plus protocol, network,
    cache, and synchronization counters. *)

type breakdown = {
  user : float;  (** mean cycles per processor: computation + translation + hw stalls *)
  lock : float;  (** lock acquire/release and lock waiting *)
  barrier : float;  (** barrier overhead and waiting *)
  mgs : float;  (** software coherence: fault service, releases, handler occupancy *)
}

type t = {
  nprocs : int;
  cluster : int;
  runtime : int;  (** parallel execution time: max processor finish time *)
  breakdown : breakdown;
  per_proc_total : int array;  (** total charged cycles per processor *)
  pstats : Pstats.t;  (** protocol counters (snapshot) *)
  cache : Mgs_cache.Coherence.stats;  (** aggregated over all SSMPs *)
  lan_messages : int;
  lan_words : int;
  messages_by_tag : (string * int) list;  (** protocol message mix (RREQ, REL, ...) *)
  lock_acquires : int;
  lock_hits : int;
  barrier_episodes : int;
}

val of_machine : State.t -> t

val total : breakdown -> float

val lock_hit_ratio : t -> float
(** Fraction of lock acquires satisfied without inter-SSMP
    communication; 1.0 when there were no acquires. *)

val pp : Format.formatter -> t -> unit
(** One-paragraph human-readable summary. *)
