(* Deterministic LAN fault injection.

   A [spec] names the failure modes (drop / duplicate / delay / reorder
   probabilities, degraded-SSMP slowdowns, retransmission parameters); a
   [plan] binds a spec to a seed and a cluster count and owns one RNG
   stream per (src, dst) channel.  The streams are derived with
   {!Mgs_util.Rng.split_key}, so a channel's fault schedule depends only
   on (seed, channel) — faults on one channel never perturb another, and
   a run with no plan installed draws nothing at all, keeping faults-off
   runs byte-identical to the committed baseline.

   Every transmission draws the same number of variates from its channel
   stream regardless of the probability values, so two specs that differ
   only in rates see the same underlying randomness — intensity sweeps
   are paired experiments, not independent ones. *)

module Rng = Mgs_util.Rng

type spec = {
  drop : float;  (* per-transmission loss probability *)
  dup : float;  (* probability a transmission is delivered twice *)
  delay_p : float;  (* probability of extra wire delay *)
  delay_max : int;  (* extra delay is uniform in [0, delay_max] cycles *)
  reorder : float;  (* probability a transmission skips the FIFO clamp *)
  slow : (int * float) list;  (* degraded SSMPs: (ssmp, factor >= 1.0) *)
  rto : int;  (* initial retransmission timeout; 0 = derived per message *)
  max_retries : int;  (* retransmissions before declaring a partition *)
}

let none =
  {
    drop = 0.0;
    dup = 0.0;
    delay_p = 0.0;
    delay_max = 0;
    reorder = 0.0;
    slow = [];
    rto = 0;
    max_retries = 10;
  }

(* A representative lossy LAN for chaos sweeps: a few percent of every
   failure mode, scaled up or down by the sweep's intensity. *)
let default_chaos =
  { none with drop = 0.05; dup = 0.05; delay_p = 0.10; delay_max = 2000; reorder = 0.05 }

let clamp01 p = if p < 0.0 then 0.0 else if p > 0.95 then 0.95 else p

let scale s ~intensity =
  if intensity < 0.0 then invalid_arg "Fault.scale: negative intensity";
  {
    s with
    drop = clamp01 (s.drop *. intensity);
    dup = clamp01 (s.dup *. intensity);
    delay_p = clamp01 (s.delay_p *. intensity);
    reorder = clamp01 (s.reorder *. intensity);
  }

let is_zero s =
  s.drop = 0.0 && s.dup = 0.0 && s.delay_p = 0.0 && s.reorder = 0.0 && s.slow = []

(* "drop=0.1,dup=0.05,delay=0.2:2000,reorder=0.1,slow=1:2.0,rto=8000,retries=6"
   — unknown keys and malformed values raise with the full vocabulary. *)
let of_string str =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        invalid_arg
          (Printf.sprintf
             "Fault.of_string: %s (expected \
              drop=P,dup=P,delay=P:CYCLES,reorder=P,slow=SSMP:FACTOR,rto=CYCLES,retries=N)"
             msg))
      fmt
  in
  let prob key v =
    match float_of_string_opt v with
    | Some p when p >= 0.0 && p <= 1.0 -> p
    | _ -> fail "%s wants a probability in [0,1], got %S" key v
  in
  let posint key v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> fail "%s wants a nonnegative integer, got %S" key v
  in
  let split2 c s =
    match String.index_opt s c with
    | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> None
  in
  let parse_field acc field =
    if String.trim field = "" then acc
    else
      match split2 '=' field with
      | None -> fail "field %S has no '='" field
      | Some (key, v) -> (
        match String.trim key with
        | "drop" -> { acc with drop = prob "drop" v }
        | "dup" -> { acc with dup = prob "dup" v }
        | "reorder" -> { acc with reorder = prob "reorder" v }
        | "rto" -> { acc with rto = posint "rto" v }
        | "retries" -> { acc with max_retries = posint "retries" v }
        | "delay" -> (
          match split2 ':' v with
          | Some (p, d) ->
            { acc with delay_p = prob "delay" p; delay_max = posint "delay" d }
          | None -> fail "delay wants P:CYCLES, got %S" v)
        | "slow" -> (
          match split2 ':' v with
          | Some (s, f) -> (
            match (int_of_string_opt s, float_of_string_opt f) with
            | Some ssmp, Some factor when ssmp >= 0 && factor >= 1.0 ->
              { acc with slow = acc.slow @ [ (ssmp, factor) ] }
            | _ -> fail "slow wants SSMP:FACTOR (factor >= 1.0), got %S" v)
          | None -> fail "slow wants SSMP:FACTOR, got %S" v)
        | key -> fail "unknown field %S" key)
  in
  if String.trim str = "none" then none
  else List.fold_left parse_field none (String.split_on_char ',' str)

let to_string s =
  let b = Buffer.create 64 in
  let sep () = if Buffer.length b > 0 then Buffer.add_char b ',' in
  let fld fmt = Printf.ksprintf (fun x -> sep (); Buffer.add_string b x) fmt in
  if s.drop > 0.0 then fld "drop=%g" s.drop;
  if s.dup > 0.0 then fld "dup=%g" s.dup;
  if s.delay_p > 0.0 then fld "delay=%g:%d" s.delay_p s.delay_max;
  if s.reorder > 0.0 then fld "reorder=%g" s.reorder;
  List.iter (fun (ssmp, f) -> fld "slow=%d:%g" ssmp f) s.slow;
  if s.rto > 0 then fld "rto=%d" s.rto;
  fld "retries=%d" s.max_retries;
  Buffer.contents b

type plan = {
  spec : spec;
  seed : int;
  nssmps : int;
  mutable chans : Rng.t array;  (* per (src * nssmps + dst) channel *)
  mutable ack_chans : Rng.t array;
      (* separate per-channel streams for the ack direction: the forward
         draws happen at the sender and the ack draws at the receiver,
         which under the sharded engine are different domains — a shared
         stream would be a data race and a nondeterministic interleave *)
  slowf : float array;  (* per-SSMP slowdown factor, 1.0 = healthy *)
}

let derive_chans ~seed ~nssmps =
  let base = Rng.create ~seed in
  Array.init (nssmps * nssmps) (fun i -> Rng.split_key base ~key:i)

let derive_ack_chans ~seed ~nssmps =
  let base = Rng.create ~seed in
  let n = nssmps * nssmps in
  Array.init n (fun i -> Rng.split_key base ~key:(n + i))

let make spec ~seed ~nssmps =
  if nssmps <= 0 then invalid_arg "Fault.make: nssmps";
  let slowf = Array.make nssmps 1.0 in
  List.iter
    (fun (ssmp, f) -> if ssmp >= 0 && ssmp < nssmps && f > 1.0 then slowf.(ssmp) <- f)
    spec.slow;
  {
    spec;
    seed;
    nssmps;
    chans = derive_chans ~seed ~nssmps;
    ack_chans = derive_ack_chans ~seed ~nssmps;
    slowf;
  }

let spec_of p = p.spec

let seed_of p = p.seed

(* Re-derive every channel stream from the seed: after a reset the fault
   schedule restarts exactly as at creation, so a measured phase is
   unaffected by how much randomness warmup traffic consumed. *)
let reset p =
  p.chans <- derive_chans ~seed:p.seed ~nssmps:p.nssmps;
  p.ack_chans <- derive_ack_chans ~seed:p.seed ~nssmps:p.nssmps

let chan_rng p ~src ~dst = p.chans.((src * p.nssmps) + dst)

let ack_rng p ~src ~dst = p.ack_chans.((src * p.nssmps) + dst)

let slowdown p ssmp = p.slowf.(ssmp)

let flip g p = Rng.float g 1.0 < p

let extra_delay g p =
  (* always draw, so the stream position per transmission is fixed
     whatever the probabilities — then apply conditionally *)
  let amount = if p.delay_max > 0 then Rng.int g (p.delay_max + 1) else 0 in
  if flip g p.delay_p then amount else 0
