lib/mem/allocator.mli: Geom
