(** Jacobi: 2-D grid relaxation (paper section 5.2).

    Two (n+2) x (n+2) grids alternate as source and destination; each
    iteration replaces every interior point by the average of its four
    neighbours.  Rows are distributed in contiguous bands, one band per
    processor, so sharing is coarse-grained reads of boundary rows —
    the paper's example of an application whose performance is almost
    independent of cluster size (Figure 6, breakup penalty 16%). *)

type params = {
  n : int;  (** interior points per dimension *)
  iters : int;
  flop_cycles : int;  (** modelled computation per grid point *)
}

val default : params
(** 126 x 126, 5 iterations — a scaled version of the paper's
    1024 x 1024 x 10 (EXPERIMENTS.md discusses the scaling). *)

val tiny : params
(** Test-sized instance. *)

val paper : params
(** The paper's full 1024-class problem (long simulation). *)

val problem_size : params -> string

val workload : params -> Mgs_harness.Sweep.workload
(** Verifies the final grid bit-for-bit against a sequential
    reference. *)
