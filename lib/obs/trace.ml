type t = {
  ring : Event.t Ring.t;
  hists : (string, Hist.t) Hashtbl.t;
  mutable subscribers : (Event.t -> unit) list;
  spans : Span.t;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) ?span_capacity () =
  {
    ring = Ring.create ~capacity;
    hists = Hashtbl.create 32;
    subscribers = [];
    spans = Span.create ?capacity:span_capacity ();
  }

let subscribe t f = t.subscribers <- f :: t.subscribers

let spans t = t.spans

let hist_for t tag =
  try Hashtbl.find t.hists tag
  with Not_found ->
    let h = Hist.create () in
    Hashtbl.add t.hists tag h;
    h

let emit t (e : Event.t) =
  Ring.push t.ring e;
  Hist.add (hist_for t e.tag) e.dur;
  List.iter (fun f -> f e) t.subscribers

let events t = Ring.to_list t.ring

let emitted t = Ring.pushed t.ring

let retained t = Ring.length t.ring

let dropped t = Ring.dropped t.ring

let hist t tag = Hashtbl.find_opt t.hists tag

let histograms t =
  List.sort compare (Hashtbl.fold (fun tag h acc -> (tag, h) :: acc) t.hists [])

(* --- Chrome trace_event export ------------------------------------- *)

(* All strings flowing into the JSON pass through {!Json.escape}, which
   handles quotes, backslashes, and control characters, and \u-escapes
   everything outside printable ASCII — a tag with arbitrary bytes can
   no longer produce unparseable output. *)
let json_escape = Json.escape

(* One Chrome "complete" ('X') slice per event: pid = the SSMP where the
   work lands, tid = the processor there, ts..ts+dur the transfer or
   occupancy interval in simulated cycles (1 cycle = 1 "us" on the
   chrome://tracing timeline). *)
let chrome_event buf (e : Event.t) =
  let pid = if e.dst_ssmp >= 0 then e.dst_ssmp else max e.src_ssmp 0 in
  let tid = if e.dst >= 0 then e.dst else max e.src 0 in
  let ts = e.time - max e.dur 0 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"vpn\":%d,\"src\":%d,\"dst\":%d,\"words\":%d,\"cost\":%d,\"txn\":%d}}"
       (json_escape e.tag)
       (Event.engine_name e.engine)
       ts (max e.dur 0) pid tid e.vpn e.src e.dst e.words e.cost e.txn)

let chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n'
  in
  Ring.iter
    (fun e ->
      sep ();
      chrome_event buf e)
    t.ring;
  (* the spans section: async begin/end per span plus parent-to-child
     flow arrows, in the same traceEvents array *)
  Span.chrome_section buf t.spans ~emit_sep:sep;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome t oc = output_string oc (chrome_json t)

let pp_overflow_warning ppf t =
  if dropped t > 0 then
    Format.fprintf ppf
      "WARNING: event ring overflowed: %d of %d events dropped — histograms are \
       complete, but the retained event window (and any decomposition derived from \
       it) covers only the last %d events; rerun with a larger trace capacity@."
      (dropped t) (emitted t) (retained t)

let pp_summary ppf t =
  Format.fprintf ppf "events: %d emitted, %d retained, %d dropped@." (emitted t)
    (retained t) (dropped t);
  pp_overflow_warning ppf t;
  if Span.dropped t.spans > 0 then
    Format.fprintf ppf
      "WARNING: span store full: %d spans dropped — the latency decomposition \
       undercounts@."
      (Span.dropped t.spans);
  List.iter
    (fun (tag, h) -> Format.fprintf ppf "  %-14s %a@." tag Hist.pp h)
    (histograms t)
