test/test_util.ml: Alcotest Array Float Int List Mgs_util QCheck2 QCheck_alcotest Set String
