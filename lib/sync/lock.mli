(** The MGS token-based distributed lock (paper section 3.2).

    Each lock consists of a local lock on every SSMP plus a single
    global lock at the lock's home SSMP.  A token circulates among the
    local locks; acquires succeed without inter-SSMP communication
    whenever the local lock already owns the token (a {e lock hit},
    Figure 11), and communication happens only when consecutive acquires
    come from different SSMPs.

    Release is a release-consistency point: the SSMP's delayed update
    queue is flushed before the lock is passed on, which is what makes
    critical sections {e dilate} under software coherence (section
    5.2.1).

    On a single-SSMP machine (C = P) the lock degenerates to a flat
    shared-memory lock standing in for the paper's P4 library.

    When a remote SSMP has requested the token, at most
    [local_grant_bound] further local handoffs are allowed before the
    token is surrendered, bounding remote starvation while preserving
    the locality preference; the bound scales with the cluster size, as
    larger SSMPs have proportionally more local work to satisfy. *)

type t

val local_grant_bound : int -> int
(** [local_grant_bound cluster] is the handoff budget per recall. *)

val create : Mgs.Machine.t -> ?home:int -> ?grant_bound:int -> unit -> t
(** [create m ~home ()] makes a lock whose global state lives on SSMP
    [home] (default 0).  [grant_bound] overrides the default handoff
    budget ({!local_grant_bound} of the cluster size): 0 surrenders the
    token at the first recalled release (globally fair), larger values
    favor locality. *)

val acquire : Mgs.Api.ctx -> t -> unit
(** Block until the calling processor holds the lock.  Waiting time is
    charged to the Lock bucket. *)

val release : Mgs.Api.ctx -> t -> unit
(** Flush the delayed update queue (MGS bucket), then free the lock,
    preferring local waiters.
    @raise Failure if the caller's SSMP does not hold the lock. *)

val waiters : t -> int
(** Fibers currently parked in the lock's local wait queues. *)

val waiters_cell : t -> int -> int
(** Fibers parked in one SSMP's local wait queue — shard-local, safe
    for the per-cell metrics sampler. *)

val reset : t -> unit
(** Restore the lock to its just-created state: token parked at the
    home, no holder, queues empty, HLRC notices and hit counters
    cleared.  Parked waiters are {e dropped}, not woken — only call
    between phases, when any parked fiber belongs to an abandoned run
    (e.g. after {!Mgs_net.Lan.Net_partition} ended it).  Without this,
    a waiter stranded by a partition leaves [requested] latched and the
    next acquirer deadlocks waiting for a token grant that never
    comes. *)

val acquires : t -> int

val hits : t -> int
(** Acquires that completed without inter-SSMP communication. *)

val hit_ratio : t -> float
(** [hits / acquires]; 1.0 when never acquired. *)
