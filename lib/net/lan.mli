(** External (inter-SSMP) network model.

    The paper emulates a LAN on Alewife by queueing outgoing inter-SSMP
    messages at the sending processor and delivering them after a fixed
    latency (section 4.2.2); neither LAN contention nor interface
    contention is modelled.  We reproduce exactly that: each SSMP has a
    sender whose occupancy serialises its outgoing messages, and every
    message is delivered [latency] cycles after it leaves the queue.
    Bulk data adds DMA time proportional to its size.

    A {!Fault} plan may be installed to make the wire lossy.  The layer
    then runs a reliable transport underneath: every logical message is
    sequence-numbered per (src, dst) channel, retransmitted on an
    exponential-backoff timer until acknowledged, and delivered to the
    handler exactly once and in channel order — so the protocol engines
    above see the same interface whether the wire is perfect or not.
    With no plan installed none of this machinery runs and the
    simulation is byte-identical to a faults-free build. *)

type t

type stats = {
  mutable messages : int;  (** logical inter-SSMP messages (dups/retries not counted) *)
  mutable data_words : int;  (** bulk payload words carried *)
  mutable retransmits : int;  (** retransmission attempts *)
  mutable dup_drops : int;  (** received copies discarded by dedup *)
  mutable timeouts : int;  (** retransmission timer expiries *)
  mutable acks : int;  (** acknowledgements sent *)
}

type partition = {
  part_src_ssmp : int;
  part_dst_ssmp : int;
  part_tag : string;  (** tag of the message that exhausted its retries *)
  part_retries : int;
}

exception Net_partition of partition
(** Raised out of {!Mgs_engine.Sim.run} when a message exhausts
    [max_retries]: the channel is treated as partitioned and the run
    ends with a typed outcome instead of hanging. *)

val create : Mgs_engine.Sim.t -> Mgs_machine.Costs.t -> nssmps:int -> t

val rto_cap : int
(** Ceiling on the retransmission timeout.  Unbounded doubling would
    overflow [int] after ~60 unacknowledged retries, turning the RTO
    negative and collapsing the backoff into a retransmission storm. *)

val next_rto : int -> int
(** [next_rto cur] is the backed-off timeout after another expiry:
    [cur * 2], saturating at {!rto_cap}. *)

val send : t -> Envelope.t -> at:Mgs_engine.Sim.time -> (Mgs_engine.Sim.time -> unit) -> unit
(** [send lan env ~at k] transmits [env] from its source SSMP (leaving
    no earlier than [at]) to its destination; [k] runs at the delivery
    time.  [src_ssmp = dst_ssmp] is permitted and models a local
    protocol message: it bypasses the LAN (and any fault plan) and
    costs only the intra-SSMP message latency.  Under a fault plan,
    [k] still runs exactly once, in channel order, however the wire
    misbehaves — or {!Net_partition} ends the run. *)

val stats : t -> stats

val set_obs : t -> Mgs_obs.Trace.t option -> unit
(** Install (or remove) an event trace: every inter-SSMP delivery emits
    a ["LAN"] event carrying the endpoints, payload size, and queueing +
    transfer latency (measured from post to delivery), and every
    retransmission a ["NET.RETRY"] event plus a [net.retry] span
    parented at the posting operation. *)

val set_fault_plan : t -> Fault.plan option -> unit
(** Install (or remove) a fault plan.  Installing allocates fresh
    transport state; do it before traffic flows, not mid-run. *)

val fault_plan : t -> Fault.plan option

val unacked : t -> int
(** Messages posted but not yet acknowledged; [0] at quiescence and
    always [0] without a fault plan. *)

val reset_stats : t -> unit
(** Zero the counters only.  The sender-occupancy horizons and
    per-channel FIFO watermarks survive, so timing is unaffected —
    use {!reset} when starting a measured phase. *)

val reset : t -> unit
(** Full reset between measured phases: counters, sender-occupancy
    horizons, FIFO watermarks — and, under a fault plan, sequence
    numbers, unacked/parked tables, and the fault schedule itself
    (re-derived from the seed).  Only call with the network quiescent
    ({!unacked} = 0) when a plan is installed. *)
