(* Work queue: a dynamic load-balancing pattern over MGS shared memory.

     dune exec examples/work_queue.exe

   A shared bag of independent tasks (numeric integration slices) is
   drained by all processors through the token-based distributed lock.
   With small clusters the queue lock bounces across the LAN on nearly
   every pop — the paper's TSP pathology; with larger clusters the
   token stays put and the hit ratio climbs. *)

let tasks = 256

let slices = 200 (* work per task, modelled cycles each *)

let () =
  let run ~cluster =
    let cfg = Mgs.Machine.config ~nprocs:16 ~cluster ~lan_latency:1000 () in
    let m = Mgs.Machine.create cfg in
    (* [0] = next task index; [1] = accumulated integral *)
    let ctl = Mgs.Machine.alloc m ~words:2 ~home:(Mgs_mem.Allocator.On_proc 0) in
    let qlock = Mgs_sync.Lock.create m () in
    let bar = Mgs_sync.Barrier.create m in
    let report =
      Mgs.Machine.run m (fun ctx ->
          let running = ref true in
          let local = ref 0.0 in
          while !running do
            Mgs_sync.Lock.acquire ctx qlock;
            let t = Mgs.Api.read_int ctx ctl in
            if t < tasks then Mgs.Api.write_int ctx ctl (t + 1);
            Mgs_sync.Lock.release ctx qlock;
            if t >= tasks then running := false
            else begin
              (* integrate 1/(1+x^2) over the slice: builds toward pi *)
              let x0 = float_of_int t /. float_of_int tasks in
              let h = 1.0 /. float_of_int (tasks * slices) in
              for k = 0 to slices - 1 do
                let x = x0 +. ((float_of_int k +. 0.5) *. h) in
                Mgs.Api.compute ctx 60;
                local := !local +. (h /. (1.0 +. (x *. x)))
              done
            end
          done;
          (* publish the partial sum *)
          Mgs_sync.Lock.acquire ctx qlock;
          Mgs.Api.write ctx (ctl + 1) (Mgs.Api.read ctx (ctl + 1) +. !local);
          Mgs_sync.Lock.release ctx qlock;
          Mgs_sync.Barrier.wait ctx bar)
    in
    let integral = Mgs.Machine.peek m (ctl + 1) in
    Printf.printf
      "C=%-2d  runtime=%-12d  lock hits %5d/%d (%.2f)  4*integral=%.6f (pi=3.141593)\n"
      cluster report.Mgs.Report.runtime report.Mgs.Report.lock_hits
      report.Mgs.Report.lock_acquires
      (Mgs.Report.lock_hit_ratio report)
      (4.0 *. integral)
  in
  print_endline "dynamic work queue, P = 16:";
  List.iter (fun c -> run ~cluster:c) [ 1; 2; 4; 8; 16 ]
