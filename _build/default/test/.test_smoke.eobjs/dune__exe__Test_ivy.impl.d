test/test_ivy.ml: Alcotest Array Bitset Geom List Mgs Mgs_apps Mgs_harness Mgs_mem Mgs_sync Mgs_util Printf QCheck2 QCheck_alcotest Topology
