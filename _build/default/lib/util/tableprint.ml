let pad s w =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let render ~header ~rows =
  let ncols = List.fold_left (fun m r -> max m (List.length r)) (List.length header) rows in
  let fill r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = fill header :: List.map fill rows in
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row in
  List.iter measure all;
  let line row = String.concat "  " (List.mapi (fun i c -> pad c widths.(i)) row) in
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  let body = List.map line (List.tl all) in
  String.concat "\n" ((line (List.hd all) :: rule :: body) @ [ "" ])

let print ~header ~rows = print_string (render ~header ~rows)

let fmt_cycles v =
  let a = Float.abs v in
  if a >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if a >= 1e3 then Printf.sprintf "%.2fK" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let fill_chars = [| '#'; '='; '+'; '.'; '~'; '%' |]

let stacked_bars ~title ~labels ~series_names ~values ?(width = 60) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let totals = Array.map (Array.fold_left ( +. ) 0.) values in
  let maxv = Array.fold_left Float.max 1e-9 totals in
  let label_w = List.fold_left (fun m l -> max m (String.length l)) 0 labels in
  List.iteri
    (fun i label ->
      Buffer.add_string buf (pad label label_w);
      Buffer.add_string buf " |";
      Array.iteri
        (fun j v ->
          let n = int_of_float (Float.round (v /. maxv *. float_of_int width)) in
          Buffer.add_string buf (String.make n fill_chars.(j mod Array.length fill_chars)))
        values.(i);
      Buffer.add_string buf (Printf.sprintf "  %s\n" (fmt_cycles totals.(i))))
    labels;
  Buffer.add_string buf "legend: ";
  List.iteri
    (fun j name ->
      if j > 0 then Buffer.add_string buf "  ";
      Buffer.add_char buf fill_chars.(j mod Array.length fill_chars);
      Buffer.add_char buf '=';
      Buffer.add_string buf name)
    series_names;
  Buffer.add_char buf '\n';
  Buffer.contents buf
