(** Deterministic, bounded-memory event trace.

    Every emitted {!Event.t} is (1) pushed into a fixed-size ring
    buffer, (2) folded into a per-tag latency histogram, and (3) handed
    to each subscriber — the hook the online invariant checker uses.
    Memory is bounded by the ring capacity plus one histogram per
    distinct tag; a run of any length cannot grow it further. *)

type t

val create : ?capacity:int -> ?span_capacity:int -> unit -> t
(** Ring capacity defaults to 65536 events; the span store to
    {!Span.create}'s default. *)

val subscribe : t -> (Event.t -> unit) -> unit
(** Subscribers run synchronously at every emit, in reverse order of
    subscription.  They must not mutate simulated state. *)

val spans : t -> Span.t
(** The causal span collector that travels with this trace. *)

val emit : t -> Event.t -> unit

val events : t -> Event.t list
(** Retained events, oldest first. *)

val emitted : t -> int
(** Total events ever emitted. *)

val retained : t -> int

val dropped : t -> int

val hist : t -> string -> Hist.t option
(** Latency histogram for one tag. *)

val histograms : t -> (string * Hist.t) list
(** All (tag, histogram) pairs, sorted by tag. *)

val chrome_json : t -> string
(** The retained events in Chrome [trace_event] JSON (the
    [chrome://tracing] / Perfetto format): one complete slice per
    event, [pid] = destination SSMP, [tid] = destination processor,
    timestamps in simulated cycles — plus a spans section (async
    begin/end per finished span and parent-to-child flow arrows). *)

val write_chrome : t -> out_channel -> unit

val pp_overflow_warning : Format.formatter -> t -> unit
(** A loud warning when the ring overflowed (a decomposition from a
    lossy trace is suspect); prints nothing otherwise. *)

val pp_summary : Format.formatter -> t -> unit
(** Event counts plus the per-tag latency histograms, preceded by
    {!pp_overflow_warning} when history was lost. *)
