(* Tests for the machine model: topology arithmetic, CPU accounting
   (the bucket/clock contract that the runtime breakdowns rely on), and
   cost parameters. *)

module Topo = Mgs_machine.Topology
module Cpu = Mgs_machine.Cpu
module Costs = Mgs_machine.Costs

(* --- topology --------------------------------------------------------- *)

let test_topology_basic () =
  let t = Topo.create ~nprocs:16 ~cluster:4 in
  Alcotest.(check int) "nssmps" 4 t.Topo.nssmps;
  Alcotest.(check int) "ssmp of 0" 0 (Topo.ssmp_of_proc t 0);
  Alcotest.(check int) "ssmp of 7" 1 (Topo.ssmp_of_proc t 7);
  Alcotest.(check int) "first proc of ssmp 2" 8 (Topo.first_proc_of_ssmp t 2);
  Alcotest.(check (list int)) "procs of ssmp 3" [ 12; 13; 14; 15 ] (Topo.procs_of_ssmp t 3);
  Alcotest.(check bool) "same ssmp" true (Topo.same_ssmp t 5 6);
  Alcotest.(check bool) "different ssmp" false (Topo.same_ssmp t 3 4);
  Alcotest.(check bool) "not single" false (Topo.single_ssmp t);
  Alcotest.(check bool) "single when C=P" true (Topo.single_ssmp (Topo.create ~nprocs:8 ~cluster:8))

let test_topology_validation () =
  Alcotest.check_raises "cluster must divide"
    (Invalid_argument "Topology.create: cluster must divide nprocs") (fun () ->
      ignore (Topo.create ~nprocs:6 ~cluster:4));
  Alcotest.check_raises "cluster range" (Invalid_argument "Topology.create: cluster")
    (fun () -> ignore (Topo.create ~nprocs:4 ~cluster:8));
  let t = Topo.create ~nprocs:4 ~cluster:2 in
  Alcotest.check_raises "proc range" (Invalid_argument "Topology.ssmp_of_proc") (fun () ->
      ignore (Topo.ssmp_of_proc t 4))

let prop_topology_partition =
  QCheck2.Test.make ~name:"SSMPs partition the processors" ~count:100
    QCheck2.Gen.(pair (int_range 0 5) (int_range 0 5))
    (fun (a, b) ->
      let cluster = 1 lsl a in
      let nprocs = cluster * (1 lsl b) in
      let t = Topo.create ~nprocs ~cluster in
      let all = List.concat_map (Topo.procs_of_ssmp t) (List.init t.Topo.nssmps (fun s -> s)) in
      all = List.init nprocs (fun p -> p)
      && List.for_all
           (fun p -> List.mem p (Topo.procs_of_ssmp t (Topo.ssmp_of_proc t p)))
           (List.init nprocs (fun p -> p)))

(* --- cpu accounting ---------------------------------------------------- *)

let test_cpu_advance () =
  let c = Cpu.create 0 in
  Cpu.advance c Cpu.User 100;
  Cpu.advance c Cpu.Lock 50;
  Cpu.advance c Cpu.User 25;
  Alcotest.(check int) "clock" 175 c.Cpu.clock;
  Alcotest.(check int) "user bucket" 125 (Cpu.bucket_cycles c Cpu.User);
  Alcotest.(check int) "lock bucket" 50 (Cpu.bucket_cycles c Cpu.Lock);
  Alcotest.(check int) "total = clock" c.Cpu.clock (Cpu.total_cycles c)

let test_cpu_catch_up () =
  let c = Cpu.create 0 in
  Cpu.advance c Cpu.User 10;
  Cpu.catch_up_to c Cpu.Barrier 60;
  Alcotest.(check int) "caught up" 60 c.Cpu.clock;
  Alcotest.(check int) "gap charged to barrier" 50 (Cpu.bucket_cycles c Cpu.Barrier);
  Cpu.catch_up_to c Cpu.Barrier 30;
  Alcotest.(check int) "no rewind" 60 c.Cpu.clock

let test_cpu_occupy_and_sync () =
  let c = Cpu.create 0 in
  (* a handler occupies the processor while the fiber is at 0 *)
  let fin = Cpu.occupy c ~at:20 ~cost:30 in
  Alcotest.(check int) "completion" 50 fin;
  Alcotest.(check int) "no bucket charge at occupy" 0 (Cpu.total_cycles c);
  (* back-to-back handlers queue on busy_until *)
  let fin2 = Cpu.occupy c ~at:10 ~cost:5 in
  Alcotest.(check int) "serialized" 55 fin2;
  (* the fiber then absorbs the stolen cycles into MGS *)
  Cpu.sync_busy c;
  Alcotest.(check int) "clock pushed" 55 c.Cpu.clock;
  Alcotest.(check int) "charged to MGS" 55 (Cpu.bucket_cycles c Cpu.Mgs)

let test_cpu_resume_charge () =
  let c = Cpu.create 0 in
  Cpu.advance c Cpu.User 10;
  ignore (Cpu.occupy c ~at:10 ~cost:20);
  (* a fiber blocked on a lock resumes at t=100: handler occupancy up to
     30 goes to MGS, the rest of the wait to Lock *)
  Cpu.resume_charge c Cpu.Lock 100;
  Alcotest.(check int) "clock" 100 c.Cpu.clock;
  Alcotest.(check int) "mgs part" 20 (Cpu.bucket_cycles c Cpu.Mgs);
  Alcotest.(check int) "lock part" 70 (Cpu.bucket_cycles c Cpu.Lock)

let test_cpu_negative () =
  let c = Cpu.create 0 in
  Alcotest.check_raises "negative advance" (Invalid_argument "Cpu.advance: negative cycles")
    (fun () -> Cpu.advance c Cpu.User (-1));
  Alcotest.check_raises "negative occupy" (Invalid_argument "Cpu.occupy: negative cost")
    (fun () -> ignore (Cpu.occupy c ~at:0 ~cost:(-1)))

(* Invariant behind the runtime breakdowns: buckets always sum to the
   clock, whatever the interleaving of operations. *)
let prop_cpu_buckets_sum_to_clock =
  let op_gen =
    QCheck2.Gen.(
      oneof
        [
          map (fun n -> `Advance (n mod 500)) (int_bound 499);
          map2 (fun a c -> `Occupy (a mod 300, c mod 100)) (int_bound 299) (int_bound 99);
          return `Sync;
          map (fun t -> `Resume (t mod 1000)) (int_bound 999);
        ])
  in
  QCheck2.Test.make ~name:"bucket totals equal the clock" ~count:300
    QCheck2.Gen.(list op_gen)
    (fun ops ->
      let c = Cpu.create 0 in
      List.iter
        (fun op ->
          match op with
          | `Advance n -> Cpu.advance c Cpu.User n
          | `Occupy (a, cost) -> ignore (Cpu.occupy c ~at:a ~cost)
          | `Sync -> Cpu.sync_busy c
          | `Resume t -> Cpu.resume_charge c Cpu.Barrier t)
        ops;
      Cpu.total_cycles c = c.Cpu.clock)

(* --- costs -------------------------------------------------------------- *)

let test_costs_lan_override () =
  let c = Costs.with_lan_latency Costs.default 0 in
  Alcotest.(check int) "latency" 0 c.Costs.lan.latency;
  Alcotest.(check int) "original untouched" 1000 Costs.default.Costs.lan.latency;
  Alcotest.(check int) "other fields preserved" Costs.default.Costs.proto.msg_send
    c.Costs.proto.msg_send

let test_costs_tlb_fill_sum () =
  (* the TLB fill cost of Table 3 is the sum of the svm fault path *)
  let s = Costs.default.Costs.svm in
  Alcotest.(check int) "fault path sums to 1037" 1037
    (s.fault_entry + s.map_lock + s.table_lookup + s.tlb_write)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_topology_partition; prop_cpu_buckets_sum_to_clock ]

let () =
  Alcotest.run "machine"
    [
      ( "topology",
        [
          Alcotest.test_case "basic" `Quick test_topology_basic;
          Alcotest.test_case "validation" `Quick test_topology_validation;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "advance" `Quick test_cpu_advance;
          Alcotest.test_case "catch up" `Quick test_cpu_catch_up;
          Alcotest.test_case "occupy + sync_busy" `Quick test_cpu_occupy_and_sync;
          Alcotest.test_case "resume_charge split" `Quick test_cpu_resume_charge;
          Alcotest.test_case "negative rejected" `Quick test_cpu_negative;
        ] );
      ( "costs",
        [
          Alcotest.test_case "lan override" `Quick test_costs_lan_override;
          Alcotest.test_case "tlb fill decomposition" `Quick test_costs_tlb_fill_sum;
        ] );
      ("properties", qsuite);
    ]
