lib/obs/trace.ml: Buffer Event Format Hashtbl Hist Json List Printf Ring Span
