test/test_shapes.ml: Alcotest Float Lazy List Mgs_apps Mgs_harness Printf
