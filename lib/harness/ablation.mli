(** Ablation studies over the design choices DESIGN.md calls out:
    the single-writer optimization (paper section 3.1.1), the early
    read-invalidation acknowledgement (section 4.2.4 "future work"),
    page size, and inter-SSMP latency.

    Each study runs one workload over the cluster-size sweep under the
    variants and reports the runtime curves side by side. *)

type variant = {
  label : string;
  page_words : int;
  lan_latency : int;
  features : Mgs.State.features;
  protocol : string;  (** a {!Mgs.Protocol} registry name, e.g. ["mgs"] *)
  tlb_entries : int option;
  adapt : bool;  (** adaptive per-page coherence ({!Mgs_cache.Adapt}) *)
}

val baseline : variant
(** 1 KB pages, 1000-cycle LAN, paper-default features. *)

val run :
  ?clusters:int list ->
  ?jobs:int ->
  ?par:int ->
  nprocs:int ->
  variants:variant list ->
  Sweep.workload ->
  string
(** Run the workload under every variant; render a table with one
    runtime column per variant plus the framework metrics per variant.
    [jobs] (default 1) fans the variant x cluster grid out over a domain
    pool; [par] (default 0 = sequential engine) shards the event engine
    inside each cell (skipped for zero-latency variants, which have no
    lookahead window); the rendered table is identical for any [jobs]
    or [par]. *)

val protocol_study : unit -> variant list
(** MGS's eager multiple-writer RC protocol vs home-based lazy release
    consistency vs the Ivy single-writer SC baseline. *)

val single_writer_study : unit -> variant list
(** Baseline vs single-writer optimization disabled. *)

val pipelined_release_study : unit -> variant list
(** Table 1's one-REL-at-a-time release vs overlapping all of a
    release's epochs. *)

val early_ack_study : unit -> variant list
(** Baseline vs early read-invalidation acknowledgement enabled. *)

val page_size_study : unit -> variant list
(** 512 B / 1 KB / 2 KB / 4 KB pages. *)

val latency_study : unit -> variant list
(** 0 / 1000 / 4000 / 16000-cycle inter-SSMP latency. *)

val tlb_study : unit -> variant list
(** Unbounded vs finite software TLBs (capacity misses refill from the
    local page table at the Table 3 fill cost). *)

val adapt_study : unit -> variant list
(** Static vs adaptive coherence, under both the MGS and HLRC
    protocols: online sharing-pattern classification, regime switching
    (MGS only), and home migration. *)
