(* Shared mutable state of one simulated DSSMP running MGS.

   This module holds the data structures of all three protocol engines
   (Local Client, Remote Client, Server — paper Figure 4) plus the
   machine assembly record.  It is internal to the [mgs] library:
   applications go through {!Machine} and {!Api}; the synchronization
   library reaches in for the pieces it shares with the protocol (the
   active-message layer, CPUs, and the release operation). *)

module Bitset = Mgs_util.Bitset
module Sim = Mgs_engine.Sim
module Geom = Mgs_mem.Geom
module Pagedata = Mgs_mem.Pagedata
module Allocator = Mgs_mem.Allocator
module Topology = Mgs_machine.Topology
module Costs = Mgs_machine.Costs
module Cpu = Mgs_machine.Cpu
module Coherence = Mgs_cache.Coherence
module Adapt = Mgs_cache.Adapt
module Lan = Mgs_net.Lan
module Am = Mgs_am.Am
module Tlb = Mgs_svm.Tlb

(* Local Client page states (Figure 4 left).  The TLB_* states of the
   paper live in the per-processor TLBs; [pstate] is the SSMP-level
   page privilege. *)
type page_state = P_inv | P_read | P_write | P_busy

(* Per-(SSMP, page) client entry: the Local Client's mapping state plus
   the Remote Client's invalidation bookkeeping for the same frame. *)
type centry = {
  c_vpn : int;
  mutable pstate : page_state;
  mutable cdata : Pagedata.page option; (* physical local copy *)
  mutable ctwin : Pagedata.twin option;
      (* twin + dirty-word bitmap, present iff write privilege *)
  mutable ctwin_free : Pagedata.twin option;
      (* retired twin buffer kept for reuse: write privilege comes and
         goes many times per page, and a fresh twin is a page-sized
         allocation each time *)
  mutable frame_owner : int; (* local proc index of first toucher; -1 unset *)
  tlb_dir : Bitset.t; (* local procs holding a TLB mapping *)
  mlock : Mlock.t; (* per-mapping mutual exclusion (Table 1 col. L) *)
  mutable fetch_resume : (unit -> unit) option; (* fiber blocked in BUSY / upgrade *)
  mutable inv_count : int; (* outstanding PINV_ACKs *)
  mutable inv_tt : int; (* 1 = read inv, 2 = write inv (diff), 3 = single writer *)
  mutable c_dirty : bool; (* written since the last twin sync (dirty bit) *)
  mutable c_version : int; (* HLRC: home version this copy reflects *)
  mutable c_notwin : bool;
      (* adaptive single-writer regime: this write copy was granted
         without a twin (no diffing possible; a recall ships the whole
         page instead) *)
}

type ssmp_client = {
  cl_id : int;
  cl_pages : (int, centry) Hashtbl.t; (* vpn -> entry *)
  k_map : (int, int) Hashtbl.t;
      (* HLRC: page versions this SSMP has learned about through
         synchronization (its causal "knowledge") *)
}

(* Per-processor delayed update queue (Table 1): the set of pages this
   processor has written since its last release.  [psync] holds pages
   whose entry was removed by a PINV (arc 12) because an invalidation
   epoch is collecting the writes: the next release must still await
   that epoch's completion (a cheap SYNC, not a new flush). *)
type duq = {
  duq_set : (int, unit) Hashtbl.t;
  duq_q : int Queue.t;
  psync : (int, unit) Hashtbl.t;
}

(* Server states (Figure 4 right). *)
type server_state = S_read | S_write | S_rel

type sentry = {
  s_vpn : int;
  s_home_proc : int; (* global processor whose memory is home *)
  s_master : Pagedata.page; (* the physical home copy *)
  s_read_dir : Bitset.t; (* SSMPs holding read copies *)
  s_write_dir : Bitset.t; (* SSMPs holding write copies *)
  s_frame_procs : (int, int) Hashtbl.t; (* ssmp -> remote-client processor *)
  mutable s_state : server_state;
  mutable s_count : int; (* outstanding invalidation replies *)
  mutable s_retained : int; (* SSMP keeping its copy via 1WDATA; -1 none *)
  (* Replies are buffered and merged only when the last one arrives:
     the full page of a 1WDATA must be applied before any DIFF, or a
     concurrent upgrader's changes (WNOTIFY racing the REL) would be
     clobbered. *)
  mutable s_pending_page : Pagedata.page option;
  mutable s_pending_diffs : Pagedata.diff list;
  (* Requests parked during REL_IN_PROG carry the span context of the
     transaction they serve, so the eventual grant (sent from inside the
     epoch-completion handler, a different transaction) is still
     attributed to the requester's fault / release. *)
  mutable s_pend_rd : (int * Mgs_obs.Span.ctx) list;
      (* requester procs queued during REL_IN_PROG *)
  mutable s_pend_wr : (int * Mgs_obs.Span.ctx) list;
  mutable s_pend_rl : (int * Mgs_obs.Span.ctx) list; (* releasers awaiting RACK *)
  mutable s_pend_rel_next : (int * Mgs_obs.Span.ctx) list;
      (* RELs deferred past this epoch *)
  mutable s_ivy_grantee : int; (* Ivy: processor awaiting the pending grant *)
  mutable s_ivy_grant_write : bool;
  mutable s_version : int; (* HLRC: bumped on every merged update *)
  mutable s_cur_home : int;
      (* adaptive home migration: the processor currently serving this
         page.  Equals [s_home_proc] (the allocator's static home)
         until the policy migrates the page; only ever mutated by the
         serving shard at an epoch boundary. *)
  s_ad : Mgs_cache.Adapt.page option;
      (* per-page classifier window + regime; Some iff [t.adapt] *)
  mutable s_ext_diffs : Pagedata.diff list;
      (* diffs applied in pass 1 of an epoch extension whose retained
         copy is twinless: the recalled full page would clobber them,
         so they are re-applied after the blit in pass 2 *)
  mutable s_retained_notwin : bool;
      (* the copy in [s_retained] has no twin (granted under the
         single-writer regime) *)
}

(* Counters shared with the synchronization library (Figure 11). *)
type sync_counters = {
  mutable lock_acquires : int;
  mutable lock_hits : int; (* acquires satisfied without inter-SSMP messages *)
  mutable barrier_episodes : int;
}

(* Hooks registered by synchronization objects (the [Mgs_sync] lock
   registry) so the machine can reset and inspect them without a
   reverse library dependency: [Machine.reset_stats] runs every
   [sh_reset], [assert_quiescent] demands every [sh_waiters] be zero,
   and the metrics sampler sums [sh_waiters] into a gauge. *)
type sync_hook = {
  sh_name : string;
  sh_reset : unit -> unit; (* zero stats + drop dead queued waiters *)
  sh_waiters : unit -> int; (* fibers currently parked in the object *)
  sh_waiters_cell : int -> int;
      (* waiters attributed to one SSMP — read from that shard's own
         event context by the per-cell metrics sampler, so it must only
         touch state the shard owns (its processors' parked fibers) *)
}

(* Protocol feature toggles (ablation studies; see bench targets). *)
type features = {
  single_writer_opt : bool;  (* paper section 3.1.1: 1WINV/1WDATA path *)
  early_read_ack : bool;
      (* paper section 4.2.4 ("future implementation"): acknowledge
         read-only invalidations before the page cleaning completes,
         taking the cleaning off the release's critical path *)
  pipelined_release : bool;
      (* Table 1 arcs 8-10 drain the DUQ one REL at a time; with this
         flag every REL is sent before the first RACK is awaited, so
         independent pages' epochs overlap *)
}

let default_features =
  { single_writer_opt = true; early_read_ack = false; pipelined_release = false }

(* Which software page protocol runs between SSMPs. *)
type protocol =
  | Protocol_mgs  (* the paper's multiple-writer release-consistent protocol *)
  | Protocol_ivy  (* sequentially-consistent single-writer baseline *)
  | Protocol_hlrc
      (* home-based lazy release consistency (TreadMarks-lineage): diffs
         flush to the home at release with no invalidation fan-out;
         write notices ride the synchronization objects and invalidate
         acquirer copies lazily *)

type t = {
  sim : Sim.t;
  costs : Costs.t;
  features : features;
  protocol : protocol;
  geom : Geom.t;
  topo : Topology.t;
  heap : Allocator.t;
  cpus : Cpu.t array;
  caches : Coherence.t array; (* one per SSMP *)
  lan : Lan.t;
  am : Am.t;
  clients : ssmp_client array;
  duqs : duq array; (* indexed by processor *)
  servers : (int, sentry) Hashtbl.t; (* vpn -> home-side entry *)
  tlbs : Tlb.t array;
  pstats : Pstats.t;
      (* shard 0's (and every sequential run's) counter cell; shards
         1.. write [pstats_extra] instead — see {!stats} *)
  pstats_extra : Pstats.t array;
      (* per-shard counter cells for the sharded engine, indexed by
         SSMP; slot 0 is unused (shard 0 writes [pstats]).  Protocol
         counters are commutative sums, so per-shard cells merged at
         read time ({!pstats_sum}) equal the sequential totals. *)
  sync_counters : sync_counters;
  sync_extra : sync_counters array; (* same scheme as [pstats_extra] *)
  mutable sync_hooks : sync_hook list;
  rel_resume : (unit -> unit) option array; (* per proc: fiber awaiting RACK *)
  mutable fibers : Mgs_engine.Fiber.t list;
  mutable event_limit : int; (* livelock guard for Machine.run *)
  mutable par_jobs : int;
      (* requested engine domains; 0 = sequential engine (the default
         and the oracle), >= 1 = sharded engine with that many domains *)
  shadow : (int, float) Hashtbl.t option;
      (* sequentially-consistent mirror used to detect protocol data
         loss in data-race-free programs (config flag or MGS_SHADOW=1) *)
  mutable shadow_errors : int;
  mutable obs : Mgs_obs.Trace.t option;
      (* structured event trace; None = observability fully disabled *)
  mutable metrics : Mgs_obs.Metrics.t option;
      (* simulated-clock metrics sampler, piggybacking on [obs] *)
  adapt : Mgs_cache.Adapt.t option;
      (* adaptive per-page coherence: per-SSMP home views and
         forwarding tables.  None = the static protocol, whose wire
         traffic and counters stay byte-identical to a build without
         the adaptive layer. *)
  gen : int Atomic.t;
      (* machine-wide mapping generation, bumped by every protocol
         downcall that can replace or retire a page's local state
         (install, flush, upgrade, phase reset).  Per-ctx fast-path
         caches snapshot it and self-invalidate when it moves; see
         {!Api}.  Atomic because any shard may bump while another
         shard's fast path reads; a stale read only costs a spurious
         slow-path trip (the caches cache their own SSMP's state, which
         only their own shard retires). *)
}

(* Invalidate every per-ctx last-page cache.  Cheap (one increment), so
   protocol code calls it liberally — correctness only needs it on paths
   that retire [cdata]/[ctwin]/[frame_owner], staleness merely costs the
   next access its slow path. *)
let bump_gen m = Atomic.incr m.gen

(* The counter cell protocol code must bump: the executing shard's.
   Sequential runs (and host code) always resolve to [m.pstats], so the
   sharded engine costs the sequential path nothing but this branch. *)
let stats m =
  let c = Mgs_engine.Shard.cur () in
  if c <= 0 then m.pstats else m.pstats_extra.(c)

let syncs m =
  let c = Mgs_engine.Shard.cur () in
  if c <= 0 then m.sync_counters else m.sync_extra.(c)

(* Merged protocol counters: [m.pstats] plus every extra shard cell.
   This — not [m.pstats] — is what reports read on a sharded machine. *)
let pstats_sum m =
  let t = Pstats.copy m.pstats in
  Array.iteri (fun i p -> if i > 0 then Pstats.add_into t p) m.pstats_extra;
  t

let sync_sum m =
  let t =
    {
      lock_acquires = m.sync_counters.lock_acquires;
      lock_hits = m.sync_counters.lock_hits;
      barrier_episodes = m.sync_counters.barrier_episodes;
    }
  in
  Array.iteri
    (fun i s ->
      if i > 0 then begin
        t.lock_acquires <- t.lock_acquires + s.lock_acquires;
        t.lock_hits <- t.lock_hits + s.lock_hits;
        t.barrier_episodes <- t.barrier_episodes + s.barrier_episodes
      end)
    m.sync_extra;
  t

let local_idx m proc = proc mod m.topo.Topology.cluster

let global_proc m ssmp lidx = (ssmp * m.topo.Topology.cluster) + lidx

let home_proc_of_vpn m vpn = Allocator.home_of_vpn m.heap vpn

let client m ssmp = m.clients.(ssmp)

let get_centry m ssmp vpn =
  let cl = m.clients.(ssmp) in
  try Hashtbl.find cl.cl_pages vpn
  with Not_found ->
    let e =
      {
        c_vpn = vpn;
        pstate = P_inv;
        cdata = None;
        ctwin = None;
        ctwin_free = None;
        frame_owner = -1;
        tlb_dir = Bitset.create m.topo.Topology.cluster;
        mlock = Mlock.create ();
        fetch_resume = None;
        inv_count = 0;
        inv_tt = 0;
        c_dirty = false;
        c_version = 0;
        c_notwin = false;
      }
    in
    Hashtbl.add cl.cl_pages vpn e;
    e

(* Twin buffers cycle through the entry's free slot: [retire_twin]
   parks the outgoing twin, [take_twin] reuses it via [Pagedata.retwin]
   (same resulting state as a fresh [twin_of], without the page-sized
   allocation). *)
let take_twin ce ~from =
  match ce.ctwin_free with
  | Some t ->
    ce.ctwin_free <- None;
    Pagedata.retwin t ~from;
    t
  | None -> Pagedata.twin_of from

let retire_twin ce =
  (match ce.ctwin with Some t -> ce.ctwin_free <- Some t | None -> ());
  ce.ctwin <- None

let get_sentry m vpn =
  try Hashtbl.find m.servers vpn
  with Not_found ->
    let e =
      {
        s_vpn = vpn;
        s_home_proc = home_proc_of_vpn m vpn;
        s_master = Pagedata.create m.geom;
        s_read_dir = Bitset.create m.topo.Topology.nssmps;
        s_write_dir = Bitset.create m.topo.Topology.nssmps;
        s_frame_procs = Hashtbl.create 8;
        s_state = S_read;
        s_count = 0;
        s_retained = -1;
        s_pending_page = None;
        s_pending_diffs = [];
        s_pend_rd = [];
        s_pend_wr = [];
        s_pend_rl = [];
        s_pend_rel_next = [];
        s_ivy_grantee = -1;
        s_ivy_grant_write = false;
        s_version = 0;
        s_cur_home = home_proc_of_vpn m vpn;
        s_ad =
          (match m.adapt with
          | Some _ -> Some (Adapt.new_page ~nssmps:m.topo.Topology.nssmps)
          | None -> None);
        s_ext_diffs = [];
        s_retained_notwin = false;
      }
    in
    Hashtbl.add m.servers vpn e;
    e

(* Delayed update queue: a set with FIFO flush order. *)
let duq_add d vpn =
  if not (Hashtbl.mem d.duq_set vpn) then begin
    Hashtbl.replace d.duq_set vpn ();
    Queue.add vpn d.duq_q
  end

let rec duq_pop d =
  match Queue.take_opt d.duq_q with
  | None -> None
  | Some vpn ->
    if Hashtbl.mem d.duq_set vpn then begin
      Hashtbl.remove d.duq_set vpn;
      Some vpn
    end
    else duq_pop d

let duq_is_empty d = Hashtbl.length d.duq_set = 0

(* Lightweight protocol tracing for debugging: set MGS_TRACE_VPN to a
   page number to stream that page's protocol events to stderr. *)
let trace_vpn =
  match Sys.getenv_opt "MGS_TRACE_VPN" with Some s -> int_of_string s | None -> -1

(* Call sites must guard with [if tracing then trace ...]: a bare call
   evaluates its arguments (often [Format.asprintf]) and spins up the
   printf machinery even when the output is discarded, which on the
   protocol's per-operation paths is a real allocation cost. *)
let tracing = trace_vpn >= 0

let trace m vpn fmt =
  if vpn = trace_vpn then
    Printf.eprintf ("[t=%d vpn=%d] " ^^ fmt ^^ "\n%!") (Sim.now m.sim) vpn
  else Printf.ifprintf stderr fmt

(* --- causal spans ----------------------------------------------------

   Thin wrappers over {!Mgs_obs.Span} that collapse to a single branch
   when observability is off.  The ambient context discipline: message
   handlers run under the context installed by {!Mgs_am.Am}; fibers
   restore their own root context after every suspension. *)

module Span = Mgs_obs.Span

let span_current m =
  match m.obs with
  | None -> Span.none
  | Some tr -> Span.current (Mgs_obs.Trace.spans tr)

let span_set m ctx =
  match m.obs with
  | None -> ()
  | Some tr -> Span.set_current (Mgs_obs.Trace.spans tr) ctx

(* Open a span as a child of [parent] (default: the ambient context),
   starting now.  With [parent = Span.none] this mints a fresh
   transaction — the root of a fault / release / sync episode. *)
let span_open m ?parent ~label ~engine ?(vpn = -1) ?(src = -1) ?(dst = -1) ?(words = 0) ()
    =
  match m.obs with
  | None -> Span.none
  | Some tr ->
    let sp = Mgs_obs.Trace.spans tr in
    let parent = match parent with Some p -> p | None -> Span.current sp in
    let src_ssmp = if src >= 0 then Topology.ssmp_of_proc m.topo src else -1 in
    let dst_ssmp = if dst >= 0 then Topology.ssmp_of_proc m.topo dst else -1 in
    Span.open_span_x sp ~parent ~time:(Sim.now m.sim) ~label ~engine ~vpn ~src ~dst
      ~src_ssmp ~dst_ssmp ~words

let span_close m ctx =
  match m.obs with
  | None -> ()
  | Some tr -> Span.close (Mgs_obs.Trace.spans tr) ctx ~time:(Sim.now m.sim)

(* Run [f] with [ctx] as the ambient context, restoring afterwards. *)
let span_with m ctx f =
  match m.obs with
  | None -> f ()
  | Some tr ->
    let sp = Mgs_obs.Trace.spans tr in
    let saved = Span.current sp in
    Span.set_current sp ctx;
    f ();
    Span.set_current sp saved

(* Structured event emission: one cheap branch when observability is
   off, a full {!Mgs_obs.Event.t} into the trace when it is on.  The
   protocol engines call this at every state transition; the online
   invariant checker rides the trace's subscriber list.  Every event is
   stamped with the ambient transaction ID so traces correlate with
   spans. *)
(* All arguments are required: optional arguments would box a [Some]
   per supplied value at every call site, and this runs at every
   protocol transition.  Absent fields are passed as [-1] / [0]
   explicitly. *)
let obs_emit m ~engine ~tag ~vpn ~src ~dst ~words ~cost ~dur =
  match m.obs with
  | None -> ()
  | Some tr ->
    (* Build the record literally: routing every field through
       [Event.make]'s optional arguments boxes each one in a [Some] at
       the call — ~10 heap blocks per traced event. *)
    Mgs_obs.Trace.emit tr
      {
        Mgs_obs.Event.time = Sim.now m.sim;
        engine;
        tag;
        vpn;
        src;
        dst;
        src_ssmp = (if src < 0 then -1 else Topology.ssmp_of_proc m.topo src);
        dst_ssmp = (if dst < 0 then -1 else Topology.ssmp_of_proc m.topo dst);
        words;
        cost;
        dur;
        txn = (Span.current (Mgs_obs.Trace.spans tr)).Span.txn;
      }
