let pct x = Printf.sprintf "%.0f%%" (100. *. x)

let breakdown_figure ~title points =
  let labels = List.map (fun p -> Printf.sprintf "C=%d" p.Sweep.cluster) points in
  let values =
    Array.of_list
      (List.map
         (fun p ->
           let b = p.Sweep.report.Mgs.Report.breakdown in
           [| b.Mgs.Report.user; b.Mgs.Report.lock; b.Mgs.Report.barrier; b.Mgs.Report.mgs |])
         points)
  in
  let bars =
    Mgs_util.Tableprint.stacked_bars ~title ~labels
      ~series_names:[ "User"; "Lock"; "Barrier"; "MGS" ]
      ~values ()
  in
  let rows =
    List.map
      (fun p ->
        let r = p.Sweep.report in
        let b = r.Mgs.Report.breakdown in
        [
          string_of_int p.Sweep.cluster;
          string_of_int r.Mgs.Report.runtime;
          Printf.sprintf "%.0f" b.Mgs.Report.user;
          Printf.sprintf "%.0f" b.Mgs.Report.lock;
          Printf.sprintf "%.0f" b.Mgs.Report.barrier;
          Printf.sprintf "%.0f" b.Mgs.Report.mgs;
          string_of_int r.Mgs.Report.lan_messages;
        ])
      points
  in
  let table =
    Mgs_util.Tableprint.render
      ~header:[ "C"; "Runtime"; "User"; "Lock"; "Barrier"; "MGS"; "LAN msgs" ]
      ~rows
  in
  let metrics =
    Printf.sprintf "breakup penalty = %s, multigrain potential = %s, curvature = %s (%.3f)\n"
      (pct (Sweep.breakup_penalty points))
      (pct (Sweep.multigrain_potential points))
      (Sweep.curvature_class points)
      (Sweep.multigrain_curvature points)
  in
  bars ^ "\n" ^ table ^ metrics

let lock_figure named_sweeps =
  let clusters =
    match named_sweeps with
    | (_, points) :: _ -> List.map (fun p -> p.Sweep.cluster) points
    | [] -> []
  in
  let header = "App" :: List.map (fun c -> Printf.sprintf "C=%d" c) clusters in
  let rows =
    List.map
      (fun (name, points) ->
        name
        :: List.map (fun p -> Printf.sprintf "%.3f" p.Sweep.lock_hit_ratio) points)
      named_sweeps
  in
  Mgs_util.Tableprint.render ~header ~rows

(* Figure-11 companion: the contended-lock microbenchmark family.
   One row per (lock, protocol, C, fibers) point — handoff latency
   (mean/max gap from a release to the next cross-processor acquire),
   hit ratio, and fairness as the gap's coefficient of variation. *)
let pp_lock_table points =
  let rows =
    List.map
      (fun (p : Micro.lock_point) ->
        let g = p.Micro.lk_gap in
        [
          p.Micro.lk_lock;
          p.Micro.lk_protocol;
          string_of_int p.Micro.lk_cluster;
          string_of_int p.Micro.lk_fibers;
          string_of_int p.Micro.lk_acquires;
          Printf.sprintf "%.3f" p.Micro.lk_hit_ratio;
          string_of_int p.Micro.lk_handoffs;
          (if g.Mgs_sync.Locks.n = 0 then "-"
           else Printf.sprintf "%.0f" g.Mgs_sync.Locks.mean);
          (if g.Mgs_sync.Locks.n = 0 then "-" else string_of_int g.Mgs_sync.Locks.max);
          (if g.Mgs_sync.Locks.n = 0 then "-"
           else Printf.sprintf "%.2f" g.Mgs_sync.Locks.cv);
          string_of_int p.Micro.lk_runtime;
        ])
      points
  in
  Mgs_util.Tableprint.render
    ~header:
      [
        "Lock"; "Proto"; "C"; "Fibers"; "Acquires"; "Hit"; "Handoffs"; "Gap mean";
        "Gap max"; "Gap cv"; "Runtime";
      ]
    ~rows

(* Adaptive-vs-static ablation table: one row per (app, protocol, P, C)
   cell, pairing the static run's cycles against the adaptive run's and
   showing what the adaptive layer actually did (reclassifications,
   home migrations, forwarded requests, yielded pages). *)
type adapt_row = {
  ar_app : string;
  ar_protocol : string;
  ar_procs : int;
  ar_cluster : int;
  ar_static : Mgs.Report.t;
  ar_adapt : Mgs.Report.t;
}

let pp_adapt_table rows =
  let table_rows =
    List.map
      (fun r ->
        let s = r.ar_static.Mgs.Report.runtime and a = r.ar_adapt.Mgs.Report.runtime in
        let delta =
          if s = 0 then "-"
          else Printf.sprintf "%+.1f%%" (100. *. float_of_int (a - s) /. float_of_int s)
        in
        let ps = r.ar_adapt.Mgs.Report.pstats in
        [
          r.ar_app;
          r.ar_protocol;
          string_of_int r.ar_procs;
          string_of_int r.ar_cluster;
          string_of_int s;
          string_of_int a;
          delta;
          string_of_int ps.Mgs.Pstats.adapt_reclass;
          string_of_int ps.Mgs.Pstats.adapt_migs;
          string_of_int ps.Mgs.Pstats.adapt_fwds;
          string_of_int ps.Mgs.Pstats.adapt_yields;
          Printf.sprintf "%d/%d/%d" ps.Mgs.Pstats.adapt_res_mw ps.Mgs.Pstats.adapt_res_sw
            ps.Mgs.Pstats.adapt_res_inv;
        ])
      rows
  in
  Mgs_util.Tableprint.render
    ~header:
      [
        "App"; "Proto"; "P"; "C"; "Static"; "Adaptive"; "Delta"; "Reclass"; "Migs";
        "Fwds"; "Yields"; "Res mw/sw/inv";
      ]
    ~rows:table_rows

(* Engine self-profile: one row per shard of the discrete-event engine.
   Executed and cross-shard sends are deterministic (identical between
   jobs=1 and jobs>=2); merges, stalls, and wall seconds describe the
   host-side windowed run and vary with scheduling. *)
let pp_shard_table sim =
  let rows =
    Mgs_engine.Sim.shard_stats sim |> Array.to_list
    |> List.map (fun (s : Mgs_engine.Sim.shard_stat) ->
           [
             string_of_int s.Mgs_engine.Sim.st_id;
             string_of_int s.Mgs_engine.Sim.st_executed;
             string_of_int s.Mgs_engine.Sim.st_xsends;
             string_of_int s.Mgs_engine.Sim.st_clamped;
             string_of_int s.Mgs_engine.Sim.st_peak;
             string_of_int s.Mgs_engine.Sim.st_merges;
             string_of_int s.Mgs_engine.Sim.st_stalls;
             Printf.sprintf "%.3f" s.Mgs_engine.Sim.st_wall;
           ])
  in
  let table =
    Mgs_util.Tableprint.render
      ~header:
        [
          "Shard"; "Executed"; "X-sends"; "Clamped"; "Peak"; "Merges"; "Stalls"; "Wall s";
        ]
      ~rows
  in
  table
  ^ Printf.sprintf "windows = %d, barrier wall = %.3fs\n" (Mgs_engine.Sim.windows sim)
      (Mgs_engine.Sim.barrier_wall sim)

let csv_of_sweep ~name points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "app,cluster,runtime,user,lock,barrier,mgs,lan_messages,lan_words,lock_hit_ratio\n";
  List.iter
    (fun p ->
      let r = p.Sweep.report in
      let b = r.Mgs.Report.breakdown in
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%.0f,%.0f,%.0f,%.0f,%d,%d,%.4f\n" name p.Sweep.cluster
           r.Mgs.Report.runtime b.Mgs.Report.user b.Mgs.Report.lock b.Mgs.Report.barrier
           b.Mgs.Report.mgs r.Mgs.Report.lan_messages r.Mgs.Report.lan_words
           p.Sweep.lock_hit_ratio))
    points;
  Buffer.contents buf

let message_mix points =
  (* union of tags across the sweep, one column per cluster size *)
  let tags =
    List.sort_uniq compare
      (List.concat_map
         (fun p -> List.map fst p.Sweep.report.Mgs.Report.messages_by_tag)
         points)
  in
  let header = "tag" :: List.map (fun p -> Printf.sprintf "C=%d" p.Sweep.cluster) points in
  let rows =
    List.map
      (fun tag ->
        tag
        :: List.map
             (fun p ->
               string_of_int
                 (Option.value ~default:0
                    (List.assoc_opt tag p.Sweep.report.Mgs.Report.messages_by_tag)))
             points)
      tags
  in
  Mgs_util.Tableprint.render ~header ~rows

let protocol_ops points =
  (* one row per protocol counter, one column per cluster size — the
     operation-mix companion to [message_mix], including the
     single-writer reply split (1WDATA vs 1WCLEAN) *)
  let counters =
    [
      ("read fetches", fun (s : Mgs.Pstats.t) -> s.Mgs.Pstats.read_fetches);
      ("write fetches", fun s -> s.Mgs.Pstats.write_fetches);
      ("upgrades", fun s -> s.Mgs.Pstats.upgrades);
      ("release ops", fun s -> s.Mgs.Pstats.release_ops);
      ("RELs", fun s -> s.Mgs.Pstats.releases);
      ("SYNCs", fun s -> s.Mgs.Pstats.syncs);
      ("INVs", fun s -> s.Mgs.Pstats.invals);
      ("1WINVs", fun s -> s.Mgs.Pstats.one_winvals);
      ("PINVs", fun s -> s.Mgs.Pstats.pinvs);
      ("ACK replies", fun s -> s.Mgs.Pstats.acks);
      ("DIFF replies", fun s -> s.Mgs.Pstats.diffs);
      ("diff words", fun s -> s.Mgs.Pstats.diff_words);
      ("1WDATA replies", fun s -> s.Mgs.Pstats.one_wdata);
      ("1WCLEAN replies", fun s -> s.Mgs.Pstats.one_wclean);
    ]
  in
  let header =
    "operation" :: List.map (fun p -> Printf.sprintf "C=%d" p.Sweep.cluster) points
  in
  let rows =
    List.map
      (fun (name, get) ->
        name
        :: List.map
             (fun p -> string_of_int (get p.Sweep.report.Mgs.Report.pstats))
             points)
      counters
  in
  Mgs_util.Tableprint.render ~header ~rows

(* Table-4-style remote-fault latency decomposition, rendered purely
   from the span-derived critical-path breakdown: per-fault averages of
   each pipeline component plus the uninstrumented residual. *)
let fault_latency rows =
  let per b n = if b.Mgs_obs.Span.faults = 0 then "-" else
      Printf.sprintf "%.0f" (float_of_int n /. float_of_int b.Mgs_obs.Span.faults)
  in
  let table_rows =
    List.map
      (fun (cluster, b) ->
        let open Mgs_obs.Span in
        [
          string_of_int cluster;
          string_of_int b.faults;
          per b b.e2e;
          per b b.local;
          per b b.wire;
          per b b.dma;
          per b b.server;
          per b b.remote;
          per b b.queue;
          per b b.residual;
          Printf.sprintf "%.1f%%" (100. *. Mgs_obs.Span.coverage b);
        ])
      rows
  in
  "Remote page-fault latency breakdown (cycles per fault, span-derived)\n"
  ^ Mgs_util.Tableprint.render
      ~header:
        [
          "C"; "Faults"; "E2E"; "Local"; "Wire"; "DMA"; "Server"; "Remote"; "Queue";
          "Resid"; "Coverage";
        ]
      ~rows:table_rows

(* Tail-latency table for the request-serving tier: one row per
   operation class, percentiles in simulated cycles. *)
type latency_row = {
  lr_op : string;
  lr_count : int;
  lr_mean : float;
  lr_p50 : int;
  lr_p99 : int;
  lr_p999 : int;
  lr_max : int;
}

let pp_latency_table ?coverage rows =
  let table_rows =
    List.map
      (fun r ->
        [
          r.lr_op;
          string_of_int r.lr_count;
          Printf.sprintf "%.0f" r.lr_mean;
          string_of_int r.lr_p50;
          string_of_int r.lr_p99;
          string_of_int r.lr_p999;
          string_of_int r.lr_max;
        ])
      rows
  in
  "Request latency (simulated cycles, open-loop: queueing included)\n"
  ^ Mgs_util.Tableprint.render
      ~header:[ "op"; "count"; "mean"; "p50"; "p99"; "p999"; "max" ]
      ~rows:table_rows
  ^
  match coverage with
  | None -> ""
  | Some c -> Printf.sprintf "span attribution: %.1f%% of op latency covered\n" (100. *. c)

type table4_row = { app : string; problem_size : string; seq_runtime : int; speedup : float }

let table4 rows =
  Mgs_util.Tableprint.render
    ~header:[ "Application"; "Problem Size"; "Seq (cycles)"; "Speedup" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.app;
             r.problem_size;
             Mgs_util.Tableprint.fmt_cycles (float_of_int r.seq_runtime);
             Printf.sprintf "%.1f" r.speedup;
           ])
         rows)

let metrics_summary named_sweeps =
  Mgs_util.Tableprint.render
    ~header:[ "App"; "Breakup penalty"; "Multigrain potential"; "Curvature" ]
    ~rows:
      (List.map
         (fun (name, points) ->
           [
             name;
             pct (Sweep.breakup_penalty points);
             pct (Sweep.multigrain_potential points);
             Sweep.curvature_class points;
           ])
         named_sweeps)
