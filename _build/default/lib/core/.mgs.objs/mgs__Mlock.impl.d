lib/core/mlock.ml: Mgs_engine Queue
