(** DSSMP topology: P processors grouped into SSMPs (clusters) of C
    processors each.

    The paper's framework keeps P fixed and varies C from 1 (all-software
    sharing) to P (one tightly-coupled machine). *)

type t = private {
  nprocs : int;  (** P: total processors *)
  cluster : int;  (** C: processors per SSMP *)
  nssmps : int;  (** P / C *)
}

val create : nprocs:int -> cluster:int -> t
(** @raise Invalid_argument unless [1 <= cluster <= nprocs] and
    [cluster] divides [nprocs]. *)

val ssmp_of_proc : t -> int -> int
(** SSMP (cluster) containing processor [p]. *)

val first_proc_of_ssmp : t -> int -> int
(** Lowest-numbered processor of SSMP [s]. *)

val procs_of_ssmp : t -> int -> int list
(** Processors of SSMP [s], ascending. *)

val same_ssmp : t -> int -> int -> bool

val single_ssmp : t -> bool
(** [true] iff C = P: the tightly-coupled degenerate case where the
    software protocol never runs. *)
