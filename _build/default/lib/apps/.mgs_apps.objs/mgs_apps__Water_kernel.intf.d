lib/apps/water_kernel.mli: Mgs_harness
