(** Typed metrics registry + simulated-clock sampler, sharded per SSMP.

    Counters, gauges, and histograms register under a name plus
    optional labels (e.g. SSMP, engine).  Scalar storage is per-cell
    (one cell per engine shard): writes land in the writing shard's
    cell, so nothing on the hot path is shared under the parallel
    engine, and exports merge the cells pointwise.

    Sampling runs on a fixed boundary grid (row k at simulated time
    [k * interval]): each cell's row is snapshotted by the first of its
    events to reach that boundary, back-filling crossed boundaries, so
    the merged time-series is byte-identical across engine job counts.
    Rows live in a bounded per-cell ring — the most recent window
    survives, older rows are counted as dropped.  Histograms are not
    sampled; they export as end-of-run summaries.

    The sampler is driven by the engine's per-event hook ({!on_event})
    plus a final {!sample} when the run ends. *)

type t

type counter

type gauge

val create : ?interval:int -> ?max_samples:int -> ?cells:int -> unit -> t
(** Defaults: sample every 10000 cycles, keep 4096 samples (per cell),
    one cell.  Pass [cells] = the machine's SSMP count so each
    simulator domain writes its own cell. *)

val interval : t -> int

val cells : t -> int

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Register (or fetch) a monotone counter.  The full series name is
    [name{k=v,...}] with labels sorted.
    @raise Invalid_argument after sampling has started. *)

val incr : ?by:int -> counter -> unit
(** Increment in the calling shard's cell. *)

val counter_value : counter -> int
(** Sum over cells. *)

val gauge : t -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit
(** Set the calling shard's cell; the exported value sums the cells. *)

val gauge_value : gauge -> float

val histogram : t -> ?labels:(string * string) list -> string -> Hist.t

val observe : Hist.t -> int -> unit

val probe : t -> ?labels:(string * string) list -> string -> (unit -> float) -> unit
(** Register a live-state probe polled at each sample, in cell 0 only —
    for state that is global or host-side (e.g. fault-injection
    schedules).  Shard-owned state wants {!probe_cell}. *)

val probe_cell : t -> ?labels:(string * string) list -> string -> (int -> float) -> unit
(** Register a per-cell probe: [read cell] is polled when cell [cell]
    samples, from that cell's own event context — it must read only
    state owned by that shard. *)

val columns : t -> string list
(** Series names in registration order (the CSV/JSON column order). *)

val on_event : t -> cell:int -> now:int -> unit
(** Pre-event hook from the engine: snapshot cell [cell] at every
    sampling boundary crossed since its previous event. *)

val tick : t -> now:int -> unit
(** [on_event] for cell 0 — host-side convenience. *)

val sample : t -> now:int -> unit
(** Fill every cell to the last crossed boundary, then snapshot every
    cell at exactly [now] (overwriting a row already at [now]).  The
    first row freezes the column set. *)

val samples : t -> (int * float array) list
(** Merged rows, oldest first, values in {!columns} order: the
    per-cell series summed pointwise at each sampling time. *)

val sample_count : t -> int

val dropped : t -> int
(** Rows evicted by the ring bound (max over cells). *)

val csv : t -> string
(** [time,series...] header plus one row per sample. *)

val json : t -> string
(** Schema ["mgs-metrics-1"]: column names, sample rows, and histogram
    summaries. *)

val write_json : t -> out_channel -> unit

val write_csv : t -> out_channel -> unit
