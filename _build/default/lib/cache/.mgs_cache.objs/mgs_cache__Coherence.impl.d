lib/cache/coherence.ml: Array Hashtbl List Mgs_machine Mgs_mem Mgs_util Printf
