type measurement = { name : string; group : string; paper : int; measured : int }

(* Each micro benchmark builds a dedicated little machine, sequences its
   steps with generous wall-clock gaps (Api.idle_until), brackets the
   operation of interest with Api.cycles, and subtracts the independently
   measured overheads (translation, the data access after a fault) so
   the reported number isolates the same quantity as Table 3. *)

let step = 1_000_000 (* cycle gap between sequenced steps *)

let hw_costs (costs : Mgs_machine.Costs.t) = costs.hardware

(* --- hardware shared memory (single SSMP, C = P: no software protocol) *)

let measure_hardware costs =
  let cfg = Mgs.Machine.config ~costs ~nprocs:8 ~cluster:8 () in
  let m = Mgs.Machine.create cfg in
  let base = Mgs.Machine.alloc m ~words:1024 ~home:(Mgs_mem.Allocator.On_proc 0) in
  let lw = (Mgs.Machine.geom m).Mgs_mem.Geom.line_words in
  let xl = costs.Mgs_machine.Costs.svm.array_translation in
  let results = Hashtbl.create 8 in
  let bracket ctx name extra f =
    let c0 = Mgs.Api.cycles ctx in
    f ();
    Hashtbl.replace results name (Mgs.Api.cycles ctx - c0 - xl - extra)
  in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         (* line k of the page is word base + k*lw *)
         let line k = base + (k * lw) in
         (match p with
         | 0 ->
           (* warm the TLB so fills don't pollute the first bracket *)
           ignore (Mgs.Api.read ctx (line 0));
           bracket ctx "Cache Miss Local" 0 (fun () -> ignore (Mgs.Api.read ctx (line 1)));
           Mgs.Api.idle_until ctx (3 * step);
           (* dirty line 3 at home for the 2-party measurement *)
           Mgs.Api.write ctx (line 3) 1.0
         | 1 ->
           Mgs.Api.idle_until ctx step;
           ignore (Mgs.Api.read ctx (line 0));
           bracket ctx "Cache Miss Remote" 0 (fun () -> ignore (Mgs.Api.read ctx (line 2)));
           Mgs.Api.idle_until ctx (4 * step);
           bracket ctx "Cache Miss 2-party" 0 (fun () -> ignore (Mgs.Api.read ctx (line 3)));
           (* dirty line 4 away from home for the 3-party measurement *)
           Mgs.Api.write ctx (line 4) 2.0
         | 2 ->
           Mgs.Api.idle_until ctx (5 * step);
           ignore (Mgs.Api.read ctx (line 0));
           bracket ctx "Cache Miss 3-party" 0 (fun () -> ignore (Mgs.Api.read ctx (line 4)))
         | _ -> ());
         (* procs 0..6 populate line 5's sharer set past the five
            hardware pointers; proc 7 then measures the LimitLESS
            software-extended read. *)
         Mgs.Api.idle_until ctx ((6 + p) * step);
         if p < 7 then ignore (Mgs.Api.read ctx (line 5))
         else begin
           (* warm proc 7's TLB on another line of the same page *)
           ignore (Mgs.Api.read ctx (line 6));
           bracket ctx "Remote Software" (hw_costs costs).miss_remote (fun () ->
               ignore (Mgs.Api.read ctx (line 5)))
         end;
         Mgs.Api.idle_until ctx (20 * step)));
  results

(* --- software virtual memory ---------------------------------------- *)

let measure_svm costs =
  let cfg = Mgs.Machine.config ~costs ~nprocs:1 ~cluster:1 () in
  let m = Mgs.Machine.create cfg in
  let base = Mgs.Machine.alloc m ~words:128 ~home:(Mgs_mem.Allocator.On_proc 0) in
  let hit = (hw_costs costs).cache_hit in
  let results = Hashtbl.create 4 in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         ignore (Mgs.Api.read ctx base);
         let c0 = Mgs.Api.cycles ctx in
         ignore (Mgs.Api.read ctx ~kind:Mgs_svm.Translate.Array base);
         Hashtbl.replace results "Distributed Array Translation"
           (Mgs.Api.cycles ctx - c0 - hit);
         let c0 = Mgs.Api.cycles ctx in
         ignore (Mgs.Api.read ctx ~kind:Mgs_svm.Translate.Pointer base);
         Hashtbl.replace results "Pointer Translation" (Mgs.Api.cycles ctx - c0 - hit)));
  results

(* --- software shared memory (multi-SSMP, zero LAN delay) ------------- *)

let measure_ssm costs =
  let costs = Mgs_machine.Costs.with_lan_latency costs 0 in
  let cfg = Mgs.Machine.config ~costs ~nprocs:8 ~cluster:2 () in
  let m = Mgs.Machine.create cfg in
  let geom = Mgs.Machine.geom m in
  let pw = geom.Mgs_mem.Geom.page_words in
  (* one page per software measurement, all homed on proc 0 (SSMP 0) *)
  let page_a = Mgs.Machine.alloc m ~words:pw ~home:(Mgs_mem.Allocator.On_proc 0) in
  let page_b = Mgs.Machine.alloc m ~words:pw ~home:(Mgs_mem.Allocator.On_proc 0) in
  let page_c = Mgs.Machine.alloc m ~words:pw ~home:(Mgs_mem.Allocator.On_proc 0) in
  let page_d = Mgs.Machine.alloc m ~words:pw ~home:(Mgs_mem.Allocator.On_proc 0) in
  let xl = costs.Mgs_machine.Costs.svm.array_translation in
  let hw = hw_costs costs in
  let results = Hashtbl.create 8 in
  let bracket ctx name extra f =
    let c0 = Mgs.Api.cycles ctx in
    f ();
    Hashtbl.replace results name (Mgs.Api.cycles ctx - c0 - extra)
  in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         (match Mgs.Api.proc ctx with
         | 1 ->
           (* bring page_a into SSMP 0 so proc 0 can measure a pure fill *)
           ignore (Mgs.Api.read ctx page_a)
         | 0 ->
           Mgs.Api.idle_until ctx step;
           bracket ctx "TLB Fill" (xl + hw.miss_remote) (fun () ->
               ignore (Mgs.Api.read ctx page_a))
         | 2 ->
           (* SSMP 1: inter-SSMP read and write misses, then the
              single-writer release *)
           Mgs.Api.idle_until ctx (2 * step);
           bracket ctx "Inter-SSMP Read Miss" (xl + hw.miss_local) (fun () ->
               ignore (Mgs.Api.read ctx page_b));
           Mgs.Api.idle_until ctx (3 * step);
           bracket ctx "Inter-SSMP Write Miss" (xl + hw.miss_local) (fun () ->
               Mgs.Api.write ctx page_c 1.0);
           Mgs.Api.idle_until ctx (4 * step);
           bracket ctx "Release (1 writer)" 0 (fun () -> Mgs.Api.release ctx);
           (* two-writer release: dirty the low half of page_d, wait for
              SSMP 2 to dirty the high half *)
           Mgs.Api.idle_until ctx (5 * step);
           for i = 0 to (pw / 2) - 1 do
             Mgs.Api.write ctx (page_d + i) 2.0
           done;
           Mgs.Api.idle_until ctx (7 * step);
           bracket ctx "Release (2 writers)" 0 (fun () -> Mgs.Api.release ctx)
         | 4 ->
           (* SSMP 2: second writer of page_d *)
           Mgs.Api.idle_until ctx (6 * step);
           for i = pw / 2 to pw - 1 do
             Mgs.Api.write ctx (page_d + i) 3.0
           done
           (* its own release is not measured; leave the DUQ to be
              invalidated by SSMP 1's release *)
         | _ -> ());
         Mgs.Api.idle_until ctx (20 * step)));
  results

let paper_values =
  [
    ("Cache Miss Local", "Hardware Shared Memory", 11);
    ("Cache Miss Remote", "Hardware Shared Memory", 38);
    ("Cache Miss 2-party", "Hardware Shared Memory", 42);
    ("Cache Miss 3-party", "Hardware Shared Memory", 63);
    ("Remote Software", "Hardware Shared Memory", 425);
    ("Distributed Array Translation", "Software Virtual Memory", 18);
    ("Pointer Translation", "Software Virtual Memory", 24);
    ("TLB Fill", "Software Shared Memory", 1037);
    ("Inter-SSMP Read Miss", "Software Shared Memory", 6982);
    ("Inter-SSMP Write Miss", "Software Shared Memory", 16331);
    ("Release (1 writer)", "Software Shared Memory", 14226);
    ("Release (2 writers)", "Software Shared Memory", 32570);
  ]

let run_all ?(costs = Mgs_machine.Costs.default) () =
  let hw = measure_hardware costs in
  let svm = measure_svm costs in
  let ssm = measure_ssm costs in
  let find name =
    match
      ( Hashtbl.find_opt hw name,
        Hashtbl.find_opt svm name,
        Hashtbl.find_opt ssm name )
    with
    | Some v, _, _ | _, Some v, _ | _, _, Some v -> v
    | None, None, None -> failwith ("micro measurement missing: " ^ name)
  in
  List.map
    (fun (name, group, paper) -> { name; group; paper; measured = find name })
    paper_values

(* --- contended-lock microbenchmarks (Figure 11 companion) ------------ *)

(* One contended-lock run: [fibers] processors hammer a single lock,
   each critical section reading and incrementing a lock-protected
   shared counter (so coherence work rides the lock exactly as in the
   apps), with think time between iterations.  The counter doubles as
   the correctness oracle: every increment must survive whichever lock
   algorithm and coherence protocol ran. *)

type lock_point = {
  lk_lock : string;
  lk_protocol : string;
  lk_cluster : int;
  lk_fibers : int;  (** contending fibers (one per processor) *)
  lk_acquires : int;
  lk_hit_ratio : float;
  lk_handoffs : int;
  lk_gap : Mgs_sync.Locks.gap_stats;  (** handoff latency + fairness *)
  lk_runtime : int;
  lk_sim_events : int;
}

let lock_point ?(iters = 16) ?(crit = 200) ?(think = 1500) ?(par = 0) ?(adapt = false)
    ~lock ~protocol ~cluster ~fibers () =
  (* enough processors for the contenders, rounded up so C divides P *)
  let nprocs = (max fibers cluster + cluster - 1) / cluster * cluster in
  let cfg =
    Mgs.Machine.config ~lan_latency:1000
      ~protocol:(Mgs.Protocol.proto_of_name protocol) ~par_jobs:par ~adapt ~nprocs
      ~cluster ()
  in
  let m = Mgs.Machine.create cfg in
  let counter =
    Mgs.Machine.alloc m
      ~words:(Mgs.Machine.geom m).Mgs_mem.Geom.page_words
      ~home:(Mgs_mem.Allocator.On_proc 0)
  in
  Mgs.Machine.poke m counter 0.0;
  let l = Mgs_sync.Locks.make m lock in
  let report =
    Mgs.Machine.run m (fun ctx ->
        let p = Mgs.Api.proc ctx in
        if p < fibers then begin
          (* stagger arrivals so the queues see varied interleavings *)
          Mgs.Api.compute ctx (1 + (p * 613));
          for _ = 1 to iters do
            Mgs_sync.Locks.acquire ctx l;
            let v = Mgs.Api.read ctx counter in
            Mgs.Api.compute ctx crit;
            Mgs.Api.write ctx counter (v +. 1.);
            Mgs_sync.Locks.release ctx l;
            Mgs.Api.compute ctx think
          done
        end)
  in
  Mgs.Machine.assert_quiescent m;
  let expect = float_of_int (fibers * iters) in
  let got = Mgs.Machine.peek m counter in
  if got <> expect then
    failwith
      (Printf.sprintf "lock bench %s/%s C=%d n=%d: counter %.0f, expected %.0f" lock
         protocol cluster fibers got expect);
  {
    lk_lock = lock;
    lk_protocol = protocol;
    lk_cluster = cluster;
    lk_fibers = fibers;
    lk_acquires = Mgs_sync.Locks.acquires l;
    lk_hit_ratio = Mgs_sync.Locks.hit_ratio l;
    lk_handoffs = Mgs_sync.Locks.handoffs l;
    lk_gap = Mgs_sync.Locks.gap_stats l;
    lk_runtime = report.Mgs.Report.runtime;
    lk_sim_events = report.Mgs.Report.sim_events;
  }

(* The full family, in deterministic order; [jobs] fans points out over
   domains with byte-identical results.  [specs] rows are
   (lock, protocol, cluster, fibers). *)
let lock_family ?iters ?crit ?think ?par ?adapt ?(jobs = 1) specs =
  Mgs_util.Dpool.map ~jobs
    (fun (lock, protocol, cluster, fibers) ->
      lock_point ?iters ?crit ?think ?par ?adapt ~lock ~protocol ~cluster ~fibers ())
    specs

(* lock scalability: every registered lock at C in {1,4,16} under every
   protocol, at a fixed contention level *)
let lock_cluster_specs ?(fibers = 16) () =
  List.concat_map
    (fun lock ->
      List.concat_map
        (fun protocol ->
          List.map (fun cluster -> (lock, protocol, cluster, fibers)) [ 1; 4; 16 ])
        [ "mgs"; "hlrc"; "ivy" ])
    (Mgs_sync.Locks.names ())

(* contention scaling: 1..64 contending fibers at a fixed cluster *)
let lock_contention_specs ?(cluster = 4) ?(protocol = "mgs") () =
  List.concat_map
    (fun lock -> List.map (fun fibers -> (lock, protocol, cluster, fibers)) [ 1; 4; 16; 64 ])
    (Mgs_sync.Locks.names ())

let print_table ms =
  let rows =
    List.map
      (fun m ->
        [
          m.group;
          m.name;
          string_of_int m.paper;
          string_of_int m.measured;
          Printf.sprintf "%.2f" (float_of_int m.measured /. float_of_int m.paper);
        ])
      ms
  in
  Mgs_util.Tableprint.print
    ~header:[ "Group"; "Operation"; "Paper (cycles)"; "Measured"; "Ratio" ]
    ~rows
