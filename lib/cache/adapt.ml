(* Online per-page sharing-pattern classifier and regime policy.  See
   adapt.mli for the regime lattice and determinism contract. *)

module Bitset = Mgs_util.Bitset

type regime = Rmw | Rsw | Rinv

let code = function Rmw -> 0 | Rsw -> 1 | Rinv -> 2
let regime_name = function Rmw -> "rmw" | Rsw -> "sw" | Rinv -> "inv"

(* The lattice keeps Rmw in the centre: a specialised regime always
   demotes to the safe default before the other specialisation can be
   tried, so one bad guess costs at most one window of Rmw traffic. *)
let legal_edge a b =
  match (a, b) with
  | Rmw, (Rsw | Rinv) | (Rsw | Rinv), Rmw -> true
  | _ -> false

type pattern =
  | Idle
  | Read_mostly
  | Single_writer
  | Producer_consumer
  | Migratory
  | Multi_writer

let pattern_name = function
  | Idle -> "idle"
  | Read_mostly -> "read-mostly"
  | Single_writer -> "single-writer"
  | Producer_consumer -> "producer-consumer"
  | Migratory -> "migratory"
  | Multi_writer -> "multi-writer"

(* Migratory evidence: several upgrade notices in one window mean write
   privilege is hopping (each hop faults read, then upgrades); under
   Rinv the confirmation is that granted write copies are actually
   written (a recall finding the copy clean means the eager write grant
   was wasted, so a high clean rate retracts the migratory call). *)
let classify ~readers ~writers ~wreq ~upg ~clean ~regime =
  if readers = 0 && writers = 0 then Idle
  else if writers = 0 then Read_mostly
  else if writers = 1 && readers = 0 then Single_writer
  else if writers = 1 then Producer_consumer
  else if
    (* migratory data is read and written by the same hopping SSMPs; a
       reader set larger than the writer set means genuine read
       sharing, which invalidate-on-read would serialise *)
    (upg >= 3 && readers <= 2 * writers) || (regime = Rinv && 2 * clean <= wreq)
  then Migratory
  else Multi_writer

let switch_streak = 2
let migrate_streak = 3

type page = {
  mutable regime : regime;
  w_readers : Bitset.t;
  w_writers : Bitset.t;
  mutable w_rreq : int;
  mutable w_wreq : int;
  mutable w_upg : int;
  mutable w_clean : int;
  mutable dom : int;
  mutable dom_streak : int;
  mutable last_pattern : pattern;
  mutable streak : int;
}

let new_page ~nssmps =
  {
    regime = Rmw;
    w_readers = Bitset.create nssmps;
    w_writers = Bitset.create nssmps;
    w_rreq = 0;
    w_wreq = 0;
    w_upg = 0;
    w_clean = 0;
    dom = -1;
    dom_streak = 0;
    last_pattern = Idle;
    streak = 0;
  }

let reset_window p =
  Bitset.clear p.w_readers;
  Bitset.clear p.w_writers;
  p.w_rreq <- 0;
  p.w_wreq <- 0;
  p.w_upg <- 0;
  p.w_clean <- 0

let reset_page p =
  reset_window p;
  p.dom <- -1;
  p.dom_streak <- 0;
  p.last_pattern <- Idle;
  p.streak <- 0

(* Producer-consumer pages keep the default regime: the lone writer
   would qualify for a twinless copy, but recalling one ships the whole
   page where a twin-and-diff run ships a few words, and PC pages are
   recalled by every consumer.  They still feed the dominant-writer
   streak, so their payoff is home migration, not a regime switch. *)
let target ~pattern ~regime =
  match pattern with
  | Idle -> regime
  | Read_mostly | Multi_writer | Producer_consumer -> Rmw
  | Single_writer -> Rsw
  | Migratory -> Rinv

(* The only SSMP in a singleton writer set.  [Bitset.elements] would
   allocate a list; scan instead (decision windows are off the per-
   reference fast path but still run once per epoch). *)
let only_member s =
  let m = ref (-1) in
  Bitset.iter (fun i -> if !m < 0 then m := i) s;
  !m

let decide p =
  let readers = Bitset.cardinal p.w_readers
  and writers = Bitset.cardinal p.w_writers in
  let pat =
    classify ~readers ~writers ~wreq:p.w_wreq ~upg:p.w_upg ~clean:p.w_clean
      ~regime:p.regime
  in
  (if writers = 1 then begin
     let d = only_member p.w_writers in
     if d = p.dom then p.dom_streak <- p.dom_streak + 1
     else begin
       p.dom <- d;
       p.dom_streak <- 1
     end
   end
   else if pat <> Idle then begin
     p.dom <- -1;
     p.dom_streak <- 0
   end);
  (if pat = p.last_pattern then p.streak <- p.streak + 1
   else begin
     p.last_pattern <- pat;
     p.streak <- 1
   end);
  reset_window p;
  let tgt = target ~pattern:pat ~regime:p.regime in
  if tgt = p.regime || p.streak < switch_streak then None
  else begin
    (* one lattice step per decision: specialised regimes demote to Rmw
       before the other specialisation can be reached *)
    let nxt = if legal_edge p.regime tgt then tgt else Rmw in
    let old = p.regime in
    p.regime <- nxt;
    Some (old, nxt)
  end

(* Event-driven demotion: direct evidence (a second concurrent writer)
   ends the single-writer regime without waiting for the next window.
   Seeds the pattern streak with Multi_writer so the classifier cannot
   re-promote on the very next decision. *)
let demote p =
  if p.regime = Rsw then begin
    p.regime <- Rmw;
    p.last_pattern <- Multi_writer;
    p.streak <- 1;
    Some (Rsw, Rmw)
  end
  else None

let wants_migration p =
  p.dom >= 0 && p.dom_streak >= migrate_streak
  && (p.last_pattern = Single_writer || p.last_pattern = Producer_consumer)

type t = {
  views : (int, int) Hashtbl.t array;
  fwd : (int, int) Hashtbl.t array;
}

let create ~nssmps =
  {
    views = Array.init nssmps (fun _ -> Hashtbl.create 64);
    fwd = Array.init nssmps (fun _ -> Hashtbl.create 16);
  }
