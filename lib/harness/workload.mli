(** First-class workload registry (the [Mgs.Protocol] / [Mgs_sync.Locks]
    idiom applied to applications).

    Every application packages itself as a {!WORKLOAD} module — a name,
    a one-line description, a published parameter spec, and constructors
    — and registers once.  The CLIs ([mgs_run --app]), the benchmark
    driver, and the perf harness then select workloads by name; an
    unknown name raises naming every registered workload, and an unknown
    parameter raises naming every accepted one. *)

type args = {
  size : int option;  (** generic problem-size knob (--size) *)
  iters : int option;  (** generic iteration knob (--iters) *)
  lock : string option;  (** lock algorithm, an {!Mgs_sync.Locks} name (--lock) *)
  extra : (string * string) list;  (** workload-specific key=value params *)
}

val default_args : args
(** All knobs unset: every workload runs its published defaults. *)

type param = { p_name : string; p_default : string; p_doc : string }
(** One accepted parameter: name, default (rendered), one-line doc. *)

module type WORKLOAD = sig
  val name : string
  (** Registry key; what [--app] and perf-row names say. *)

  val doc : string
  (** One line for listings. *)

  val params : param list
  (** Accepted knobs, including the generic size/iters/lock ones when
      the workload honours them.  [instantiate] rejects anything else. *)

  val instantiate : args -> Sweep.workload
  (** Build the runnable workload.
      @raise Invalid_argument on an unknown or malformed parameter. *)

  val problem_size : args -> string
  (** Human description of the instantiated problem. *)

  val tiny : unit -> Sweep.workload
  (** Smoke-test-sized instance (seconds, not minutes). *)

  val epilogue : Mgs.Machine.t -> string
  (** Post-run report rendered from the machine's observability state
      (e.g. the KV tier's tail-latency table); [""] for workloads with
      nothing beyond the standard report. *)
end

(** {1 Spec-building helpers} *)

val no_epilogue : Mgs.Machine.t -> string
(** Always [""]. *)

val param : name:string -> default:string -> doc:string -> param

val size_param : default:string -> doc:string -> param

val iters_param : default:string -> doc:string -> param

val lock_param : param

val check_args : name:string -> params:param list -> args -> unit
(** @raise Invalid_argument on any knob — generic ([size]/[iters]/[lock])
    or [extra] — absent from [params], naming the accepted keys. *)

val extra_int : name:string -> args -> string -> default:int -> int

val extra_float : name:string -> args -> string -> default:float -> float

(** {1 The registry} *)

val register : (module WORKLOAD) -> unit
(** @raise Invalid_argument on a duplicate name. *)

val find : string -> (module WORKLOAD) option

val mem : string -> bool

val names : unit -> string list
(** Registered workload names, sorted. *)

val of_name : string -> (module WORKLOAD)
(** @raise Invalid_argument on an unknown name, listing the known ones. *)

val instantiate : ?args:args -> string -> Sweep.workload
(** [of_name] + [W.instantiate] (default {!default_args}). *)

val tiny : string -> Sweep.workload

val problem_size : ?args:args -> string -> string

val describe_all : unit -> string list
(** One line per registered workload: name, doc, parameter spec. *)

val parse_kv : string -> string * string
(** Split ["key=value"].
    @raise Invalid_argument otherwise. *)
