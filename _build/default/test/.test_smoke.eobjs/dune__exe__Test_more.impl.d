test/test_more.ml: Alcotest Array Buffer List Mgs Mgs_apps Mgs_harness Mgs_machine Mgs_mem Mgs_sync Printf QCheck2 QCheck_alcotest
