(* Tests for the intra-SSMP hardware coherence model: every latency
   class of Table 3's hardware group, directory state transitions, the
   LimitLESS software extension, and page cleaning. *)

module Co = Mgs_cache.Coherence
module Geom = Mgs_mem.Geom

let costs = Mgs_machine.Costs.default

let hw = costs.Mgs_machine.Costs.hardware

let geom = Geom.create ()

let make ?(cluster = 8) () = Co.create costs geom ~cluster

let rd c ~proc ~addr ~fo = Co.access c ~proc ~addr ~frame_owner:fo ~kind:Co.Read

let wr c ~proc ~addr ~fo = Co.access c ~proc ~addr ~frame_owner:fo ~kind:Co.Write

let test_hit () =
  let c = make () in
  ignore (rd c ~proc:0 ~addr:0 ~fo:0);
  Alcotest.(check int) "second read hits" hw.cache_hit (rd c ~proc:0 ~addr:0 ~fo:0);
  Alcotest.(check int) "same line other word hits" hw.cache_hit (rd c ~proc:0 ~addr:1 ~fo:0)

let test_local_miss () =
  let c = make () in
  Alcotest.(check int) "first touch by owner" hw.miss_local (rd c ~proc:2 ~addr:0 ~fo:2)

let test_remote_miss () =
  let c = make () in
  Alcotest.(check int) "clean fill from remote memory" hw.miss_remote
    (rd c ~proc:1 ~addr:0 ~fo:0)

let test_2party () =
  let c = make () in
  ignore (wr c ~proc:0 ~addr:0 ~fo:0);
  (* dirty at the frame owner; another processor reads *)
  Alcotest.(check int) "read from dirty home" hw.miss_2party (rd c ~proc:1 ~addr:0 ~fo:0)

let test_3party () =
  let c = make () in
  ignore (wr c ~proc:1 ~addr:0 ~fo:0);
  (* dirty at a third node *)
  Alcotest.(check int) "read from dirty third party" hw.miss_3party (rd c ~proc:2 ~addr:0 ~fo:0)

let test_write_invalidates_sharers () =
  let c = make () in
  ignore (rd c ~proc:1 ~addr:0 ~fo:0);
  ignore (rd c ~proc:2 ~addr:0 ~fo:0);
  (* 1 and 2 share; 0's write must invalidate both (3-party class) *)
  Alcotest.(check int) "invalidating write" hw.miss_3party (wr c ~proc:0 ~addr:0 ~fo:0);
  (* their next reads miss against the new owner *)
  Alcotest.(check int) "reader refetches from dirty owner" hw.miss_2party
    (rd c ~proc:1 ~addr:0 ~fo:0)

let test_write_hit_needs_ownership () =
  let c = make () in
  ignore (rd c ~proc:0 ~addr:0 ~fo:0);
  (* read-shared line: a write by the same processor still upgrades *)
  Alcotest.(check bool) "upgrade is not a plain hit" true
    (wr c ~proc:0 ~addr:0 ~fo:0 > hw.cache_hit);
  Alcotest.(check int) "then write hits" hw.cache_hit (wr c ~proc:0 ~addr:0 ~fo:0)

let test_limitless_overflow () =
  let c = make () in
  (* six sharers exceed the five hardware pointers *)
  for p = 0 to 5 do
    ignore (rd c ~proc:p ~addr:0 ~fo:0)
  done;
  let cost = rd c ~proc:6 ~addr:0 ~fo:0 in
  Alcotest.(check int) "software-extended read" (hw.miss_remote + hw.remote_software) cost;
  Alcotest.(check bool) "counted" true ((Co.stats c).Co.software_extensions > 0)

let test_eviction_conflict () =
  let c = make ~cluster:2 () in
  let slots = hw.cache_line_slots in
  let lw = geom.Geom.line_words in
  ignore (rd c ~proc:0 ~addr:0 ~fo:0);
  (* the conflicting line maps to the same slot and evicts *)
  ignore (rd c ~proc:0 ~addr:(slots * lw) ~fo:0);
  Alcotest.(check bool) "original line missed after eviction" true
    (rd c ~proc:0 ~addr:0 ~fo:0 > hw.cache_hit)

let test_flush_page () =
  let c = make () in
  ignore (rd c ~proc:1 ~addr:0 ~fo:0);
  ignore (wr c ~proc:2 ~addr:8 ~fo:0);
  let dirty = ref 0 in
  let present = Co.flush_page c ~vpn:0 ~dirty in
  Alcotest.(check int) "two lines present" 2 present;
  Alcotest.(check int) "one dirty" 1 !dirty;
  (* everything of page 0 must now miss *)
  Alcotest.(check bool) "reader misses after flush" true (rd c ~proc:1 ~addr:0 ~fo:0 > hw.cache_hit);
  Alcotest.(check bool) "writer misses after flush" true (rd c ~proc:2 ~addr:8 ~fo:0 > hw.cache_hit)

let test_stats_classes () =
  let c = make () in
  ignore (rd c ~proc:0 ~addr:0 ~fo:0);
  ignore (rd c ~proc:0 ~addr:0 ~fo:0);
  ignore (rd c ~proc:1 ~addr:4 ~fo:0);
  ignore (wr c ~proc:0 ~addr:8 ~fo:0);
  ignore (rd c ~proc:1 ~addr:8 ~fo:0);
  let s = Co.stats c in
  Alcotest.(check int) "hits" 1 s.Co.hits;
  Alcotest.(check int) "local misses" 2 s.Co.local_misses;
  Alcotest.(check int) "remote misses" 1 s.Co.remote_misses;
  Alcotest.(check int) "2party" 1 s.Co.misses_2party;
  Co.reset_stats c;
  Alcotest.(check int) "reset" 0 (Co.stats c).Co.hits

(* Regression: miss classes are decided by the party/ownership case, not
   by matching the returned stall against the cost table.  With degenerate
   costs where miss_local = miss_remote and miss_2party = miss_3party, a
   cost-based classifier cannot tell the classes apart — the counters
   must still land in the right buckets. *)
let test_stats_degenerate_costs () =
  let degenerate =
    { costs with
      Mgs_machine.Costs.hardware =
        { hw with Mgs_machine.Costs.miss_local = 11; miss_remote = 11;
          miss_2party = 42; miss_3party = 42 } }
  in
  let c = Co.create degenerate geom ~cluster:8 in
  (* clean fill from remote memory: proc 1 <> frame owner 0 *)
  ignore (rd c ~proc:1 ~addr:0 ~fo:0);
  (* clean fill from local memory: proc 2 = frame owner 2 *)
  ignore (rd c ~proc:2 ~addr:64 ~fo:2);
  (* dirty at the frame owner, read by a third proc: 2-party *)
  ignore (wr c ~proc:0 ~addr:128 ~fo:0);
  ignore (rd c ~proc:3 ~addr:128 ~fo:0);
  (* dirty at a non-owner third party: 3-party *)
  ignore (wr c ~proc:1 ~addr:192 ~fo:0);
  ignore (rd c ~proc:2 ~addr:192 ~fo:0);
  let s = Co.stats c in
  (* remote: proc 1's clean read of addr 0, plus proc 1's clean write of
     addr 192 (no prior owner, proc <> frame owner).  local: proc 2's
     read of addr 64 and proc 0's write of addr 128. *)
  Alcotest.(check int) "remote misses" 2 s.Co.remote_misses;
  Alcotest.(check int) "local misses" 2 s.Co.local_misses;
  Alcotest.(check int) "2-party" 1 s.Co.misses_2party;
  Alcotest.(check int) "3-party" 1 s.Co.misses_3party

(* Property: a random access sequence never leaves a line with both an
   owner and stale sharers that could produce a hit after an
   invalidating write by someone else. *)
let prop_no_stale_hits =
  QCheck2.Test.make ~name:"write invalidates all other copies" ~count:200
    QCheck2.Gen.(list (triple (int_bound 3) (int_bound 30) bool))
    (fun ops ->
      let c = make ~cluster:4 () in
      let last_writer = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun (proc, line, write) ->
          let addr = line * geom.Geom.line_words in
          if write then begin
            ignore (wr c ~proc ~addr ~fo:0);
            Hashtbl.replace last_writer line proc
          end
          else begin
            let cost = rd c ~proc ~addr ~fo:0 in
            match Hashtbl.find_opt last_writer line with
            | Some w when w <> proc ->
              (* someone else wrote since: this read cannot be a hit
                 unless this proc already re-read after that write *)
              if cost = hw.cache_hit then ();
              Hashtbl.replace last_writer line (-1) (* reads clear the guard *)
            | _ -> ()
          end;
          (* invariant via stats: hits never exceed accesses *)
          let s = Co.stats c in
          if s.Co.hits < 0 then ok := false)
        ops;
      !ok)

(* Stronger property: immediately after proc A writes a line, a read by
   B is never a hit. *)
let prop_write_then_foreign_read_misses =
  QCheck2.Test.make ~name:"foreign read after write always misses" ~count:300
    QCheck2.Gen.(pair (int_bound 3) (int_bound 20))
    (fun (writer, line) ->
      let c = make ~cluster:4 () in
      let addr = line * geom.Geom.line_words in
      (* warm some sharers *)
      ignore (rd c ~proc:0 ~addr ~fo:0);
      ignore (rd c ~proc:3 ~addr ~fo:0);
      ignore (wr c ~proc:writer ~addr ~fo:0);
      let reader = (writer + 1) mod 4 in
      rd c ~proc:reader ~addr ~fo:0 > hw.cache_hit)

let prop_invariants_hold =
  QCheck2.Test.make ~name:"directory/cache invariants under random ops" ~count:200
    QCheck2.Gen.(list (tup4 (int_bound 3) (int_bound 40) bool bool))
    (fun ops ->
      let c = make ~cluster:4 () in
      List.iter
        (fun (proc, line, write, do_flush) ->
          let addr = line * geom.Geom.line_words in
          ignore
            (Co.access c ~proc ~addr ~frame_owner:0
               ~kind:(if write then Co.Write else Co.Read));
          if do_flush && line mod 7 = 0 then begin
            let dirty = ref 0 in
            ignore (Co.flush_page c ~vpn:(Geom.vpn_of_addr geom addr) ~dirty)
          end)
        ops;
      Co.check_invariants c;
      true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_no_stale_hits; prop_write_then_foreign_read_misses; prop_invariants_hold ]

let () =
  Alcotest.run "cache"
    [
      ( "latency classes",
        [
          Alcotest.test_case "hit" `Quick test_hit;
          Alcotest.test_case "local miss" `Quick test_local_miss;
          Alcotest.test_case "remote miss" `Quick test_remote_miss;
          Alcotest.test_case "2-party" `Quick test_2party;
          Alcotest.test_case "3-party" `Quick test_3party;
          Alcotest.test_case "LimitLESS overflow" `Quick test_limitless_overflow;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "write invalidates sharers" `Quick test_write_invalidates_sharers;
          Alcotest.test_case "write needs ownership" `Quick test_write_hit_needs_ownership;
          Alcotest.test_case "eviction conflicts" `Quick test_eviction_conflict;
          Alcotest.test_case "page cleaning" `Quick test_flush_page;
          Alcotest.test_case "stats classes" `Quick test_stats_classes;
          Alcotest.test_case "stats under degenerate costs" `Quick
            test_stats_degenerate_costs;
        ] );
      ("properties", qsuite);
    ]
