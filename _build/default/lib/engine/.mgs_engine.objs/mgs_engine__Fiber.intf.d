lib/engine/fiber.mli: Sim
