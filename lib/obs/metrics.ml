(* Typed metrics registry + simulated-clock sampler, sharded per SSMP.

   Counters, gauges, and histograms register under a name plus optional
   labels (SSMP, engine, ...).  Scalar storage is per-cell (one cell per
   engine shard): a counter increment or gauge set lands in the writing
   shard's cell, so under the parallel engine nothing on the hot path is
   shared.  Exports merge the cells pointwise.

   Sampling runs on a fixed boundary grid: row k is taken at simulated
   time k*interval, snapshotted by the first event in each cell whose
   time has reached that boundary (crossed boundaries are back-filled
   with the then-current values — correct, because no event of that
   cell ran in between).  A cell's pre-event state at a boundary is a
   pure function of that cell's executed-event prefix, which the engine
   keeps identical across job counts, so the merged time-series is
   byte-identical between sequential and parallel runs.  The final
   {!sample} fills every cell to the last crossed boundary and appends
   one row at the exact end time.

   The ring bound applies per cell: a run of any length cannot grow
   memory without bound, and the most recent window is kept. *)

type counter = { ca : int array }

type gauge = { ga : float array }

type kind =
  | Kcounter of int array
  | Kgauge of float array
  | Kprobe of (unit -> float) (* polled in cell 0 only *)
  | Kprobe_cell of (int -> float) (* polled per cell, shard-local read *)

type series = { s_name : string; s_kind : kind }

type mcell = {
  rows : (int * float array) Ring.t;
  mutable last_b : int; (* highest boundary index filled; -1 initially *)
  mutable last : (int * float array) option; (* most recent row pushed *)
}

type t = {
  interval : int;
  ncells : int;
  mutable series : series list; (* reverse registration order *)
  mutable sealed : bool; (* set at first row: columns are frozen *)
  by_name : (string, unit) Hashtbl.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
  mcells : mcell array;
}

let default_interval = 10_000

let create ?(interval = default_interval) ?(max_samples = 4096) ?(cells = 1) () =
  if interval <= 0 then invalid_arg "Metrics.create: interval";
  if cells < 1 then invalid_arg "Metrics.create: cells";
  {
    interval;
    ncells = cells;
    series = [];
    sealed = false;
    by_name = Hashtbl.create 32;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    hists = Hashtbl.create 32;
    mcells =
      Array.init cells (fun _ ->
          { rows = Ring.create ~capacity:max_samples; last_b = -1; last = None });
  }

let interval t = t.interval

let cells t = t.ncells

(* "name{k=v,k2=v2}": labels are sorted so the same set always yields
   the same series name. *)
let full_name name labels =
  match labels with
  | [] -> name
  | l ->
    let l = List.sort compare l in
    name ^ "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l) ^ "}"

let add_series t name kind =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Metrics: duplicate series %s" name);
  if t.sealed then
    invalid_arg (Printf.sprintf "Metrics: cannot register %s after sampling started" name);
  Hashtbl.replace t.by_name name ();
  t.series <- { s_name = name; s_kind = kind } :: t.series

let counter t ?(labels = []) name =
  let key = full_name name labels in
  match Hashtbl.find_opt t.counters key with
  | Some c -> c
  | None ->
    let c = { ca = Array.make t.ncells 0 } in
    add_series t key (Kcounter c.ca);
    Hashtbl.replace t.counters key c;
    c

let incr ?(by = 1) c =
  let cell = Mgs_engine.Shard.cur () in
  let cell = if cell < 0 || cell >= Array.length c.ca then 0 else cell in
  c.ca.(cell) <- c.ca.(cell) + by

let counter_value c = Array.fold_left ( + ) 0 c.ca

let gauge t ?(labels = []) name =
  let key = full_name name labels in
  match Hashtbl.find_opt t.gauges key with
  | Some g -> g
  | None ->
    let g = { ga = Array.make t.ncells 0. } in
    add_series t key (Kgauge g.ga);
    Hashtbl.replace t.gauges key g;
    g

let set g v =
  let cell = Mgs_engine.Shard.cur () in
  let cell = if cell < 0 || cell >= Array.length g.ga then 0 else cell in
  g.ga.(cell) <- v

let gauge_value g = Array.fold_left ( +. ) 0. g.ga

let histogram t ?(labels = []) name =
  let key = full_name name labels in
  match Hashtbl.find_opt t.hists key with
  | Some h -> h
  | None ->
    let h = Hist.create () in
    Hashtbl.replace t.hists key h;
    h

let observe h v = Hist.add h v

let probe t ?(labels = []) name read = add_series t (full_name name labels) (Kprobe read)

let probe_cell t ?(labels = []) name read =
  add_series t (full_name name labels) (Kprobe_cell read)

let columns t = List.rev_map (fun s -> s.s_name) t.series

let read_series s ~cell =
  match s.s_kind with
  | Kcounter ca -> float_of_int ca.(cell)
  | Kgauge ga -> ga.(cell)
  | Kprobe f -> if cell = 0 then f () else 0.
  | Kprobe_cell f -> f cell

let snapshot t ~cell =
  let cols = List.rev t.series in
  Array.of_list (List.map (read_series ~cell) cols)

(* Append a row for [cell] at [time]; a repeat of the last row's time
   overwrites it in place (the end-of-run sample landing exactly on a
   boundary refreshes that boundary's row rather than duplicating it). *)
let push_row t cell ~time =
  t.sealed <- true;
  let mc = t.mcells.(cell) in
  match mc.last with
  | Some (lt, arr) when lt = time ->
    let fresh = snapshot t ~cell in
    Array.blit fresh 0 arr 0 (Array.length arr)
  | _ ->
    let arr = snapshot t ~cell in
    Ring.push mc.rows (time, arr);
    mc.last <- Some (time, arr)

let fill_boundaries t cell ~now =
  let b = now / t.interval in
  let mc = t.mcells.(cell) in
  if b > mc.last_b then begin
    for k = mc.last_b + 1 to b do
      push_row t cell ~time:(k * t.interval)
    done;
    mc.last_b <- b
  end

(* Pre-event hook: called with the executing event's shard and time
   before the event runs, so a crossed boundary is captured with the
   state as of the end of the previous event — identical whichever
   engine mode interleaved the other shards. *)
let on_event t ~cell ~now =
  let cell = if cell < 0 || cell >= t.ncells then 0 else cell in
  fill_boundaries t cell ~now

let tick t ~now = on_event t ~cell:0 ~now

let sample t ~now =
  for cell = 0 to t.ncells - 1 do
    fill_boundaries t cell ~now;
    push_row t cell ~time:now
  done

(* Merge the per-cell time-series by time union, carrying each cell's
   most recent row forward (zeros before its first row), and summing
   pointwise.  With the boundary grid every cell has the same times, so
   this degenerates to a columnwise zip-sum. *)
let merged_samples t =
  if t.ncells = 1 then Ring.to_list t.mcells.(0).rows
  else begin
    let ncols = List.length t.series in
    let rows = Array.map (fun mc -> Array.of_list (Ring.to_list mc.rows)) t.mcells in
    let idx = Array.make t.ncells 0 in
    let carry = Array.make_matrix t.ncells ncols 0. in
    let out = ref [] in
    let exhausted () =
      let all = ref true in
      Array.iteri (fun c r -> if idx.(c) < Array.length r then all := false) rows;
      !all
    in
    while not (exhausted ()) do
      let tmin = ref max_int in
      Array.iteri
        (fun c r ->
          if idx.(c) < Array.length r then begin
            let time, _ = r.(idx.(c)) in
            if time < !tmin then tmin := time
          end)
        rows;
      Array.iteri
        (fun c r ->
          if idx.(c) < Array.length r then begin
            let time, row = r.(idx.(c)) in
            if time = !tmin then begin
              Array.blit row 0 carry.(c) 0 ncols;
              idx.(c) <- idx.(c) + 1
            end
          end)
        rows;
      let sum = Array.make ncols 0. in
      Array.iter (fun cr -> Array.iteri (fun j v -> sum.(j) <- sum.(j) +. v) cr) carry;
      out := (!tmin, sum) :: !out
    done;
    List.rev !out
  end

let samples t = merged_samples t

let sample_count t = List.length (merged_samples t)

let dropped t = Array.fold_left (fun acc mc -> max acc (Ring.dropped mc.rows)) 0 t.mcells

(* --- export ---------------------------------------------------------- *)

(* %.17g round-trips any float but prints integers (the common case:
   counts) without noise. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time";
  List.iter
    (fun name ->
      Buffer.add_char buf ',';
      Buffer.add_string buf name)
    (columns t);
  Buffer.add_char buf '\n';
  List.iter
    (fun (time, row) ->
      Buffer.add_string buf (string_of_int time);
      Array.iter
        (fun v ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (float_str v))
        row;
      Buffer.add_char buf '\n')
    (merged_samples t);
  Buffer.contents buf

let json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":\"mgs-metrics-1\",\"interval\":%d,\"dropped\":%d,\"series\":["
       t.interval (dropped t));
  let first = ref true in
  List.iter
    (fun name ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (Json.escape name);
      Buffer.add_char buf '"')
    (columns t);
  Buffer.add_string buf "],\"samples\":[";
  let first = ref true in
  List.iter
    (fun (time, row) ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf "\n[";
      Buffer.add_string buf (string_of_int time);
      Array.iter
        (fun v ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (float_str v))
        row;
      Buffer.add_char buf ']')
    (merged_samples t);
  Buffer.add_string buf "\n],\"histograms\":[";
  let hists =
    List.sort compare (Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists [])
  in
  let first = ref true in
  List.iter
    (fun (name, h) ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n{\"name\":\"%s\",\"count\":%d,\"mean\":%s,\"max\":%d}"
           (Json.escape name) (Hist.count h)
           (float_str (Hist.mean h))
           (Hist.max_value h)))
    hists;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_json t oc = output_string oc (json t)

let write_csv t oc = output_string oc (csv t)
