type kind = Array | Pointer | Unmapped

let cost (c : Mgs_machine.Costs.t) = function
  | Array -> c.svm.array_translation
  | Pointer -> c.svm.pointer_translation
  | Unmapped -> 0
