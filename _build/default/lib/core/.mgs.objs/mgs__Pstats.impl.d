lib/core/pstats.ml: Format
