lib/util/rng.mli:
