(* Tests for the hierarchical synchronization library: token-lock
   behavior (hits, transfers, fairness), barrier message economy, and
   reuse. *)

let make ?(nprocs = 8) ?(cluster = 2) ?(lan = 500) () =
  let cfg = Mgs.Machine.config ~nprocs ~cluster ~lan_latency:lan () in
  Mgs.Machine.create cfg

let test_lock_hit_at_home () =
  let m = make () in
  let lock = Mgs_sync.Lock.create m ~home:1 () in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         (* procs 2 and 3 are SSMP 1, where the token starts *)
         if Mgs.Api.proc ctx = 2 then begin
           Mgs_sync.Lock.acquire ctx lock;
           Mgs_sync.Lock.release ctx lock
         end));
  Alcotest.(check int) "one acquire" 1 (Mgs_sync.Lock.acquires lock);
  Alcotest.(check int) "it hit" 1 (Mgs_sync.Lock.hits lock);
  Alcotest.(check (float 0.)) "ratio" 1.0 (Mgs_sync.Lock.hit_ratio lock)

let test_lock_miss_transfers_token () =
  let m = make () in
  let lock = Mgs_sync.Lock.create m ~home:0 () in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         (* proc 4 is SSMP 2: the token must travel *)
         if Mgs.Api.proc ctx = 4 then begin
           Mgs_sync.Lock.acquire ctx lock;
           Mgs_sync.Lock.release ctx lock;
           (* second acquire from the same SSMP is then a hit *)
           Mgs_sync.Lock.acquire ctx lock;
           Mgs_sync.Lock.release ctx lock
         end));
  Alcotest.(check int) "two acquires" 2 (Mgs_sync.Lock.acquires lock);
  Alcotest.(check int) "first missed, second hit" 1 (Mgs_sync.Lock.hits lock)

let test_lock_mutual_exclusion_stress () =
  let m = make ~nprocs:8 ~cluster:4 () in
  let cell = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 0) in
  let lock = Mgs_sync.Lock.create m () in
  let bar = Mgs_sync.Barrier.create m in
  let per = 25 in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         for _ = 1 to per do
           Mgs_sync.Lock.acquire ctx lock;
           Mgs.Api.write ctx cell (Mgs.Api.read ctx cell +. 1.0);
           Mgs_sync.Lock.release ctx lock
         done;
         Mgs_sync.Barrier.wait ctx bar));
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check (float 0.)) "no lost updates" (float_of_int (8 * per))
    (Mgs.Machine.peek m cell)

let test_lock_release_without_hold () =
  let m = make () in
  let lock = Mgs_sync.Lock.create m () in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           try
             Mgs_sync.Lock.release ctx lock;
             Alcotest.fail "expected failure"
           with Failure _ -> ()
         end))

let test_barrier_message_economy () =
  (* the tree barrier needs exactly two inter-SSMP messages per
     non-master SSMP per episode: one combine in, one release out *)
  let m = make ~nprocs:8 ~cluster:2 () in
  let bar = Mgs_sync.Barrier.create m in
  let episodes = 5 in
  let lan_before = (Mgs_net.Lan.stats m.Mgs.State.lan).Mgs_net.Lan.messages in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         for _ = 1 to episodes do
           Mgs_sync.Barrier.wait ctx bar
         done));
  let lan_after = (Mgs_net.Lan.stats m.Mgs.State.lan).Mgs_net.Lan.messages in
  (* 4 SSMPs: 3 remote combines + 3 remote releases per episode *)
  Alcotest.(check int) "2 messages per remote SSMP per episode"
    (episodes * 2 * 3)
    (lan_after - lan_before);
  Alcotest.(check int) "episodes counted" episodes (Mgs_sync.Barrier.episodes bar)

let test_barrier_reuse_phases () =
  let m = make ~nprocs:4 ~cluster:2 () in
  let slots = Mgs.Machine.alloc m ~words:4 ~home:Mgs_mem.Allocator.Interleaved in
  let bar = Mgs_sync.Barrier.create m in
  let phases = 6 in
  let ok = ref true in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         for ph = 1 to phases do
           Mgs.Api.write ctx (slots + p) (float_of_int ph);
           Mgs_sync.Barrier.wait ctx bar;
           (* after the barrier, every slot must show this phase *)
           for q = 0 to 3 do
             if Mgs.Api.read ctx (slots + q) <> float_of_int ph then ok := false
           done;
           Mgs_sync.Barrier.wait ctx bar
         done));
  Alcotest.(check bool) "phases never bleed" true !ok

let test_flat_sync_at_single_ssmp () =
  let m = make ~nprocs:4 ~cluster:4 () in
  let lock = Mgs_sync.Lock.create m () in
  let bar = Mgs_sync.Barrier.create m in
  let report =
    Mgs.Machine.run m (fun ctx ->
        Mgs_sync.Lock.acquire ctx lock;
        Mgs_sync.Lock.release ctx lock;
        Mgs_sync.Barrier.wait ctx bar)
  in
  Alcotest.(check int) "no LAN traffic" 0 report.Mgs.Report.lan_messages;
  Alcotest.(check (float 0.)) "all lock hits" 1.0 (Mgs_sync.Lock.hit_ratio lock)

let test_fairness_bound_prevents_starvation () =
  (* one SSMP hammers the lock; a remote acquirer must still get it *)
  let m = make ~nprocs:4 ~cluster:2 ~lan:200 () in
  let lock = Mgs_sync.Lock.create m ~home:0 () in
  let got_it = ref false in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         match Mgs.Api.proc ctx with
         | 0 | 1 ->
           for _ = 1 to 200 do
             Mgs_sync.Lock.acquire ctx lock;
             Mgs.Api.compute ctx 50;
             Mgs_sync.Lock.release ctx lock
           done
         | 2 ->
           Mgs_sync.Lock.acquire ctx lock;
           got_it := true;
           Mgs_sync.Lock.release ctx lock
         | _ -> ()));
  Alcotest.(check bool) "remote acquirer served" true !got_it

let test_grant_bound_zero_is_fair () =
  (* bound 0: the token departs at the first recalled release, so a
     hammering SSMP cannot raise its hit ratio much *)
  let m = make ~nprocs:4 ~cluster:2 ~lan:300 () in
  let fair = Mgs_sync.Lock.create m ~grant_bound:0 () in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         for _ = 1 to 30 do
           Mgs_sync.Lock.acquire ctx fair;
           Mgs.Api.compute ctx 100;
           Mgs_sync.Lock.release ctx fair;
           (* yield so the processors genuinely interleave (real
              programs yield on every shared-memory access) *)
           Mgs.Api.idle_until ctx (Mgs.Api.cycles ctx)
         done));
  Alcotest.(check bool)
    (Printf.sprintf "fair lock hit ratio low (%.2f)" (Mgs_sync.Lock.hit_ratio fair))
    true
    (Mgs_sync.Lock.hit_ratio fair < 0.6);
  Alcotest.check_raises "negative bound" (Invalid_argument "Lock.create: grant_bound")
    (fun () -> ignore (Mgs_sync.Lock.create m ~grant_bound:(-1) ()))

let prop_lock_counter_across_shapes =
  QCheck2.Test.make ~name:"locked counter is exact on random shapes" ~count:25
    QCheck2.Gen.(triple (int_range 0 2) (int_range 0 2) (int_range 1 12))
    (fun (log_c, log_extra, per) ->
      let cluster = 1 lsl log_c in
      let nprocs = cluster * (1 lsl log_extra) in
      let m = make ~nprocs ~cluster () in
      let cell = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 0) in
      let lock = Mgs_sync.Lock.create m () in
      let bar = Mgs_sync.Barrier.create m in
      ignore
        (Mgs.Machine.run m (fun ctx ->
             for _ = 1 to per do
               Mgs_sync.Lock.acquire ctx lock;
               Mgs.Api.write ctx cell (Mgs.Api.read ctx cell +. 1.0);
               Mgs_sync.Lock.release ctx lock
             done;
             Mgs_sync.Barrier.wait ctx bar));
      Mgs.Machine.peek m cell = float_of_int (nprocs * per))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_lock_counter_across_shapes ]

let () =
  Alcotest.run "sync"
    [
      ( "lock",
        [
          Alcotest.test_case "hit at home" `Quick test_lock_hit_at_home;
          Alcotest.test_case "miss transfers token" `Quick test_lock_miss_transfers_token;
          Alcotest.test_case "mutual exclusion stress" `Quick test_lock_mutual_exclusion_stress;
          Alcotest.test_case "release without hold" `Quick test_lock_release_without_hold;
          Alcotest.test_case "fairness" `Quick test_fairness_bound_prevents_starvation;
          Alcotest.test_case "grant bound zero" `Quick test_grant_bound_zero_is_fair;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "message economy" `Quick test_barrier_message_economy;
          Alcotest.test_case "phase reuse" `Quick test_barrier_reuse_phases;
          Alcotest.test_case "flat at C=P" `Quick test_flat_sync_at_single_ssmp;
        ] );
      ("properties", qsuite);
    ]
