type mode = Ro | Rw

(* Flat direct-mapped table: entry for [vpn] lives at slot
   [vpn land mask].  The table doubles (and rehashes) whenever two
   resident vpns collide, so it behaves as an exact map — no spurious
   evictions — while lookup/fill/invalidate touch only flat arrays and
   allocate nothing.  Shared-heap vpns are small dense integers, so the
   table converges to the first power of two above the largest vpn. *)
type t = {
  mutable tags : int array; (* slot -> resident vpn, or -1 *)
  mutable rws : bool array; (* slot -> true iff mode is Rw *)
  mutable mask : int; (* Array.length tags - 1 (power of two) *)
  mutable resident : int;
  capacity : int option;
  (* FIFO eviction ring (allocated only when [capacity] is set): vpns in
     fill order, pruned lazily — invalidated entries stay queued and are
     skipped at eviction time, exactly like the historical Hashtbl+Queue
     implementation (a re-filled vpn is queued again and evicts at its
     {e oldest} position). *)
  mutable ring : int array;
  mutable ring_head : int;
  mutable ring_n : int;
  mutable fills : int;
  mutable invalidations : int;
  mutable evictions : int;
  mutable gen : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Tlb.create: capacity"
  | _ -> ());
  {
    tags = Array.make 64 (-1);
    rws = Array.make 64 false;
    mask = 63;
    resident = 0;
    capacity;
    ring = (match capacity with Some _ -> Array.make 16 0 | None -> [||]);
    ring_head = 0;
    ring_n = 0;
    fills = 0;
    invalidations = 0;
    evictions = 0;
    gen = 0;
  }

let lookup t ~vpn =
  let slot = vpn land t.mask in
  if t.tags.(slot) = vpn then Some (if t.rws.(slot) then Rw else Ro) else None

let grants t ~vpn ~write =
  let slot = vpn land t.mask in
  t.tags.(slot) = vpn && ((not write) || t.rws.(slot))

(* Grow until every resident vpn lands in its own slot. *)
let rec rehash t size =
  let mask = size - 1 in
  let tags = Array.make size (-1) and rws = Array.make size false in
  let clean = ref true in
  let old = t.tags in
  for i = 0 to Array.length old - 1 do
    let v = old.(i) in
    if v >= 0 then begin
      let s = v land mask in
      if tags.(s) >= 0 then clean := false
      else begin
        tags.(s) <- v;
        rws.(s) <- t.rws.(i)
      end
    end
  done;
  if !clean then begin
    t.tags <- tags;
    t.rws <- rws;
    t.mask <- mask
  end
  else rehash t (size * 2)

let rec insert t vpn rw =
  let slot = vpn land t.mask in
  if t.tags.(slot) < 0 then begin
    t.tags.(slot) <- vpn;
    t.rws.(slot) <- rw;
    t.resident <- t.resident + 1
  end
  else begin
    rehash t (2 * (t.mask + 1));
    insert t vpn rw
  end

let ring_push t vpn =
  if t.capacity <> None then begin
    let len = Array.length t.ring in
    if t.ring_n = len then begin
      (* grow, unrolling the wrap so order is preserved *)
      let bigger = Array.make (2 * len) 0 in
      for i = 0 to t.ring_n - 1 do
        bigger.(i) <- t.ring.((t.ring_head + i) land (len - 1))
      done;
      t.ring <- bigger;
      t.ring_head <- 0
    end;
    let len = Array.length t.ring in
    t.ring.((t.ring_head + t.ring_n) land (len - 1)) <- vpn;
    t.ring_n <- t.ring_n + 1
  end

(* FIFO eviction: pop queued candidates until one still resides. *)
let rec evict_one t =
  if t.ring_n > 0 then begin
    let victim = t.ring.(t.ring_head) in
    t.ring_head <- (t.ring_head + 1) land (Array.length t.ring - 1);
    t.ring_n <- t.ring_n - 1;
    let slot = victim land t.mask in
    if t.tags.(slot) = victim then begin
      t.tags.(slot) <- -1;
      t.resident <- t.resident - 1;
      t.evictions <- t.evictions + 1;
      t.gen <- t.gen + 1
    end
    else evict_one t
  end

let fill t ~vpn ~mode =
  if vpn < 0 then invalid_arg "Tlb.fill: vpn";
  t.fills <- t.fills + 1;
  let rw = mode = Rw in
  let slot = vpn land t.mask in
  if t.tags.(slot) = vpn then begin
    (* resident: update the mode in place *)
    if t.rws.(slot) <> rw then begin
      t.rws.(slot) <- rw;
      t.gen <- t.gen + 1
    end
  end
  else begin
    (match t.capacity with Some cap when t.resident >= cap -> evict_one t | _ -> ());
    ring_push t vpn;
    insert t vpn rw
  end

let invalidate t ~vpn =
  if vpn >= 0 then begin
    let slot = vpn land t.mask in
    if t.tags.(slot) = vpn then begin
      t.tags.(slot) <- -1;
      t.resident <- t.resident - 1;
      t.invalidations <- t.invalidations + 1;
      t.gen <- t.gen + 1
    end
  end

let entries t = t.resident

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.resident <- 0;
  t.ring_head <- 0;
  t.ring_n <- 0;
  t.gen <- t.gen + 1

let fills t = t.fills

let invalidations t = t.invalidations

let evictions t = t.evictions

let generation t = t.gen
