(* Unit and property tests for mgs_util: priority queue, bitsets, RNG,
   accumulators, and table rendering. *)

module Pq = Mgs_util.Pqueue
module Bs = Mgs_util.Bitset
module Rng = Mgs_util.Rng
module Accum = Mgs_util.Accum
module Tp = Mgs_util.Tableprint

(* --- priority queue ------------------------------------------------- *)

let test_pqueue_basic () =
  let q = Pq.create () in
  Alcotest.(check bool) "fresh empty" true (Pq.is_empty q);
  Pq.push q ~prio:5 ~seq:0 "e";
  Pq.push q ~prio:1 ~seq:1 "a";
  Pq.push q ~prio:3 ~seq:2 "c";
  Alcotest.(check int) "length" 3 (Pq.length q);
  Alcotest.(check (option int)) "min prio" (Some 1) (Pq.min_prio q);
  let pop () = match Pq.pop q with Some (_, _, v) -> v | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "c" (pop ());
  Alcotest.(check string) "third" "e" (pop ());
  Alcotest.(check bool) "drained" true (Pq.pop q = None)

let test_pqueue_fifo_ties () =
  let q = Pq.create () in
  List.iteri (fun i v -> Pq.push q ~prio:7 ~seq:i v) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> match Pq.pop q with Some (_, _, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "ties pop in insertion order" [ "x"; "y"; "z" ] order

let test_pqueue_clear () =
  let q = Pq.create () in
  for i = 0 to 9 do
    Pq.push q ~prio:i ~seq:i i
  done;
  Pq.clear q;
  Alcotest.(check bool) "cleared" true (Pq.is_empty q && Pq.pop q = None)

let prop_pqueue_sorted =
  QCheck2.Test.make ~name:"pqueue pops sorted by (prio, seq)" ~count:300
    QCheck2.Gen.(list (int_bound 1000))
    (fun prios ->
      let q = Pq.create () in
      List.iteri (fun i p -> Pq.push q ~prio:p ~seq:i p) prios;
      let rec drain acc =
        match Pq.pop q with Some (p, s, _) -> drain ((p, s) :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      List.length popped = List.length prios
      && popped = List.sort compare popped)

(* pop order matches a sorted reference over 10k random (prio, seq)
   pushes — the iterative merge_pairs must preserve the heap order *)
let prop_pqueue_10k =
  QCheck2.Test.make ~name:"10k random (prio, seq) pushes pop sorted" ~count:10
    QCheck2.Gen.(list_size (return 10_000) (pair (int_bound 500) (int_bound 1_000_000)))
    (fun pairs ->
      let q = Pq.create () in
      List.iter (fun (p, s) -> Pq.push q ~prio:p ~seq:s ()) pairs;
      let rec drain acc =
        match Pq.pop q with Some (p, s, _) -> drain ((p, s) :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare pairs)

let test_pqueue_deep_merge () =
  (* n same-priority pushes build a root with n-1 children; the first
     pop then merges the whole child list in one merge_pairs call, which
     must not be stack-bound *)
  let q = Pq.create () in
  let n = 200_000 in
  for i = 0 to n - 1 do
    Pq.push q ~prio:0 ~seq:i i
  done;
  let ok = ref true in
  for i = 0 to n - 1 do
    match Pq.pop q with Some (_, s, _) when s = i -> () | _ -> ok := false
  done;
  Alcotest.(check bool) "200k ties drain in seq order" true !ok;
  Alcotest.(check bool) "drained" true (Pq.is_empty q)

(* --- domain pool ------------------------------------------------------ *)

module Dp = Mgs_util.Dpool

let test_dpool_matches_map () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "jobs=4 = List.map" (List.map f xs) (Dp.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "jobs=1 = List.map" (List.map f xs) (Dp.map ~jobs:1 f xs);
  Alcotest.(check (list int))
    "more jobs than work"
    (List.map f [ 1; 2 ])
    (Dp.map ~jobs:8 f [ 1; 2 ]);
  Alcotest.(check (list int)) "empty input" [] (Dp.map ~jobs:4 f []);
  Alcotest.(check bool) "default_jobs positive" true (Dp.default_jobs () >= 1)

let test_dpool_exception () =
  Alcotest.check_raises "lowest failing index re-raised" (Failure "boom 3") (fun () ->
      ignore
        (Dp.map ~jobs:4
           (fun i -> if i >= 3 then failwith (Printf.sprintf "boom %d" i) else i)
           (List.init 10 (fun i -> i))))

(* --- bitsets --------------------------------------------------------- *)

let test_bitset_basic () =
  let s = Bs.create 10 in
  Bs.add s 3;
  Bs.add s 7;
  Bs.add s 3;
  Alcotest.(check int) "cardinal dedups" 2 (Bs.cardinal s);
  Alcotest.(check bool) "mem 3" true (Bs.mem s 3);
  Alcotest.(check bool) "not mem 4" false (Bs.mem s 4);
  Bs.remove s 3;
  Alcotest.(check (list int)) "elements" [ 7 ] (Bs.elements s);
  Bs.remove s 3;
  Alcotest.(check int) "double remove" 1 (Bs.cardinal s);
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: out of range") (fun () ->
      Bs.add s 10)

let test_bitset_union_copy () =
  let a = Bs.create 8 and b = Bs.create 8 in
  List.iter (Bs.add a) [ 0; 2; 4 ];
  List.iter (Bs.add b) [ 2; 3 ];
  let c = Bs.copy a in
  Bs.union_into c b;
  Alcotest.(check (list int)) "union" [ 0; 2; 3; 4 ] (Bs.elements c);
  Alcotest.(check (list int)) "copy is independent" [ 0; 2; 4 ] (Bs.elements a);
  Alcotest.(check (option int)) "choose least" (Some 0) (Bs.choose c);
  Bs.clear c;
  Alcotest.(check bool) "clear empties" true (Bs.is_empty c);
  Alcotest.(check (option int)) "choose empty" None (Bs.choose c)

module IntSet = Set.Make (Int)

let prop_bitset_model =
  QCheck2.Test.make ~name:"bitset agrees with Set on random ops" ~count:300
    QCheck2.Gen.(list (pair bool (int_bound 31)))
    (fun ops ->
      let s = Bs.create 32 in
      let model =
        List.fold_left
          (fun model (add, i) ->
            if add then begin
              Bs.add s i;
              IntSet.add i model
            end
            else begin
              Bs.remove s i;
              IntSet.remove i model
            end)
          IntSet.empty ops
      in
      Bs.elements s = IntSet.elements model && Bs.cardinal s = IntSet.cardinal model)

(* --- rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let prop_rng_int_range =
  QCheck2.Test.make ~name:"Rng.int stays in [0, n)" ~count:500
    QCheck2.Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let g = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int g n in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let prop_rng_float_range =
  QCheck2.Test.make ~name:"Rng.float stays in [0, x)" ~count:200 QCheck2.Gen.int (fun seed ->
      let g = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.float g 3.5 in
        if v < 0.0 || v >= 3.5 then ok := false
      done;
      !ok)

let test_rng_shuffle_permutation () =
  let g = Rng.create ~seed:5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split () =
  let g = Rng.create ~seed:1 in
  let g1 = Rng.split g in
  let g2 = Rng.split g in
  Alcotest.(check bool) "split streams differ" true (Rng.bits64 g1 <> Rng.bits64 g2)

let test_rng_split_key () =
  (* split_key must not advance the parent... *)
  let g = Rng.create ~seed:9 in
  let c0 = Rng.split_key g ~key:0 in
  let c1 = Rng.split_key g ~key:1 in
  let c0' = Rng.split_key g ~key:0 in
  Alcotest.(check bool) "same key reproduces the child" true (Rng.bits64 c0 = Rng.bits64 c0');
  (* ...and distinct keys must give statistically independent streams:
     over 64 x 1024 bits, two children agree bit-for-bit about half the
     time.  10% tolerance is ~26 sigma, so this never flakes. *)
  let a = Rng.split_key g ~key:1 and b = Rng.split_key g ~key:2 in
  Alcotest.(check bool) "children differ" true (Rng.bits64 c1 <> Rng.bits64 (Rng.split_key g ~key:2));
  let agree = ref 0 in
  let total = 64 * 1024 in
  for _ = 1 to 1024 do
    let x = Int64.logxor (Rng.bits64 a) (Rng.bits64 b) in
    (* popcount of the agreement mask *)
    let rec pop acc v = if v = 0L then acc else pop (acc + 1) Int64.(logand v (sub v 1L)) in
    agree := !agree + (64 - pop 0 x)
  done;
  let frac = float_of_int !agree /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "bit agreement %.3f near 0.5" frac)
    true
    (frac > 0.45 && frac < 0.55)

(* --- accumulator ------------------------------------------------------ *)

let test_accum_stats () =
  let a = Accum.create () in
  List.iter (Accum.add a) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Accum.count a);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Accum.mean a);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Accum.sum a);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Accum.variance a);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Accum.min_value a);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Accum.max_value a)

let test_accum_empty () =
  let a = Accum.create () in
  Alcotest.(check (float 0.)) "mean of empty" 0.0 (Accum.mean a);
  Alcotest.check_raises "min of empty" (Invalid_argument "Accum.min_value: empty") (fun () ->
      ignore (Accum.min_value a))

let prop_accum_merge =
  QCheck2.Test.make ~name:"merge equals folding both streams" ~count:200
    QCheck2.Gen.(pair (list (float_bound_exclusive 100.)) (list (float_bound_exclusive 100.)))
    (fun (xs, ys) ->
      let a = Accum.create () and b = Accum.create () and whole = Accum.create () in
      List.iter (Accum.add a) xs;
      List.iter (Accum.add b) ys;
      List.iter (Accum.add whole) (xs @ ys);
      let m = Accum.merge a b in
      let close u v = Float.abs (u -. v) <= 1e-6 *. Float.max 1.0 (Float.abs v) in
      Accum.count m = Accum.count whole
      && close (Accum.mean m) (Accum.mean whole)
      && close (Accum.variance m) (Accum.variance whole))

(* --- table printing ---------------------------------------------------- *)

let test_render_alignment () =
  let out = Tp.render ~header:[ "a"; "bb" ] ~rows:[ [ "xxx"; "y" ]; [ "z" ] ] in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check int) "rule width matches header" (String.length header)
      (String.length rule)
  | _ -> Alcotest.fail "expected at least two lines");
  Alcotest.(check bool) "ragged row padded" true (String.length out > 0)

let test_fmt_cycles () =
  Alcotest.(check string) "plain" "321" (Tp.fmt_cycles 321.);
  Alcotest.(check string) "kilo" "4.56K" (Tp.fmt_cycles 4560.);
  Alcotest.(check string) "mega" "12.30M" (Tp.fmt_cycles 12.3e6);
  Alcotest.(check string) "giga" "2.50G" (Tp.fmt_cycles 2.5e9)

let test_stacked_bars () =
  let out =
    Tp.stacked_bars ~title:"t" ~labels:[ "a"; "b" ] ~series_names:[ "u"; "v" ]
      ~values:[| [| 1.0; 2.0 |]; [| 3.0; 1.0 |] |]
      ()
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "contains legend" true (contains out "legend:");
  Alcotest.(check bool) "one line per label + legend" true
    (List.length (String.split_on_char '\n' out) >= 4)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_pqueue_sorted; prop_pqueue_10k; prop_bitset_model; prop_rng_int_range;
    prop_rng_float_range; prop_accum_merge ]

let () =
  Alcotest.run "util"
    [
      ( "pqueue",
        [
          Alcotest.test_case "basic order" `Quick test_pqueue_basic;
          Alcotest.test_case "fifo on ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          Alcotest.test_case "deep merge_pairs" `Quick test_pqueue_deep_merge;
        ] );
      ( "dpool",
        [
          Alcotest.test_case "matches List.map" `Quick test_dpool_matches_map;
          Alcotest.test_case "exception propagation" `Quick test_dpool_exception;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "union/copy/choose" `Quick test_bitset_union_copy;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "split_key" `Quick test_rng_split_key;
        ] );
      ( "accum",
        [
          Alcotest.test_case "stats" `Quick test_accum_stats;
          Alcotest.test_case "empty" `Quick test_accum_empty;
        ] );
      ( "tableprint",
        [
          Alcotest.test_case "alignment" `Quick test_render_alignment;
          Alcotest.test_case "fmt_cycles" `Quick test_fmt_cycles;
          Alcotest.test_case "stacked bars" `Quick test_stacked_bars;
        ] );
      ("properties", qsuite);
    ]
