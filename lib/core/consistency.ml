open State

(* Both hooks dispatch through the protocol registry: engines without a
   hook registered a no-op, so there is nothing to match on here. *)

let at_release m ~proc ~notices =
  let (module P : Protocol.PROTOCOL) = Protocol.impl_of m.protocol in
  P.release_all m ~proc;
  P.publish m ~proc ~into:notices

let at_acquire m ~proc ~notices =
  let (module P : Protocol.PROTOCOL) = Protocol.impl_of m.protocol in
  P.apply_notices m ~proc notices
