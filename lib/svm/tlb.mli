(** Per-processor software TLB.

    Alewife has no virtual-memory hardware; MGS performs translation in
    software against a per-processor TLB filled from the SSMP's page
    table (section 4.2.1).  The TLB maps virtual page numbers to access
    modes.  By default capacity is unbounded (the paper charges a fixed
    fill cost per fill rather than modelling capacity); an optional
    entry limit with FIFO eviction is available for sensitivity
    studies.

    The implementation is a flat direct-mapped array (slot
    [vpn land mask], grown and rehashed on collision so it stays an
    exact map) with an O(1) FIFO ring for capacity eviction: the
    per-reference operations [grants], [fill] and [invalidate] touch
    only flat arrays and allocate nothing. *)

type mode = Ro | Rw

type t

val create : ?capacity:int -> unit -> t
(** [capacity]: maximum resident entries (FIFO eviction); unbounded when
    omitted.  @raise Invalid_argument if [capacity <= 0]. *)

val lookup : t -> vpn:int -> mode option

val grants : t -> vpn:int -> write:bool -> bool
(** [grants t ~vpn ~write] is true iff an access of that kind hits: the
    entry is resident and, for a write, mapped [Rw].  Allocation-free
    equivalent of matching on [lookup]. *)

val fill : t -> vpn:int -> mode:mode -> unit
(** Installs or upgrades the entry for [vpn]. *)

val invalidate : t -> vpn:int -> unit
(** Drops the entry; no-op if absent (a PINV can race an eviction). *)

val entries : t -> int

val clear : t -> unit

val fills : t -> int
(** Cumulative number of [fill] calls (statistics). *)

val invalidations : t -> int

val evictions : t -> int
(** Capacity evictions performed (0 when unbounded). *)

val generation : t -> int
(** Monotone counter bumped whenever a mapping this TLB holds could have
    shrunk: invalidation, capacity eviction, [clear], or an in-place
    mode change.  Fast-path caches (see {!Mgs.Api}) snapshot it at fill
    time and self-invalidate when it moves — no callback registration
    needed. *)
