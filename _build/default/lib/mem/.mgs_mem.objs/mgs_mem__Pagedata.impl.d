lib/mem/pagedata.ml: Array Geom Int64 List
