bench/perf.mli:
