(* Fixed-size domain pool with deterministic result ordering.

   Work items are claimed from a shared atomic cursor, so domains load-
   balance freely, but results land in a slot per input index and are
   returned in input order — callers observe exactly the List.map
   semantics regardless of [jobs].  Exceptions are captured per item and
   re-raised after every worker has drained, lowest index first, so the
   failing run reported is also independent of scheduling. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let tasks = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r = try Ok (f tasks.(i)) with e -> Error e in
          results.(i) <- Some r;
          go ()
        end
      in
      go ()
    in
    let helpers = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list
      (Array.map
         (function Some (Ok v) -> v | Some (Error e) -> raise e | None -> assert false)
         results)
  end

let iter ~jobs f xs = ignore (map ~jobs (fun x -> f x) xs)
