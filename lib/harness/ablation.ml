type variant = {
  label : string;
  page_words : int;
  lan_latency : int;
  features : Mgs.State.features;
  protocol : string;  (* a Mgs.Protocol registry name *)
  tlb_entries : int option;
  adapt : bool;
}

let baseline =
  {
    label = "baseline";
    page_words = 256;
    lan_latency = 1000;
    features = Mgs.State.default_features;
    protocol = "mgs";
    tlb_entries = None;
    adapt = false;
  }

let protocol_study () =
  [
    { baseline with label = "MGS (eager RC)" };
    { baseline with label = "HLRC (lazy RC)"; protocol = "hlrc" };
    { baseline with label = "Ivy (SC)"; protocol = "ivy" };
  ]

let pipelined_release_study () =
  [
    { baseline with label = "serial RELs (Table 1)" };
    {
      baseline with
      label = "pipelined RELs";
      features = { Mgs.State.default_features with pipelined_release = true };
    };
  ]

let single_writer_study () =
  [
    baseline;
    {
      baseline with
      label = "no single-writer opt";
      features = { Mgs.State.default_features with single_writer_opt = false };
    };
  ]

let early_ack_study () =
  [
    baseline;
    {
      baseline with
      label = "early read ack";
      features = { Mgs.State.default_features with early_read_ack = true };
    };
  ]

let page_size_study () =
  List.map
    (fun pw -> { baseline with label = Printf.sprintf "%dB pages" (pw * 4); page_words = pw })
    [ 128; 256; 512; 1024 ]

let tlb_study () =
  { baseline with label = "unbounded TLB" }
  :: List.map
       (fun n -> { baseline with label = Printf.sprintf "%d-entry TLB" n; tlb_entries = Some n })
       [ 64; 16; 4 ]

let latency_study () =
  List.map
    (fun d -> { baseline with label = Printf.sprintf "latency %d" d; lan_latency = d })
    [ 0; 1000; 4000; 16000 ]

let adapt_study () =
  [
    { baseline with label = "static mgs" };
    { baseline with label = "adaptive mgs"; adapt = true };
    { baseline with label = "static hlrc"; protocol = "hlrc" };
    { baseline with label = "adaptive hlrc"; protocol = "hlrc"; adapt = true };
  ]

let run ?clusters ?(jobs = 1) ?(par = 0) ~nprocs ~variants w =
  (* feature toggles are not part of Sweep.run_point's interface, so
     drive the machines directly *)
  let clusters = Option.value ~default:(Sweep.clusters_of nprocs) clusters in
  let run_cell (v, cluster) =
    (* the zero-latency variant has no lookahead window to shard on *)
    let par_jobs = if v.lan_latency < 1 then 0 else par in
    let cfg =
      Mgs.Machine.config ~page_words:v.page_words ~lan_latency:v.lan_latency
        ~features:v.features
        ~protocol:(Mgs.Protocol.proto_of_name v.protocol)
        ?tlb_entries:v.tlb_entries ~par_jobs ~adapt:v.adapt ~nprocs ~cluster ()
    in
    let m = Mgs.Machine.create cfg in
    let body, check = w.Sweep.prepare m in
    let report = Mgs.Machine.run m body in
    Mgs.Machine.assert_quiescent m;
    check m;
    (cluster, report.Mgs.Report.runtime)
  in
  (* fan the whole variant x cluster grid through the domain pool, then
     regroup the (order-preserving) flat result list per variant *)
  let grid = List.concat_map (fun v -> List.map (fun c -> (v, c)) clusters) variants in
  let flat = ref (Mgs_util.Dpool.map ~jobs run_cell grid) in
  let per_variant = List.length clusters in
  let results =
    List.map
      (fun v ->
        let rec take n acc rest =
          if n = 0 then (List.rev acc, rest)
          else match rest with [] -> assert false | x :: tl -> take (n - 1) (x :: acc) tl
        in
        let curve, rest = take per_variant [] !flat in
        flat := rest;
        (v, curve))
      variants
  in
  let header = "C" :: List.map (fun (v, _) -> v.label) results in
  let rows =
    List.map
      (fun c ->
        string_of_int c
        :: List.map
             (fun (_, curve) ->
               Mgs_util.Tableprint.fmt_cycles (float_of_int (Sweep.runtime_of_rt curve c)))
             results)
      clusters
  in
  let metric_rows =
    [
      "breakup"
      :: List.map
           (fun (_, curve) -> Printf.sprintf "%.0f%%" (100. *. Sweep.breakup_penalty_rt curve))
           results;
      "potential"
      :: List.map
           (fun (_, curve) ->
             Printf.sprintf "%.0f%%" (100. *. Sweep.multigrain_potential_rt curve))
           results;
      "curvature" :: List.map (fun (_, curve) -> Sweep.curvature_class_rt curve) results;
    ]
  in
  Printf.sprintf "%s (P = %d)\n%s" w.Sweep.name nprocs
    (Mgs_util.Tableprint.render ~header ~rows:(rows @ metric_rows))
