test/test_engine.ml: Alcotest List Mgs_engine QCheck2 QCheck_alcotest
