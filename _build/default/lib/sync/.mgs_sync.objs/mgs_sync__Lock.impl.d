lib/sync/lock.ml: Am Array Cpu Hashtbl Mgs Mgs_engine Mgs_obs Queue Sim Span Topology
