(* Tests for the discrete-event core: event ordering, clamping, fibers,
   and wait queues. *)

module Sim = Mgs_engine.Sim
module Fiber = Mgs_engine.Fiber
module Waitq = Mgs_engine.Waitq

let test_event_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.at sim 30 (fun () -> log := 30 :: !log);
  Sim.at sim 10 (fun () -> log := 10 :: !log);
  Sim.at sim 20 (fun () -> log := 20 :: !log);
  let n = Sim.run sim () in
  Alcotest.(check int) "events" 3 n;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Sim.now sim)

let test_tie_break_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 4 do
    Sim.at sim 7 (fun () -> log := i :: !log)
  done;
  ignore (Sim.run sim ());
  Alcotest.(check (list int)) "same-time events run in schedule order" [ 0; 1; 2; 3; 4 ]
    (List.rev !log)

let test_past_clamped () =
  let sim = Sim.create () in
  let fired_at = ref (-1) in
  Sim.at sim 100 (fun () -> Sim.at sim 50 (fun () -> fired_at := Sim.now sim));
  ignore (Sim.run sim ());
  Alcotest.(check int) "past schedule runs now" 100 !fired_at

let test_after_negative () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.after: negative delay")
    (fun () -> Sim.after sim (-1) (fun () -> ()))

let test_event_limit () =
  let sim = Sim.create () in
  let rec forever () = Sim.after sim 1 forever in
  forever ();
  (* the failure must carry the diagnosis: limit, progress, clock, and
     queue depth (a bare "livelock?" gave nothing to debug with) *)
  Alcotest.check_raises "limit trips"
    (Failure
       "Sim.run: event limit exhausted (livelock?): limit=100 executed=100 clock=100 \
        pending=1") (fun () -> ignore (Sim.run sim ~limit:100 ()))

let test_clamp_counted () =
  let sim = Sim.create () in
  Sim.at sim 100 (fun () ->
      Sim.at sim 50 (fun () -> ());
      Sim.at sim 60 (fun () -> ());
      Sim.at sim 200 (fun () -> ()));
  ignore (Sim.run sim ());
  let st = Sim.stats sim in
  Alcotest.(check int) "two past-due schedules counted" 2 st.Sim.s_clamped;
  Alcotest.(check int) "executed" 4 st.Sim.s_executed

(* A cross-shard message that lands after its destination's clock (a
   lookahead violation by construction: due in 10 cycles where the
   window is 1000 wide) is clamped-and-counted by default... *)
let test_sharded_late_merge_clamped () =
  let sim = Sim.create () in
  Sim.make_sharded sim ~nshards:2 ~lookahead:1000;
  Sim.set_jobs sim 2;
  (* shard 1 busies itself deep into the first window *)
  Sim.at_shard sim ~shard:1 900 (fun () -> ());
  let landed = ref (-1) in
  Sim.at_shard sim ~shard:0 10 (fun () ->
      Sim.at_shard sim ~shard:1 20 (fun () -> landed := Sim.now sim));
  ignore (Sim.run sim ());
  Alcotest.(check int) "late merge clamped to the destination clock" 900 !landed;
  Alcotest.(check int) "clamp counted" 1 (Sim.stats sim).Sim.s_clamped

(* ...and raises under strict mode, for debugging lookahead bugs. *)
let test_sharded_strict_raises () =
  let sim = Sim.create () in
  Sim.make_sharded sim ~nshards:2 ~lookahead:1000;
  Sim.set_jobs sim 2;
  Sim.set_strict sim true;
  Sim.at_shard sim ~shard:1 900 (fun () -> ());
  Sim.at_shard sim ~shard:0 10 (fun () ->
      Sim.at_shard sim ~shard:1 20 (fun () -> ()));
  match Sim.run sim () with
  | _ -> Alcotest.fail "expected Late_delivery"
  | exception Mgs_engine.Shard.Late_delivery { dst; fire; clock } ->
    Alcotest.(check int) "dst shard" 1 dst;
    Alcotest.(check int) "fire" 20 fire;
    Alcotest.(check int) "destination clock" 900 clock

let test_fiber_completes () =
  let sim = Sim.create () in
  let steps = ref [] in
  let fb =
    Fiber.spawn sim ~at:0 ~name:"t" (fun () ->
        steps := `A :: !steps;
        Fiber.sleep_until sim 500;
        steps := `B :: !steps)
  in
  ignore (Sim.run sim ());
  Alcotest.(check bool) "completed" true (Fiber.status fb = Fiber.Completed);
  Alcotest.(check int) "slept to 500" 500 (Sim.now sim);
  Alcotest.(check int) "both steps ran" 2 (List.length !steps)

let test_fiber_deadlock_detected () =
  let sim = Sim.create () in
  let fb = Fiber.spawn sim ~at:0 ~name:"stuck" (fun () -> Fiber.suspend (fun _resume -> ())) in
  ignore (Sim.run sim ());
  Alcotest.(check bool) "still running" true (Fiber.status fb = Fiber.Running);
  Alcotest.check_raises "check_all_completed reports it"
    (Failure "fiber \"stuck\" deadlocked (still blocked)") (fun () ->
      Fiber.check_all_completed [ fb ])

exception Boom

let test_fiber_failure_propagates () =
  let sim = Sim.create () in
  let fb = Fiber.spawn sim ~at:0 ~name:"bad" (fun () -> raise Boom) in
  ignore (Sim.run sim ());
  (match Fiber.status fb with
  | Fiber.Failed Boom -> ()
  | _ -> Alcotest.fail "expected Failed Boom");
  Alcotest.check_raises "re-raised" Boom (fun () -> Fiber.check_all_completed [ fb ])

let test_suspend_outside_fiber () =
  Alcotest.check_raises "suspend outside fiber"
    (Failure "Fiber.suspend: called outside a fiber") (fun () ->
      Fiber.suspend (fun _resume -> ()))

let test_waitq_fifo () =
  let sim = Sim.create () in
  let q = Waitq.create () in
  let order = ref [] in
  let spawn name =
    ignore
      (Fiber.spawn sim ~at:0 ~name (fun () ->
           Waitq.park q;
           order := name :: !order))
  in
  spawn "first";
  spawn "second";
  spawn "third";
  Sim.at sim 10 (fun () -> ignore (Waitq.wake_one sim q));
  Sim.at sim 20 (fun () -> ignore (Waitq.wake_all sim q));
  ignore (Sim.run sim ());
  Alcotest.(check (list string)) "FIFO wake order" [ "first"; "second"; "third" ]
    (List.rev !order)

let test_waitq_counts () =
  let sim = Sim.create () in
  let q = Waitq.create () in
  Alcotest.(check bool) "empty wake_one" false (Waitq.wake_one sim q);
  Waitq.park_thunk q (fun () -> ());
  Waitq.park_thunk q (fun () -> ());
  Alcotest.(check int) "length" 2 (Waitq.length q);
  Alcotest.(check int) "wake_all count" 2 (Waitq.wake_all sim q);
  Alcotest.(check bool) "now empty" true (Waitq.is_empty q)

(* Fibers interleave deterministically with plain events. *)
let test_fiber_event_interleaving () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Fiber.spawn sim ~at:5 ~name:"f" (fun () ->
         log := "f@5" :: !log;
         Fiber.sleep_until sim 15;
         log := "f@15" :: !log));
  Sim.at sim 10 (fun () -> log := "e@10" :: !log);
  ignore (Sim.run sim ());
  Alcotest.(check (list string)) "interleaving" [ "f@5"; "e@10"; "f@15" ] (List.rev !log)

(* Property: the simulator clock never goes backwards, whatever the
   schedule (including events scheduling into the past). *)
let prop_clock_monotone =
  QCheck2.Test.make ~name:"Sim.now is monotone" ~count:200
    QCheck2.Gen.(list (pair (int_bound 1000) (int_bound 500)))
    (fun plan ->
      let sim = Sim.create () in
      let last = ref (-1) in
      let ok = ref true in
      List.iter
        (fun (t, dt) ->
          Sim.at sim t (fun () ->
              if Sim.now sim < !last then ok := false;
              last := Sim.now sim;
              (* events may schedule both forward and "backward" *)
              Sim.at sim (Sim.now sim - dt) (fun () ->
                  if Sim.now sim < !last then ok := false;
                  last := Sim.now sim)))
        plan;
      ignore (Sim.run sim ());
      !ok)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_clock_monotone ]

let () =
  Alcotest.run "engine"
    [
      ( "sim",
        [
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "tie-break fifo" `Quick test_tie_break_fifo;
          Alcotest.test_case "past clamped to now" `Quick test_past_clamped;
          Alcotest.test_case "negative delay rejected" `Quick test_after_negative;
          Alcotest.test_case "event limit" `Quick test_event_limit;
          Alcotest.test_case "clamps counted" `Quick test_clamp_counted;
          Alcotest.test_case "late cross-shard merge clamped" `Quick
            test_sharded_late_merge_clamped;
          Alcotest.test_case "strict mode raises on late merge" `Quick
            test_sharded_strict_raises;
        ] );
      ( "fiber",
        [
          Alcotest.test_case "runs to completion" `Quick test_fiber_completes;
          Alcotest.test_case "deadlock detected" `Quick test_fiber_deadlock_detected;
          Alcotest.test_case "failure propagates" `Quick test_fiber_failure_propagates;
          Alcotest.test_case "suspend outside fiber" `Quick test_suspend_outside_fiber;
          Alcotest.test_case "interleaves with events" `Quick test_fiber_event_interleaving;
        ] );
      ( "waitq",
        [
          Alcotest.test_case "fifo" `Quick test_waitq_fifo;
          Alcotest.test_case "counts" `Quick test_waitq_counts;
        ] );
      ("properties", qsuite);
    ]
