examples/protocols.ml: List Mgs Mgs_mem Mgs_sync Printf
