(* Tail-latency reporting for the KV tier, derived entirely from the
   span layer: every completed request is one [kv.get]/[kv.put]/
   [kv.scan] root span covering [arrival, completion] — open-loop
   latency, queueing included — with child spans ([kv.queue],
   [kv.lock], [kv.access]) partitioning the interval.  Percentiles are
   computed exactly over the recorded durations (nearest-rank on the
   sorted array), so the table is byte-identical whenever the spans
   are, i.e. across -j, --par, and reruns. *)

let op_labels = [ "kv.get"; "kv.put"; "kv.scan" ]

let phase_labels = [ "kv.queue"; "kv.lock"; "kv.access" ]

let is_op l = List.mem l op_labels

let is_phase l = List.mem l phase_labels

(* Nearest-rank percentile of a sorted sample array: the smallest value
   with at least [ceil (q * n)] samples at or below it. *)
let percentile_of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let q = if q > 1. then 1. else q in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)
  end

let durations_by_op sp =
  let tbl = Hashtbl.create 4 in
  List.iter (fun l -> Hashtbl.replace tbl l (ref [])) op_labels;
  Mgs_obs.Span.iter sp (fun s ->
      if s.Mgs_obs.Span.parent = -1 && s.Mgs_obs.Span.t1 >= 0 && is_op s.Mgs_obs.Span.label
      then
        let acc = Hashtbl.find tbl s.Mgs_obs.Span.label in
        acc := (s.Mgs_obs.Span.t1 - s.Mgs_obs.Span.t0) :: !acc);
  List.filter_map
    (fun l ->
      let durs = Array.of_list !(Hashtbl.find tbl l) in
      if Array.length durs = 0 then None
      else begin
        Array.sort compare durs;
        Some (l, durs)
      end)
    op_labels

let rows sp =
  List.map
    (fun (l, durs) ->
      let n = Array.length durs in
      let sum = Array.fold_left ( + ) 0 durs in
      {
        Mgs_harness.Figures.lr_op = l;
        lr_count = n;
        lr_mean = float_of_int sum /. float_of_int n;
        lr_p50 = percentile_of_sorted durs 0.50;
        lr_p99 = percentile_of_sorted durs 0.99;
        lr_p999 = percentile_of_sorted durs 0.999;
        lr_max = durs.(n - 1);
      })
    (durations_by_op sp)

(* Fraction of total request latency attributed to a phase span.  The
   phases partition each root interval by construction, so anything
   below 1.0 measures spans lost to the bounded store. *)
let coverage sp =
  let root_time = ref 0 and phase_time = ref 0 in
  Mgs_obs.Span.iter sp (fun s ->
      if s.Mgs_obs.Span.t1 >= 0 then begin
        let d = s.Mgs_obs.Span.t1 - s.Mgs_obs.Span.t0 in
        if s.Mgs_obs.Span.parent = -1 && is_op s.Mgs_obs.Span.label then
          root_time := !root_time + d
        else if is_phase s.Mgs_obs.Span.label then phase_time := !phase_time + d
      end);
  if !root_time = 0 then 1.0 else float_of_int !phase_time /. float_of_int !root_time

let p999_of sp =
  match List.assoc_opt "kv.put" (durations_by_op sp) with
  | Some durs -> percentile_of_sorted durs 0.999
  | None -> 0

let table sp = Mgs_harness.Figures.pp_latency_table ~coverage:(coverage sp) (rows sp)
