(** Deterministic zipfian rank sampler.

    Popularity rank [r] (0 = most popular) is drawn with probability
    proportional to [(r+1){^-theta}]; [theta = 0] degenerates to
    uniform.  A sampler is one precomputed CDF shared by any number of
    generators; each draw consumes exactly one uniform deviate from the
    caller's {!Mgs_util.Rng} stream, so request schedules derived from
    split RNG keys are pure functions of the seed. *)

type dist

val dist : n:int -> theta:float -> dist
(** @raise Invalid_argument if [n <= 0] or [theta < 0]. *)

val n : dist -> int

val mass : dist -> int -> float
(** Probability of rank [i].  @raise Invalid_argument out of range. *)

val draw : dist -> Mgs_util.Rng.t -> int
(** A rank in [0 .. n-1]. *)
