test/test_mem.ml: Alcotest Array List Mgs_mem Mgs_util QCheck2 QCheck_alcotest
