type t = {
  ring : Event.t Ring.t;
  hists : (string, Hist.t) Hashtbl.t;
  mutable subscribers : (Event.t -> unit) list;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  { ring = Ring.create ~capacity; hists = Hashtbl.create 32; subscribers = [] }

let subscribe t f = t.subscribers <- f :: t.subscribers

let hist_for t tag =
  match Hashtbl.find_opt t.hists tag with
  | Some h -> h
  | None ->
    let h = Hist.create () in
    Hashtbl.add t.hists tag h;
    h

let emit t (e : Event.t) =
  Ring.push t.ring e;
  Hist.add (hist_for t e.tag) e.dur;
  List.iter (fun f -> f e) t.subscribers

let events t = Ring.to_list t.ring

let emitted t = Ring.pushed t.ring

let retained t = Ring.length t.ring

let dropped t = Ring.dropped t.ring

let hist t tag = Hashtbl.find_opt t.hists tag

let histograms t =
  List.sort compare (Hashtbl.fold (fun tag h acc -> (tag, h) :: acc) t.hists [])

(* --- Chrome trace_event export ------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One Chrome "complete" ('X') slice per event: pid = the SSMP where the
   work lands, tid = the processor there, ts..ts+dur the transfer or
   occupancy interval in simulated cycles (1 cycle = 1 "us" on the
   chrome://tracing timeline). *)
let chrome_event buf (e : Event.t) =
  let pid = if e.dst_ssmp >= 0 then e.dst_ssmp else max e.src_ssmp 0 in
  let tid = if e.dst >= 0 then e.dst else max e.src 0 in
  let ts = e.time - max e.dur 0 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"vpn\":%d,\"src\":%d,\"dst\":%d,\"words\":%d,\"cost\":%d}}"
       (json_escape e.tag)
       (Event.engine_name e.engine)
       ts (max e.dur 0) pid tid e.vpn e.src e.dst e.words e.cost)

let chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  Ring.iter
    (fun e ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      chrome_event buf e)
    t.ring;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome t oc = output_string oc (chrome_json t)

let pp_summary ppf t =
  Format.fprintf ppf "events: %d emitted, %d retained, %d dropped@." (emitted t) (retained t)
    (dropped t);
  List.iter
    (fun (tag, h) -> Format.fprintf ppf "  %-14s %a@." tag Hist.pp h)
    (histograms t)
