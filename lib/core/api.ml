open State

(* The per-reference pipeline is the simulator's innermost loop: every
   shared read/write of every app goes through it.  The common case —
   the processor re-references a page it already holds a sufficient TLB
   mapping for — is served by a per-ctx {e last-page cache} below that
   touches no Hashtbl and allocates nothing; protocol activity
   invalidates it through generation counters (see [lp_mgen]/[lp_tgen])
   rather than callbacks. *)
type ctx = {
  m : State.t;
  proc : int;
  cpu : Mgs_machine.Cpu.t;
  mutable ops : int;
  yield_mask : int;
  lidx : int; (* proc's index within its SSMP *)
  single : bool; (* single-SSMP machine: protocol bypassed *)
  cache : Mgs_cache.Coherence.t; (* this SSMP's hardware cache model *)
  tlb : Mgs_svm.Tlb.t; (* this processor's TLB *)
  (* Last-page cache: the resolved state of the most recent access.  An
     entry is valid iff [lp_vpn] matches and neither generation moved
     since the snapshot; any protocol downcall that could retire the
     mapping bumps [State.t.gen], and any shrink of this TLB bumps its
     own generation, so stale entries self-invalidate. *)
  mutable lp_vpn : int; (* -1 = empty *)
  mutable lp_mgen : int; (* State.t.gen at snapshot time *)
  mutable lp_tgen : int; (* Tlb.generation at snapshot time *)
  mutable lp_rw : bool; (* TLB granted Rw at snapshot time *)
  mutable lp_page : Mgs_mem.Pagedata.page; (* resolved data frame *)
  mutable lp_twin : Mgs_mem.Pagedata.twin option; (* dirty-word sink *)
  mutable lp_fowner : int; (* frame owner (local index) *)
}

(* Fibers yield to the event queue every [1 lsl yield_log] shared
   accesses, bounding the skew between a fiber's local clock and global
   simulated time (protocol events interleave at yield points). *)
let yield_log = 5

(* Testing hook: with the fast path off, every access takes the full
   slow path (TLB + page table + directory).  Results must be
   identical either way — asserted by test_fastpath. *)
let fast_path_enabled = ref true

let set_fast_path b = fast_path_enabled := b

let make_ctx m ~proc =
  if proc < 0 || proc >= m.topo.Topology.nprocs then invalid_arg "Api.make_ctx: proc";
  let single = Topology.single_ssmp m.topo in
  let s = Topology.ssmp_of_proc m.topo proc in
  {
    m;
    proc;
    cpu = m.cpus.(proc);
    ops = 0;
    yield_mask = (1 lsl yield_log) - 1;
    lidx = local_idx m proc;
    single;
    cache = m.caches.(s);
    tlb = m.tlbs.(proc);
    lp_vpn = -1;
    lp_mgen = 0;
    lp_tgen = 0;
    lp_rw = false;
    lp_page = [||];
    lp_twin = None;
    lp_fowner = 0;
  }

let proc ctx = ctx.proc

let nprocs ctx = ctx.m.topo.Topology.nprocs

let cluster ctx = ctx.m.topo.Topology.cluster

let ssmp ctx = Topology.ssmp_of_proc ctx.m.topo ctx.proc

let cycles ctx = ctx.cpu.Cpu.clock

let compute ctx n = Cpu.advance ctx.cpu User n

let idle_until ctx t =
  Mgs_engine.Fiber.sleep_until ctx.m.sim t;
  Cpu.catch_up_to ctx.cpu User (Sim.now ctx.m.sim)

let release ctx =
  let (module P : Protocol.PROTOCOL) = Protocol.impl_of ctx.m.protocol in
  P.release_all ctx.m ~proc:ctx.proc

(* Refresh the last-page cache after the slow path resolved [vpn].
   Called with no intervening suspension point before the caller uses
   the entry, and always {e after} any fault completed: the snapshot
   therefore reflects the installed mapping. *)
let lp_refill ctx ~vpn ~page ~twin ~fowner =
  ctx.lp_vpn <- vpn;
  ctx.lp_rw <- Tlb.grants ctx.tlb ~vpn ~write:true;
  ctx.lp_page <- page;
  ctx.lp_twin <- twin;
  ctx.lp_fowner <- fowner;
  ctx.lp_mgen <- Atomic.get ctx.m.gen;
  ctx.lp_tgen <- Tlb.generation ctx.tlb

(* Single-SSMP (C = P) accesses bypass the software protocol entirely —
   the paper's 32-processor runs substitute null MGS calls — paying only
   translation, a one-time mapping fill, and hardware coherence. *)
let access_single ctx ~write ~vpn ~addr =
  let m = ctx.m in
  let c = m.costs in
  let se = get_sentry m vpn in
  if not (Tlb.grants ctx.tlb ~vpn ~write:false) then begin
    Cpu.advance ctx.cpu User (c.svm.table_lookup + c.svm.tlb_write);
    Tlb.fill ctx.tlb ~vpn ~mode:Tlb.Rw
  end;
  let frame_owner = local_idx m se.s_home_proc in
  let kind = if write then Coherence.Write else Coherence.Read in
  let stall = Coherence.access ctx.cache ~proc:ctx.lidx ~addr ~frame_owner ~kind in
  Cpu.advance ctx.cpu User stall;
  lp_refill ctx ~vpn ~page:se.s_master ~twin:None ~fowner:frame_owner;
  se.s_master

(* Multi-SSMP accesses: TLB hit or MGS fault, then hardware coherence
   against the SSMP's copy. *)
let access_multi ctx ~write ~vpn ~addr =
  let m = ctx.m in
  let s = Topology.ssmp_of_proc m.topo ctx.proc in
  (if not (Tlb.grants ctx.tlb ~vpn ~write) then
     let (module P : Protocol.PROTOCOL) = Protocol.impl_of m.protocol in
     P.fault m ~proc:ctx.proc ~vpn ~write);
  let ce = get_centry m s vpn in
  let data = match ce.cdata with Some d -> d | None -> assert false in
  (* Maintain the twin's dirty-word bitmap on every store, so the diff
     at release time scans only the touched words. *)
  (if write then
     match ce.ctwin with
     | Some t -> Pagedata.mark t (Geom.offset_of_addr m.geom addr)
     | None -> ());
  let kind = if write then Coherence.Write else Coherence.Read in
  let stall =
    Coherence.access ctx.cache ~proc:ctx.lidx ~addr ~frame_owner:ce.frame_owner ~kind
  in
  Cpu.advance ctx.cpu User stall;
  lp_refill ctx ~vpn ~page:data ~twin:ce.ctwin ~fowner:ce.frame_owner;
  data

(* Resolve [addr] to its data frame, charging translation, the fault (if
   any) and the coherence stall.  Returns the page; the caller indexes
   it with [Geom.offset_of_addr] — no tuple, no option, so a fast-path
   access allocates nothing. *)
let locate ctx ~write ~kind addr =
  let m = ctx.m in
  if addr < 0 || addr >= Allocator.words_allocated m.heap then
    invalid_arg (Printf.sprintf "Api: address %d outside the shared heap" addr);
  Cpu.sync_busy ctx.cpu;
  ctx.ops <- ctx.ops + 1;
  if ctx.ops land ctx.yield_mask = 0 then
    Mgs_engine.Fiber.sleep_until m.sim ctx.cpu.Cpu.clock;
  Cpu.advance ctx.cpu User (Mgs_svm.Translate.cost m.costs kind);
  let vpn = Geom.vpn_of_addr m.geom addr in
  if
    vpn = ctx.lp_vpn
    && ctx.lp_mgen = Atomic.get m.gen
    && ctx.lp_tgen = Tlb.generation ctx.tlb
    && ((not write) || ctx.lp_rw)
    && !fast_path_enabled
  then begin
    (if write then
       match ctx.lp_twin with
       | Some t -> Pagedata.mark t (Geom.offset_of_addr m.geom addr)
       | None -> ());
    let stall =
      Coherence.access ctx.cache ~proc:ctx.lidx ~addr ~frame_owner:ctx.lp_fowner
        ~kind:(if write then Coherence.Write else Coherence.Read)
    in
    Cpu.advance ctx.cpu User stall;
    ctx.lp_page
  end
  else if ctx.single then access_single ctx ~write ~vpn ~addr
  else access_multi ctx ~write ~vpn ~addr

let read ctx ?(kind = Mgs_svm.Translate.Array) addr =
  let page = locate ctx ~write:false ~kind addr in
  let v = page.(Geom.offset_of_addr ctx.m.geom addr) in
  (match ctx.m.shadow with
  | Some h ->
    let expect = match Hashtbl.find h addr with v -> v | exception Not_found -> 0.0 in
    if Int64.bits_of_float v <> Int64.bits_of_float expect then
      Printf.eprintf "SHADOW t=%d proc=%d addr=%d vpn=%d read=%.17g expect=%.17g\n%!"
        (Sim.now ctx.m.sim) ctx.proc addr
        (Geom.vpn_of_addr ctx.m.geom addr)
        v expect
  | None -> ());
  v

let write ctx ?(kind = Mgs_svm.Translate.Array) addr v =
  let page = locate ctx ~write:true ~kind addr in
  (match ctx.m.shadow with Some h -> Hashtbl.replace h addr v | None -> ());
  page.(Geom.offset_of_addr ctx.m.geom addr) <- v

let read_int ctx ?kind addr = int_of_float (read ctx ?kind addr)

let write_int ctx ?kind addr v = write ctx ?kind addr (float_of_int v)
