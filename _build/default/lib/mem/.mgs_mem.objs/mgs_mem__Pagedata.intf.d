lib/mem/pagedata.mli: Geom
