test/test_examples.ml: Alcotest Filename List Printf Sys
