(** Memory geometry: page and cache-line sizes and the address
    arithmetic derived from them.

    Addresses are word indices into the shared virtual address space
    (one word = 4 bytes, the simulator's unit of data; values are held
    as OCaml floats for convenience, but all costs model 32-bit data,
    matching the paper's single-precision workloads).  The paper's
    evaluation uses 1K-byte pages and 16-byte cache lines, i.e. 256
    words per page and 4 words per line. *)

type t = private {
  page_words : int;  (** words per page (power of two) *)
  line_words : int;  (** words per cache line (power of two, divides page) *)
}

val create : ?page_words:int -> ?line_words:int -> unit -> t
(** Defaults: [page_words = 256] (1 KB), [line_words = 4] (16 B).
    @raise Invalid_argument unless both are powers of two with
    [line_words <= page_words]. *)

val bytes_per_word : int
(** 4: data values are 32-bit words. *)

val page_bytes : t -> int

val vpn_of_addr : t -> int -> int
(** Virtual page number containing word address [addr]. *)

val offset_of_addr : t -> int -> int
(** Word offset of [addr] within its page. *)

val addr_of_vpn : t -> int -> int
(** First word address of page [vpn]. *)

val line_of_addr : t -> int -> int
(** Global line number containing [addr]. *)

val lines_per_page : t -> int

val line_offset_in_page : t -> int -> int
(** Line index within its page of the line containing word [addr]. *)
