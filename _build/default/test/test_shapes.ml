(* Shape-regression guards: the qualitative results that constitute the
   reproduction (who wins, orderings, monotonicities) must survive code
   changes.  Sizes are trimmed below the bench defaults to keep the
   suite fast; the properties asserted are scale-robust. *)

module Sweep = Mgs_harness.Sweep

let nprocs = 16

let sweep w = Sweep.sweep ~nprocs w

let jacobi = lazy (sweep (Mgs_apps.Jacobi.workload { Mgs_apps.Jacobi.default with Mgs_apps.Jacobi.n = 62; iters = 3 }))

let tsp = lazy (sweep (Mgs_apps.Tsp.workload { Mgs_apps.Tsp.default with Mgs_apps.Tsp.ncities = 9 }))

let water = lazy (sweep (Mgs_apps.Water.workload { Mgs_apps.Water.default with Mgs_apps.Water.nmol = 64 }))

let barnes = lazy (sweep (Mgs_apps.Barnes.workload { Mgs_apps.Barnes.default with Mgs_apps.Barnes.nbodies = 64 }))

let kern p = { Mgs_apps.Water_kernel.default with Mgs_apps.Water_kernel.nmol = 32 } |> p

let wkern = lazy (sweep (kern Mgs_apps.Water_kernel.workload))

let wkern_tiled = lazy (sweep (kern Mgs_apps.Water_kernel.workload_tiled))

(* 1. The tightly-coupled machine wins everywhere (positive breakup). *)
let test_tightly_coupled_wins () =
  List.iter
    (fun (name, points) ->
      Alcotest.(check bool)
        (name ^ ": C=P fastest")
        true
        (Sweep.breakup_penalty (Lazy.force points) > 0.0))
    [ ("jacobi", jacobi); ("tsp", tsp); ("water", water); ("barnes", barnes) ]

(* 2. Clustering helps the irregular apps (positive multigrain
   potential), and the embarrassingly parallel one is insensitive. *)
let test_multigrain_potential () =
  Alcotest.(check bool) "water gains from clustering" true
    (Sweep.multigrain_potential (Lazy.force water) > 0.25);
  Alcotest.(check bool) "barnes gains from clustering" true
    (Sweep.multigrain_potential (Lazy.force barnes) > 0.25);
  Alcotest.(check bool) "jacobi roughly flat" true
    (Float.abs (Sweep.multigrain_potential (Lazy.force jacobi)) < 0.5)

(* 3. TSP is the pathological application, by a wide margin. *)
let test_tsp_is_worst () =
  let b points = Sweep.breakup_penalty (Lazy.force points) in
  Alcotest.(check bool) "tsp >> water" true (b tsp > 3.0 *. b water);
  Alcotest.(check bool) "tsp >> barnes" true (b tsp > 3.0 *. b barnes);
  Alcotest.(check bool) "tsp catastrophic" true (b tsp > 10.0)

(* 4. The hand-tiled kernel beats the untransformed kernel at every
   multi-SSMP cluster size and slashes the breakup penalty. *)
let test_tiling_pays () =
  let plain = Lazy.force wkern and tiled = Lazy.force wkern_tiled in
  List.iter
    (fun c ->
      if c < nprocs then
        Alcotest.(check bool)
          (Printf.sprintf "tiled faster at C=%d" c)
          true
          (Sweep.runtime_of tiled c < Sweep.runtime_of plain c))
    [ 1; 2; 4; 8 ];
  Alcotest.(check bool) "breakup reduced at least 2x" true
    (2.0 *. Sweep.breakup_penalty tiled < Sweep.breakup_penalty plain)

(* 5. Lock hit ratios rise monotonically with cluster size. *)
let test_hit_ratio_monotone () =
  List.iter
    (fun (name, points) ->
      let ratios = List.map (fun p -> p.Sweep.lock_hit_ratio) (Lazy.force points) in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      Alcotest.(check bool) (name ^ ": hit ratio monotone") true (mono ratios))
    [ ("tsp", tsp); ("water", water); ("barnes", barnes) ]

(* 6. Runtime improves (weakly) with cluster size for the lock-based
   apps between C=1 and C=P/2, i.e. the curve slopes the right way. *)
let test_runtime_trend () =
  List.iter
    (fun (name, points) ->
      let pts = Lazy.force points in
      Alcotest.(check bool)
        (name ^ ": T(P/2) <= T(1)")
        true
        (Sweep.runtime_of pts (nprocs / 2) <= Sweep.runtime_of pts 1))
    [ ("water", water); ("barnes", barnes); ("jacobi", jacobi) ]

let () =
  Alcotest.run "shapes"
    [
      ( "paper shapes",
        [
          Alcotest.test_case "tightly-coupled wins" `Slow test_tightly_coupled_wins;
          Alcotest.test_case "multigrain potential" `Slow test_multigrain_potential;
          Alcotest.test_case "tsp is worst" `Slow test_tsp_is_worst;
          Alcotest.test_case "tiling pays" `Slow test_tiling_pays;
          Alcotest.test_case "hit ratios monotone" `Slow test_hit_ratio_monotone;
          Alcotest.test_case "runtime trend" `Slow test_runtime_trend;
        ] );
    ]
