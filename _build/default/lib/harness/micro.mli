(** Micro measurements reproducing Table 3: the cost of primitive MGS
    operations, measured by bracketing single operations inside tiny
    simulated programs (1 KB pages, zero inter-SSMP delay, as in the
    paper). *)

type measurement = {
  name : string;
  group : string;  (** "Hardware Shared Memory" etc., as in Table 3 *)
  paper : int;  (** the paper's measured value (cycles @20 MHz) *)
  measured : int;  (** this simulator's value *)
}

val run_all : ?costs:Mgs_machine.Costs.t -> unit -> measurement list
(** Execute every micro benchmark; order matches Table 3. *)

val print_table : measurement list -> unit
(** Render the Table 3 comparison (paper vs measured vs ratio). *)
