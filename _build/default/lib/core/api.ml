open State

type ctx = {
  m : State.t;
  proc : int;
  cpu : Mgs_machine.Cpu.t;
  mutable ops : int;
  yield_mask : int;
}

(* Fibers yield to the event queue every [1 lsl yield_log] shared
   accesses, bounding the skew between a fiber's local clock and global
   simulated time (protocol events interleave at yield points). *)
let yield_log = 5

let make_ctx m ~proc =
  if proc < 0 || proc >= m.topo.Topology.nprocs then invalid_arg "Api.make_ctx: proc";
  { m; proc; cpu = m.cpus.(proc); ops = 0; yield_mask = (1 lsl yield_log) - 1 }

let proc ctx = ctx.proc

let nprocs ctx = ctx.m.topo.Topology.nprocs

let cluster ctx = ctx.m.topo.Topology.cluster

let ssmp ctx = Topology.ssmp_of_proc ctx.m.topo ctx.proc

let cycles ctx = ctx.cpu.Cpu.clock

let compute ctx n = Cpu.advance ctx.cpu User n

let idle_until ctx t =
  Mgs_engine.Fiber.sleep_until ctx.m.sim t;
  Cpu.catch_up_to ctx.cpu User (Sim.now ctx.m.sim)

let release ctx =
  match ctx.m.protocol with
  | Protocol_mgs -> Proto.release_all ctx.m ~proc:ctx.proc
  | Protocol_hlrc -> Proto_hlrc.release_all ctx.m ~proc:ctx.proc
  | Protocol_ivy -> ()

(* Single-SSMP (C = P) accesses bypass the software protocol entirely —
   the paper's 32-processor runs substitute null MGS calls — paying only
   translation, a one-time mapping fill, and hardware coherence. *)
let access_single ctx ~write ~vpn ~addr =
  let m = ctx.m in
  let c = m.costs in
  let se = get_sentry m vpn in
  (match Tlb.lookup m.tlbs.(ctx.proc) ~vpn with
  | Some _ -> ()
  | None ->
    Cpu.advance ctx.cpu User (c.svm.table_lookup + c.svm.tlb_write);
    Tlb.fill m.tlbs.(ctx.proc) ~vpn ~mode:Tlb.Rw);
  let frame_owner = local_idx m se.s_home_proc in
  let kind = if write then Coherence.Write else Coherence.Read in
  let stall = Coherence.access m.caches.(0) ~proc:ctx.proc ~addr ~frame_owner ~kind in
  Cpu.advance ctx.cpu User stall;
  se.s_master

(* Multi-SSMP accesses: TLB hit or MGS fault, then hardware coherence
   against the SSMP's copy. *)
let access_multi ctx ~write ~vpn ~addr =
  let m = ctx.m in
  let s = Topology.ssmp_of_proc m.topo ctx.proc in
  (match Tlb.lookup m.tlbs.(ctx.proc) ~vpn with
  | Some Tlb.Rw -> ()
  | Some Tlb.Ro when not write -> ()
  | Some Tlb.Ro | None -> (
    match m.protocol with
    | Protocol_mgs -> Proto.fault m ~proc:ctx.proc ~vpn ~write
    | Protocol_ivy -> Proto_ivy.fault m ~proc:ctx.proc ~vpn ~write
    | Protocol_hlrc -> Proto_hlrc.fault m ~proc:ctx.proc ~vpn ~write));
  let ce = get_centry m s vpn in
  let data = match ce.cdata with Some d -> d | None -> assert false in
  (* Maintain the twin's dirty-word bitmap on every store, so the diff
     at release time scans only the touched words. *)
  (if write then
     match ce.ctwin with
     | Some t -> Pagedata.mark t (Geom.offset_of_addr m.geom addr)
     | None -> ());
  let kind = if write then Coherence.Write else Coherence.Read in
  let lidx = local_idx m ctx.proc in
  let stall = Coherence.access m.caches.(s) ~proc:lidx ~addr ~frame_owner:ce.frame_owner ~kind in
  Cpu.advance ctx.cpu User stall;
  data

let access ctx ~write ~kind addr =
  let m = ctx.m in
  if addr < 0 || addr >= Allocator.words_allocated m.heap then
    invalid_arg (Printf.sprintf "Api: address %d outside the shared heap" addr);
  Cpu.sync_busy ctx.cpu;
  ctx.ops <- ctx.ops + 1;
  if ctx.ops land ctx.yield_mask = 0 then
    Mgs_engine.Fiber.sleep_until m.sim ctx.cpu.Cpu.clock;
  Cpu.advance ctx.cpu User (Mgs_svm.Translate.cost m.costs kind);
  let vpn = Geom.vpn_of_addr m.geom addr in
  let page =
    if Topology.single_ssmp m.topo then access_single ctx ~write ~vpn ~addr
    else access_multi ctx ~write ~vpn ~addr
  in
  (page, Geom.offset_of_addr m.geom addr)

let read ctx ?(kind = Mgs_svm.Translate.Array) addr =
  let page, off = access ctx ~write:false ~kind addr in
  let v = page.(off) in
  (match ctx.m.shadow with
  | Some h ->
    let expect = Option.value ~default:0.0 (Hashtbl.find_opt h addr) in
    if Int64.bits_of_float v <> Int64.bits_of_float expect then
      Printf.eprintf "SHADOW t=%d proc=%d addr=%d vpn=%d read=%.17g expect=%.17g
%!"
        (Sim.now ctx.m.sim) ctx.proc addr
        (Geom.vpn_of_addr ctx.m.geom addr)
        v expect
  | None -> ());
  v

let write ctx ?(kind = Mgs_svm.Translate.Array) addr v =
  let page, off = access ctx ~write:true ~kind addr in
  (match ctx.m.shadow with Some h -> Hashtbl.replace h addr v | None -> ());
  page.(off) <- v

let read_int ctx ?kind addr = int_of_float (read ctx ?kind addr)

let write_int ctx ?kind addr v = write ctx ?kind addr (float_of_int v)
