(** Cluster-size sweeps and the paper's DSSMP performance framework
    (section 2.4): run a workload at a fixed processor count P while the
    cluster size C ranges over powers of two, and derive the breakup
    penalty, multigrain potential, and multigrain curvature. *)

type workload = {
  name : string;
  prepare : Mgs.Machine.t -> (Mgs.Api.ctx -> unit) * (Mgs.Machine.t -> unit);
      (** Allocate and initialize shared data on a fresh machine; return
          the SPMD body and a post-run verifier (which may raise). *)
}

type point = {
  cluster : int;
  report : Mgs.Report.t;
  lock_hit_ratio : float;
}

val clusters_of : int -> int list
(** Powers of two from 1 to P. *)

val run_point :
  ?page_words:int ->
  ?costs:Mgs_machine.Costs.t ->
  ?lan_latency:int ->
  ?verify:bool ->
  ?check:bool ->
  nprocs:int ->
  cluster:int ->
  workload ->
  point
(** One configuration.  Default LAN latency 1000 cycles (section 5.2.1),
    1 KB pages; [verify] (default true) runs the workload's checker and
    {!Mgs.Machine.assert_quiescent}; [check] (default true) runs the
    online protocol invariant checker ({!Mgs.Invariant}) and fails on
    any violation.
    @raise Failure on a workload-verifier or invariant failure. *)

val sweep :
  ?page_words:int ->
  ?costs:Mgs_machine.Costs.t ->
  ?lan_latency:int ->
  ?verify:bool ->
  ?check:bool ->
  ?clusters:int list ->
  ?jobs:int ->
  nprocs:int ->
  workload ->
  point list
(** All cluster sizes (ascending).  [jobs] (default 1) runs up to that
    many points concurrently on separate domains ({!Mgs_util.Dpool});
    results are identical to the sequential sweep regardless of
    [jobs]. *)

(** Framework metrics over a sweep (which must include C = 1 .. P). *)

val runtime_of : point list -> int -> int
(** Runtime at a given cluster size.
    @raise Invalid_argument naming the missing cluster size if the sweep
    holds no point for it. *)

val breakup_penalty : point list -> float
(** [(T(P/2) - T(P)) / T(P)] — e.g. 3.22 for Water's 322%. *)

val multigrain_potential : point list -> float
(** [(T(1) - T(P/2)) / T(P/2)] — how much faster the application runs
    when each node is a (P/2)-way multiprocessor rather than a
    uniprocessor ("applications execute up to 85% faster ..."), e.g.
    0.67 for Water, 0.85 for Barnes-Hut. *)

val multigrain_curvature : point list -> float
(** Mean signed deviation of the runtime curve from the chord joining
    (log C = 0, T(1)) and (log C = log P/2, T(P/2)), normalized by T(1):
    positive means the curve lies below the chord (convex — most of the
    potential realized at small clusters), negative concave. *)

val curvature_class : point list -> string
(** ["convex"], ["concave"], or ["flat"]. *)

(** Pure variants over [(cluster, runtime)] curves, used by the tests: *)

val runtime_of_rt : (int * int) list -> int -> int

val breakup_penalty_rt : (int * int) list -> float

val multigrain_potential_rt : (int * int) list -> float

val multigrain_curvature_rt : (int * int) list -> float

val curvature_class_rt : (int * int) list -> string
