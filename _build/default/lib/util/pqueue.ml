type 'a node =
  | Empty
  | Node of { prio : int; seq : int; value : 'a; mutable children : 'a node list }

type 'a t = { mutable root : 'a node; mutable size : int }

let create () = { root = Empty; size = 0 }

let is_empty q = q.size = 0

let length q = q.size

let less a b =
  match (a, b) with
  | Node a, Node b -> a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)
  | _ -> invalid_arg "Pqueue.less"

let meld a b =
  match (a, b) with
  | Empty, n | n, Empty -> n
  | (Node na as a'), (Node nb as b') ->
    if less a' b' then begin
      na.children <- b' :: na.children;
      a'
    end
    else begin
      nb.children <- a' :: nb.children;
      b'
    end

let push q ~prio ~seq value =
  q.root <- meld q.root (Node { prio; seq; value; children = [] });
  q.size <- q.size + 1

let min_prio q = match q.root with Empty -> None | Node n -> Some n.prio

(* Two-pass pairing: meld children pairwise left to right, then meld the
   resulting list right to left. *)
let rec merge_pairs = function
  | [] -> Empty
  | [ n ] -> n
  | a :: b :: rest -> meld (meld a b) (merge_pairs rest)

let pop q =
  match q.root with
  | Empty -> None
  | Node n ->
    q.root <- merge_pairs n.children;
    q.size <- q.size - 1;
    Some (n.prio, n.seq, n.value)

let clear q =
  q.root <- Empty;
  q.size <- 0
