(** Water: N-body molecular dynamics with O(N^2) pairwise force
    interactions (SPLASH; paper section 5.2).

    The molecule array is distributed in contiguous blocks to
    processors; each processor traverses the array linearly starting
    from its own portion (each molecule interacts with the next N/2
    molecules cyclically, covering every pair once).  Pair interactions
    write {e both} molecules' force accumulators under per-molecule
    locks whose token homes follow the owner's SSMP — the access
    pattern that gives Water its multigrain locality (Figure 9:
    breakup penalty 322%, multigrain potential 67%). *)

type params = {
  nmol : int;  (** number of molecules (multiple of 2) *)
  iters : int;
  force_cycles : int;  (** modelled cost of one pair interaction *)
  seed : int;
  lock : string;  (** molecule/statistics lock algorithm, a [Mgs_sync.Locks] name *)
}

val default : params
(** 128 molecules, 2 iterations — scaled from the paper's 343 x 2. *)

val tiny : params

val paper : params
(** The paper's 343-molecule problem (rounded to 344). *)

val problem_size : params -> string

val workload : params -> Mgs_harness.Sweep.workload
(** Verifies final positions against a sequential reference within
    5e-5 relative (force accumulation order varies with the schedule,
    and the nonlinear dynamics amplify the rounding differences). *)

(** Shared with {!Water_kernel} and the tests: *)

val init_positions : params -> float array
(** Deterministic initial molecule positions (3 words each). *)

val pair_force :
  float -> float -> float -> float -> float -> float -> float * float * float
(** [pair_force xi yi zi xj yj zj] is the (bounded, smooth) force on
    molecule i from molecule j; antisymmetric exactly. *)

val pairs_of : params -> int -> int list
(** The partners molecule [i] interacts with (the next nmol/2
    cyclically; every unordered pair appears exactly once). *)
