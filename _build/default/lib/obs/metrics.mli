(** Typed metrics registry + simulated-clock sampler.

    Counters, gauges, and histograms register under a name plus
    optional labels (e.g. SSMP, engine).  Scalar series — counters,
    gauges, and caller-supplied probes reading live machine state —
    are snapshotted every [interval] simulated cycles into a bounded
    time-series (a ring: the most recent window survives, older
    samples are counted as dropped).  Histograms are not sampled; they
    export as end-of-run summaries.

    The sampler is driven externally ({!tick} from the event trace's
    subscriber list, a final {!sample} when the run ends) because a
    self-rescheduling simulator event would keep the run alive. *)

type t

type counter

type gauge

val create : ?interval:int -> ?max_samples:int -> unit -> t
(** Defaults: sample every 10000 cycles, keep 4096 samples. *)

val interval : t -> int

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Register (or fetch) a monotone counter.  The full series name is
    [name{k=v,...}] with labels sorted.
    @raise Invalid_argument after sampling has started. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val gauge : t -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val histogram : t -> ?labels:(string * string) list -> string -> Hist.t

val observe : Hist.t -> int -> unit

val probe : t -> ?labels:(string * string) list -> string -> (unit -> float) -> unit
(** Register a live-state probe polled at each sample. *)

val columns : t -> string list
(** Series names in registration order (the CSV/JSON column order). *)

val tick : t -> now:int -> unit
(** Sample iff at least [interval] cycles passed since the last sample. *)

val sample : t -> now:int -> unit
(** Unconditionally snapshot every series at simulated time [now].
    The first sample freezes the column set. *)

val samples : t -> (int * float array) list
(** Retained samples, oldest first, values in {!columns} order. *)

val sample_count : t -> int

val dropped : t -> int
(** Samples evicted by the ring bound. *)

val csv : t -> string
(** [time,series...] header plus one row per sample. *)

val json : t -> string
(** Schema ["mgs-metrics-1"]: column names, sample rows, and histogram
    summaries. *)

val write_json : t -> out_channel -> unit

val write_csv : t -> out_channel -> unit
