(* Typed metrics registry + simulated-clock sampler.

   Counters, gauges, and histograms register under a name plus optional
   labels (SSMP, engine, ...).  A sampler snapshots every registered
   scalar series — plus caller-supplied probes reading live machine
   state (queue depth, DUQ lengths, pages per protocol state, messages
   in flight) — every [interval] simulated cycles into a bounded
   time-series ring: a run of any length cannot grow memory without
   bound, and the most recent window is kept.

   The sampler has no event source of its own (a self-rescheduling
   simulator event would keep the run alive forever); the machine
   drives [tick] from the event trace's subscriber list and forces a
   final [sample] when the run ends. *)

type counter = { mutable c : int }

type gauge = { mutable g : float }

type series = { s_name : string; s_read : unit -> float }

type t = {
  interval : int;
  mutable series : series list; (* reverse registration order *)
  mutable sealed : bool; (* set at first sample: columns are frozen *)
  by_name : (string, unit) Hashtbl.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
  samples : (int * float array) Ring.t;
  mutable last_sample : int;
}

let default_interval = 10_000

let create ?(interval = default_interval) ?(max_samples = 4096) () =
  if interval <= 0 then invalid_arg "Metrics.create: interval";
  {
    interval;
    series = [];
    sealed = false;
    by_name = Hashtbl.create 32;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    hists = Hashtbl.create 32;
    samples = Ring.create ~capacity:max_samples;
    last_sample = min_int;
  }

let interval t = t.interval

(* "name{k=v,k2=v2}": labels are sorted so the same set always yields
   the same series name. *)
let full_name name labels =
  match labels with
  | [] -> name
  | l ->
    let l = List.sort compare l in
    name ^ "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l) ^ "}"

let add_series t name read =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Metrics: duplicate series %s" name);
  if t.sealed then
    invalid_arg (Printf.sprintf "Metrics: cannot register %s after sampling started" name);
  Hashtbl.replace t.by_name name ();
  t.series <- { s_name = name; s_read = read } :: t.series

let counter t ?(labels = []) name =
  let key = full_name name labels in
  match Hashtbl.find_opt t.counters key with
  | Some c -> c
  | None ->
    let c = { c = 0 } in
    add_series t key (fun () -> float_of_int c.c);
    Hashtbl.replace t.counters key c;
    c

let incr ?(by = 1) c = c.c <- c.c + by

let counter_value c = c.c

let gauge t ?(labels = []) name =
  let key = full_name name labels in
  match Hashtbl.find_opt t.gauges key with
  | Some g -> g
  | None ->
    let g = { g = 0. } in
    add_series t key (fun () -> g.g);
    Hashtbl.replace t.gauges key g;
    g

let set g v = g.g <- v

let gauge_value g = g.g

let histogram t ?(labels = []) name =
  let key = full_name name labels in
  match Hashtbl.find_opt t.hists key with
  | Some h -> h
  | None ->
    let h = Hist.create () in
    Hashtbl.replace t.hists key h;
    h

let observe h v = Hist.add h v

let probe t ?(labels = []) name read = add_series t (full_name name labels) read

let columns t = List.rev_map (fun s -> s.s_name) t.series

let sample t ~now =
  t.sealed <- true;
  t.last_sample <- now;
  let cols = List.rev t.series in
  let row = Array.of_list (List.map (fun s -> s.s_read ()) cols) in
  Ring.push t.samples (now, row)

let tick t ~now = if now - t.last_sample >= t.interval then sample t ~now

let samples t = Ring.to_list t.samples

let sample_count t = Ring.length t.samples

let dropped t = Ring.dropped t.samples

(* --- export ---------------------------------------------------------- *)

(* %.17g round-trips any float but prints integers (the common case:
   counts) without noise. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time";
  List.iter
    (fun name ->
      Buffer.add_char buf ',';
      Buffer.add_string buf name)
    (columns t);
  Buffer.add_char buf '\n';
  Ring.iter
    (fun (time, row) ->
      Buffer.add_string buf (string_of_int time);
      Array.iter
        (fun v ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (float_str v))
        row;
      Buffer.add_char buf '\n')
    t.samples;
  Buffer.contents buf

let json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":\"mgs-metrics-1\",\"interval\":%d,\"dropped\":%d,\"series\":["
       t.interval (dropped t));
  let first = ref true in
  List.iter
    (fun name ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (Json.escape name);
      Buffer.add_char buf '"')
    (columns t);
  Buffer.add_string buf "],\"samples\":[";
  let first = ref true in
  Ring.iter
    (fun (time, row) ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf "\n[";
      Buffer.add_string buf (string_of_int time);
      Array.iter
        (fun v ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (float_str v))
        row;
      Buffer.add_char buf ']')
    t.samples;
  Buffer.add_string buf "\n],\"histograms\":[";
  let hists =
    List.sort compare (Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists [])
  in
  let first = ref true in
  List.iter
    (fun (name, h) ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n{\"name\":\"%s\",\"count\":%d,\"mean\":%s,\"max\":%d}"
           (Json.escape name) (Hist.count h)
           (float_str (Hist.mean h))
           (Hist.max_value h)))
    hists;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_json t oc = output_string oc (json t)

let write_csv t oc = output_string oc (csv t)
