open State

type config = {
  nprocs : int;
  cluster : int;
  page_words : int;
  line_words : int;
  costs : Costs.t;
  event_limit : int;
  features : State.features;
  protocol : State.protocol;
  shadow : bool;
  tlb_entries : int option;
  par_jobs : int;
      (* 0 = sequential event engine (default, the oracle); >= 1 =
         sharded engine, one shard per SSMP, run on [par_jobs] domains
         (clamped to the SSMP count).  [1] exercises the sharded data
         path single-threaded; results are byte-identical either way. *)
  adapt : bool;
      (* adaptive per-page coherence: online sharing-pattern
         classification, regime switching and home migration.  Off by
         default; off is byte-identical to a build without the layer. *)
}

let config ?(page_words = 256) ?(line_words = 4) ?(costs = Costs.default) ?lan_latency
    ?(event_limit = 500_000_000) ?(shadow = Sys.getenv_opt "MGS_SHADOW" = Some "1")
    ?(features = State.default_features) ?(protocol = State.Protocol_mgs) ?tlb_entries
    ?(par_jobs = 0) ?(adapt = false) ~nprocs ~cluster () =
  let costs =
    match lan_latency with None -> costs | Some d -> Costs.with_lan_latency costs d
  in
  if par_jobs < 0 then invalid_arg "Machine.config: par_jobs < 0";
  if par_jobs > 0 && costs.Costs.lan.Costs.latency < 1 then
    invalid_arg "Machine.config: the sharded engine needs lan latency >= 1 for lookahead";
  if adapt && protocol = State.Protocol_ivy then
    invalid_arg
      "Machine.config: protocol \"ivy\" supports no adaptive coherence regime \
       (its single-writer pages have no twins to skip for the single-writer \
       regime and every read already invalidates for the invalidate-on-read \
       regime); --adapt requires mgs or hlrc";
  {
    nprocs;
    cluster;
    page_words;
    line_words;
    costs;
    event_limit;
    features;
    protocol;
    shadow;
    tlb_entries;
    par_jobs;
    adapt;
  }

type t = State.t

let create cfg =
  let sim = Sim.create () in
  let geom = Geom.create ~page_words:cfg.page_words ~line_words:cfg.line_words () in
  let topo = Topology.create ~nprocs:cfg.nprocs ~cluster:cfg.cluster in
  (* declare the shard layout even on the sequential engine: per-shard
     observability cells and engine counters attribute events to the
     same SSMP the sharded engine would run them on *)
  Sim.set_topology sim ~nshards:topo.Topology.nssmps;
  (* shard per SSMP; the fixed inter-SSMP LAN latency is the
     conservative lookahead window (every cross-SSMP delivery pays at
     least that much wire time, so events a shard runs inside a window
     cannot affect another shard within it) *)
  if cfg.par_jobs > 0 then
    Sim.make_sharded sim ~nshards:topo.Topology.nssmps
      ~lookahead:cfg.costs.Costs.lan.Costs.latency;
  let cpus = Array.init cfg.nprocs Cpu.create in
  let caches =
    Array.init topo.Topology.nssmps (fun _ ->
        Coherence.create cfg.costs geom ~cluster:cfg.cluster)
  in
  let lan = Lan.create sim cfg.costs ~nssmps:topo.Topology.nssmps in
  let am = Am.create sim cfg.costs topo ~lan ~cpus in
  let clients =
    Array.init topo.Topology.nssmps (fun s ->
        { cl_id = s; cl_pages = Hashtbl.create 256; k_map = Hashtbl.create 256 })
  in
  let duqs =
    Array.init cfg.nprocs (fun _ ->
        { duq_set = Hashtbl.create 64; duq_q = Queue.create (); psync = Hashtbl.create 64 })
  in
  let m =
    {
      sim;
      costs = cfg.costs;
      features = cfg.features;
      protocol = cfg.protocol;
      geom;
      topo;
      heap = Allocator.create geom ~nprocs:cfg.nprocs;
      cpus;
      caches;
      lan;
      am;
      clients;
      duqs;
      servers = Hashtbl.create 1024;
      tlbs = Array.init cfg.nprocs (fun _ -> Tlb.create ?capacity:cfg.tlb_entries ());
      pstats = Pstats.create ();
      pstats_extra = Array.init topo.Topology.nssmps (fun _ -> Pstats.create ());
      sync_counters = { lock_acquires = 0; lock_hits = 0; barrier_episodes = 0 };
      sync_extra =
        Array.init topo.Topology.nssmps (fun _ ->
            { lock_acquires = 0; lock_hits = 0; barrier_episodes = 0 });
      sync_hooks = [];
      rel_resume = Array.make cfg.nprocs None;
      fibers = [];
      event_limit = cfg.event_limit;
      par_jobs = cfg.par_jobs;
      shadow = (if cfg.shadow then Some (Hashtbl.create 4096) else None);
      shadow_errors = 0;
      obs = None;
      metrics = None;
      adapt =
        (if cfg.adapt then
           Some (Mgs_cache.Adapt.create ~nssmps:topo.Topology.nssmps)
         else None);
      gen = Atomic.make 0;
    }
  in
  m

let sim (m : t) = m.sim

let enable_trace ?capacity (m : t) =
  match m.obs with
  | Some tr -> tr
  | None ->
    (* one trace cell per SSMP: each engine shard emits into its own
       ring/span store and exports merge on genealogy stamps, so the
       trace no longer forces the sharded engine onto one domain *)
    let cells = m.topo.Topology.nssmps in
    let tr = Mgs_obs.Trace.create ?capacity ~cells () in
    if cells > 1 then Sim.enable_stamps m.sim;
    m.obs <- Some tr;
    Am.set_obs m.am (Some tr);
    Lan.set_obs m.lan (Some tr);
    tr

let trace (m : t) = m.obs

(* The sampler rides the engine's per-event hook: before each event
   runs, {!Mgs_obs.Metrics.on_event} snapshots the executing shard's
   cell at every sampling boundary it crossed.  (A self-rescheduling
   simulator event would keep the run alive forever, so the event
   stream is the clock.)  Every probe is per-cell and reads only state
   the sampling shard owns — its SSMP's pages, processors, parked
   fibers — so sampling is race-free under the parallel engine and the
   merged series is byte-identical across job counts.  The final
   partial interval is captured by {!run}. *)
let enable_metrics ?interval ?max_samples (m : t) =
  match m.metrics with
  | Some mt -> mt
  | None ->
    let tr = enable_trace m in
    let cells = m.topo.Topology.nssmps in
    let mt = Mgs_obs.Metrics.create ?interval ?max_samples ~cells () in
    let fi = float_of_int in
    (* per-shard engine self-profiling; both are deterministic (the
       executed-event and cross-shard-send prefixes at a sampling
       boundary are pure functions of the simulated program) *)
    Mgs_obs.Metrics.probe_cell mt "engine.executed" (fun c ->
        fi (Sim.shard_executed m.sim c));
    Mgs_obs.Metrics.probe_cell mt "engine.xsends" (fun c ->
        fi (Sim.shard_xsends m.sim c));
    Mgs_obs.Metrics.probe_cell mt "am.in_flight" (fun c -> fi (Am.in_flight_cell m.am c));
    let fold_procs_of c f =
      let lo = c * m.topo.Topology.cluster in
      let acc = ref 0 in
      for p = lo to lo + m.topo.Topology.cluster - 1 do
        acc := !acc + f p
      done;
      !acc
    in
    Mgs_obs.Metrics.probe_cell mt "duq.entries" (fun c ->
        fi (fold_procs_of c (fun p -> Hashtbl.length m.duqs.(p).duq_set)));
    Mgs_obs.Metrics.probe_cell mt "duq.psync" (fun c ->
        fi (fold_procs_of c (fun p -> Hashtbl.length m.duqs.(p).psync)));
    let sync_cell c = if c = 0 then m.sync_counters else m.sync_extra.(c) in
    Mgs_obs.Metrics.probe_cell mt "sync.lock_acquires" (fun c ->
        fi (sync_cell c).lock_acquires);
    Mgs_obs.Metrics.probe_cell mt "sync.lock_hits" (fun c -> fi (sync_cell c).lock_hits);
    Mgs_obs.Metrics.probe_cell mt "sync.barrier_episodes" (fun c ->
        fi (sync_cell c).barrier_episodes);
    (* waiters parked in registered synchronization objects, attributed
       to the waiting processor's SSMP; the hook list grows as locks
       are created, so the probe re-reads it *)
    Mgs_obs.Metrics.probe_cell mt "sync.lock_waiters" (fun c ->
        fi (List.fold_left (fun acc h -> acc + h.sh_waiters_cell c) 0 m.sync_hooks));
    let count_pages st c =
      let cl = m.clients.(c) in
      fi (Hashtbl.fold (fun _ ce n -> if ce.pstate = st then n + 1 else n) cl.cl_pages 0)
    in
    Mgs_obs.Metrics.probe_cell mt "pages.inv" (count_pages P_inv);
    Mgs_obs.Metrics.probe_cell mt "pages.read" (count_pages P_read);
    Mgs_obs.Metrics.probe_cell mt "pages.write" (count_pages P_write);
    Mgs_obs.Metrics.probe_cell mt "pages.busy" (count_pages P_busy);
    (* a server entry belongs to the home processor's SSMP — only that
       shard's handlers mutate it *)
    Mgs_obs.Metrics.probe_cell mt "servers.rel_in_prog" (fun c ->
        fi
          (Hashtbl.fold
             (fun vpn se n ->
               if
                 se.s_state = S_rel
                 && Topology.ssmp_of_proc m.topo (home_proc_of_vpn m vpn) = c
               then n + 1
               else n)
             m.servers 0));
    Mgs_obs.Metrics.probe_cell mt "spans.open" (fun c ->
        fi (Mgs_obs.Span.open_count_cell (Mgs_obs.Trace.spans tr) c));
    (* adaptive-coherence gauges, registered only under --adapt so a
       static run's metrics CSV keeps its exact pre-adapt column set.
       Each reads the sampling shard's own pstats cell — per-shard
       commutative sums, so the merged series is byte-identical across
       job counts (no probe walks sentries: after a cross-shard home
       migration their policy fields belong to another shard). *)
    (match m.adapt with
    | None -> ()
    | Some _ ->
      let pcell c = if c = 0 then m.pstats else m.pstats_extra.(c) in
      Mgs_obs.Metrics.probe_cell mt "adapt.reclass" (fun c ->
          fi (pcell c).Pstats.adapt_reclass);
      Mgs_obs.Metrics.probe_cell mt "adapt.migs" (fun c -> fi (pcell c).Pstats.adapt_migs);
      Mgs_obs.Metrics.probe_cell mt "adapt.fwds" (fun c -> fi (pcell c).Pstats.adapt_fwds);
      Mgs_obs.Metrics.probe_cell mt "adapt.yields" (fun c ->
          fi (pcell c).Pstats.adapt_yields));
    Sim.set_on_event m.sim
      (Some (fun ~shard ~now -> Mgs_obs.Metrics.on_event mt ~cell:shard ~now));
    m.metrics <- Some mt;
    mt

let metrics (m : t) = m.metrics

(* Engine self-profiling series that are NOT deterministic — outbox
   merges, window stalls, barrier wait and per-shard wall time depend on
   domain scheduling — so they only register on request: a metrics CSV
   without them stays byte-identical across job counts. *)
let enable_engine_stats (m : t) =
  let mt = enable_metrics m in
  let fi = float_of_int in
  Mgs_obs.Metrics.probe mt "engine.windows" (fun () -> fi (Sim.windows m.sim));
  Mgs_obs.Metrics.probe mt "engine.barrier_wall" (fun () -> Sim.barrier_wall m.sim);
  Mgs_obs.Metrics.probe_cell mt "engine.merges" (fun c ->
      fi (Sim.shard_stats m.sim).(c).Sim.st_merges);
  Mgs_obs.Metrics.probe_cell mt "engine.stalls" (fun c ->
      fi (Sim.shard_stats m.sim).(c).Sim.st_stalls);
  mt

let set_faults (m : t) ?(seed = 42) spec =
  if Mgs_net.Fault.is_zero spec then Lan.set_fault_plan m.lan None
  else begin
    let plan = Mgs_net.Fault.make spec ~seed ~nssmps:m.topo.Topology.nssmps in
    Lan.set_fault_plan m.lan (Some plan);
    (* transport gauges, registered once faults exist and metrics are on *)
    match m.metrics with
    | Some mt ->
      let fi = float_of_int in
      Mgs_obs.Metrics.probe mt "net.retransmits" (fun () -> fi (Lan.stats m.lan).Lan.retransmits);
      Mgs_obs.Metrics.probe mt "net.dup_drops" (fun () -> fi (Lan.stats m.lan).Lan.dup_drops);
      Mgs_obs.Metrics.probe mt "net.unacked" (fun () -> fi (Lan.unacked m.lan))
    | None -> ()
  end

let clear_faults (m : t) = Lan.set_fault_plan m.lan None

let fault_plan (m : t) = Lan.fault_plan m.lan

let enable_checker ?capacity (m : t) = Invariant.attach m (enable_trace ?capacity m)

let reset_stats (m : t) =
  bump_gen m;
  Pstats.reset m.pstats;
  Array.iter Pstats.reset m.pstats_extra;
  Lan.reset m.lan;
  Array.iter Coherence.reset_stats m.caches;
  Am.reset_counts m.am;
  m.sync_counters.lock_acquires <- 0;
  m.sync_counters.lock_hits <- 0;
  m.sync_counters.barrier_episodes <- 0;
  Array.iter
    (fun s ->
      s.lock_acquires <- 0;
      s.lock_hits <- 0;
      s.barrier_episodes <- 0)
    m.sync_extra;
  (* registered synchronization objects (registry locks, condvars):
     their per-instance stats and any dead queued waiters go too, so a
     measured phase cannot inherit the warmup's handoff history or a
     parked fiber from an abandoned run *)
  List.iter (fun h -> h.sh_reset ()) m.sync_hooks;
  (* adaptive classifier windows and streaks are statistics and reset
     with the phase; regimes, home locations, views and forwarding
     tables are live protocol state (an untwinned copy granted under
     the single-writer regime must keep being treated as such, and a
     migrated page's requests must keep finding its home) and survive *)
  (match m.adapt with
  | Some _ ->
    Hashtbl.iter
      (fun _ se ->
        match se.s_ad with
        | Some p -> Mgs_cache.Adapt.reset_page p
        | None -> ())
      m.servers
  | None -> ());
  m.shadow_errors <- 0

let shadow_mismatches (m : t) = m.shadow_errors
let topo (m : t) = m.topo
let costs (m : t) = m.costs
let geom (m : t) = m.geom

let alloc (m : t) ~words ~home =
  let addr = Allocator.alloc m.heap ~words ~home in
  (* Materialize the server entry of every page up front: allocation is
     host-side (apps build their working set in [prepare], before
     {!run}), so with eager creation the [servers] table is never
     mutated during a run — which is what lets concurrent shards read
     it without locks.  [get_sentry] zero-fills the master page, same
     as lazy first touch did. *)
  let vpn0 = Geom.vpn_of_addr m.geom addr in
  let vpn1 = Geom.vpn_of_addr m.geom (addr + words - 1) in
  for vpn = vpn0 to vpn1 do
    ignore (get_sentry m vpn)
  done;
  addr

let check_addr (m : t) addr =
  if addr < 0 || addr >= Allocator.words_allocated m.heap then
    invalid_arg (Printf.sprintf "Machine: address %d outside the shared heap" addr)

let poke (m : t) addr v =
  check_addr m addr;
  (match m.shadow with Some h -> Hashtbl.replace h addr v | None -> ());
  let se = get_sentry m (Geom.vpn_of_addr m.geom addr) in
  se.s_master.(Geom.offset_of_addr m.geom addr) <- v

let peek (m : t) addr =
  check_addr m addr;
  let vpn = Geom.vpn_of_addr m.geom addr in
  let se = get_sentry m vpn in
  let off = Geom.offset_of_addr m.geom addr in
  (* under the single-writer baseline the owner's copy supersedes the
     master until it is written back *)
  match (m.protocol, Bitset.choose se.s_write_dir) with
  | Protocol_ivy, Some owner -> (
    let ce = get_centry m owner vpn in
    match ce.cdata with Some d -> d.(off) | None -> se.s_master.(off))
  | _ -> se.s_master.(off)

let run (m : t) body =
  let limit = m.event_limit in
  let t0 = Unix.gettimeofday () in
  (if Sim.sharded m.sim then begin
     (* trace, spans, and metrics are per-shard (each domain writes only
        its own cell) and no longer constrain the engine.  What still
        forces a single domain: the shadow heap, the AM recorder, and
        trace subscribers (the online invariant checker) — each is one
        shared mutable structure written from every shard.  Results are
        identical either way — only wall time changes — but the
        reduction is loud so a slow "parallel" run is explicable. *)
     let force what =
       Printf.eprintf
         "mgs: %s is a single-domain subsystem; parallel engine reduced from %d \
          domains to 1 (results are unchanged)\n\
          %!"
         what (max 1 m.par_jobs)
     in
     let eff =
       if m.par_jobs >= 2 && m.shadow <> None then begin
         force "shadow heap checking";
         1
       end
       else if m.par_jobs >= 2 && Am.recording m.am then begin
         force "message recording (trace_messages)";
         1
       end
       else if
         m.par_jobs >= 2
         && (match m.obs with Some tr -> Mgs_obs.Trace.has_subscribers tr | None -> false)
       then begin
         force "the online invariant checker (trace subscribers)";
         1
       end
       else max 1 m.par_jobs
     in
     Sim.set_jobs m.sim eff
   end);
  let fibers =
    List.init m.topo.Topology.nprocs (fun p ->
        (* always pin the fiber to its processor's SSMP: the sequential
           engine uses the shard purely as an attribution tag, so
           per-shard observability cells fill identically in both
           modes *)
        let shard = Topology.ssmp_of_proc m.topo p in
        Mgs_engine.Fiber.spawn m.sim ~shard ~at:0 ~name:(Printf.sprintf "proc%d" p)
          (fun () ->
            let ctx = Api.make_ctx m ~proc:p in
            body ctx;
            Cpu.finish m.cpus.(p)))
  in
  m.fibers <- fibers;
  let outcome =
    match Sim.run m.sim ~limit () with
    | _ ->
      Mgs_engine.Fiber.check_all_completed fibers;
      Report.Completed
    | exception Lan.Net_partition p ->
      (* a typed outcome, not a hang: fibers are abandoned where they
         stand and the report covers progress up to the partition *)
      Report.Partitioned
        {
          src_ssmp = p.Lan.part_src_ssmp;
          dst_ssmp = p.Lan.part_dst_ssmp;
          tag = p.Lan.part_tag;
          retries = p.Lan.part_retries;
        }
  in
  (* capture the final partial sampling interval (per-cell probes must
     read the still-sharded counters, so this precedes the collapse) *)
  (match m.metrics with
  | Some mt -> Mgs_obs.Metrics.sample mt ~now:(Sim.now m.sim)
  | None -> ());
  (* collapse the per-shard counter cells into the base cell: protocol
     counters are commutative sums, and post-run readers (tests, REPL
     poking at [m.pstats]) expect totals regardless of engine mode *)
  Array.iteri
    (fun i p ->
      if i > 0 then begin
        Pstats.add_into m.pstats p;
        Pstats.reset p
      end)
    m.pstats_extra;
  Array.iteri
    (fun i s ->
      if i > 0 then begin
        m.sync_counters.lock_acquires <- m.sync_counters.lock_acquires + s.lock_acquires;
        m.sync_counters.lock_hits <- m.sync_counters.lock_hits + s.lock_hits;
        m.sync_counters.barrier_episodes <-
          m.sync_counters.barrier_episodes + s.barrier_episodes;
        s.lock_acquires <- 0;
        s.lock_hits <- 0;
        s.barrier_episodes <- 0
      end)
    m.sync_extra;
  Report.of_machine ~wall_seconds:(Unix.gettimeofday () -. t0) ~outcome m

let trace_messages (m : t) sink =
  Am.set_recorder m.am
    (Some
       (fun time (env : Mgs_net.Envelope.t) ->
         sink (Printf.sprintf "%d %s %d %d %d" time env.tag env.src env.dst env.words)))

let assert_quiescent (m : t) =
  Array.iteri
    (fun p d ->
      if Hashtbl.length d.duq_set <> 0 then
        failwith (Printf.sprintf "proc %d: delayed update queue not empty" p);
      if Hashtbl.length d.psync <> 0 then
        failwith (Printf.sprintf "proc %d: pending-sync set not empty" p))
    m.duqs;
  Array.iter
    (fun cl ->
      Hashtbl.iter
        (fun vpn ce ->
          if Mlock.held ce.mlock then
            failwith (Printf.sprintf "SSMP %d page %d: mapping lock still held" cl.cl_id vpn);
          if ce.pstate = P_busy then
            failwith (Printf.sprintf "SSMP %d page %d: still BUSY" cl.cl_id vpn))
        cl.cl_pages)
    m.clients;
  Hashtbl.iter
    (fun vpn se ->
      if se.s_state = S_rel then
        failwith (Printf.sprintf "page %d: server still in REL_IN_PROG" vpn);
      Bitset.iter
        (fun ssmp ->
          let ce = get_centry m ssmp vpn in
          if ce.pstate <> P_read && ce.pstate <> P_write then
            failwith
              (Printf.sprintf "page %d: SSMP %d in a directory without a copy" vpn ssmp))
        se.s_read_dir)
    m.servers;
  List.iter
    (fun h ->
      let n = h.sh_waiters () in
      if n <> 0 then
        failwith (Printf.sprintf "lock %s: %d waiter(s) still queued" h.sh_name n))
    m.sync_hooks
