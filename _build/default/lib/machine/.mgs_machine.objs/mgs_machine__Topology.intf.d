lib/machine/topology.mli:
