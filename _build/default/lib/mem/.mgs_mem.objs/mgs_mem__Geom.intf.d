lib/mem/geom.mli:
