lib/core/invariant.ml: Array Bitset Format Geom Hashtbl Int64 List Mgs_obs Mlock Printf Sim State String
