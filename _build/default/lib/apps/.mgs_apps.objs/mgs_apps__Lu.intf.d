lib/apps/lu.mli: Mgs_harness
