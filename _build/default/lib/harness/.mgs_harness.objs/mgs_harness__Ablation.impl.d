lib/harness/ablation.ml: List Mgs Mgs_util Option Printf Sweep
