(* Minimal strict JSON: a validating recursive-descent parser and the
   string escaper shared by every exporter in this library.

   The parser exists so tests and the trace-lint tool can check our own
   exports without external dependencies.  It is deliberately strict:
   no trailing garbage, no raw control characters inside strings, only
   the escapes JSON defines, numbers per the JSON grammar.  It is not
   streaming — exports are bounded, so whole-string parsing is fine. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

(* --- escaping -------------------------------------------------------- *)

(* Escape for embedding in a JSON string literal.  Beyond the mandatory
   quote/backslash/control escapes, every byte outside printable ASCII
   is \u-escaped (as Latin-1), so the output is always pure ASCII and
   therefore valid UTF-8 no matter what bytes the input carried. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------- *)

type state = { s : string; mutable pos : int }

let fail st msg = raise (Error (Printf.sprintf "at byte %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail st (Printf.sprintf "expected %c, found end of input" c)

let literal st word v =
  String.iter (fun c -> expect st c) word;
  v

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "invalid hex digit in \\u escape"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        advance st;
        let code = ref 0 in
        for _ = 1 to 4 do
          match peek st with
          | Some c ->
            code := (!code * 16) + hex_digit st c;
            advance st
          | None -> fail st "truncated \\u escape"
        done;
        st.pos <- st.pos - 1;
        (* store code points below 256 as the raw byte; others as UTF-8 *)
        if !code < 0x80 then Buffer.add_char buf (Char.chr !code)
        else if !code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xc0 lor (!code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (!code land 0x3f)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xe0 lor (!code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((!code lsr 6) land 0x3f)));
          Buffer.add_char buf (Char.chr (0x80 lor (!code land 0x3f)))
        end
      | _ -> fail st "invalid escape");
      advance st;
      go ()
    | Some c when Char.code c < 0x20 -> fail st "raw control character in string"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let consume_while p =
    let rec go () =
      match peek st with
      | Some c when p c ->
        advance st;
        go ()
      | _ -> ()
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  (match peek st with
  | Some '0' -> advance st
  | Some ('1' .. '9') -> consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> fail st "invalid number");
  (match peek st with
  | Some '.' ->
    advance st;
    (match peek st with
    | Some ('0' .. '9') -> consume_while (fun c -> c >= '0' && c <= '9')
    | _ -> fail st "digits required after decimal point")
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    (match peek st with
    | Some ('0' .. '9') -> consume_while (fun c -> c >= '0' && c <= '9')
    | _ -> fail st "digits required in exponent")
  | _ -> ());
  Num (float_of_string (String.sub st.s start (st.pos - start)))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((key, v) :: acc)
        | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail st "expected , or } in object"
      in
      members []
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          Arr (List.rev (v :: acc))
        | _ -> fail st "expected , or ] in array"
      in
      elements []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

let parse s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Error msg -> Error msg

(* --- accessors -------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list = function Arr l -> Some l | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_number = function Num f -> Some f | _ -> None
