(** Cooperative fibers on top of the event queue.

    Each simulated processor runs its program as a fiber.  A fiber
    executes synchronously inside simulator events; when it must wait
    for simulated time to pass or for a protocol interaction, it
    suspends, handing its resumption thunk to whoever will eventually
    schedule it (a timer, a message handler, a lock release, ...).

    Implemented with OCaml 5 effect handlers, so fiber code is written
    in direct style. *)

type status = Running | Completed | Failed of exn

type t
(** Handle on a spawned fiber. *)

val spawn : Sim.t -> ?shard:int -> at:Sim.time -> name:string -> (unit -> unit) -> t
(** [spawn sim ~at ~name body] schedules [body] to start at time [at].
    [name] is used in error reports.  [shard] pins the fiber's first
    event to an explicit shard of a sharded simulator (its processor's
    SSMP); subsequent resumptions stay on whatever shard schedules
    them, which for SSMP-local work is the same one. *)

val status : t -> status
val name : t -> string

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] suspends the calling fiber.  [register] receives
    the resume thunk and must arrange for it to be invoked exactly once
    (typically by scheduling it with {!Sim.at} or parking it on a wait
    list).  Must be called from fiber context.
    @raise Failure when called outside a fiber. *)

val sleep_until : Sim.t -> Sim.time -> unit
(** [sleep_until sim t] suspends the calling fiber and resumes it at
    simulated time [t] (clamped to now). *)

val check_all_completed : t list -> unit
(** @raise Failure naming the first fiber that is not [Completed]
    (deadlocked fibers show up as [Running] after the event queue
    drains; failed fibers re-raise their exception). *)
