examples/stencil.ml: Float Mgs Mgs_harness Mgs_mem Mgs_sync Printf
