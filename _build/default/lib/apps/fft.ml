type params = { m : int; butterfly_cycles : int; seed : int }

let default = { m = 32; butterfly_cycles = 60; seed = 37 }

let tiny = { m = 8; butterfly_cycles = 60; seed = 19 }

let problem_size p = Printf.sprintf "%d-point complex FFT (%dx%d)" (p.m * p.m) p.m p.m

let input p =
  let rng = Mgs_util.Rng.create ~seed:p.seed in
  Array.init (2 * p.m * p.m) (fun _ -> Mgs_util.Rng.float rng 2.0 -. 1.0)

(* In-place m-point radix-2 FFT of a row, written against abstract
   accessors so the simulated and sequential versions execute the
   identical operation sequence (hence bit-identical results).
   [base] is the word index of the row's first real part. *)
let fft_row ~read ~write ~compute ~m ~base =
  let re k = base + (2 * k) and im k = base + (2 * k) + 1 in
  (* bit reversal *)
  let bits =
    let rec go b n = if n <= 1 then b else go (b + 1) (n / 2) in
    go 0 m
  in
  let rev k =
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if k land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    !r
  in
  for k = 0 to m - 1 do
    let j = rev k in
    if j > k then begin
      let ar = read (re k) and ai = read (im k) in
      let br = read (re j) and bi = read (im j) in
      write (re k) br;
      write (im k) bi;
      write (re j) ar;
      write (im j) ai
    end
  done;
  (* butterflies *)
  let len = ref 2 in
  while !len <= m do
    let half = !len / 2 in
    let ang = -2.0 *. Float.pi /. float_of_int !len in
    for start = 0 to (m / !len) - 1 do
      let s = start * !len in
      for t = 0 to half - 1 do
        compute ();
        let wr = cos (ang *. float_of_int t) and wi = sin (ang *. float_of_int t) in
        let ur = read (re (s + t)) and ui = read (im (s + t)) in
        let vr = read (re (s + t + half)) and vi = read (im (s + t + half)) in
        let xr = (wr *. vr) -. (wi *. vi) and xi = (wr *. vi) +. (wi *. vr) in
        write (re (s + t)) (ur +. xr);
        write (im (s + t)) (ui +. xi);
        write (re (s + t + half)) (ur -. xr);
        write (im (s + t + half)) (ui -. xi)
      done
    done;
    len := !len * 2
  done

(* The six-step algorithm over abstract storage; [row_mine] selects the
   rows a caller computes, [barrier] separates the phases.  Buffers:
   [x] input (read-only), [b] and [t] working matrices. *)
let six_step ~read ~write ~compute ~barrier ~row_mine ~m ~x ~b ~t =
  let n = m * m in
  (* phase 1: gather B[k2][k1] = x[k2 + m*k1] (transpose load) *)
  for k2 = 0 to m - 1 do
    if row_mine k2 then
      for k1 = 0 to m - 1 do
        let src = k2 + (m * k1) and dst = (k2 * m) + k1 in
        write (b + (2 * dst)) (read (x + (2 * src)));
        write (b + (2 * dst) + 1) (read (x + (2 * src) + 1))
      done
  done;
  barrier ();
  (* phase 2: FFT rows of B, then twiddle B[k2][j1] *= W(n)^(j1*k2) *)
  for k2 = 0 to m - 1 do
    if row_mine k2 then begin
      fft_row ~read ~write ~compute ~m ~base:(b + (2 * k2 * m));
      for j1 = 0 to m - 1 do
        compute ();
        let ang = -2.0 *. Float.pi *. float_of_int (j1 * k2) /. float_of_int n in
        let wr = cos ang and wi = sin ang in
        let idx = b + (2 * ((k2 * m) + j1)) in
        let vr = read idx and vi = read (idx + 1) in
        write idx ((wr *. vr) -. (wi *. vi));
        write (idx + 1) ((wr *. vi) +. (wi *. vr))
      done
    end
  done;
  barrier ();
  (* phase 3: transpose T[j1][k2] = B[k2][j1] (all-to-all) *)
  for j1 = 0 to m - 1 do
    if row_mine j1 then
      for k2 = 0 to m - 1 do
        let src = (k2 * m) + j1 and dst = (j1 * m) + k2 in
        write (t + (2 * dst)) (read (b + (2 * src)));
        write (t + (2 * dst) + 1) (read (b + (2 * src) + 1))
      done
  done;
  barrier ();
  (* phase 4: FFT rows of T; T[j1][j2] = X[j1 + m*j2] *)
  for j1 = 0 to m - 1 do
    if row_mine j1 then fft_row ~read ~write ~compute ~m ~base:(t + (2 * j1 * m))
  done;
  barrier ()

let seq_reference p =
  let m = p.m in
  let n = m * m in
  let store = Array.make (2 * 3 * n) 0.0 in
  Array.blit (input p) 0 store 0 (2 * n);
  six_step
    ~read:(fun i -> store.(i))
    ~write:(fun i v -> store.(i) <- v)
    ~compute:(fun () -> ())
    ~barrier:(fun () -> ())
    ~row_mine:(fun _ -> true)
    ~m ~x:0 ~b:(2 * n) ~t:(4 * n);
  Array.sub store (4 * n) (2 * n)

let dft_reference p =
  let m = p.m in
  let n = m * m in
  let x = input p in
  let out = Array.make (2 * n) 0.0 in
  for j = 0 to n - 1 do
    let sr = ref 0.0 and si = ref 0.0 in
    for k = 0 to n - 1 do
      let ang = -2.0 *. Float.pi *. float_of_int (j * k) /. float_of_int n in
      let wr = cos ang and wi = sin ang in
      sr := !sr +. (x.(2 * k) *. wr) -. (x.((2 * k) + 1) *. wi);
      si := !si +. (x.(2 * k) *. wi) +. (x.((2 * k) + 1) *. wr)
    done;
    (* X[j] lives at T[j mod m][j / m] in the six-step output *)
    let slot = ((j mod m) * m) + (j / m) in
    out.(2 * slot) <- !sr;
    out.((2 * slot) + 1) <- !si
  done;
  out

let workload p =
  let m = p.m in
  if m land (m - 1) <> 0 then invalid_arg "Fft: m must be a power of two";
  let n = m * m in
  let prepare mach =
    let x = Mgs.Machine.alloc mach ~words:(2 * n) ~home:Mgs_mem.Allocator.Blocked in
    let b = Mgs.Machine.alloc mach ~words:(2 * n) ~home:Mgs_mem.Allocator.Blocked in
    let t = Mgs.Machine.alloc mach ~words:(2 * n) ~home:Mgs_mem.Allocator.Blocked in
    Array.iteri (fun i v -> Mgs.Machine.poke mach (x + i) v) (input p);
    let bar = Mgs_sync.Barrier.create mach in
    let body ctx =
      let nprocs = Mgs.Api.nprocs ctx in
      let me = Mgs.Api.proc ctx in
      let rows_per = (m + nprocs - 1) / nprocs in
      let row_mine r = r / rows_per = me || (r / rows_per >= nprocs && me = nprocs - 1) in
      six_step
        ~read:(fun a -> Mgs.Api.read ctx a)
        ~write:(fun a v -> Mgs.Api.write ctx a v)
        ~compute:(fun () -> Mgs.Api.compute ctx p.butterfly_cycles)
        ~barrier:(fun () -> Mgs_sync.Barrier.wait ctx bar)
        ~row_mine ~m ~x ~b ~t
    in
    let check mach =
      let expect = seq_reference p in
      for i = 0 to (2 * n) - 1 do
        let got = Mgs.Machine.peek mach (t + i) in
        if got <> expect.(i) then
          failwith (Printf.sprintf "fft mismatch at %d: got %.17g want %.17g" i got expect.(i))
      done
    in
    (body, check)
  in
  { Mgs_harness.Sweep.name = "FFT"; prepare }
