(** Run summary: the paper's runtime breakdown plus protocol, network,
    cache, and synchronization counters. *)

type breakdown = {
  user : float;  (** mean cycles per processor: computation + translation + hw stalls *)
  lock : float;  (** lock acquire/release and lock waiting *)
  barrier : float;  (** barrier overhead and waiting *)
  mgs : float;  (** software coherence: fault service, releases, handler occupancy *)
}

type outcome =
  | Completed
  | Partitioned of {
      src_ssmp : int;
      dst_ssmp : int;
      tag : string;
      retries : int;
    }
      (** A message exhausted its retransmission budget under a fault
          plan; the run was abandoned at that point and every counter
          below reflects progress up to it. *)

type t = {
  outcome : outcome;
  nprocs : int;
  cluster : int;
  runtime : int;  (** parallel execution time: max processor finish time *)
  breakdown : breakdown;
  per_proc_total : int array;  (** total charged cycles per processor *)
  pstats : Pstats.t;  (** protocol counters (snapshot) *)
  cache : Mgs_cache.Coherence.stats;  (** aggregated over all SSMPs *)
  lan_messages : int;
  lan_words : int;
  messages_by_tag : (string * int) list;  (** protocol message mix (RREQ, REL, ...) *)
  lock_acquires : int;
  lock_hits : int;
  barrier_episodes : int;
  sim_events : int;  (** discrete events executed by the simulator *)
  peak_queue : int;  (** high-water mark of the event queue *)
  wall_seconds : float;
      (** host wall-clock time of {!Machine.run}; 0 when unmeasured.
          Excluded from figures/CSV so parallel and sequential sweeps
          render byte-identically. *)
}

val of_machine : ?wall_seconds:float -> ?outcome:outcome -> State.t -> t

val completed : t -> bool

val pp_outcome : Format.formatter -> outcome -> unit

val total : breakdown -> float

val lock_hit_ratio : t -> float
(** Fraction of lock acquires satisfied without inter-SSMP
    communication; 1.0 when there were no acquires. *)

val events_per_second : t -> float
(** Simulator throughput; 0 when wall time was not measured. *)

val pp_throughput : Format.formatter -> t -> unit
(** [events=... peak_queue=... wall=...s (... events/s)] — printed in
    normal runs so perf regressions are visible without the bench. *)

val pp : Format.formatter -> t -> unit
(** One-paragraph human-readable summary (includes throughput). *)
