lib/sync/barrier.ml: Am Array Cpu Hashtbl Mgs Mgs_engine Mgs_obs Sim Span Topology
