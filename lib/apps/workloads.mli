(** Registration of every application (and the KV serving tier) with
    the {!Mgs_harness.Workload} registry.

    Linking this module registers: jacobi, matmul, tsp, water, barnes,
    water-kernel, water-kernel-tiled, lu, fft, radix, kv. *)

val ensure : unit -> unit
(** No-op whose only job is to force this module (and therefore its
    registrations) to be linked into the executable.  Call it once at
    startup before consulting [Mgs_harness.Workload.names]. *)
