lib/core/proto.ml: Am Array Bitset Coherence Cpu Format Geom Hashtbl List Mgs_engine Mgs_obs Mlock Option Pagedata Printf Sim Span State Tlb Topology
