test/test_hlrc.mli:
