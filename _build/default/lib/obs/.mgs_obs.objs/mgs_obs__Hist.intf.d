lib/obs/hist.mli: Format
