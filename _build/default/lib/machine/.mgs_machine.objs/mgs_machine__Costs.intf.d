lib/machine/costs.mli:
