(** Event heap for the sharded engine: a binary min-heap over canonical
    genealogy keys.

    A key orders an event by [(fire, sched, src, seq)] with one
    refinement: when two events tie on [(fire, sched)] but were created
    by {e different} shards, the tie is broken by recursively comparing
    the keys of the events that created them.  That parent pop order is
    exactly what the sequential engine's global insertion counter
    encodes, so the canonical order reproduces the sequential engine's
    [(time, scheduling order)] tie-breaking in every case — including
    two shards scheduling onto a common destination at the same clock.

    [own] names the shard that will execute the event — it is carried,
    not part of the order. *)

type key = private {
  k_fire : int;  (** absolute fire time *)
  k_sched : int;  (** scheduling shard's clock at creation *)
  k_src : int;  (** scheduling shard's id *)
  k_seq : int;  (** scheduling shard's private counter *)
  k_parent : key;  (** key of the creating event; {!no_parent} for roots *)
}

val no_parent : key
(** Sentinel parent for host-scheduled (root) events.  Roots sort
    before same-[(fire, sched)] events created during execution, as the
    sequential engine's insertion counter does. *)

val key : fire:int -> sched:int -> src:int -> seq:int -> parent:key -> key

val refire : key -> fire:int -> key
(** The same key moved to a later fire time (lookahead-violation
    clamping at outbox flush). *)

val cmp_key : key -> key -> int
(** The canonical total order described above. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val min_fire : t -> int option
(** Fire time of the earliest event, if any. *)

val push : t -> key:key -> own:int -> (unit -> unit) -> unit

exception Empty_queue

val pop_min : t -> unit -> unit
(** Removes and returns the minimum element's thunk.  Its key is
    readable via {!popped_key} / {!popped_own} until the next pop.
    @raise Empty_queue when empty. *)

val popped_key : t -> key
val popped_fire : t -> int
val popped_own : t -> int

val clear : t -> unit
