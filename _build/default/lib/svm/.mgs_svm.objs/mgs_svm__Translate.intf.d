lib/svm/translate.mli: Mgs_machine
