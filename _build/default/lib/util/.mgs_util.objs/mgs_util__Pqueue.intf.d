lib/util/pqueue.mli:
