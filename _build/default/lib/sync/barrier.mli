(** The MGS tree barrier (paper section 3.2).

    Level one synchronizes the processors of each SSMP through shared
    memory; level two synchronizes the SSMPs with exactly two inter-SSMP
    messages per SSMP (one combine to the master, one release back).
    Arriving at a barrier is a release-consistency point: each SSMP's
    delayed update queue is flushed before the combine.

    On a single-SSMP machine the barrier degenerates to a flat
    all-processor barrier standing in for the paper's P4 library. *)

type t

val create : Mgs.Machine.t -> t
(** A reusable barrier over all processors of [m]. *)

val wait : Mgs.Api.ctx -> t -> unit
(** Block until every processor has arrived.  DUQ flushing is charged
    to the MGS bucket; arrival cost and waiting to the Barrier bucket. *)

val episodes : t -> int
(** Completed barrier episodes. *)
