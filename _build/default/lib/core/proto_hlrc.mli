(** Home-based lazy release consistency (HLRC), the TreadMarks-lineage
    alternative the paper's related work points at ("MGS would benefit
    from these techniques").

    Like MGS, writers twin pages and log them in per-processor delayed
    update queues; unlike MGS's {e eager} protocol, a release only
    flushes diffs to the homes — there is {e no invalidation fan-out,
    no TLB shoot-down storm, and no multi-party epoch}.  Consistency
    information instead travels with the synchronization objects: each
    home keeps a version per page (bumped on every merged update), each
    SSMP keeps a monotone map of versions it has {e learned about}
    ([k_map]), and a lock or barrier carries the merged knowledge of
    its past holders.  At acquire time the SSMP merges the incoming
    notices and lazily invalidates any local copy that is now known to
    be stale (flushing its own unreleased writes first, so nothing is
    lost).  Faults always fetch from the home, whose master is current
    with respect to every release that happens-before the acquire.

    Selected with [Machine.config ~protocol:Protocol_hlrc].  The
    synchronization library calls [release_all]/[publish] at release
    points and [apply_notices] at acquire points. *)

val fault : State.t -> proc:int -> vpn:int -> write:bool -> unit
(** Handle a TLB fault: local fill, or fetch the page (and its version)
    from the home.  Fiber context. *)

val release_all : State.t -> proc:int -> unit
(** Flush every page in [proc]'s delayed update queue: compute diffs
    and send them to the homes, waiting for the version
    acknowledgements.  All flushes proceed in parallel (no epoch).
    Fiber context. *)

val publish : State.t -> proc:int -> into:(int, int) Hashtbl.t -> unit
(** Merge the SSMP's knowledge into a synchronization object's notice
    map (called after {!release_all} when handing the object over). *)

val apply_notices : State.t -> proc:int -> (int, int) Hashtbl.t -> unit
(** Merge a synchronization object's notice map into the SSMP's
    knowledge and invalidate local copies proven stale.  Stale {e
    dirty} copies flush their diff home before being dropped.  Fiber
    context. *)

val flush_page_if_dirty : State.t -> proc:int -> vpn:int -> unit
(** Internal helper exposed for tests: single-page diff flush. *)
