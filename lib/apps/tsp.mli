(** Traveling Salesman Problem by branch and bound with a centralized
    work queue (paper section 5.2).

    Partial tours ("path elements") live contiguously in shared memory —
    small records randomly handed to processors, so heavy false sharing
    at page grain — and both the work queue and the best-tour bound sit
    behind one central lock.  Under software coherence the short
    critical sections dilate (a release happens before the lock frees),
    which is why the paper measures a 25x breakup penalty (Figure 8). *)

type params = {
  ncities : int;
  seed : int;  (** distance matrix generator seed *)
  eval_cycles : int;  (** modelled cost of evaluating one tour extension *)
  lock : string;  (** work-queue lock algorithm, a [Mgs_sync.Locks] name *)
}

val default : params
(** 10 cities, as in the paper (with a synthetic distance matrix). *)

val tiny : params

val paper : params
(** The paper's 10-city problem (same as [default]). *)

val problem_size : params -> string

val best_cost : params -> int
(** Optimal tour cost computed sequentially (for tests). *)

val workload : params -> Mgs_harness.Sweep.workload
(** Verifies the parallel optimum equals the sequential optimum. *)
