type page = float array

type diff = (int * float) list

let create (g : Geom.t) = Array.make g.page_words 0.

let copy = Array.copy

let blit ~src ~dst =
  if Array.length src <> Array.length dst then invalid_arg "Pagedata.blit: length mismatch";
  Array.blit src 0 dst 0 (Array.length src)

let diff p ~twin =
  if Array.length p <> Array.length twin then invalid_arg "Pagedata.diff: length mismatch";
  let acc = ref [] in
  for i = Array.length p - 1 downto 0 do
    (* Bitwise comparison: NaN payloads and -0.0 must round-trip. *)
    if Int64.bits_of_float p.(i) <> Int64.bits_of_float twin.(i) then
      acc := (i, p.(i)) :: !acc
  done;
  !acc

let diff_size = List.length

let apply_diff p d = List.iter (fun (i, v) -> p.(i) <- v) d

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a
    || (Int64.bits_of_float a.(i) = Int64.bits_of_float b.(i) && go (i + 1))
  in
  go 0
