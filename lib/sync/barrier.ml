open Mgs.State

type blocal = {
  mutable arrived : int;
  waiters : Mgs_engine.Waitq.t;
  staged : (int, int) Hashtbl.t;
      (* HLRC: this SSMP's published write notices, merged into
         [notices] at the combine point.  Staging per SSMP keeps the
         publish local to the arriving fiber's engine shard; only the
         combine handler (which runs at the master's shard, after every
         SSMP's combine message) touches the shared map. *)
}

type t = {
  m : Mgs.State.t;
  locals : blocal array;
  notices : (int, int) Hashtbl.t; (* HLRC: write notices funneled via the barrier *)
  mutable global_arrived : int;
  mutable episodes : int;
}

let create (m : Mgs.Machine.t) =
  {
    m;
    locals =
      Array.init m.topo.Topology.nssmps (fun _ ->
          { arrived = 0; waiters = Mgs_engine.Waitq.create (); staged = Hashtbl.create 16 });
    notices = Hashtbl.create 64;
    global_arrived = 0;
    episodes = 0;
  }

let master_proc b = Topology.first_proc_of_ssmp b.m.topo 0

let release_ssmp b s =
  let loc = b.locals.(s) in
  loc.arrived <- 0;
  ignore (Mgs_engine.Waitq.wake_all b.m.sim loc.waiters)

(* Fold every SSMP's staged notices into the shared map (version
   max-merge, so the SSMP visiting order is immaterial to the content). *)
let merge_staged b =
  Array.iter
    (fun loc ->
      Hashtbl.iter
        (fun vpn v ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt b.notices vpn) in
          if v > prev then Hashtbl.replace b.notices vpn v)
        loc.staged;
      Hashtbl.reset loc.staged)
    b.locals

let on_combine b =
  b.global_arrived <- b.global_arrived + 1;
  if b.global_arrived = b.m.topo.Topology.nssmps then begin
    b.global_arrived <- 0;
    merge_staged b;
    b.episodes <- b.episodes + 1;
    (syncs b.m).barrier_episodes <- (syncs b.m).barrier_episodes + 1;
    obs_emit b.m ~engine:Mgs_obs.Event.Sync ~tag:"sync.barrier_episode"
      ~src:(master_proc b) ~cost:b.episodes ~vpn:(-1) ~dst:(-1) ~words:0 ~dur:0;
    for s = 0 to b.m.topo.Topology.nssmps - 1 do
      Am.post b.m.am ~tag:"BAR_RELEASE" ~src:(master_proc b)
        ~dst:(Topology.first_proc_of_ssmp b.m.topo s)
        ~words:0 ~cost:b.m.costs.sync.barrier_local (fun _t -> release_ssmp b s)
    done
  end

let wait ctx b =
  let m = b.m in
  let cpu = (ctx : Mgs.Api.ctx).cpu in
  let proc = ctx.Mgs.Api.proc in
  Cpu.sync_busy cpu;
  if Topology.single_ssmp m.topo then begin
    (* Flat barrier standing in for P4 on the tightly-coupled machine. *)
    Cpu.advance cpu Barrier m.costs.sync.flat_barrier;
    let root =
      span_open m ~parent:Span.none ~label:"sync.barrier" ~engine:Mgs_obs.Event.Sync
        ~src:proc ()
    in
    span_set m root;
    let loc = b.locals.(0) in
    loc.arrived <- loc.arrived + 1;
    if loc.arrived = m.topo.Topology.nprocs then begin
      b.episodes <- b.episodes + 1;
      (syncs m).barrier_episodes <- (syncs m).barrier_episodes + 1;
      obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.barrier_episode" ~src:proc
        ~cost:b.episodes ~vpn:(-1) ~dst:(-1) ~words:0 ~dur:0;
      release_ssmp b 0
    end
    else Mgs_engine.Waitq.park loc.waiters;
    Cpu.resume_charge cpu Barrier (Sim.now m.sim);
    span_close m root;
    span_set m Span.none
  end
  else begin
    (* Release point: make this SSMP's writes visible first (HLRC also
       publishes its write notices into the barrier, staged per SSMP). *)
    let s = Topology.ssmp_of_proc m.topo proc in
    Mgs.Consistency.at_release m ~proc ~notices:b.locals.(s).staged;
    (* Transaction root: this processor's barrier episode, from arrival
       (post-release) to departure. *)
    let root =
      span_open m ~parent:Span.none ~label:"sync.barrier" ~engine:Mgs_obs.Event.Sync
        ~src:proc ~dst:(master_proc b) ()
    in
    span_set m root;
    Cpu.advance cpu Barrier m.costs.sync.barrier_local;
    let loc = b.locals.(s) in
    loc.arrived <- loc.arrived + 1;
    if loc.arrived = m.topo.Topology.cluster then begin
      Cpu.advance cpu Barrier m.costs.proto.msg_send;
      Am.post m.am ~tag:"BAR_COMBINE" ~src:proc ~dst:(master_proc b) ~words:0
        ~cost:m.costs.sync.barrier_local (fun _t -> on_combine b)
    end;
    Mgs_engine.Waitq.park loc.waiters;
    Cpu.resume_charge cpu Barrier (Sim.now m.sim);
    span_set m root;
    (* everyone's notices are now in the barrier's map: apply them *)
    Mgs.Consistency.at_acquire m ~proc ~notices:b.notices;
    span_close m root;
    span_set m Span.none
  end

let episodes b = b.episodes
