open Mgs.State

(* Mesa-style condition variables over any registered lock.

   The wait queue is distributed state: it lives at a home processor and
   is touched only inside active-message handlers running there, so
   fibers on different engine shards never race on it.  [wait] registers
   at the home with a blocking round-trip *while still holding the
   lock* — a signaller (which must also hold the lock) therefore cannot
   miss a waiter that released before it signalled — then releases the
   lock and parks on a fiber-private wait queue.  [signal] and
   [broadcast] are round-trips too: the home dequeues, fires CV_WAKE
   messages at the waiters' processors, and acks with the count, which
   the caller returns synchronously.

   Semantics stay Mesa: a woken waiter reacquires the lock in
   competition with every other contender, so predicates must be
   re-checked in a loop. *)

type waiter = {
  w_proc : int;
  w_q : Mgs_engine.Waitq.t; (* fiber-private: parked on the waiter's shard *)
}

type t = {
  m : Mgs.State.t;
  lock : Locks.t;
  queue : waiter Queue.t; (* home-side: touched only in home handlers *)
  (* per-SSMP stat cells, bumped on the owning shard and summed by the
     accessors *)
  parked : int array;
  waits : int array;
  signals : int array;
  wakeups : int array;
}

let asum = Array.fold_left ( + ) 0

(* The queue's home: SSMP 0's first processor.  Keeping it fixed (rather
   than following the lock's home) keeps the CV protocol independent of
   which lock implementation it is layered over. *)
let home_proc t = Topology.first_proc_of_ssmp t.m.topo 0

let create (m : Mgs.Machine.t) lock =
  let n = m.topo.Topology.nssmps in
  let t =
    {
      m;
      lock;
      queue = Queue.create ();
      parked = Array.make n 0;
      waits = Array.make n 0;
      signals = Array.make n 0;
      wakeups = Array.make n 0;
    }
  in
  m.sync_hooks <-
    {
      sh_name = Printf.sprintf "condvar:%s" (Locks.name lock);
      sh_reset =
        (fun () ->
          Queue.clear t.queue;
          Array.fill t.parked 0 n 0;
          Array.fill t.waits 0 n 0;
          Array.fill t.signals 0 n 0;
          Array.fill t.wakeups 0 n 0);
      sh_waiters = (fun () -> asum t.parked);
      sh_waiters_cell = (fun c -> t.parked.(c));
    }
    :: m.sync_hooks;
  t

(* Round-trip to the home: run [f] in a handler there, then wake the
   caller.  The calling fiber parks until the ack arrives; elapsed time
   is charged to the Lock bucket by the caller's [resume_charge]. *)
let rpc t ~tag ~proc f =
  let m = t.m in
  let ack = Mgs_engine.Waitq.create () in
  Am.post m.am ~tag ~src:proc ~dst:(home_proc t) ~words:0
    ~cost:m.costs.sync.lock_local_acquire (fun _ ->
      f ();
      Am.post m.am ~tag:"CV_ACK" ~src:(home_proc t) ~dst:proc ~words:0
        ~cost:m.costs.sync.lock_local_acquire (fun _ ->
          ignore (Mgs_engine.Waitq.wake_one m.sim ack)));
  Mgs_engine.Waitq.park ack

(* Home-side: send a wake-up to [w]'s processor; the handler runs on the
   waiter's own shard and unparks the fiber there. *)
let fire t w =
  let m = t.m in
  Am.post m.am ~tag:"CV_WAKE" ~src:(home_proc t) ~dst:w.w_proc ~words:0
    ~cost:m.costs.sync.lock_local_acquire (fun _ ->
      ignore (Mgs_engine.Waitq.wake_one m.sim w.w_q))

let wait (ctx : Mgs.Api.ctx) t =
  let m = t.m in
  let cpu = ctx.cpu in
  let proc = ctx.Mgs.Api.proc in
  let cell = Topology.ssmp_of_proc m.topo proc in
  Cpu.sync_busy cpu;
  t.waits.(cell) <- t.waits.(cell) + 1;
  obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.cv_wait" ~src:proc ~dst:(home_proc t)
    ~vpn:(-1) ~words:0 ~cost:0 ~dur:0;
  let w = { w_proc = proc; w_q = Mgs_engine.Waitq.create () } in
  (* Register while still holding the lock: once the round-trip is done
     the waiter is visible at the home, so a signaller that acquires the
     lock after our release cannot miss us. *)
  t.parked.(cell) <- t.parked.(cell) + 1;
  Cpu.advance cpu Lock m.costs.proto.msg_send;
  rpc t ~tag:"CV_WAIT" ~proc (fun () -> Queue.add w t.queue);
  Cpu.resume_charge cpu Lock (Sim.now m.sim);
  Locks.release ctx t.lock;
  Mgs_engine.Waitq.park w.w_q;
  Cpu.resume_charge cpu Lock (Sim.now m.sim);
  t.parked.(cell) <- t.parked.(cell) - 1;
  t.wakeups.(cell) <- t.wakeups.(cell) + 1;
  Locks.acquire ctx t.lock

let signal (ctx : Mgs.Api.ctx) t =
  let m = t.m in
  let cpu = ctx.cpu in
  let proc = ctx.Mgs.Api.proc in
  let cell = Topology.ssmp_of_proc m.topo proc in
  Cpu.sync_busy cpu;
  Cpu.advance cpu Lock m.costs.sync.lock_local_release;
  t.signals.(cell) <- t.signals.(cell) + 1;
  obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.cv_signal" ~src:proc ~dst:(home_proc t)
    ~vpn:(-1) ~words:0 ~cost:0 ~dur:0;
  let woke = ref false in
  rpc t ~tag:"CV_SIG" ~proc (fun () ->
      match Queue.take_opt t.queue with
      | None -> ()
      | Some w ->
        woke := true;
        fire t w);
  Cpu.resume_charge cpu Lock (Sim.now m.sim);
  !woke

let broadcast (ctx : Mgs.Api.ctx) t =
  let m = t.m in
  let cpu = ctx.cpu in
  let proc = ctx.Mgs.Api.proc in
  let cell = Topology.ssmp_of_proc m.topo proc in
  Cpu.sync_busy cpu;
  Cpu.advance cpu Lock m.costs.sync.lock_local_release;
  t.signals.(cell) <- t.signals.(cell) + 1;
  obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.cv_broadcast" ~src:proc
    ~dst:(home_proc t) ~vpn:(-1) ~words:0 ~cost:0 ~dur:0;
  let count = ref 0 in
  rpc t ~tag:"CV_BCAST" ~proc (fun () ->
      count := Queue.length t.queue;
      Queue.iter (fire t) t.queue;
      Queue.clear t.queue);
  Cpu.resume_charge cpu Lock (Sim.now m.sim);
  !count

let waiters t = asum t.parked

let waits t = asum t.waits

let wakeups t = asum t.wakeups
