(** Causal span tracing.

    Deterministic transaction IDs are minted when a protocol operation
    (page fault, release, lock or barrier episode) starts; every piece
    of work done on the operation's behalf is recorded as a span — a
    timed interval with an engine label, linked to its parent span in
    the same transaction.  The simulator is deterministic, so the IDs,
    the spans, and every export are byte-identical run-to-run.

    Storage is bounded by [capacity]; spans opened past it are counted
    as dropped and their close is a no-op, while the transaction ID
    keeps threading so surviving child spans stay attributed.

    A store created with [cells > 1] keeps one span store per shard
    (SSMP): each simulator domain writes only its own cell — nothing on
    the hot path is shared — and reads merge the cells by each span's
    genealogy stamp, reconstructing the canonical execution order.
    Span/transaction IDs are renumbered densely in that order at
    read/export time, so exports are byte-identical across job counts.
    Single-cell stores behave exactly as before. *)

type ctx = { txn : int; sid : int }
(** A position in the span tree: transaction ID plus the enclosing
    span.  Negative fields mean "no transaction" / "no span". *)

val none : ctx

type span = {
  sid : int;  (** dense span ID, canonical execution order *)
  parent : int;  (** parent span ID, [-1] for a transaction root *)
  txn : int;
  label : string;
  engine : Event.engine;
  t0 : int;
  mutable t1 : int;  (** [-1] while open *)
  vpn : int;
  src : int;
  dst : int;
  src_ssmp : int;
  dst_ssmp : int;
  words : int;
}

type t

val create : ?capacity:int -> ?cells:int -> unit -> t
(** Capacity defaults to 131072 spans total — divided among the cells
    (floor 64 per cell, never above the total), so memory does not
    scale with the shard count.  [cells] (default 1) is the shard
    count: pass the machine's SSMP count so each simulator domain
    writes its own cell. *)

val cells : t -> int

val mint_txn : t -> int
(** Reserve a fresh transaction ID without opening a span. *)

val open_span :
  t ->
  parent:ctx ->
  time:int ->
  label:string ->
  engine:Event.engine ->
  ?vpn:int ->
  ?src:int ->
  ?dst:int ->
  ?src_ssmp:int ->
  ?dst_ssmp:int ->
  ?words:int ->
  unit ->
  ctx
(** Open a span beginning at [time].  With [parent = none] a fresh
    transaction is minted and the span becomes its root; otherwise the
    parent's transaction is inherited. *)

val open_span_x :
  t ->
  parent:ctx ->
  time:int ->
  label:string ->
  engine:Event.engine ->
  vpn:int ->
  src:int ->
  dst:int ->
  src_ssmp:int ->
  dst_ssmp:int ->
  words:int ->
  ctx
(** [open_span] with every field spelled out.  Supplying an optional
    argument allocates a [Some] box at the call site, so per-message
    paths use this allocation-free variant ([-1] / [0] mark n/a). *)

val close : t -> ctx -> time:int -> unit
(** End the span.  Idempotent; a no-op on [none] or dropped contexts. *)

val current : t -> ctx
(** The ambient context: what the code running right now works on
    behalf of.  Installed around message handlers and restored by
    fibers after suspension. *)

val set_current : t -> ctx -> unit

val count : t -> int
(** Spans recorded. *)

val open_count : t -> int
(** Spans begun but not yet ended.  0 at quiescence — anything else is
    an orphaned transaction (a request whose reply never came). *)

val open_count_cell : t -> int -> int
(** Open spans in one cell — shard-local, safe to read from that
    shard's own event context (the metrics sampler's [spans.open]). *)

val dropped : t -> int

val txns : t -> int
(** Transactions minted. *)

val iter : t -> (span -> unit) -> unit
(** All recorded spans in canonical execution order with dense
    renumbered IDs (identical across job counts; for a single-cell
    store this is the raw emission order and raw IDs). *)

val txn_mapper : t -> int -> int
(** Map a raw transaction ID (as stamped on trace events) to its dense
    export ID.  [-1] maps to itself; a transaction none of whose spans
    survived maps to [-1].  Partially applied form is O(n log n) once;
    the returned closure is O(1) per call. *)

val open_labels : t -> string list
(** Labels of still-open spans (for diagnostics). *)

val engine_of_label : string -> Event.engine
(** The protocol engine a span label attributes to — the same
    classification the critical-path analyzer uses. *)

(** {1 Critical-path analysis} *)

type breakdown = {
  faults : int;  (** remote faults analyzed *)
  e2e : int;  (** summed end-to-end fault latency, cycles *)
  local : int;  (** faulting-side handler + fault-path work *)
  wire : int;  (** LAN transit: sender queueing + latency *)
  dma : int;  (** bulk page/diff transfer *)
  server : int;  (** home-side handler occupancy *)
  remote : int;  (** third-party invalidation / write-back *)
  queue : int;  (** waiting out a release epoch at the server *)
  residual : int;  (** end-to-end time covered by no span *)
}

val zero_breakdown : breakdown

val fault_breakdown : t -> breakdown
(** The paper's Table-4 decomposition, derived purely from finished
    spans: every transaction whose root is a fault that reached the
    home server is analyzed.  Each instant of the fault's end-to-end
    interval is charged to exactly one component (overlapping spans —
    e.g. a parallel invalidation fan-out — resolve by fixed priority),
    so the components plus [residual] sum to [e2e] exactly, and
    [residual / e2e] measures instrumentation coverage. *)

val coverage : breakdown -> float
(** Fraction of end-to-end fault time covered by spans; 1.0 when no
    faults were recorded. *)

(** {1 Export} *)

val json : t -> string
(** Span dump, schema ["mgs-spans-1"]. *)

val write_json : t -> out_channel -> unit

val chrome_section : Buffer.t -> t -> emit_sep:(unit -> unit) -> unit
(** Append Chrome [trace_event] async ('b'/'e') and flow ('s'/'f')
    events for every finished span; [emit_sep] is called before each
    event so the caller controls separators. *)
