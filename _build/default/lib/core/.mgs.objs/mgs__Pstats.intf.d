lib/core/pstats.mli: Format
