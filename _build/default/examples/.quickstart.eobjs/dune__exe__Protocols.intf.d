examples/protocols.mli:
