lib/machine/cpu.ml: Array Mgs_engine
