test/test_ivy.mli:
