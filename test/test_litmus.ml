(* Memory-model litmus tests, run under all three protocols.

   Each pattern encodes a happens-before claim of the memory model:
   - properly synchronized message passing MUST observe the data;
   - unsynchronized racy reads are allowed to return either value but
     must never crash the machine or corrupt unrelated state. *)

open Mgs.State

let protocols = [ ("mgs", Protocol_mgs); ("hlrc", Protocol_hlrc); ("ivy", Protocol_ivy) ]

(* Every litmus machine runs with the shadow oracle AND the online
   invariant checker: a pattern that passes its visibility assertion but
   corrupts protocol state still fails. *)
let checkers : (Mgs.Machine.t * Mgs.Invariant.t) list ref = ref []

let machine ?(nprocs = 4) ?(lan_latency = 600) ?faults protocol =
  let cfg = Mgs.Machine.config ~nprocs ~cluster:2 ~lan_latency ~protocol ~shadow:true () in
  let m = Mgs.Machine.create cfg in
  checkers := (m, Mgs.Machine.enable_checker m) :: !checkers;
  (match faults with Some spec -> Mgs.Machine.set_faults m ~seed:1234 spec | None -> ());
  m

let assert_invariants m =
  match List.assq_opt m !checkers with
  | None -> Alcotest.fail "machine has no checker attached"
  | Some c ->
    (* end-of-run pass: any still-open transaction span is an orphan *)
    Mgs.Invariant.finish c;
    if Mgs.Invariant.count c > 0 then
      Alcotest.fail (Format.asprintf "%a" Mgs.Invariant.pp c)

(* MP (message passing) through a lock: w(data); unlock || lock; r(data). *)
let test_mp_lock ?faults protocol () =
  let m = machine ?faults protocol in
  let data = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 3) in
  let lock = Mgs_sync.Lock.create m () in
  let turn = ref 0 in
  let seen = ref (-1.0) in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         match Mgs.Api.proc ctx with
         | 0 ->
           Mgs_sync.Lock.acquire ctx lock;
           Mgs.Api.write ctx data 42.0;
           turn := 1;
           Mgs_sync.Lock.release ctx lock
         | 2 ->
           (* spin on host state until the writer's critical section is
              done, then acquire: the read must see the write *)
           let rec wait () =
             if !turn = 0 then begin
               Mgs.Api.compute ctx 1000;
               Mgs.Api.idle_until ctx (Mgs.Api.cycles ctx);
               wait ()
             end
           in
           wait ();
           Mgs_sync.Lock.acquire ctx lock;
           seen := Mgs.Api.read ctx data;
           Mgs_sync.Lock.release ctx lock
         | _ -> ()));
  Mgs.Machine.assert_quiescent m;
  assert_invariants m;
  Alcotest.(check (float 0.)) "MP through lock" 42.0 !seen;
  Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m)

(* MP through a barrier: w(data); barrier || barrier; r(data). *)
let test_mp_barrier ?faults protocol () =
  let m = machine ?faults protocol in
  let data = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 1) in
  let bar = Mgs_sync.Barrier.create m in
  let seen = Array.make 4 (-1.0) in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         if p = 3 then Mgs.Api.write ctx data 7.0;
         Mgs_sync.Barrier.wait ctx bar;
         seen.(p) <- Mgs.Api.read ctx data;
         Mgs_sync.Barrier.wait ctx bar));
  assert_invariants m;
  Array.iteri
    (fun p v -> Alcotest.(check (float 0.)) (Printf.sprintf "proc %d sees write" p) 7.0 v)
    seen

(* Transitivity: A writes x, hands lock to B; B writes y, hands lock to
   C; C must see BOTH writes (causal chains compose). *)
let test_transitive ?faults protocol () =
  let m = machine ?faults protocol in
  let x = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 0) in
  let y = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 3) in
  let lock = Mgs_sync.Lock.create m () in
  let stage = ref 0 in
  let got = ref (0.0, 0.0) in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let wait_for s =
           let rec go () =
             if !stage < s then begin
               Mgs.Api.compute ctx 500;
               Mgs.Api.idle_until ctx (Mgs.Api.cycles ctx);
               go ()
             end
           in
           go ()
         in
         match Mgs.Api.proc ctx with
         | 0 ->
           Mgs_sync.Lock.acquire ctx lock;
           Mgs.Api.write ctx x 1.0;
           stage := 1;
           Mgs_sync.Lock.release ctx lock
         | 1 ->
           wait_for 1;
           Mgs_sync.Lock.acquire ctx lock;
           (* B reads x (must see it) and writes y *)
           Alcotest.(check (float 0.)) "B sees x" 1.0 (Mgs.Api.read ctx x);
           Mgs.Api.write ctx y 2.0;
           stage := 2;
           Mgs_sync.Lock.release ctx lock
         | 2 ->
           wait_for 2;
           Mgs_sync.Lock.acquire ctx lock;
           got := (Mgs.Api.read ctx x, Mgs.Api.read ctx y);
           Mgs_sync.Lock.release ctx lock
         | _ -> ()));
  assert_invariants m;
  let gx, gy = !got in
  Alcotest.(check (float 0.)) "C sees x transitively" 1.0 gx;
  Alcotest.(check (float 0.)) "C sees y" 2.0 gy

(* Independent locks do not order each other: two disjoint lock-protected
   counters end exactly right even under heavy interleaving. *)
let test_independent_locks ?faults protocol () =
  let m = machine ?faults protocol in
  let a = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 0) in
  let b = Mgs.Machine.alloc m ~words:1 ~home:(Mgs_mem.Allocator.On_proc 2) in
  let la = Mgs_sync.Lock.create m ~home:0 () in
  let lb = Mgs_sync.Lock.create m ~home:1 () in
  let bar = Mgs_sync.Barrier.create m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         for _ = 1 to 10 do
           Mgs_sync.Lock.acquire ctx la;
           Mgs.Api.write ctx a (Mgs.Api.read ctx a +. 1.0);
           Mgs_sync.Lock.release ctx la;
           Mgs_sync.Lock.acquire ctx lb;
           Mgs.Api.write ctx b (Mgs.Api.read ctx b +. 1.0);
           Mgs_sync.Lock.release ctx lb
         done;
         Mgs_sync.Barrier.wait ctx bar));
  Mgs.Machine.assert_quiescent m;
  assert_invariants m;
  Alcotest.(check (float 0.)) "counter a" 40.0 (Mgs.Machine.peek m a);
  Alcotest.(check (float 0.)) "counter b" 40.0 (Mgs.Machine.peek m b)

(* --- MGS-only protocol regressions --------------------------------- *)

(* Two processors in the same SSMP write the same page and release
   concurrently.  The second REL arrives during the first epoch and is
   deferred; the follow-up epoch finds the retained single-writer copy
   untouched since its write-back, so the reply is 1WCLEAN — the
   optimization that skips a redundant page transfer.  Both writes must
   end up in the master. *)
let test_deferred_rel_1wclean () =
  let m = machine Protocol_mgs in
  let page = Mgs.Machine.alloc m ~words:256 ~home:(Mgs_mem.Allocator.On_proc 2) in
  let la = Mgs_sync.Lock.create m ~home:1 () in
  let lb = Mgs_sync.Lock.create m ~home:1 () in
  let step = 200_000 in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         match Mgs.Api.proc ctx with
         | 0 ->
           Mgs_sync.Lock.acquire ctx la;
           Mgs.Api.write ctx page 1.0;
           (* both releasers fire at the same instant so the second REL
              lands inside the first REL's invalidation epoch *)
           Mgs.Api.idle_until ctx (2 * step);
           Mgs_sync.Lock.release ctx la
         | 1 ->
           Mgs_sync.Lock.acquire ctx lb;
           Mgs.Api.idle_until ctx step;
           (* same SSMP as proc 0: a local fill, no second fetch *)
           Mgs.Api.write ctx (page + 1) 2.0;
           Mgs.Api.idle_until ctx (2 * step);
           Mgs_sync.Lock.release ctx lb
         | _ -> ()));
  Mgs.Machine.assert_quiescent m;
  assert_invariants m;
  Alcotest.(check (float 0.)) "first write released" 1.0 (Mgs.Machine.peek m page);
  Alcotest.(check (float 0.)) "second write released" 2.0 (Mgs.Machine.peek m (page + 1));
  Alcotest.(check int) "first epoch writes back the page" 1 (Am.count m.am "1WDATA");
  Alcotest.(check int) "follow-up epoch finds the copy clean" 1 (Am.count m.am "1WCLEAN");
  Alcotest.(check int) "pstats counts the clean reply" 1 m.pstats.Mgs.Pstats.one_wclean;
  Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m)

(* An upgrade's WNOTIFY racing a REL: the notification loses the race,
   the home invalidates the upgrader through the read directory (DIFF),
   grants the 1WDATA writer a retained copy, and then must RECALL that
   copy because the merged diff made it stale.  The recall is visible as
   an epoch extension in the event trace; the upgrader's write must
   survive into the master and be seen by a later reader. *)
let test_wnotify_races_rel () =
  let m = machine ~nprocs:6 Protocol_mgs in
  let page = Mgs.Machine.alloc m ~words:256 ~home:(Mgs_mem.Allocator.On_proc 4) in
  let la = Mgs_sync.Lock.create m ~home:2 () in
  let lb = Mgs_sync.Lock.create m ~home:2 () in
  let bar = Mgs_sync.Barrier.create m in
  let step = 200_000 in
  let reread = ref (-1.0) in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         (match Mgs.Api.proc ctx with
         | 0 ->
           (* the single writer: its REL beats the upgrader's WNOTIFY to
              the home, so the epoch starts with the upgrader still in
              the read directory *)
           Mgs_sync.Lock.acquire ctx la;
           Mgs.Api.write ctx page 1.0;
           Mgs.Api.idle_until ctx ((3 * step) + 2_000);
           Mgs_sync.Lock.release ctx la
         | 2 ->
           (* the upgrader: read copy first, then a write that upgrades
              in place; twinning holds the mapping lock long enough for
              the epoch's INV to queue behind it *)
           Mgs_sync.Lock.acquire ctx lb;
           ignore (Mgs.Api.read ctx (page + 1));
           Mgs.Api.idle_until ctx (3 * step);
           Mgs.Api.write ctx (page + 1) 2.0;
           Mgs.Api.idle_until ctx (4 * step);
           Mgs_sync.Lock.release ctx lb
         | _ -> ());
         Mgs_sync.Barrier.wait ctx bar;
         if Mgs.Api.proc ctx = 0 then reread := Mgs.Api.read ctx (page + 1)));
  Mgs.Machine.assert_quiescent m;
  assert_invariants m;
  Alcotest.(check (float 0.)) "writer's word in master" 1.0 (Mgs.Machine.peek m page);
  Alcotest.(check (float 0.)) "upgrader's word in master" 2.0
    (Mgs.Machine.peek m (page + 1));
  Alcotest.(check (float 0.)) "writer re-reads the upgrader's word" 2.0 !reread;
  Alcotest.(check int) "writer replied 1WDATA" 1 (Am.count m.am "1WDATA");
  Alcotest.(check int) "upgrader collected as DIFF" 1 (Am.count m.am "DIFF");
  Alcotest.(check int) "WNOTIFY was sent" 1 (Am.count m.am "WNOTIFY");
  let extends =
    match Mgs.Machine.trace m with
    | None -> -1
    | Some tr ->
      List.length
        (List.filter
           (fun (e : Mgs_obs.Event.t) -> e.Mgs_obs.Event.tag = "sv.epoch_extend")
           (Mgs_obs.Trace.events tr))
  in
  Alcotest.(check int) "stale retained copy recalled (epoch extended)" 1 extends;
  Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m)

let for_all_protocols name f =
  List.map
    (fun (pname, p) -> Alcotest.test_case (Printf.sprintf "%s [%s]" name pname) `Quick (f p))
    protocols

(* The same happens-before claims must hold verbatim on a lossy LAN:
   the reliable transport makes drops/dups/reorderings invisible to the
   protocol layer (exactly-once handlers), so every assertion — shadow
   oracle and invariant checker included — is unchanged. *)
let lossy = Mgs_net.Fault.scale Mgs_net.Fault.default_chaos ~intensity:0.5

let for_all_protocols_lossy name (f : ?faults:Mgs_net.Fault.spec -> protocol -> unit -> unit) =
  List.map
    (fun (pname, p) ->
      Alcotest.test_case (Printf.sprintf "%s [%s, lossy]" name pname) `Quick (f ~faults:lossy p))
    protocols

let () =
  Alcotest.run "litmus"
    [
      ("message passing via lock", for_all_protocols "MP lock" test_mp_lock);
      ("message passing via barrier", for_all_protocols "MP barrier" test_mp_barrier);
      ("transitivity", for_all_protocols "A->B->C" test_transitive);
      ("independence", for_all_protocols "disjoint locks" test_independent_locks);
      ( "lossy LAN",
        for_all_protocols_lossy "MP lock" test_mp_lock
        @ for_all_protocols_lossy "MP barrier" test_mp_barrier
        @ for_all_protocols_lossy "A->B->C" test_transitive
        @ for_all_protocols_lossy "disjoint locks" test_independent_locks );
      ( "protocol regressions",
        [
          Alcotest.test_case "deferred REL yields 1WCLEAN" `Quick test_deferred_rel_1wclean;
          Alcotest.test_case "WNOTIFY races REL (recall)" `Quick test_wnotify_races_rel;
        ] );
    ]
