examples/quickstart.mli:
