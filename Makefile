# Development entry points.  `make check` is the CI gate: a full build,
# the complete test suite (which runs the online protocol invariant
# checker on every harness sweep and litmus machine), a smoke run of
# the CLI checker, and — when ocamlformat is installed — a formatting
# check that fails on drift.

DUNE ?= dune

.PHONY: all build test check fmt fmt-check smoke chaos-smoke lock-smoke par-smoke obs-par-smoke adapt-smoke kv-smoke trace-lint perf perf-smoke perf-diff clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

# End-to-end: the CLI with trace + invariant checker enabled must
# produce a clean run and a parseable Chrome trace.
smoke: build
	$(DUNE) exec bin/mgs_run.exe -- --app jacobi --procs 8 --cluster 2 \
	  --size 32 --iters 2 --check --trace _build/smoke-trace.json
	@grep -q traceEvents _build/smoke-trace.json

# Chaos: the same app under a seeded lossy LAN must still terminate,
# verify, and report its retransmission work.  A fixed seed makes the
# run (and therefore this gate) deterministic.
chaos-smoke: build
	$(DUNE) exec bin/mgs_run.exe -- --app jacobi --procs 8 --cluster 2 \
	  --size 32 --iters 2 --check --seed 42 \
	  --faults drop=0.05,dup=0.05,delay=0.1:2000,reorder=0.05 \
	  > _build/chaos-smoke.out
	@cat _build/chaos-smoke.out
	@grep -q "net: retries=" _build/chaos-smoke.out
	@grep -q "verification: OK" _build/chaos-smoke.out

# Every registered lock under every coherence protocol, tiny: each
# point verifies its lock-protected counter and machine quiescence, so
# a pass means every algorithm still provides mutual exclusion.
lock-smoke: build
	$(DUNE) exec bench/main.exe -- lock-smoke > _build/lock-smoke.out
	@cat _build/lock-smoke.out
	@grep -q "lock-smoke: OK" _build/lock-smoke.out

# Sharded event engine vs the sequential oracle: a protocol x app
# sample must produce byte-identical reports at several job counts,
# with the windowed multi-domain path really exercised.
par-smoke: build
	$(DUNE) exec bench/main.exe -- par-smoke > _build/par-smoke.out
	@cat _build/par-smoke.out
	@grep -q "par-smoke: OK" _build/par-smoke.out

# Observability under the parallel engine: with trace + metrics on,
# the engine keeps its domains and every merged export is byte-
# identical to the sequential engine's.
obs-par-smoke: build
	$(DUNE) exec bench/main.exe -- obs-par-smoke > _build/obs-par-smoke.out
	@cat _build/obs-par-smoke.out
	@grep -q "obs-par-smoke: OK" _build/obs-par-smoke.out

# Adaptive per-page coherence: tiny static-vs-adaptive cells with the
# invariant checker on, adaptive reruns byte-identical, classifier
# engaged.
adapt-smoke: build
	$(DUNE) exec bench/main.exe -- adapt-smoke > _build/adapt-smoke.out
	@cat _build/adapt-smoke.out
	@grep -q "adapt-smoke: OK" _build/adapt-smoke.out

# Request-serving KV tier: a tiny run with the app verifier and the
# protocol invariant checker on, double-run determinism, sharded-engine
# identity, and the adaptive layer provably engaging on serving traffic
# (thundering-herd cell reaches invalidate-on-read, contended cell
# migrates a home), plus a CLI run whose tail-latency table must render.
kv-smoke: build
	$(DUNE) exec bench/main.exe -- kv-smoke > _build/kv-smoke.out
	@cat _build/kv-smoke.out
	@grep -q "kv-smoke: OK" _build/kv-smoke.out
	$(DUNE) exec bin/mgs_run.exe -- --app kv --procs 8 --cluster 2 \
	  --iters 40 --size 64 --check > _build/kv-cli.out
	@grep -q "kv.put" _build/kv-cli.out
	@grep -q "verification: OK" _build/kv-cli.out

# Validate every observability export against its own contract: run the
# CLI with the trace, span, and metrics exporters on, then lint the
# files (strict JSON, schemas, balanced spans, monotone sample times,
# merged-stream execution order, and — via --latency, matching the
# run's 1000-cycle LAN — cross-SSMP handler starts that respect the
# wire).  The tracked perf baseline is schema-checked along the way.
trace-lint: build
	$(DUNE) exec bin/mgs_run.exe -- --app jacobi --procs 8 --cluster 2 \
	  --size 32 --iters 2 --check --trace _build/lint-trace.json \
	  --spans _build/lint-spans.json --metrics _build/lint-metrics.json
	$(DUNE) exec bin/trace_lint.exe -- --latency 1000 \
	  --chrome _build/lint-trace.json \
	  --spans _build/lint-spans.json \
	  --metrics _build/lint-metrics.json \
	  --bench BENCH_sim.json
	$(DUNE) exec bin/mgs_run.exe -- --app water --procs 8 --cluster 2 \
	  --adapt --check --trace _build/lint-adapt-trace.json \
	  --metrics _build/lint-adapt-metrics.json
	$(DUNE) exec bin/trace_lint.exe -- --latency 1000 \
	  --chrome _build/lint-adapt-trace.json \
	  --metrics _build/lint-adapt-metrics.json

# Perf baseline: full matrix -> BENCH_sim.json (slow; run by hand when
# chasing a regression), and a seconds-long smoke slice for CI that
# checks the harness still runs and emits the tracked fields.
perf: build
	$(DUNE) exec bench/perf.exe

perf-smoke: build
	$(DUNE) exec bench/perf.exe -- --quick -o _build/BENCH_smoke.json
	@grep -q events_per_s _build/BENCH_smoke.json
	@grep -q allocated_mb _build/BENCH_smoke.json

# Regression gate against the committed baseline: rerun the full matrix
# and fail on semantic drift (sim_events / sim_cycles changed) or a >10%
# allocation regression.  Wall-clock deltas are printed but never gate.
perf-diff: build
	$(DUNE) exec bench/perf.exe -- -o _build/BENCH_diff.json --diff BENCH_sim.json

# Formatting is enforced only where the tool exists: the pinned dev
# environment has ocamlformat, minimal containers may not.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt || { echo "ocamlformat drift: run 'make fmt'"; exit 1; }; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed"; exit 1; \
	fi

check: build test smoke chaos-smoke lock-smoke par-smoke obs-par-smoke adapt-smoke kv-smoke trace-lint perf-smoke perf-diff fmt-check
	@echo "check: OK"

clean:
	$(DUNE) clean
