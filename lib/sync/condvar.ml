open Mgs.State

(* Mesa-style condition variables over any registered lock.  [wait]
   releases the lock, parks, and reacquires on wake-up; because the
   reacquire races other contenders, a woken waiter must always
   re-check its predicate.  The wait queue itself is host state — the
   simulated cost of a wait is the release, the park (charged to the
   Lock bucket on resume), and the reacquire; signalling costs one
   local sync operation. *)

type t = {
  m : Mgs.State.t;
  lock : Locks.t;
  q : Mgs_engine.Waitq.t;
  mutable waits : int;
  mutable signals : int;
  mutable wakeups : int;
}

let create (m : Mgs.Machine.t) lock =
  let t = { m; lock; q = Mgs_engine.Waitq.create (); waits = 0; signals = 0; wakeups = 0 } in
  m.sync_hooks <-
    {
      sh_name = Printf.sprintf "condvar:%s" (Locks.name lock);
      sh_reset =
        (fun () ->
          ignore (Mgs_engine.Waitq.clear t.q);
          t.waits <- 0;
          t.signals <- 0;
          t.wakeups <- 0);
      sh_waiters = (fun () -> Mgs_engine.Waitq.length t.q);
    }
    :: m.sync_hooks;
  t

let wait (ctx : Mgs.Api.ctx) t =
  let m = t.m in
  let cpu = ctx.cpu in
  Cpu.sync_busy cpu;
  t.waits <- t.waits + 1;
  obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.cv_wait" ~src:ctx.Mgs.Api.proc ~dst:(-1)
    ~vpn:(-1) ~words:0 ~cost:0 ~dur:0;
  Locks.release ctx t.lock;
  Mgs_engine.Waitq.park t.q;
  Cpu.resume_charge cpu Lock (Sim.now m.sim);
  t.wakeups <- t.wakeups + 1;
  Locks.acquire ctx t.lock

let signal (ctx : Mgs.Api.ctx) t =
  let m = t.m in
  let cpu = ctx.cpu in
  Cpu.sync_busy cpu;
  Cpu.advance cpu Lock m.costs.sync.lock_local_release;
  t.signals <- t.signals + 1;
  obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.cv_signal" ~src:ctx.Mgs.Api.proc ~dst:(-1)
    ~vpn:(-1) ~words:0 ~cost:0 ~dur:0;
  Mgs_engine.Waitq.wake_one m.sim t.q

let broadcast (ctx : Mgs.Api.ctx) t =
  let m = t.m in
  let cpu = ctx.cpu in
  Cpu.sync_busy cpu;
  Cpu.advance cpu Lock m.costs.sync.lock_local_release;
  t.signals <- t.signals + 1;
  obs_emit m ~engine:Mgs_obs.Event.Sync ~tag:"sync.cv_broadcast" ~src:ctx.Mgs.Api.proc
    ~dst:(-1) ~vpn:(-1) ~words:0 ~cost:0 ~dur:0;
  Mgs_engine.Waitq.wake_all m.sim t.q

let waiters t = Mgs_engine.Waitq.length t.q

let waits t = t.waits

let wakeups t = t.wakeups
