(* Quickstart: the smallest complete MGS program.

   Eight processors in two SSMPs of four increment every element of a
   shared vector under a global lock, then meet at a barrier.  Run with:

     dune exec examples/quickstart.exe *)

let () =
  (* a DSSMP with P = 8 processors in SSMPs of C = 4, 1000-cycle LAN *)
  let cfg = Mgs.Machine.config ~nprocs:8 ~cluster:4 ~lan_latency:1000 () in
  let m = Mgs.Machine.create cfg in

  (* shared memory: a 64-word vector, pages interleaved over homes *)
  let vec = Mgs.Machine.alloc m ~words:64 ~home:Mgs_mem.Allocator.Interleaved in
  for i = 0 to 63 do
    Mgs.Machine.poke m (vec + i) 0.0
  done;

  let lock = Mgs_sync.Lock.create m () in
  let barrier = Mgs_sync.Barrier.create m in

  (* the SPMD body: every processor runs this in its own fiber *)
  let report =
    Mgs.Machine.run m (fun ctx ->
        Mgs_sync.Lock.acquire ctx lock;
        for i = 0 to 63 do
          let v = Mgs.Api.read ctx (vec + i) in
          Mgs.Api.write ctx (vec + i) (v +. 1.0)
        done;
        Mgs_sync.Lock.release ctx lock;
        Mgs_sync.Barrier.wait ctx barrier)
  in

  (* all increments went through page replication, twinning and diff
     merging; the home copies now hold the final values *)
  assert (Mgs.Machine.peek m vec = 8.0);
  Format.printf "vec[0] = %g (expected 8)@." (Mgs.Machine.peek m vec);
  Format.printf "%a@." Mgs.Report.pp report;
  Format.printf "lock hit ratio: %.2f@." (Mgs.Report.lock_hit_ratio report)
