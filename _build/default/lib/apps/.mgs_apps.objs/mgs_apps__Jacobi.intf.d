lib/apps/jacobi.mli: Mgs_harness
