(* The examples must build and run cleanly: they are the public face of
   the API.  Each is executed as a subprocess; exit code 0 and non-empty
   output are required. *)

let run_example name =
  (* dune runtest runs in _build/default/test; dune exec from the root *)
  let candidates =
    [
      Filename.concat "../examples" (name ^ ".exe");
      Filename.concat "_build/default/examples" (name ^ ".exe");
      Filename.concat "examples" (name ^ ".exe");
    ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.failf "example binary %s not found" name
  in
  let tmp = Filename.temp_file "mgs_example" ".out" in
  let cmd = Printf.sprintf "%s > %s 2>&1" (Filename.quote path) (Filename.quote tmp) in
  let code = Sys.command cmd in
  let ic = open_in tmp in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove tmp;
  Alcotest.(check int) (name ^ " exits 0") 0 code;
  Alcotest.(check bool) (name ^ " produces output") true (len > 0)

let () =
  Alcotest.run "examples"
    [
      ( "run",
        List.map
          (fun n -> Alcotest.test_case n `Slow (fun () -> run_example n))
          [ "quickstart"; "stencil"; "work_queue"; "protocols" ] );
    ]
