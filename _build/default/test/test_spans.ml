(* Acceptance tests for the causal span layer on the paper's
   applications (section 5's workloads, small problem sizes).

   - Every transaction balances: at quiescence no span is open, under
     any of the three protocols.
   - The span-derived remote-fault decomposition accounts for the
     fault's full end-to-end latency: components + residual = e2e
     exactly, and the residual (uninstrumented time) stays within 5%.
   - The exports survive the library's own strict JSON parser. *)

module Span = Mgs_obs.Span
module Trace = Mgs_obs.Trace
module Json = Mgs_obs.Json

let workloads =
  [
    ( "jacobi",
      fun () -> Mgs_apps.Jacobi.(workload { tiny with n = 24; iters = 2 }) );
    ("water", fun () -> Mgs_apps.Water.(workload { tiny with nmol = 24; iters = 1 }));
    ("tsp", fun () -> Mgs_apps.Tsp.(workload tiny));
  ]

let run_traced ?(protocol = Mgs.State.Protocol_mgs) ~nprocs ~cluster w =
  let cfg = Mgs.Machine.config ~nprocs ~cluster ~lan_latency:1000 ~protocol () in
  let m = Mgs.Machine.create cfg in
  let tr = Mgs.Machine.enable_trace m in
  let checker = Mgs.Machine.enable_checker m in
  let body, wcheck = w.Mgs_harness.Sweep.prepare m in
  ignore (Mgs.Machine.run m body);
  Mgs.Machine.assert_quiescent m;
  wcheck m;
  Mgs.Invariant.finish checker;
  if Mgs.Invariant.count checker > 0 then
    Alcotest.fail (Format.asprintf "%a" Mgs.Invariant.pp checker);
  tr

(* Paper Table-4 claim: the decomposition derived purely from spans
   matches the end-to-end fault latency to within 5%. *)
let test_breakdown_accounts_for_e2e name mk cluster () =
  let tr = run_traced ~nprocs:16 ~cluster (mk ()) in
  let sp = Trace.spans tr in
  Alcotest.(check int) "spans balanced" 0 (Span.open_count sp);
  Alcotest.(check int) "no spans dropped" 0 (Span.dropped sp);
  let b = Span.fault_breakdown sp in
  if cluster < 16 then
    Alcotest.(check bool)
      (Printf.sprintf "%s C=%d has remote faults" name cluster)
      true (b.Span.faults > 0);
  let parts =
    b.Span.local + b.Span.wire + b.Span.dma + b.Span.server + b.Span.remote
    + b.Span.queue + b.Span.residual
  in
  Alcotest.(check int) "components + residual = e2e exactly" b.Span.e2e parts;
  Alcotest.(check bool)
    (Printf.sprintf "residual within 5%% (coverage %.3f)" (Span.coverage b))
    true
    (Span.coverage b >= 0.95)

let test_balanced_under_all_protocols () =
  List.iter
    (fun (pname, protocol) ->
      let w = Mgs_apps.Jacobi.(workload { tiny with n = 16; iters = 2 }) in
      let tr = run_traced ~protocol ~nprocs:8 ~cluster:2 w in
      let sp = Trace.spans tr in
      Alcotest.(check bool) (pname ^ " records spans") true (Span.count sp > 0);
      Alcotest.(check int) (pname ^ " spans balanced") 0 (Span.open_count sp))
    [
      ("mgs", Mgs.State.Protocol_mgs);
      ("hlrc", Mgs.State.Protocol_hlrc);
      ("ivy", Mgs.State.Protocol_ivy);
    ]

let test_exports_parse_strict () =
  let w = Mgs_apps.Jacobi.(workload { tiny with n = 16; iters = 2 }) in
  let tr = run_traced ~nprocs:8 ~cluster:2 w in
  List.iter
    (fun (what, out) ->
      match Json.parse out with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (what ^ " export rejected: " ^ e))
    [ ("chrome", Trace.chrome_json tr); ("spans", Span.json (Trace.spans tr)) ]

(* The simulator is deterministic: the span dump is byte-identical
   across repeated runs of the same configuration. *)
let test_span_dump_deterministic () =
  let dump () =
    let w = Mgs_apps.Jacobi.(workload { tiny with n = 16; iters = 2 }) in
    Span.json (Trace.spans (run_traced ~nprocs:8 ~cluster:2 w))
  in
  Alcotest.(check string) "byte-identical re-run" (dump ()) (dump ())

let () =
  let breakdown_cases =
    List.concat_map
      (fun (name, mk) ->
        List.map
          (fun cluster ->
            Alcotest.test_case
              (Printf.sprintf "%s C=%d" name cluster)
              `Quick
              (test_breakdown_accounts_for_e2e name mk cluster))
          [ 1; 4; 16 ])
      workloads
  in
  Alcotest.run "spans"
    [
      ("fault breakdown vs e2e", breakdown_cases);
      ( "balance",
        [ Alcotest.test_case "all protocols" `Quick test_balanced_under_all_protocols ] );
      ( "exports",
        [
          Alcotest.test_case "strict JSON" `Quick test_exports_parse_strict;
          Alcotest.test_case "deterministic dump" `Quick test_span_dump_deterministic;
        ] );
    ]
