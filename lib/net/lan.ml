type stats = {
  mutable messages : int;
  mutable data_words : int;
  mutable retransmits : int;
  mutable dup_drops : int;
  mutable timeouts : int;
  mutable acks : int;
}

type partition = {
  part_src_ssmp : int;
  part_dst_ssmp : int;
  part_tag : string;
  part_retries : int;
}

exception Net_partition of partition

(* Sender-side record of one logical message awaiting its ack.  The
   whole machine lives in one simulator process, so the receiver finds
   the payload (and continuation) through this record rather than
   marshalling anything. *)
type pending = {
  penv : Envelope.t;
  pk : Mgs_engine.Sim.time -> unit;
  pseq : int;
  pchan : int;
  post_at : Mgs_engine.Sim.time;  (* when the protocol layer posted it *)
  pctx : Mgs_obs.Span.ctx;  (* ambient span at post, for retry spans *)
  mutable retries : int;
  mutable cur_rto : int;
}

(* Reliable-transport state, allocated only when a fault plan is
   installed; without one, [send] never touches any of this and the run
   is byte-identical to a faults-free build. *)
type rel = {
  plan : Fault.plan;
  next_seq : int array;  (* per channel: next sequence number to send *)
  unacked : (int, pending) Hashtbl.t array;  (* per channel, keyed by seq *)
  next_deliver : int array;  (* per channel: receiver's in-order cursor *)
  parked : (int, pending) Hashtbl.t array;  (* arrived out of order *)
}

type t = {
  sim : Mgs_engine.Sim.t;
  costs : Mgs_machine.Costs.t;
  nssmps : int;
  sender_free : Mgs_engine.Sim.time array; (* per-SSMP sender availability *)
  last_arrival : Mgs_engine.Sim.time array; (* FIFO watermark, src*nssmps+dst *)
  cells : stats array;
      (* per-SSMP counter cells: each counter is bumped at the endpoint
         whose shard executes the bump (messages/retransmits/timeouts at
         the sender, acks/dup_drops at the receiver), so concurrent
         shards never write one cell.  {!stats} merges them. *)
  mutable obs : Mgs_obs.Trace.t option;
  mutable rel : rel option;
}

let fresh_stats () =
  { messages = 0; data_words = 0; retransmits = 0; dup_drops = 0; timeouts = 0; acks = 0 }

let create sim costs ~nssmps =
  if nssmps <= 0 then invalid_arg "Lan.create: nssmps";
  {
    sim;
    costs;
    nssmps;
    sender_free = Array.make nssmps 0;
    last_arrival = Array.make (nssmps * nssmps) 0;
    cells = Array.init nssmps (fun _ -> fresh_stats ());
    obs = None;
    rel = None;
  }

(* Delivery on each (src, dst) channel is FIFO: a short message sent
   after a bulk one must not overtake it (the emulated LAN queues at the
   sender and has a fixed latency, so ordering is inherent).  The
   watermarks live in a flat nssmps x nssmps matrix — this runs per
   message and must not allocate a key tuple. *)
let fifo_arrival lan ~src ~dst raw =
  let key = (src * lan.nssmps) + dst in
  let arrive = max raw lan.last_arrival.(key) in
  lan.last_arrival.(key) <- arrive;
  arrive

let emit_delivery lan (env : Envelope.t) ~post_at ~arrive =
  match lan.obs with
  | Some tr ->
    (* record literal rather than Event.make: each supplied optional
       argument would box a Some per message *)
    Mgs_obs.Trace.emit tr
      {
        Mgs_obs.Event.time = arrive;
        engine = Mgs_obs.Event.Network;
        tag = "LAN";
        vpn = -1;
        src = env.src;
        dst = env.dst;
        src_ssmp = env.src_ssmp;
        dst_ssmp = env.dst_ssmp;
        words = env.words;
        cost = 0;
        dur = arrive - post_at;
        txn = (Mgs_obs.Span.current (Mgs_obs.Trace.spans tr)).Mgs_obs.Span.txn;
      }
  | None -> ()

(* --- reliable transport (fault plan installed) ---------------------- *)

(* Retransmission backoff doubles per retry, clamped so high retry
   budgets cannot overflow: unclamped, [rto * 2^retries] wraps negative
   after ~60 doublings, and a negative timeout fires "in the past" —
   the simulator clamps it to now, collapsing the backoff into a
   retransmission storm that burns the whole retry budget in one
   instant.  The cap (2^40 cycles, ~12 simulated days at 1 GHz) is far
   beyond any plausible round trip yet leaves fifteen more doublings of
   headroom before the integer edge, so the schedule stays monotone
   non-decreasing for any retry count. *)
let rto_cap = 1 lsl 40

let next_rto cur = if cur >= rto_cap / 2 then rto_cap else cur * 2

(* Degraded SSMPs slow both their sender and their receiver side; a
   transfer pays the worse of the two endpoints' factors. *)
let scaled factor c = if factor = 1.0 then c else int_of_float (ceil (float_of_int c *. factor))

let slow_of rel ~src ~dst =
  let f = Fault.slowdown rel.plan src and g = Fault.slowdown rel.plan dst in
  if f > g then f else g

(* Worst plausible round trip for this payload; the initial timeout must
   comfortably exceed it or healthy channels retransmit spuriously
   (harmless — the receiver dedups — but noisy). *)
let auto_rto lan rel (env : Envelope.t) =
  let p = lan.costs.Mgs_machine.Costs.proto in
  let l = lan.costs.Mgs_machine.Costs.lan in
  let spec = Fault.spec_of rel.plan in
  let slow = slow_of rel ~src:env.src_ssmp ~dst:env.dst_ssmp in
  let one_way = scaled slow l.latency + (env.words * p.dma_per_word) + spec.delay_max in
  (3 * one_way) + (4 * l.send_occupancy)

let deliver lan rel pend now =
  let chan = pend.pchan in
  rel.next_deliver.(chan) <- pend.pseq + 1;
  emit_delivery lan pend.penv ~post_at:pend.post_at ~arrive:now;
  pend.pk now

let ack_arrived rel ~chan ~seq =
  match Hashtbl.find_opt rel.unacked.(chan) seq with
  | Some _ -> Hashtbl.remove rel.unacked.(chan) seq
  | None -> ()

(* Acknowledgement: a small control message back to the sender.  It
   pays the (slowdown-scaled) wire latency and can itself be lost, but
   carries no payload and does not compete for sender occupancy — the
   emulated LAN's control traffic rides for free, like the forward
   path's fixed latency. *)
let send_ack lan rel ~chan ~seq ~src ~dst now =
  let c = lan.cells.(dst) in
  c.acks <- c.acks + 1;
  let spec = Fault.spec_of rel.plan in
  (* the ack direction owns its own stream: this draw happens on the
     receiver's shard, the forward draws on the sender's *)
  let g = Fault.ack_rng rel.plan ~src ~dst in
  let lost = Fault.flip g spec.drop in
  if not lost then begin
    let l = lan.costs.Mgs_machine.Costs.lan in
    let arrive = now + scaled (slow_of rel ~src ~dst) l.latency in
    (* the ack lands back on the sender's shard: [unacked] is sender
       state *)
    Mgs_engine.Sim.at_shard lan.sim ~shard:src arrive (fun () -> ack_arrived rel ~chan ~seq)
  end

let on_arrival lan rel pend now =
  let chan = pend.pchan in
  let env = pend.penv in
  let src = env.Envelope.src_ssmp and dst = env.Envelope.dst_ssmp in
  if pend.pseq < rel.next_deliver.(chan) || Hashtbl.mem rel.parked.(chan) pend.pseq then begin
    (* already delivered or already waiting: a duplicate (wire dup or a
       retransmission racing its original).  Drop it, but re-ack — the
       first ack may have been the casualty. *)
    let c = lan.cells.(dst) in
    c.dup_drops <- c.dup_drops + 1;
    send_ack lan rel ~chan ~seq:pend.pseq ~src ~dst now
  end
  else begin
    Hashtbl.replace rel.parked.(chan) pend.pseq pend;
    send_ack lan rel ~chan ~seq:pend.pseq ~src ~dst now;
    (* Deliver every consecutive message now available, in order. *)
    let rec drain () =
      match Hashtbl.find_opt rel.parked.(chan) rel.next_deliver.(chan) with
      | Some ready ->
        Hashtbl.remove rel.parked.(chan) ready.pseq;
        deliver lan rel ready now;
        drain ()
      | None -> ()
    in
    drain ()
  end

let emit_retry lan pend now =
  match lan.obs with
  | Some tr ->
    let env = pend.penv in
    Mgs_obs.Trace.emit tr
      {
        Mgs_obs.Event.time = now;
        engine = Mgs_obs.Event.Network;
        tag = "NET.RETRY";
        vpn = -1;
        src = env.src;
        dst = env.dst;
        src_ssmp = env.src_ssmp;
        dst_ssmp = env.dst_ssmp;
        words = env.words;
        cost = 0;
        dur = 0;
        txn = pend.pctx.Mgs_obs.Span.txn;
      };
    let sp = Mgs_obs.Trace.spans tr in
    let ctx =
      Mgs_obs.Span.open_span_x sp ~parent:pend.pctx ~time:now ~label:"net.retry"
        ~engine:Mgs_obs.Event.Network ~vpn:(-1) ~src:env.src ~dst:env.dst
        ~src_ssmp:env.src_ssmp ~dst_ssmp:env.dst_ssmp ~words:env.words
    in
    Mgs_obs.Span.close sp ctx ~time:now
  | None -> ()

(* One transmission attempt: pay sender occupancy, draw this attempt's
   fate from the channel's own stream (a fixed number of draws whatever
   the probabilities, so rate changes never shift later draws), schedule
   the surviving copies, and arm the retransmission timer. *)
let rec transmit lan rel pend ~at =
  let p = lan.costs.Mgs_machine.Costs.proto in
  let l = lan.costs.Mgs_machine.Costs.lan in
  let env = pend.penv in
  let src = env.Envelope.src_ssmp and dst = env.Envelope.dst_ssmp in
  let spec = Fault.spec_of rel.plan in
  let g = Fault.chan_rng rel.plan ~src ~dst in
  let slow = slow_of rel ~src ~dst in
  let depart = max at lan.sender_free.(src) in
  lan.sender_free.(src) <- depart + scaled slow l.send_occupancy;
  let dropped = Fault.flip g spec.drop in
  let dupped = Fault.flip g spec.dup in
  let reordered = Fault.flip g spec.reorder in
  let extra = Fault.extra_delay g spec in
  let raw = depart + scaled slow l.latency + (env.words * p.dma_per_word) + extra in
  (* A reorder fault lets this copy overtake earlier traffic: it skips
     the FIFO clamp (and leaves the watermark alone, so it cannot hold
     later messages back either). *)
  let arrive = if reordered then raw else fifo_arrival lan ~src ~dst raw in
  if not dropped then
    Mgs_engine.Sim.at_shard lan.sim ~shard:dst arrive (fun () -> on_arrival lan rel pend arrive);
  if dupped then begin
    (* The wire delivered a second copy just behind the first; it skips
       the FIFO clamp so it cannot delay legitimate traffic. *)
    let darrive = raw + 1 in
    Mgs_engine.Sim.at_shard lan.sim ~shard:dst darrive (fun () -> on_arrival lan rel pend darrive)
  end;
  (* the retransmission timer stays on the sender's shard *)
  let fire = depart + pend.cur_rto in
  Mgs_engine.Sim.at lan.sim fire (fun () -> on_timeout lan rel pend fire)

and on_timeout lan rel pend now =
  if Hashtbl.mem rel.unacked.(pend.pchan) pend.pseq then begin
    (* still unacked: the message (or its ack) is lost or very late *)
    let c = lan.cells.(pend.penv.Envelope.src_ssmp) in
    c.timeouts <- c.timeouts + 1;
    let spec = Fault.spec_of rel.plan in
    if pend.retries >= spec.max_retries then
      raise
        (Net_partition
           {
             part_src_ssmp = pend.penv.Envelope.src_ssmp;
             part_dst_ssmp = pend.penv.Envelope.dst_ssmp;
             part_tag = pend.penv.Envelope.tag;
             part_retries = pend.retries;
           })
    else begin
      pend.retries <- pend.retries + 1;
      pend.cur_rto <- next_rto pend.cur_rto;
      let c = lan.cells.(pend.penv.Envelope.src_ssmp) in
      c.retransmits <- c.retransmits + 1;
      emit_retry lan pend now;
      transmit lan rel pend ~at:now
    end
  end

let send_reliable lan rel (env : Envelope.t) ~at k =
  let chan = (env.src_ssmp * lan.nssmps) + env.dst_ssmp in
  let seq = rel.next_seq.(chan) in
  rel.next_seq.(chan) <- seq + 1;
  let c = lan.cells.(env.src_ssmp) in
  c.messages <- c.messages + 1;
  c.data_words <- c.data_words + env.words;
  let pctx =
    match lan.obs with
    | Some tr -> Mgs_obs.Span.current (Mgs_obs.Trace.spans tr)
    | None -> Mgs_obs.Span.none
  in
  let pend =
    { penv = env; pk = k; pseq = seq; pchan = chan; post_at = at; pctx; retries = 0; cur_rto = 0 }
  in
  let spec = Fault.spec_of rel.plan in
  pend.cur_rto <- min rto_cap (if spec.rto > 0 then spec.rto else auto_rto lan rel env);
  Hashtbl.replace rel.unacked.(chan) seq pend;
  transmit lan rel pend ~at

(* --- the one entry point ------------------------------------------- *)

let send lan (env : Envelope.t) ~at k =
  let p = lan.costs.Mgs_machine.Costs.proto in
  let l = lan.costs.Mgs_machine.Costs.lan in
  let src = env.Envelope.src_ssmp and dst = env.Envelope.dst_ssmp in
  if src = dst then begin
    (* Intra-SSMP protocol message: fast Alewife messaging, no LAN —
       and no faults; the shared bus does not lose messages. *)
    let arrive = fifo_arrival lan ~src ~dst (at + p.intra_msg + (env.words * p.dma_per_word)) in
    Mgs_engine.Sim.at lan.sim arrive (fun () -> k arrive)
  end
  else
    match lan.rel with
    | Some rel -> send_reliable lan rel env ~at k
    | None ->
      let depart = max at lan.sender_free.(src) in
      lan.sender_free.(src) <- depart + l.send_occupancy;
      let arrive = fifo_arrival lan ~src ~dst (depart + l.latency + (env.words * p.dma_per_word)) in
      let c = lan.cells.(src) in
      c.messages <- c.messages + 1;
      c.data_words <- c.data_words + env.words;
      emit_delivery lan env ~post_at:at ~arrive;
      Mgs_engine.Sim.at_shard lan.sim ~shard:dst arrive (fun () -> k arrive)

let stats lan =
  let t = fresh_stats () in
  Array.iter
    (fun c ->
      t.messages <- t.messages + c.messages;
      t.data_words <- t.data_words + c.data_words;
      t.retransmits <- t.retransmits + c.retransmits;
      t.dup_drops <- t.dup_drops + c.dup_drops;
      t.timeouts <- t.timeouts + c.timeouts;
      t.acks <- t.acks + c.acks)
    lan.cells;
  t

let set_obs lan tr = lan.obs <- tr

let set_fault_plan lan plan =
  match plan with
  | None -> lan.rel <- None
  | Some plan ->
    let n = lan.nssmps * lan.nssmps in
    lan.rel <-
      Some
        {
          plan;
          next_seq = Array.make n 0;
          unacked = Array.init n (fun _ -> Hashtbl.create 16);
          next_deliver = Array.make n 0;
          parked = Array.init n (fun _ -> Hashtbl.create 16);
        }

let fault_plan lan =
  match lan.rel with
  | Some rel -> Some rel.plan
  | None -> None

let unacked lan =
  match lan.rel with
  | Some rel -> Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 rel.unacked
  | None -> 0

let reset_stats lan =
  Array.iter
    (fun c ->
      c.messages <- 0;
      c.data_words <- 0;
      c.retransmits <- 0;
      c.dup_drops <- 0;
      c.timeouts <- 0;
      c.acks <- 0)
    lan.cells

(* Full reset between measured phases: beyond the counters, clear the
   sender-occupancy horizons and per-channel FIFO watermarks so warmup
   traffic cannot delay (and thus skew) the first measured messages.
   With a fault plan installed the retransmission state (sequence
   numbers, unacked and parked tables) and the fault schedule restart
   too — only safe when the network is quiescent, since an in-flight
   message's sequence number would collide with the restarted stream.
   Safe mid-run otherwise: departures and arrivals are clamped to [at],
   which is never in the past. *)
let reset lan =
  reset_stats lan;
  Array.fill lan.sender_free 0 (Array.length lan.sender_free) 0;
  Array.fill lan.last_arrival 0 (Array.length lan.last_arrival) 0;
  match lan.rel with
  | Some rel ->
    Array.fill rel.next_seq 0 (Array.length rel.next_seq) 0;
    Array.fill rel.next_deliver 0 (Array.length rel.next_deliver) 0;
    Array.iter Hashtbl.reset rel.unacked;
    Array.iter Hashtbl.reset rel.parked;
    Fault.reset rel.plan
  | None -> ()
