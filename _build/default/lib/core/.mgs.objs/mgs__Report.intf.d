lib/core/report.mli: Format Mgs_cache Pstats State
