lib/core/api.mli: Mgs_engine Mgs_machine Mgs_svm State
