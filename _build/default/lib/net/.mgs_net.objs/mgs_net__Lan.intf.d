lib/net/lan.mli: Mgs_engine Mgs_machine Mgs_obs
