open State

type breakdown = { user : float; lock : float; barrier : float; mgs : float }

type outcome =
  | Completed
  | Partitioned of {
      src_ssmp : int;
      dst_ssmp : int;
      tag : string;
      retries : int;
    }

type t = {
  outcome : outcome;
  nprocs : int;
  cluster : int;
  runtime : int;
  breakdown : breakdown;
  per_proc_total : int array;
  pstats : Pstats.t;
  cache : Coherence.stats;
  lan_messages : int;
  lan_words : int;
  messages_by_tag : (string * int) list;
  lock_acquires : int;
  lock_hits : int;
  barrier_episodes : int;
  sim_events : int;
  peak_queue : int;
  wall_seconds : float;
}

let aggregate_cache m : Coherence.stats =
  let acc : Coherence.stats =
    {
      hits = 0;
      local_misses = 0;
      remote_misses = 0;
      misses_2party = 0;
      misses_3party = 0;
      software_extensions = 0;
    }
  in
  Array.iter
    (fun cache ->
      let s = Coherence.stats cache in
      acc.hits <- acc.hits + s.hits;
      acc.local_misses <- acc.local_misses + s.local_misses;
      acc.remote_misses <- acc.remote_misses + s.remote_misses;
      acc.misses_2party <- acc.misses_2party + s.misses_2party;
      acc.misses_3party <- acc.misses_3party + s.misses_3party;
      acc.software_extensions <- acc.software_extensions + s.software_extensions)
    m.caches;
  acc

let of_machine ?(wall_seconds = 0.) ?(outcome = Completed) m =
  let n = m.topo.Topology.nprocs in
  let mean bucket =
    let sum = Array.fold_left (fun acc cpu -> acc + Cpu.bucket_cycles cpu bucket) 0 m.cpus in
    float_of_int sum /. float_of_int n
  in
  let lan_stats = Lan.stats m.lan in
  (* transport counters live with the protocol counters: they are part
     of the same "what did the coherence traffic cost" story.  The sum
     merges the sharded engine's per-shard cells (a plain copy on a
     sequential machine). *)
  let pstats = pstats_sum m in
  let sc = sync_sum m in
  pstats.Pstats.net_retries <- lan_stats.Lan.retransmits;
  pstats.Pstats.net_dups <- lan_stats.Lan.dup_drops;
  pstats.Pstats.net_timeouts <- lan_stats.Lan.timeouts;
  {
    outcome;
    nprocs = n;
    cluster = m.topo.Topology.cluster;
    runtime = Array.fold_left (fun acc cpu -> max acc cpu.Cpu.finished_at) 0 m.cpus;
    breakdown =
      { user = mean Cpu.User; lock = mean Cpu.Lock; barrier = mean Cpu.Barrier; mgs = mean Cpu.Mgs };
    per_proc_total = Array.map Cpu.total_cycles m.cpus;
    pstats;
    cache = aggregate_cache m;
    lan_messages = lan_stats.Lan.messages;
    lan_words = lan_stats.Lan.data_words;
    messages_by_tag = Am.counts m.am;
    lock_acquires = sc.lock_acquires;
    lock_hits = sc.lock_hits;
    barrier_episodes = sc.barrier_episodes;
    sim_events = Sim.events_executed m.sim;
    peak_queue = Sim.peak_pending m.sim;
    wall_seconds;
  }

let total b = b.user +. b.lock +. b.barrier +. b.mgs

let lock_hit_ratio r =
  if r.lock_acquires = 0 then 1.0
  else float_of_int r.lock_hits /. float_of_int r.lock_acquires

let events_per_second r =
  if r.wall_seconds <= 0. then 0.
  else float_of_int r.sim_events /. r.wall_seconds

let pp_throughput ppf r =
  Format.fprintf ppf "events=%d peak_queue=%d wall=%.3fs" r.sim_events r.peak_queue
    r.wall_seconds;
  if r.wall_seconds > 0. then
    Format.fprintf ppf " (%.0f events/s)" (events_per_second r)

let completed r = r.outcome = Completed

let pp_outcome ppf = function
  | Completed -> Format.fprintf ppf "completed"
  | Partitioned { src_ssmp; dst_ssmp; tag; retries } ->
    Format.fprintf ppf "PARTITIONED (ssmp %d->%d, %s after %d retries)" src_ssmp dst_ssmp tag
      retries

let pp ppf r =
  Format.fprintf ppf
    "P=%d C=%d runtime=%d cycles | user=%.0f lock=%.0f barrier=%.0f mgs=%.0f | lan=%d msgs \
     %d words | locks %d/%d hits | %a | %a"
    r.nprocs r.cluster r.runtime r.breakdown.user r.breakdown.lock r.breakdown.barrier
    r.breakdown.mgs r.lan_messages r.lan_words r.lock_hits r.lock_acquires Pstats.pp r.pstats
    pp_throughput r;
  match r.outcome with
  | Completed -> ()
  | Partitioned _ as o -> Format.fprintf ppf " | %a" pp_outcome o
