type bucket = User | Lock | Barrier | Mgs

let bucket_name = function
  | User -> "User"
  | Lock -> "Lock"
  | Barrier -> "Barrier"
  | Mgs -> "MGS"

let all_buckets = [ User; Lock; Barrier; Mgs ]

let bucket_index = function User -> 0 | Lock -> 1 | Barrier -> 2 | Mgs -> 3

type t = {
  id : int;
  mutable clock : Mgs_engine.Sim.time;
  mutable busy_until : Mgs_engine.Sim.time;
  buckets : int array;
  mutable finished_at : Mgs_engine.Sim.time;
}

let create id = { id; clock = 0; busy_until = 0; buckets = Array.make 4 0; finished_at = 0 }

let advance cpu b n =
  if n < 0 then invalid_arg "Cpu.advance: negative cycles";
  cpu.clock <- cpu.clock + n;
  let i = bucket_index b in
  cpu.buckets.(i) <- cpu.buckets.(i) + n

let catch_up_to cpu b t = if cpu.clock < t then advance cpu b (t - cpu.clock)

let sync_busy cpu = catch_up_to cpu Mgs cpu.busy_until

let resume_charge cpu b t =
  catch_up_to cpu Mgs (min cpu.busy_until t);
  catch_up_to cpu b t

let occupy cpu ~at ~cost =
  if cost < 0 then invalid_arg "Cpu.occupy: negative cost";
  let start = max at cpu.busy_until in
  let fin = start + cost in
  cpu.busy_until <- fin;
  fin

let finish cpu = cpu.finished_at <- cpu.clock

let bucket_cycles cpu b = cpu.buckets.(bucket_index b)

let total_cycles cpu = Array.fold_left ( + ) 0 cpu.buckets
