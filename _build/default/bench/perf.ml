(* Tracked perf baseline for the simulator itself: host wall-clock,
   allocation, and simulator throughput (events/s) over a fixed workload
   matrix, written as machine-readable JSON for regression tracking.

     dune exec bench/perf.exe                     # full matrix -> BENCH_sim.json
     dune exec bench/perf.exe -- --quick -o f.json  # seconds, for `make perf-smoke`

   The numbers to watch release-over-release are events_per_s (up is
   good) and allocated_mb (down is good); sim_events and sim_cycles are
   simulation-deterministic, so a change there means the simulated
   machine itself changed, not the host. *)

module Sweep = Mgs_harness.Sweep

type row = {
  app : string;
  nprocs : int;
  cluster : int;
  wall_s : float;
  allocated_mb : float;
  sim_events : int;
  sim_cycles : int;
  events_per_s : float;
}

let measure ~nprocs ~cluster (name, w) =
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let pt = Sweep.run_point ~nprocs ~cluster w in
  let wall = Unix.gettimeofday () -. t0 in
  let allocated = Gc.allocated_bytes () -. a0 in
  let r = pt.Sweep.report in
  {
    app = name;
    nprocs;
    cluster;
    wall_s = wall;
    allocated_mb = allocated /. 1048576.;
    sim_events = r.Mgs.Report.sim_events;
    sim_cycles = r.Mgs.Report.runtime;
    events_per_s =
      (if wall > 0. then float_of_int r.Mgs.Report.sim_events /. wall else 0.);
  }

let json_of_rows ~quick rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"mgs-perf-1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"app\": %S, \"nprocs\": %d, \"cluster\": %d, \"wall_s\": %.6f, \
            \"allocated_mb\": %.3f, \"sim_events\": %d, \"sim_cycles\": %d, \
            \"events_per_s\": %.1f }%s\n"
           r.app r.nprocs r.cluster r.wall_s r.allocated_mb r.sim_events r.sim_cycles
           r.events_per_s
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let () =
  let quick = ref false in
  let out = ref "BENCH_sim.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | ("-o" | "--out") :: f :: rest ->
      out := f;
      parse rest
    | [ ("-o" | "--out") ] ->
      prerr_endline "perf: -o/--out expects a file name";
      exit 2
    | arg :: _ ->
      Printf.eprintf "perf: unknown argument %S (known: --quick, -o FILE)\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let apps =
    if !quick then
      [
        ("jacobi", Mgs_apps.Jacobi.workload Mgs_apps.Jacobi.tiny);
        ("water", Mgs_apps.Water.workload Mgs_apps.Water.tiny);
        ("tsp", Mgs_apps.Tsp.workload Mgs_apps.Tsp.tiny);
      ]
    else
      [
        ("jacobi", Mgs_apps.Jacobi.workload Mgs_apps.Jacobi.default);
        ("water", Mgs_apps.Water.workload Mgs_apps.Water.default);
        ("tsp", Mgs_apps.Tsp.workload Mgs_apps.Tsp.default);
      ]
  in
  let nprocs = if !quick then 8 else 16 in
  let clusters = if !quick then [ 1; 4 ] else [ 1; 4; 16 ] in
  let rows =
    List.concat_map
      (fun appw -> List.map (fun cluster -> measure ~nprocs ~cluster appw) clusters)
      apps
  in
  Mgs_util.Tableprint.print
    ~header:[ "app"; "C"; "wall (s)"; "alloc (MB)"; "sim events"; "events/s" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.app;
             string_of_int r.cluster;
             Printf.sprintf "%.3f" r.wall_s;
             Printf.sprintf "%.1f" r.allocated_mb;
             string_of_int r.sim_events;
             Printf.sprintf "%.0f" r.events_per_s;
           ])
         rows);
  let oc = open_out !out in
  output_string oc (json_of_rows ~quick:!quick rows);
  close_out oc;
  Printf.printf "wrote %s (%d measurements)\n" !out (List.length rows)
