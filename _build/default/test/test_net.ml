(* Tests for the LAN model and the active-message layer: fixed latency,
   sender occupancy, per-channel FIFO delivery, intra-SSMP fast path,
   and handler occupancy on the destination processor. *)

module Sim = Mgs_engine.Sim
module Lan = Mgs_net.Lan
module Am = Mgs_am.Am
module Costs = Mgs_machine.Costs
module Topo = Mgs_machine.Topology
module Cpu = Mgs_machine.Cpu

let costs = Costs.default

let test_lan_latency () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let arrived = ref (-1) in
  Lan.send lan ~src:0 ~dst:1 ~at:0 ~words:0 (fun t -> arrived := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "fixed latency" costs.Costs.lan.latency !arrived

let test_lan_dma () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let arrived = ref (-1) in
  Lan.send lan ~src:0 ~dst:1 ~at:0 ~words:256 (fun t -> arrived := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "latency + dma"
    (costs.Costs.lan.latency + (256 * costs.Costs.proto.dma_per_word))
    !arrived

let test_lan_sender_occupancy () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let t1 = ref 0 and t2 = ref 0 in
  Lan.send lan ~src:0 ~dst:1 ~at:0 ~words:0 (fun t -> t1 := t);
  Lan.send lan ~src:0 ~dst:2 ~at:0 ~words:0 (fun t -> t2 := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "second departs after occupancy" costs.Costs.lan.send_occupancy
    (!t2 - !t1)

let test_lan_fifo_no_overtake () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let order = ref [] in
  (* a bulk message followed by a short one on the same channel *)
  Lan.send lan ~src:0 ~dst:1 ~at:0 ~words:256 (fun _ -> order := `Bulk :: !order);
  Lan.send lan ~src:0 ~dst:1 ~at:1 ~words:0 (fun _ -> order := `Short :: !order);
  ignore (Sim.run sim ());
  Alcotest.(check bool) "bulk delivered first" true (List.rev !order = [ `Bulk; `Short ])

let test_lan_intra_fast_path () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  let arrived = ref (-1) in
  Lan.send lan ~src:2 ~dst:2 ~at:0 ~words:0 (fun t -> arrived := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "intra cost only" costs.Costs.proto.intra_msg !arrived;
  Alcotest.(check int) "not counted as LAN traffic" 0 (Lan.stats lan).Lan.messages

let test_lan_stats () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  Lan.send lan ~src:0 ~dst:1 ~at:0 ~words:10 (fun _ -> ());
  Lan.send lan ~src:1 ~dst:0 ~at:0 ~words:20 (fun _ -> ());
  ignore (Sim.run sim ());
  let s = Lan.stats lan in
  Alcotest.(check int) "messages" 2 s.Lan.messages;
  Alcotest.(check int) "words" 30 s.Lan.data_words;
  Lan.reset_stats lan;
  Alcotest.(check int) "reset" 0 (Lan.stats lan).Lan.messages

let test_lan_full_reset () =
  let sim = Sim.create () in
  let lan = Lan.create sim costs ~nssmps:4 in
  (* two warmup messages leave the sender occupied until 2x occupancy
     and push the channel's FIFO watermark past one latency *)
  Lan.send lan ~src:0 ~dst:1 ~at:0 ~words:0 (fun _ -> ());
  Lan.send lan ~src:0 ~dst:1 ~at:0 ~words:0 (fun _ -> ());
  Lan.reset lan;
  let arrived = ref (-1) in
  Lan.send lan ~src:0 ~dst:1 ~at:0 ~words:0 (fun t -> arrived := t);
  ignore (Sim.run sim ());
  (* with reset_stats alone the residual occupancy and watermark would
     push this to latency + occupancy *)
  Alcotest.(check int) "departs as if idle" costs.Costs.lan.latency !arrived;
  Alcotest.(check int) "counters zeroed" 1 (Lan.stats lan).Lan.messages

(* --- active messages -------------------------------------------------- *)

let make_am () =
  let sim = Sim.create () in
  let topo = Topo.create ~nprocs:8 ~cluster:4 in
  let cpus = Array.init 8 Cpu.create in
  let lan = Lan.create sim costs ~nssmps:2 in
  let am = Am.create sim costs topo ~lan ~cpus in
  (sim, am, cpus)

let test_am_handler_occupancy () =
  let sim, am, cpus = make_am () in
  let fin = ref (-1) in
  Am.post am ~tag:"t" ~src:0 ~dst:5 ~words:0 ~cost:100 (fun t -> fin := t);
  ignore (Sim.run sim ());
  let expected = costs.Costs.lan.latency + costs.Costs.proto.handler_dispatch + 100 in
  Alcotest.(check int) "completion time" expected !fin;
  Alcotest.(check int) "destination occupied" expected cpus.(5).Cpu.busy_until

let test_am_handlers_serialize () =
  let sim, am, cpus = make_am () in
  let fins = ref [] in
  Am.post am ~tag:"a" ~src:0 ~dst:5 ~words:0 ~cost:100 (fun t -> fins := t :: !fins);
  Am.post am ~tag:"b" ~src:1 ~dst:5 ~words:0 ~cost:100 (fun t -> fins := t :: !fins);
  ignore (Sim.run sim ());
  (match List.rev !fins with
  | [ f1; f2 ] ->
    Alcotest.(check int) "second handler queued behind first"
      (costs.Costs.proto.handler_dispatch + 100)
      (f2 - f1)
  | _ -> Alcotest.fail "expected two completions");
  ignore cpus

let test_am_intra_vs_inter () =
  let sim, am, _ = make_am () in
  let t_intra = ref 0 and t_inter = ref 0 in
  Am.post am ~tag:"i" ~src:0 ~dst:1 ~words:0 ~cost:0 (fun t -> t_intra := t);
  Am.post am ~tag:"x" ~src:0 ~dst:4 ~words:0 ~cost:0 (fun t -> t_inter := t);
  ignore (Sim.run sim ());
  Alcotest.(check bool) "intra much faster" true (!t_intra + 500 < !t_inter)

let test_am_counters () =
  let sim, am, _ = make_am () in
  Am.post am ~tag:"RREQ" ~src:0 ~dst:4 ~words:0 ~cost:0 (fun _ -> ());
  Am.post am ~tag:"RREQ" ~src:1 ~dst:4 ~words:0 ~cost:0 (fun _ -> ());
  Am.post am ~tag:"RACK" ~src:4 ~dst:0 ~words:0 ~cost:0 (fun _ -> ());
  ignore (Sim.run sim ());
  Alcotest.(check int) "tag count" 2 (Am.count am "RREQ");
  Alcotest.(check int) "other tag" 1 (Am.count am "RACK");
  Alcotest.(check int) "absent tag" 0 (Am.count am "INV");
  Alcotest.(check int) "total" 3 (Am.total_posted am)

let test_am_run_on () =
  let sim, am, cpus = make_am () in
  let fin = ref (-1) in
  Am.run_on am ~proc:3 ~at:50 ~cost:25 (fun t -> fin := t);
  ignore (Sim.run sim ());
  Alcotest.(check int) "occupied from at" 75 !fin;
  Alcotest.(check int) "busy_until" 75 cpus.(3).Cpu.busy_until

(* Property: per-channel arrival times never regress, whatever the mix
   of bulk and short messages. *)
let prop_lan_fifo =
  QCheck2.Test.make ~name:"per-channel arrivals are monotone" ~count:200
    QCheck2.Gen.(list (pair (int_bound 3) (int_bound 300)))
    (fun msgs ->
      let sim = Sim.create () in
      let lan = Lan.create sim costs ~nssmps:4 in
      let last = Hashtbl.create 8 in
      let ok = ref true in
      List.iter
        (fun (dst, words) ->
          Lan.send lan ~src:0 ~dst ~at:0 ~words (fun t ->
              let prev = Option.value ~default:(-1) (Hashtbl.find_opt last dst) in
              if t < prev then ok := false;
              Hashtbl.replace last dst t))
        msgs;
      ignore (Sim.run sim ());
      !ok)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_lan_fifo ]

let () =
  Alcotest.run "net"
    [
      ( "lan",
        [
          Alcotest.test_case "fixed latency" `Quick test_lan_latency;
          Alcotest.test_case "dma adds latency" `Quick test_lan_dma;
          Alcotest.test_case "sender occupancy" `Quick test_lan_sender_occupancy;
          Alcotest.test_case "fifo per channel" `Quick test_lan_fifo_no_overtake;
          Alcotest.test_case "intra fast path" `Quick test_lan_intra_fast_path;
          Alcotest.test_case "stats" `Quick test_lan_stats;
          Alcotest.test_case "full reset" `Quick test_lan_full_reset;
        ] );
      ( "am",
        [
          Alcotest.test_case "handler occupancy" `Quick test_am_handler_occupancy;
          Alcotest.test_case "handlers serialize" `Quick test_am_handlers_serialize;
          Alcotest.test_case "intra vs inter" `Quick test_am_intra_vs_inter;
          Alcotest.test_case "per-tag counters" `Quick test_am_counters;
          Alcotest.test_case "run_on" `Quick test_am_run_on;
        ] );
      ("properties", qsuite);
    ]
