(* Tests for the memory substrate: geometry arithmetic, the Munin
   twin/diff/merge machinery, and the allocator's home policies. *)

module Geom = Mgs_mem.Geom
module Pd = Mgs_mem.Pagedata
module Alloc = Mgs_mem.Allocator

let geom = Geom.create ()

let small = Geom.create ~page_words:16 ~line_words:4 ()

(* --- geometry ------------------------------------------------------- *)

let test_geom_defaults () =
  Alcotest.(check int) "page bytes" 1024 (Geom.page_bytes geom);
  Alcotest.(check int) "lines per page" 64 (Geom.lines_per_page geom);
  Alcotest.(check int) "word size" 4 Geom.bytes_per_word

let test_geom_arithmetic () =
  Alcotest.(check int) "vpn" 2 (Geom.vpn_of_addr small 35);
  Alcotest.(check int) "offset" 3 (Geom.offset_of_addr small 35);
  Alcotest.(check int) "addr of vpn" 32 (Geom.addr_of_vpn small 2);
  Alcotest.(check int) "line" 8 (Geom.line_of_addr small 35);
  Alcotest.(check int) "line in page" 0 (Geom.line_offset_in_page small 35)

let test_geom_validation () =
  Alcotest.check_raises "page not power of two"
    (Invalid_argument "Geom.create: page_words not a power of two") (fun () ->
      ignore (Geom.create ~page_words:100 ()));
  Alcotest.check_raises "line larger than page"
    (Invalid_argument "Geom.create: line larger than page") (fun () ->
      ignore (Geom.create ~page_words:4 ~line_words:8 ()))

let prop_geom_roundtrip =
  QCheck2.Test.make ~name:"vpn*page + offset = addr" ~count:500
    QCheck2.Gen.(int_bound 1_000_000)
    (fun addr ->
      Geom.addr_of_vpn geom (Geom.vpn_of_addr geom addr) + Geom.offset_of_addr geom addr
      = addr)

(* --- pagedata: twin / diff / merge ----------------------------------- *)

let random_page rng = Array.init small.Geom.page_words (fun _ -> Mgs_util.Rng.float rng 10.)

(* the store path marks every write on the twin's dirty bitmap *)
let store twin p i v =
  p.(i) <- v;
  Pd.mark twin i

let diff_list d =
  let acc = ref [] in
  Pd.iter_diff (fun i v -> acc := (i, v) :: !acc) d;
  List.rev !acc

(* floats compared bitwise so NaN payloads and -0.0 round-trip *)
let bits_testable =
  Alcotest.testable
    (fun ppf v -> Format.fprintf ppf "%h" v)
    (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)

(* generator covering the awkward payloads: NaN, -0.0, infinities *)
let gen_word =
  QCheck2.Gen.(
    frequency
      [
        (6, float_bound_exclusive 100.);
        (1, return nan);
        (1, return (-0.0));
        (1, return 0.0);
        (1, return infinity);
        (1, return neg_infinity);
        (1, return (Int64.float_of_bits 0x7ff0000000deadL));
        (* a non-default NaN payload *)
      ])

let test_diff_empty () =
  let p = Pd.create small in
  let twin = Pd.twin_of p in
  Alcotest.(check int) "no changes, empty diff" 0 (Pd.diff_size (Pd.diff p ~twin))

let test_diff_captures_changes () =
  let rng = Mgs_util.Rng.create ~seed:3 in
  let p = random_page rng in
  let twin = Pd.twin_of p in
  store twin p 2 42.0;
  store twin p 9 (-1.0);
  let d = Pd.diff p ~twin in
  Alcotest.(check int) "two words changed" 2 (Pd.diff_size d);
  Alcotest.(check int) "two runs" 2 (Pd.diff_runs d);
  Alcotest.(check (list (pair int (float 0.))))
    "diff contents" [ (2, 42.0); (9, -1.0) ] (diff_list d)

let test_diff_coalesces_runs () =
  let p = Pd.create small in
  let twin = Pd.twin_of p in
  List.iter (fun i -> store twin p i (float_of_int i)) [ 3; 4; 5; 9; 12; 13 ];
  let d = Pd.diff p ~twin in
  Alcotest.(check int) "six words" 6 (Pd.diff_size d);
  Alcotest.(check int) "three runs" 3 (Pd.diff_runs d)

let test_diff_ignores_clean_stores () =
  (* writing the same value back marks the word dirty but the bitwise
     comparison filters it out of the diff *)
  let rng = Mgs_util.Rng.create ~seed:5 in
  let p = random_page rng in
  let twin = Pd.twin_of p in
  store twin p 4 p.(4);
  store twin p 7 1234.5;
  let d = Pd.diff p ~twin in
  Alcotest.(check int) "dirty words" 2 (Pd.dirty_words twin);
  Alcotest.(check (list (pair int (float 0.)))) "only real change" [ (7, 1234.5) ]
    (diff_list d)

let test_retwin_clears () =
  let p = Pd.create small in
  let twin = Pd.twin_of p in
  store twin p 1 3.5;
  Alcotest.(check int) "one change" 1 (Pd.diff_size (Pd.diff p ~twin));
  Pd.retwin twin ~from:p;
  Alcotest.(check int) "bitmap cleared" 0 (Pd.dirty_words twin);
  Alcotest.(check int) "resynced, empty diff" 0 (Pd.diff_size (Pd.diff p ~twin));
  p.(1) <- 4.5;
  Pd.mark twin 1;
  Alcotest.(check (list (pair int (float 0.)))) "new delta against new base" [ (1, 4.5) ]
    (diff_list (Pd.diff p ~twin))

let test_diff_comparison_count () =
  (* the dirty bitmap means a diff of k touched words compares at most
     2k words (two sizing/filling passes), never the whole page *)
  let p = Pd.create geom in
  let twin = Pd.twin_of p in
  List.iter (fun i -> store twin p i 1.0) [ 3; 40; 200 ];
  Pd.count_comparisons := true;
  Pd.reset_comparisons ();
  let d = Pd.diff p ~twin in
  let dirty_cmps = Pd.comparisons () in
  Pd.reset_comparisons ();
  let d_full = Pd.diff_full p ~against:(Pd.twin_page twin) in
  let full_cmps = Pd.comparisons () in
  Pd.count_comparisons := false;
  Alcotest.(check int) "diff size" 3 (Pd.diff_size d);
  Alcotest.(check bool) "at most 2k comparisons" true (dirty_cmps <= 2 * 3);
  Alcotest.(check bool)
    (Printf.sprintf "far below page scan (%d < %d)" dirty_cmps full_cmps)
    true
    (dirty_cmps < full_cmps);
  Alcotest.(check int) "full scan touches every word twice" 512 full_cmps;
  Alcotest.(check (list (pair int (float 0.)))) "same deltas either way" (diff_list d_full)
    (diff_list d)

let prop_diff_merge_roundtrip =
  QCheck2.Test.make ~name:"apply_diff base (diff p twin) = p (incl. NaN, -0.0)" ~count:300
    QCheck2.Gen.(pair int (list (pair (int_bound 15) gen_word)))
    (fun (seed, writes) ->
      let rng = Mgs_util.Rng.create ~seed in
      let p = random_page rng in
      let twin = Pd.twin_of p in
      let base = Pd.copy p in
      List.iter (fun (i, v) -> store twin p i v) writes;
      let d = Pd.diff p ~twin in
      Pd.apply_diff base d;
      Pd.equal p base)

let prop_diff_matches_full_scan =
  QCheck2.Test.make ~name:"dirty-bitmap diff = full-scan diff when stores mark" ~count:300
    QCheck2.Gen.(pair int (list (pair (int_bound 15) gen_word)))
    (fun (seed, writes) ->
      let rng = Mgs_util.Rng.create ~seed in
      let p = random_page rng in
      let twin = Pd.twin_of p in
      List.iter (fun (i, v) -> store twin p i v) writes;
      let d = Pd.diff p ~twin in
      let d_full = Pd.diff_full p ~against:(Pd.twin_page twin) in
      List.for_all2
        (fun (i, a) (j, b) -> i = j && Int64.bits_of_float a = Int64.bits_of_float b)
        (diff_list d) (diff_list d_full))

let prop_disjoint_writers_merge =
  QCheck2.Test.make ~name:"disjoint writers' diffs merge commutatively" ~count:300
    QCheck2.Gen.(pair int (list (pair (int_bound 15) (float_bound_exclusive 9.))))
    (fun (seed, writes) ->
      let rng = Mgs_util.Rng.create ~seed in
      let master = random_page rng in
      (* writer A takes even offsets, writer B odd ones *)
      let a = Pd.copy master and b = Pd.copy master in
      let ta = Pd.twin_of a and tb = Pd.twin_of b in
      List.iter
        (fun (i, v) ->
          if i mod 2 = 0 then store ta a i (v +. 100.) else store tb b i (v +. 200.))
        writes;
      let da = Pd.diff a ~twin:ta and db = Pd.diff b ~twin:tb in
      let m1 = Pd.copy master and m2 = Pd.copy master in
      Pd.apply_diff m1 da;
      Pd.apply_diff m1 db;
      Pd.apply_diff m2 db;
      Pd.apply_diff m2 da;
      Pd.equal m1 m2)

let test_diff_bitwise () =
  (* -0.0 and 0.0 differ bitwise and must be propagated; NaN payloads
     survive the floatarray round trip *)
  let p = Pd.create small in
  let twin = Pd.twin_of p in
  store twin p 0 (-0.0);
  let payload = Int64.float_of_bits 0x7ff00000cafe01L in
  store twin p 5 payload;
  let d = Pd.diff p ~twin in
  Alcotest.(check int) "both detected" 2 (Pd.diff_size d);
  match diff_list d with
  | [ (0, z); (5, n) ] ->
    Alcotest.check bits_testable "negative zero kept" (-0.0) z;
    Alcotest.check bits_testable "NaN payload kept" payload n
  | l -> Alcotest.failf "unexpected diff shape (%d entries)" (List.length l)

let test_blit_mismatch () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Pagedata.blit: length mismatch")
    (fun () -> Pd.blit ~src:(Pd.create small) ~dst:(Pd.create geom))

(* --- allocator -------------------------------------------------------- *)

let test_alloc_rounds_to_pages () =
  let h = Alloc.create small ~nprocs:4 in
  let a = Alloc.alloc h ~words:5 ~home:(Alloc.On_proc 1) in
  let b = Alloc.alloc h ~words:17 ~home:(Alloc.On_proc 2) in
  Alcotest.(check int) "first at 0" 0 a;
  Alcotest.(check int) "second page-aligned" 16 b;
  Alcotest.(check int) "pages" 3 (Alloc.pages_allocated h);
  Alcotest.(check int) "words incl. rounding" 48 (Alloc.words_allocated h)

let test_alloc_on_proc () =
  let h = Alloc.create small ~nprocs:4 in
  ignore (Alloc.alloc h ~words:32 ~home:(Alloc.On_proc 3));
  Alcotest.(check int) "home vpn 0" 3 (Alloc.home_of_vpn h 0);
  Alcotest.(check int) "home vpn 1" 3 (Alloc.home_of_vpn h 1)

let test_alloc_interleaved () =
  let h = Alloc.create small ~nprocs:3 in
  ignore (Alloc.alloc h ~words:(16 * 5) ~home:Alloc.Interleaved);
  Alcotest.(check (list int)) "round robin homes" [ 0; 1; 2; 0; 1 ]
    (List.init 5 (fun v -> Alloc.home_of_vpn h v))

let test_alloc_blocked () =
  let h = Alloc.create small ~nprocs:2 in
  ignore (Alloc.alloc h ~words:(16 * 4) ~home:Alloc.Blocked);
  Alcotest.(check (list int)) "block homes" [ 0; 0; 1; 1 ]
    (List.init 4 (fun v -> Alloc.home_of_vpn h v))

let test_alloc_errors () =
  let h = Alloc.create small ~nprocs:2 in
  Alcotest.check_raises "zero words" (Invalid_argument "Allocator.alloc: words") (fun () ->
      ignore (Alloc.alloc h ~words:0 ~home:Alloc.Interleaved));
  Alcotest.check_raises "bad proc"
    (Invalid_argument "Allocator.alloc: processor out of range") (fun () ->
      ignore (Alloc.alloc h ~words:1 ~home:(Alloc.On_proc 2)));
  Alcotest.check_raises "unallocated page" Not_found (fun () ->
      ignore (Alloc.home_of_vpn h 99))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_geom_roundtrip;
      prop_diff_merge_roundtrip;
      prop_diff_matches_full_scan;
      prop_disjoint_writers_merge;
    ]

let () =
  Alcotest.run "mem"
    [
      ( "geom",
        [
          Alcotest.test_case "defaults" `Quick test_geom_defaults;
          Alcotest.test_case "arithmetic" `Quick test_geom_arithmetic;
          Alcotest.test_case "validation" `Quick test_geom_validation;
        ] );
      ( "pagedata",
        [
          Alcotest.test_case "empty diff" `Quick test_diff_empty;
          Alcotest.test_case "diff captures changes" `Quick test_diff_captures_changes;
          Alcotest.test_case "runs coalesce" `Quick test_diff_coalesces_runs;
          Alcotest.test_case "clean stores filtered" `Quick test_diff_ignores_clean_stores;
          Alcotest.test_case "retwin resyncs" `Quick test_retwin_clears;
          Alcotest.test_case "dirty bitmap limits comparisons" `Quick
            test_diff_comparison_count;
          Alcotest.test_case "bitwise comparison" `Quick test_diff_bitwise;
          Alcotest.test_case "blit length check" `Quick test_blit_mismatch;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "page rounding" `Quick test_alloc_rounds_to_pages;
          Alcotest.test_case "on-proc homes" `Quick test_alloc_on_proc;
          Alcotest.test_case "interleaved homes" `Quick test_alloc_interleaved;
          Alcotest.test_case "blocked homes" `Quick test_alloc_blocked;
          Alcotest.test_case "errors" `Quick test_alloc_errors;
        ] );
      ("properties", qsuite);
    ]
