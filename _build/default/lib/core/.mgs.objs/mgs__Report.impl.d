lib/core/report.ml: Am Array Coherence Cpu Format Lan Pstats Sim State Topology
