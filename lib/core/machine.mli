(** Assembly of one simulated DSSMP running the MGS system.

    Typical use:
    {[
      let cfg = Machine.config ~nprocs:32 ~cluster:8 () in
      let m = Machine.create cfg in
      let a = Machine.alloc m ~words:4096 ~home:Mgs_mem.Allocator.Blocked in
      (* initialize shared data outside simulated time *)
      for i = 0 to 4095 do Machine.poke m (a + i) 0.0 done;
      let report = Machine.run m (fun ctx -> ... Api.read ctx (a + i) ...) in
      Format.printf "%a@." Report.pp report
    ]} *)

type config = {
  nprocs : int;  (** P: total processors *)
  cluster : int;  (** C: processors per SSMP; must divide P *)
  page_words : int;
  line_words : int;
  costs : Mgs_machine.Costs.t;
  event_limit : int;  (** livelock guard for [run] *)
  features : State.features;  (** protocol feature toggles (ablations) *)
  protocol : State.protocol;  (** inter-SSMP protocol: MGS or the Ivy baseline *)
  shadow : bool;
      (** maintain a sequentially-consistent mirror and count reads that
          diverge from it — a protocol-correctness oracle valid for
          data-race-free programs *)
  tlb_entries : int option;  (** finite TLB capacity (FIFO); unbounded if [None] *)
  par_jobs : int;
      (** 0 = sequential event engine (default, the oracle).  [>= 1]
          selects the sharded engine — one event-queue shard per SSMP,
          executed on [par_jobs] OCaml domains (clamped to the SSMP
          count), synchronized conservatively on the inter-SSMP LAN
          latency.  Reports are byte-identical to the sequential engine
          for every [par_jobs]; only wall time differs. *)
  adapt : bool;
      (** adaptive per-page coherence ({!Mgs_cache.Adapt}): classify
          each page's sharing pattern at invalidation-epoch boundaries,
          switch it between the eager-RC multiple-writer, single-writer
          (twinless) and invalidate-on-read regimes, and migrate its
          home to a dominant writer's SSMP.  Off by default; when off,
          every export and counter is byte-identical to a machine
          without the adaptive layer. *)
}

val config :
  ?page_words:int ->
  ?line_words:int ->
  ?costs:Mgs_machine.Costs.t ->
  ?lan_latency:int ->
  ?event_limit:int ->
  ?shadow:bool ->
  ?features:State.features ->
  ?protocol:State.protocol ->
  ?tlb_entries:int ->
  ?par_jobs:int ->
  ?adapt:bool ->
  nprocs:int ->
  cluster:int ->
  unit ->
  config
(** Defaults: 1 KB pages (256 words), 16 B lines, {!Mgs_machine.Costs.default} with
    its LAN latency overridden by [lan_latency] when given; [par_jobs]
    defaults to 0 (sequential engine); [adapt] defaults to [false].
    @raise Invalid_argument if [par_jobs < 0], or if [par_jobs > 0] with
    a LAN latency below 1 cycle (the sharded engine needs a positive
    lookahead window), or if [adapt] is combined with a protocol that
    supports no adaptive regime (ivy). *)

type t = State.t

val create : config -> t

val sim : t -> Mgs_engine.Sim.t

val enable_trace : ?capacity:int -> t -> Mgs_obs.Trace.t
(** Install the structured event trace (bounded ring, default 65536
    events) and wire it into the message layer, the LAN, and every
    protocol engine.  Idempotent: a second call returns the existing
    trace.  Call before [run]; with no trace installed the emission
    sites cost one branch each. *)

val trace : t -> Mgs_obs.Trace.t option
(** The installed event trace, if any. *)

val enable_metrics : ?interval:int -> ?max_samples:int -> t -> Mgs_obs.Metrics.t
(** Install the simulated-clock metrics sampler (implies
    {!enable_trace}): per-shard engine progress ([engine.executed],
    [engine.xsends]), messages in flight, DUQ lengths, synchronization
    counters and parked waiters, pages per protocol state, servers in
    REL_IN_PROG, and open spans are snapshotted on a boundary grid
    every [interval] cycles (default 10000) into a bounded time-series.
    Every series is per-SSMP-cell and read shard-locally, so sampling
    runs race-free under the parallel engine and the merged export is
    byte-identical across job counts.  Idempotent.  Call before [run];
    the run's final partial interval is always captured. *)

val metrics : t -> Mgs_obs.Metrics.t option
(** The installed metrics sampler, if any. *)

val enable_engine_stats : t -> Mgs_obs.Metrics.t
(** Additionally sample the engine's nondeterministic self-profiling
    series — window count, outbox merges, window stalls, barrier wait
    wall time (all 0 on the sequential engine).  These depend on domain
    scheduling, so they are opt-in: without them the metrics export
    stays byte-identical across job counts.  Implies {!enable_metrics};
    call before [run]. *)

val set_faults : t -> ?seed:int -> Mgs_net.Fault.spec -> unit
(** Install a deterministic fault plan on the LAN (seed default 42):
    the reliable transport activates and the wire misbehaves per the
    spec, but protocol handlers still see exactly-once in-order
    delivery.  A spec with all rates zero uninstalls instead, so
    sweeping intensity through 0 degrades to the byte-identical
    faults-free machine.  If metrics are enabled (before this call),
    transport gauges ([net.retransmits], [net.dup_drops],
    [net.unacked]) are registered.  Call before [run]. *)

val clear_faults : t -> unit
(** Remove the fault plan; subsequent traffic uses the perfect wire. *)

val fault_plan : t -> Mgs_net.Fault.plan option

val enable_checker : ?capacity:int -> t -> Invariant.t
(** Install the event trace (if not already on) and attach the online
    invariant checker to it.  Inspect the returned checker after [run]
    with {!Invariant.count} / {!Invariant.pp}. *)

val reset_stats : t -> unit
(** Zero every statistics surface — protocol counters, message counts,
    LAN state ({!Mgs_net.Lan.reset}, including sender-occupancy
    horizons), cache-model counters, synchronization counters, and the
    shadow-mismatch count — so a measured phase that follows a warmup
    phase reports only its own activity.  The event trace, checker, and
    all protocol state are untouched. *)

val shadow_mismatches : t -> int
(** Number of reads that diverged from the shadow mirror (0 unless the
    [shadow] oracle is on and the protocol lost data). *)

val topo : t -> Mgs_machine.Topology.t
val costs : t -> Mgs_machine.Costs.t
val geom : t -> Mgs_mem.Geom.t

val alloc : t -> words:int -> home:Mgs_mem.Allocator.home_policy -> int
(** Reserve shared virtual memory (page-granular); returns the base
    word address.  Call before [run]. *)

val poke : t -> int -> float -> unit
(** Direct write to the home copy, outside simulated time — for
    initializing inputs before [run]. *)

val peek : t -> int -> float
(** Direct read of the home copy — for verifying outputs after [run]
    (valid once the program has performed its final release/barrier). *)

val run : t -> (Api.ctx -> unit) -> Report.t
(** Spawn one fiber per processor executing the SPMD body, run the
    simulation to completion, and summarize.  Under a fault plan, a
    message that exhausts its retries ends the run early with
    [outcome = Partitioned _] in the report instead of hanging.
    @raise Failure if any fiber deadlocks or the event limit trips. *)

val trace_messages : t -> (string -> unit) -> unit
(** Stream one line per delivered protocol message ("time tag src dst
    words") into the sink, for offline analysis of the message flow.
    Pass-through to {!Mgs_am.Am.set_recorder}; call before [run]. *)

val assert_quiescent : t -> unit
(** Check end-of-run protocol invariants: every delayed update queue is
    empty, no mapping lock is held, and every server entry is out of
    REL_IN_PROG with consistent directories.
    @raise Failure describing the first violation. *)
