type params = {
  nbodies : int;
  iters : int;
  theta : float;
  force_cycles : int;
  seed : int;
  lock : string;
}

let default =
  { nbodies = 128; iters = 2; theta = 0.6; force_cycles = 400; seed = 17; lock = "token" }

let tiny =
  { nbodies = 24; iters = 2; theta = 0.6; force_cycles = 400; seed = 5; lock = "token" }

(* the paper's full problem size *)
let paper =
  { nbodies = 2048; iters = 3; theta = 0.6; force_cycles = 400; seed = 17; lock = "token" }

let problem_size p = Printf.sprintf "%d bodies, %d iterations" p.nbodies p.iters

let dt = 0.01

(* Universe geometry: bodies start inside [0,4)^3; the fixed root cell
   is centred there with a wide margin so slow drift never escapes. *)
let root_center = (2.0, 2.0, 2.0)

let root_half = 16.0

let cell_stride = 16
(* cell layout: [0..7] children, [8..10] centre, [11] half size,
   [12..14] centre of mass, [15] mass.
   child encoding: 0 = empty, k+1 = cell k, -(b+1) = body b. *)

let init_positions p =
  let rng = Mgs_util.Rng.create ~seed:p.seed in
  Array.init (3 * p.nbodies) (fun _ -> Mgs_util.Rng.float rng 4.0)

let octant x y z cx cy cz =
  (if x >= cx then 1 else 0) lor (if y >= cy then 2 else 0) lor if z >= cz then 4 else 0

let sub_center cx cy cz half oct =
  let q = half /. 2.0 in
  ( (cx +. if oct land 1 <> 0 then q else -.q),
    (cy +. if oct land 2 <> 0 then q else -.q),
    (cz +. if oct land 4 <> 0 then q else -.q) )

(* Same bounded kernel as Water, so forces are smooth. *)
let pair_force xi yi zi xj yj zj mj =
  let dx = xj -. xi and dy = yj -. yi and dz = zj -. zi in
  let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 0.05 in
  let inv = mj /. (d2 *. sqrt d2) in
  (dx *. inv, dy *. inv, dz *. inv)

(* ------------------------------------------------------------------ *)
(* Sequential reference: the same algorithm on plain arrays.           *)
(* ------------------------------------------------------------------ *)

type ref_cell = {
  mutable children : int array; (* same encoding as shared layout *)
  rc_center : float * float * float;
  rc_half : float;
  mutable com : float * float * float;
  mutable cmass : float;
}

let seq_reference p =
  let n = p.nbodies in
  let pos = init_positions p in
  let vel = Array.make (3 * n) 0.0 in
  let cells = ref [||] in
  let ncells = ref 0 in
  let new_cell center half =
    if !ncells >= Array.length !cells then begin
      let bigger =
        Array.init
          (max 64 (2 * Array.length !cells))
          (fun i ->
            if i < !ncells then !cells.(i)
            else
              {
                children = Array.make 8 0;
                rc_center = (0., 0., 0.);
                rc_half = 0.;
                com = (0., 0., 0.);
                cmass = 0.;
              })
      in
      cells := bigger
    end;
    let id = !ncells in
    incr ncells;
    !cells.(id) <-
      { children = Array.make 8 0; rc_center = center; rc_half = half; com = (0., 0., 0.); cmass = 0. };
    id
  in
  let bx b = (pos.(3 * b), pos.((3 * b) + 1), pos.((3 * b) + 2)) in
  let rec insert cur b =
    let c = !cells.(cur) in
    let x, y, z = bx b in
    let cx, cy, cz = c.rc_center in
    let oct = octant x y z cx cy cz in
    match c.children.(oct) with
    | 0 -> c.children.(oct) <- -(b + 1)
    | ch when ch > 0 -> insert (ch - 1) b
    | ch ->
      let b2 = -ch - 1 in
      let sc = sub_center cx cy cz c.rc_half oct in
      let nc = new_cell sc (c.rc_half /. 2.0) in
      let x2, y2, z2 = bx b2 in
      let scx, scy, scz = sc in
      let oct2 = octant x2 y2 z2 scx scy scz in
      !cells.(nc).children.(oct2) <- -(b2 + 1);
      c.children.(oct) <- nc + 1;
      insert nc b
  in
  let rec compute_com cur =
    let c = !cells.(cur) in
    let mx = ref 0. and my = ref 0. and mz = ref 0. and mm = ref 0. in
    for o = 0 to 7 do
      match c.children.(o) with
      | 0 -> ()
      | ch when ch > 0 ->
        compute_com (ch - 1);
        let sx, sy, sz = !cells.(ch - 1).com in
        let sm = !cells.(ch - 1).cmass in
        mx := !mx +. (sx *. sm);
        my := !my +. (sy *. sm);
        mz := !mz +. (sz *. sm);
        mm := !mm +. sm
      | ch ->
        let b = -ch - 1 in
        let x, y, z = bx b in
        mx := !mx +. x;
        my := !my +. y;
        mz := !mz +. z;
        mm := !mm +. 1.0
    done;
    c.cmass <- !mm;
    c.com <- (if !mm > 0. then (!mx /. !mm, !my /. !mm, !mz /. !mm) else c.rc_center)
  in
  let rec force cur b (ax, ay, az) =
    let c = !cells.(cur) in
    let fold acc o =
      match c.children.(o) with
      | 0 -> acc
      | ch when ch > 0 ->
        let sub = !cells.(ch - 1) in
        let x, y, z = bx b in
        let sx, sy, sz = sub.com in
        let dx = sx -. x and dy = sy -. y and dz = sz -. z in
        let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        let size = 2.0 *. sub.rc_half in
        if size *. size < p.theta *. p.theta *. d2 then begin
          let fx, fy, fz = pair_force x y z sx sy sz sub.cmass in
          let ax, ay, az = acc in
          (ax +. fx, ay +. fy, az +. fz)
        end
        else force (ch - 1) b acc
      | ch ->
        let b2 = -ch - 1 in
        if b2 = b then acc
        else begin
          let x, y, z = bx b in
          let x2, y2, z2 = bx b2 in
          let fx, fy, fz = pair_force x y z x2 y2 z2 1.0 in
          let ax, ay, az = acc in
          (ax +. fx, ay +. fy, az +. fz)
        end
    in
    List.fold_left fold (ax, ay, az) [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  for _ = 1 to p.iters do
    cells := [||];
    ncells := 0;
    let root = new_cell root_center root_half in
    for b = 0 to n - 1 do
      insert root b
    done;
    compute_com root;
    let accs = Array.make (3 * n) 0.0 in
    for b = 0 to n - 1 do
      let ax, ay, az = force root b (0., 0., 0.) in
      accs.(3 * b) <- ax;
      accs.((3 * b) + 1) <- ay;
      accs.((3 * b) + 2) <- az
    done;
    for i = 0 to (3 * n) - 1 do
      vel.(i) <- vel.(i) +. (dt *. accs.(i));
      pos.(i) <- pos.(i) +. (dt *. vel.(i))
    done
  done;
  pos

(* ------------------------------------------------------------------ *)
(* Parallel version on the simulated machine.                          *)
(* ------------------------------------------------------------------ *)

let workload p =
  let n = p.nbodies in
  let cap = 16 * n in
  let prepare m =
    let open Mgs.Api in
    let pos = Mgs.Machine.alloc m ~words:(3 * n) ~home:Mgs_mem.Allocator.Blocked in
    let vel = Mgs.Machine.alloc m ~words:(3 * n) ~home:Mgs_mem.Allocator.Blocked in
    let pool =
      Mgs.Machine.alloc m ~words:(cap * cell_stride) ~home:Mgs_mem.Allocator.Blocked
    in
    Array.iteri (fun i v -> Mgs.Machine.poke m (pos + i) v) (init_positions p);
    let nprocs = (Mgs.Machine.topo m).Mgs_machine.Topology.nprocs in
    let per = (n + nprocs - 1) / nprocs in
    let chunk = cap / nprocs in
    let topo = Mgs.Machine.topo m in
    let chunk0 = cap / nprocs in
    let cell_lock =
      Array.init cap (fun i ->
          (* home a cell's lock with the SSMP of the processor whose
             pool chunk holds the cell *)
          let owner = min (nprocs - 1) (i / max 1 chunk0) in
          Mgs_sync.Locks.make m ~home:(Mgs_machine.Topology.ssmp_of_proc topo owner) p.lock)
    in
    let bar = Mgs_sync.Barrier.create m in
    let cell_base idx = pool + (idx * cell_stride) in
    let body ctx =
      let me = proc ctx in
      let b0 = me * per and b1 = min (n - 1) (((me + 1) * per) - 1) in
      let cursor = ref (if me = 0 then 1 else me * chunk) in
      let rd a = read ctx ~kind:Mgs_svm.Translate.Pointer a in
      let wr a v = write ctx ~kind:Mgs_svm.Translate.Pointer a v in
      let body_pos b = (read ctx (pos + (3 * b)), read ctx (pos + (3 * b) + 1), read ctx (pos + (3 * b) + 2)) in
      (* allocate and initialize a fresh (still private) cell *)
      let new_cell (cx, cy, cz) half =
        if !cursor >= min cap ((me + 1) * chunk) then
          failwith "barnes: cell pool chunk exhausted";
        let idx = !cursor in
        incr cursor;
        let base = cell_base idx in
        for o = 0 to 7 do
          wr (base + o) 0.0
        done;
        wr (base + 8) cx;
        wr (base + 9) cy;
        wr (base + 10) cz;
        wr (base + 11) half;
        idx
      in
      let insert b =
        let x, y, z = body_pos b in
        let cur = ref 0 in
        let inserted = ref false in
        while not !inserted do
          let base = cell_base !cur in
          Mgs_sync.Locks.acquire ctx cell_lock.(!cur);
          let cx = rd (base + 8) and cy = rd (base + 9) and cz = rd (base + 10) in
          let half = rd (base + 11) in
          let oct = octant x y z cx cy cz in
          let ch = int_of_float (rd (base + oct)) in
          if ch = 0 then begin
            wr (base + oct) (float_of_int (-(b + 1)));
            Mgs_sync.Locks.release ctx cell_lock.(!cur);
            inserted := true
          end
          else if ch > 0 then begin
            Mgs_sync.Locks.release ctx cell_lock.(!cur);
            cur := ch - 1
          end
          else begin
            (* split: push the resident body one level down *)
            let b2 = -ch - 1 in
            let ((scx, scy, scz) as sc) = sub_center cx cy cz half oct in
            let nc = new_cell sc (half /. 2.0) in
            let x2, y2, z2 = body_pos b2 in
            let oct2 = octant x2 y2 z2 scx scy scz in
            wr (cell_base nc + oct2) (float_of_int (-(b2 + 1)));
            wr (base + oct) (float_of_int (nc + 1));
            Mgs_sync.Locks.release ctx cell_lock.(!cur);
            cur := nc
          end
        done
      in
      (* [recurse = false] combines already-computed child COMs only —
         used for the root after the parallel per-octant pass. *)
      let rec compute_com ?(recurse = true) cur =
        let base = cell_base cur in
        let mx = ref 0. and my = ref 0. and mz = ref 0. and mm = ref 0. in
        for o = 0 to 7 do
          let ch = int_of_float (rd (base + o)) in
          if ch > 0 then begin
            if recurse then compute_com (ch - 1);
            let sb = cell_base (ch - 1) in
            let sm = rd (sb + 15) in
            mx := !mx +. (rd (sb + 12) *. sm);
            my := !my +. (rd (sb + 13) *. sm);
            mz := !mz +. (rd (sb + 14) *. sm);
            mm := !mm +. sm
          end
          else if ch < 0 then begin
            let x, y, z = body_pos (-ch - 1) in
            mx := !mx +. x;
            my := !my +. y;
            mz := !mz +. z;
            mm := !mm +. 1.0
          end
        done;
        let mm' = !mm in
        wr (base + 15) mm';
        if mm' > 0. then begin
          wr (base + 12) (!mx /. mm');
          wr (base + 13) (!my /. mm');
          wr (base + 14) (!mz /. mm')
        end
        else begin
          wr (base + 12) (rd (base + 8));
          wr (base + 13) (rd (base + 9));
          wr (base + 14) (rd (base + 10))
        end
      in
      let rec force cur b acc =
        let base = cell_base cur in
        let acc = ref acc in
        for o = 0 to 7 do
          let ch = int_of_float (rd (base + o)) in
          if ch > 0 then begin
            let sb = cell_base (ch - 1) in
            let x, y, z = body_pos b in
            let sx = rd (sb + 12) and sy = rd (sb + 13) and sz = rd (sb + 14) in
            let dx = sx -. x and dy = sy -. y and dz = sz -. z in
            let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
            let size = 2.0 *. rd (sb + 11) in
            if size *. size < p.theta *. p.theta *. d2 then begin
              compute ctx p.force_cycles;
              let fx, fy, fz = pair_force x y z sx sy sz (rd (sb + 15)) in
              let ax, ay, az = !acc in
              acc := (ax +. fx, ay +. fy, az +. fz)
            end
            else acc := force (ch - 1) b !acc
          end
          else if ch < 0 && -ch - 1 <> b then begin
            compute ctx p.force_cycles;
            let x, y, z = body_pos b in
            let x2, y2, z2 = body_pos (-ch - 1) in
            let fx, fy, fz = pair_force x y z x2 y2 z2 1.0 in
            let ax, ay, az = !acc in
            acc := (ax +. fx, ay +. fy, az +. fz)
          end
        done;
        !acc
      in
      for _ = 1 to p.iters do
        (* reset: proc 0 reinitializes the root; everyone resets cursors *)
        cursor := (if me = 0 then 1 else me * chunk);
        if me = 0 then begin
          let base = cell_base 0 in
          for o = 0 to 7 do
            wr (base + o) 0.0
          done;
          let cx, cy, cz = root_center in
          wr (base + 8) cx;
          wr (base + 9) cy;
          wr (base + 10) cz;
          wr (base + 11) root_half
        end;
        Mgs_sync.Barrier.wait ctx bar;
        (* parallel tree build *)
        for b = b0 to b1 do
          insert b
        done;
        Mgs_sync.Barrier.wait ctx bar;
        (* bottom-up centres of mass: one proc per root octant *)
        if me < 8 then begin
          let root = cell_base 0 in
          for o = 0 to 7 do
            if o mod min 8 nprocs = me then begin
              let ch = int_of_float (rd (root + o)) in
              if ch > 0 then compute_com (ch - 1)
            end
          done
        end;
        Mgs_sync.Barrier.wait ctx bar;
        (* root's own centre of mass from the children's results *)
        if me = 0 then compute_com ~recurse:false 0;
        Mgs_sync.Barrier.wait ctx bar;
        (* forces on owned bodies, then motion *)
        let accs = Array.make (3 * max 0 ((b1 - b0) + 1)) 0.0 in
        for b = b0 to b1 do
          let ax, ay, az = force 0 b (0., 0., 0.) in
          accs.(3 * (b - b0)) <- ax;
          accs.((3 * (b - b0)) + 1) <- ay;
          accs.((3 * (b - b0)) + 2) <- az
        done;
        Mgs_sync.Barrier.wait ctx bar;
        for b = b0 to b1 do
          for c = 0 to 2 do
            let a = accs.((3 * (b - b0)) + c) in
            let v = read ctx (vel + (3 * b) + c) +. (dt *. a) in
            write ctx (vel + (3 * b) + c) v;
            write ctx (pos + (3 * b) + c) (read ctx (pos + (3 * b) + c) +. (dt *. v))
          done
        done;
        Mgs_sync.Barrier.wait ctx bar
      done
    in
    let check m =
      let expect = seq_reference p in
      for i = 0 to (3 * n) - 1 do
        let got = Mgs.Machine.peek m (pos + i) in
        let want = expect.(i) in
        let err = Float.abs (got -. want) /. Float.max 1.0 (Float.abs want) in
        if err > 1e-9 then
          failwith (Printf.sprintf "barnes mismatch at %d: got %.17g want %.17g" i got want)
      done
    in
    (body, check)
  in
  { Mgs_harness.Sweep.name = "Barnes-Hut"; prepare }
