(** One face for the three coherence engines.

    Each engine is packaged behind {!PROTOCOL} (with explicit no-ops
    where an engine lacks a hook) and registered by name, so dispatch
    sites treat protocols uniformly and harnesses select them with a
    string — adding an engine is one {!register} call, not a variant
    case in a dozen matches. *)

module type PROTOCOL = sig
  val name : string
  (** Registry key; what [--protocol] and sweep specs say. *)

  val proto : State.protocol
  (** The [State] tag a machine running this engine carries. *)

  val fault : State.t -> proc:int -> vpn:int -> write:bool -> unit
  (** Resolve an access fault on [vpn]; fiber context. *)

  val release_all : State.t -> proc:int -> unit
  (** Release-side flush (delayed updates / diffs); fiber context. *)

  val publish : State.t -> proc:int -> into:(int, int) Hashtbl.t -> unit
  (** Deposit write notices into a synchronization object at release. *)

  val apply_notices : State.t -> proc:int -> (int, int) Hashtbl.t -> unit
  (** Consume write notices at acquire (lazy invalidation). *)
end

val register : (module PROTOCOL) -> unit
(** @raise Invalid_argument if the name is taken. *)

val find : string -> (module PROTOCOL) option

val of_name : string -> (module PROTOCOL)
(** @raise Invalid_argument on an unknown name, listing the known ones. *)

val proto_of_name : string -> State.protocol
(** The [State] tag for a registered name.
    @raise Invalid_argument on an unknown name. *)

val name_of : State.protocol -> string
(** Inverse of {!proto_of_name} for the built-in engines. *)

val names : unit -> string list
(** Registered protocol names, sorted. *)

val impl_of : State.protocol -> (module PROTOCOL)
(** The engine behind a [State] tag — a direct match, no table lookup,
    so fault-path dispatch stays cheap. *)
