type t = { page_words : int; line_words : int }

let bytes_per_word = 4

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(page_words = 256) ?(line_words = 4) () =
  if not (is_pow2 page_words) then invalid_arg "Geom.create: page_words not a power of two";
  if not (is_pow2 line_words) then invalid_arg "Geom.create: line_words not a power of two";
  if line_words > page_words then invalid_arg "Geom.create: line larger than page";
  { page_words; line_words }

let page_bytes g = g.page_words * bytes_per_word

let vpn_of_addr g addr = addr / g.page_words

let offset_of_addr g addr = addr land (g.page_words - 1)

let addr_of_vpn g vpn = vpn * g.page_words

let line_of_addr g addr = addr / g.line_words

let lines_per_page g = g.page_words / g.line_words

let line_offset_in_page g addr = offset_of_addr g addr / g.line_words
