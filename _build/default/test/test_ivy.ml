(* Tests for the Ivy (sequentially-consistent single-writer) baseline
   protocol: invariants, ownership migration, and full application runs
   under the alternative protocol. *)

open Mgs.State

let make ?(nprocs = 4) ?(cluster = 2) ?(lan = 500) () =
  let cfg =
    Mgs.Machine.config ~nprocs ~cluster ~lan_latency:lan ~protocol:Protocol_ivy ~shadow:true ()
  in
  Mgs.Machine.create cfg

let alloc_page m =
  let topo = Mgs.Machine.topo m in
  Mgs.Machine.alloc m ~words:4 ~home:(Mgs_mem.Allocator.On_proc (topo.Topology.nprocs - 1))

let test_single_owner_invariant () =
  let m = make ~nprocs:8 ~cluster:2 () in
  let page = alloc_page m in
  let bar = Mgs_sync.Barrier.create m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         (* every processor takes a turn writing, with barriers between
            turns so the program is DRF *)
         for turn = 0 to 7 do
           if p = turn then Mgs.Api.write ctx page (float_of_int turn);
           Mgs_sync.Barrier.wait ctx bar
         done));
  Mgs.Machine.assert_quiescent m;
  Alcotest.(check (float 0.)) "last writer wins" 7.0 (Mgs.Machine.peek m page);
  Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m);
  (* at most one SSMP may ever remain in write_dir *)
  let se = get_sentry m (Geom.vpn_of_addr m.geom page) in
  Alcotest.(check bool) "single owner" true (Bitset.cardinal se.s_write_dir <= 1)

let test_write_invalidates_readers () =
  let m = make ~nprocs:4 ~cluster:1 () in
  let page = alloc_page m in
  Mgs.Machine.poke m page 1.0;
  let bar = Mgs_sync.Barrier.create m in
  let seen = Array.make 4 0.0 in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         ignore (Mgs.Api.read ctx page);
         Mgs_sync.Barrier.wait ctx bar;
         if p = 0 then Mgs.Api.write ctx page 2.0;
         Mgs_sync.Barrier.wait ctx bar;
         seen.(p) <- Mgs.Api.read ctx page;
         Mgs_sync.Barrier.wait ctx bar));
  Array.iteri
    (fun p v -> Alcotest.(check (float 0.)) (Printf.sprintf "proc %d" p) 2.0 v)
    seen;
  Alcotest.(check bool) "invalidations were sent" true (m.pstats.invals > 0);
  Alcotest.(check int) "no shadow divergence" 0 (Mgs.Machine.shadow_mismatches m)

let test_read_downgrades_owner () =
  let m = make ~nprocs:4 ~cluster:2 ~lan:200 () in
  let page = alloc_page m in
  let got = ref 0.0 in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         match Mgs.Api.proc ctx with
         | 0 -> Mgs.Api.write ctx page 5.0
         | 2 ->
           (* read well after the write: the owner gets recalled *)
           Mgs.Api.idle_until ctx 300_000;
           got := Mgs.Api.read ctx page
         | _ -> ()));
  Alcotest.(check (float 0.)) "recalled value" 5.0 !got;
  Alcotest.(check bool) "a recall happened" true (m.pstats.one_winvals > 0);
  (* the former owner keeps a read copy *)
  let se = get_sentry m (Geom.vpn_of_addr m.geom page) in
  Alcotest.(check bool) "owner downgraded" true (Bitset.is_empty se.s_write_dir);
  Alcotest.(check bool) "both are readers" true (Bitset.cardinal se.s_read_dir = 2)

let test_no_release_machinery () =
  let m = make () in
  let page = alloc_page m in
  ignore
    (Mgs.Machine.run m (fun ctx ->
         if Mgs.Api.proc ctx = 0 then begin
           Mgs.Api.write ctx page 1.0;
           (* release is a no-op under sequential consistency *)
           Mgs.Api.release ctx
         end));
  Alcotest.(check int) "no RELs" 0 m.pstats.releases;
  Alcotest.(check int) "no diffs" 0 m.pstats.diffs;
  (* ... and quiescence holds without any flush *)
  Mgs.Machine.assert_quiescent m

let test_apps_run_under_ivy () =
  (* sequential consistency is stronger than RC: every application must
     still verify against its reference *)
  let check w =
    List.iter
      (fun (nprocs, cluster) ->
        let cfg =
          Mgs.Machine.config ~nprocs ~cluster ~lan_latency:800 ~protocol:Protocol_ivy ()
        in
        let m = Mgs.Machine.create cfg in
        let body, verify = w.Mgs_harness.Sweep.prepare m in
        ignore (Mgs.Machine.run m body);
        Mgs.Machine.assert_quiescent m;
        verify m)
      [ (4, 2); (4, 4) ]
  in
  check (Mgs_apps.Jacobi.workload Mgs_apps.Jacobi.tiny);
  check (Mgs_apps.Water.workload Mgs_apps.Water.tiny);
  check (Mgs_apps.Tsp.workload Mgs_apps.Tsp.tiny);
  check (Mgs_apps.Lu.workload Mgs_apps.Lu.tiny)

(* The motivating comparison: under write-write false sharing the Ivy
   page ping-pongs while MGS's multiple-writer protocol lets both SSMPs
   write concurrently and merge diffs. *)
let test_false_sharing_pingpong () =
  let runtime protocol =
    let cfg = Mgs.Machine.config ~nprocs:4 ~cluster:2 ~lan_latency:1000 ~protocol () in
    let m = Mgs.Machine.create cfg in
    let page = Mgs.Machine.alloc m ~words:8 ~home:(Mgs_mem.Allocator.On_proc 0) in
    let bar = Mgs_sync.Barrier.create m in
    let report =
      Mgs.Machine.run m (fun ctx ->
          let p = Mgs.Api.proc ctx in
          (* procs 0 (SSMP 0) and 2 (SSMP 1) write disjoint words of
             the same page in interleaved rounds: under Ivy the page's
             ownership must ping-pong every round, under MGS both SSMPs
             hold write copies simultaneously *)
          if p = 0 || p = 2 then
            for i = 1 to 50 do
              Mgs.Api.idle_until ctx (i * 40_000);
              Mgs.Api.write ctx (page + (p / 2)) (float_of_int i)
            done;
          Mgs_sync.Barrier.wait ctx bar)
    in
    Mgs.Machine.assert_quiescent m;
    report.Mgs.Report.lan_messages
  in
  (* the run is paced by idle time, so compare protocol traffic: Ivy
     transfers ownership every round, MGS lets both SSMPs keep write
     copies and merges diffs only at the final barrier *)
  let ivy = runtime Protocol_ivy in
  let mgs = runtime Protocol_mgs in
  Alcotest.(check bool)
    (Printf.sprintf "Ivy ping-pongs, MGS does not (%d msgs > 5 * %d msgs)" ivy mgs)
    true
    (ivy > 5 * mgs)

let run_random_drf protocol seed =
  (* mirror of the stress-test program shape, under the Ivy protocol *)
  let nprocs = 8 and cluster = 2 in
  let cfg =
    Mgs.Machine.config ~page_words:16 ~nprocs ~cluster ~lan_latency:700 ~protocol
      ~shadow:true ()
  in
  let m = Mgs.Machine.create cfg in
  let region = Mgs.Machine.alloc m ~words:24 ~home:Mgs_mem.Allocator.Interleaved in
  let lock = Mgs_sync.Lock.create m () in
  let bar = Mgs_sync.Barrier.create m in
  let expected = Array.make 24 0.0 in
  let plan =
    Array.init nprocs (fun p ->
        let rng = Mgs_util.Rng.create ~seed:(seed + (p * 131)) in
        Array.init 12 (fun _ -> Mgs_util.Rng.int rng 24))
  in
  Array.iter (Array.iter (fun w -> expected.(w) <- expected.(w) +. 1.0)) plan;
  ignore
    (Mgs.Machine.run m (fun ctx ->
         let p = Mgs.Api.proc ctx in
         Array.iteri
           (fun step w ->
             Mgs_sync.Lock.acquire ctx lock;
             Mgs.Api.write ctx (region + w) (Mgs.Api.read ctx (region + w) +. 1.0);
             Mgs_sync.Lock.release ctx lock;
             if step mod 4 = 3 then Mgs_sync.Barrier.wait ctx bar)
           plan.(p);
         Mgs_sync.Barrier.wait ctx bar));
  Mgs.Machine.assert_quiescent m;
  if Mgs.Machine.shadow_mismatches m <> 0 then failwith "shadow divergence";
  Array.iteri
    (fun w want ->
      let got = Mgs.Machine.peek m (region + w) in
      if got <> want then failwith (Printf.sprintf "word %d: got %g want %g" w got want))
    expected

let prop_ivy_random_drf =
  QCheck2.Test.make ~name:"random DRF programs under Ivy" ~count:25
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      run_random_drf Protocol_ivy seed;
      true)

let () =
  Alcotest.run "ivy"
    [
      ( "protocol",
        [
          Alcotest.test_case "single owner" `Quick test_single_owner_invariant;
          Alcotest.test_case "write invalidates readers" `Quick test_write_invalidates_readers;
          Alcotest.test_case "read downgrades owner" `Quick test_read_downgrades_owner;
          Alcotest.test_case "no release machinery" `Quick test_no_release_machinery;
        ] );
      ( "applications",
        [
          Alcotest.test_case "apps verify under Ivy" `Quick test_apps_run_under_ivy;
          Alcotest.test_case "false sharing ping-pong" `Quick test_false_sharing_pingpong;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_ivy_random_drf ]);
    ]
