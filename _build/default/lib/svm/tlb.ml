type mode = Ro | Rw

type t = {
  map : (int, mode) Hashtbl.t;
  capacity : int option;
  fifo : int Queue.t; (* insertion order, pruned lazily *)
  mutable fills : int;
  mutable invalidations : int;
  mutable evictions : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Tlb.create: capacity"
  | _ -> ());
  {
    map = Hashtbl.create 64;
    capacity;
    fifo = Queue.create ();
    fills = 0;
    invalidations = 0;
    evictions = 0;
  }

let lookup t ~vpn = Hashtbl.find_opt t.map vpn

(* FIFO eviction: pop queued candidates until one still resides. *)
let rec evict_one t =
  match Queue.take_opt t.fifo with
  | None -> ()
  | Some victim ->
    if Hashtbl.mem t.map victim then begin
      Hashtbl.remove t.map victim;
      t.evictions <- t.evictions + 1
    end
    else evict_one t

let fill t ~vpn ~mode =
  t.fills <- t.fills + 1;
  let fresh = not (Hashtbl.mem t.map vpn) in
  if fresh then begin
    (match t.capacity with
    | Some cap when Hashtbl.length t.map >= cap -> evict_one t
    | _ -> ());
    Queue.add vpn t.fifo
  end;
  Hashtbl.replace t.map vpn mode

let invalidate t ~vpn =
  if Hashtbl.mem t.map vpn then begin
    t.invalidations <- t.invalidations + 1;
    Hashtbl.remove t.map vpn
  end

let entries t = Hashtbl.length t.map

let clear t =
  Hashtbl.reset t.map;
  Queue.clear t.fifo

let fills t = t.fills

let invalidations t = t.invalidations

let evictions t = t.evictions
