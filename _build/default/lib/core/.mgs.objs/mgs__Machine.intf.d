lib/core/machine.mli: Api Mgs_engine Mgs_machine Mgs_mem Report State
