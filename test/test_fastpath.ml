(* The per-reference fast path — Api's last-page cache plus the flat
   TLB/directory — is a pure optimization: with [Api.set_fast_path
   false] every access resolves through the full slow path (TLB grant
   check, page table, directory), and the simulated results must be
   bit-identical.  These tests run the same workload both ways, across
   all three protocols, and compare runtime, event count, and memory. *)

module Sweep = Mgs_harness.Sweep

let protocols =
  [
    ("mgs", Mgs.State.Protocol_mgs);
    ("ivy", Mgs.State.Protocol_ivy);
    ("hlrc", Mgs.State.Protocol_hlrc);
  ]

(* Run [w] on a fresh machine and summarize everything observable:
   runtime, executed events, and a fingerprint of the shared heap. *)
let run ~fast ~protocol ~nprocs ~cluster (w : Sweep.workload) =
  Mgs.Api.set_fast_path fast;
  Fun.protect ~finally:(fun () -> Mgs.Api.set_fast_path true) @@ fun () ->
  let cfg = Mgs.Machine.config ~nprocs ~cluster ~protocol () in
  let m = Mgs.Machine.create cfg in
  let body, wcheck = w.Sweep.prepare m in
  let r = Mgs.Machine.run m body in
  Mgs.Machine.assert_quiescent m;
  wcheck m;
  let heap = ref 0 in
  let words = Mgs_mem.Allocator.words_allocated m.Mgs.State.heap in
  for a = 0 to min 1023 (words - 1) do
    heap := (!heap * 31) + Hashtbl.hash (Mgs.Machine.peek m a)
  done;
  (r.Mgs.Report.runtime, r.Mgs.Report.sim_events, !heap)

let check_equal name slow fast =
  let (rt_s, ev_s, h_s) = slow and (rt_f, ev_f, h_f) = fast in
  Alcotest.(check int) (name ^ ": runtime") rt_s rt_f;
  Alcotest.(check int) (name ^ ": sim events") ev_s ev_f;
  Alcotest.(check int) (name ^ ": heap fingerprint") h_s h_f

let test_jacobi_all_protocols () =
  let w = Mgs_apps.Jacobi.workload Mgs_apps.Jacobi.tiny in
  List.iter
    (fun (pname, protocol) ->
      List.iter
        (fun cluster ->
          let name = Printf.sprintf "%s C=%d" pname cluster in
          check_equal name
            (run ~fast:false ~protocol ~nprocs:4 ~cluster w)
            (run ~fast:true ~protocol ~nprocs:4 ~cluster w))
        [ 1; 2; 4 ])
    protocols

(* Property: for a random shared access pattern (including write
   sharing, TLB-thrashing strides, and re-references that the last-page
   cache serves), slow and fast paths agree exactly.  Ops are (proc,
   page, offset, write) tuples; each fiber replays its own slice. *)
let synth_workload ops =
  {
    Sweep.name = "synth";
    prepare =
      (fun m ->
        let base = Mgs.Machine.alloc m ~words:(256 * 8) ~home:Mgs_mem.Allocator.Interleaved in
        let body ctx =
          let p = Mgs.Api.proc ctx in
          List.iteri
            (fun i (who, pg, off, wr) ->
              if who land 3 = p then begin
                let a = base + (256 * (pg land 7)) + (off land 255) in
                if wr then Mgs.Api.write ctx a (float_of_int ((i * 7) + p))
                else ignore (Mgs.Api.read ctx a)
              end)
            ops;
          (* drain the delayed update queues so the machine quiesces *)
          Mgs.Api.release ctx
        in
        (body, fun _ -> ()))
  }

let prop_slow_fast_equivalent =
  QCheck2.Test.make ~name:"slow path and fast path simulate identically" ~count:30
    QCheck2.Gen.(list_size (int_range 1 60) (tup4 (int_bound 3) (int_bound 7) (int_bound 255) bool))
    (fun ops ->
      let w = synth_workload ops in
      List.for_all
        (fun (_, protocol) ->
          run ~fast:false ~protocol ~nprocs:4 ~cluster:2 w
          = run ~fast:true ~protocol ~nprocs:4 ~cluster:2 w)
        protocols)

let () =
  Alcotest.run "fastpath"
    [
      ( "equivalence",
        Alcotest.test_case "jacobi, all protocols and clusters" `Quick
          test_jacobi_all_protocols
        :: List.map QCheck_alcotest.to_alcotest [ prop_slow_fast_equivalent ] );
    ]
