lib/apps/barnes.ml: Array Float List Mgs Mgs_harness Mgs_machine Mgs_mem Mgs_svm Mgs_sync Mgs_util Printf
