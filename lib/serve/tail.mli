(** Tail-latency reporting derived from the span layer.

    The KV tier records one [kv.get]/[kv.put]/[kv.scan] root span per
    completed request, covering scheduled arrival to completion
    (open-loop latency: queueing behind a backlogged client counts),
    partitioned by [kv.queue]/[kv.lock]/[kv.access] phase children.
    Everything here is a pure function of the recorded spans, so the
    rendered table is byte-identical across [-j], [--par], and
    reruns. *)

val percentile_of_sorted : int array -> float -> int
(** Exact nearest-rank percentile of an ascending-sorted array: the
    [ceil (q * n)]-th smallest sample.  0 when empty. *)

val rows : Mgs_obs.Span.t -> Mgs_harness.Figures.latency_row list
(** One row per operation class with recorded requests: count, mean,
    exact p50/p99/p999 (nearest-rank over the recorded durations),
    max. *)

val coverage : Mgs_obs.Span.t -> float
(** Fraction of total request latency attributed to phase child spans;
    1.0 when every request's phases were recorded (the phases partition
    each request interval by construction). *)

val p999_of : Mgs_obs.Span.t -> int
(** The put-path p999, the headline number of the EXPERIMENTS sweeps.
    0 when no puts were recorded. *)

val table : Mgs_obs.Span.t -> string
(** {!Mgs_harness.Figures.pp_latency_table} over {!rows} with
    {!coverage}. *)
