test/test_units.ml: Alcotest Array Float Hashtbl List Mgs Mgs_apps Mgs_engine Mgs_harness Mgs_mem Mgs_sync Option QCheck2 QCheck_alcotest String
