open State

let at_release m ~proc ~notices =
  match m.protocol with
  | Protocol_mgs -> Proto.release_all m ~proc
  | Protocol_hlrc ->
    Proto_hlrc.release_all m ~proc;
    Proto_hlrc.publish m ~proc ~into:notices
  | Protocol_ivy -> ()

let at_acquire m ~proc ~notices =
  match m.protocol with
  | Protocol_hlrc -> Proto_hlrc.apply_notices m ~proc notices
  | Protocol_mgs | Protocol_ivy -> ()
