type workload = {
  name : string;
  prepare : Mgs.Machine.t -> (Mgs.Api.ctx -> unit) * (Mgs.Machine.t -> unit);
}

type point = { cluster : int; report : Mgs.Report.t; lock_hit_ratio : float }

let clusters_of nprocs =
  let rec go c = if c > nprocs then [] else c :: go (2 * c) in
  go 1

let run_point ?(page_words = 256) ?(costs = Mgs_machine.Costs.default) ?(lan_latency = 1000)
    ?(protocol = "mgs") ?faults ?(fault_seed = 42) ?(verify = true) ?(check = true)
    ?(par = 0) ?(adapt = false) ~nprocs ~cluster w =
  let cfg =
    Mgs.Machine.config ~page_words ~costs ~lan_latency
      ~protocol:(Mgs.Protocol.proto_of_name protocol) ~par_jobs:par ~adapt ~nprocs ~cluster
      ()
  in
  let m = Mgs.Machine.create cfg in
  let checker = if check then Some (Mgs.Machine.enable_checker m) else None in
  (match faults with
  | Some spec -> Mgs.Machine.set_faults m ~seed:fault_seed spec
  | None -> ());
  let body, wcheck = w.prepare m in
  let report = Mgs.Machine.run m body in
  (* a partitioned run is a legitimate outcome under faults: the caller
     inspects [report.outcome]; only completed runs can be verified *)
  if verify && Mgs.Report.completed report then begin
    Mgs.Machine.assert_quiescent m;
    wcheck m
  end;
  (match checker with
  | Some c ->
    Mgs.Invariant.finish c;
    if Mgs.Invariant.count c > 0 then
      failwith (Format.asprintf "%s C=%d: %a" w.name cluster Mgs.Invariant.pp c)
  | None -> ());
  { cluster; report; lock_hit_ratio = Mgs.Report.lock_hit_ratio report }

let sweep ?page_words ?costs ?lan_latency ?protocol ?verify ?check ?par ?adapt ?clusters
    ?(jobs = 1) ~nprocs w =
  let clusters = Option.value ~default:(clusters_of nprocs) clusters in
  (* Every point is a self-contained machine, so the sweep fans out over
     a domain pool; Dpool.map returns results in cluster order, making
     the output independent of [jobs]. *)
  Mgs_util.Dpool.map ~jobs
    (fun cluster ->
      run_point ?page_words ?costs ?lan_latency ?protocol ?verify ?check ?par ?adapt
        ~nprocs ~cluster w)
    clusters

(* --- chaos sweeps ---------------------------------------------------- *)

type chaos_point = { intensity : float; spec : Mgs_net.Fault.spec; point : point }

(* The chaos contract has two halves, both asserted here rather than
   left to callers: (1) every point terminates — either completed (then
   verified like any sweep point) or as a typed partition, never a
   hang; (2) a fixed seed fully determines the run, shown by executing
   every point twice and comparing the simulated results exactly. *)
let chaos ?(intensities = [ 0.0; 0.25; 0.5; 1.0 ]) ?(spec = Mgs_net.Fault.default_chaos)
    ?protocol ?page_words ?costs ?lan_latency ?(check = false) ~seed ~nprocs ~cluster w =
  List.mapi
    (fun i intensity ->
      let fspec = Mgs_net.Fault.scale spec ~intensity in
      let faults = if Mgs_net.Fault.is_zero fspec then None else Some fspec in
      let fault_seed = seed + (7919 * i) in
      let go () =
        run_point ?page_words ?costs ?lan_latency ?protocol ?faults ~fault_seed ~check
          ~nprocs ~cluster w
      in
      let p1 = go () in
      let p2 = go () in
      let r1 = p1.report and r2 = p2.report in
      if
        r1.Mgs.Report.runtime <> r2.Mgs.Report.runtime
        || r1.Mgs.Report.sim_events <> r2.Mgs.Report.sim_events
        || r1.Mgs.Report.outcome <> r2.Mgs.Report.outcome
        || r1.Mgs.Report.pstats.Mgs.Pstats.net_retries
           <> r2.Mgs.Report.pstats.Mgs.Pstats.net_retries
        || r1.Mgs.Report.pstats.Mgs.Pstats.net_dups <> r2.Mgs.Report.pstats.Mgs.Pstats.net_dups
      then
        failwith
          (Printf.sprintf "%s: chaos point intensity=%g seed=%d is not deterministic" w.name
             intensity fault_seed);
      { intensity; spec = fspec; point = p1 })
    intensities

let pp_chaos_table ppf points =
  Format.fprintf ppf "%-10s %-12s %-10s %-8s %-8s %-8s %s@." "intensity" "runtime" "events"
    "retries" "dups" "timeouts" "outcome";
  List.iter
    (fun cp ->
      let r = cp.point.report in
      Format.fprintf ppf "%-10g %-12d %-10d %-8d %-8d %-8d %a@." cp.intensity
        r.Mgs.Report.runtime r.Mgs.Report.sim_events r.Mgs.Report.pstats.Mgs.Pstats.net_retries
        r.Mgs.Report.pstats.Mgs.Pstats.net_dups r.Mgs.Report.pstats.Mgs.Pstats.net_timeouts
        Mgs.Report.pp_outcome r.Mgs.Report.outcome)
    points

(* Pure versions on (cluster, runtime) pairs — the point-based API
   below delegates to these; they are exposed for testing. *)

let runtime_of_rt curve c =
  match List.assoc_opt c curve with
  | Some t -> t
  | None ->
    invalid_arg
      (Printf.sprintf "Sweep.runtime_of: no point at cluster size %d (have %s)" c
         (String.concat ", " (List.map (fun (c, _) -> string_of_int c) curve)))

let max_cluster_rt curve = List.fold_left (fun acc (c, _) -> max acc c) 0 curve

let breakup_penalty_rt curve =
  let p = max_cluster_rt curve in
  let tp = float_of_int (runtime_of_rt curve p) in
  let tp2 = float_of_int (runtime_of_rt curve (p / 2)) in
  (tp2 -. tp) /. tp

let multigrain_potential_rt curve =
  let p = max_cluster_rt curve in
  let t1 = float_of_int (runtime_of_rt curve 1) in
  let tp2 = float_of_int (runtime_of_rt curve (p / 2)) in
  (t1 -. tp2) /. tp2

let multigrain_curvature_rt curve =
  let p = max_cluster_rt curve in
  let t1 = float_of_int (runtime_of_rt curve 1) in
  let tp2 = float_of_int (runtime_of_rt curve (p / 2)) in
  let logmax = log (float_of_int (p / 2)) in
  if logmax <= 0. then 0.
  else begin
    (* interior points C = 2 .. P/4 against the chord in log-C space *)
    let acc = ref 0. and n = ref 0 in
    let rec go c =
      if c < p / 2 then begin
        let x = log (float_of_int c) /. logmax in
        let chord = t1 +. (x *. (tp2 -. t1)) in
        let t = float_of_int (runtime_of_rt curve c) in
        acc := !acc +. ((chord -. t) /. t1);
        incr n;
        go (2 * c)
      end
    in
    go 2;
    if !n = 0 then 0. else !acc /. float_of_int !n
  end

let curvature_class_rt curve =
  let k = multigrain_curvature_rt curve in
  if k > 0.02 then "convex" else if k < -0.02 then "concave" else "flat"

let curve_of points = List.map (fun p -> (p.cluster, p.report.Mgs.Report.runtime)) points

let runtime_of points c = runtime_of_rt (curve_of points) c

let breakup_penalty points = breakup_penalty_rt (curve_of points)

let multigrain_potential points = multigrain_potential_rt (curve_of points)

let multigrain_curvature points = multigrain_curvature_rt (curve_of points)

let curvature_class points = curvature_class_rt (curve_of points)
