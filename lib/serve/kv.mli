(** Request-serving key-value tier on the DSM (ROADMAP item 2).

    Open-addressed hash shards living in shared pages (one per SSMP by
    default, homes round robin), pre-populated so every lookup hits;
    lockless get/scan probes, per-shard-locked read-modify-write puts.
    Load is open loop: each client fiber's full schedule — zipfian
    keys with churn over a [users]-sized population, get/put/scan mix,
    exponential-ish arrivals — is precomputed from [Rng.split_key]
    streams, so the offered load is a pure function of the seed and
    results are byte-identical across [-j], [--par], and reruns.

    Every completed request is recorded as a [kv.get]/[kv.put]/
    [kv.scan] root span over [scheduled arrival, completion] (queueing
    included) with [kv.queue]/[kv.lock]/[kv.access] children
    partitioning it; {!Tail} renders p50/p99/p999 from those spans.
    Values encode [key * 2{^20} + puts-applied], checked by every
    client read and by a post-run sweep of every slot against the put
    counts implied by the schedules. *)

type params = {
  nkeys : int;  (** distinct keys in the store *)
  nshards : int;  (** hash shards; 0 = one per SSMP *)
  ops : int;  (** requests per client fiber *)
  users : int;  (** simulated user population multiplexed onto the clients *)
  theta : float;  (** zipfian skew of key popularity *)
  get_pct : int;  (** % of requests that are gets *)
  put_pct : int;  (** % puts; the rest are scans *)
  scan_len : int;  (** keys touched per scan *)
  churn : int;  (** requests per popularity epoch per client; 0 = no churn *)
  period : int;  (** mean inter-arrival gap per client, cycles *)
  burst : int;
      (** 0 = independent arrivals; > 0 rounds every arrival up to the
          next multiple of [burst] cycles — synchronized
          thundering-herd waves *)
  think : int;  (** modelled per-request computation, cycles *)
  seed : int;
  lock : string;  (** shard lock algorithm, a [Mgs_sync.Locks] name *)
  stripes : int;
      (** locks per shard, keys interleaved over them; 1 (the default)
          is the classic per-shard big lock, larger values let puts to
          different keys of one page proceed concurrently *)
  local_pct : int;
      (** session affinity: % of a client's requests directed at its
          own SSMP's shard (key chosen by zipfian rank within that
          shard's key group); 0 = all traffic global *)
  home : string;
      (** shard/lock placement: ["spread"] (round robin over SSMPs,
          the default) or ["packed"] (everything on SSMP 0 — the naive
          placement adaptive home migration repairs) *)
}

val default : params

val tiny : params
(** Smoke-test-sized instance. *)

val problem_size : params -> string

type opcode = Get | Put | Scan

type schedule = {
  arrival : int array;  (** scheduled arrival time of request i, cycles *)
  opcode : opcode array;
  key : int array;  (** target key (scan start key for scans) *)
}

val schedules : params -> nprocs:int -> cluster:int -> schedule array
(** The precomputed offered load, one schedule per client fiber — a
    pure function of [params] (exposed for the tests). *)

val workload : params -> Mgs_harness.Sweep.workload
(** Verifies client-side decodes, final per-key put counts against the
    schedules, and slot-table integrity. *)

val epilogue : Mgs.Machine.t -> string
(** The {!Tail} p50/p99/p999 table rendered from the machine's spans
    (empty without a trace), plus a warning when spans were dropped. *)

val workload_module : (module Mgs_harness.Workload.WORKLOAD)
(** The registry packaging: name ["kv"], size -> keys, iters -> ops,
    plus users/theta/get/put/scan-len/churn/period/think/shards/
    stripes/local/home/seed extra params. *)
