lib/apps/tsp.ml: Array Mgs Mgs_harness Mgs_mem Mgs_sync Mgs_util Printf
