(* Request-serving key-value tier on the DSM (ROADMAP item 2).

   The store is a set of open-addressed hash shards living in shared
   pages: shard [s] is one contiguous allocation of 2-word slots
   (key word, value word) homed on SSMP [s mod nssmps], pre-populated
   host-side so every lookup hits.  Keys are assigned to shards round
   robin, gets and scans probe locklessly (key words never change
   after population and word accesses are atomic simulation events),
   and puts read-modify-write the value word under a lock from the
   {!Mgs_sync.Locks} registry.  Locking is striped: [stripes] locks
   per shard, keys interleaved over them, so [stripes = 1] is the
   classic per-shard big lock (fully serialized writers) and larger
   values let puts to different keys of the same page proceed
   concurrently — the upgrade-burst pattern the adaptive classifier
   resolves to the invalidate regime.  [home = "packed"] places every
   shard (and lock) on SSMP 0, the naive-allocator placement whose
   repair by adaptive home migration the adapt gate demonstrates;
   [local_pct] models session affinity, directing that percentage of
   a client's requests at its own SSMP's shard, which gives pages a
   stable dominant writer.

   Load is open loop: every client fiber's full request schedule —
   arrival times, operations, keys — is precomputed host-side from
   [Rng.split_key] streams before the machine runs, so the offered
   load is a pure function of the seed, independent of service times,
   schedule, -j, and --par.  A request's user draws its popularity
   rank from a zipfian over ranks; rank -> key goes through a seeded
   global permutation rotated every [churn] requests (the active
   cohort of the [users] population turns over, moving the hot set).
   A client that falls behind serves requests back to back; latency is
   completion minus *scheduled arrival*, so queueing delay is counted
   — the open-loop property that makes the p999 honest.

   Correctness is checked end to end: values encode [key * 2^20 + seq]
   where [seq] counts the puts applied to the key, clients decode and
   verify every value they read (a torn or stale-grant read fails
   loudly), and the post-run verifier peeks every slot and compares
   [seq] against the put counts implied by the precomputed schedules.

   Each completed request retroactively opens a [kv.get]/[kv.put]/
   [kv.scan] root span over [arrival, completion] with [kv.queue]/
   [kv.lock]/[kv.access] children partitioning it; {!Tail} renders the
   p50/p99/p999 table from those spans. *)

module Api = Mgs.Api
module Rng = Mgs_util.Rng

type params = {
  nkeys : int;  (** distinct keys in the store *)
  nshards : int;  (** hash shards; 0 = one per SSMP *)
  ops : int;  (** requests per client fiber *)
  users : int;  (** simulated user population multiplexed onto the clients *)
  theta : float;  (** zipfian skew of key popularity *)
  get_pct : int;  (** % of requests that are gets *)
  put_pct : int;  (** % puts; the rest are scans *)
  scan_len : int;  (** keys touched per scan *)
  churn : int;  (** requests per popularity epoch per client; 0 = no churn *)
  period : int;  (** mean inter-arrival gap per client, cycles *)
  burst : int;
      (** 0 = independent arrivals; > 0 quantizes every arrival up to
          the next multiple of [burst] cycles, synchronizing clients
          into thundering-herd waves *)
  think : int;  (** modelled per-request computation, cycles *)
  seed : int;
  lock : string;  (** shard lock algorithm, a [Mgs_sync.Locks] name *)
  stripes : int;  (** locks per shard, keys interleaved; 1 = per-shard lock *)
  local_pct : int;  (** % of requests with session affinity to the client's SSMP's shard *)
  home : string;  (** shard placement: "spread" (round robin) or "packed" (all on SSMP 0) *)
}

let default =
  {
    nkeys = 512;
    nshards = 0;
    ops = 200;
    users = 1_000_000;
    theta = 0.99;
    get_pct = 70;
    put_pct = 25;
    scan_len = 8;
    churn = 64;
    period = 30000;
    burst = 0;
    think = 200;
    seed = 7;
    lock = "token";
    stripes = 1;
    local_pct = 0;
    home = "spread";
  }

let tiny =
  {
    default with
    nkeys = 64;
    ops = 40;
    users = 10_000;
    period = 2500;
    scan_len = 4;
    churn = 16;
    seed = 3;
  }

let problem_size p =
  Printf.sprintf "%d keys, %d ops/client, theta=%.2f, %d users" p.nkeys p.ops p.theta
    p.users

(* Value encoding: key * 2^20 + (puts applied mod 2^20), exact in a
   float word up to ~2^33 keys. *)
let seq_bits = 20

let seq_mask = (1 lsl seq_bits) - 1

let encode ~key ~seq = (key lsl seq_bits) lor (seq land seq_mask)

let key_of_value v = v lsr seq_bits

let seq_of_value v = v land seq_mask

let validate p =
  if p.nkeys < 1 then invalid_arg "kv: nkeys must be positive";
  if p.ops < 0 then invalid_arg "kv: ops must be nonnegative";
  if p.users < 1 then invalid_arg "kv: users must be positive";
  if p.get_pct < 0 || p.put_pct < 0 || p.get_pct + p.put_pct > 100 then
    invalid_arg "kv: get/put percentages must be nonnegative and sum to at most 100";
  if p.scan_len < 1 then invalid_arg "kv: scan-len must be positive";
  if p.period < 1 then invalid_arg "kv: period must be positive";
  if p.theta < 0. then invalid_arg "kv: theta must be nonnegative";
  if p.churn < 0 then invalid_arg "kv: churn must be nonnegative";
  if p.burst < 0 then invalid_arg "kv: burst must be nonnegative";
  if p.stripes < 1 then invalid_arg "kv: stripes must be positive";
  if p.local_pct < 0 || p.local_pct > 100 then
    invalid_arg "kv: local must be a percentage";
  if p.home <> "spread" && p.home <> "packed" then
    invalid_arg "kv: home must be \"spread\" or \"packed\""

(* --- precomputed request schedules ---------------------------------- *)

type opcode = Get | Put | Scan

type schedule = {
  arrival : int array;  (** scheduled arrival time of request i, cycles *)
  opcode : opcode array;
  key : int array;  (** target key (scan start key for scans) *)
}

(* The whole offered load as a pure function of the seed: per-client
   arrival/op streams, per-user rank streams (stateless: one child
   generator per request, keyed by user then request nonce, so the
   million-user population costs no per-user state). *)
let schedules p ~nprocs ~cluster =
  let master = Rng.create ~seed:(0x5EED + p.seed) in
  let zipf_master = Rng.split_key master ~key:1 in
  let perm_rng = Rng.split_key master ~key:2 in
  let perm = Array.init p.nkeys (fun i -> i) in
  Rng.shuffle_in_place perm_rng perm;
  let dist = Zipf.dist ~n:p.nkeys ~theta:p.theta in
  let key_of ~rank ~epoch = 1 + perm.((rank + (epoch * 7919)) mod p.nkeys) in
  (* session affinity: the keys of shard [s] are {s+1, s+1+nshards, ...};
     an affine request keeps its zipfian rank but resolves it within the
     client's own SSMP's shard group *)
  let nssmps = nprocs / cluster in
  let nshards = if p.nshards = 0 then nssmps else p.nshards in
  let local_key_of ~shard ~rank ~epoch =
    let group = ((p.nkeys - shard - 1) / nshards) + 1 in
    shard + 1 + (((rank + (epoch * 7919)) mod group) * nshards)
  in
  Array.init nprocs (fun c ->
      let crng = Rng.split_key master ~key:(1000 + c) in
      let arr_rng = Rng.split_key crng ~key:1 in
      let op_rng = Rng.split_key crng ~key:2 in
      let user_rng = Rng.split_key crng ~key:3 in
      let loc_rng = Rng.split_key crng ~key:4 in
      let my_shard = c / cluster mod nshards in
      let arrival = Array.make p.ops 0 in
      let opcode = Array.make p.ops Get in
      let key = Array.make p.ops 1 in
      let t = ref 0 in
      for i = 0 to p.ops - 1 do
        (* exponential-ish inter-arrival gaps; u in (0, 1] keeps log finite *)
        let u = 1.0 -. Rng.float arr_rng 1.0 in
        t := !t + 1 + int_of_float (-.log u *. float_of_int p.period);
        (* herd mode: quantize up to the wave boundary so every client
           in the wave arrives at the same instant *)
        if p.burst > 0 then t := (!t + p.burst - 1) / p.burst * p.burst;
        arrival.(i) <- !t;
        let r = Rng.int op_rng 100 in
        opcode.(i) <- (if r < p.get_pct then Get else if r < p.get_pct + p.put_pct then Put else Scan);
        let user = Rng.int user_rng p.users in
        let req_rng = Rng.split_key (Rng.split_key zipf_master ~key:user) ~key:((c * p.ops) + i) in
        let rank = Zipf.draw dist req_rng in
        let epoch = if p.churn = 0 then 0 else i / p.churn in
        key.(i) <-
          (if
             p.local_pct > 0 && my_shard < p.nkeys
             && Rng.int loc_rng 100 < p.local_pct
           then local_key_of ~shard:my_shard ~rank ~epoch
           else key_of ~rank ~epoch)
      done;
      { arrival; opcode; key })

(* Puts applied per key over all schedules: the oracle the post-run
   verifier compares final [seq] values against.  Scans and gets write
   nothing. *)
let puts_per_key p (scheds : schedule array) =
  let counts = Array.make (p.nkeys + 1) 0 in
  Array.iter
    (fun s ->
      Array.iteri
        (fun i op -> if op = Put then counts.(s.key.(i)) <- counts.(s.key.(i)) + 1)
        s.opcode)
    scheds;
  counts

(* --- the store ------------------------------------------------------ *)

let next_pow2 n =
  let x = ref 1 in
  while !x < n do
    x := !x * 2
  done;
  !x

let prepare p (m : Mgs.Machine.t) =
  validate p;
  let topo = Mgs.Machine.topo m in
  let nprocs = topo.Mgs_machine.Topology.nprocs in
  let nssmps = topo.Mgs_machine.Topology.nssmps in
  let nshards = if p.nshards = 0 then nssmps else p.nshards in
  let tr = Mgs.Machine.enable_trace ~capacity:(1 lsl 18) m in
  let sp = Mgs_obs.Trace.spans tr in
  (* one open-addressed table per shard; keys round robin over shards *)
  let keys_per_shard = ((p.nkeys + nshards - 1) / nshards) + 1 in
  let nslots = next_pow2 (2 * keys_per_shard) in
  let mask = nslots - 1 in
  let home_ssmp s = if p.home = "packed" then 0 else s mod nssmps in
  let bases =
    Array.init nshards (fun s ->
        let home = Mgs_machine.Topology.first_proc_of_ssmp topo (home_ssmp s) in
        Mgs.Machine.alloc m ~words:(2 * nslots)
          ~home:(Mgs_mem.Allocator.On_proc home))
  in
  (* [stripes] locks per shard, keys interleaved over them by their
     index within the shard's key group *)
  let locks =
    Array.init (nshards * p.stripes) (fun i ->
        Mgs_sync.Locks.make m ~home:(home_ssmp (i / p.stripes)) p.lock)
  in
  let lock_of k =
    let s = (k - 1) mod nshards in
    (s * p.stripes) + ((k - 1) / nshards mod p.stripes)
  in
  (* host-side slot placement, shared with the verifier *)
  let hash k =
    let h = k * 0x9E3779B9 in
    let h = h lxor (h lsr 16) in
    h land mask
  in
  let slot_of = Array.make (p.nkeys + 1) (-1) in
  let taken = Array.init nshards (fun _ -> Array.make nslots false) in
  for k = 1 to p.nkeys do
    let s = (k - 1) mod nshards in
    let h = ref (hash k) in
    while taken.(s).(!h) do
      h := (!h + 1) land mask
    done;
    taken.(s).(!h) <- true;
    slot_of.(k) <- !h;
    Mgs.Machine.poke m (bases.(s) + (2 * !h)) (float_of_int k);
    Mgs.Machine.poke m (bases.(s) + (2 * !h) + 1) (float_of_int (encode ~key:k ~seq:0))
  done;
  let scheds = schedules p ~nprocs ~cluster:topo.Mgs_machine.Topology.cluster in
  let expected_puts = puts_per_key p scheds in
  (* per-proc accounting: each fiber writes only its own slot *)
  let violations = Array.make nprocs 0 in
  let completed = Array.make nprocs 0 in
  (* serve.* metrics, when the sampler is installed *)
  let obs_metrics =
    match Mgs.Machine.metrics m with
    | None -> None
    | Some mt ->
      let op_counter name = Mgs_obs.Metrics.counter mt ~labels:[ ("op", name) ] "serve.ops" in
      let c_get = op_counter "get" and c_put = op_counter "put" and c_scan = op_counter "scan" in
      let c_queued = Mgs_obs.Metrics.counter mt "serve.queued" in
      let lat =
        Array.init nssmps (fun s ->
            Mgs_obs.Metrics.histogram mt
              ~labels:[ ("ssmp", string_of_int s) ]
              "serve.latency")
      in
      Mgs_obs.Metrics.probe_cell mt "serve.done" (fun cell ->
          let sum = ref 0 in
          List.iter
            (fun proc -> sum := !sum + completed.(proc))
            (Mgs_machine.Topology.procs_of_ssmp topo cell);
          float_of_int !sum);
      Some (c_get, c_put, c_scan, c_queued, lat)
  in
  let body (ctx : Api.ctx) =
    let proc = Api.proc ctx in
    let my_ssmp = Api.ssmp ctx in
    let sched = scheds.(proc) in
    (* probe to the slot holding [k]; population guarantees a hit *)
    let find_slot k =
      let s = (k - 1) mod nshards in
      let base = bases.(s) in
      let h = ref (hash k) in
      let kw = ref (Api.read_int ctx (base + (2 * !h))) in
      while !kw <> k && !kw <> 0 do
        h := (!h + 1) land mask;
        kw := Api.read_int ctx (base + (2 * !h))
      done;
      if !kw = 0 then begin
        (* impossible unless the store is corrupt: count and fall back *)
        violations.(proc) <- violations.(proc) + 1;
        base + (2 * hash k) + 1
      end
      else base + (2 * !h) + 1
    in
    let check_value ~key v =
      if key_of_value v <> key then violations.(proc) <- violations.(proc) + 1
    in
    (* modelled request computation must occupy *simulated* time, not
       just the fiber's latency accounting: sleeping to the advanced
       clock makes lock hold times real to the other clients *)
    let think () =
      Api.compute ctx p.think;
      Api.idle_until ctx (Api.cycles ctx)
    in
    for i = 0 to p.ops - 1 do
      let t_arr = sched.arrival.(i) in
      if Api.cycles ctx < t_arr then Api.idle_until ctx t_arr;
      let t_start = Api.cycles ctx in
      let k = sched.key.(i) in
      let label, t_svc =
        match sched.opcode.(i) with
        | Get ->
          let v = Api.read_int ctx (find_slot k) in
          check_value ~key:k v;
          think ();
          ("kv.get", t_start)
        | Put ->
          let l = lock_of k in
          Mgs_sync.Locks.acquire ctx locks.(l);
          let t_locked = Api.cycles ctx in
          let addr = find_slot k in
          let v = Api.read_int ctx addr in
          check_value ~key:k v;
          Api.write_int ctx addr (encode ~key:k ~seq:(seq_of_value v + 1));
          (* post-write work (index/journal update) holds the stripe
             lock: the hold window is what lets concurrent striped
             writers to one page overlap their in-place upgrades *)
          think ();
          Mgs_sync.Locks.release ctx locks.(l);
          ("kv.put", t_locked)
        | Scan ->
          for j = 0 to p.scan_len - 1 do
            let kj = 1 + ((k - 1 + j) mod p.nkeys) in
            let v = Api.read_int ctx (find_slot kj) in
            check_value ~key:kj v
          done;
          think ();
          ("kv.scan", t_start)
      in
      let t_done = Api.cycles ctx in
      completed.(proc) <- completed.(proc) + 1;
      (* retroactive request spans: root [arrival, done], children
         partitioning it — all stamped inside this fiber's event, so
         the store merges them deterministically under --par *)
      let root =
        Mgs_obs.Span.open_span sp ~parent:Mgs_obs.Span.none ~time:t_arr ~label
          ~engine:Mgs_obs.Event.Local_client ~src:proc ~src_ssmp:my_ssmp ()
      in
      if t_start > t_arr then begin
        let c =
          Mgs_obs.Span.open_span sp ~parent:root ~time:t_arr ~label:"kv.queue"
            ~engine:Mgs_obs.Event.Local_client ~src:proc ~src_ssmp:my_ssmp ()
        in
        Mgs_obs.Span.close sp c ~time:t_start
      end;
      if t_svc > t_start then begin
        let c =
          Mgs_obs.Span.open_span sp ~parent:root ~time:t_start ~label:"kv.lock"
            ~engine:Mgs_obs.Event.Local_client ~src:proc ~src_ssmp:my_ssmp ()
        in
        Mgs_obs.Span.close sp c ~time:t_svc
      end;
      let c =
        Mgs_obs.Span.open_span sp ~parent:root ~time:t_svc ~label:"kv.access"
          ~engine:Mgs_obs.Event.Local_client ~src:proc ~src_ssmp:my_ssmp ()
      in
      Mgs_obs.Span.close sp c ~time:t_done;
      Mgs_obs.Span.close sp root ~time:t_done;
      (match obs_metrics with
      | None -> ()
      | Some (c_get, c_put, c_scan, c_queued, lat) ->
        Mgs_obs.Metrics.incr
          (match sched.opcode.(i) with Get -> c_get | Put -> c_put | Scan -> c_scan);
        if t_start > t_arr then Mgs_obs.Metrics.incr c_queued;
        Mgs_obs.Metrics.observe lat.(my_ssmp) (t_done - t_arr))
    done
  in
  let check m =
    let bad = ref [] in
    Array.iteri (fun proc v -> if v > 0 then bad := (proc, v) :: !bad) violations;
    (match !bad with
    | [] -> ()
    | (proc, v) :: _ ->
      failwith
        (Printf.sprintf "kv: %d client-side decode violations (first: proc %d, %d)"
           (List.fold_left (fun a (_, v) -> a + v) 0 !bad)
           proc v));
    (* every key's final value carries exactly the puts the schedules
       imply; every slot is either empty or a correctly-placed key *)
    for k = 1 to p.nkeys do
      let s = (k - 1) mod nshards in
      let addr = bases.(s) + (2 * slot_of.(k)) in
      let kw = int_of_float (Mgs.Machine.peek m addr) in
      if kw <> k then
        failwith (Printf.sprintf "kv: key %d displaced: slot holds %d" k kw);
      let v = int_of_float (Mgs.Machine.peek m (addr + 1)) in
      let want_seq = expected_puts.(k) land seq_mask in
      if key_of_value v <> k || seq_of_value v <> want_seq then
        failwith
          (Printf.sprintf "kv: key %d: value %d decodes to (key %d, seq %d), want seq %d"
             k v (key_of_value v) (seq_of_value v) want_seq)
    done;
    for s = 0 to nshards - 1 do
      for h = 0 to nslots - 1 do
        let kw = int_of_float (Mgs.Machine.peek m (bases.(s) + (2 * h))) in
        if kw <> 0 && (kw < 1 || kw > p.nkeys || (kw - 1) mod nshards <> s || slot_of.(kw) <> h)
        then failwith (Printf.sprintf "kv: shard %d slot %d holds stray key %d" s h kw)
      done
    done
  in
  (body, check)

let workload p = { Mgs_harness.Sweep.name = "KV"; prepare = prepare p }

(* --- registry packaging --------------------------------------------- *)

let epilogue m =
  match Mgs.Machine.trace m with
  | None -> ""
  | Some tr ->
    let sp = Mgs_obs.Trace.spans tr in
    Tail.table sp
    ^
    if Mgs_obs.Span.dropped sp > 0 then
      Printf.sprintf
        "WARNING: span store full: %d spans dropped — percentiles cover a subset of \
         requests\n"
        (Mgs_obs.Span.dropped sp)
    else ""

(* Aliases that survive the [open Mgs_harness.Workload] shadowing
   inside the first-class module below. *)
let kv_workload = workload

let kv_tiny = tiny

let kv_problem_size = problem_size

let kv_epilogue = epilogue

let workload_module : (module Mgs_harness.Workload.WORKLOAD) =
  (module struct
    open Mgs_harness.Workload

    let name = "kv"

    let doc = "request-serving KV tier: open-loop zipfian load, tail-latency report"

    let params =
      [
        size_param ~default:(string_of_int default.nkeys) ~doc:"distinct keys";
        iters_param ~default:(string_of_int default.ops) ~doc:"requests per client fiber";
        { lock_param with p_doc = "shard lock algorithm" };
        param ~name:"users" ~default:(string_of_int default.users)
          ~doc:"simulated user population";
        param ~name:"theta" ~default:(Printf.sprintf "%.2f" default.theta)
          ~doc:"zipfian skew";
        param ~name:"get" ~default:(string_of_int default.get_pct) ~doc:"% gets";
        param ~name:"put" ~default:(string_of_int default.put_pct) ~doc:"% puts";
        param ~name:"scan-len" ~default:(string_of_int default.scan_len)
          ~doc:"keys per scan";
        param ~name:"churn" ~default:(string_of_int default.churn)
          ~doc:"requests per popularity epoch (0 = none)";
        param ~name:"period" ~default:(string_of_int default.period)
          ~doc:"mean inter-arrival gap, cycles";
        param ~name:"burst" ~default:(string_of_int default.burst)
          ~doc:"wave quantum, cycles (0 = independent arrivals)";
        param ~name:"think" ~default:(string_of_int default.think)
          ~doc:"modelled per-request compute, cycles";
        param ~name:"shards" ~default:"0" ~doc:"hash shards (0 = one per SSMP)";
        param ~name:"stripes" ~default:(string_of_int default.stripes)
          ~doc:"locks per shard (keys interleaved)";
        param ~name:"local" ~default:(string_of_int default.local_pct)
          ~doc:"% requests with session affinity to the client's SSMP's shard";
        param ~name:"home" ~default:default.home
          ~doc:"shard placement: spread | packed";
        param ~name:"seed" ~default:(string_of_int default.seed) ~doc:"load seed";
      ]

    let params_spec = params

    let of_args (a : args) =
      check_args ~name ~params:params_spec a;
      let d = default in
      {
        nkeys = Option.value ~default:d.nkeys a.size;
        ops = Option.value ~default:d.ops a.iters;
        lock = Option.value ~default:d.lock a.lock;
        users = extra_int ~name a "users" ~default:d.users;
        theta = extra_float ~name a "theta" ~default:d.theta;
        get_pct = extra_int ~name a "get" ~default:d.get_pct;
        put_pct = extra_int ~name a "put" ~default:d.put_pct;
        scan_len = extra_int ~name a "scan-len" ~default:d.scan_len;
        churn = extra_int ~name a "churn" ~default:d.churn;
        period = extra_int ~name a "period" ~default:d.period;
        burst = extra_int ~name a "burst" ~default:d.burst;
        think = extra_int ~name a "think" ~default:d.think;
        nshards = extra_int ~name a "shards" ~default:d.nshards;
        stripes = extra_int ~name a "stripes" ~default:d.stripes;
        local_pct = extra_int ~name a "local" ~default:d.local_pct;
        home =
          (match List.assoc_opt "home" a.extra with
          | Some v -> v
          | None -> d.home);
        seed = extra_int ~name a "seed" ~default:d.seed;
      }

    let instantiate a = kv_workload (of_args a)

    let problem_size a = kv_problem_size (of_args a)

    let tiny () = kv_workload kv_tiny

    let epilogue = kv_epilogue
  end)
