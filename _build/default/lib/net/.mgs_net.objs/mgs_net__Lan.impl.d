lib/net/lan.ml: Array Hashtbl Mgs_engine Mgs_machine Mgs_obs Option
