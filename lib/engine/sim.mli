(** Discrete-event simulation core.

    A simulator owns a queue of timestamped events (thunks).  [run]
    executes events in nondecreasing time order; ties are broken by
    scheduling order, so a run is fully deterministic.  All simulated
    components (network links, protocol engines, processor fibers)
    interact exclusively by scheduling events.

    A simulator is sequential by default.  {!make_sharded} installs a
    {!Shard} engine behind it: events are then partitioned per shard
    (one per SSMP cluster) and {!run} can drain the shards on OCaml
    Domains with conservative lookahead synchronization.  The sharded
    engine is designed to be byte-identical to the sequential one and
    the sequential engine remains the oracle. *)

type time = int
(** Simulated time in processor cycles. *)

type t
(** A simulator instance. *)

val create : unit -> t
(** [create ()] is a fresh sequential simulator at time 0 with no
    events. *)

val make_sharded : t -> nshards:int -> lookahead:int -> unit
(** Install a sharded engine with [nshards] partitions and a
    conservative [lookahead] window (the inter-SSMP LAN latency).
    Idempotent for identical parameters.
    @raise Invalid_argument if a different engine is already installed,
    if events were already queued sequentially, or if [lookahead < 1]. *)

val sharded : t -> bool

val set_topology : t -> nshards:int -> unit
(** Declare the shard (SSMP) count of a sequential simulator so events
    and statistics are attributed to the same per-shard cells the
    sharded engine would use — the observability layer's per-shard
    stores rely on this routing being identical across modes.  The
    sharded engine knows its own count; calling this after
    {!make_sharded} is a no-op.  Resizing discards per-shard counts. *)

val nshards : t -> int
(** Declared shard count ([1] when never declared). *)

val enable_stamps : t -> unit
(** Sequential engines only: publish a (time, insertion-seq) pseudo
    genealogy key per event (readable via {!Shard.running_key}) so
    observability emissions can be order-stamped.  Off by default — the
    key is a fresh allocation per event and the untraced fast path stays
    allocation-free.  The sharded engine always publishes real keys. *)

val set_on_event : t -> (shard:int -> now:int -> unit) option -> unit
(** Install a callback run immediately before each event on the
    executing domain (after clock/counters advance).  Used by the
    metrics sampler.  The callback must only touch state owned by
    [shard]; anything else breaks byte-identity across job counts. *)

val set_jobs : t -> int -> unit
(** Effective domain count for subsequent {!run}s of a sharded
    simulator (clamped to [1 .. nshards]).  [1] drains a single heap in
    the canonical order on the calling domain; [>= 2] runs shards
    concurrently between lookahead barriers.
    @raise Invalid_argument when [> 1] on a sequential simulator. *)

val set_strict : t -> bool -> unit
(** Strict mode (sharded only): a cross-shard event merged after its
    destination's clock — a lookahead violation — raises
    {!Shard.Late_delivery} instead of being clamped and counted. *)

val now : t -> time
(** [now sim] is the timestamp of the event currently executing (or the
    last executed); 0 before any event runs. *)

val at : t -> time -> (unit -> unit) -> unit
(** [at sim t f] schedules [f] to run at absolute time [max t (now sim)].
    Scheduling in the past is clamped to the present rather than
    rejected: protocol handlers routinely complete work whose latency
    was accounted on a processor clock that lags global time.  Each
    clamp is counted in {!stats}.  On a sharded simulator the event
    lands on the shard currently executing. *)

val at_shard : t -> shard:int -> time -> (unit -> unit) -> unit
(** [at_shard sim ~shard t f] schedules [f] on an explicit shard —
    cross-SSMP message delivery and host-side seeding.  Equivalent to
    {!at} on a sequential simulator. *)

val after : t -> time -> (unit -> unit) -> unit
(** [after sim d f] is [at sim (now sim + d) f].  [d] must be [>= 0]. *)

val pending : t -> int
(** Number of events not yet executed. *)

val events_executed : t -> int
(** Total events executed since creation (throughput accounting). *)

val peak_pending : t -> int
(** High-water mark of the event queue length.  Windowed sharded runs
    report the sum of per-shard peaks (an upper bound); this figure is
    host-/engine-sensitive and deliberately excluded from the
    determinism contract. *)

type stats = { s_executed : int; s_peak : int; s_clamped : int }

val stats : t -> stats
(** Execution counters: events executed, peak pending, and the number
    of past-due schedules clamped forward to the clock ([s_clamped] —
    silent before, now observable so cross-shard delivery bugs surface
    as counted clamps). *)

type shard_stat = Shard.shard_stat = {
  st_id : int;
  st_executed : int;
  st_xsends : int;
  st_clamped : int;
  st_peak : int;
  st_merges : int;
  st_stalls : int;
  st_wall : float;
}

val shard_stats : t -> shard_stat array
(** Per-shard self-profiling, in both modes: the sequential engine
    synthesizes entries from its per-shard attribution counters
    (merges/stalls/wall are 0 there).  [st_executed]/[st_xsends] are
    deterministic; the rest are not part of the byte-identity
    contract. *)

val windows : t -> int
(** Lookahead windows opened (0 for sequential or jobs = 1 runs). *)

val barrier_wall : t -> float
(** Host seconds the windowed coordinator spent at barriers (0 when
    never windowed). *)

val shard_executed : t -> int -> int
(** Events executed by one shard — shard-local, deterministic. *)

val shard_xsends : t -> int -> int
(** Cross-shard sends originated by one shard — shard-local,
    deterministic. *)

val step : t -> bool
(** [step sim] executes the next event; [false] when none remain.
    @raise Invalid_argument on a sharded simulator. *)

val run : t -> ?limit:int -> unit -> int
(** [run sim ()] executes events until none remain and returns the
    number executed by this call.  [limit] (default unlimited) bounds
    the count as a livelock guard.
    @raise Failure if [limit] is exhausted; the message carries the
    limit, events executed, the clock, and the pending count. *)
