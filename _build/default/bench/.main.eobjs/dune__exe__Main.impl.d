bench/main.ml: Analyze Array Bechamel Benchmark Hashtbl Lazy List Measure Mgs Mgs_apps Mgs_harness Mgs_util Printf Staged String Sys Test Time Toolkit
