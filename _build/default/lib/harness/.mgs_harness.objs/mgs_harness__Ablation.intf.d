lib/harness/ablation.mli: Mgs Sweep
