(* Zipfian rank sampling for the request-serving load generator.

   The CDF over ranks 0..n-1 with weight (i+1)^-theta is precomputed
   once and shared; each draw is one uniform deviate plus a binary
   search, so a sampler costs O(n) words regardless of how many
   requests it feeds.  Draws consume exactly one [Rng.float], which
   keeps the load schedule a pure function of the seed — the basis of
   the byte-identity guarantees across -j and --par. *)

type dist = { n : int; cdf : float array }

let dist ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.dist: n must be positive";
  if theta < 0. then invalid_arg "Zipf.dist: theta must be nonnegative";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. (float_of_int (i + 1) ** theta));
    cdf.(i) <- !acc
  done;
  let z = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. z
  done;
  (* guard against rounding: the last bucket must catch every deviate *)
  cdf.(n - 1) <- 1.;
  { n; cdf }

let n d = d.n

let mass d i =
  if i < 0 || i >= d.n then invalid_arg "Zipf.mass: rank out of range";
  if i = 0 then d.cdf.(0) else d.cdf.(i) -. d.cdf.(i - 1)

let draw d rng =
  let u = Mgs_util.Rng.float rng 1.0 in
  (* first rank whose cumulative mass exceeds u *)
  let lo = ref 0 and hi = ref (d.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
