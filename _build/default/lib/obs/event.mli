(** Structured protocol event records.

    One record per observable protocol action: a delivered active
    message, a LAN transfer, a protocol-engine state transition, or a
    synchronization episode.  Fields that do not apply carry [-1]
    ([vpn], processors, SSMPs) or [0] ([words], [cost], [dur]). *)

type engine =
  | Local_client  (** fault path of the faulting processor's SSMP *)
  | Remote_client  (** invalidation / write-back engine of an SSMP *)
  | Server  (** home-side page server *)
  | Network  (** active-message and LAN transport *)
  | Sync  (** lock and barrier episodes *)

type t = {
  time : int;  (** simulated time the event was recorded *)
  engine : engine;
  tag : string;  (** message tag or transition name *)
  vpn : int;  (** virtual page, [-1] if not page-related *)
  src : int;  (** source processor, [-1] if n/a *)
  dst : int;  (** destination processor, [-1] if n/a *)
  src_ssmp : int;
  dst_ssmp : int;
  words : int;  (** bulk payload words *)
  cost : int;  (** handler occupancy cycles *)
  dur : int;  (** latency from initiation to [time], 0 if instantaneous *)
  txn : int;  (** transaction this event serves ({!Span}), [-1] if none *)
}

val engine_name : engine -> string

val make :
  time:int ->
  engine:engine ->
  tag:string ->
  ?vpn:int ->
  ?src:int ->
  ?dst:int ->
  ?src_ssmp:int ->
  ?dst_ssmp:int ->
  ?words:int ->
  ?cost:int ->
  ?dur:int ->
  ?txn:int ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
