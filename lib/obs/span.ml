(* Causal span collector.

   A transaction is one protocol operation as the application sees it —
   a page fault, a release, a lock or barrier episode.  Each transaction
   gets a deterministic integer ID minted at initiation, and every piece
   of work done on its behalf (a LAN transfer, a DMA burst, a handler
   occupancy slice, a server-side queueing delay) is recorded as a span:
   a [t0, t1] interval with an engine label, linked to its parent span.
   The scheduler is deterministic, so IDs and spans are reproducible
   run-to-run and identical under parallel sweeps.

   Storage is per shard ("cell"): under the parallel engine each domain
   opens spans only in its own SSMP's cell, so the hot path shares
   nothing across domains.  Cells are merged at export by ordering each
   span's genealogy stamp — the key of the simulator event that opened
   it (see {!Mgs_engine.Shardq}) — which reconstructs the canonical
   execution order regardless of the job count.  Span and transaction
   IDs are renumbered densely in that order at export, so every export
   is byte-identical between sequential, jobs=1, and jobs>=2 runs.
   Single-cell stores skip stamping entirely and export raw IDs — the
   original single-domain behavior, byte for byte.

   Storage is bounded: past [capacity] spans (per cell) new opens are
   counted as dropped and return a sentinel context whose close is a
   no-op, so a run of any length cannot grow memory without bound. *)

type ctx = { txn : int; sid : int }

let none = { txn = -1; sid = -1 }

type span = {
  sid : int;
  parent : int; (* parent span id; -1 for a transaction root *)
  txn : int;
  label : string;
  engine : Event.engine;
  t0 : int;
  mutable t1 : int; (* -1 while open *)
  vpn : int;
  src : int;
  dst : int;
  src_ssmp : int;
  dst_ssmp : int;
  words : int;
}

(* Storage is struct-of-arrays: the integer fields of local span [l]
   live at [ints.(l * stride) ..], the label and engine in parallel
   arrays.  Opening a span writes array slots and allocates only the
   returned 2-field [ctx] — a per-message record-plus-[Some] here was
   one of the largest allocation sources in a traced run.  The [span]
   record above survives as the read-side view: [iter] materializes
   snapshots for the (cold) analysis and export paths.

   A span's public ID encodes its cell: [sid = local * ncells + cell],
   so a [ctx] stays a flat pair of ints and [close] can route back to
   the owning cell without a lookup.  With one cell the encoding is the
   identity. *)
let stride = 10

let f_parent = 0

let f_txn = 1

let f_t0 = 2

let f_t1 = 3

let f_vpn = 4

let f_src = 5

let f_dst = 6

let f_src_ssmp = 7

let f_dst_ssmp = 8

let f_words = 9

type cell = {
  mutable ints : int array; (* stride slots per span *)
  mutable labels : string array;
  mutable engines : Event.engine array;
  mutable keys : Mgs_engine.Shardq.key array; (* order stamps; ncells > 1 only *)
  mutable cn : int;
  mutable c_txns : int; (* local transaction mint counter *)
  mutable c_open : int;
  mutable c_dropped : int;
  mutable c_current : ctx;
}

type t = {
  capacity : int; (* per cell *)
  ncells : int;
  cells : cell array;
  mutable host_seq : int; (* order stamp for host-side (non-event) opens *)
}

let default_capacity = 1 lsl 17

let create ?(capacity = default_capacity) ?(cells = 1) () =
  if capacity <= 0 then invalid_arg "Span.create: capacity";
  if cells < 1 then invalid_arg "Span.create: cells";
  (* [capacity] is the TOTAL budget, divided among the cells: a
     16-SSMP machine must not retain (and allocate) 16x the memory of
     the single-cell store it replaced *)
  let capacity = max (min capacity 64) ((capacity + cells - 1) / cells) in
  let mk_cell () =
    let room = min capacity 1024 in
    {
      ints = Array.make (room * stride) 0;
      labels = Array.make room "";
      engines = Array.make room Event.Local_client;
      keys = (if cells > 1 then Array.make room Mgs_engine.Shardq.no_parent else [||]);
      cn = 0;
      c_txns = 0;
      c_open = 0;
      c_dropped = 0;
      c_current = none;
    }
  in
  { capacity; ncells = cells; cells = Array.init cells (fun _ -> mk_cell ()); host_seq = 0 }

let cells t = t.ncells

(* The cell the running domain writes to: the executing shard's, or
   cell 0 for host code (and for shards beyond the declared count). *)
let cur_cell t =
  let c = Mgs_engine.Shard.cur () in
  if c < 0 || c >= t.ncells then 0 else c

(* The order stamp for an emission happening now: the executing event's
   genealogy key, or a synthetic host key ordered by emission time then
   a host-side counter.  [sched = max_int] makes a host emission sort
   after every event emission of the same instant — matching the
   sequential engine, where host code runs only once the queue has
   drained past that time. *)
let stamp t ~time =
  if Mgs_engine.Shard.cur () >= 0 then Mgs_engine.Shard.running_key ()
  else begin
    let seq = t.host_seq in
    t.host_seq <- seq + 1;
    Mgs_engine.Shardq.key ~fire:time ~sched:max_int ~src:max_int ~seq
      ~parent:Mgs_engine.Shardq.no_parent
  end

let mint_in t cl c =
  let id = cl.c_txns in
  cl.c_txns <- id + 1;
  (id * t.ncells) + c

let mint_txn t =
  let c = cur_cell t in
  mint_in t t.cells.(c) c

let ensure_room t cl =
  if cl.cn >= Array.length cl.labels && cl.cn < t.capacity then begin
    let cap = min t.capacity (2 * Array.length cl.labels) in
    let ints = Array.make (cap * stride) 0 in
    Array.blit cl.ints 0 ints 0 (cl.cn * stride);
    cl.ints <- ints;
    let labels = Array.make cap "" in
    Array.blit cl.labels 0 labels 0 cl.cn;
    cl.labels <- labels;
    let engines = Array.make cap Event.Local_client in
    Array.blit cl.engines 0 engines 0 cl.cn;
    cl.engines <- engines;
    if t.ncells > 1 then begin
      let keys = Array.make cap Mgs_engine.Shardq.no_parent in
      Array.blit cl.keys 0 keys 0 cl.cn;
      cl.keys <- keys
    end
  end

(* Open a span.  [parent = none] starts a fresh transaction (a new ID is
   minted); otherwise the parent's transaction is inherited.  When the
   store is full the span is dropped (counted) and the returned context
   carries a negative [sid], which [close] ignores — the transaction ID
   still threads through so child spans that do fit stay attributed. *)
let open_span_x t ~(parent : ctx) ~time ~label ~engine ~vpn ~src ~dst ~src_ssmp ~dst_ssmp
    ~words =
  let c = cur_cell t in
  let cl = t.cells.(c) in
  let txn = if parent.txn >= 0 then parent.txn else mint_in t cl c in
  if cl.cn >= t.capacity then begin
    cl.c_dropped <- cl.c_dropped + 1;
    { txn; sid = -2 }
  end
  else begin
    ensure_room t cl;
    let l = cl.cn in
    let b = l * stride in
    cl.ints.(b + f_parent) <- (if parent.sid >= 0 then parent.sid else -1);
    cl.ints.(b + f_txn) <- txn;
    cl.ints.(b + f_t0) <- time;
    cl.ints.(b + f_t1) <- -1;
    cl.ints.(b + f_vpn) <- vpn;
    cl.ints.(b + f_src) <- src;
    cl.ints.(b + f_dst) <- dst;
    cl.ints.(b + f_src_ssmp) <- src_ssmp;
    cl.ints.(b + f_dst_ssmp) <- dst_ssmp;
    cl.ints.(b + f_words) <- words;
    cl.labels.(l) <- label;
    cl.engines.(l) <- engine;
    if t.ncells > 1 then cl.keys.(l) <- stamp t ~time;
    cl.cn <- l + 1;
    cl.c_open <- cl.c_open + 1;
    { txn; sid = (l * t.ncells) + c }
  end

(* Optional-argument convenience wrapper.  Hot paths call [open_span_x]
   directly: supplying an optional argument boxes it in a [Some] at
   every call site, which the per-message span opens can't afford. *)
let open_span t ~(parent : ctx) ~time ~label ~engine ?(vpn = -1) ?(src = -1) ?(dst = -1)
    ?(src_ssmp = -1) ?(dst_ssmp = -1) ?(words = 0) () =
  open_span_x t ~parent ~time ~label ~engine ~vpn ~src ~dst ~src_ssmp ~dst_ssmp ~words

let close t (ctx : ctx) ~time =
  if ctx.sid >= 0 then begin
    let c = ctx.sid mod t.ncells in
    let l = ctx.sid / t.ncells in
    let cl = t.cells.(c) in
    if l < cl.cn then begin
      let b = l * stride in
      if cl.ints.(b + f_t1) < 0 then begin
        cl.ints.(b + f_t1) <- max time cl.ints.(b + f_t0);
        cl.c_open <- cl.c_open - 1
      end
    end
  end

let current t = t.cells.(cur_cell t).c_current

let set_current t ctx = t.cells.(cur_cell t).c_current <- ctx

let count t = Array.fold_left (fun acc cl -> acc + cl.cn) 0 t.cells

let open_count t = Array.fold_left (fun acc cl -> acc + cl.c_open) 0 t.cells

let open_count_cell t c = t.cells.(c).c_open

let dropped t = Array.fold_left (fun acc cl -> acc + cl.c_dropped) 0 t.cells

let txns t = Array.fold_left (fun acc cl -> acc + cl.c_txns) 0 t.cells

(* Span [enc] (encoded public ID) materialized with raw encoded
   sid/parent/txn fields. *)
let enc_get t enc =
  let c = enc mod t.ncells in
  let l = enc / t.ncells in
  let cl = t.cells.(c) in
  let b = l * stride in
  {
    sid = enc;
    parent = cl.ints.(b + f_parent);
    txn = cl.ints.(b + f_txn);
    label = cl.labels.(l);
    engine = cl.engines.(l);
    t0 = cl.ints.(b + f_t0);
    t1 = cl.ints.(b + f_t1);
    vpn = cl.ints.(b + f_vpn);
    src = cl.ints.(b + f_src);
    dst = cl.ints.(b + f_dst);
    src_ssmp = cl.ints.(b + f_src_ssmp);
    dst_ssmp = cl.ints.(b + f_dst_ssmp);
    words = cl.ints.(b + f_words);
  }

(* --- canonical merged view ------------------------------------------ *)

(* Read-side view of a multi-cell store: every span ordered by its
   genealogy stamp (= canonical execution order), with span and
   transaction IDs renumbered densely in that order.  In the
   single-cell case the emission order already IS the execution order
   and raw IDs are already dense, so the view is the identity and no
   sort happens — exports from a single-cell store are byte-identical
   to the historical single-domain implementation. *)
type view = {
  v_ident : bool;
  v_order : int array; (* encoded sids, canonical order ([||] when ident) *)
  v_sid : int array; (* encoded sid -> dense sid ([||] when ident) *)
  v_txn : (int, int) Hashtbl.t; (* encoded txn -> dense txn *)
}

let view t =
  if t.ncells = 1 then
    { v_ident = true; v_order = [||]; v_sid = [||]; v_txn = Hashtbl.create 1 }
  else begin
    let total = count t in
    let order = Array.make total 0 in
    let idx = ref 0 in
    Array.iteri
      (fun c cl ->
        for l = 0 to cl.cn - 1 do
          order.(!idx) <- (l * t.ncells) + c;
          incr idx
        done)
      t.cells;
    let key_of enc = (t.cells.(enc mod t.ncells)).keys.(enc / t.ncells) in
    (* equal stamps only happen within one cell (one simulator event
       executes on exactly one shard), where the local index breaks the
       tie in emission order — so this comparison is total. *)
    Array.sort
      (fun a b ->
        let k = Mgs_engine.Shardq.cmp_key (key_of a) (key_of b) in
        if k <> 0 then k else compare a b)
      order;
    let maxcn = Array.fold_left (fun acc cl -> max acc cl.cn) 0 t.cells in
    let v_sid = Array.make (max 1 (maxcn * t.ncells)) (-1) in
    let v_txn = Hashtbl.create 256 in
    Array.iteri
      (fun dense enc ->
        v_sid.(enc) <- dense;
        let tx = (t.cells.(enc mod t.ncells)).ints.((enc / t.ncells * stride) + f_txn) in
        if not (Hashtbl.mem v_txn tx) then Hashtbl.add v_txn tx (Hashtbl.length v_txn))
      order;
    { v_ident = false; v_order = order; v_sid; v_txn }
  end

let view_sid v enc = if v.v_ident || enc < 0 then enc else v.v_sid.(enc)

let view_txn v tx =
  if v.v_ident || tx < 0 then tx
  else match Hashtbl.find_opt v.v_txn tx with Some d -> d | None -> -1

(* Map an encoded transaction ID (as carried on trace events) to its
   dense export ID.  [-1] (no transaction) maps to itself; a
   transaction none of whose spans survived maps to [-1]. *)
let txn_mapper t =
  let v = view t in
  fun tx -> view_txn v tx

let view_iter t v f =
  let emit enc =
    let s = enc_get t enc in
    f
      {
        s with
        sid = view_sid v enc;
        parent = view_sid v s.parent;
        txn = view_txn v s.txn;
      }
  in
  if v.v_ident then
    for l = 0 to t.cells.(0).cn - 1 do
      emit l
    done
  else Array.iter emit v.v_order

let iter t f = view_iter t (view t) f

let open_labels t =
  let acc = ref [] in
  Array.iter
    (fun cl ->
      for l = 0 to cl.cn - 1 do
        if cl.ints.((l * stride) + f_t1) < 0 then acc := cl.labels.(l) :: !acc
      done)
    t.cells;
  List.rev !acc

(* --- critical-path analysis ---------------------------------------- *)

(* Table-4 components of a remote page fault.  All totals are summed
   cycles across the analyzed faults; [residual] is end-to-end time not
   covered by any instrumented span (ideally ~0). *)
type breakdown = {
  faults : int;
  e2e : int;
  local : int; (* faulting-side handler + fault-path work *)
  wire : int; (* LAN transit (queueing + latency) *)
  dma : int; (* bulk page/diff transfer time *)
  server : int; (* home-side handler occupancy *)
  remote : int; (* third-party invalidation / write-back work *)
  queue : int; (* waiting out a release epoch at the server *)
  residual : int;
}

let zero_breakdown =
  {
    faults = 0;
    e2e = 0;
    local = 0;
    wire = 0;
    dma = 0;
    server = 0;
    remote = 0;
    queue = 0;
    residual = 0;
  }

let coverage b =
  if b.e2e = 0 then 1.0 else float_of_int (b.e2e - b.residual) /. float_of_int b.e2e

(* Message tags whose handler runs at the home server on behalf of a
   fault; their presence is what marks a fault transaction as remote. *)
let fetch_request_tags =
  [ "h.RREQ"; "h.WREQ"; "h.HLRC_RREQ"; "h.HLRC_WREQ"; "h.IVY_RREQ"; "h.IVY_WREQ" ]

let server_tags =
  [
    "h.RREQ"; "h.WREQ"; "h.HLRC_RREQ"; "h.HLRC_WREQ"; "h.IVY_RREQ"; "h.IVY_WREQ";
    "h.REL"; "h.SYNC"; "h.WNOTIFY"; "h.HLRC_DIFF"; "h.ACK"; "h.DIFF"; "h.1WDATA";
    "h.1WCLEAN"; "h.IVY_ACK"; "h.IVY_PAGE"; "h.IVY_GACK";
  ]

let remote_tags = [ "h.INV"; "h.1WINV"; "h.IVY_INV"; "h.IVY_RECALL"; "h.PINV"; "h.PINV_ACK"; "h.UPGRADE" ]

(* Attribution priority when spans of one transaction overlap in time
   (e.g. a parallel invalidation fan-out): each instant is charged to
   exactly one component, the highest-priority one active. *)
let component_of label =
  if label = "net.dma" then Some (5, `Dma)
  else if label = "net.wire" then Some (4, `Wire)
  else if List.mem label server_tags then Some (3, `Server)
  else if List.mem label remote_tags || (String.length label >= 3 && String.sub label 0 3 = "rc.")
  then Some (2, `Remote)
  else if label = "sv.queue" then Some (1, `Queue)
  else Some (0, `Local)

(* Engine classification from the label alone, so the active-message
   layer can open handler spans without protocol knowledge. *)
let engine_of_label label =
  if label = "net.wire" || label = "net.dma" then Event.Network
  else
    match component_of label with
    | Some (_, `Server) | Some (_, `Queue) -> Event.Server
    | Some (_, `Remote) -> Event.Remote_client
    | _ -> Event.Local_client

(* Charge the union of [ivals] (clipped to [lo, hi]) to components by a
   boundary sweep: at each elementary segment the highest-priority
   covering interval wins; uncovered segments are residual. *)
let attribute ~lo ~hi ivals acc =
  let ivals =
    List.filter_map
      (fun (a, b, pc) ->
        let a = max a lo and b = min b hi in
        if b > a then Some (a, b, pc) else None)
      ivals
  in
  let cuts =
    List.sort_uniq compare (lo :: hi :: List.concat_map (fun (a, b, _) -> [ a; b ]) ivals)
  in
  let rec sweep acc = function
    | a :: (b :: _ as rest) ->
      let seg = b - a in
      let best =
        List.fold_left
          (fun best (x, y, pc) ->
            if x <= a && y >= b then
              match best with
              | Some (p, _) when p >= fst pc -> best
              | _ -> Some pc
            else best)
          None ivals
      in
      let acc =
        match best with
        | None -> { acc with residual = acc.residual + seg }
        | Some (_, `Dma) -> { acc with dma = acc.dma + seg }
        | Some (_, `Wire) -> { acc with wire = acc.wire + seg }
        | Some (_, `Server) -> { acc with server = acc.server + seg }
        | Some (_, `Remote) -> { acc with remote = acc.remote + seg }
        | Some (_, `Queue) -> { acc with queue = acc.queue + seg }
        | Some (_, `Local) -> { acc with local = acc.local + seg }
      in
      sweep acc rest
    | _ -> acc
  in
  sweep acc cuts

let fault_breakdown t =
  (* group spans by transaction; the canonical view keeps the grouping
     and the txn iteration order identical across job counts *)
  let roots = Hashtbl.create 256 in
  let children = Hashtbl.create 256 in
  iter t (fun s ->
      if s.t1 >= 0 then
        if s.parent < 0 then Hashtbl.replace roots s.txn s
        else
          Hashtbl.replace children s.txn
            (s :: Option.value ~default:[] (Hashtbl.find_opt children s.txn)));
  let txn_ids =
    List.sort compare (Hashtbl.fold (fun txn _ acc -> txn :: acc) roots [])
  in
  List.fold_left
    (fun acc txn ->
      let root = Hashtbl.find roots txn in
      let kids = Option.value ~default:[] (Hashtbl.find_opt children txn) in
      let is_remote_fault =
        root.label = "fault"
        && List.exists (fun s -> List.mem s.label fetch_request_tags) kids
      in
      if not is_remote_fault then acc
      else begin
        let e2e = root.t1 - root.t0 in
        let ivals =
          List.filter_map
            (fun s ->
              match component_of s.label with
              | Some pc -> Some (s.t0, s.t1, pc)
              | None -> None)
            kids
        in
        let acc = { acc with faults = acc.faults + 1; e2e = acc.e2e + e2e } in
        attribute ~lo:root.t0 ~hi:root.t1 ivals acc
      end)
    zero_breakdown txn_ids

(* --- export ---------------------------------------------------------- *)

let json_escape = Json.escape

let span_json buf s =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"sid\":%d,\"parent\":%d,\"txn\":%d,\"label\":\"%s\",\"engine\":\"%s\",\"t0\":%d,\"t1\":%d,\"vpn\":%d,\"src\":%d,\"dst\":%d,\"src_ssmp\":%d,\"dst_ssmp\":%d,\"words\":%d}"
       s.sid s.parent s.txn (json_escape s.label) (Event.engine_name s.engine) s.t0 s.t1
       s.vpn s.src s.dst s.src_ssmp s.dst_ssmp s.words)

let json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":\"mgs-spans-1\",\"txns\":%d,\"dropped\":%d,\"spans\":["
       (txns t) (dropped t));
  let first = ref true in
  iter t (fun s ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      span_json buf s);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_json t oc = output_string oc (json t)

(* Chrome trace_event section: one async begin/end pair per span (the
   nestable 'b'/'e' phases group by id, so a whole transaction folds
   into one track) plus a flow arrow from each parent to its child,
   which Perfetto draws across processors. *)
let chrome_section buf t ~emit_sep =
  let v = view t in
  view_iter t v (fun s ->
      if s.t1 >= 0 then begin
        let pid = if s.dst_ssmp >= 0 then s.dst_ssmp else max s.src_ssmp 0 in
        let tid = if s.dst >= 0 then s.dst else max s.src 0 in
        emit_sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"txn\",\"ph\":\"b\",\"id\":%d,\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"txn\":%d,\"sid\":%d,\"parent\":%d,\"vpn\":%d}}"
             (json_escape s.label) s.txn s.t0 pid tid s.txn s.sid s.parent s.vpn);
        emit_sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"txn\",\"ph\":\"e\",\"id\":%d,\"ts\":%d,\"pid\":%d,\"tid\":%d}"
             (json_escape s.label) s.txn s.t1 pid tid);
        if s.parent >= 0 then begin
          (* flow arrow: from the parent's location at the moment the
             child begins, to the child — the causal hand-off.  The
             parent's dense ID decodes back through the view to the raw
             store for its location fields. *)
          let p_enc =
            if v.v_ident then s.parent
            else (
              (* dense -> encoded: position [s.parent] of the order *)
              v.v_order.(s.parent))
          in
          let p = enc_get t p_enc in
          let ppid = if p.dst_ssmp >= 0 then p.dst_ssmp else max p.src_ssmp 0 in
          let ptid = if p.dst >= 0 then p.dst else max p.src 0 in
          emit_sep ();
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%d,\"ts\":%d,\"pid\":%d,\"tid\":%d}"
               s.sid s.t0 ppid ptid);
          emit_sep ();
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%d,\"pid\":%d,\"tid\":%d}"
               s.sid s.t0 pid tid)
        end
      end)
