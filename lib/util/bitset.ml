type t = { words : Bytes.t; cap : int; mutable card : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make ((n + 7) / 8) '\000'; cap = n; card = 0 }

let capacity s = s.cap

let check s i = if i < 0 || i >= s.cap then invalid_arg "Bitset: out of range"

let get_bit s i = Char.code (Bytes.get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit s i b =
  let byte = Char.code (Bytes.get s.words (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte' = if b then byte lor mask else byte land lnot mask in
  Bytes.set s.words (i lsr 3) (Char.chr byte')

let mem s i =
  check s i;
  get_bit s i

let add s i =
  check s i;
  if not (get_bit s i) then begin
    set_bit s i true;
    s.card <- s.card + 1
  end

let remove s i =
  check s i;
  if get_bit s i then begin
    set_bit s i false;
    s.card <- s.card - 1
  end

let cardinal s = s.card

let is_empty s = s.card = 0

let clear s =
  Bytes.fill s.words 0 (Bytes.length s.words) '\000';
  s.card <- 0

(* Byte-at-a-time scan: sparse sets (the common case for dirty-word
   bitmaps and directories) skip zero bytes without testing each bit. *)
let iter f s =
  for b = 0 to Bytes.length s.words - 1 do
    let byte = Char.code (Bytes.unsafe_get s.words b) in
    if byte <> 0 then begin
      let base = b lsl 3 in
      for i = 0 to 7 do
        if byte land (1 lsl i) <> 0 then f (base + i)
      done
    end
  done

let elements s =
  let acc = ref [] in
  for i = s.cap - 1 downto 0 do
    if get_bit s i then acc := i :: !acc
  done;
  !acc

let copy s = { words = Bytes.copy s.words; cap = s.cap; card = s.card }

let union_into dst src =
  if dst.cap <> src.cap then invalid_arg "Bitset.union_into: capacity mismatch";
  iter (fun i -> add dst i) src

let choose s =
  let rec go i = if i >= s.cap then None else if get_bit s i then Some i else go (i + 1) in
  go 0

let equal a b =
  if a.cap <> b.cap then invalid_arg "Bitset.equal: capacity mismatch";
  a.card = b.card && Bytes.equal a.words b.words

let pp ppf s =
  Format.fprintf ppf "{%s}" (String.concat ", " (List.map string_of_int (elements s)))
