lib/obs/metrics.mli: Hist
