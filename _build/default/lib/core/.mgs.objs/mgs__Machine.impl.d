lib/core/machine.ml: Allocator Am Api Array Bitset Coherence Costs Cpu Geom Hashtbl Lan List Mgs_engine Mlock Printf Pstats Queue Report Sim State Sys Tlb Topology
