lib/obs/trace.mli: Event Format Hist Span
