test/test_stress.ml: Alcotest Array List Mgs Mgs_mem Mgs_sync Mgs_util Printf QCheck2 QCheck_alcotest
