test/test_mem.ml: Alcotest Array Format Int64 List Mgs_mem Mgs_util Printf QCheck2 QCheck_alcotest
