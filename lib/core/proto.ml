open State

(* ------------------------------------------------------------------ *)
(* Adaptive coherence plumbing (no-ops unless [m.adapt]).             *)
(* ------------------------------------------------------------------ *)

(* Where this SSMP should address the page's home.  Clients consult
   their own SSMP's view table (updated by grant/RACK handlers, i.e.
   always on the owning shard); a stale view costs one forwarding hop,
   never correctness.  With the adaptive layer off this is exactly the
   allocator's static home. *)
let home_for m ~ssmp vpn =
  match m.adapt with
  | None -> home_proc_of_vpn m vpn
  | Some a -> (
    match Hashtbl.find_opt a.Adapt.views.(ssmp) vpn with
    | Some p -> p
    | None -> home_proc_of_vpn m vpn)

(* Record where the home answered from.  Only ever called from message
   handlers executing on [ssmp]'s own shard. *)
let view_note m ~ssmp ~vpn proc =
  match m.adapt with
  | None -> ()
  | Some a ->
    if proc = home_proc_of_vpn m vpn then Hashtbl.remove a.Adapt.views.(ssmp) vpn
    else Hashtbl.replace a.Adapt.views.(ssmp) vpn proc

(* A server-bound message addressed to [self], a processor whose SSMP
   no longer homes [vpn]: repost it toward the current home and tell
   the caller to stop (the sentry now belongs to another shard).  The
   check reads only the executing shard's own forwarding row.  Chains
   of forwards terminate: each hop follows a strictly newer migration,
   and the destination SSMP's stale entry is cleared by the MIGRATE
   custody message before (FIFO) any forward can bounce off it. *)
let forward m ~self ~vpn ~tag ~cost k =
  match m.adapt with
  | None -> false
  | Some a -> (
    let ssmp = Topology.ssmp_of_proc m.topo self in
    match Hashtbl.find_opt a.Adapt.fwd.(ssmp) vpn with
    | None -> false
    | Some next ->
      (stats m).adapt_fwds <- (stats m).adapt_fwds + 1;
      Am.post m.am ~tag ~src:self ~dst:next ~words:0 ~cost (fun _t -> k next);
      true)

(* A regime switch: counted, and emitted as an ADAPT trace event whose
   [cost]/[words] carry the old/new regime codes (trace_lint checks the
   transition walks the lattice and never lands mid-epoch). *)
let adapt_switch m se ~old ~nxt =
  (stats m).adapt_reclass <- (stats m).adapt_reclass + 1;
  if tracing then
    trace m se.s_vpn "adapt: regime %s -> %s" (Adapt.regime_name old)
      (Adapt.regime_name nxt);
  obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"ADAPT" ~vpn:se.s_vpn
    ~src:se.s_cur_home ~dst:(-1) ~words:(Adapt.code nxt) ~cost:(Adapt.code old) ~dur:0

(* Classifier window bump at grant time (so requests parked through a
   release are counted when actually served). *)
let adapt_count_grant se ~ssmp ~write =
  match se.s_ad with
  | None -> ()
  | Some p ->
    if write then begin
      p.Adapt.w_wreq <- p.Adapt.w_wreq + 1;
      Bitset.add p.Adapt.w_writers ssmp
    end
    else begin
      p.Adapt.w_rreq <- p.Adapt.w_rreq + 1;
      Bitset.add p.Adapt.w_readers ssmp
    end

(* Move [se]'s home to the dominant writer's SSMP, keeping the local
   processor slot.  Shared by the MGS epoch-boundary decision and the
   HLRC merge-time decision; the caller has already checked that the
   move is safe (no outstanding directory members / no epoch open). *)
let adapt_move_home m a (p : Adapt.page) se =
  let cur = se.s_cur_home in
  let cur_ssmp = Topology.ssmp_of_proc m.topo cur in
  let dom = p.Adapt.dom in
  let nhome = global_proc m dom (local_idx m cur) in
  let vpn = se.s_vpn in
  (stats m).adapt_migs <- (stats m).adapt_migs + 1;
  if tracing then trace m vpn "adapt: home %d -> %d (dominant ssmp %d)" cur nhome dom;
  obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"ADAPT.MIG" ~vpn ~src:cur ~dst:nhome
    ~words:m.geom.Geom.page_words ~cost:0 ~dur:0;
  se.s_cur_home <- nhome;
  Hashtbl.replace a.Adapt.fwd.(cur_ssmp) vpn nhome;
  Hashtbl.replace a.Adapt.views.(cur_ssmp) vpn nhome;
  p.Adapt.dom_streak <- 0;
  (* The custody message pays the page transfer and clears the
     destination's stale forwarding entry (if the page once lived
     there), so a page migrating back never chases its own tail. *)
  Am.post m.am ~tag:"MIGRATE" ~src:cur ~dst:nhome ~words:m.geom.Geom.page_words
    ~cost:
      (m.costs.proto.frame_alloc
      + (m.geom.Geom.page_words * m.costs.proto.copy_per_word))
    (fun _t ->
      Hashtbl.remove a.Adapt.fwd.(dom) vpn;
      Hashtbl.replace a.Adapt.views.(dom) vpn nhome)

(* ------------------------------------------------------------------ *)
(* Server engine: page replication (arcs 17-19, 22).                  *)
(* ------------------------------------------------------------------ *)

(* Ship a copy of the master page to [requester], granting its SSMP
   read or write privilege.  The receiver-side handler allocates the
   frame (and the twin, for writes) and installs the page, then resumes
   the faulting fiber, which still holds the mapping lock. *)
let send_data m se ~requester ~write =
  let c = m.costs in
  let ssmp = Topology.ssmp_of_proc m.topo requester in
  let cur = se.s_cur_home and vpn = se.s_vpn in
  (* Adaptive regimes act at grant time.  Invalidate-on-read: migratory
     data gets write privilege on a read request, skipping the later
     upgrade round trip.  Single-writer: the first (sole) writer gets
     its copy without a twin — no twin to allocate now, nothing to diff
     at recall. *)
  let eff_write =
    write
    || (match se.s_ad with Some p -> p.Adapt.regime = Adapt.Rinv | None -> false)
  in
  let notwin =
    eff_write
    && (match se.s_ad with
       | Some p -> p.Adapt.regime = Adapt.Rsw && Bitset.is_empty se.s_write_dir
       | None -> false)
  in
  adapt_count_grant se ~ssmp ~write:eff_write;
  if eff_write then begin
    Bitset.add se.s_write_dir ssmp;
    se.s_state <- S_write
  end
  else Bitset.add se.s_read_dir ssmp;
  if not (Hashtbl.mem se.s_frame_procs ssmp) then Hashtbl.replace se.s_frame_procs ssmp requester;
  if tracing then trace m se.s_vpn "send_data -> proc %d (ssmp %d) write=%b rd=%s wr=%s" requester ssmp eff_write
    (Format.asprintf "%a" Bitset.pp se.s_read_dir)
    (Format.asprintf "%a" Bitset.pp se.s_write_dir);
  obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"sv.send_data" ~vpn:se.s_vpn
    ~src:cur ~dst:requester ~words:m.geom.Geom.page_words ~cost:0 ~dur:0;
  let payload = Pagedata.copy se.s_master in
  let install_cost =
    c.proto.frame_alloc
    +
    if eff_write && not notwin then
      c.proto.twin_alloc + (m.geom.Geom.page_words * c.proto.twin_per_word)
    else 0
  in
  let tag = if eff_write then "WDAT" else "RDAT" in
  Am.post m.am ~tag ~src:cur ~dst:requester ~words:m.geom.Geom.page_words
    ~cost:install_cost (fun _t ->
      let ce = get_centry m ssmp vpn in
      assert (ce.pstate = P_busy);
      assert (Mlock.held ce.mlock);
      bump_gen m;
      ce.cdata <- Some payload;
      ce.ctwin <-
        (if eff_write && not notwin then Some (take_twin ce ~from:payload) else None);
      ce.c_notwin <- notwin;
      ce.frame_owner <- local_idx m requester;
      ce.pstate <- (if eff_write then P_write else P_read);
      ce.c_dirty <- false;
      Bitset.clear ce.tlb_dir;
      view_note m ~ssmp ~vpn cur;
      match ce.fetch_resume with
      | Some resume ->
        ce.fetch_resume <- None;
        resume ()
      | None -> assert false)

(* RREQ / WREQ arrival at the home (arcs 17-19; queued by arc 22 during
   a release).  [self] is the processor the message was addressed to —
   a former home forwards instead of touching the (migrated) sentry. *)
let rec server_req m ~self ~vpn ~requester ~write =
  if
    forward m ~self ~vpn
      ~tag:(if write then "WREQ" else "RREQ")
      ~cost:m.costs.proto.server_op
      (fun self -> server_req m ~self ~vpn ~requester ~write)
  then ()
  else begin
    let se = get_sentry m vpn in
    obs_emit m ~engine:Mgs_obs.Event.Server ~tag:(if write then "sv.wreq" else "sv.rreq")
      ~vpn ~src:requester ~dst:se.s_cur_home ~words:0 ~cost:0 ~dur:0;
    match se.s_state with
    | S_rel ->
      (* Arc 22: the fault waits out the release epoch.  The queueing
         delay is a span of its own — this is the "queue" component of
         the latency breakdown — and the stored context keeps the
         eventual grant attributed to the requester's transaction. *)
      let q =
        span_open m ~label:"sv.queue" ~engine:Mgs_obs.Event.Server ~vpn ~src:requester
          ~dst:se.s_cur_home ()
      in
      if write then se.s_pend_wr <- (requester, q) :: se.s_pend_wr
      else se.s_pend_rd <- (requester, q) :: se.s_pend_rd
    | S_read | S_write ->
      (* a second writing SSMP ends the single-writer regime on the
         spot (between epochs, so never mid-epoch) *)
      (match se.s_ad with
      | Some p
        when write
             && p.Adapt.regime = Adapt.Rsw
             && (not (Bitset.is_empty se.s_write_dir))
             && not (Bitset.mem se.s_write_dir (Topology.ssmp_of_proc m.topo requester))
        -> (
        match Adapt.demote p with
        | Some (old, nxt) -> adapt_switch m se ~old ~nxt
        | None -> ())
      | _ -> ());
      send_data m se ~requester ~write
  end

(* WNOTIFY arrival (arc 18): an SSMP upgraded its read copy in place.
   During REL_IN_PROG the notification is stale by construction — the
   in-flight INV will collect the SSMP's writes as a DIFF — so it is
   dropped. *)
let rec server_wnotify m ~self ~vpn ~ssmp =
  if
    forward m ~self ~vpn ~tag:"WNOTIFY" ~cost:m.costs.proto.server_op (fun self ->
        server_wnotify m ~self ~vpn ~ssmp)
  then ()
  else begin
    let se = get_sentry m vpn in
    if tracing then trace m vpn "WNOTIFY from ssmp %d (state rel=%b)" ssmp (se.s_state = S_rel);
    obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"sv.wnotify" ~vpn ~src:(-1) ~dst:(-1) ~words:0 ~cost:0 ~dur:0;
    match se.s_state with
    | S_rel -> ()
    | S_read | S_write ->
      if Bitset.mem se.s_read_dir ssmp then begin
        (match se.s_ad with
        | Some p ->
          p.Adapt.w_upg <- p.Adapt.w_upg + 1;
          Bitset.add p.Adapt.w_writers ssmp;
          (* an upgrader beside an existing writer ends single-writer *)
          if p.Adapt.regime = Adapt.Rsw && not (Bitset.is_empty se.s_write_dir) then (
            match Adapt.demote p with
            | Some (old, nxt) -> adapt_switch m se ~old ~nxt
            | None -> ())
        | None -> ());
        Bitset.remove se.s_read_dir ssmp;
        Bitset.add se.s_write_dir ssmp;
        se.s_state <- S_write
      end
  end

(* ------------------------------------------------------------------ *)
(* Release completion at the server (arc 23).                          *)
(* ------------------------------------------------------------------ *)

(* One adaptive decision, taken as the final act of a fully completed
   epoch (never during an extension pass or with a follow-up epoch
   already started): count residency, classify the window, apply the
   regime policy, and migrate the home to a dominant writer's SSMP.
   Everything is a pure function of directory state, so the decision is
   deterministic; and because it runs on the serving shard at an epoch
   boundary, regime transitions are never mid-epoch and migration never
   races reply collection. *)
let adapt_decide m a se (p : Adapt.page) =
  let st = stats m in
  (match p.Adapt.regime with
  | Adapt.Rmw -> st.adapt_res_mw <- st.adapt_res_mw + 1
  | Adapt.Rsw -> st.adapt_res_sw <- st.adapt_res_sw + 1
  | Adapt.Rinv -> st.adapt_res_inv <- st.adapt_res_inv + 1);
  (match Adapt.decide p with
  | Some (old, nxt) -> adapt_switch m se ~old ~nxt
  | None -> ());
  if Adapt.wants_migration p then begin
    let cur_ssmp = Topology.ssmp_of_proc m.topo se.s_cur_home in
    let dom = p.Adapt.dom in
    (* Re-home only when the dominant writer's SSMP is not already the
       home and no other SSMP holds a copy (a lone write copy at [dom]
       itself is fine — that is exactly the page we are chasing).
       Inter-SSMP delivery takes at least the LAN latency — the
       engine's lookahead — so the new home's shard cannot touch the
       sentry before this shard's epoch-boundary writes are visible. *)
    if
      dom <> cur_ssmp
      && Bitset.is_empty se.s_read_dir
      && (Bitset.is_empty se.s_write_dir
         || (Bitset.cardinal se.s_write_dir = 1 && Bitset.mem se.s_write_dir dom))
    then adapt_move_home m a p se
  end

let rec complete_release m se =
  if tracing then trace m se.s_vpn "complete_release: retained=%d pending_diffs=%d page=%b"
    se.s_retained (List.length se.s_pending_diffs) (se.s_pending_page <> None);
  (* Merge buffered write-backs: the retained writer's full page first,
     then every diff (diffs carry exactly the words their writers
     modified this epoch, so they must win over the full page).  A
     twinless copy recalled by an epoch extension also ships a full
     page, one that predates the first pass's merge — re-apply the
     stashed first-pass diffs over it so they are not clobbered. *)
  (match se.s_pending_page with
  | Some p -> Pagedata.blit ~src:p ~dst:se.s_master
  | None -> ());
  List.iter (fun d -> Pagedata.apply_diff se.s_master d) se.s_ext_diffs;
  se.s_ext_diffs <- [];
  let had_diffs = se.s_pending_diffs <> [] in
  let applied = List.rev se.s_pending_diffs in
  List.iter (fun d -> Pagedata.apply_diff se.s_master d) applied;
  se.s_pending_page <- None;
  se.s_pending_diffs <- [];
  if had_diffs && se.s_retained >= 0 then begin
    (* A concurrent upgrader (WNOTIFY racing the REL) also wrote this
       page, so the "single" writer's retained copy misses the merged
       diff words.  Recall it with a plain invalidation and finish the
       release when its reply arrives. *)
    let ssmp = se.s_retained in
    let cur = se.s_cur_home in
    se.s_retained <- -1;
    (* A twinless retained copy cannot diff at the recall: it yields its
       whole (pre-merge) page, so stash this pass's diffs for re-merge. *)
    if se.s_retained_notwin then se.s_ext_diffs <- applied;
    se.s_retained_notwin <- false;
    se.s_count <- 1;
    (stats m).invals <- (stats m).invals + 1;
    obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"sv.epoch_extend" ~vpn:se.s_vpn
      ~src:cur ~dst:(-1) ~words:0 ~cost:0 ~dur:0;
    let dst = Hashtbl.find se.s_frame_procs ssmp in
    Am.post m.am ~tag:"INV" ~src:cur ~dst ~words:0 ~cost:0 (fun _t ->
        client_inv m ~ssmp ~vpn:se.s_vpn ~single:false ~reply_to:cur)
  end
  else begin
  Bitset.clear se.s_read_dir;
  Bitset.clear se.s_write_dir;
  (* The single-writer optimization lets one SSMP keep its read-write
     copy across the release; the server must keep it in the write
     directory so a later release by anyone recalls that copy.  (The
     paper's Table 1 shows the directories cleared outright, but the
     retained copy of arc 16/tt=3 is only coherent if its membership
     survives — we keep it.) *)
  if se.s_retained >= 0 then Bitset.add se.s_write_dir se.s_retained;
  se.s_retained <- -1;
  se.s_state <- (if Bitset.is_empty se.s_write_dir then S_read else S_write);
  (* Epoch complete: master merged, directories rebuilt.  The release-
     visibility oracle compares the master against the shadow here. *)
  obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"sv.epoch_end" ~vpn:se.s_vpn
    ~src:se.s_cur_home ~dst:(-1) ~words:0 ~cost:0 ~dur:0;
  let racks = se.s_pend_rl and rd = se.s_pend_rd and wr = se.s_pend_wr in
  se.s_pend_rl <- [];
  se.s_pend_rd <- [];
  se.s_pend_wr <- [];
  (* Drain the parked work under each waiter's own span context: the
     RACK / page grant leaves here, inside the last reply's handler, but
     belongs to the waiter's transaction. *)
  List.iter (fun (p, ctx) -> span_with m ctx (fun () -> send_rack m se p)) (List.rev racks);
  let grant ~write (r, qctx) =
    span_close m qctx;
    span_with m qctx (fun () -> send_data m se ~requester:r ~write)
  in
  List.iter (grant ~write:false) (List.rev rd);
  List.iter (grant ~write:true) (List.rev wr);
  (* Deferred RELs: all their writes precede this point, so one batched
     follow-up epoch covers every one of them.  Releasers whose SSMP no
     longer holds a copy were fully merged by the epoch that just
     completed and can be acknowledged outright. *)
  (match se.s_pend_rel_next with
  | [] -> ()
  | rels ->
    se.s_pend_rel_next <- [];
    let covered, pending =
      List.partition
        (fun (r, _) ->
          let rs = Topology.ssmp_of_proc m.topo r in
          not (Bitset.mem se.s_read_dir rs || Bitset.mem se.s_write_dir rs))
        rels
    in
    List.iter (fun (p, ctx) -> span_with m ctx (fun () -> send_rack m se p)) covered;
    if pending <> [] then start_epoch m se ~releasers:(List.rev pending));
  (* Epoch boundary: the one place regimes switch and homes move.  A
     batched follow-up epoch (S_rel again) defers the decision to its
     own completion. *)
  (match (m.adapt, se.s_ad) with
  | Some a, Some p when se.s_state <> S_rel -> adapt_decide m a se p
  | _ -> ())
  end

and send_rack m se proc =
  let cur = se.s_cur_home and vpn = se.s_vpn in
  Am.post m.am ~tag:"RACK" ~src:cur ~dst:proc ~words:0 ~cost:0 (fun _t ->
      view_note m ~ssmp:(Topology.ssmp_of_proc m.topo proc) ~vpn cur;
      match m.rel_resume.(proc) with
      | Some resume ->
        m.rel_resume.(proc) <- None;
        resume ()
      | None -> assert false)

(* Begin an invalidation epoch on behalf of [releasers] (arcs 20-21). *)
and start_epoch m se ~releasers =
  assert (se.s_state <> S_rel);
  let targets =
    let u = Bitset.copy se.s_read_dir in
    Bitset.union_into u se.s_write_dir;
    Bitset.elements u
  in
  let single =
    m.features.single_writer_opt
    && se.s_state = S_write
    && Bitset.cardinal se.s_write_dir = 1
  in
  se.s_state <- S_rel;
  se.s_count <- List.length targets;
  se.s_retained <- -1;
  se.s_pend_rl <- releasers;
  se.s_pend_rd <- [];
  se.s_pend_wr <- [];
  let cur = se.s_cur_home in
  obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"sv.epoch_start" ~vpn:se.s_vpn
    ~src:cur ~cost:se.s_count ~dst:(-1) ~words:0 ~dur:0;
  if targets = [] then complete_release m se
  else
    List.iter
      (fun ssmp ->
        let sw = single && Bitset.mem se.s_write_dir ssmp in
        if sw then (stats m).one_winvals <- (stats m).one_winvals + 1
        else (stats m).invals <- (stats m).invals + 1;
        let dst = Hashtbl.find se.s_frame_procs ssmp in
        Am.post m.am
          ~tag:(if sw then "1WINV" else "INV")
          ~src:cur ~dst ~words:0 ~cost:0
          (fun _t -> client_inv m ~ssmp ~vpn:se.s_vpn ~single:sw ~reply_to:cur))
      targets

(* ACK / DIFF / 1WDATA / YIELD arrival at the home (arcs 22-23). *)
and server_collect m ~vpn ~ssmp ~payload =
  let se = get_sentry m vpn in
  if tracing then trace m vpn "collect from ssmp %d: %s (count %d -> %d)" ssmp
    (match payload with
    | `Ack -> "ACK"
    | `Diff d -> Printf.sprintf "DIFF(%d)" (Pagedata.diff_size d)
    | `Page _ -> "PAGE"
    | `Clean _ -> "1WCLEAN"
    | `Yield _ -> "YIELD")
    se.s_count (se.s_count - 1);
  obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"sv.collect" ~vpn ~dst:se.s_cur_home
    ~cost:se.s_count ~src:(-1) ~words:0 ~dur:0;
  assert (se.s_state = S_rel);
  (match payload with
  | `Ack ->
    (stats m).acks <- (stats m).acks + 1;
    (* under invalidate-on-read, a write grant recalled clean is the
       evidence that the eager grant was wasted (classifier input) *)
    (match se.s_ad with
    | Some p when Bitset.mem se.s_write_dir ssmp ->
      p.Adapt.w_clean <- p.Adapt.w_clean + 1
    | _ -> ());
    Hashtbl.remove se.s_frame_procs ssmp
  | `Diff d ->
    se.s_pending_diffs <- d :: se.s_pending_diffs;
    Hashtbl.remove se.s_frame_procs ssmp
  | `Page (p, nw) ->
    assert (se.s_pending_page = None);
    se.s_pending_page <- Some p;
    se.s_retained <- ssmp;
    se.s_retained_notwin <- nw
  | `Clean nw ->
    se.s_retained <- ssmp;
    se.s_retained_notwin <- nw
  | `Yield p ->
    (* a twinless write copy surrendering its page wholesale (no twin
       to diff against); the frame is freed, nothing is retained *)
    assert (se.s_pending_page = None);
    se.s_pending_page <- Some p;
    Hashtbl.remove se.s_frame_procs ssmp);
  se.s_count <- se.s_count - 1;
  assert (se.s_count >= 0);
  if se.s_count = 0 then complete_release m se

(* ------------------------------------------------------------------ *)
(* Remote Client engine: invalidation and write-back (arcs 14-16).     *)
(* ------------------------------------------------------------------ *)

(* All PINV_ACKs are in: clean up the frame and answer the server.
   Runs with the mapping lock held; releases it.  [reply_to] is the
   epoch owner, captured on the server's shard when the INV was posted —
   the sentry itself (whose home may since be mid-migration) is never
   read from this shard. *)
and finish_inv m ~ssmp ~vpn ~reply_to =
  let c = m.costs in
  let ce = get_centry m ssmp vpn in
  let rc = global_proc m ssmp ce.frame_owner in
  let home = reply_to in
  obs_emit m ~engine:Mgs_obs.Event.Remote_client ~tag:"rc.finish_inv" ~vpn ~src:rc ~dst:home
    ~cost:ce.inv_tt ~words:0 ~dur:0;
  let dirty = ref 0 in
  bump_gen m;
  (* Page cleaning also scrubs the cache model's metadata so a future
     refetch of this virtual page cannot see stale tags. *)
  ignore (Coherence.flush_page m.caches.(ssmp) ~vpn ~dirty);
  Bitset.clear ce.tlb_dir;
  let was_dirty = ce.c_dirty in
  ce.c_dirty <- false;
  match ce.inv_tt with
  | 2 when not was_dirty ->
    (* Write copy, but the dirty bit is clear: nothing changed since the
       last twin sync, so free the page and acknowledge without paying
       for a diff. *)
    ce.cdata <- None;
    retire_twin ce;
    ce.pstate <- P_inv;
    ce.c_notwin <- false;
    Mlock.release m.sim ce.mlock;
    Am.post m.am ~tag:"ACK" ~src:rc ~dst:home ~words:0 ~cost:0 (fun _t ->
        server_collect m ~vpn ~ssmp ~payload:`Ack)
  | 3 when not was_dirty ->
    (* Retained copy already in sync with the home: a cheap 1WCLEAN
       keeps the retention without resending the page. *)
    (stats m).one_wclean <- (stats m).one_wclean + 1;
    Mlock.release m.sim ce.mlock;
    let nw = ce.c_notwin in
    Am.post m.am ~tag:"1WCLEAN" ~src:rc ~dst:home ~words:0 ~cost:0 (fun _t ->
        server_collect m ~vpn ~ssmp ~payload:(`Clean nw))
  | 1 ->
    (* Read copy: free the page and acknowledge.  With the early-ack
       optimization (paper section 4.2.4) the ACK leaves before the
       cleaning work completes — read-only data has no coherence issue,
       so the cleaning only needs to finish before the frame is reused,
       which the mapping lock guarantees. *)
    ce.cdata <- None;
    retire_twin ce;
    ce.pstate <- P_inv;
    ce.c_notwin <- false;
    if m.features.early_read_ack then begin
      Am.post m.am ~tag:"ACK" ~src:rc ~dst:home ~words:0 ~cost:0 (fun _t ->
          server_collect m ~vpn ~ssmp ~payload:`Ack);
      (* the cleaning runs after the ACK, holding only the mapping *)
      let clean = Geom.lines_per_page m.geom * c.proto.clean_per_line in
      Am.run_on m.am ~tag:"rc.clean" ~proc:rc ~at:(Sim.now m.sim) ~cost:clean (fun _t ->
          Mlock.release m.sim ce.mlock)
    end
    else begin
      Mlock.release m.sim ce.mlock;
      Am.post m.am ~tag:"ACK" ~src:rc ~dst:home ~words:0 ~cost:0 (fun _t ->
          server_collect m ~vpn ~ssmp ~payload:`Ack)
    end
  | 2 when ce.c_notwin ->
    (* Twinless write copy (single-writer regime) recalled by a plain
       invalidation: there is no twin to diff against, so yield the
       whole page and free the frame.  This is the price of skipping
       the twin — paid only when the single-writer call was wrong. *)
    let data = Option.get ce.cdata in
    let snapshot = Pagedata.copy data in
    (stats m).adapt_yields <- (stats m).adapt_yields + 1;
    ce.cdata <- None;
    retire_twin ce;
    ce.pstate <- P_inv;
    ce.c_notwin <- false;
    Mlock.release m.sim ce.mlock;
    Am.post m.am ~tag:"YIELD" ~src:rc ~dst:home ~words:m.geom.Geom.page_words
      ~cost:(m.geom.Geom.page_words * c.proto.copy_per_word) (fun _t ->
        server_collect m ~vpn ~ssmp ~payload:(`Yield snapshot))
  | 2 ->
    (* Write copy: diff against the twin, free the page, send the diff. *)
    let data = Option.get ce.cdata and twin = Option.get ce.ctwin in
    let d = Pagedata.diff data ~twin in
    let nd = Pagedata.diff_size d in
    (stats m).diffs <- (stats m).diffs + 1;
    (stats m).diff_words <- (stats m).diff_words + nd;
    let diff_cost =
      (m.geom.Geom.page_words * c.proto.diff_per_word) + (nd * c.proto.diff_word_out)
    in
    ce.cdata <- None;
    retire_twin ce;
    ce.pstate <- P_inv;
    Am.run_on m.am ~tag:"rc.diff" ~proc:rc ~at:(Sim.now m.sim) ~cost:diff_cost (fun _t ->
        Mlock.release m.sim ce.mlock;
        Am.post m.am ~tag:"DIFF" ~src:rc ~dst:home ~words:(2 * nd)
          ~cost:(nd * c.proto.merge_per_word) (fun _t ->
            server_collect m ~vpn ~ssmp ~payload:(`Diff d)))
  | 3 when ce.c_notwin ->
    (* Single-writer regime: the retained copy has no twin to rebuild —
       ship the page home and keep the copy, skipping the retwin. *)
    let data = Option.get ce.cdata in
    let snapshot = Pagedata.copy data in
    (stats m).one_wdata <- (stats m).one_wdata + 1;
    Mlock.release m.sim ce.mlock;
    Am.post m.am ~tag:"1WDATA" ~src:rc ~dst:home ~words:m.geom.Geom.page_words
      ~cost:(m.geom.Geom.page_words * c.proto.copy_per_word) (fun _t ->
        server_collect m ~vpn ~ssmp ~payload:(`Page (snapshot, true)))
  | 3 ->
    (* Single-writer optimization: ship the whole page home, keep the
       copy cached with a fresh twin. *)
    let data = Option.get ce.cdata in
    let snapshot = Pagedata.copy data in
    (match ce.ctwin with
    | Some t -> Pagedata.retwin t ~from:data
    | None -> assert false);
    (stats m).one_wdata <- (stats m).one_wdata + 1;
    let retwin_cost = m.geom.Geom.page_words * c.proto.twin_per_word in
    Am.run_on m.am ~tag:"rc.retwin" ~proc:rc ~at:(Sim.now m.sim) ~cost:retwin_cost (fun _t ->
        Mlock.release m.sim ce.mlock;
        Am.post m.am ~tag:"1WDATA" ~src:rc ~dst:home ~words:m.geom.Geom.page_words
          ~cost:(m.geom.Geom.page_words * c.proto.copy_per_word) (fun _t ->
            server_collect m ~vpn ~ssmp ~payload:(`Page (snapshot, false))))
  | _ -> assert false

(* INV / 1WINV arrival at an SSMP (arc 14): under the mapping lock,
   clean the page, interrupt every mapping processor with PINV, and
   finish when the last PINV_ACK returns (arcs 15-16). *)
and client_inv m ~ssmp ~vpn ~single ~reply_to =
  let c = m.costs in
  let ce = get_centry m ssmp vpn in
  if tracing then trace m vpn "client_inv ssmp %d single=%b (lock held=%b)" ssmp single (Mlock.held ce.mlock);
  obs_emit m ~engine:Mgs_obs.Event.Remote_client ~tag:"rc.inv" ~vpn
    ~dst:(global_proc m ssmp 0) ~cost:(if single then 1 else 0) ~src:(-1) ~words:0 ~dur:0;
  (* The continuation may run much later (mapping lock busy); capture
     the invalidation's context now and reinstall it around the body so
     the ACK / DIFF it sends stays attributed to this epoch. *)
  let ictx = span_current m in
  Mlock.acquire_k m.sim ce.mlock (fun () ->
      span_with m ictx @@ fun () ->
      if tracing then trace m vpn "client_inv ssmp %d RUNNING pstate=%s" ssmp
        (match ce.pstate with P_inv -> "inv" | P_read -> "read" | P_write -> "write" | P_busy -> "busy");
      match ce.pstate with
      | P_inv ->
        (* The copy is already gone (stale INV); just acknowledge. *)
        let src = global_proc m ssmp 0 in
        Mlock.release m.sim ce.mlock;
        Am.post m.am ~tag:"ACK" ~src ~dst:reply_to ~words:0 ~cost:0 (fun _t ->
            server_collect m ~vpn ~ssmp ~payload:`Ack)
      | P_busy -> assert false (* a BUSY SSMP is never in the directories *)
      | P_read | P_write ->
        (* Table 1 arc 12 drops the page from the DUQ here, since the
           in-flight invalidation will carry the SSMP's writes home.
           We deliberately keep the entry: a local writer's release must
           not complete before those writes are merged, and its REL —
           arriving while the epoch is in REL_IN_PROG — is exactly what
           blocks it until then (it gets RACKed at completion).  A REL
           for an epoch that already completed finds empty directories
           and acknowledges immediately, so the cost is one message. *)
        let rc = global_proc m ssmp ce.frame_owner in
        let was_write = ce.pstate = P_write in
        ce.inv_tt <- (if single then 3 else if was_write then 2 else 1);
        (* Cleaning cost: read invalidations and 1WINV clean the page up
           front (arc 14); write invalidations pay the diff instead.
           With the early-ack optimization the read-copy cleaning moves
           off the critical path (it runs after the ACK, in finish_inv). *)
        let clean_cost =
          if single || ((not was_write) && not m.features.early_read_ack) then
            Geom.lines_per_page m.geom * c.proto.clean_per_line
          else 0
        in
        Am.run_on m.am ~tag:"rc.inv_clean" ~proc:rc ~at:(Sim.now m.sim) ~cost:clean_cost
          (fun _t ->
            let targets = Bitset.elements ce.tlb_dir in
            ce.inv_count <- List.length targets;
            if targets = [] then finish_inv m ~ssmp ~vpn ~reply_to
            else
              List.iter
                (fun lidx ->
                  let p = global_proc m ssmp lidx in
                  (stats m).pinvs <- (stats m).pinvs + 1;
                  Am.post m.am ~tag:"PINV" ~src:rc ~dst:p ~words:0 ~cost:c.proto.tlb_inv
                    (fun _t ->
                      Tlb.invalidate m.tlbs.(p) ~vpn;
                      (* Arc 12: this epoch collects the page's writes,
                         so drop the DUQ entry — but remember that the
                         processor's next release must await the
                         epoch's completion. *)
                      let d = m.duqs.(p) in
                      if Hashtbl.mem d.duq_set vpn then begin
                        Hashtbl.remove d.duq_set vpn;
                        Hashtbl.replace d.psync vpn ()
                      end;
                      Am.post m.am ~tag:"PINV_ACK" ~src:p ~dst:rc ~words:0 ~cost:0
                        (fun _t ->
                          ce.inv_count <- ce.inv_count - 1;
                          if ce.inv_count = 0 then finish_inv m ~ssmp ~vpn ~reply_to)))
                targets))

(* SYNC arrival: the releaser only needs the epoch that collected its
   writes to be complete.  If one is in flight, ride its RACK list
   (safe here: the writes predate the epoch's TLB quiesce); otherwise
   everything is already merged. *)
and server_sync m ~self ~vpn ~releaser =
  if
    forward m ~self ~vpn ~tag:"SYNC" ~cost:m.costs.proto.duq_op (fun self ->
        server_sync m ~self ~vpn ~releaser)
  then ()
  else begin
    let se = get_sentry m vpn in
    obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"sv.sync" ~vpn ~src:releaser
      ~dst:se.s_cur_home ~words:0 ~cost:0 ~dur:0;
    match se.s_state with
    | S_rel -> se.s_pend_rl <- (releaser, span_current m) :: se.s_pend_rl
    | S_read | S_write -> send_rack m se releaser
  end

(* REL arrival at the home (arcs 20-22). *)
and server_rel m ~self ~vpn ~releaser =
  if
    forward m ~self ~vpn ~tag:"REL" ~cost:m.costs.proto.server_op (fun self ->
        server_rel m ~self ~vpn ~releaser)
  then ()
  else begin
    let se = get_sentry m vpn in
    if tracing then trace m vpn "REL from proc %d: state=%s rd=%s wr=%s" releaser
      (match se.s_state with S_rel -> "REL_IN_PROG" | S_read -> "READ" | S_write -> "WRITE")
      (Format.asprintf "%a" Bitset.pp se.s_read_dir)
      (Format.asprintf "%a" Bitset.pp se.s_write_dir);
    obs_emit m ~engine:Mgs_obs.Event.Server ~tag:"sv.rel" ~vpn ~src:releaser
      ~dst:se.s_cur_home ~words:0 ~cost:0 ~dur:0;
    match se.s_state with
    | S_rel ->
      (* Joining the current epoch's RACK list would be unsound: writes
         performed after this epoch's snapshots (possible with a retained
         copy) would appear released before they are merged.  Reprocess
         the REL once the epoch completes. *)
      se.s_pend_rel_next <- (releaser, span_current m) :: se.s_pend_rel_next
    | (S_read | S_write)
      when
        (let rs = Topology.ssmp_of_proc m.topo releaser in
         not (Bitset.mem se.s_read_dir rs || Bitset.mem se.s_write_dir rs)) ->
      (* The releaser's SSMP holds no copy: its writes were collected by
         an earlier invalidation whose epoch has already completed, so
         the release is already globally visible — acknowledge without
         invalidating anyone. *)
      send_rack m se releaser
    | S_read | S_write -> start_epoch m se ~releasers:[ (releaser, span_current m) ]
  end

(* ------------------------------------------------------------------ *)
(* Local Client engine: the fiber-side fault path (arcs 1-7).          *)
(* ------------------------------------------------------------------ *)

let fault m ~proc ~vpn ~write =
  let c = m.costs in
  let cpu = m.cpus.(proc) in
  let ssmp = Topology.ssmp_of_proc m.topo proc in
  let duq = m.duqs.(proc) in
  let ce = get_centry m ssmp vpn in
  let lidx = local_idx m proc in
  Cpu.advance cpu Mgs c.svm.fault_entry;
  if Mlock.acquire_fiber m.sim ce.mlock then Cpu.resume_charge cpu Mgs (Sim.now m.sim);
  Cpu.advance cpu Mgs (c.svm.map_lock + c.svm.table_lookup);
  (* Transaction root: one fault episode, in simulated time.  Opened
     after the mapping lock is granted so the fiber's run-ahead CPU
     clock cannot skew the interval; the fiber reinstalls [root] after
     every suspension and clears it when the fault completes. *)
  let root =
    span_open m ~parent:Span.none ~label:"fault" ~engine:Mgs_obs.Event.Local_client ~vpn
      ~src:proc ()
  in
  span_set m root;
  let finish () =
    span_close m root;
    span_set m Span.none
  in
  let fill ~rw ~to_duq =
    Bitset.add ce.tlb_dir lidx;
    Tlb.fill m.tlbs.(proc) ~vpn ~mode:(if rw then Tlb.Rw else Tlb.Ro);
    Cpu.advance cpu Mgs c.svm.tlb_write;
    if to_duq then begin
      Cpu.advance cpu Mgs c.proto.duq_op;
      duq_add duq vpn;
      ce.c_dirty <- true
    end;
    Mlock.release m.sim ce.mlock
  in
  if tracing then trace m vpn "fault proc %d write=%b pstate=%s" proc write
    (match ce.pstate with P_inv -> "inv" | P_read -> "read" | P_write -> "write" | P_busy -> "busy");
  obs_emit m ~engine:Mgs_obs.Event.Local_client ~tag:"lc.fault" ~vpn ~src:proc
    ~cost:(if write then 1 else 0) ~dst:(-1) ~words:0 ~dur:0;
  match (ce.pstate, write) with
  | P_read, false ->
    (* Arc 1: fill from the existing local read copy. *)
    (stats m).tlb_local_fills <- (stats m).tlb_local_fills + 1;
    fill ~rw:false ~to_duq:false;
    finish ()
  | P_write, _ ->
    (* Arcs 1, 3, 4: local copy has write privilege. *)
    (stats m).tlb_local_fills <- (stats m).tlb_local_fills + 1;
    fill ~rw:write ~to_duq:write;
    finish ()
  | P_read, true ->
    (* Arc 2: upgrade through the Remote Client (arc 13), then arc 7. *)
    (stats m).upgrades <- (stats m).upgrades + 1;
    Bitset.add ce.tlb_dir lidx;
    Tlb.fill m.tlbs.(proc) ~vpn ~mode:Tlb.Rw;
    Cpu.advance cpu Mgs (c.svm.tlb_write + c.proto.msg_send);
    let rc = global_proc m ssmp ce.frame_owner in
    let twin_cost = c.proto.twin_alloc + (m.geom.Geom.page_words * c.proto.twin_per_word) in
    Am.post m.am ~tag:"UPGRADE" ~src:proc ~dst:rc ~words:0 ~cost:twin_cost (fun _t ->
        bump_gen m;
        (match ce.cdata with
        | Some d -> ce.ctwin <- Some (take_twin ce ~from:d)
        | None -> assert false);
        ce.pstate <- P_write;
        let home = home_for m ~ssmp vpn in
        Am.post m.am ~tag:"WNOTIFY" ~src:rc ~dst:home ~words:0 ~cost:c.proto.server_op
          (fun _t -> server_wnotify m ~self:home ~vpn ~ssmp);
        Am.post m.am ~tag:"UP_ACK" ~src:rc ~dst:proc ~words:0 ~cost:0 (fun _t ->
            match ce.fetch_resume with
            | Some resume ->
              ce.fetch_resume <- None;
              resume ()
            | None -> assert false));
    let t0 = cpu.Cpu.clock in
    Mgs_engine.Fiber.suspend (fun resume -> ce.fetch_resume <- Some resume);
    Cpu.resume_charge cpu Mgs (Sim.now m.sim);
    span_set m root;
    (stats m).upgrade_wait <- (stats m).upgrade_wait + (cpu.Cpu.clock - t0);
    Cpu.advance cpu Mgs c.proto.duq_op;
    duq_add duq vpn;
    ce.c_dirty <- true;
    Mlock.release m.sim ce.mlock;
    finish ()
  | P_inv, _ ->
    (* Arc 5: fetch from the home server; BUSY with the lock held. *)
    if write then (stats m).write_fetches <- (stats m).write_fetches + 1
    else (stats m).read_fetches <- (stats m).read_fetches + 1;
    ce.pstate <- P_busy;
    Cpu.advance cpu Mgs c.proto.msg_send;
    let home = home_for m ~ssmp vpn in
    Am.post m.am
      ~tag:(if write then "WREQ" else "RREQ")
      ~src:proc ~dst:home ~words:0 ~cost:c.proto.server_op
      (fun _t -> server_req m ~self:home ~vpn ~requester:proc ~write);
    let t0 = cpu.Cpu.clock in
    Mgs_engine.Fiber.suspend (fun resume -> ce.fetch_resume <- Some resume);
    Cpu.resume_charge cpu Mgs (Sim.now m.sim);
    span_set m root;
    (stats m).fetch_wait <- (stats m).fetch_wait + (cpu.Cpu.clock - t0);
    (* Arc 6/7: the install handler set the page state; finish locally. *)
    fill ~rw:write ~to_duq:write;
    finish ()
  | P_busy, _ ->
    (* The mapping lock is held throughout BUSY, so no second fiber can
       observe it. *)
    assert false

(* ------------------------------------------------------------------ *)
(* Release operation, client side (arcs 8-10).                         *)
(* ------------------------------------------------------------------ *)

let release_all m ~proc =
  (* a no-op under sequential consistency: there is nothing delayed *)
  if m.protocol = Protocol_mgs && not (Topology.single_ssmp m.topo) then begin
    let c = m.costs in
    let cpu = m.cpus.(proc) in
    let ssmp = Topology.ssmp_of_proc m.topo proc in
    let duq = m.duqs.(proc) in
    Cpu.sync_busy cpu;
    if not (duq_is_empty duq && Hashtbl.length duq.psync = 0) then begin
      (stats m).release_ops <- (stats m).release_ops + 1;
      obs_emit m ~engine:Mgs_obs.Event.Local_client ~tag:"lc.release" ~src:proc
        ~cost:(Hashtbl.length duq.duq_set) ~vpn:(-1) ~dst:(-1) ~words:0 ~dur:0;
      (* Transaction root for the whole DUQ drain; reinstalled after
         every RACK / SYNC wait so each REL inherits it. *)
      let root =
        span_open m ~parent:Span.none ~label:"release"
          ~engine:Mgs_obs.Event.Local_client ~src:proc ()
      in
      span_set m root;
      let take_sync () =
        let pick = Hashtbl.fold (fun vpn () _ -> Some vpn) duq.psync None in
        match pick with
        | Some vpn ->
          Hashtbl.remove duq.psync vpn;
          if Hashtbl.mem duq.duq_set vpn then None (* the REL below covers it *)
          else Some vpn
        | None -> None
      in
      let rec sync () =
        if Hashtbl.length duq.psync > 0 then begin
          (match take_sync () with
          | None -> ()
          | Some vpn ->
            (stats m).syncs <- (stats m).syncs + 1;
            Cpu.advance cpu Mgs (c.proto.duq_op + c.proto.msg_send);
            let home = home_for m ~ssmp vpn in
            Am.post m.am ~tag:"SYNC" ~src:proc ~dst:home ~words:0 ~cost:c.proto.duq_op
              (fun _t -> server_sync m ~self:home ~vpn ~releaser:proc);
            let t0 = cpu.Cpu.clock in
            Mgs_engine.Fiber.suspend (fun resume ->
                assert (m.rel_resume.(proc) = None);
                m.rel_resume.(proc) <- Some resume);
            Cpu.resume_charge cpu Mgs (Sim.now m.sim);
            span_set m root;
            (stats m).sync_wait <- (stats m).sync_wait + (cpu.Cpu.clock - t0));
          sync ()
        end
      in
      let send_rel vpn =
        (stats m).releases <- (stats m).releases + 1;
        Cpu.advance cpu Mgs (c.proto.duq_op + c.proto.msg_send);
        let home = home_for m ~ssmp vpn in
        Am.post m.am ~tag:"REL" ~src:proc ~dst:home ~words:0 ~cost:c.proto.server_op
          (fun _t -> server_rel m ~self:home ~vpn ~releaser:proc)
      in
      let await_rack () =
        Mgs_engine.Fiber.suspend (fun resume ->
            assert (m.rel_resume.(proc) = None);
            m.rel_resume.(proc) <- Some resume)
      in
      if m.features.pipelined_release then begin
        (* optimization over Table 1 arcs 8-10: every REL is sent before
           the first RACK is awaited, overlapping independent pages'
           invalidation epochs *)
        let rec send_all acc =
          match duq_pop duq with
          | None -> acc
          | Some vpn ->
            send_rel vpn;
            send_all (acc + 1)
        in
        let outstanding = send_all 0 in
        let t0 = cpu.Cpu.clock in
        for _ = 1 to outstanding do
          await_rack ()
        done;
        Cpu.resume_charge cpu Mgs (Sim.now m.sim);
        span_set m root;
        (stats m).rel_wait <- (stats m).rel_wait + (cpu.Cpu.clock - t0);
        sync ()
      end
      else begin
        (* Table 1 semantics: one REL outstanding at a time *)
        let rec flush () =
          match duq_pop duq with
          | None -> sync ()
          | Some vpn ->
            send_rel vpn;
            let t0 = cpu.Cpu.clock in
            await_rack ();
            Cpu.resume_charge cpu Mgs (Sim.now m.sim);
            span_set m root;
            (stats m).rel_wait <- (stats m).rel_wait + (cpu.Cpu.clock - t0);
            flush ()
        in
        flush ()
      end;
      span_close m root;
      span_set m Span.none
    end
  end

let duq_pending m ~proc = Hashtbl.length m.duqs.(proc).duq_set
