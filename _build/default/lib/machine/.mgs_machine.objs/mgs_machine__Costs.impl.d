lib/machine/costs.ml:
