(* Protocols: the same program under the three software coherence
   protocols — MGS's eager multiple-writer release consistency, lazy
   home-based release consistency, and an Ivy-style single-writer
   sequentially-consistent baseline.

     dune exec examples/protocols.exe

   The workload is migratory: a shared accumulator bounces between
   SSMPs under a lock. Watch how the protocols pay differently — MGS in
   release epochs, HLRC in (cheap) notice handling, Ivy in page
   ownership transfers. *)

let rounds = 30

let () =
  let run protocol ~cluster =
    let cfg =
      Mgs.Machine.config ~nprocs:8 ~cluster ~lan_latency:1000
        ~protocol:(Mgs.Protocol.proto_of_name protocol) ()
    in
    let m = Mgs.Machine.create cfg in
    let cell = Mgs.Machine.alloc m ~words:4 ~home:(Mgs_mem.Allocator.On_proc 0) in
    let lock = Mgs_sync.Lock.create m () in
    let bar = Mgs_sync.Barrier.create m in
    let report =
      Mgs.Machine.run m (fun ctx ->
          for _ = 1 to rounds do
            Mgs_sync.Lock.acquire ctx lock;
            Mgs.Api.write ctx cell (Mgs.Api.read ctx cell +. 1.0);
            Mgs_sync.Lock.release ctx lock
          done;
          Mgs_sync.Barrier.wait ctx bar)
    in
    assert (Mgs.Machine.peek m cell = float_of_int (8 * rounds));
    (report.Mgs.Report.runtime, report.Mgs.Report.lan_messages)
  in
  (* protocols are picked by registry name: the same strings mgs_run
     --protocol and Sweep.run_point ~protocol accept *)
  let label = function
    | "mgs" -> "MGS (eager RC)"
    | "hlrc" -> "HLRC (lazy RC)"
    | "ivy" -> "Ivy (SC)"
    | n -> n
  in
  Printf.printf "migratory counter, P = 8, %d lock rounds per processor:\n\n" rounds;
  Printf.printf "%-16s %14s %10s %14s %10s\n" "protocol" "C=2 runtime" "msgs" "C=8 runtime" "msgs";
  List.iter
    (fun p ->
      let t2, m2 = run p ~cluster:2 in
      let t8, m8 = run p ~cluster:8 in
      Printf.printf "%-16s %14d %10d %14d %10d\n" (label p) t2 m2 t8 m8)
    (Mgs.Protocol.names ());
  print_newline ();
  print_endline
    "All three produce identical results; they differ in where the coherence work goes."
