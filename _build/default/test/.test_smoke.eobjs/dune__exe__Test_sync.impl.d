test/test_sync.ml: Alcotest List Mgs Mgs_mem Mgs_net Mgs_sync Printf QCheck2 QCheck_alcotest
