test/test_obs.ml: Alcotest Am Array Char Format Hashtbl Lan List Mgs Mgs_mem Mgs_obs Mgs_sync Mgs_util Option String
