bench/perf.ml: Array Buffer Gc List Mgs Mgs_apps Mgs_harness Mgs_util Printf Sys Unix
