test/test_net.ml: Alcotest Array Hashtbl List Mgs_am Mgs_engine Mgs_machine Mgs_net Option QCheck2 QCheck_alcotest
