test/test_harness.ml: Alcotest Format List Mgs Mgs_harness Mgs_mem Mgs_sync Printf String
