(* The sharded engine's determinism contract: for any job count, a
   sharded run is byte-identical to the sequential oracle on every
   report field that describes the simulated machine (wall-clock and
   the engine-sensitive peak-queue figure are explicitly excluded).

   Three layers of evidence:
   - full machines: every protocol x app x faults cell, sequential vs
     par=1 vs par=2 vs par=4;
   - observability: the span/trace dump of an instrumented run matches
     (the trace is per-shard-celled and merged at export, so par >= 2
     really runs multi-domain; test_obs_par covers the full export
     matrix);
   - raw engine: randomized micro-DAGs over a bare sharded simulator,
     with delays chosen to pile events onto lookahead-window
     boundaries, compared per-shard between job counts. *)

module Sim = Mgs_engine.Sim
module Shard = Mgs_engine.Shard

(* --- report identity ------------------------------------------------- *)

(* Everything in a report except wall_seconds and peak_queue. *)
let ident (r : Mgs.Report.t) =
  let b = r.Mgs.Report.breakdown in
  let c = r.Mgs.Report.cache in
  Format.asprintf
    "out=%a rt=%d ev=%d | user=%.3f lock=%.3f barrier=%.3f mgs=%.3f | lan=%d/%d | \
     sync=%d/%d/%d | cache=%d,%d,%d,%d,%d,%d | tags=%s | procs=%s | %a"
    Mgs.Report.pp_outcome r.Mgs.Report.outcome r.Mgs.Report.runtime r.Mgs.Report.sim_events
    b.Mgs.Report.user b.Mgs.Report.lock b.Mgs.Report.barrier b.Mgs.Report.mgs
    r.Mgs.Report.lan_messages r.Mgs.Report.lan_words r.Mgs.Report.lock_acquires
    r.Mgs.Report.lock_hits r.Mgs.Report.barrier_episodes c.Mgs_cache.Coherence.hits
    c.Mgs_cache.Coherence.local_misses c.Mgs_cache.Coherence.remote_misses
    c.Mgs_cache.Coherence.misses_2party c.Mgs_cache.Coherence.misses_3party
    c.Mgs_cache.Coherence.software_extensions
    (String.concat ","
       (List.map
          (fun (t, n) -> Printf.sprintf "%s:%d" t n)
          r.Mgs.Report.messages_by_tag))
    (String.concat ","
       (List.map string_of_int (Array.to_list r.Mgs.Report.per_proc_total)))
    Mgs.Pstats.pp r.Mgs.Report.pstats

let apps =
  [
    ("jacobi", Mgs_apps.Jacobi.workload Mgs_apps.Jacobi.tiny);
    ("water", Mgs_apps.Water.workload Mgs_apps.Water.tiny);
    ("tsp", Mgs_apps.Tsp.workload Mgs_apps.Tsp.tiny);
  ]

let protocols = [ "mgs"; "hlrc"; "ivy" ]

(* The full protocol x app x faults matrix at P=8, C=2 (4 shards).
   [check] is off so par >= 2 really runs multi-domain; app verifiers
   and assert_quiescent still run on completed runs. *)
let test_machine_equivalence () =
  List.iter
    (fun protocol ->
      List.iter
        (fun (aname, w) ->
          List.iter
            (fun (fname, faults) ->
              let run par =
                ident
                  (Mgs_harness.Sweep.run_point ~check:false ?faults ~protocol ~par
                     ~nprocs:8 ~cluster:2 w)
                    .Mgs_harness.Sweep.report
              in
              let label p =
                Printf.sprintf "%s/%s/%s: par=%d matches sequential" protocol aname fname p
              in
              let oracle = run 0 in
              List.iter
                (fun par -> Alcotest.(check string) (label par) oracle (run par))
                [ 1; 2; 4 ])
            [
              ("clean", None);
              ("faults", Some (Mgs_net.Fault.scale Mgs_net.Fault.default_chaos ~intensity:0.25));
            ])
        apps)
    protocols

(* A second shape: more SSMPs than the default test shape, uneven
   occupancy (P=16, C=4 -> 4 shards), full job ladder. *)
let test_job_ladder () =
  let w = Mgs_apps.Jacobi.workload Mgs_apps.Jacobi.tiny in
  let run par =
    ident
      (Mgs_harness.Sweep.run_point ~check:false ~par ~nprocs:16 ~cluster:4 w)
        .Mgs_harness.Sweep.report
  in
  let oracle = run 0 in
  List.iter
    (fun par ->
      Alcotest.(check string)
        (Printf.sprintf "P=16 C=4 par=%d" par)
        oracle (run par))
    [ 1; 2; 3; 4; 8 ]

(* --- observability parity -------------------------------------------- *)

(* The trace keeps one cell per shard and merges at export, so the
   engine stays on par_jobs domains; the merged event dump must be
   byte-identical to the sequential engine's. *)
let trace_dump par =
  let w = Mgs_apps.Jacobi.workload Mgs_apps.Jacobi.tiny in
  let cfg = Mgs.Machine.config ~lan_latency:1000 ~par_jobs:par ~nprocs:8 ~cluster:2 () in
  let m = Mgs.Machine.create cfg in
  let tr = Mgs.Machine.enable_trace m in
  let body, check = w.Mgs_harness.Sweep.prepare m in
  let report = Mgs.Machine.run m body in
  Mgs.Machine.assert_quiescent m;
  check m;
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Mgs_obs.Event.t) ->
      Buffer.add_string buf (Format.asprintf "%a\n" Mgs_obs.Event.pp e))
    (Mgs_obs.Trace.events tr);
  (ident report, Buffer.contents buf)

let test_trace_parity () =
  let i0, d0 = trace_dump 0 in
  let i1, d1 = trace_dump 1 in
  Alcotest.(check string) "report" i0 i1;
  Alcotest.(check string) "event dump" d0 d1;
  let i4, d4 = trace_dump 4 in
  Alcotest.(check string) "report (par=4, multi-domain)" i0 i4;
  Alcotest.(check string) "event dump (par=4)" d0 d4

(* --- raw-engine micro-DAGs ------------------------------------------- *)

(* A random forest of events over a bare sharded simulator.  Delays are
   drawn from the lookahead-window boundary neighborhood so same-time
   ties and window-edge merges happen constantly; cross-shard hops pay
   at least the lookahead, as the LAN does. *)

type node = { hop : int; (* 0 = stay; k > 0 = (shard + k) mod n *) pad : int; kids : node list }

let la = 100

let gen_node : node QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized_size (int_bound 4) @@ fix (fun self n ->
      let* hop = frequency [ (3, pure 0); (2, int_range 1 3) ] in
      let* pad = oneofl [ 0; 1; la - 1; la; la + 1; (2 * la) - 1; 2 * la ] in
      let* kids = if n = 0 then pure [] else list_size (int_bound 3) (self (n - 1)) in
      pure { hop; pad; kids })

let gen_plan : (int * int * node) list QCheck2.Gen.t =
  let open QCheck2.Gen in
  list_size (int_range 1 12)
    (let* shard = int_bound 3 in
     let* t = oneofl [ 0; 1; la - 1; la; (2 * la) + 1; 5 * la ] in
     let* n = gen_node in
     pure (shard, t, n))

(* Execute a plan; returns per-shard execution logs and the stats. *)
let run_plan ~jobs plan =
  let nshards = 4 in
  let sim = Sim.create () in
  Sim.make_sharded sim ~nshards ~lookahead:la;
  Sim.set_jobs sim jobs;
  let logs = Array.make nshards [] in
  (* each shard appends only to its own log cell *)
  let rec exec id ~shard node () =
    logs.(shard) <- (id, Sim.now sim) :: logs.(shard);
    List.iteri
      (fun i kid ->
        let dst = (shard + kid.hop) mod nshards in
        let d = if kid.hop = 0 then kid.pad else la + kid.pad in
        Sim.at_shard sim ~shard:dst
          (Sim.now sim + d)
          (exec ((id * 8) + i + 1) ~shard:dst kid))
      node.kids
  in
  List.iteri
    (fun i (shard, t, n) -> Sim.at_shard sim ~shard t (exec (i * 1000) ~shard n))
    plan;
  ignore (Sim.run sim ());
  let st = Sim.stats sim in
  (Array.map List.rev logs, st.Sim.s_executed, st.Sim.s_clamped)

let prop_dag_equivalence =
  QCheck2.Test.make ~name:"micro-DAG: per-shard schedules identical for any job count"
    ~count:120 gen_plan (fun plan ->
      let l1, n1, c1 = run_plan ~jobs:1 plan in
      List.for_all
        (fun jobs ->
          let lj, nj, cj = run_plan ~jobs plan in
          lj = l1 && nj = n1 && cj = c1)
        [ 2; 4 ])

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_dag_equivalence ]

let () =
  Alcotest.run "par"
    [
      ( "equivalence",
        [
          Alcotest.test_case "protocol x app x faults matrix" `Quick
            test_machine_equivalence;
          Alcotest.test_case "job ladder at P=16 C=4" `Quick test_job_ladder;
          Alcotest.test_case "trace parity" `Quick test_trace_parity;
        ] );
      ("micro-dag", qsuite);
    ]
