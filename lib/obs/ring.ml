type 'a t = {
  cap : int;
  mutable buf : 'a array; (* empty until first push, then length [cap] *)
  mutable head : int; (* next write position *)
  mutable length : int;
  mutable pushed : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity";
  { cap = capacity; buf = [||]; head = 0; length = 0; pushed = 0 }

let capacity r = r.cap

let length r = r.length

let pushed r = r.pushed

let dropped r = r.pushed - r.length

(* The buffer is an ['a array], not an ['a option array]: wrapping every
   stored element in [Some] costs a box per push, and the trace ring
   takes a push per traced event.  The backing array is made on the
   first push (using that element as the fill); slots past [length] are
   never read. *)
let push r x =
  if Array.length r.buf = 0 then r.buf <- Array.make r.cap x;
  r.buf.(r.head) <- x;
  r.head <- (r.head + 1) mod r.cap;
  if r.length < r.cap then r.length <- r.length + 1;
  r.pushed <- r.pushed + 1

let clear r =
  r.buf <- [||];
  r.head <- 0;
  r.length <- 0;
  r.pushed <- 0

(* Oldest-first traversal. *)
let iter f r =
  let start = (r.head - r.length + r.cap) mod r.cap in
  for i = 0 to r.length - 1 do
    f r.buf.((start + i) mod r.cap)
  done

let to_list r =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) r;
  List.rev !acc
