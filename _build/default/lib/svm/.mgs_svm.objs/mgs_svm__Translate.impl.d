lib/svm/translate.ml: Mgs_machine
