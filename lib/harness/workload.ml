(* First-class workloads behind one face, mirroring the [Mgs.Protocol]
   and [Mgs_sync.Locks] registries: the CLIs, the benchmark driver, and
   the perf harness select an application by name, and adding a workload
   means one [register] call — not a variant case in three hand-kept
   dispatch tables.

   The generic knobs every driver already exposes (--size, --iters,
   --lock) flow through [args]; anything application-specific rides the
   [extra] key=value list, validated by the workload itself against its
   published [params] spec, so an unknown knob is a loud error naming
   the knobs that exist. *)

type args = {
  size : int option;  (** generic problem-size knob (--size) *)
  iters : int option;  (** generic iteration knob (--iters) *)
  lock : string option;  (** lock algorithm ({!Mgs_sync.Locks} name, --lock) *)
  extra : (string * string) list;  (** workload-specific key=value params *)
}

let default_args = { size = None; iters = None; lock = None; extra = [] }

type param = { p_name : string; p_default : string; p_doc : string }

module type WORKLOAD = sig
  val name : string

  val doc : string

  val params : param list

  val instantiate : args -> Sweep.workload

  val problem_size : args -> string

  val tiny : unit -> Sweep.workload

  val epilogue : Mgs.Machine.t -> string
end

(* --- spec helpers shared by implementations ------------------------- *)

let no_epilogue _ = ""

let param ~name ~default ~doc = { p_name = name; p_default = default; p_doc = doc }

let size_param ~default ~doc = param ~name:"size" ~default ~doc

let iters_param ~default ~doc = param ~name:"iters" ~default ~doc

let lock_param = param ~name:"lock" ~default:"token" ~doc:"lock algorithm"

(* Reject any knob the workload did not declare — generic (size, iters,
   lock) and [extra] alike — naming the knobs that exist: the
   registry-level analogue of the protocol registry's unknown-name
   error. *)
let check_args ~name ~params (a : args) =
  let known = List.map (fun p -> p.p_name) params in
  let accepted = match known with [] -> "none" | _ -> String.concat ", " known in
  let reject_unknown k =
    if not (List.mem k known) then
      invalid_arg
        (Printf.sprintf "workload %s: unknown parameter %S (accepted: %s)" name k accepted)
  in
  (match a.size with Some _ -> reject_unknown "size" | None -> ());
  (match a.iters with Some _ -> reject_unknown "iters" | None -> ());
  (match a.lock with Some _ -> reject_unknown "lock" | None -> ());
  List.iter (fun (k, _) -> reject_unknown k) a.extra

let extra_int ~name (a : args) key ~default =
  match List.assoc_opt key a.extra with
  | None -> default
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> n
    | None ->
      invalid_arg (Printf.sprintf "workload %s: parameter %s expects an integer, got %S" name key v))

let extra_float ~name (a : args) key ~default =
  match List.assoc_opt key a.extra with
  | None -> default
  | Some v -> (
    match float_of_string_opt v with
    | Some x -> x
    | None ->
      invalid_arg (Printf.sprintf "workload %s: parameter %s expects a number, got %S" name key v))

(* --- the registry --------------------------------------------------- *)

let registry : (string, (module WORKLOAD)) Hashtbl.t = Hashtbl.create 16

let register ((module W : WORKLOAD) as impl) =
  if Hashtbl.mem registry W.name then
    invalid_arg (Printf.sprintf "Workload.register: %S already registered" W.name);
  Hashtbl.add registry W.name impl

let find name = Hashtbl.find_opt registry name

let mem name = Hashtbl.mem registry name

let names () = List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) registry [])

let of_name name =
  match find name with
  | Some impl -> impl
  | None ->
    invalid_arg
      (Printf.sprintf "unknown workload %S (registered: %s)" name
         (String.concat ", " (names ())))

let instantiate ?(args = default_args) name =
  let (module W) = of_name name in
  W.instantiate args

let tiny name =
  let (module W) = of_name name in
  W.tiny ()

let problem_size ?(args = default_args) name =
  let (module W) = of_name name in
  W.problem_size args

(* One-line-per-workload listing for CLI help and error paths. *)
let describe_all () =
  List.map
    (fun name ->
      let (module W) = of_name name in
      let knobs =
        match W.params with
        | [] -> ""
        | ps ->
          Printf.sprintf " [%s]"
            (String.concat ", "
               (List.map (fun p -> Printf.sprintf "%s=%s" p.p_name p.p_default) ps))
      in
      Printf.sprintf "%-20s %s%s" name W.doc knobs)
    (names ())

(* Parse one "key=value" command-line fragment into an [extra] pair. *)
let parse_kv s =
  match String.index_opt s '=' with
  | Some i when i > 0 ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | _ -> invalid_arg (Printf.sprintf "expected KEY=VALUE, got %S" s)
