(* Every application packaged as a first-class [Mgs_harness.Workload]
   and registered once, so the CLIs, the benchmark driver, and the perf
   harness all select applications by name through one registry instead
   of three hand-kept dispatch tables.

   The generic knobs map onto each application's natural parameter:
   [size] is n (jacobi/matmul/lu), ncities (tsp), nmol (water,
   water-kernel), nbodies (barnes), m (fft) or nkeys (radix); [iters]
   and [lock] apply only where the application honours them — anything
   else is rejected with an error naming the accepted knobs. *)

open Mgs_harness.Workload

let jacobi : (module WORKLOAD) =
  (module struct
    let name = "jacobi"

    let doc = "2-D grid relaxation (paper 5.2): coarse-grained boundary-row sharing"

    let params =
      [
        size_param ~default:"126" ~doc:"interior points per dimension";
        iters_param ~default:"5" ~doc:"relaxation iterations";
      ]

    let of_args (a : args) =
      check_args ~name ~params a;
      let d = Jacobi.default in
      {
        d with
        Jacobi.n = Option.value ~default:d.Jacobi.n a.size;
        iters = Option.value ~default:d.Jacobi.iters a.iters;
      }

    let instantiate a = Jacobi.workload (of_args a)

    let problem_size a = Jacobi.problem_size (of_args a)

    let tiny () = Jacobi.workload Jacobi.tiny

    let epilogue = no_epilogue
  end)

let matmul : (module WORKLOAD) =
  (module struct
    let name = "matmul"

    let doc = "matrix multiply (paper 5.2): read-shared inputs, private result bands"

    let params = [ size_param ~default:"64" ~doc:"matrix dimension" ]

    let of_args (a : args) =
      check_args ~name ~params a;
      let d = Matmul.default in
      { d with Matmul.n = Option.value ~default:d.Matmul.n a.size }

    let instantiate a = Matmul.workload (of_args a)

    let problem_size a = Matmul.problem_size (of_args a)

    let tiny () = Matmul.workload Matmul.tiny

    let epilogue = no_epilogue
  end)

let tsp : (module WORKLOAD) =
  (module struct
    let name = "tsp"

    let doc = "branch-and-bound TSP (paper 5.2): central work queue, heavy false sharing"

    let params =
      [
        size_param ~default:"10" ~doc:"number of cities";
        { lock_param with p_doc = "work-queue lock algorithm" };
      ]

    let of_args (a : args) =
      check_args ~name ~params a;
      let d = Tsp.default in
      {
        d with
        Tsp.ncities = Option.value ~default:d.Tsp.ncities a.size;
        lock = Option.value ~default:d.Tsp.lock a.lock;
      }

    let instantiate a = Tsp.workload (of_args a)

    let problem_size a = Tsp.problem_size (of_args a)

    let tiny () = Tsp.workload Tsp.tiny

    let epilogue = no_epilogue
  end)

let water : (module WORKLOAD) =
  (module struct
    let name = "water"

    let doc = "N-body molecular dynamics (paper 5.2): per-molecule locks, pairwise forces"

    let params =
      [
        size_param ~default:"128" ~doc:"number of molecules";
        iters_param ~default:"2" ~doc:"simulation steps";
        { lock_param with p_doc = "molecule lock algorithm" };
      ]

    let of_args (a : args) =
      check_args ~name ~params a;
      let d = Water.default in
      {
        d with
        Water.nmol = Option.value ~default:d.Water.nmol a.size;
        iters = Option.value ~default:d.Water.iters a.iters;
        lock = Option.value ~default:d.Water.lock a.lock;
      }

    let instantiate a = Water.workload (of_args a)

    let problem_size a = Water.problem_size (of_args a)

    let tiny () = Water.workload Water.tiny

    let epilogue = no_epilogue
  end)

let barnes : (module WORKLOAD) =
  (module struct
    let name = "barnes"

    let doc = "Barnes-Hut N-body (paper 5.2): shared octree build under per-cell locks"

    let params =
      [
        size_param ~default:"128" ~doc:"number of bodies";
        iters_param ~default:"2" ~doc:"simulation steps";
        { lock_param with p_doc = "cell lock algorithm" };
      ]

    let of_args (a : args) =
      check_args ~name ~params a;
      let d = Barnes.default in
      {
        d with
        Barnes.nbodies = Option.value ~default:d.Barnes.nbodies a.size;
        iters = Option.value ~default:d.Barnes.iters a.iters;
        lock = Option.value ~default:d.Barnes.lock a.lock;
      }

    let instantiate a = Barnes.workload (of_args a)

    let problem_size a = Barnes.problem_size (of_args a)

    let tiny () = Barnes.workload Barnes.tiny

    let epilogue = no_epilogue
  end)

let water_kernel_of_args ~name ~params (a : args) =
  check_args ~name ~params a;
  let d = Water_kernel.default in
  { d with Water_kernel.nmol = Option.value ~default:d.Water_kernel.nmol a.size }

let water_kernel : (module WORKLOAD) =
  (module struct
    let name = "water-kernel"

    let doc = "Water force kernel, untransformed (paper 5.2.3)"

    let params = [ size_param ~default:"96" ~doc:"number of molecules" ]

    let instantiate a = Water_kernel.workload (water_kernel_of_args ~name ~params a)

    let problem_size a = Water_kernel.problem_size (water_kernel_of_args ~name ~params a)

    let tiny () = Water_kernel.workload Water_kernel.tiny

    let epilogue = no_epilogue
  end)

let water_kernel_tiled : (module WORKLOAD) =
  (module struct
    let name = "water-kernel-tiled"

    let doc = "Water force kernel, loop-transformed tiling (paper 5.2.3)"

    let params = [ size_param ~default:"96" ~doc:"number of molecules" ]

    let instantiate a = Water_kernel.workload_tiled (water_kernel_of_args ~name ~params a)

    let problem_size a = Water_kernel.problem_size (water_kernel_of_args ~name ~params a)

    let tiny () = Water_kernel.workload_tiled Water_kernel.tiny

    let epilogue = no_epilogue
  end)

let lu : (module WORKLOAD) =
  (module struct
    let name = "lu"

    let doc = "dense LU factorization (SPLASH-2): read-broadcast pivot rows"

    let params = [ size_param ~default:"48" ~doc:"matrix dimension" ]

    let of_args (a : args) =
      check_args ~name ~params a;
      let d = Lu.default in
      { d with Lu.n = Option.value ~default:d.Lu.n a.size }

    let instantiate a = Lu.workload (of_args a)

    let problem_size a = Lu.problem_size (of_args a)

    let tiny () = Lu.workload Lu.tiny

    let epilogue = no_epilogue
  end)

let fft : (module WORKLOAD) =
  (module struct
    let name = "fft"

    let doc = "six-step FFT (SPLASH-2 lineage): all-to-all page-grain transposes"

    let params = [ size_param ~default:"32" ~doc:"matrix edge (n = size^2 points)" ]

    let of_args (a : args) =
      check_args ~name ~params a;
      let d = Fft.default in
      { d with Fft.m = Option.value ~default:d.Fft.m a.size }

    let instantiate a = Fft.workload (of_args a)

    let problem_size a = Fft.problem_size (of_args a)

    let tiny () = Fft.workload Fft.tiny

    let epilogue = no_epilogue
  end)

let radix : (module WORKLOAD) =
  (module struct
    let name = "radix"

    let doc = "parallel radix sort (SPLASH-2): scattered permutation writes"

    let params = [ size_param ~default:"2048" ~doc:"number of keys" ]

    let of_args (a : args) =
      check_args ~name ~params a;
      let d = Radix.default in
      { d with Radix.nkeys = Option.value ~default:d.Radix.nkeys a.size }

    let instantiate a = Radix.workload (of_args a)

    let problem_size a = Radix.problem_size (of_args a)

    let tiny () = Radix.workload Radix.tiny

    let epilogue = no_epilogue
  end)

(* Registration happens at module initialization; [ensure] exists so
   executables can force this module to link (an archive member with no
   referenced value would otherwise be dropped, leaving the registry
   empty). *)
let () =
  List.iter register
    [
      jacobi;
      matmul;
      tsp;
      water;
      barnes;
      water_kernel;
      water_kernel_tiled;
      lu;
      fft;
      radix;
      Mgs_serve.Kv.workload_module;
    ]

let ensure () = ()
