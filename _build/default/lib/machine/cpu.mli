(** Per-processor simulated state: a local cycle clock, a handler
    occupancy horizon, and the four runtime-breakdown buckets of the
    paper's Figures 6-12 (User, Lock, Barrier, MGS).

    Accounting contract: buckets are charged exactly when the clock
    advances, so for every processor the bucket totals always sum to its
    clock.  Protocol handlers executing on a processor (message
    interrupts) advance only the [busy_until] horizon; the application
    fiber folds those stolen cycles into its MGS bucket the next time it
    runs ({!sync_busy}) or resumes from a wait ({!resume_charge}).  This
    is the mechanism behind the paper's {e critical section dilation}:
    coherence handlers dilate whatever the application was doing. *)

type bucket = User | Lock | Barrier | Mgs

val bucket_name : bucket -> string
val all_buckets : bucket list

type t = private {
  id : int;
  mutable clock : Mgs_engine.Sim.time;  (** fiber-local virtual time *)
  mutable busy_until : Mgs_engine.Sim.time;  (** handler occupancy horizon *)
  buckets : int array;  (** cycles charged per bucket *)
  mutable finished_at : Mgs_engine.Sim.time;  (** set by [finish] *)
}

val create : int -> t

val advance : t -> bucket -> int -> unit
(** [advance cpu b n] moves the clock forward [n] cycles, charged to
    bucket [b].  [n >= 0]. *)

val catch_up_to : t -> bucket -> Mgs_engine.Sim.time -> unit
(** [catch_up_to cpu b t] advances the clock to [t] if it lags, charging
    the gap to [b]; no-op if [clock >= t]. *)

val sync_busy : t -> unit
(** Fold any handler occupancy beyond the clock into the MGS bucket:
    [catch_up_to cpu Mgs busy_until].  Called at every operation
    boundary of a running fiber. *)

val resume_charge : t -> bucket -> Mgs_engine.Sim.time -> unit
(** [resume_charge cpu b t] accounts for a blocked fiber resuming at
    time [t]: handler occupancy inside the wait window goes to MGS, the
    remainder of the wait to [b]. *)

val occupy : t -> at:Mgs_engine.Sim.time -> cost:int -> Mgs_engine.Sim.time
(** [occupy cpu ~at ~cost] runs a protocol handler on this processor:
    it begins at [max at busy_until], holds the processor for [cost]
    cycles, advances [busy_until], and returns the completion time.
    No bucket is charged here — the owning fiber absorbs the cycles via
    {!sync_busy} or {!resume_charge}. *)

val finish : t -> unit
(** Record the fiber's completion time (= current clock). *)

val bucket_cycles : t -> bucket -> int

val total_cycles : t -> int
