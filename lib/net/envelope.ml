(* The one message record both transport layers speak.

   [Am.post] fills every field; [Lan.send] reads the SSMP endpoints and
   payload size; the fault layer, the delivery recorder, and the trace
   hooks all consume the same value instead of parallel labelled-argument
   signatures.  Processor endpoints are [-1] for transport-internal
   traffic (raw LAN sends in tests, acks). *)

type t = {
  tag : string;  (* protocol message type: RREQ, REL, ... *)
  src : int;  (* source processor, -1 if n/a *)
  dst : int;  (* destination processor, -1 if n/a *)
  src_ssmp : int;
  dst_ssmp : int;
  words : int;  (* bulk payload words (page / diff data) *)
  cost : int;  (* destination handler occupancy beyond dispatch *)
}

let make ?(tag = "LAN") ?(src = -1) ?(dst = -1) ?(cost = 0) ~src_ssmp ~dst_ssmp ~words () =
  { tag; src; dst; src_ssmp; dst_ssmp; words; cost }
