lib/util/tableprint.ml: Array Buffer Float List Printf String
