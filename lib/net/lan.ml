type stats = { mutable messages : int; mutable data_words : int }

type t = {
  sim : Mgs_engine.Sim.t;
  costs : Mgs_machine.Costs.t;
  nssmps : int;
  sender_free : Mgs_engine.Sim.time array; (* per-SSMP sender availability *)
  last_arrival : Mgs_engine.Sim.time array; (* FIFO watermark, src*nssmps+dst *)
  stats : stats;
  mutable obs : Mgs_obs.Trace.t option;
}

let create sim costs ~nssmps =
  if nssmps <= 0 then invalid_arg "Lan.create: nssmps";
  {
    sim;
    costs;
    nssmps;
    sender_free = Array.make nssmps 0;
    last_arrival = Array.make (nssmps * nssmps) 0;
    stats = { messages = 0; data_words = 0 };
    obs = None;
  }

(* Delivery on each (src, dst) channel is FIFO: a short message sent
   after a bulk one must not overtake it (the emulated LAN queues at the
   sender and has a fixed latency, so ordering is inherent).  The
   watermarks live in a flat nssmps x nssmps matrix — this runs per
   message and must not allocate a key tuple. *)
let fifo_arrival lan ~src ~dst raw =
  let key = (src * lan.nssmps) + dst in
  let arrive = max raw lan.last_arrival.(key) in
  lan.last_arrival.(key) <- arrive;
  arrive

let send lan ~src ~dst ~at ~words k =
  let p = lan.costs.Mgs_machine.Costs.proto in
  let l = lan.costs.Mgs_machine.Costs.lan in
  if src = dst then begin
    (* Intra-SSMP protocol message: fast Alewife messaging, no LAN. *)
    let arrive = fifo_arrival lan ~src ~dst (at + p.intra_msg + (words * p.dma_per_word)) in
    Mgs_engine.Sim.at lan.sim arrive (fun () -> k arrive)
  end
  else begin
    let depart = max at lan.sender_free.(src) in
    lan.sender_free.(src) <- depart + l.send_occupancy;
    let arrive = fifo_arrival lan ~src ~dst (depart + l.latency + (words * p.dma_per_word)) in
    lan.stats.messages <- lan.stats.messages + 1;
    lan.stats.data_words <- lan.stats.data_words + words;
    (match lan.obs with
    | Some tr ->
      (* record literal rather than Event.make: each supplied optional
         argument would box a Some per message *)
      Mgs_obs.Trace.emit tr
        {
          Mgs_obs.Event.time = arrive;
          engine = Mgs_obs.Event.Network;
          tag = "LAN";
          vpn = -1;
          src = -1;
          dst = -1;
          src_ssmp = src;
          dst_ssmp = dst;
          words;
          cost = 0;
          dur = arrive - at;
          txn = (Mgs_obs.Span.current (Mgs_obs.Trace.spans tr)).Mgs_obs.Span.txn;
        }
    | None -> ());
    Mgs_engine.Sim.at lan.sim arrive (fun () -> k arrive)
  end

let stats lan = lan.stats

let set_obs lan tr = lan.obs <- tr

let reset_stats lan =
  lan.stats.messages <- 0;
  lan.stats.data_words <- 0

(* Full reset between measured phases: beyond the counters, clear the
   sender-occupancy horizons and per-channel FIFO watermarks so warmup
   traffic cannot delay (and thus skew) the first measured messages.
   Safe mid-run: departures and arrivals are clamped to [at], which is
   never in the past. *)
let reset lan =
  reset_stats lan;
  Array.fill lan.sender_free 0 (Array.length lan.sender_free) 0;
  Array.fill lan.last_arrival 0 (Array.length lan.last_arrival) 0
