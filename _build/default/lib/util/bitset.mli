(** Fixed-capacity mutable bitsets.

    Used for directory sharer sets and SSMP membership sets, where the
    universe (number of processors or SSMPs) is small and known at
    creation time. *)

type t
(** A mutable set of integers drawn from [0 .. capacity - 1]. *)

val create : int -> t
(** [create n] is an empty set over the universe [0 .. n-1].
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
(** [capacity s] is the universe size given at creation. *)

val add : t -> int -> unit
(** [add s i] inserts [i].  @raise Invalid_argument if out of range. *)

val remove : t -> int -> unit
(** [remove s i] deletes [i]; no-op if absent. *)

val mem : t -> int -> bool
(** [mem s i] tests membership. *)

val cardinal : t -> int
(** [cardinal s] is the number of members. *)

val is_empty : t -> bool
(** [is_empty s] is [cardinal s = 0]. *)

val clear : t -> unit
(** [clear s] removes every member. *)

val iter : (int -> unit) -> t -> unit
(** [iter f s] applies [f] to each member in increasing order. *)

val elements : t -> int list
(** [elements s] lists members in increasing order. *)

val copy : t -> t
(** [copy s] is an independent duplicate of [s]. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst].
    @raise Invalid_argument if capacities differ. *)

val choose : t -> int option
(** [choose s] is the least member, if any. *)

val equal : t -> t -> bool
(** [equal a b] tests equality of membership (capacities must match). *)

val pp : Format.formatter -> t -> unit
(** Pretty-print as [{i1, i2, ...}]. *)
