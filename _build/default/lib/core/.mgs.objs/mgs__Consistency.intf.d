lib/core/consistency.mli: Hashtbl State
