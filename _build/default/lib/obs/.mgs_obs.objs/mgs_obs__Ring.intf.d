lib/obs/ring.mli:
