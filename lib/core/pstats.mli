(** Counters for MGS protocol events.

    One instance per machine; every protocol engine bumps these, and the
    harness reports them alongside the cycle breakdowns. *)

type t = {
  mutable tlb_local_fills : int;  (** faults satisfied by an existing local mapping *)
  mutable read_fetches : int;  (** RREQ messages (inter-SSMP read misses) *)
  mutable write_fetches : int;  (** WREQ messages (inter-SSMP write misses) *)
  mutable upgrades : int;  (** UPGRADE operations (read->write privilege) *)
  mutable releases : int;  (** REL messages (one per dirty page flushed) *)
  mutable release_ops : int;  (** release operations that flushed >= 1 page *)
  mutable invals : int;  (** INV messages sent by the server *)
  mutable one_winvals : int;  (** 1WINV messages (single-writer optimization) *)
  mutable pinvs : int;  (** PINV TLB-invalidation interrupts *)
  mutable diffs : int;  (** DIFF messages *)
  mutable diff_words : int;  (** modified words carried by all diffs *)
  mutable one_wdata : int;  (** 1WDATA full-page write-backs *)
  mutable one_wclean : int;  (** 1WCLEAN replies (retained page already in sync) *)
  mutable acks : int;  (** ACK messages (read-copy invalidations) *)
  mutable syncs : int;  (** SYNC messages (arc-12 deferred completions) *)
  mutable sync_wait : int;  (** cycles spent awaiting SYNC acknowledgements *)
  mutable rel_wait : int;  (** cycles releasers spent awaiting RACKs *)
  mutable fetch_wait : int;  (** cycles faulting fibers spent awaiting page data *)
  mutable upgrade_wait : int;  (** cycles spent awaiting UP_ACK *)
  mutable net_retries : int;  (** LAN retransmission attempts (fault plans only) *)
  mutable net_dups : int;  (** received copies discarded by transport dedup *)
  mutable net_timeouts : int;  (** retransmission timer expiries *)
  mutable lock_msgs : int;  (** lock-protocol messages (registry locks only) *)
  mutable lock_handoffs : int;  (** lock ownership transfers between holders *)
  mutable lock_wait : int;  (** cycles fibers spent blocked acquiring a lock *)
  mutable adapt_reclass : int;  (** adaptive regime switches ([--adapt] only) *)
  mutable adapt_migs : int;  (** home migrations to the dominant writer's SSMP *)
  mutable adapt_fwds : int;  (** requests forwarded from a former home *)
  mutable adapt_yields : int;  (** twinless write copies shipped whole on recall *)
  mutable adapt_res_mw : int;  (** decision windows spent in the eager-RC regime *)
  mutable adapt_res_sw : int;  (** decision windows spent in single-writer *)
  mutable adapt_res_inv : int;  (** decision windows spent in invalidate-on-read *)
}

val create : unit -> t

val reset : t -> unit

val add_into : t -> t -> unit
(** [add_into t src] accumulates every counter of [src] into [t]; the
    sharded engine merges its per-shard cells with this. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
