(** Sharded discrete-event engine: one event partition per SSMP
    cluster, synchronized conservatively with the inter-SSMP LAN
    latency as the lookahead window.

    Use through {!Sim}: [Sim.make_sharded] installs an engine behind a
    simulator, after which [Sim.at]/[Sim.at_shard]/[Sim.run] dispatch
    here.  With an effective job count of 1 the engine drains a single
    heap in the canonical key order [(fire, sched, src, seq)] on the
    calling domain; with jobs >= 2 it drains per-shard heaps on OCaml
    Domains between lookahead barriers, merging cross-shard sends at
    window boundaries.  Both modes produce identical results; the
    contract relies on every cross-shard event firing at least
    [lookahead] after its creation, which the LAN's fixed inter-SSMP
    latency guarantees. *)

type t

exception Late_delivery of { dst : int; fire : int; clock : int }
(** Raised (strict mode only) when a cross-shard event would fire
    before its destination shard's clock — a lookahead violation. *)

val create : nshards:int -> lookahead:int -> t
(** @raise Invalid_argument when [nshards < 1] or [lookahead < 1] (a
    zero-latency LAN admits no conservative window). *)

val nshards : t -> int
val lookahead : t -> int

val set_jobs : t -> int -> unit
(** Effective domain count for subsequent runs, clamped to
    [1 .. nshards].  Pending events migrate between the global and
    per-shard heaps when the mode changes, preserving their keys. *)

val windowed : t -> bool
(** [true] when the current job count is >= 2. *)

val set_strict : t -> bool -> unit
(** Strict mode: raise {!Late_delivery} instead of silently clamping a
    late cross-shard merge. *)

val cur : unit -> int
(** Shard currently executing on this domain; -1 outside an event. *)

val now : t -> int
(** Executing shard's clock inside an event; the latest shard clock
    from host code. *)

val at : t -> int -> (unit -> unit) -> unit
(** Schedule on the executing shard (shard 0 from host code). *)

val at_shard : t -> shard:int -> int -> (unit -> unit) -> unit
(** Schedule on an explicit shard.  Cross-shard calls park the event in
    the scheduling shard's outbox until the next window barrier. *)

val run : t -> ?limit:int -> unit -> int
(** Drain every pending event; returns the number executed by this
    call.  @raise Failure with full diagnostics when [limit] is
    exhausted. *)

val executed : t -> int
val clamped : t -> int
val pending : t -> int

val peak : t -> int
(** High-water mark of pending events.  In windowed mode this is the
    sum of per-shard peaks (an upper bound on the true global peak —
    the shards peak at different times). *)
