lib/core/mlock.mli: Mgs_engine
