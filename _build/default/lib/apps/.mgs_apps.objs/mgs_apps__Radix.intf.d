lib/apps/radix.mli: Mgs_harness
