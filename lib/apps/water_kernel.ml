type params = { nmol : int; force_cycles : int; seed : int }

let default = { nmol = 96; force_cycles = 15000; seed = 23 }

let tiny = { nmol = 16; force_cycles = 15000; seed = 9 }

(* the paper's full problem size *)
let paper = { nmol = 512; force_cycles = 15000; seed = 23 }

let problem_size p = Printf.sprintf "%d molecules, 1 iteration" p.nmol

let init_positions p =
  let rng = Mgs_util.Rng.create ~seed:p.seed in
  Array.init (3 * p.nmol) (fun _ -> Mgs_util.Rng.float rng 4.0)

let pair_force = Water.pair_force

(* Reference: force on each molecule is the full sum over the others,
   accumulated in ascending-j order. *)
let seq_reference p =
  let n = p.nmol in
  let pos = init_positions p in
  let force = Array.make (3 * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j <> i then begin
        let fx, fy, fz =
          pair_force pos.(3 * i) pos.((3 * i) + 1) pos.((3 * i) + 2) pos.(3 * j)
            pos.((3 * j) + 1)
            pos.((3 * j) + 2)
        in
        force.(3 * i) <- force.(3 * i) +. fx;
        force.((3 * i) + 1) <- force.((3 * i) + 1) +. fy;
        force.((3 * i) + 2) <- force.((3 * i) + 2) +. fz
      end
    done
  done;
  force

let check_forces p m force =
  let expect = seq_reference p in
  for i = 0 to (3 * p.nmol) - 1 do
    let got = Mgs.Machine.peek m (force + i) in
    let want = expect.(i) in
    let err = Float.abs (got -. want) /. Float.max 1.0 (Float.abs want) in
    if err > 1e-6 then
      failwith (Printf.sprintf "water-kernel mismatch at %d: got %.17g want %.17g" i got want)
  done

let alloc_shared p m =
  let n = p.nmol in
  let pos = Mgs.Machine.alloc m ~words:(3 * n) ~home:Mgs_mem.Allocator.Blocked in
  let force = Mgs.Machine.alloc m ~words:(3 * n) ~home:Mgs_mem.Allocator.Blocked in
  Array.iteri (fun i v -> Mgs.Machine.poke m (pos + i) v) (init_positions p);
  (pos, force)

(* ------------------------------------------------------------------ *)
(* Untransformed: Water's force phase verbatim.                        *)
(* ------------------------------------------------------------------ *)

let workload p =
  let n = p.nmol in
  if n mod 2 <> 0 then invalid_arg "Water_kernel: nmol must be even";
  let wp = { Water.default with Water.nmol = n; iters = 1; force_cycles = p.force_cycles; seed = p.seed } in
  let prepare m =
    let pos, force = alloc_shared p m in
    let topo = Mgs.Machine.topo m in
    let nprocs = topo.Mgs_machine.Topology.nprocs in
    let per = (n + nprocs - 1) / nprocs in
    let owner i = min (nprocs - 1) (i / per) in
    let mol_lock =
      Array.init n (fun i ->
          Mgs_sync.Lock.create m
            ~home:(Mgs_machine.Topology.ssmp_of_proc topo (owner i))
            ())
    in
    let bar = Mgs_sync.Barrier.create m in
    let body ctx =
      let open Mgs.Api in
      let me = proc ctx in
      let m0 = me * per and m1 = min (n - 1) (((me + 1) * per) - 1) in
      for i = m0 to m1 do
        let xi = read ctx (pos + (3 * i)) in
        let yi = read ctx (pos + (3 * i) + 1) in
        let zi = read ctx (pos + (3 * i) + 2) in
        List.iter
          (fun j ->
            let xj = read ctx (pos + (3 * j)) in
            let yj = read ctx (pos + (3 * j) + 1) in
            let zj = read ctx (pos + (3 * j) + 2) in
            compute ctx p.force_cycles;
            let fx, fy, fz = pair_force xi yi zi xj yj zj in
            Mgs_sync.Lock.acquire ctx mol_lock.(i);
            write ctx (force + (3 * i)) (read ctx (force + (3 * i)) +. fx);
            write ctx (force + (3 * i) + 1) (read ctx (force + (3 * i) + 1) +. fy);
            write ctx (force + (3 * i) + 2) (read ctx (force + (3 * i) + 2) +. fz);
            Mgs_sync.Lock.release ctx mol_lock.(i);
            Mgs_sync.Lock.acquire ctx mol_lock.(j);
            write ctx (force + (3 * j)) (read ctx (force + (3 * j)) -. fx);
            write ctx (force + (3 * j) + 1) (read ctx (force + (3 * j) + 1) -. fy);
            write ctx (force + (3 * j) + 2) (read ctx (force + (3 * j) + 2) -. fz);
            Mgs_sync.Lock.release ctx mol_lock.(j))
          (Water.pairs_of wp i)
      done;
      Mgs_sync.Barrier.wait ctx bar
    in
    let check m = check_forces p m force in
    (body, check)
  in
  { Mgs_harness.Sweep.name = "Water-kernel"; prepare }

(* ------------------------------------------------------------------ *)
(* Transformed: tiled with two tiles per SSMP and a tournament         *)
(* schedule giving each SSMP exclusive tile access per phase.          *)
(* ------------------------------------------------------------------ *)

let workload_tiled p =
  let n = p.nmol in
  let prepare m =
    let pos, force = alloc_shared p m in
    let topo = Mgs.Machine.topo m in
    let nprocs = topo.Mgs_machine.Topology.nprocs in
    
    let nssmps = topo.Mgs_machine.Topology.nssmps in
    let ntiles = 2 * nssmps in
    let per_tile = (n + ntiles - 1) / ntiles in
    let tile t = (t * per_tile, min n ((t + 1) * per_tile) - 1) in
    let bar = Mgs_sync.Barrier.create m in
    (* Tournament schedule: round r pairs the fixed tile 0 with a
       rotating tile, and the rest symmetrically; pair k of round r is
       assigned to SSMP k. *)
    let round_pairs r =
      let slot i = if i = 0 then 0 else ((r + i - 1) mod (ntiles - 1)) + 1 in
      List.init (ntiles / 2) (fun k -> (slot k, slot (ntiles - 1 - k)))
    in
    let body ctx =
      let open Mgs.Api in
      let me = proc ctx in
      let s = Mgs_machine.Topology.ssmp_of_proc topo me in
      let cluster = topo.Mgs_machine.Topology.cluster in
      let lidx = me mod cluster in
      let read3 a i = (read ctx (a + (3 * i)), read ctx (a + (3 * i) + 1), read ctx (a + (3 * i) + 2)) in
      let add_force i (fx, fy, fz) =
        write ctx (force + (3 * i)) (read ctx (force + (3 * i)) +. fx);
        write ctx (force + (3 * i) + 1) (read ctx (force + (3 * i) + 1) +. fy);
        write ctx (force + (3 * i) + 2) (read ctx (force + (3 * i) + 2) +. fz)
      in
      (* split a molecule range into [parts] contiguous sub-blocks *)
      let sub (lo, hi) parts q =
        let len = hi - lo + 1 in
        if len <= 0 then (lo, lo - 1)
        else begin
          let per = (len + parts - 1) / parts in
          let a = lo + (q * per) in
          (a, min hi (a + per - 1))
        end
      in
      let do_block (a0, a1) (b0, b1) ~skip_ge =
        for i = a0 to a1 do
          let xi, yi, zi = read3 pos i in
          for j = b0 to b1 do
            if (not skip_ge) || i < j then begin
              let xj, yj, zj = read3 pos j in
              compute ctx p.force_cycles;
              let fx, fy, fz = pair_force xi yi zi xj yj zj in
              add_force i (fx, fy, fz);
              add_force j (-.fx, -.fy, -.fz)
            end
          done
        done
      in
      (* cross phase: tiles ta <> tb; sub-round r gives processor q
         exclusive ownership of i-block q of ta and j-block (q+r) of tb,
         so writes never conflict within the SSMP. *)
      let cross_phase ta tb =
        for r = 0 to cluster - 1 do
          do_block (sub (tile ta) cluster lidx)
            (sub (tile tb) cluster ((lidx + r) mod cluster))
            ~skip_ge:false;
          Mgs_sync.Barrier.wait ctx bar
        done
      in
      (* diagonal phase: internal pairs of one tile.  A second-level
         tournament over 2C blocks keeps writes conflict-free: first
         each processor does its two blocks internally, then round r
         pairs block (slot k) with block (slot 2C-1-k), pair k owned by
         local processor k. *)
      let diag_phase t =
        let nb = 2 * cluster in
        do_block (sub (tile t) nb lidx) (sub (tile t) nb lidx) ~skip_ge:true;
        do_block (sub (tile t) nb (lidx + cluster)) (sub (tile t) nb (lidx + cluster))
          ~skip_ge:true;
        Mgs_sync.Barrier.wait ctx bar;
        if nb >= 2 then
          for r = 0 to nb - 2 do
            let slot i = if i = 0 then 0 else ((r + i - 1) mod (nb - 1)) + 1 in
            do_block (sub (tile t) nb (slot lidx))
              (sub (tile t) nb (slot (nb - 1 - lidx)))
              ~skip_ge:false;
            Mgs_sync.Barrier.wait ctx bar
          done
      in
      (* each SSMP handles its own two tiles' internal pairs *)
      diag_phase (2 * s);
      diag_phase ((2 * s) + 1);
      (* tournament rounds for distinct tile pairs *)
      for r = 0 to ntiles - 2 do
        let ta, tb = List.nth (round_pairs r) s in
        cross_phase ta tb
      done;
      Mgs_sync.Barrier.wait ctx bar
    in
    let check m = check_forces p m force in
    ignore nprocs;
    (body, check)
  in
  { Mgs_harness.Sweep.name = "Water-kernel (tiled)"; prepare }
