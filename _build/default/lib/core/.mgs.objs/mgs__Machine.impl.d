lib/core/machine.ml: Allocator Am Api Array Bitset Coherence Costs Cpu Geom Hashtbl Invariant Lan List Mgs_engine Mgs_obs Mlock Printf Pstats Queue Report Sim State Sys Tlb Topology Unix
