lib/util/accum.ml: Float Format
